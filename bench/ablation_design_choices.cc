/**
 * @file
 * Ablations of the design choices docs/ARCHITECTURE.md calls out — the
 * knobs the paper fixes by "experimental tuning" (section 5). Each sweep
 * shows why the default sits where it does:
 *
 *  1. SmartOverclock reward power coefficient: too low overclocks
 *     everything (wasting power on DiskSpeed-like workloads), too high
 *     never overclocks (losing the Synthetic speedup).
 *  2. SmartOverclock exploration rate: the paper's 10% trades steady
 *     -state efficiency for adaptability; 0% cannot recover from a
 *     failed assessment.
 *  3. SmartHarvest under-prediction penalty: the cost asymmetry is what
 *     keeps the primary VM safe; symmetric costs underpredict.
 *  4. SmartMemory hot-coverage target: higher keeps more memory local
 *     (higher SLO, less tier-2 savings).
 */
#include <iostream>

#include "experiments/harvest_experiments.h"
#include "experiments/memory_experiments.h"
#include "experiments/overclock_experiments.h"
#include "telemetry/metric_registry.h"

using sol::telemetry::BenchJson;
using sol::telemetry::TableWriter;

namespace {

void
PowerCoeffAblation(BenchJson& json)
{
    using namespace sol::experiments;
    std::cout << "--- SmartOverclock reward power coefficient ---\n";
    TableWriter table({"power_coeff", "Synthetic perf(norm)",
                       "Synthetic power(norm)", "DiskSpeed power(norm)"});
    for (const double coeff : {0.02, 0.08, 0.3}) {
        OverclockRunConfig synth;
        synth.workload = OverclockWorkload::kSynthetic;
        synth.duration = sol::sim::Seconds(1500);
        synth.synthetic.work_gcycles = 480;
        synth.agent.power_coeff = coeff;
        OverclockRunConfig synth_base = synth;
        synth_base.static_freq_ghz = 1.5;

        OverclockRunConfig disk = synth;
        disk.workload = OverclockWorkload::kDiskSpeed;
        // Expose the reward trade-off directly: no actuator safeguard.
        disk.runtime.disable_actuator_safeguard = true;
        OverclockRunConfig disk_base = disk;
        disk_base.static_freq_ghz = 1.5;

        const auto synth_run = RunOverclock(synth);
        const auto synth_nominal = RunOverclock(synth_base);
        const auto disk_run = RunOverclock(disk);
        const auto disk_nominal = RunOverclock(disk_base);
        table.AddRow(
            {TableWriter::Num(coeff, 2),
             TableWriter::Num(NormalizedPerf(synth_run, synth_nominal)),
             TableWriter::Num(synth_run.avg_power_watts /
                              synth_nominal.avg_power_watts),
             TableWriter::Num(disk_run.avg_power_watts /
                              disk_nominal.avg_power_watts)});
    }
    table.Print(std::cout);
    json.AddTable("power_coeff", table);
}

void
ExplorationAblation(BenchJson& json)
{
    using namespace sol::experiments;
    std::cout << "\n--- SmartOverclock exploration rate ---\n";
    TableWriter table(
        {"exploration", "perf(norm)", "power(norm)", "intercepted"});
    OverclockRunConfig base;
    base.workload = OverclockWorkload::kSynthetic;
    base.duration = sol::sim::Seconds(1500);
    base.synthetic.work_gcycles = 480;
    OverclockRunConfig nominal = base;
    nominal.static_freq_ghz = 1.5;
    const auto baseline = RunOverclock(nominal);
    for (const double eps : {0.0, 0.05, 0.1, 0.3}) {
        OverclockRunConfig config = base;
        config.agent.exploration = eps;
        const auto run = RunOverclock(config);
        table.AddRow({TableWriter::Num(eps, 2),
                      TableWriter::Num(NormalizedPerf(run, baseline)),
                      TableWriter::Num(run.avg_power_watts /
                                       baseline.avg_power_watts),
                      std::to_string(
                          run.stats.intercepted_predictions)});
    }
    table.Print(std::cout);
    json.AddTable("exploration", table);
}

void
CostAsymmetryAblation(BenchJson& json)
{
    using namespace sol::experiments;
    std::cout << "\n--- SmartHarvest under-prediction penalty ---\n";
    TableWriter table({"under_penalty", "P99 increase %",
                       "harvested core-s"});
    HarvestRunConfig base;
    base.workload = HarvestWorkload::kImageDnn;
    base.duration = sol::sim::Seconds(30);
    HarvestRunConfig baseline_config = base;
    baseline_config.harvesting = false;
    const auto baseline = RunHarvest(baseline_config);
    for (const double penalty : {1.0, 2.0, 4.0, 8.0}) {
        HarvestRunConfig config = base;
        config.agent.under_penalty = penalty;
        const auto run = RunHarvest(config);
        table.AddRow(
            {TableWriter::Num(penalty, 0),
             TableWriter::Num(LatencyIncreasePct(run, baseline), 1),
             TableWriter::Num(run.harvested_core_seconds, 1)});
    }
    table.Print(std::cout);
    json.AddTable("under_penalty", table);
    std::cout << "(symmetric costs harvest more but hurt the primary;\n"
              << " the paper's asymmetry buys safety with a little"
              << " efficiency)\n";
}

void
HotCoverageAblation(BenchJson& json)
{
    using namespace sol::experiments;
    std::cout << "\n--- SmartMemory hot-coverage target ---\n";
    TableWriter table({"hot_coverage", "SLO %", "avg local batches",
                       "remote frac %"});
    for (const double coverage : {0.6, 0.8, 0.95}) {
        MemoryRunConfig config;
        config.workload = MemoryWorkload::kObjectStore;
        config.duration = sol::sim::Seconds(450);
        config.agent.hot_coverage = coverage;
        config.agent.mitigation_batches = 16;
        const auto run = RunMemory(config);
        table.AddRow(
            {TableWriter::Num(coverage, 2),
             TableWriter::Num(100 * run.slo_attainment, 1),
             TableWriter::Num(run.avg_local_batches, 1),
             TableWriter::Num(100 * run.overall_remote_fraction, 1)});
    }
    table.Print(std::cout);
    json.AddTable("hot_coverage", table);
}

}  // namespace

int
main()
{
    std::cout << "=== Ablations of tuned design choices ===\n\n";
    BenchJson json("ablation_design_choices");
    PowerCoeffAblation(json);
    ExplorationAblation(json);
    CostAsymmetryAblation(json);
    HotCoverageAblation(json);
    json.WriteFile();
    return 0;
}
