/**
 * @file
 * Extension experiment: SmartMonitor, the monitoring/logging agent
 * class the paper's section 2 identifies as benefiting from on-node
 * learning ("online learning algorithms such as multi-armed bandits can
 * be used to smartly decide what telemetry to sample ... while staying
 * within the collection and logging budget").
 *
 * Compares, at the same sampling budget:
 *   - the uniform production baseline,
 *   - SmartMonitor with the full safeguard stack,
 * on a node where a few of 32 telemetry channels are incident-prone and
 * the hot set shifts periodically. Reports incident detection coverage
 * and latency — the "increasing coverage without increasing cost" claim.
 */
#include <iostream>

#include "experiments/monitor_experiments.h"
#include "telemetry/metric_registry.h"

using sol::experiments::MonitorRunConfig;
using sol::experiments::MonitorRunResult;
using sol::experiments::RunMonitor;
using sol::telemetry::TableWriter;

int
main()
{
    std::cout << "=== Extension: SmartMonitor — budgeted telemetry"
              << " sampling (paper sec 2, monitoring/logging class)"
              << " ===\n\n";

    TableWriter table({"hot-set shifts", "policy", "coverage %",
                       "mean latency s", "p95 latency s", "samples"});

    for (const bool shifting : {false, true}) {
        MonitorRunConfig base;
        base.duration = sol::sim::Seconds(600);
        base.shift_interval =
            shifting ? sol::sim::Seconds(120) : sol::sim::Duration(0);

        MonitorRunConfig uniform = base;
        uniform.uniform_baseline = true;
        const MonitorRunResult uniform_run = RunMonitor(uniform);

        const MonitorRunResult smart = RunMonitor(base);

        const char* label = shifting ? "every 120s" : "static";
        table.AddRow({label, "uniform",
                      TableWriter::Num(100 * uniform_run.coverage, 1),
                      TableWriter::Num(uniform_run.mean_latency_s, 2),
                      TableWriter::Num(uniform_run.p95_latency_s, 2),
                      std::to_string(uniform_run.samples)});
        table.AddRow({label, "SmartMonitor",
                      TableWriter::Num(100 * smart.coverage, 1),
                      TableWriter::Num(smart.mean_latency_s, 2),
                      TableWriter::Num(smart.p95_latency_s, 2),
                      std::to_string(smart.samples)});
    }
    table.Print(std::cout);
    std::cout << "\nSame budget, higher coverage and lower latency: the"
              << " opportunity the paper quantifies for 18 of Azure's 77"
              << " node agents.\n";

    sol::telemetry::BenchJson json("extension_monitor_agent");
    json.AddTable("results", table);
    json.WriteFile();
    return 0;
}
