/**
 * @file
 * Regenerates Figure 1: SmartOverclock vs static frequency policies.
 *
 * For each of the paper's three workloads (Synthetic, ObjectStore,
 * DiskSpeed) this harness runs the static 1.5 / 1.9 / 2.3 GHz policies
 * and the SmartOverclock agent, reporting performance and power
 * normalized to the 1.5 GHz (nominal) baseline — the same rows the
 * paper's bar chart plots.
 *
 * Expected shape: SmartOverclock achieves (near-)highest performance on
 * the frequency-sensitive workloads at a fraction of the static-2.3 GHz
 * power, and keeps DiskSpeed near nominal power because overclocking
 * cannot help it.
 */
#include <iostream>

#include "experiments/overclock_experiments.h"
#include "telemetry/metric_registry.h"

using sol::experiments::NormalizedPerf;
using sol::experiments::OverclockRunConfig;
using sol::experiments::OverclockRunResult;
using sol::experiments::OverclockWorkload;
using sol::experiments::RunOverclock;
using sol::telemetry::TableWriter;

int
main()
{
    std::cout << "=== Figure 1: SmartOverclock vs static policies ===\n";
    std::cout << "(perf and power normalized to the 1.5 GHz baseline;\n"
              << " perf > 1 is better, Synthetic/ObjectStore are\n"
              << " latency-type metrics inverted for normalization)\n\n";

    const OverclockWorkload workloads[] = {
        OverclockWorkload::kSynthetic,
        OverclockWorkload::kObjectStore,
        OverclockWorkload::kDiskSpeed,
    };
    const double static_freqs[] = {1.5, 1.9, 2.3};

    TableWriter table({"workload", "policy", "perf(norm)", "power(norm)",
                       "raw perf", "unit", "avg W"});

    for (const auto wl : workloads) {
        OverclockRunConfig base;
        base.workload = wl;
        base.duration = sol::sim::Seconds(3000);
        base.synthetic.work_gcycles = 480;

        // Nominal baseline.
        OverclockRunConfig nominal = base;
        nominal.static_freq_ghz = 1.5;
        const OverclockRunResult baseline = RunOverclock(nominal);

        for (const double freq : static_freqs) {
            OverclockRunConfig config = base;
            config.static_freq_ghz = freq;
            const OverclockRunResult run = RunOverclock(config);
            table.AddRow({run.workload,
                          "static-" + TableWriter::Num(freq, 1),
                          TableWriter::Num(NormalizedPerf(run, baseline)),
                          TableWriter::Num(run.avg_power_watts /
                                           baseline.avg_power_watts),
                          TableWriter::Num(run.perf_value, 2),
                          run.perf_unit,
                          TableWriter::Num(run.avg_power_watts, 1)});
        }

        const OverclockRunResult agent = RunOverclock(base);
        table.AddRow({agent.workload, "SmartOverclock",
                      TableWriter::Num(NormalizedPerf(agent, baseline)),
                      TableWriter::Num(agent.avg_power_watts /
                                       baseline.avg_power_watts),
                      TableWriter::Num(agent.perf_value, 2),
                      agent.perf_unit,
                      TableWriter::Num(agent.avg_power_watts, 1)});
    }

    table.Print(std::cout);
    std::cout << "\nPaper reference: static-2.3 on Synthetic gains only"
              << " ~13% perf over SmartOverclock while using ~2x the"
              << " power; DiskSpeed sees no benefit from frequency.\n";

    sol::telemetry::BenchJson json("fig1_overclock_vs_static");
    json.AddTable("results", table);
    json.WriteFile();
    return 0;
}
