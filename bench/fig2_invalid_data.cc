/**
 * @file
 * Regenerates Figure 2: the SmartOverclock data-validation safeguard
 * under transient data errors.
 *
 * A configurable fraction of the agent's IPS readings is replaced with
 * out-of-range garbage. With validation, the bad samples are discarded
 * and the workload keeps near-ideal performance; without it, they are
 * committed into the Q-learning reward stream and corrupt the policy.
 *
 * Expected shape (paper): without validation even 5% invalid readings
 * costs ~17% performance, while with validation performance stays at the
 * ideal; at very high error rates the validated agent degrades to safe
 * nominal behavior via short-circuited epochs.
 */
#include <iostream>

#include "experiments/overclock_experiments.h"
#include "telemetry/metric_registry.h"

using sol::experiments::NormalizedPerf;
using sol::experiments::OverclockRunConfig;
using sol::experiments::OverclockRunResult;
using sol::experiments::OverclockWorkload;
using sol::experiments::RunOverclock;
using sol::telemetry::TableWriter;

int
main()
{
    std::cout << "=== Figure 2: data validation vs invalid IPS readings"
              << " ===\n";
    std::cout << "(Synthetic workload; perf and power normalized to the"
              << " ideal agent with 0% bad data)\n\n";

    OverclockRunConfig base;
    base.workload = OverclockWorkload::kSynthetic;
    base.duration = sol::sim::Seconds(3000);
    base.synthetic.work_gcycles = 480;

    const OverclockRunResult ideal = RunOverclock(base);

    TableWriter table({"bad data %", "validation", "perf(norm)",
                       "power(norm)", "invalid discarded",
                       "epochs defaulted"});
    for (const double pct : {0.0, 5.0, 10.0, 20.0, 40.0}) {
        for (const bool validate : {true, false}) {
            OverclockRunConfig config = base;
            config.bad_data_prob = pct / 100.0;
            config.runtime.disable_data_validation = !validate;
            const OverclockRunResult run = RunOverclock(config);
            table.AddRow(
                {TableWriter::Num(pct, 0), validate ? "on" : "off",
                 TableWriter::Num(NormalizedPerf(run, ideal)),
                 TableWriter::Num(run.avg_power_watts /
                                  ideal.avg_power_watts),
                 std::to_string(run.stats.invalid_samples),
                 std::to_string(run.stats.short_circuit_epochs)});
        }
    }
    table.Print(std::cout);
    std::cout << "\nPaper reference: 5% invalid readings cost ~17% perf"
              << " without validation; with validation the workload keeps"
              << " optimal performance.\n";

    sol::telemetry::BenchJson json("fig2_invalid_data");
    json.AddTable("results", table);
    json.WriteFile();
    return 0;
}
