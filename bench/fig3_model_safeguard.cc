/**
 * @file
 * Regenerates Figure 3: the SmartOverclock model safeguard against a
 * broken RL policy that always selects the highest frequency.
 *
 * The model assessment (mean delta_r over the last 10 epochs) detects
 * that overclocking is not paying off and intercepts the policy's
 * predictions, substituting the nominal-frequency default (which keeps
 * exploring randomly so the model can prove recovery).
 *
 * Expected shape (paper): on DiskSpeed the unguarded broken model wastes
 * ~268% extra power while the safeguard limits the increase to ~18%;
 * on ObjectStore — which genuinely benefits — a broken always-overclock
 * agent still performs fine.
 *
 * The actuator safeguard is disabled in these runs to isolate the model
 * safeguard (otherwise it would also suppress overclocking on
 * low-activity workloads).
 */
#include <iostream>

#include "experiments/overclock_experiments.h"
#include "telemetry/metric_registry.h"

using sol::experiments::NormalizedPerf;
using sol::experiments::OverclockRunConfig;
using sol::experiments::OverclockRunResult;
using sol::experiments::OverclockWorkload;
using sol::experiments::RunOverclock;
using sol::telemetry::TableWriter;

int
main()
{
    std::cout << "=== Figure 3: model safeguard vs broken RL policy ===\n";
    std::cout << "(power increase relative to the correct-model agent;\n"
              << " actuator safeguard disabled to isolate the model"
              << " safeguard)\n\n";

    TableWriter table({"workload", "model safeguard", "perf(norm)",
                       "power increase %", "intercepted"});

    const OverclockWorkload workloads[] = {
        OverclockWorkload::kSynthetic,
        OverclockWorkload::kObjectStore,
        OverclockWorkload::kDiskSpeed,
    };
    for (const auto wl : workloads) {
        OverclockRunConfig base;
        base.workload = wl;
        base.duration = sol::sim::Seconds(1500);
        base.synthetic.work_gcycles = 480;
        base.runtime.disable_actuator_safeguard = true;

        // Ideal: correct model.
        const OverclockRunResult ideal = RunOverclock(base);

        for (const bool guarded : {false, true}) {
            OverclockRunConfig config = base;
            config.broken_model = true;
            config.runtime.disable_model_assessment = !guarded;
            const OverclockRunResult run = RunOverclock(config);
            const double power_increase_pct =
                100.0 * (run.avg_power_watts - ideal.avg_power_watts) /
                ideal.avg_power_watts;
            table.AddRow({run.workload, guarded ? "on" : "off",
                          TableWriter::Num(NormalizedPerf(run, ideal)),
                          TableWriter::Num(power_increase_pct, 1),
                          std::to_string(
                              run.stats.intercepted_predictions)});
        }
    }
    table.Print(std::cout);
    std::cout << "\nPaper reference: DiskSpeed +268% power unguarded vs"
              << " +18% guarded; ObjectStore tolerates a broken"
              << " always-overclock policy.\n";

    sol::telemetry::BenchJson json("fig3_model_safeguard");
    json.AddTable("results", table);
    json.WriteFile();
    return 0;
}
