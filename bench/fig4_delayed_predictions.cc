/**
 * @file
 * Regenerates Figure 4: SOL's non-blocking Actuator under model delays.
 *
 * A 30-second stall is injected into the Model loop exactly when the
 * Synthetic workload finishes a batch — the worst case, because the last
 * prediction said "overclock" and the workload just went idle. The
 * blocking actuator keeps the cores overclocked for the entire stall;
 * the non-blocking SOL actuator waits at most 5 s for a fresh prediction
 * and then restores the nominal frequency.
 *
 * Expected shape (paper): blocking wastes ~36% extra power during idle,
 * non-blocking only ~3%.
 */
#include <iostream>

#include "experiments/overclock_experiments.h"
#include "telemetry/metric_registry.h"

using sol::experiments::OverclockRunConfig;
using sol::experiments::OverclockRunResult;
using sol::experiments::OverclockWorkload;
using sol::experiments::RunOverclock;
using sol::telemetry::TableWriter;

int
main()
{
    std::cout << "=== Figure 4: non-blocking vs blocking actuator under"
              << " 30 s model stalls ===\n";
    std::cout << "(Synthetic workload; power relative to the undelayed"
              << " agent)\n\n";

    OverclockRunConfig base;
    base.workload = OverclockWorkload::kSynthetic;
    base.duration = sol::sim::Seconds(3600);
    base.synthetic.work_gcycles = 480;
    // Warm up the policy for 1800 s, then inject stalls and measure
    // power over the remaining 1800 s, so the comparison isolates the
    // actuator design rather than learning-quality differences.
    base.measure_from = sol::sim::Seconds(1800);
    // Isolate the decoupled-loop design from the other safeguards.
    base.runtime.disable_actuator_safeguard = true;

    const OverclockRunResult ideal = RunOverclock(base);

    TableWriter table({"actuator", "stall", "power increase %",
                       "actuator timeouts", "expired preds"});
    table.AddRow({"non-blocking", "none", TableWriter::Num(0.0, 1),
                  std::to_string(ideal.stats.actuator_timeouts),
                  std::to_string(ideal.stats.expired_predictions)});

    for (const bool blocking : {false, true}) {
        OverclockRunConfig config = base;
        config.stall_on_batch_end = sol::sim::Seconds(30);
        config.runtime.blocking_actuator = blocking;
        const OverclockRunResult run = RunOverclock(config);
        const double power_increase_pct =
            100.0 * (run.avg_power_watts - ideal.avg_power_watts) /
            ideal.avg_power_watts;
        table.AddRow({blocking ? "blocking" : "non-blocking", "30s",
                      TableWriter::Num(power_increase_pct, 1),
                      std::to_string(run.stats.actuator_timeouts),
                      std::to_string(run.stats.expired_predictions)});
    }
    table.Print(std::cout);
    std::cout << "\nPaper reference: the blocking agent overclocks 30 s"
              << " into each idle phase (+36% power); the non-blocking"
              << " agent restores nominal within 5 s (+3%).\n";

    sol::telemetry::BenchJson json("fig4_delayed_predictions");
    json.AddTable("results", table);
    json.WriteFile();
    return 0;
}
