/**
 * @file
 * Regenerates Figure 5: the SmartOverclock actuator safeguard during
 * long-lasting idle phases.
 *
 * The workload alternates short compute bursts with multi-minute idle
 * periods (a VM running periodic data-processing jobs). The safeguard
 * monitors the P90 of the activity factor alpha over the past 100 s and
 * disables overclocking during sustained low activity, re-enabling
 * quickly when activity returns. The run prints a time series plus the
 * wasted-overclocked-idle-time summary with and without the safeguard.
 */
#include <iostream>

#include "experiments/overclock_experiments.h"
#include "telemetry/metric_registry.h"

using sol::experiments::OverclockRunConfig;
using sol::experiments::OverclockRunResult;
using sol::experiments::OverclockWorkload;
using sol::experiments::RunOverclock;
using sol::telemetry::TableWriter;

namespace {

/** Seconds the node spent overclocked while the workload was idle. */
double
OverclockedIdleSeconds(const OverclockRunResult& run)
{
    double total = 0.0;
    for (const auto& point : run.trace) {
        if (!point.workload_busy && point.freq_ghz > 1.51) {
            total += 1.0;  // 1 Hz trace.
        }
    }
    return total;
}

}  // namespace

int
main()
{
    std::cout << "=== Figure 5: actuator safeguard during idle phases"
              << " ===\n";
    std::cout << "(Synthetic workload with 40 s bursts every 400 s)\n\n";

    OverclockRunConfig base;
    base.workload = OverclockWorkload::kSynthetic;
    base.duration = sol::sim::Seconds(2400);
    base.synthetic.period = sol::sim::Seconds(400);
    base.synthetic.work_gcycles = 480;  // 40 s busy at nominal.
    base.record_trace = true;

    TableWriter table({"actuator safeguard", "idle overclocked s",
                       "avg power W", "safeguard triggers",
                       "halted s"});
    OverclockRunResult guarded;
    for (const bool enabled : {true, false}) {
        OverclockRunConfig config = base;
        config.runtime.disable_actuator_safeguard = !enabled;
        const OverclockRunResult run = RunOverclock(config);
        if (enabled) {
            guarded = run;
        }
        table.AddRow({enabled ? "on" : "off",
                      TableWriter::Num(OverclockedIdleSeconds(run), 0),
                      TableWriter::Num(run.avg_power_watts, 1),
                      std::to_string(run.stats.safeguard_triggers),
                      TableWriter::Num(
                          sol::sim::ToSeconds(run.stats.halted_time), 0)});
    }
    table.Print(std::cout);

    std::cout << "\nTime series (guarded run, one row per 20 s):\n";
    std::cout << "time_s,freq_ghz,alpha,safeguard_active,busy\n";
    for (std::size_t i = 0; i < guarded.trace.size(); i += 20) {
        const auto& p = guarded.trace[i];
        std::cout << p.time_s << "," << p.freq_ghz << ","
                  << TableWriter::Num(p.alpha, 2) << ","
                  << (p.safeguard_active ? 1 : 0) << ","
                  << (p.workload_busy ? 1 : 0) << "\n";
    }
    std::cout << "\nPaper reference: the safeguard disables the agent"
              << " during low-activity periods and re-enables it quickly"
              << " when activity returns.\n";

    sol::telemetry::BenchJson json("fig5_actuator_safeguard");
    json.AddTable("results", table);
    sol::telemetry::MetricRegistry trace;
    for (const auto& p : guarded.trace) {
        trace.AppendSeries("freq_ghz", p.time_s, p.freq_ghz);
        trace.AppendSeries("alpha", p.time_s, p.alpha);
        trace.AppendSeries("safeguard_active", p.time_s,
                           p.safeguard_active ? 1.0 : 0.0);
    }
    json.AddMetrics("guarded_trace", trace);
    json.WriteFile();
    return 0;
}
