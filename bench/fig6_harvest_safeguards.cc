/**
 * @file
 * Regenerates Figure 6: the SmartHarvest safeguards.
 *
 * Three panels, each on the image-dnn and moses primary workloads,
 * reporting the primary VM's P99 latency increase over a no-harvesting
 * baseline:
 *   left   — data validation: discard censored (full-utilization)
 *            samples vs train on them (systematic underprediction);
 *   middle — model safeguard: out-of-cores assessment intercepts a
 *            broken model that severely underpredicts demand;
 *   right  — non-blocking design: 1 s model stalls at burst starts,
 *            blocking vs non-blocking actuator.
 *
 * Expected shape (paper): unguarded impact up to ~40% / 3-4x the guarded
 * impact; guarded impact stays within the ~10% acceptable envelope.
 */
#include <iostream>

#include "experiments/harvest_experiments.h"
#include "telemetry/metric_registry.h"

using sol::experiments::HarvestRunConfig;
using sol::experiments::HarvestRunResult;
using sol::experiments::HarvestWorkload;
using sol::experiments::LatencyIncreasePct;
using sol::experiments::RunHarvest;
using sol::telemetry::TableWriter;

int
main()
{
    std::cout << "=== Figure 6: SmartHarvest safeguards ===\n";
    std::cout << "(P99 latency increase over the no-harvesting baseline;"
              << " harvested core-seconds show the efficiency cost)\n\n";

    TableWriter table({"panel", "workload", "config", "P99 ms",
                       "increase %", "harvested core-s"});

    for (const auto wl :
         {HarvestWorkload::kImageDnn, HarvestWorkload::kMoses}) {
        HarvestRunConfig base;
        base.workload = wl;
        base.duration = sol::sim::Seconds(40);

        HarvestRunConfig no_harvest = base;
        no_harvest.harvesting = false;
        const HarvestRunResult baseline = RunHarvest(no_harvest);
        table.AddRow({"baseline", baseline.workload, "no harvesting",
                      TableWriter::Num(baseline.p99_latency_ms, 1),
                      TableWriter::Num(0.0, 1), TableWriter::Num(0.0, 0)});

        // Panel 1: data validation (censored samples).
        for (const bool validate : {true, false}) {
            HarvestRunConfig config = base;
            config.runtime.disable_data_validation = !validate;
            const HarvestRunResult run = RunHarvest(config);
            table.AddRow(
                {"invalid-data", run.workload,
                 validate ? "validation on" : "validation off",
                 TableWriter::Num(run.p99_latency_ms, 1),
                 TableWriter::Num(LatencyIncreasePct(run, baseline), 1),
                 TableWriter::Num(run.harvested_core_seconds, 0)});
        }

        // Panel 2: model safeguard vs broken (underpredicting) model.
        // The actuator safeguard is disabled here to isolate the model
        // safeguard (it would otherwise mask the broken model's damage
        // in both configurations).
        for (const bool guarded : {true, false}) {
            HarvestRunConfig config = base;
            config.broken_model = true;
            config.runtime.disable_actuator_safeguard = true;
            config.runtime.disable_model_assessment = !guarded;
            const HarvestRunResult run = RunHarvest(config);
            table.AddRow(
                {"broken-model", run.workload,
                 guarded ? "model safeguard on" : "model safeguard off",
                 TableWriter::Num(run.p99_latency_ms, 1),
                 TableWriter::Num(LatencyIncreasePct(run, baseline), 1),
                 TableWriter::Num(run.harvested_core_seconds, 0)});
        }

        // Panel 3: delayed predictions, blocking vs non-blocking.
        for (const bool blocking : {false, true}) {
            HarvestRunConfig config = base;
            config.stall_on_burst = sol::sim::Seconds(1);
            config.runtime.blocking_actuator = blocking;
            const HarvestRunResult run = RunHarvest(config);
            table.AddRow(
                {"delayed-preds", run.workload,
                 blocking ? "blocking" : "non-blocking",
                 TableWriter::Num(run.p99_latency_ms, 1),
                 TableWriter::Num(LatencyIncreasePct(run, baseline), 1),
                 TableWriter::Num(run.harvested_core_seconds, 0)});
        }
    }
    table.Print(std::cout);
    std::cout << "\nPaper reference: each safeguard reduces the P99"
              << " impact by roughly 3-4x versus its unguarded"
              << " counterpart.\n";

    sol::telemetry::BenchJson json("fig6_harvest_safeguards");
    json.AddTable("results", table);
    json.WriteFile();
    return 0;
}
