/**
 * @file
 * Regenerates Figure 7: SmartMemory vs static access-bit scanning.
 *
 * For ObjectStore, SQL, and SpecJBB access patterns, compares adaptive
 * Thompson-sampling scan scheduling against always-scanning at the
 * maximum (300 ms) and minimum (9.6 s) frequencies, reporting:
 *   top    — reduction in access-bit resets vs the max frequency,
 *   middle — reduction in local (first-tier) memory size,
 *   bottom — SLO attainment (fraction of windows with >=80% local
 *            accesses).
 *
 * The static baselines run without safeguards, as in the paper.
 *
 * Expected shape: SmartMemory cuts access-bit resets substantially while
 * holding the SLO; min-frequency scanning saves more scans but lacks the
 * resolution to pick the hot set, cratering SLO attainment.
 */
#include <iostream>

#include "experiments/memory_experiments.h"
#include "telemetry/metric_registry.h"

using sol::experiments::MemoryRunConfig;
using sol::experiments::MemoryRunResult;
using sol::experiments::MemoryWorkload;
using sol::experiments::RunMemory;
using sol::telemetry::TableWriter;

int
main()
{
    std::cout << "=== Figure 7: SmartMemory vs static scanning ===\n\n";

    TableWriter table({"workload", "policy", "reset reduction %",
                       "local size reduction %", "SLO attainment %",
                       "scans", "migrations"});

    for (const auto wl : {MemoryWorkload::kObjectStore,
                          MemoryWorkload::kSql,
                          MemoryWorkload::kSpecJbb}) {
        MemoryRunConfig base;
        base.workload = wl;
        base.duration = sol::sim::Seconds(900);
        // The paper mitigates 100 x 2 MB batches on a 384 GB node; scaled
        // to this 256-batch simulated memory that is ~16 batches.
        base.agent.mitigation_batches = 16;

        // Static max-frequency baseline (arm 0 = 300 ms), no safeguards.
        MemoryRunConfig max_config = base;
        max_config.fixed_arm = 0;
        max_config.runtime.disable_model_assessment = true;
        max_config.runtime.disable_actuator_safeguard = true;
        const MemoryRunResult max_run = RunMemory(max_config);

        // Static min-frequency baseline (arm 5 = 9.6 s), no safeguards.
        MemoryRunConfig min_config = base;
        min_config.fixed_arm = 5;
        min_config.runtime.disable_model_assessment = true;
        min_config.runtime.disable_actuator_safeguard = true;
        const MemoryRunResult min_run = RunMemory(min_config);

        // SmartMemory with the full safeguard stack.
        const MemoryRunResult smart = RunMemory(base);

        const double all_local =
            static_cast<double>(base.num_batches);
        auto add_row = [&](const std::string& policy,
                           const MemoryRunResult& run) {
            const double reset_reduction =
                100.0 *
                (1.0 - static_cast<double>(run.bit_resets) /
                           static_cast<double>(max_run.bit_resets));
            const double local_reduction =
                100.0 * (1.0 - run.avg_local_batches / all_local);
            table.AddRow({run.workload, policy,
                          TableWriter::Num(reset_reduction, 1),
                          TableWriter::Num(local_reduction, 1),
                          TableWriter::Num(100.0 * run.slo_attainment, 1),
                          std::to_string(run.scans),
                          std::to_string(run.migrations)});
        };
        add_row("scan-max(300ms)", max_run);
        add_row("scan-min(9.6s)", min_run);
        add_row("SmartMemory", smart);
    }
    table.Print(std::cout);
    std::cout << "\nPaper reference: SmartMemory reduces access-bit"
              << " resets by up to ~48% while shrinking local memory by"
              << " 51-64%; min-frequency scanning drops SLO attainment"
              << " as low as 9%.\n";

    sol::telemetry::BenchJson json("fig7_memory_scanning");
    json.AddTable("results", table);
    json.WriteFile();
    return 0;
}
