/**
 * @file
 * Regenerates Figure 8: SmartMemory Model and Actuator safeguards on the
 * intentionally difficult oscillating workload (SpecJBB running 150 s,
 * sleeping 80 s, reshuffling its hot set at every reactivation).
 *
 * Four configurations: no safeguards, actuator-only, model-only, and all
 * safeguards. The actuator safeguard recovers from instantaneous SLO
 * violations immediately; the model safeguard prevents inaccurate
 * predictions from being used at all; only the combination both avoids
 * violations and recovers quickly.
 *
 * Expected shape (paper): ~66% SLO attainment with no safeguards rising
 * to ~90% with all safeguards enabled.
 */
#include <iostream>

#include "experiments/memory_experiments.h"
#include "telemetry/metric_registry.h"

using sol::experiments::MemoryRunConfig;
using sol::experiments::MemoryRunResult;
using sol::experiments::MemoryWorkload;
using sol::experiments::RunMemory;
using sol::telemetry::TableWriter;

int
main()
{
    std::cout << "=== Figure 8: SmartMemory Model + Actuator safeguards"
              << " (oscillating SpecJBB) ===\n\n";

    MemoryRunConfig base;
    base.workload = MemoryWorkload::kOscillating;
    base.duration = sol::sim::Seconds(1200);
    // Scaled mitigation size (see fig7 bench).
    base.agent.mitigation_batches = 16;

    struct Config {
        const char* name;
        bool model;
        bool actuator;
    };
    const Config configs[] = {
        {"no safeguards", false, false},
        {"actuator only", false, true},
        {"model only", true, false},
        {"all safeguards", true, true},
    };

    TableWriter table({"config", "SLO attainment %", "remote frac %",
                       "mitigations", "intercepted preds"});
    MemoryRunResult all_run;
    MemoryRunResult none_run;
    for (const auto& config : configs) {
        MemoryRunConfig run_config = base;
        run_config.runtime.disable_model_assessment = !config.model;
        run_config.runtime.disable_actuator_safeguard = !config.actuator;
        const MemoryRunResult run = RunMemory(run_config);
        if (config.model && config.actuator) {
            all_run = run;
        }
        if (!config.model && !config.actuator) {
            none_run = run;
        }
        table.AddRow({config.name,
                      TableWriter::Num(100.0 * run.slo_attainment, 1),
                      TableWriter::Num(
                          100.0 * run.overall_remote_fraction, 1),
                      std::to_string(run.stats.mitigations),
                      std::to_string(run.stats.intercepted_predictions)});
    }
    table.Print(std::cout);

    std::cout << "\nRemote-access fraction time series (rows per 30 s;"
              << " no-safeguards vs all-safeguards):\n";
    std::cout << "time_s,remote_none,remote_all\n";
    const std::size_t n =
        std::min(none_run.trace.size(), all_run.trace.size());
    for (std::size_t i = 0; i < n; i += 15) {
        std::cout << none_run.trace[i].time_s << ","
                  << TableWriter::Num(none_run.trace[i].remote_fraction, 3)
                  << ","
                  << TableWriter::Num(all_run.trace[i].remote_fraction, 3)
                  << "\n";
    }
    std::cout << "\nPaper reference: 66% SLO attainment without"
              << " safeguards vs 90% with all safeguards.\n";

    sol::telemetry::BenchJson json("fig8_memory_safeguards");
    json.AddTable("results", table);
    sol::telemetry::MetricRegistry trace;
    for (std::size_t i = 0; i < n; ++i) {
        trace.AppendSeries("remote_none", none_run.trace[i].time_s,
                           none_run.trace[i].remote_fraction);
        trace.AppendSeries("remote_all", all_run.trace[i].time_s,
                           all_run.trace[i].remote_fraction);
    }
    json.AddMetrics("remote_fraction_trace", trace);
    json.WriteFile();
    return 0;
}
