/**
 * @file
 * Agent interference on a shared node — the deployment risk the paper's
 * section 5 studies but no single-agent experiment can show.
 *
 * Panel 1 runs the primary-VM QoS story four ways on one 16-core node:
 *   harvest-only    — SmartHarvest alone (the fig 6 setting);
 *   overclock-only  — SmartOverclock alone (the fig 1 setting);
 *   ungoverned      — all four agents, conflicting actuations admitted
 *                     (the naive "just deploy them together");
 *   arbitrated      — all four agents behind the InterferenceArbiter.
 * Reported: primary P99, harvested capacity, node energy, and the
 * number of conflicting actuations observed/resolved.
 *
 * Panel 2 scales the arbitrated node to a small fleet via ClusterDriver
 * and reports per-node and aggregate behavior; the full fleet metric
 * registry is embedded in this bench's BENCH_fig_interference.json.
 */
#include <iostream>

#include "cluster/cluster_driver.h"
#include "cluster/multi_agent_node.h"
#include "telemetry/metric_registry.h"

using sol::cluster::ClusterConfig;
using sol::cluster::ClusterDriver;
using sol::cluster::MultiAgentNode;
using sol::cluster::MultiAgentNodeConfig;
using sol::telemetry::BenchJson;
using sol::telemetry::TableWriter;

namespace {

constexpr auto kDuration = sol::sim::Seconds(60);

struct NodeRunResult {
    double p99_ms = 0.0;
    double harvested_core_s = 0.0;
    double energy_j = 0.0;
    std::uint64_t conflicts_observed = 0;
    std::uint64_t conflicts_resolved = 0;
    std::uint64_t total_epochs = 0;
};

NodeRunResult
RunNode(MultiAgentNodeConfig config)
{
    sol::sim::EventQueue queue;
    MultiAgentNode node(queue, config);
    node.Start();
    queue.RunFor(kDuration);
    node.CollectMetrics();

    NodeRunResult result;
    result.p99_ms = node.primary_workload().PerformanceValue();
    result.harvested_core_s =
        node.metrics().Gauge("node.harvested_core_seconds");
    result.energy_j = node.node().EnergyJoules();
    result.conflicts_observed = node.arbiter().conflicts_observed();
    result.conflicts_resolved = node.arbiter().conflicts_resolved();
    result.total_epochs = node.TotalEpochs();
    node.Stop();
    return result;
}

}  // namespace

int
main()
{
    std::cout << "=== Interference: co-located agents on one node ===\n";
    std::cout << "(primary-VM P99 under SmartOverclock + SmartHarvest +"
              << " SmartMemory + SmartMonitor, 60 s simulated)\n\n";

    BenchJson json("fig_interference");
    TableWriter table({"config", "P99 ms", "harvested core-s",
                       "energy J", "conflicts seen",
                       "conflicts resolved", "epochs"});

    const auto add_row = [&table](const char* name,
                                  const NodeRunResult& r) {
        table.AddRow({name, TableWriter::Num(r.p99_ms, 1),
                      TableWriter::Num(r.harvested_core_s, 0),
                      TableWriter::Num(r.energy_j, 0),
                      std::to_string(r.conflicts_observed),
                      std::to_string(r.conflicts_resolved),
                      std::to_string(r.total_epochs)});
    };

    MultiAgentNodeConfig harvest_only;
    harvest_only.run_overclock = false;
    harvest_only.run_memory = false;
    harvest_only.run_monitor = false;
    add_row("harvest-only", RunNode(harvest_only));

    MultiAgentNodeConfig overclock_only;
    overclock_only.run_harvest = false;
    overclock_only.run_memory = false;
    overclock_only.run_monitor = false;
    add_row("overclock-only", RunNode(overclock_only));

    MultiAgentNodeConfig ungoverned;
    ungoverned.arbiter.enabled = false;
    add_row("all-agents ungoverned", RunNode(ungoverned));

    MultiAgentNodeConfig arbitrated;
    add_row("all-agents arbitrated", RunNode(arbitrated));

    table.Print(std::cout);
    std::cout << "\nThe ungoverned node admits every conflicting"
              << " actuation (boosting frequency on cores the primary"
              << " just lost); the arbiter resolves each conflict toward"
              << " the safe action at a small efficiency cost.\n";
    json.AddTable("single_node", table);

    // --- Panel 2: the arbitrated node, fleet-scaled. -------------------
    std::cout << "\n=== Fleet: 4 arbitrated nodes, one virtual clock ==="
              << "\n\n";
    ClusterConfig fleet_config;
    fleet_config.num_nodes = 4;
    ClusterDriver driver(fleet_config);
    driver.Run(kDuration);

    TableWriter fleet_table({"node", "P99 ms", "epochs",
                             "conflicts resolved"});
    for (std::size_t i = 0; i < driver.num_nodes(); ++i) {
        MultiAgentNode& node = driver.node(i);
        fleet_table.AddRow(
            {node.name(),
             TableWriter::Num(node.primary_workload().PerformanceValue(),
                              1),
             std::to_string(node.TotalEpochs()),
             std::to_string(node.arbiter().conflicts_resolved())});
    }
    fleet_table.Print(std::cout);

    const sol::cluster::FleetStats fleet = driver.Stats();
    std::cout << "\nfleet totals: epochs=" << fleet.total_epochs
              << " actions=" << fleet.total_actions
              << " safeguard_triggers=" << fleet.safeguard_triggers
              << " conflicts_resolved=" << fleet.conflicts_resolved
              << "\n";
    json.AddTable("fleet_nodes", fleet_table);

    sol::telemetry::MetricRegistry fleet_metrics;
    driver.CollectFleetMetrics(fleet_metrics);
    json.AddMetrics("fleet_metrics", fleet_metrics);
    driver.Stop();

    json.WriteFile();
    return 0;
}
