/**
 * @file
 * Thread-scaling bench for the sharded fleet executor.
 *
 * Where micro_fleet measures the serial fleet (every node interleaved
 * on one queue), fleet_scale measures the thing the sharded runner
 * exists for: the same fleet — 64 nodes × 77 agents, ~4.9k concurrent
 * learning agents — stepped across real worker threads, with hard
 * verdicts:
 *
 *  1. Determinism: the combined fleet trace hash (an order-independent
 *     fold of every shard's per-event (time, sequence) fingerprint)
 *     must be byte-identical across every tested thread count. Any
 *     divergence fails the bench (non-zero exit) — parallelism must
 *     never buy speed with correctness.
 *  2. Scaling: with enough hardware, 8 worker threads must deliver at
 *     least 3× the single-thread event throughput. The check is only
 *     enforced when the host actually has that many cores (CI smoke
 *     runs and laptop containers still verify determinism).
 *  3. Flight recorder: traced runs (one SPSC track per shard plus a
 *     fleet window track, all virtual-timestamped) must serialize
 *     byte-identical Chrome JSON across repeated runs AND across
 *     thread counts, must not perturb the simulation (same events,
 *     same fleet hash), and (in --smoke) must cost <= 5% throughput.
 *     The widest traced run is written to TRACE_fleet_scale.json
 *     (Perfetto-loadable).
 *
 * The heterogeneous-load knobs are on (period jitter + burst-profile
 * synthetics), so shards carry non-uniform work and the scaling curve
 * reflects imbalance a real fleet would have, not a lockstep best
 * case. Results land in BENCH_fleet_scale.json: the per-thread-count
 * scaling curve plus the determinism, trace, and overhead verdicts.
 */
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "fleet/fleet_runner.h"
#include "telemetry/metric_registry.h"
#include "telemetry/trace.h"

using sol::cluster::FleetStats;
using sol::fleet::FleetConfig;
using sol::fleet::ShardedFleetRunner;
using sol::sim::EventQueueStats;
using sol::telemetry::BenchJson;
using sol::telemetry::TableWriter;
using sol::telemetry::trace::ChromeTraceWriter;
using sol::telemetry::trace::TraceSession;

namespace {

// Sanitizers multiply the cost of the recorder's atomics far beyond
// production reality, so the overhead budget is report-only in
// sanitized builds (every determinism verdict still gates).
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
constexpr bool kSanitizedBuild = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
constexpr bool kSanitizedBuild = true;
#else
constexpr bool kSanitizedBuild = false;
#endif
#else
constexpr bool kSanitizedBuild = false;
#endif

struct BenchConfig {
    std::size_t num_nodes = 64;
    std::size_t synthetic_agents = 73;  ///< 73 + 4 real = 77 per node.
    std::uint64_t base_seed = 1;
    std::uint64_t min_events = 10'000'000;
    sol::sim::Duration window = sol::sim::Millis(100);
    std::vector<std::size_t> thread_counts = {1, 2, 4, 8};
    double required_speedup = 3.0;  ///< At the largest thread count.
    bool smoke = false;
    /** Guard rail per shard; drops make the run invalid, not silent. */
    std::size_t queue_pending_limit = std::size_t{1} << 20;
};

struct RunResult {
    std::size_t threads = 0;
    std::uint64_t events = 0;
    double wall_seconds = 0.0;
    double events_per_sec = 0.0;
    double sim_seconds = 0.0;
    std::uint64_t trace_hash = 0;
    EventQueueStats queue;
    FleetStats fleet;
    std::string trace_json;             ///< Traced runs only.
    std::uint64_t trace_recorded = 0;   ///< Traced runs only.
    std::uint64_t trace_dropped = 0;    ///< Traced runs only.
};

RunResult
RunFleet(const BenchConfig& bench, std::size_t threads, bool traced)
{
    TraceSession session;
    FleetConfig config;
    config.num_nodes = bench.num_nodes;
    config.num_shards = bench.num_nodes;  // One shard per node.
    config.num_threads = threads;
    config.base_seed = bench.base_seed;
    config.window = bench.window;
    config.queue_pending_limit = bench.queue_pending_limit;
    config.node.synthetic_agents = bench.synthetic_agents;
    // Non-uniform shard load: heterogeneous synthetic schedules.
    config.node.synthetic.period_jitter = 0.15;
    config.node.synthetic.burst_fraction = 0.125;
    if (traced) {
        config.trace = &session;
    }
    ShardedFleetRunner runner(config);

    const auto start = std::chrono::steady_clock::now();
    while (runner.total_executed() < bench.min_events) {
        const std::uint64_t before = runner.total_executed();
        runner.Run(bench.window);
        if (runner.total_executed() == before) {
            break;  // Stalled fleet; the caller fails the shortfall.
        }
    }
    const auto end = std::chrono::steady_clock::now();
    runner.Stop();

    RunResult result;
    result.threads = runner.num_threads();
    result.events = runner.total_executed();
    result.wall_seconds =
        std::chrono::duration<double>(end - start).count();
    result.events_per_sec =
        static_cast<double>(result.events) / result.wall_seconds;
    result.sim_seconds = sol::sim::ToSeconds(runner.Now());
    result.trace_hash = runner.fleet_trace_hash();
    result.queue = runner.QueueStats();
    result.fleet = runner.Stats();
    if (traced) {
        result.trace_recorded = session.total_recorded();
        result.trace_dropped = session.total_dropped();
        // All workers are parked; draining here is quiescent.
        result.trace_json = ChromeTraceWriter::ToString(session);
    }
    return result;
}

std::string
Hex(std::uint64_t value)
{
    std::ostringstream os;
    os << "0x" << std::hex << value;
    return os.str();
}

}  // namespace

int
main(int argc, char** argv)
{
    BenchConfig bench;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke") {
            // CI-sized: same 77-agent node shape, smaller fleet/target.
            // Smoke is the determinism gate; the scaling verdict is the
            // full bench's (CI runners are too small and too noisy for
            // a hard throughput assertion).
            bench.smoke = true;
            bench.num_nodes = 8;
            bench.min_events = 400'000;
            bench.thread_counts = {1, 2};
            bench.required_speedup = 0.0;
        } else {
            std::cerr << "usage: fleet_scale [--smoke]\n";
            return 2;
        }
    }
    const std::size_t agents_per_node = bench.synthetic_agents + 4;
    const unsigned hardware = std::thread::hardware_concurrency();

    std::cout << "=== fleet_scale: sharded fleet executor thread "
              << "scaling ===\n";
    std::cout << "(" << bench.num_nodes << " nodes x " << agents_per_node
              << " agents = " << bench.num_nodes * agents_per_node
              << " agents, one shard per node, >=" << bench.min_events
              << " events per run, " << hardware
              << " hardware threads)\n\n";

    BenchJson json("fleet_scale");

    TableWriter config_table({"nodes", "agents/node", "total agents",
                              "shards", "seed", "window ms",
                              "min events", "hw threads"});
    config_table.AddRow(
        {std::to_string(bench.num_nodes),
         std::to_string(agents_per_node),
         std::to_string(bench.num_nodes * agents_per_node),
         std::to_string(bench.num_nodes),
         std::to_string(bench.base_seed),
         TableWriter::Num(sol::sim::ToMillis(bench.window), 0),
         std::to_string(bench.min_events), std::to_string(hardware)});
    config_table.Print(std::cout);
    json.AddTable("config", config_table);

    std::vector<RunResult> runs;
    for (const std::size_t threads : bench.thread_counts) {
        runs.push_back(RunFleet(bench, threads, /*traced=*/false));
    }
    const RunResult& base = runs.front();

    // --- Flight-recorder legs. Two traced runs at the base thread
    // count (byte-determinism), one at the widest (thread-count
    // invariance of the trace itself), and one extra untraced run at
    // the base count so the overhead probe starts best-of-2 per side
    // (it resamples below if the first estimate misses the budget).
    const std::size_t base_threads = bench.thread_counts.front();
    const std::size_t widest_threads = bench.thread_counts.back();
    RunResult untraced_again =
        RunFleet(bench, base_threads, /*traced=*/false);
    RunResult traced_a = RunFleet(bench, base_threads, /*traced=*/true);
    RunResult traced_b = RunFleet(bench, base_threads, /*traced=*/true);
    RunResult traced_wide =
        RunFleet(bench, widest_threads, /*traced=*/true);

    std::cout << "\n";
    TableWriter scaling({"threads", "events", "wall s", "events/sec",
                         "speedup", "sim s", "trace hash"});
    for (const RunResult& run : runs) {
        scaling.AddRow(
            {std::to_string(run.threads), std::to_string(run.events),
             TableWriter::Num(run.wall_seconds, 2),
             TableWriter::Num(run.events_per_sec, 0),
             TableWriter::Num(run.events_per_sec / base.events_per_sec,
                              2),
             TableWriter::Num(run.sim_seconds, 1),
             Hex(run.trace_hash)});
    }
    scaling.Print(std::cout);
    json.AddTable("scaling", scaling);

    std::cout << "\n";
    TableWriter queue_table({"scheduled", "executed", "cancelled",
                             "dropped", "pending", "peak pending",
                             "arena slots"});
    queue_table.AddRow({std::to_string(base.queue.scheduled),
                        std::to_string(base.queue.executed),
                        std::to_string(base.queue.cancelled),
                        std::to_string(base.queue.dropped),
                        std::to_string(base.queue.pending),
                        std::to_string(base.queue.peak_pending),
                        std::to_string(base.queue.arena_capacity)});
    queue_table.Print(std::cout);
    json.AddTable("queue_stats", queue_table);

    std::cout << "\n";
    TableWriter fleet_table({"agents", "epochs", "actions",
                             "safeguard triggers", "arbiter requests",
                             "conflicts seen", "conflicts resolved"});
    fleet_table.AddRow({std::to_string(base.fleet.total_agents),
                        std::to_string(base.fleet.total_epochs),
                        std::to_string(base.fleet.total_actions),
                        std::to_string(base.fleet.safeguard_triggers),
                        std::to_string(base.fleet.arbiter_requests),
                        std::to_string(base.fleet.conflicts_observed),
                        std::to_string(base.fleet.conflicts_resolved)});
    fleet_table.Print(std::cout);
    json.AddTable("fleet_stats", fleet_table);

    bool deterministic = true;
    for (const RunResult& run : runs) {
        deterministic = deterministic &&
                        run.trace_hash == base.trace_hash &&
                        run.events == base.events;
    }
    bool complete = base.events >= bench.min_events;
    for (const RunResult& run : runs) {
        complete = complete && run.queue.dropped == 0;
    }

    // Trace verdicts: identical bytes across repeated runs and across
    // thread counts, and tracing leaves the simulation untouched.
    const bool trace_repeatable = traced_a.trace_json == traced_b.trace_json;
    const bool trace_thread_invariant =
        traced_wide.trace_json == traced_a.trace_json;
    const bool trace_nonperturbing =
        traced_a.trace_hash == base.trace_hash &&
        traced_a.events == base.events;
    if (!trace_repeatable) {
        std::cerr << "FAIL: traced runs serialized different bytes ("
                  << traced_a.trace_json.size() << " vs "
                  << traced_b.trace_json.size() << ")\n";
    }
    if (!trace_thread_invariant) {
        std::cerr << "FAIL: trace bytes differ across thread counts ("
                  << traced_a.trace_json.size() << " vs "
                  << traced_wide.trace_json.size() << ")\n";
    }
    if (!trace_nonperturbing) {
        std::cerr << "FAIL: tracing perturbed the simulation (hash "
                  << Hex(traced_a.trace_hash) << " vs "
                  << Hex(base.trace_hash) << ", events "
                  << traced_a.events << " vs " << base.events << ")\n";
    }

    double untraced_eps =
        std::max(base.events_per_sec, untraced_again.events_per_sec);
    double traced_eps =
        std::max(traced_a.events_per_sec, traced_b.events_per_sec);
    double overhead = std::max(0.0, 1.0 - traced_eps / untraced_eps);
    // Sub-second legs mean one noisy scheduling quantum can fake
    // several percent of "overhead". Before failing, keep sampling
    // interleaved untraced/traced rounds (best-of-N per side) until
    // the budget is met or rounds run out.
    const bool overhead_gated = bench.smoke && !kSanitizedBuild;
    for (int round = 0; overhead_gated && overhead > 0.05 && round < 3;
         ++round) {
        const RunResult u =
            RunFleet(bench, base_threads, /*traced=*/false);
        const RunResult t =
            RunFleet(bench, base_threads, /*traced=*/true);
        untraced_eps = std::max(untraced_eps, u.events_per_sec);
        traced_eps = std::max(traced_eps, t.events_per_sec);
        overhead = std::max(0.0, 1.0 - traced_eps / untraced_eps);
    }
    const bool overhead_ok = !overhead_gated || overhead <= 0.05;
    if (!overhead_ok) {
        std::cerr << "FAIL: tracer overhead " << overhead * 100.0
                  << "% exceeds the 5% budget\n";
    }

    std::cout << "\n";
    TableWriter tracer({"leg", "threads", "events", "events/sec",
                        "recorded", "dropped"});
    tracer.AddRow({"untraced", std::to_string(base_threads),
                   std::to_string(base.events),
                   TableWriter::Num(untraced_eps, 0), "0", "0"});
    tracer.AddRow({"traced", std::to_string(base_threads),
                   std::to_string(traced_a.events),
                   TableWriter::Num(traced_eps, 0),
                   std::to_string(traced_a.trace_recorded),
                   std::to_string(traced_a.trace_dropped)});
    tracer.AddRow({"overhead", "-", "-",
                   TableWriter::Num(overhead * 100.0, 2) + "%", "-",
                   "-"});
    tracer.Print(std::cout);
    json.AddTable("tracer_overhead", tracer);

    const bool wrote_trace = ChromeTraceWriter::WriteFile(
        "fleet_scale", traced_wide.trace_json);

    const RunResult& widest = runs.back();
    const double speedup =
        widest.events_per_sec / base.events_per_sec;
    // Scaling is only a hard verdict when the host has the cores to
    // deliver it; determinism is a hard verdict everywhere.
    const bool scaling_measurable =
        hardware >= widest.threads && widest.threads > 1 &&
        bench.required_speedup > 0.0;
    const bool scaled =
        !scaling_measurable || speedup >= bench.required_speedup;

    std::cout << "\n";
    TableWriter verdict({"deterministic", "trace bytes", "trace vs hash",
                         "tracer overhead", "speedup@" +
                                               std::to_string(
                                                   widest.threads),
                         "required", "scaling enforced"});
    verdict.AddRow(
        {deterministic ? "yes" : "NO",
         trace_repeatable && trace_thread_invariant ? "identical"
                                                    : "DIVERGED",
         trace_nonperturbing ? "unperturbed" : "PERTURBED",
         TableWriter::Num(overhead * 100.0, 2) + "%" +
             (!bench.smoke          ? " (report only)"
              : kSanitizedBuild     ? " (report only: sanitized)"
              : overhead_ok         ? " (PASS)"
                                    : " (FAIL)"),
         TableWriter::Num(speedup, 2),
         TableWriter::Num(bench.required_speedup, 1),
         scaling_measurable ? "yes" : "no (too few cores)"});
    verdict.Print(std::cout);
    json.AddTable("verdict", verdict);

    std::cout << "\nSame seed, same shards, different thread counts: "
              << "every run must replay byte-identical per-shard "
              << "traces; the fleet hash folds them "
              << "order-independently.\n";
    json.WriteFile();
    if (wrote_trace) {
        std::cout << "trace: TRACE_fleet_scale.json ("
                  << traced_wide.trace_recorded << " events recorded, "
                  << traced_wide.trace_dropped << " dropped)\n";
    }

    if (!deterministic) {
        std::cerr << "FAIL: fleet trace diverged across thread "
                  << "counts\n";
        return 1;
    }
    if (!complete) {
        std::cerr << "FAIL: run degraded (events: " << base.events
                  << " of " << bench.min_events
                  << " required, drops must be zero)\n";
        return 1;
    }
    if (!trace_repeatable || !trace_thread_invariant ||
        !trace_nonperturbing || !overhead_ok) {
        std::cerr << "FAIL: flight-recorder verdicts failed\n";
        return 1;
    }
    if (!scaled) {
        std::cerr << "FAIL: speedup at " << widest.threads
                  << " threads is " << speedup << "x, required "
                  << bench.required_speedup << "x\n";
        return 1;
    }
    return 0;
}
