/**
 * @file
 * Fleet-scale throughput bench for the simulation core.
 *
 * Where micro_runtime measures single-operation costs, micro_fleet
 * measures the thing the ROADMAP's "million-event multi-node
 * simulations" leg actually needs: sustained events/sec of the shared
 * EventQueue under deployment-shaped pressure — multiple nodes, each
 * running the paper's four real agents plus synthetic filler agents up
 * to the production count of 77 agents per node, all multiplexed onto
 * one virtual clock.
 *
 * The run advances the fleet in fixed slices of simulated time until at
 * least the target number of events has executed, recording wall-clock
 * latency per slice (p50/p90/p99 — the fleet's "epoch latency") and the
 * queue's arena statistics. It then repeats the identical run from the
 * same seed and compares EventQueue::trace_hash() fingerprints: any
 * divergence in event order or timing across the two runs is a
 * determinism regression and fails the bench (non-zero exit), which the
 * CI smoke step (`micro_fleet --smoke`) turns into a red build.
 *
 * Results land in BENCH_micro_fleet.json; docs/PERFORMANCE.md explains
 * how to read them and tracks before/after numbers across queue
 * changes.
 */
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/cluster_driver.h"
#include "telemetry/metric_registry.h"

using sol::cluster::ClusterConfig;
using sol::cluster::ClusterDriver;
using sol::cluster::FleetStats;
using sol::sim::EventQueueStats;
using sol::telemetry::BenchJson;
using sol::telemetry::TableWriter;

namespace {

struct BenchConfig {
    std::size_t num_nodes = 8;
    std::size_t synthetic_agents = 73;  ///< 73 + 4 real = 77 per node.
    std::uint64_t base_seed = 1;
    std::uint64_t min_events = 1'500'000;
    sol::sim::Duration slice = sol::sim::Millis(100);
    /** Guard rail: an event storm becomes a loud drop counter. */
    std::size_t queue_pending_limit = std::size_t{1} << 20;
};

struct RunResult {
    std::uint64_t events = 0;
    double wall_seconds = 0.0;
    double events_per_sec = 0.0;
    double p50_ms = 0.0;
    double p90_ms = 0.0;
    double p99_ms = 0.0;
    double max_ms = 0.0;
    double sim_seconds = 0.0;
    std::uint64_t trace_hash = 0;
    EventQueueStats queue;
    FleetStats fleet;
};

double
Percentile(const std::vector<double>& sorted, double q)
{
    if (sorted.empty()) {
        return 0.0;
    }
    const auto rank = static_cast<std::size_t>(
        q * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[std::min(rank, sorted.size() - 1)];
}

RunResult
RunFleet(const BenchConfig& bench)
{
    ClusterConfig config;
    config.num_nodes = bench.num_nodes;
    config.base_seed = bench.base_seed;
    config.queue_pending_limit = bench.queue_pending_limit;
    config.node.synthetic_agents = bench.synthetic_agents;
    ClusterDriver driver(config);

    std::vector<double> slice_ms;
    const auto start = std::chrono::steady_clock::now();
    while (driver.queue().executed() < bench.min_events) {
        const std::uint64_t before = driver.queue().executed();
        const auto t0 = std::chrono::steady_clock::now();
        driver.Run(bench.slice);
        const auto t1 = std::chrono::steady_clock::now();
        slice_ms.push_back(
            std::chrono::duration<double, std::milli>(t1 - t0).count());
        if (driver.queue().executed() == before) {
            // Stalled fleet (e.g. drops shed the re-arm events): bail
            // out with what we have rather than spinning forever; the
            // caller fails the run on the event shortfall.
            break;
        }
    }
    const auto end = std::chrono::steady_clock::now();
    driver.Stop();

    RunResult result;
    result.events = driver.queue().executed();
    result.wall_seconds =
        std::chrono::duration<double>(end - start).count();
    result.events_per_sec =
        static_cast<double>(result.events) / result.wall_seconds;
    std::sort(slice_ms.begin(), slice_ms.end());
    result.p50_ms = Percentile(slice_ms, 0.50);
    result.p90_ms = Percentile(slice_ms, 0.90);
    result.p99_ms = Percentile(slice_ms, 0.99);
    result.max_ms = slice_ms.empty() ? 0.0 : slice_ms.back();
    result.sim_seconds = sol::sim::ToSeconds(driver.queue().Now());
    result.trace_hash = driver.queue().trace_hash();
    result.queue = driver.queue().stats();
    result.fleet = driver.Stats();
    return result;
}

std::string
Hex(std::uint64_t value)
{
    std::ostringstream os;
    os << "0x" << std::hex << value;
    return os.str();
}

}  // namespace

int
main(int argc, char** argv)
{
    BenchConfig bench;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke") {
            // CI-sized: same 77-agent node shape, smaller fleet/target.
            bench.num_nodes = 2;
            bench.min_events = 150'000;
        } else {
            std::cerr << "usage: micro_fleet [--smoke]\n";
            return 2;
        }
    }
    const std::size_t agents_per_node = bench.synthetic_agents + 4;

    std::cout << "=== micro_fleet: simulation-core throughput at fleet "
              << "scale ===\n";
    std::cout << "(" << bench.num_nodes << " nodes x " << agents_per_node
              << " agents, one shared EventQueue, >=" << bench.min_events
              << " events, run twice for determinism)\n\n";

    BenchJson json("micro_fleet");

    TableWriter config_table({"nodes", "agents/node", "total agents",
                              "seed", "slice ms", "min events"});
    config_table.AddRow(
        {std::to_string(bench.num_nodes),
         std::to_string(agents_per_node),
         std::to_string(bench.num_nodes * agents_per_node),
         std::to_string(bench.base_seed),
         TableWriter::Num(sol::sim::ToMillis(bench.slice), 0),
         std::to_string(bench.min_events)});
    config_table.Print(std::cout);
    json.AddTable("config", config_table);

    const RunResult a = RunFleet(bench);
    const RunResult b = RunFleet(bench);
    const bool deterministic =
        a.trace_hash == b.trace_hash && a.events == b.events;
    // Drops shed events (possibly stalling agents for the rest of the
    // run) and a stall leaves the event target unmet; either makes the
    // numbers invalid even when both runs degrade identically.
    const bool complete = a.queue.dropped == 0 && b.queue.dropped == 0 &&
                          a.events >= bench.min_events;

    std::cout << "\n";
    TableWriter throughput({"run", "events", "wall s", "events/sec",
                            "sim s", "slice p50 ms", "slice p90 ms",
                            "slice p99 ms", "slice max ms"});
    for (const auto* run : {&a, &b}) {
        throughput.AddRow({run == &a ? "1" : "2",
                           std::to_string(run->events),
                           TableWriter::Num(run->wall_seconds, 2),
                           TableWriter::Num(run->events_per_sec, 0),
                           TableWriter::Num(run->sim_seconds, 1),
                           TableWriter::Num(run->p50_ms, 2),
                           TableWriter::Num(run->p90_ms, 2),
                           TableWriter::Num(run->p99_ms, 2),
                           TableWriter::Num(run->max_ms, 2)});
    }
    throughput.Print(std::cout);
    json.AddTable("throughput", throughput);

    std::cout << "\n";
    TableWriter queue_table({"scheduled", "executed", "cancelled",
                             "dropped", "pending", "peak pending",
                             "arena slots", "arena blocks"});
    queue_table.AddRow({std::to_string(a.queue.scheduled),
                        std::to_string(a.queue.executed),
                        std::to_string(a.queue.cancelled),
                        std::to_string(a.queue.dropped),
                        std::to_string(a.queue.pending),
                        std::to_string(a.queue.peak_pending),
                        std::to_string(a.queue.arena_capacity),
                        std::to_string(a.queue.arena_blocks)});
    queue_table.Print(std::cout);
    json.AddTable("queue_stats", queue_table);

    std::cout << "\n";
    TableWriter fleet_table({"agents", "epochs", "actions",
                             "safeguard triggers", "arbiter requests",
                             "conflicts seen", "conflicts resolved"});
    fleet_table.AddRow({std::to_string(a.fleet.total_agents),
                        std::to_string(a.fleet.total_epochs),
                        std::to_string(a.fleet.total_actions),
                        std::to_string(a.fleet.safeguard_triggers),
                        std::to_string(a.fleet.arbiter_requests),
                        std::to_string(a.fleet.conflicts_observed),
                        std::to_string(a.fleet.conflicts_resolved)});
    fleet_table.Print(std::cout);
    json.AddTable("fleet_stats", fleet_table);

    std::cout << "\n";
    TableWriter determinism({"run 1 trace hash", "run 2 trace hash",
                             "deterministic"});
    determinism.AddRow({Hex(a.trace_hash), Hex(b.trace_hash),
                        deterministic ? "yes" : "NO"});
    determinism.Print(std::cout);
    json.AddTable("determinism", determinism);

    std::cout << "\nSame seed, same trace: two independent "
              << (a.events >= 1'000'000 ? "million-event " : "")
              << "fleet runs must produce identical event traces; the "
              << "hash folds every (time, sequence) pair executed.\n";
    json.WriteFile();

    if (!deterministic) {
        std::cerr << "FAIL: fleet trace diverged between identical "
                  << "runs\n";
        return 1;
    }
    if (!complete) {
        std::cerr << "FAIL: run degraded (queue drops: "
                  << a.queue.dropped << "/" << b.queue.dropped
                  << ", events: " << a.events << " of "
                  << bench.min_events << " required)\n";
        return 1;
    }
    return 0;
}
