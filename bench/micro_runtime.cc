/**
 * @file
 * Google-benchmark micro-benchmarks for the SOL runtime primitives and
 * learning models: the per-operation costs that determine whether an
 * agent fits inside its production resource budget (e.g. 1% of a core).
 */
#include <benchmark/benchmark.h>

#include "core/schedule.h"
#include "ml/cost_sensitive.h"
#include "ml/qlearning.h"
#include "ml/thompson.h"
#include "sim/event_queue.h"
#include "sim/rng.h"
#include "telemetry/online_stats.h"
#include "telemetry/window_percentile.h"

namespace {

void
BM_RngNextDouble(benchmark::State& state)
{
    sol::sim::Rng rng(1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(rng.NextDouble());
    }
}
BENCHMARK(BM_RngNextDouble);

void
BM_RngBeta(benchmark::State& state)
{
    sol::sim::Rng rng(1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(rng.NextBeta(3.0, 5.0));
    }
}
BENCHMARK(BM_RngBeta);

void
BM_EventQueueScheduleAndRun(benchmark::State& state)
{
    for (auto _ : state) {
        sol::sim::EventQueue queue;
        for (int i = 0; i < 1000; ++i) {
            queue.ScheduleAt(sol::sim::Millis(i), [] {});
        }
        queue.RunUntil(sol::sim::Seconds(10));
        benchmark::DoNotOptimize(queue.executed());
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleAndRun);

// Steady-state churn: 1000 concurrent self-rescheduling events (the
// PeriodicTask / runtime-loop pattern). Every firing recycles its own
// arena slot; items/sec is sustained simulation throughput.
void
BM_EventQueueSteadyChurn(benchmark::State& state)
{
    sol::sim::EventQueue queue;
    std::function<void(int)> arm = [&](int i) {
        queue.ScheduleAfter(sol::sim::Micros(50 + i % 97),
                            [&arm, i] { arm(i); });
    };
    for (int i = 0; i < 1000; ++i) {
        arm(i);
    }
    const std::uint64_t before = queue.executed();
    for (auto _ : state) {
        queue.RunFor(sol::sim::Millis(1));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(queue.executed() - before));
}
BENCHMARK(BM_EventQueueSteadyChurn);

// Cancellation-heavy churn: each firing also arms and immediately
// cancels a timeout (SimRuntime re-arms its actuator timeout on every
// action). Eager arena removal keeps cancelled events from piling up
// in the heap; the seed binary-heap queue dragged them to deadline.
void
BM_EventQueueCancelChurn(benchmark::State& state)
{
    sol::sim::EventQueue queue;
    std::function<void(int)> arm = [&](int i) {
        sol::sim::EventHandle timeout =
            queue.ScheduleAfter(sol::sim::Millis(5), [] {});
        timeout.Cancel();
        queue.ScheduleAfter(sol::sim::Micros(50 + i % 97),
                            [&arm, i] { arm(i); });
    };
    for (int i = 0; i < 1000; ++i) {
        arm(i);
    }
    const std::uint64_t before = queue.executed();
    for (auto _ : state) {
        queue.RunFor(sol::sim::Millis(1));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(queue.executed() - before));
}
BENCHMARK(BM_EventQueueCancelChurn);

void
BM_QLearnerUpdate(benchmark::State& state)
{
    sol::ml::QLearnerConfig config;
    config.num_states = 24;
    config.num_actions = 3;
    sol::ml::QLearner learner(config);
    std::size_t s = 0;
    for (auto _ : state) {
        learner.Update(s % 24, s % 3, 1.0, (s + 1) % 24);
        ++s;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QLearnerUpdate);

void
BM_CostSensitivePredict(benchmark::State& state)
{
    sol::ml::CostSensitiveConfig config;
    config.num_classes = 7;
    config.num_bits = 16;
    sol::ml::CostSensitiveClassifier clf(config);
    sol::ml::FeatureVector x(16);
    x.AddBias();
    for (int i = 0; i < 8; ++i) {
        x.Add("f" + std::to_string(i), 0.5);
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(clf.Predict(x));
    }
}
BENCHMARK(BM_CostSensitivePredict);

void
BM_CostSensitiveUpdate(benchmark::State& state)
{
    sol::ml::CostSensitiveConfig config;
    config.num_classes = 7;
    config.num_bits = 16;
    sol::ml::CostSensitiveClassifier clf(config);
    sol::ml::FeatureVector x(16);
    x.AddBias();
    for (int i = 0; i < 8; ++i) {
        x.Add("f" + std::to_string(i), 0.5);
    }
    const std::vector<double> costs = {3, 2, 1, 0, 1, 2, 3};
    for (auto _ : state) {
        clf.Update(x, costs);
    }
}
BENCHMARK(BM_CostSensitiveUpdate);

void
BM_ThompsonSelect(benchmark::State& state)
{
    sol::ml::ThompsonSampler ts(6);
    sol::sim::Rng rng(1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(ts.SelectArm(rng));
    }
}
BENCHMARK(BM_ThompsonSelect);

void
BM_WindowPercentileAddQuery(benchmark::State& state)
{
    sol::telemetry::WindowPercentile wp(sol::sim::Seconds(100));
    sol::sim::Rng rng(1);
    std::int64_t t = 0;
    for (auto _ : state) {
        wp.Add(sol::sim::Seconds(t), rng.NextDouble());
        if (t % 10 == 0) {
            benchmark::DoNotOptimize(
                wp.Quantile(sol::sim::Seconds(t), 0.9));
        }
        ++t;
    }
}
BENCHMARK(BM_WindowPercentileAddQuery);

void
BM_ScheduleParse(benchmark::State& state)
{
    const std::string text =
        "data_per_epoch = 10\ndata_collect_interval = 100ms\n"
        "max_epoch_time = 1500ms\nmax_actuation_delay = 5s\n";
    for (auto _ : state) {
        std::istringstream in(text);
        benchmark::DoNotOptimize(sol::core::ParseSchedule(in));
    }
}
BENCHMARK(BM_ScheduleParse);

}  // namespace

BENCHMARK_MAIN();
