/**
 * @file
 * Single-node concurrency bench: the simulated MultiAgentNode (one
 * event queue interleaving 77 agents) against the ThreadedMultiAgentNode
 * (77 agents on their own runtime threads, hammering one hardened
 * InterferenceArbiter on the wall clock).
 *
 * The two backends answer different questions, so both are reported:
 * the simulated node gives deterministic virtual throughput (events/s
 * of the shared queue, conflicts/s of virtual time), the threaded node
 * gives real contention numbers — agent ops/s across truly concurrent
 * threads, conflicts/s of wall time, and the arbiter's lock-acquisition
 * wait (track_contention) per expand request, which the lock-table
 * design keeps in the nanoseconds.
 *
 * Observability legs (this is also the tracer's own benchmark):
 *   - Latency percentiles: epoch duration on both backends (always-on
 *     engine histogram), plus the arbiter's admit and lock-wait
 *     distributions on the threaded node.
 *   - Tracer overhead: the simulated leg runs untraced and traced
 *     (best-of-N each, same fixed virtual horizon, so the wall-clock
 *     delta isolates the recorder cost; extra interleaved rounds run
 *     only when the first estimate misses the budget); the traced run
 *     must not perturb the simulation (identical events and epochs).
 *   - Flight recording: the threaded leg runs with a TraceSession —
 *     one SPSC track per agent thread plus driver/control tracks —
 *     and the run writes TRACE_node_concurrency.json (Perfetto-
 *     loadable). Two traced sim runs must serialize byte-identically.
 *
 * Verdicts (non-zero exit on failure, also in --smoke):
 *   1. Both backends make real progress: epochs, actions, and arbiter
 *      traffic are all non-zero.
 *   2. Arbiter accounting is coherent on both: published per-agent
 *      request counters sum to the global request count, and observed
 *      conflicts bound resolved conflicts.
 *   3. The threaded node tears down clean: after Stop + CleanUpAll no
 *      synthetic agent still holds a domain.
 *   4. Tracing does not perturb the simulation, sim-mode traces are
 *      byte-deterministic, and (in --smoke) tracer overhead <= 5%.
 *
 * Results land in BENCH_node_concurrency.json; the trace in
 * TRACE_node_concurrency.json.
 */
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "cluster/multi_agent_node.h"
#include "cluster/threaded_multi_agent_node.h"
#include "sim/event_queue.h"
#include "telemetry/metric_registry.h"
#include "telemetry/trace.h"

using sol::cluster::MultiAgentNode;
using sol::cluster::MultiAgentNodeConfig;
using sol::cluster::ThreadedMultiAgentNode;
using sol::telemetry::BenchJson;
using sol::telemetry::LatencyHistogram;
using sol::telemetry::LatencySnapshot;
using sol::telemetry::TableWriter;
using sol::telemetry::trace::ChromeTraceWriter;
using sol::telemetry::trace::TraceSession;

namespace {

// Sanitizers multiply the cost of the recorder's atomics far beyond
// production reality, so the overhead budget is report-only in
// sanitized builds (the determinism verdicts still gate).
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
constexpr bool kSanitizedBuild = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
constexpr bool kSanitizedBuild = true;
#else
constexpr bool kSanitizedBuild = false;
#endif
#else
constexpr bool kSanitizedBuild = false;
#endif

struct BenchConfig {
    std::size_t synthetic_agents = 73;  ///< 73 + 4 real = 77 (paper).
    std::uint64_t seed = 1;
    sol::sim::Duration sim_horizon = sol::sim::Seconds(10);
    std::chrono::milliseconds threaded_wall{2000};
    bool smoke = false;
    /** Sim-node trace ring (small on purpose: a long horizon fills it
     *  and exercises the cheap drop path the overhead gate measures). */
    std::size_t trace_capacity = 1024;
};

/** One leg's numbers, normalized for the comparison table. */
struct LegResult {
    std::string backend;
    double wall_seconds = 0.0;
    std::uint64_t events = 0;       ///< Queue events (sim) / agent ops.
    std::uint64_t epochs = 0;
    std::uint64_t actions = 0;
    std::uint64_t requests = 0;
    std::uint64_t conflicts = 0;
    std::uint64_t lock_wait_ns = 0;  ///< Threaded only.
    LatencyHistogram epoch_hist;
    LatencyHistogram admit_hist;      ///< Threaded only.
    LatencyHistogram lock_wait_hist;  ///< Threaded only.
};

/** Agent-side work items, comparable across backends. */
std::uint64_t
AgentOps(const sol::core::RuntimeStats& stats)
{
    return stats.samples_collected + stats.model_assessments +
           stats.actions_taken + stats.actuator_assessments;
}

MultiAgentNodeConfig
MakeConfig(const BenchConfig& bench, bool threaded)
{
    MultiAgentNodeConfig config;
    config.seed = bench.seed;
    config.synthetic_agents = bench.synthetic_agents;
    config.arbiter.track_contention = threaded;
    if (threaded) {
        // Wall-clock cadence: fast enough that a ~2 s run measures
        // steady-state contention, not startup.
        config.synthetic.data_collect_interval = sol::sim::Micros(200);
        config.synthetic.max_epoch_time = sol::sim::Millis(5);
        config.synthetic.max_actuation_delay = sol::sim::Millis(10);
        config.synthetic.assess_actuator_interval = sol::sim::Millis(2);
        config.synthetic.prediction_ttl = sol::sim::Millis(10);
        // More arbiter pressure per action than the sim default, so
        // lock-wait numbers come from real contention.
        config.synthetic.expand_fraction = 0.5;
    }
    return config;
}

/** Sums per-agent request counters published by WriteMetrics. */
std::uint64_t
PublishedRequestSum(const sol::telemetry::MetricRegistry& metrics)
{
    std::uint64_t sum = 0;
    for (const auto& [key, value] : metrics.counters()) {
        const std::string suffix = ".requests";
        if (key.rfind("arbiter.", 0) == 0 &&
            key.size() > suffix.size() &&
            key.compare(key.size() - suffix.size(), suffix.size(),
                        suffix) == 0) {
            sum += value;
        }
    }
    return sum;
}

bool
CheckAccounting(const std::string& backend, std::uint64_t requests,
                std::uint64_t published, std::uint64_t observed,
                std::uint64_t resolved)
{
    bool ok = true;
    if (published != requests) {
        std::cerr << "FAIL: " << backend << " published request sum "
                  << published << " != global " << requests << "\n";
        ok = false;
    }
    if (resolved > observed) {
        std::cerr << "FAIL: " << backend << " resolved " << resolved
                  << " conflicts but only observed " << observed << "\n";
        ok = false;
    }
    return ok;
}

/**
 * One simulated-node run over the fixed virtual horizon. With a
 * session, the node records into a fresh "node0" track timestamped by
 * the queue's virtual clock.
 */
LegResult
RunSimOnce(const BenchConfig& bench, TraceSession* session, bool& ok,
           bool check)
{
    sol::sim::EventQueue queue;
    MultiAgentNodeConfig config = MakeConfig(bench, false);
    if (session != nullptr) {
        config.trace = session->NewRecorder("node0", &queue,
                                            bench.trace_capacity);
    }
    MultiAgentNode node(queue, config);
    node.Start();

    const auto start = std::chrono::steady_clock::now();
    queue.RunFor(bench.sim_horizon);
    const auto end = std::chrono::steady_clock::now();
    node.Stop();
    node.CollectMetrics();

    LegResult result;
    result.backend = "simulated";
    result.wall_seconds =
        std::chrono::duration<double>(end - start).count();
    result.events = queue.stats().executed;
    const sol::core::RuntimeStats total = node.AggregateStats();
    result.epochs = total.epochs;
    result.actions = total.actions_taken;
    result.requests = node.arbiter().requests();
    result.conflicts = node.arbiter().conflicts_resolved();
    result.epoch_hist = node.EpochLatencyHistogram();

    if (check) {
        ok = CheckAccounting("simulated", result.requests,
                             PublishedRequestSum(node.metrics()),
                             node.arbiter().conflicts_observed(),
                             node.arbiter().conflicts_resolved()) &&
             ok;
        if (result.epochs == 0 || result.actions == 0 ||
            result.requests == 0) {
            std::cerr << "FAIL: simulated node made no progress\n";
            ok = false;
        }
    }
    return result;
}

LegResult
RunThreadedNode(const BenchConfig& bench, TraceSession* session, bool& ok)
{
    MultiAgentNodeConfig config = MakeConfig(bench, true);
    config.trace_session = session;
    ThreadedMultiAgentNode<> node(config);
    node.Start();
    const auto start = std::chrono::steady_clock::now();
    std::this_thread::sleep_for(bench.threaded_wall);
    node.Stop();
    const auto end = std::chrono::steady_clock::now();
    node.CollectMetrics();

    LegResult result;
    result.backend = "threaded";
    result.wall_seconds =
        std::chrono::duration<double>(end - start).count();
    const sol::core::RuntimeStats total = node.AggregateStats();
    result.events = AgentOps(total);
    result.epochs = total.epochs;
    result.actions = total.actions_taken;
    result.requests = node.arbiter().requests();
    result.conflicts = node.arbiter().conflicts_resolved();
    result.lock_wait_ns = node.arbiter().lock_wait_ns();
    result.epoch_hist = node.EpochLatencyHistogram();
    result.admit_hist = node.arbiter().admit_histogram();
    result.lock_wait_hist = node.arbiter().lock_wait_histogram();

    ok = CheckAccounting("threaded", result.requests,
                         PublishedRequestSum(node.metrics()),
                         node.arbiter().conflicts_observed(),
                         node.arbiter().conflicts_resolved()) &&
         ok;
    if (result.epochs == 0 || result.actions == 0 ||
        result.requests == 0) {
        std::cerr << "FAIL: threaded node made no progress\n";
        ok = false;
    }

    node.CleanUpAll();
    for (std::size_t i = 0; i < node.num_synthetic_agents(); ++i) {
        if (node.synthetic_agent(i).actuator().holding()) {
            std::cerr << "FAIL: synthetic" << i
                      << " still holds its domain after CleanUpAll\n";
            ok = false;
        }
    }
    return result;
}

void
AddPercentileRow(TableWriter& table, const std::string& metric,
                 const LatencyHistogram& hist)
{
    const LatencySnapshot snap = hist.Snapshot();
    table.AddRow({metric, std::to_string(snap.count),
                  std::to_string(snap.p50_ns),
                  std::to_string(snap.p90_ns),
                  std::to_string(snap.p99_ns),
                  std::to_string(snap.p999_ns),
                  std::to_string(snap.max_ns)});
}

}  // namespace

int
main(int argc, char** argv)
{
    BenchConfig bench;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke") {
            // CI-sized: smaller fleet, shorter runs, same verdicts.
            bench.smoke = true;
            bench.synthetic_agents = 16;
            bench.sim_horizon = sol::sim::Seconds(1);
            bench.threaded_wall = std::chrono::milliseconds(400);
        } else {
            std::cerr << "usage: node_concurrency [--smoke]\n";
            return 2;
        }
    }

    const std::size_t agents = bench.synthetic_agents + 4;
    std::cout << "=== node_concurrency: simulated vs threaded "
              << "multi-agent node ===\n";
    std::cout << "(" << agents << " agents per node, "
              << std::thread::hardware_concurrency()
              << " hardware threads, sim horizon "
              << sol::sim::ToSeconds(bench.sim_horizon)
              << " s, threaded wall " << bench.threaded_wall.count()
              << " ms)\n\n";

    bool ok = true;

    // --- Simulated leg: untraced x2 / traced x2 over the same fixed
    // virtual horizon. Wall time varies with machine noise; events do
    // not, so best-of events/s is the tracer-overhead probe.
    LegResult sim_untraced = RunSimOnce(bench, nullptr, ok, true);
    {
        const LegResult again = RunSimOnce(bench, nullptr, ok, false);
        sim_untraced.wall_seconds =
            std::min(sim_untraced.wall_seconds, again.wall_seconds);
    }
    TraceSession sim_session_a;
    TraceSession sim_session_b;
    LegResult sim_traced = RunSimOnce(bench, &sim_session_a, ok, false);
    {
        const LegResult again =
            RunSimOnce(bench, &sim_session_b, ok, false);
        sim_traced.wall_seconds =
            std::min(sim_traced.wall_seconds, again.wall_seconds);
    }

    if (sim_traced.events != sim_untraced.events ||
        sim_traced.epochs != sim_untraced.epochs) {
        std::cerr << "FAIL: tracing perturbed the simulation (events "
                  << sim_traced.events << " vs " << sim_untraced.events
                  << ", epochs " << sim_traced.epochs << " vs "
                  << sim_untraced.epochs << ")\n";
        ok = false;
    }

    // Byte-determinism: two identically configured sim runs must
    // serialize the exact same trace (virtual timestamps only).
    const std::string trace_a = ChromeTraceWriter::ToString(sim_session_a);
    const std::string trace_b = ChromeTraceWriter::ToString(sim_session_b);
    const bool trace_deterministic = trace_a == trace_b;
    if (!trace_deterministic) {
        std::cerr << "FAIL: sim-mode trace bytes differ across runs ("
                  << trace_a.size() << " vs " << trace_b.size()
                  << " bytes)\n";
        ok = false;
    }

    double untraced_eps = static_cast<double>(sim_untraced.events) /
                          sim_untraced.wall_seconds;
    double traced_eps = static_cast<double>(sim_traced.events) /
                        sim_traced.wall_seconds;
    double overhead = std::max(0.0, 1.0 - traced_eps / untraced_eps);
    // The gate compares two sub-second wall times, so one noisy
    // scheduling quantum can fake several percent of "overhead". Before
    // failing, keep sampling interleaved untraced/traced rounds
    // (best-of-N per side) until the budget is met or rounds run out.
    const bool overhead_gated = bench.smoke && !kSanitizedBuild;
    for (int round = 0; overhead_gated && overhead > 0.05 && round < 3;
         ++round) {
        const LegResult u = RunSimOnce(bench, nullptr, ok, false);
        TraceSession scratch;
        const LegResult t = RunSimOnce(bench, &scratch, ok, false);
        untraced_eps = std::max(
            untraced_eps, static_cast<double>(u.events) / u.wall_seconds);
        traced_eps = std::max(
            traced_eps, static_cast<double>(t.events) / t.wall_seconds);
        overhead = std::max(0.0, 1.0 - traced_eps / untraced_eps);
    }
    if (overhead_gated && overhead > 0.05) {
        std::cerr << "FAIL: tracer overhead " << overhead * 100.0
                  << "% exceeds the 5% budget\n";
        ok = false;
    }

    // --- Threaded leg, flight recorder on: one track per agent thread
    // plus driver/control. This session becomes the trace artifact.
    TraceSession session;
    LegResult threaded = RunThreadedNode(bench, &session, ok);

    std::vector<LegResult> legs;
    legs.push_back(sim_untraced);
    legs.push_back(threaded);

    BenchJson json("node_concurrency");
    TableWriter config_table(
        {"agents", "synthetics", "seed", "sim horizon s",
         "threaded wall ms", "hw threads"});
    config_table.AddRow(
        {std::to_string(agents), std::to_string(bench.synthetic_agents),
         std::to_string(bench.seed),
         TableWriter::Num(sol::sim::ToSeconds(bench.sim_horizon), 1),
         std::to_string(bench.threaded_wall.count()),
         std::to_string(std::thread::hardware_concurrency())});
    config_table.Print(std::cout);
    json.AddTable("config", config_table);

    std::cout << "\n";
    TableWriter table({"backend", "wall s", "events", "events/sec",
                       "epochs", "actions", "arbiter reqs",
                       "conflicts", "conflicts/sec", "lock wait us",
                       "wait ns/req"});
    for (const LegResult& leg : legs) {
        const double per_sec =
            static_cast<double>(leg.events) / leg.wall_seconds;
        const double conflicts_per_sec =
            static_cast<double>(leg.conflicts) / leg.wall_seconds;
        const double wait_per_req =
            leg.requests == 0
                ? 0.0
                : static_cast<double>(leg.lock_wait_ns) /
                      static_cast<double>(leg.requests);
        table.AddRow(
            {leg.backend, TableWriter::Num(leg.wall_seconds, 2),
             std::to_string(leg.events), TableWriter::Num(per_sec, 0),
             std::to_string(leg.epochs), std::to_string(leg.actions),
             std::to_string(leg.requests),
             std::to_string(leg.conflicts),
             TableWriter::Num(conflicts_per_sec, 1),
             TableWriter::Num(
                 static_cast<double>(leg.lock_wait_ns) / 1000.0, 1),
             TableWriter::Num(wait_per_req, 1)});
    }
    table.Print(std::cout);
    json.AddTable("node_concurrency", table);

    // Latency distributions. Sim epochs are virtual ns (deterministic);
    // threaded rows are wall ns under true contention.
    std::cout << "\n";
    TableWriter percentiles({"metric", "count", "p50 ns", "p90 ns",
                             "p99 ns", "p999 ns", "max ns"});
    AddPercentileRow(percentiles, "sim epoch (virtual)",
                     sim_untraced.epoch_hist);
    AddPercentileRow(percentiles, "threaded epoch", threaded.epoch_hist);
    AddPercentileRow(percentiles, "threaded arbitration",
                     threaded.admit_hist);
    AddPercentileRow(percentiles, "threaded lock wait",
                     threaded.lock_wait_hist);
    percentiles.Print(std::cout);
    json.AddTable("latency_percentiles", percentiles);

    // Tracer cost: same virtual work, recorder on vs off.
    std::cout << "\n";
    TableWriter tracer({"leg", "events", "best wall s", "events/sec",
                        "recorded", "dropped"});
    tracer.AddRow({"untraced", std::to_string(sim_untraced.events),
                   TableWriter::Num(sim_untraced.wall_seconds, 3),
                   TableWriter::Num(untraced_eps, 0), "0", "0"});
    tracer.AddRow(
        {"traced", std::to_string(sim_traced.events),
         TableWriter::Num(sim_traced.wall_seconds, 3),
         TableWriter::Num(traced_eps, 0),
         std::to_string(sim_session_a.total_recorded()),
         std::to_string(sim_session_a.total_dropped())});
    tracer.AddRow({"overhead", "-", "-",
                   TableWriter::Num(overhead * 100.0, 2) + "%", "-",
                   "-"});
    tracer.Print(std::cout);
    json.AddTable("tracer_overhead", tracer);

    const bool wrote_trace =
        ChromeTraceWriter::WriteFile(session, "node_concurrency");

    TableWriter verdict({"check", "result"});
    verdict.AddRow({"progress+accounting+teardown",
                    ok ? "PASS" : "FAIL"});
    verdict.AddRow({"trace determinism",
                    trace_deterministic ? "PASS" : "FAIL"});
    verdict.AddRow({"tracer overhead",
                    TableWriter::Num(overhead * 100.0, 2) + "%" +
                        (!bench.smoke      ? " (report only)"
                         : kSanitizedBuild ? " (report only: sanitized)"
                         : overhead <= 0.05 ? " (PASS)"
                                            : " (FAIL)")});
    std::cout << "\n";
    verdict.Print(std::cout);
    json.AddTable("verdict", verdict);
    json.WriteFile();
    if (wrote_trace) {
        std::cout << "\ntrace: TRACE_node_concurrency.json ("
                  << session.total_recorded() << " events recorded, "
                  << session.total_dropped() << " dropped)\n";
    }

    if (!ok) {
        std::cerr << "\nnode_concurrency: FAILED\n";
        return 1;
    }
    std::cout << "\nnode_concurrency: all checks passed\n";
    return 0;
}
