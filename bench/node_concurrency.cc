/**
 * @file
 * Single-node concurrency bench: the simulated MultiAgentNode (one
 * event queue interleaving 77 agents) against the ThreadedMultiAgentNode
 * (77 agents on their own runtime threads, hammering one hardened
 * InterferenceArbiter on the wall clock).
 *
 * The two backends answer different questions, so both are reported:
 * the simulated node gives deterministic virtual throughput (events/s
 * of the shared queue, conflicts/s of virtual time), the threaded node
 * gives real contention numbers — agent ops/s across truly concurrent
 * threads, conflicts/s of wall time, and the arbiter's lock-acquisition
 * wait (track_contention) per expand request, which the lock-table
 * design keeps in the nanoseconds.
 *
 * Verdicts (non-zero exit on failure, also in --smoke):
 *   1. Both backends make real progress: epochs, actions, and arbiter
 *      traffic are all non-zero.
 *   2. Arbiter accounting is coherent on both: published per-agent
 *      request counters sum to the global request count, and observed
 *      conflicts bound resolved conflicts.
 *   3. The threaded node tears down clean: after Stop + CleanUpAll no
 *      synthetic agent still holds a domain.
 *
 * Results land in BENCH_node_concurrency.json.
 */
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "cluster/multi_agent_node.h"
#include "cluster/threaded_multi_agent_node.h"
#include "sim/event_queue.h"
#include "telemetry/metric_registry.h"

using sol::cluster::MultiAgentNode;
using sol::cluster::MultiAgentNodeConfig;
using sol::cluster::ThreadedMultiAgentNode;
using sol::telemetry::BenchJson;
using sol::telemetry::TableWriter;

namespace {

struct BenchConfig {
    std::size_t synthetic_agents = 73;  ///< 73 + 4 real = 77 (paper).
    std::uint64_t seed = 1;
    sol::sim::Duration sim_horizon = sol::sim::Seconds(10);
    std::chrono::milliseconds threaded_wall{2000};
};

/** One leg's numbers, normalized for the comparison table. */
struct LegResult {
    std::string backend;
    double wall_seconds = 0.0;
    std::uint64_t events = 0;       ///< Queue events (sim) / agent ops.
    std::uint64_t epochs = 0;
    std::uint64_t actions = 0;
    std::uint64_t requests = 0;
    std::uint64_t conflicts = 0;
    std::uint64_t lock_wait_ns = 0;  ///< Threaded only.
};

/** Agent-side work items, comparable across backends. */
std::uint64_t
AgentOps(const sol::core::RuntimeStats& stats)
{
    return stats.samples_collected + stats.model_assessments +
           stats.actions_taken + stats.actuator_assessments;
}

MultiAgentNodeConfig
MakeConfig(const BenchConfig& bench, bool threaded)
{
    MultiAgentNodeConfig config;
    config.seed = bench.seed;
    config.synthetic_agents = bench.synthetic_agents;
    config.arbiter.track_contention = threaded;
    if (threaded) {
        // Wall-clock cadence: fast enough that a ~2 s run measures
        // steady-state contention, not startup.
        config.synthetic.data_collect_interval = sol::sim::Micros(200);
        config.synthetic.max_epoch_time = sol::sim::Millis(5);
        config.synthetic.max_actuation_delay = sol::sim::Millis(10);
        config.synthetic.assess_actuator_interval = sol::sim::Millis(2);
        config.synthetic.prediction_ttl = sol::sim::Millis(10);
        // More arbiter pressure per action than the sim default, so
        // lock-wait numbers come from real contention.
        config.synthetic.expand_fraction = 0.5;
    }
    return config;
}

/** Sums per-agent request counters published by WriteMetrics. */
std::uint64_t
PublishedRequestSum(const sol::telemetry::MetricRegistry& metrics)
{
    std::uint64_t sum = 0;
    for (const auto& [key, value] : metrics.counters()) {
        const std::string suffix = ".requests";
        if (key.rfind("arbiter.", 0) == 0 &&
            key.size() > suffix.size() &&
            key.compare(key.size() - suffix.size(), suffix.size(),
                        suffix) == 0) {
            sum += value;
        }
    }
    return sum;
}

bool
CheckAccounting(const std::string& backend, std::uint64_t requests,
                std::uint64_t published, std::uint64_t observed,
                std::uint64_t resolved)
{
    bool ok = true;
    if (published != requests) {
        std::cerr << "FAIL: " << backend << " published request sum "
                  << published << " != global " << requests << "\n";
        ok = false;
    }
    if (resolved > observed) {
        std::cerr << "FAIL: " << backend << " resolved " << resolved
                  << " conflicts but only observed " << observed << "\n";
        ok = false;
    }
    return ok;
}

LegResult
RunSimNode(const BenchConfig& bench, bool& ok)
{
    sol::sim::EventQueue queue;
    MultiAgentNode node(queue, MakeConfig(bench, false));
    node.Start();

    const auto start = std::chrono::steady_clock::now();
    queue.RunFor(bench.sim_horizon);
    const auto end = std::chrono::steady_clock::now();
    node.Stop();
    node.CollectMetrics();

    LegResult result;
    result.backend = "simulated";
    result.wall_seconds =
        std::chrono::duration<double>(end - start).count();
    result.events = queue.stats().executed;
    const sol::core::RuntimeStats total = node.AggregateStats();
    result.epochs = total.epochs;
    result.actions = total.actions_taken;
    result.requests = node.arbiter().requests();
    result.conflicts = node.arbiter().conflicts_resolved();

    ok = CheckAccounting("simulated", result.requests,
                         PublishedRequestSum(node.metrics()),
                         node.arbiter().conflicts_observed(),
                         node.arbiter().conflicts_resolved()) &&
         ok;
    if (result.epochs == 0 || result.actions == 0 ||
        result.requests == 0) {
        std::cerr << "FAIL: simulated node made no progress\n";
        ok = false;
    }
    return result;
}

LegResult
RunThreadedNode(const BenchConfig& bench, bool& ok)
{
    ThreadedMultiAgentNode<> node(MakeConfig(bench, true));
    node.Start();
    const auto start = std::chrono::steady_clock::now();
    std::this_thread::sleep_for(bench.threaded_wall);
    node.Stop();
    const auto end = std::chrono::steady_clock::now();
    node.CollectMetrics();

    LegResult result;
    result.backend = "threaded";
    result.wall_seconds =
        std::chrono::duration<double>(end - start).count();
    const sol::core::RuntimeStats total = node.AggregateStats();
    result.events = AgentOps(total);
    result.epochs = total.epochs;
    result.actions = total.actions_taken;
    result.requests = node.arbiter().requests();
    result.conflicts = node.arbiter().conflicts_resolved();
    result.lock_wait_ns = node.arbiter().lock_wait_ns();

    ok = CheckAccounting("threaded", result.requests,
                         PublishedRequestSum(node.metrics()),
                         node.arbiter().conflicts_observed(),
                         node.arbiter().conflicts_resolved()) &&
         ok;
    if (result.epochs == 0 || result.actions == 0 ||
        result.requests == 0) {
        std::cerr << "FAIL: threaded node made no progress\n";
        ok = false;
    }

    node.CleanUpAll();
    for (std::size_t i = 0; i < node.num_synthetic_agents(); ++i) {
        if (node.synthetic_agent(i).actuator().holding()) {
            std::cerr << "FAIL: synthetic" << i
                      << " still holds its domain after CleanUpAll\n";
            ok = false;
        }
    }
    return result;
}

}  // namespace

int
main(int argc, char** argv)
{
    BenchConfig bench;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke") {
            // CI-sized: smaller fleet, shorter runs, same verdicts.
            bench.synthetic_agents = 16;
            bench.sim_horizon = sol::sim::Seconds(1);
            bench.threaded_wall = std::chrono::milliseconds(400);
        } else {
            std::cerr << "usage: node_concurrency [--smoke]\n";
            return 2;
        }
    }

    const std::size_t agents = bench.synthetic_agents + 4;
    std::cout << "=== node_concurrency: simulated vs threaded "
              << "multi-agent node ===\n";
    std::cout << "(" << agents << " agents per node, "
              << std::thread::hardware_concurrency()
              << " hardware threads, sim horizon "
              << sol::sim::ToSeconds(bench.sim_horizon)
              << " s, threaded wall " << bench.threaded_wall.count()
              << " ms)\n\n";

    bool ok = true;
    std::vector<LegResult> legs;
    legs.push_back(RunSimNode(bench, ok));
    legs.push_back(RunThreadedNode(bench, ok));

    BenchJson json("node_concurrency");
    TableWriter config_table(
        {"agents", "synthetics", "seed", "sim horizon s",
         "threaded wall ms", "hw threads"});
    config_table.AddRow(
        {std::to_string(agents), std::to_string(bench.synthetic_agents),
         std::to_string(bench.seed),
         TableWriter::Num(sol::sim::ToSeconds(bench.sim_horizon), 1),
         std::to_string(bench.threaded_wall.count()),
         std::to_string(std::thread::hardware_concurrency())});
    config_table.Print(std::cout);
    json.AddTable("config", config_table);

    std::cout << "\n";
    TableWriter table({"backend", "wall s", "events", "events/sec",
                       "epochs", "actions", "arbiter reqs",
                       "conflicts", "conflicts/sec", "lock wait us",
                       "wait ns/req"});
    for (const LegResult& leg : legs) {
        const double per_sec =
            static_cast<double>(leg.events) / leg.wall_seconds;
        const double conflicts_per_sec =
            static_cast<double>(leg.conflicts) / leg.wall_seconds;
        const double wait_per_req =
            leg.requests == 0
                ? 0.0
                : static_cast<double>(leg.lock_wait_ns) /
                      static_cast<double>(leg.requests);
        table.AddRow(
            {leg.backend, TableWriter::Num(leg.wall_seconds, 2),
             std::to_string(leg.events), TableWriter::Num(per_sec, 0),
             std::to_string(leg.epochs), std::to_string(leg.actions),
             std::to_string(leg.requests),
             std::to_string(leg.conflicts),
             TableWriter::Num(conflicts_per_sec, 1),
             TableWriter::Num(
                 static_cast<double>(leg.lock_wait_ns) / 1000.0, 1),
             TableWriter::Num(wait_per_req, 1)});
    }
    table.Print(std::cout);
    json.AddTable("node_concurrency", table);

    TableWriter verdict({"check", "result"});
    verdict.AddRow({"progress+accounting+teardown",
                    ok ? "PASS" : "FAIL"});
    std::cout << "\n";
    verdict.Print(std::cout);
    json.AddTable("verdict", verdict);
    json.WriteFile();

    if (!ok) {
        std::cerr << "\nnode_concurrency: FAILED\n";
        return 1;
    }
    std::cout << "\nnode_concurrency: all checks passed\n";
    return 0;
}
