/**
 * @file
 * Trace-driven scenario suite with behavior and health verdicts.
 *
 * Runs every scenario in workloads::ScenarioLibrary() — the realistic
 * demand shapes and the adversarial storms — and gates on *behavior*,
 * not speed:
 *
 *  1. Determinism: each scenario must produce an identical fleet trace
 *     hash, driver hash, event total, and behavior counter vector at
 *     1, 2, and 8 worker threads. Any divergence fails the bench.
 *  2. Regression: each scenario writes BENCH_scenario_<name>.json
 *     whose "behavior" table holds the full verdict-counter vector
 *     (safeguard triggers, arbiter conflicts and denials, prediction
 *     drops, short-circuit epochs, epoch-latency percentiles in
 *     virtual ns). CI diffs those tables against the committed golden
 *     baselines in bench/baselines/ via tools/check_bench_verdicts.py,
 *     so a change in what the runtime *does* under a storm — not just
 *     how fast it does it — fails the build.
 *  3. Health: every run samples the fleet health timeline at each
 *     window barrier and evaluates the default SLO/alert pack. The
 *     timeline hash, sample count, and full alert transition log must
 *     be identical across thread counts and a repeat run; each
 *     scenario must fire its expected_alerts signature (steady_state
 *     must stay silent); HEALTH_scenario_<name>.json is diffed against
 *     committed goldens by tools/check_health_alerts.py. Sampling is
 *     observe-only, gated by an overhead probe (health on vs off on
 *     steady_state, budget 5%) and by the unchanged trace hashes.
 *
 * --smoke runs the CI shape (the mode the baselines are recorded in);
 * the default full shape is for local investigation. Wall-clock
 * numbers are report-only everywhere except the smoke overhead probe:
 * virtual-time behavior is the product under test.
 */
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "telemetry/alerting.h"
#include "telemetry/metric_registry.h"
#include "workloads/scenarios.h"

using sol::telemetry::BenchJson;
using sol::telemetry::TableWriter;
using sol::workloads::RunScenario;
using sol::workloads::SameBehavior;
using sol::workloads::SameHealth;
using sol::workloads::Scenario;
using sol::workloads::ScenarioLibrary;
using sol::workloads::ScenarioOptions;
using sol::workloads::ScenarioResult;

namespace {

constexpr std::size_t kThreadCounts[] = {1, 2, 8};

// Sanitizers multiply the cost of the sampler's bookkeeping far beyond
// production reality, so the overhead budget is report-only in
// sanitized builds (every determinism and alert verdict still gates).
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
constexpr bool kSanitizedBuild = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
constexpr bool kSanitizedBuild = true;
#else
constexpr bool kSanitizedBuild = false;
#endif
#else
constexpr bool kSanitizedBuild = false;
#endif

std::string
Hex(std::uint64_t value)
{
    std::ostringstream os;
    os << "0x" << std::hex << value;
    return os.str();
}

std::string
Join(const std::vector<std::string>& parts)
{
    std::string joined;
    for (const std::string& part : parts) {
        if (!joined.empty()) {
            joined += ",";
        }
        joined += part;
    }
    return joined.empty() ? "-" : joined;
}

void
ListScenarios()
{
    TableWriter table({"scenario", "kind", "summary"});
    for (const Scenario& s : ScenarioLibrary()) {
        table.AddRow(
            {s.name, s.adversarial ? "adversarial" : "realistic",
             s.summary});
    }
    table.Print(std::cout);
}

std::string
ValidScenarioNames()
{
    std::string names;
    for (const Scenario& s : ScenarioLibrary()) {
        if (!names.empty()) {
            names += ", ";
        }
        names += s.name;
    }
    return names;
}

/** True when every rule in `expected` fired at least once. Appends a
 *  FAIL line per missing rule. */
bool
CheckAlertSignature(const Scenario& scenario, const ScenarioResult& run)
{
    bool ok = true;
    const std::vector<std::string> fired = run.FiredRules();
    for (const std::string& rule : scenario.expected_alerts) {
        if (std::find(fired.begin(), fired.end(), rule) == fired.end()) {
            ok = false;
            std::cerr << "FAIL: " << scenario.name
                      << " did not fire expected alert '" << rule
                      << "' (fired: " << Join(fired) << ")\n";
        }
    }
    if (scenario.expect_silent && !run.alerts.empty()) {
        ok = false;
        std::cerr << "FAIL: " << scenario.name << " must stay silent "
                  << "but produced " << run.alerts.size()
                  << " alert transitions (fired: " << Join(fired)
                  << ")\n";
    }
    return ok;
}

}  // namespace

int
main(int argc, char** argv)
{
    bool smoke = false;
    std::string only;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke") {
            smoke = true;
        } else if (arg == "--list") {
            ListScenarios();
            return 0;
        } else if (arg == "--scenario" && i + 1 < argc) {
            only = argv[++i];
        } else {
            std::cerr << "usage: scenario_suite [--smoke] [--list] "
                      << "[--scenario <name>]\n";
            return 2;
        }
    }
    if (!only.empty() && sol::workloads::FindScenario(only) == nullptr) {
        std::cerr << "unknown scenario: " << only << "\n"
                  << "valid scenarios: " << ValidScenarioNames() << "\n";
        return 2;
    }

    std::cout << "=== scenario_suite: trace-driven & adversarial "
              << "workloads, behavior-gated ===\n";
    std::cout << "(mode: " << (smoke ? "smoke" : "full")
              << "; every scenario must be behavior- and "
              << "health-identical at 1/2/8 worker threads)\n\n";

    TableWriter summary({"scenario", "kind", "agents", "events",
                         "epochs", "safeguards", "denials",
                         "trace hash", "timeline hash", "alerts fired",
                         "1/2/8 threads"});
    bool all_deterministic = true;
    bool all_alerts_ok = true;
    std::size_t ran = 0;
    double steady_health_wall = 0.0;

    for (const Scenario& scenario : ScenarioLibrary()) {
        if (!only.empty() && scenario.name != only) {
            continue;
        }
        ++ran;

        // Three thread counts plus a repeat at the base count: the
        // repeat is the same-configuration byte-determinism probe, the
        // others are the thread-count-invariance probe.
        std::vector<ScenarioResult> runs;
        for (const std::size_t threads : kThreadCounts) {
            ScenarioOptions options;
            options.num_threads = threads;
            options.smoke = smoke;
            runs.push_back(RunScenario(scenario, options));
        }
        {
            ScenarioOptions repeat;
            repeat.num_threads = kThreadCounts[0];
            repeat.smoke = smoke;
            runs.push_back(RunScenario(scenario, repeat));
        }
        const ScenarioResult& base = runs.front();
        if (scenario.name == "steady_state") {
            steady_health_wall = base.wall_seconds;
        }

        bool deterministic = true;
        for (const ScenarioResult& run : runs) {
            if (!SameBehavior(base, run)) {
                deterministic = false;
                std::cerr << "FAIL: " << scenario.name
                          << " diverged at " << run.threads
                          << " threads (hash " << Hex(run.fleet_trace_hash)
                          << " vs " << Hex(base.fleet_trace_hash)
                          << ", events " << run.total_events << " vs "
                          << base.total_events << ")\n";
            }
            if (!SameHealth(base, run)) {
                deterministic = false;
                std::cerr << "FAIL: " << scenario.name
                          << " health timeline diverged at " << run.threads
                          << " threads (timeline "
                          << Hex(run.timeline_hash) << " vs "
                          << Hex(base.timeline_hash) << ", "
                          << run.alerts.size() << " vs "
                          << base.alerts.size() << " alert events)\n";
            }
        }
        all_deterministic = all_deterministic && deterministic;

        const bool alerts_ok = CheckAlertSignature(scenario, base);
        all_alerts_ok = all_alerts_ok && alerts_ok;

        summary.AddRow(
            {scenario.name,
             scenario.adversarial ? "adversarial" : "realistic",
             std::to_string(base.Counter("agents")),
             std::to_string(base.total_events),
             std::to_string(base.Counter("epochs")),
             std::to_string(base.Counter("safeguard_triggers")),
             std::to_string(base.Counter("expands_denied")),
             Hex(base.fleet_trace_hash), Hex(base.timeline_hash),
             Join(base.FiredRules()) + (alerts_ok ? "" : " (WRONG)"),
             deterministic ? "identical" : "DIVERGED"});

        // One JSON per scenario so baselines stay independently
        // updatable and a drift report names the scenario directly.
        BenchJson json("scenario_" + scenario.name);

        TableWriter run_table({"mode", "nodes", "synthetics/node",
                               "horizon ms", "seed", "threads checked",
                               "deterministic", "fleet trace hash",
                               "driver hash", "events", "wall s"});
        run_table.AddRow(
            {smoke ? "smoke" : "full",
             std::to_string(base.shape.num_nodes),
             std::to_string(base.shape.synthetic_agents),
             TableWriter::Num(sol::sim::ToMillis(base.shape.horizon), 0),
             std::to_string(scenario.base_seed), "1/2/8",
             deterministic ? "yes" : "NO",
             Hex(base.fleet_trace_hash), Hex(base.driver_hash),
             std::to_string(base.total_events),
             TableWriter::Num(base.wall_seconds, 3)});
        json.AddTable("run", run_table);

        TableWriter behavior_table({"metric", "value"});
        for (const auto& [metric, value] : base.behavior) {
            behavior_table.AddRow({metric, std::to_string(value)});
        }
        json.AddTable("behavior", behavior_table);
        json.WriteFile();

        // The health timeline, alert log, and SLO budgets land in a
        // separate HEALTH_scenario_<name>.json (separate golden,
        // separate checker), leaving the BENCH verdict byte-stable.
        sol::telemetry::HealthReportWriter::WriteFile(
            "scenario_" + scenario.name, base.health_json);
    }

    summary.Print(std::cout);
    std::cout << "\nBehavior tables land in BENCH_scenario_<name>.json "
              << "and health timelines in HEALTH_scenario_<name>.json; "
              << "tools/check_bench_verdicts.py and "
              << "tools/check_health_alerts.py diff them against "
              << "bench/baselines/ and fail CI on drift.\n";

    // --- Observe-only overhead probe: steady_state with the sampler
    // and alert engine off vs the health-on wall time measured above.
    // Sub-second legs mean one noisy scheduling quantum can fake
    // several percent of "overhead", so keep resampling interleaved
    // off/on rounds (best-of-N per side) until the budget is met or
    // rounds run out. Gates only in smoke mode on unsanitized builds.
    double overhead = 0.0;
    const bool probe = only.empty() || only == "steady_state";
    if (probe && steady_health_wall > 0.0) {
        const Scenario* steady =
            sol::workloads::FindScenario("steady_state");
        ScenarioOptions off;
        off.smoke = smoke;
        off.health = false;
        double off_wall = RunScenario(*steady, off).wall_seconds;
        double on_wall = steady_health_wall;
        overhead = std::max(0.0, on_wall / off_wall - 1.0);
        const bool overhead_gated = smoke && !kSanitizedBuild;
        for (int round = 0; overhead_gated && overhead > 0.05 && round < 3;
             ++round) {
            off_wall = std::min(off_wall,
                                RunScenario(*steady, off).wall_seconds);
            ScenarioOptions on;
            on.smoke = smoke;
            on_wall = std::min(on_wall,
                               RunScenario(*steady, on).wall_seconds);
            overhead = std::max(0.0, on_wall / off_wall - 1.0);
        }
        std::cout << "\nhealth sampling overhead (steady_state, on vs "
                  << "off): " << TableWriter::Num(overhead * 100.0, 2)
                  << "%"
                  << (!smoke            ? " (report only)"
                      : kSanitizedBuild ? " (report only: sanitized)"
                      : overhead <= 0.05 ? " (PASS)"
                                         : " (FAIL)")
                  << "\n";
        if (overhead_gated && overhead > 0.05) {
            std::cerr << "FAIL: health sampling overhead "
                      << TableWriter::Num(overhead * 100.0, 2)
                      << "% exceeds the 5% budget\n";
            return 1;
        }
    }

    if (ran == 0) {
        std::cerr << "FAIL: no scenario ran\n";
        return 2;
    }
    if (!all_deterministic) {
        std::cerr << "FAIL: behavior diverged across thread counts\n";
        return 1;
    }
    if (!all_alerts_ok) {
        std::cerr << "FAIL: alert signatures did not match "
                  << "expectations\n";
        return 1;
    }
    return 0;
}
