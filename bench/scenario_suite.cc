/**
 * @file
 * Trace-driven scenario suite with behavior-regression verdicts.
 *
 * Runs every scenario in workloads::ScenarioLibrary() — the realistic
 * demand shapes and the adversarial storms — and gates on *behavior*,
 * not speed:
 *
 *  1. Determinism: each scenario must produce an identical fleet trace
 *     hash, driver hash, event total, and behavior counter vector at
 *     1, 2, and 8 worker threads. Any divergence fails the bench.
 *  2. Regression: each scenario writes BENCH_scenario_<name>.json
 *     whose "behavior" table holds the full verdict-counter vector
 *     (safeguard triggers, arbiter conflicts and denials, prediction
 *     drops, short-circuit epochs, epoch-latency percentiles in
 *     virtual ns). CI diffs those tables against the committed golden
 *     baselines in bench/baselines/ via tools/check_bench_verdicts.py,
 *     so a change in what the runtime *does* under a storm — not just
 *     how fast it does it — fails the build.
 *
 * --smoke runs the CI shape (the mode the baselines are recorded in);
 * the default full shape is for local investigation. Wall-clock
 * numbers are report-only everywhere: virtual-time behavior is the
 * product under test.
 */
#include <chrono>
#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "telemetry/metric_registry.h"
#include "workloads/scenarios.h"

using sol::telemetry::BenchJson;
using sol::telemetry::TableWriter;
using sol::workloads::RunScenario;
using sol::workloads::SameBehavior;
using sol::workloads::Scenario;
using sol::workloads::ScenarioLibrary;
using sol::workloads::ScenarioOptions;
using sol::workloads::ScenarioResult;

namespace {

constexpr std::size_t kThreadCounts[] = {1, 2, 8};

std::string
Hex(std::uint64_t value)
{
    std::ostringstream os;
    os << "0x" << std::hex << value;
    return os.str();
}

void
ListScenarios()
{
    TableWriter table({"scenario", "kind", "summary"});
    for (const Scenario& s : ScenarioLibrary()) {
        table.AddRow(
            {s.name, s.adversarial ? "adversarial" : "realistic",
             s.summary});
    }
    table.Print(std::cout);
}

}  // namespace

int
main(int argc, char** argv)
{
    bool smoke = false;
    std::string only;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke") {
            smoke = true;
        } else if (arg == "--list") {
            ListScenarios();
            return 0;
        } else if (arg == "--scenario" && i + 1 < argc) {
            only = argv[++i];
        } else {
            std::cerr << "usage: scenario_suite [--smoke] [--list] "
                      << "[--scenario <name>]\n";
            return 2;
        }
    }
    if (!only.empty() && sol::workloads::FindScenario(only) == nullptr) {
        std::cerr << "unknown scenario: " << only
                  << " (try --list)\n";
        return 2;
    }

    std::cout << "=== scenario_suite: trace-driven & adversarial "
              << "workloads, behavior-gated ===\n";
    std::cout << "(mode: " << (smoke ? "smoke" : "full")
              << "; every scenario must be behavior-identical at 1/2/8 "
              << "worker threads)\n\n";

    TableWriter summary({"scenario", "kind", "agents", "events",
                         "epochs", "safeguards", "denials",
                         "trace hash", "1/2/8 threads"});
    bool all_deterministic = true;
    std::size_t ran = 0;

    for (const Scenario& scenario : ScenarioLibrary()) {
        if (!only.empty() && scenario.name != only) {
            continue;
        }
        ++ran;

        std::vector<ScenarioResult> runs;
        for (const std::size_t threads : kThreadCounts) {
            ScenarioOptions options;
            options.num_threads = threads;
            options.smoke = smoke;
            runs.push_back(RunScenario(scenario, options));
        }
        const ScenarioResult& base = runs.front();

        bool deterministic = true;
        for (const ScenarioResult& run : runs) {
            if (!SameBehavior(base, run)) {
                deterministic = false;
                std::cerr << "FAIL: " << scenario.name
                          << " diverged at " << run.threads
                          << " threads (hash " << Hex(run.fleet_trace_hash)
                          << " vs " << Hex(base.fleet_trace_hash)
                          << ", events " << run.total_events << " vs "
                          << base.total_events << ")\n";
            }
        }
        all_deterministic = all_deterministic && deterministic;

        summary.AddRow(
            {scenario.name,
             scenario.adversarial ? "adversarial" : "realistic",
             std::to_string(base.Counter("agents")),
             std::to_string(base.total_events),
             std::to_string(base.Counter("epochs")),
             std::to_string(base.Counter("safeguard_triggers")),
             std::to_string(base.Counter("expands_denied")),
             Hex(base.fleet_trace_hash),
             deterministic ? "identical" : "DIVERGED"});

        // One JSON per scenario so baselines stay independently
        // updatable and a drift report names the scenario directly.
        BenchJson json("scenario_" + scenario.name);

        TableWriter run_table({"mode", "nodes", "synthetics/node",
                               "horizon ms", "seed", "threads checked",
                               "deterministic", "fleet trace hash",
                               "driver hash", "events", "wall s"});
        run_table.AddRow(
            {smoke ? "smoke" : "full",
             std::to_string(base.shape.num_nodes),
             std::to_string(base.shape.synthetic_agents),
             TableWriter::Num(sol::sim::ToMillis(base.shape.horizon), 0),
             std::to_string(scenario.base_seed), "1/2/8",
             deterministic ? "yes" : "NO",
             Hex(base.fleet_trace_hash), Hex(base.driver_hash),
             std::to_string(base.total_events),
             TableWriter::Num(base.wall_seconds, 3)});
        json.AddTable("run", run_table);

        TableWriter behavior_table({"metric", "value"});
        for (const auto& [metric, value] : base.behavior) {
            behavior_table.AddRow({metric, std::to_string(value)});
        }
        json.AddTable("behavior", behavior_table);
        json.WriteFile();
    }

    summary.Print(std::cout);
    std::cout << "\nBehavior tables land in BENCH_scenario_<name>.json; "
              << "tools/check_bench_verdicts.py diffs them against "
              << "bench/baselines/ and fails CI on drift.\n";

    if (ran == 0) {
        std::cerr << "FAIL: no scenario ran\n";
        return 2;
    }
    if (!all_deterministic) {
        std::cerr << "FAIL: behavior diverged across thread counts\n";
        return 1;
    }
    return 0;
}
