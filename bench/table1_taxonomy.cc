/**
 * @file
 * Regenerates Table 1: the taxonomy of production node agents in Azure,
 * and the headline statistic that 35% of agents belong to classes that
 * can benefit from on-node learning.
 */
#include <iostream>

#include "characterization/taxonomy.h"
#include "telemetry/metric_registry.h"

using sol::characterization::AgentsBenefiting;
using sol::characterization::BenefitFraction;
using sol::characterization::Taxonomy;
using sol::characterization::TotalAgents;
using sol::characterization::ToString;
using sol::telemetry::TableWriter;

int
main()
{
    std::cout << "=== Table 1: taxonomy of production node agents ===\n\n";
    TableWriter table(
        {"class", "count", "description", "examples", "benefit?"});
    for (const auto& row : Taxonomy()) {
        table.AddRow({ToString(row.cls), std::to_string(row.count),
                      row.description, row.examples,
                      row.benefits_from_ml ? "Yes" : "No"});
    }
    table.Print(std::cout);
    std::cout << "\nTotal agents: " << TotalAgents()
              << "  (paper: 77)\nAgents in classes that benefit: "
              << AgentsBenefiting() << " ("
              << TableWriter::Num(100.0 * BenefitFraction(), 0)
              << "%, paper: 35%)\n";

    sol::telemetry::BenchJson json("table1_taxonomy");
    json.AddTable("results", table);
    json.WriteFile();
    return 0;
}
