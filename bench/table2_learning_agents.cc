/**
 * @file
 * Regenerates Table 2: published examples of on-node learning resource
 * control agents, including the three agents this repository implements
 * (SmartHarvest, Overclocking, Disaggregation).
 */
#include <iostream>

#include "characterization/taxonomy.h"
#include "telemetry/metric_registry.h"

using sol::characterization::LearningAgents;
using sol::telemetry::TableWriter;

int
main()
{
    std::cout << "=== Table 2: on-node learning resource control agents"
              << " ===\n\n";
    TableWriter table(
        {"agent", "goal", "action", "frequency", "inputs", "model"});
    for (const auto& row : LearningAgents()) {
        std::string freq;
        if (row.frequency == sol::sim::Duration(0)) {
            freq = "per event";
        } else if (row.frequency >= sol::sim::Seconds(1)) {
            freq = TableWriter::Num(sol::sim::ToSeconds(row.frequency), 0) +
                   " s";
        } else {
            freq = TableWriter::Num(sol::sim::ToMillis(row.frequency), 0) +
                   " ms";
        }
        table.AddRow({row.name, row.goal, row.action, freq, row.inputs,
                      row.model});
    }
    table.Print(std::cout);
    std::cout << "\nThis repository implements SmartHarvest (sec 5.2),"
              << " Overclocking (sec 5.1), and Disaggregation/SmartMemory"
              << " (sec 5.3) in SOL.\n";

    sol::telemetry::BenchJson json("table2_learning_agents");
    json.AddTable("results", table);
    json.WriteFile();
    return 0;
}
