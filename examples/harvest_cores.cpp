/**
 * @file
 * SmartHarvest on a simulated node: the paper's section 5.2 agent
 * loaning a latency-critical VM's idle cores to an ElasticVM.
 *
 * Shows the core harvesting trade-off the paper's Figure 6 explores:
 * how many core-seconds the ElasticVM recovers versus the P99 impact on
 * the primary workload, with the full safeguard stack active.
 */
#include <iostream>

#include "experiments/harvest_experiments.h"
#include "telemetry/metric_registry.h"

using sol::experiments::HarvestRunConfig;
using sol::experiments::HarvestRunResult;
using sol::experiments::HarvestWorkload;
using sol::experiments::LatencyIncreasePct;
using sol::experiments::RunHarvest;
using sol::telemetry::TableWriter;

int
main()
{
    TableWriter table({"workload", "harvesting", "P99 ms", "increase %",
                       "harvested core-s", "epochs", "intercepted"});
    for (const auto wl :
         {HarvestWorkload::kImageDnn, HarvestWorkload::kMoses}) {
        HarvestRunConfig config;
        config.workload = wl;
        config.duration = sol::sim::Seconds(30);

        HarvestRunConfig baseline_config = config;
        baseline_config.harvesting = false;
        std::cout << "running " << ToString(wl)
                  << " with and without harvesting (30 simulated s at"
                  << " 50 us sampling)...\n";
        const HarvestRunResult baseline = RunHarvest(baseline_config);
        const HarvestRunResult run = RunHarvest(config);

        table.AddRow({baseline.workload, "off",
                      TableWriter::Num(baseline.p99_latency_ms, 1), "0.0",
                      "0", "0", "0"});
        table.AddRow({run.workload, "on",
                      TableWriter::Num(run.p99_latency_ms, 1),
                      TableWriter::Num(LatencyIncreasePct(run, baseline),
                                       1),
                      TableWriter::Num(run.harvested_core_seconds, 1),
                      std::to_string(run.stats.epochs),
                      std::to_string(run.stats.intercepted_predictions)});
    }
    std::cout << "\n";
    table.Print(std::cout);
    std::cout << "\nHarvested core-seconds are capacity the ElasticVM got"
              << " for free; the safeguards keep the primary's P99"
              << " impact bounded.\n";
    return 0;
}
