/**
 * @file
 * SmartMemory on a simulated two-tier memory: the paper's section 5.3
 * agent learning per-batch scan rates and classifying memory as
 * hot/warm/cold.
 *
 * Runs the agent against the skewed ObjectStore access pattern and
 * reports the scanning savings, the first-tier footprint, and the
 * remote-access SLO — then shows the SRE cleanup path restoring all
 * batches to DRAM.
 */
#include <iostream>

#include "core/agent_registry.h"
#include "experiments/memory_experiments.h"
#include "node/tiered_memory.h"
#include "telemetry/metric_registry.h"

using sol::experiments::MemoryRunConfig;
using sol::experiments::MemoryRunResult;
using sol::experiments::MemoryWorkload;
using sol::experiments::RunMemory;
using sol::telemetry::TableWriter;

int
main()
{
    MemoryRunConfig config;
    config.workload = MemoryWorkload::kObjectStore;
    config.duration = sol::sim::Seconds(600);
    config.agent.mitigation_batches = 16;

    std::cout << "running SmartMemory on the ObjectStore access pattern"
              << " (256 x 2 MB batches, 600 simulated s)...\n";
    const MemoryRunResult smart = RunMemory(config);

    MemoryRunConfig max_config = config;
    max_config.fixed_arm = 0;  // Paper baseline: always scan at 300 ms.
    max_config.runtime.disable_model_assessment = true;
    max_config.runtime.disable_actuator_safeguard = true;
    const MemoryRunResult max_run = RunMemory(max_config);

    TableWriter table({"policy", "scans", "bit resets", "TLB flushes",
                       "avg local batches", "SLO %"});
    table.AddRow({"scan-max(300ms)", std::to_string(max_run.scans),
                  std::to_string(max_run.bit_resets),
                  std::to_string(max_run.tlb_flushes),
                  TableWriter::Num(max_run.avg_local_batches, 1),
                  TableWriter::Num(100 * max_run.slo_attainment, 1)});
    table.AddRow({"SmartMemory", std::to_string(smart.scans),
                  std::to_string(smart.bit_resets),
                  std::to_string(smart.tlb_flushes),
                  TableWriter::Num(smart.avg_local_batches, 1),
                  TableWriter::Num(100 * smart.slo_attainment, 1)});
    table.Print(std::cout);

    std::cout << "\nSmartMemory scans "
              << TableWriter::Num(
                     100.0 * (1.0 - static_cast<double>(smart.bit_resets) /
                                        static_cast<double>(
                                            max_run.bit_resets)),
                     1)
              << "% fewer access-bit resets than max-frequency scanning"
              << " while holding the >=80%-local SLO.\n";

    // Demonstrate the SRE cleanup path on a live TieredMemory.
    sol::node::TieredMemory memory(64, 64);
    for (sol::node::BatchId b = 0; b < 20; ++b) {
        memory.Migrate(b, sol::node::Tier::kSlow);
    }
    sol::core::AgentRegistry registry;
    registry.Register("smartmemory", [&memory] {
        for (sol::node::BatchId b = 0; b < memory.num_batches(); ++b) {
            if (memory.TierOf(b) == sol::node::Tier::kSlow &&
                memory.FastTierHasRoom()) {
                memory.Migrate(b, sol::node::Tier::kFast);
            }
        }
    });
    registry.CleanUp("smartmemory");
    std::cout << "after SRE cleanup: " << memory.fast_tier_used() << "/"
              << memory.num_batches() << " batches back in DRAM\n";
    return 0;
}
