/**
 * @file
 * Multi-agent node walkthrough: the paper's real deployment shape.
 *
 * Production nodes run many learning agents at once (the paper counts
 * 77 on an Azure node); this example runs the repo's full complement —
 * SmartOverclock, SmartHarvest, SmartMemory, SmartMonitor — on one
 * simulated node for 260 virtual seconds (>= 10,000 learning epochs,
 * dominated by SmartHarvest's 25 ms epochs), showing:
 *
 *  1. concurrent registration: all four agents live in one
 *     core::AgentRegistry, each terminable by name alone;
 *  2. interference arbitration: conflicting actuations (frequency
 *     boosts vs core harvesting) are detected and resolved
 *     deterministically by the InterferenceArbiter;
 *  3. per-agent accounting: every agent's runtime counters land in one
 *     telemetry::MetricRegistry under its own namespace;
 *  4. the SRE path: CleanUpAll() restores the node to a clean state
 *     without knowing anything about the agents.
 *
 * Pass a number to change the simulated duration in seconds, e.g.
 * `example_multi_agent_node 30` for a quick look.
 */
#include <cstdlib>
#include <iostream>

#include "cluster/multi_agent_node.h"
#include "sim/event_queue.h"

int
main(int argc, char** argv)
{
    long seconds = 260;
    if (argc > 1) {
        seconds = std::strtol(argv[1], nullptr, 10);
        if (seconds <= 0) {
            std::cerr << "usage: " << argv[0] << " [sim-seconds]\n";
            return 1;
        }
    }

    sol::sim::EventQueue queue;
    sol::cluster::MultiAgentNodeConfig config;
    sol::cluster::MultiAgentNode node(queue, config);

    std::cout << "registered agents:";
    for (const auto& name : node.registry().Names()) {
        std::cout << " " << name;
    }
    std::cout << "\nrunning " << seconds << " simulated seconds...\n\n";

    node.Start();
    // Advance in 20 s slices so progress is visible.
    const auto slice = sol::sim::Seconds(20);
    auto remaining = sol::sim::Seconds(seconds);
    while (remaining > sol::sim::Duration::zero()) {
        const auto step = remaining < slice ? remaining : slice;
        queue.RunFor(step);
        remaining -= step;
        std::cout << "  t=" << sol::sim::ToSeconds(queue.Now())
                  << "s epochs=" << node.TotalEpochs()
                  << " conflicts_resolved="
                  << node.arbiter().conflicts_resolved()
                  << " primary_p99_ms="
                  << node.primary_workload().PerformanceValue() << "\n";
    }

    node.CollectMetrics();
    std::cout << "\nper-agent epochs:\n";
    for (const char* agent :
         {"smart-overclock", "smart-harvest", "smart-memory",
          "smart-monitor"}) {
        std::cout << "  " << agent << ": "
                  << node.metrics().Gauge(std::string(agent) + ".epochs")
                  << " epochs, "
                  << node.metrics().Gauge(std::string(agent) +
                                          ".actions_taken")
                  << " actions, "
                  << node.metrics().Gauge(std::string(agent) +
                                          ".safeguard_triggers")
                  << " safeguard triggers\n";
    }

    std::cout << "\narbiter: " << node.arbiter().requests()
              << " actuation requests, "
              << node.arbiter().conflicts_observed()
              << " conflicts observed, "
              << node.arbiter().conflicts_resolved() << " resolved\n";

    const std::uint64_t total = node.TotalEpochs();
    std::cout << "total learning epochs: " << total
              << (total >= 10000 ? " (>= 10k: the deployment shape)"
                                 : "")
              << "\n";

    // The SRE path: one call cleans up every agent by registry alone.
    node.Stop();
    node.CleanUpAll();
    std::cout << "\nafter CleanUpAll: primary freq="
              << node.node().VmFrequency(node.primary_vm())
              << " GHz (nominal), elastic cores="
              << node.node().GrantedCores(node.elastic_vm())
              << ", sampling uniform="
              << (node.policy().is_uniform() ? "yes" : "no") << "\n";
    return 0;
}
