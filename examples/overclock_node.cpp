/**
 * @file
 * SmartOverclock on a simulated node: the paper's section 5.1 agent
 * managing a bursty batch-processing VM.
 *
 * Runs the full agent (Q-learning model, alpha safeguard, data
 * validation) on the deterministic simulated runtime and prints what
 * the agent learned: how often it overclocked during busy vs idle
 * phases, and the resulting performance/power against the static
 * policies a cloud operator would otherwise pick.
 */
#include <iostream>

#include "experiments/overclock_experiments.h"
#include "telemetry/metric_registry.h"

using sol::experiments::NormalizedPerf;
using sol::experiments::OverclockRunConfig;
using sol::experiments::OverclockRunResult;
using sol::experiments::OverclockWorkload;
using sol::experiments::RunOverclock;
using sol::telemetry::TableWriter;

int
main()
{
    OverclockRunConfig config;
    config.workload = OverclockWorkload::kSynthetic;
    config.duration = sol::sim::Seconds(1500);
    config.synthetic.work_gcycles = 480;  // ~40 s bursts every 100 s.
    config.record_trace = true;

    std::cout << "running SmartOverclock on the Synthetic workload for "
              << sol::sim::ToSeconds(config.duration)
              << " simulated seconds...\n";
    const OverclockRunResult agent = RunOverclock(config);

    OverclockRunConfig nominal = config;
    nominal.static_freq_ghz = 1.5;
    const OverclockRunResult base = RunOverclock(nominal);
    OverclockRunConfig turbo = config;
    turbo.static_freq_ghz = 2.3;
    const OverclockRunResult max = RunOverclock(turbo);

    TableWriter table({"policy", "mean s/batch", "perf(norm)", "avg W"});
    table.AddRow({"static-1.5", TableWriter::Num(base.perf_value, 2),
                  "1.000", TableWriter::Num(base.avg_power_watts, 1)});
    table.AddRow({"static-2.3", TableWriter::Num(max.perf_value, 2),
                  TableWriter::Num(NormalizedPerf(max, base)),
                  TableWriter::Num(max.avg_power_watts, 1)});
    table.AddRow({"SmartOverclock", TableWriter::Num(agent.perf_value, 2),
                  TableWriter::Num(NormalizedPerf(agent, base)),
                  TableWriter::Num(agent.avg_power_watts, 1)});
    table.Print(std::cout);

    // What did the policy learn? Overclocking rate by phase.
    int busy_total = 0;
    int busy_overclocked = 0;
    int idle_total = 0;
    int idle_overclocked = 0;
    for (const auto& point : agent.trace) {
        if (point.workload_busy) {
            ++busy_total;
            busy_overclocked += point.freq_ghz > 1.51 ? 1 : 0;
        } else {
            ++idle_total;
            idle_overclocked += point.freq_ghz > 1.51 ? 1 : 0;
        }
    }
    std::cout << "\nlearned policy: overclocked "
              << 100 * busy_overclocked / std::max(1, busy_total)
              << "% of busy time, "
              << 100 * idle_overclocked / std::max(1, idle_total)
              << "% of idle time\n";
    std::cout << "safeguards: " << agent.stats.intercepted_predictions
              << " predictions intercepted, "
              << agent.stats.safeguard_triggers
              << " actuator-safeguard triggers, "
              << agent.stats.invalid_samples
              << " samples discarded\n";
    return 0;
}
