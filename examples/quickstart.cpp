/**
 * @file
 * Quickstart: implementing a new SOL agent in ~100 lines.
 *
 * This is the end-to-end developer workflow from paper Listing 3:
 *  1. implement the Model interface (collect / validate / commit /
 *     update / predict, plus DefaultPredict and AssessModel),
 *  2. implement the Actuator interface (TakeAction plus the
 *     AssessPerformance/Mitigate safeguard and idempotent CleanUp),
 *  3. write a Schedule (here parsed from a config string), and
 *  4. hand everything to a runtime — the real-time ThreadedRuntime in
 *     this example — and register CleanUp with the AgentRegistry so an
 *     SRE can terminate the agent without knowing what it is.
 *
 * The toy agent watches a noisy "queue depth" signal and predicts
 * whether to scale a worker pool up or down; the actuator applies the
 * decision and refuses to act when predictions are stale.
 */
#include <atomic>
#include <chrono>
#include <iostream>
#include <sstream>
#include <thread>

#include "core/agent_registry.h"
#include "core/threaded_runtime.h"
#include "telemetry/online_stats.h"

namespace {

/** Shared fake node state: a queue depth the agent manages. */
struct FakeNode {
    std::atomic<int> queue_depth{50};
    std::atomic<int> workers{4};
};

/** Model: EWMA of queue depth predicting the worker count to run. */
class ScalingModel : public sol::core::Model<int, int>
{
  public:
    explicit ScalingModel(FakeNode& node) : node_(node), ewma_(0.3) {}

    int
    CollectData() override
    {
        // In production this would read a hypervisor/OS counter.
        return node_.queue_depth.load();
    }

    bool
    ValidateData(const int& depth) override
    {
        // Mandatory range check: depths outside [0, 10000] are sensor
        // garbage and must not reach the model.
        return depth >= 0 && depth <= 10000;
    }

    void
    CommitData(sol::sim::TimePoint, const int& depth) override
    {
        ewma_.Add(depth);
    }

    void
    UpdateModel() override
    {
        // The EWMA *is* the model; nothing else to fit.
    }

    sol::core::Prediction<int>
    ModelPredict() override
    {
        const int workers =
            std::max(1, static_cast<int>(ewma_.value() / 10.0));
        return sol::core::MakePrediction(workers, Now(),
                                         sol::sim::Millis(200));
    }

    sol::core::Prediction<int>
    DefaultPredict() override
    {
        // Safe fallback: a generous fixed pool (costs money, protects
        // latency).
        return sol::core::MakeDefaultPrediction(8, Now(),
                                                sol::sim::Millis(200));
    }

    bool
    AssessModel() override
    {
        // A real agent would compare predictions against outcomes; the
        // toy model is healthy as long as it has seen data.
        return !ewma_.empty();
    }

  private:
    sol::sim::TimePoint
    Now() const
    {
        return std::chrono::duration_cast<sol::sim::Duration>(
            std::chrono::steady_clock::now().time_since_epoch());
    }

    FakeNode& node_;
    sol::telemetry::Ewma ewma_;
};

/** Actuator: applies the worker count; mitigation maxes the pool. */
class ScalingActuator : public sol::core::Actuator<int>
{
  public:
    explicit ScalingActuator(FakeNode& node) : node_(node) {}

    void
    TakeAction(std::optional<sol::core::Prediction<int>> pred) override
    {
        if (pred.has_value()) {
            node_.workers.store(pred->value);
        } else {
            // No fresh prediction: the conservative action.
            node_.workers.store(8);
        }
    }

    bool
    AssessPerformance() override
    {
        // End-to-end proxy: a deeply backed-up queue means the agent is
        // hurting the service regardless of what the model thinks.
        return node_.queue_depth.load() < 5000;
    }

    void
    Mitigate() override
    {
        node_.workers.store(16);
    }

    void
    CleanUp() override
    {
        // Idempotent, stateless: restore the default pool.
        node_.workers.store(4);
    }

  private:
    FakeNode& node_;
};

}  // namespace

int
main()
{
    FakeNode node;
    ScalingModel model(node);
    ScalingActuator actuator(node);

    // Listing 3: the schedule comes from a config file.
    std::istringstream config(
        "data_per_epoch = 5\n"
        "data_collect_interval = 10ms\n"
        "max_epoch_time = 100ms\n"
        "assess_model_every_epochs = 2\n"
        "max_actuation_delay = 100ms\n"
        "assess_actuator_interval = 50ms\n");
    const sol::core::Schedule schedule = sol::core::ParseSchedule(config);

    sol::core::ThreadedRuntime<int, int> runtime(model, actuator,
                                                 schedule);

    // Register the SRE termination path before starting.
    auto& registry = sol::core::AgentRegistry::Global();
    registry.Register("scaling-agent", [&] {
        runtime.Stop();
        actuator.CleanUp();
    });

    runtime.Start();
    std::cout << "agent running; simulating load swings...\n";
    for (int step = 0; step < 10; ++step) {
        node.queue_depth.store(step % 2 == 0 ? 120 : 20);
        std::this_thread::sleep_for(std::chrono::milliseconds(60));
        std::cout << "  queue=" << node.queue_depth.load()
                  << " workers=" << node.workers.load() << "\n";
    }

    const sol::core::RuntimeStats stats = runtime.stats();
    std::cout << "epochs=" << stats.epochs
              << " predictions=" << stats.predictions_delivered
              << " defaults=" << stats.default_predictions
              << " actions=" << stats.actions_taken << "\n";

    // The SRE path: terminate by name, knowing nothing about the agent.
    registry.CleanUp("scaling-agent");
    std::cout << "cleaned up; workers=" << node.workers.load() << "\n";
    return 0;
}
