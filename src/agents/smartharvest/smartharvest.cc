#include "agents/smartharvest/smartharvest.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace sol::agents {

core::Schedule
SmartHarvestSchedule()
{
    core::Schedule schedule;
    schedule.data_per_epoch = 500;
    schedule.data_collect_interval = sim::Micros(50);
    // 25 ms nominal epochs with headroom for transiently discarded
    // samples; sustained saturation still short-circuits to the default.
    schedule.max_epoch_time = sim::Millis(32);
    schedule.assess_model_every_epochs = 1;
    schedule.max_actuation_delay = sim::Millis(100);
    schedule.assess_actuator_interval = sim::Millis(100);
    return schedule;
}

// ---------------------------------------------------------------------------
// HarvestModel
// ---------------------------------------------------------------------------

HarvestModel::HarvestModel(node::Node& node, node::VmId primary_vm,
                           const sim::Clock& clock,
                           const SmartHarvestConfig& config)
    : node_(node),
      vm_(primary_vm),
      clock_(clock),
      config_(config),
      classifier_(ml::CostSensitiveConfig{
          static_cast<std::size_t>(node.AllocatedCores(primary_vm)) + 1,
          config.feature_bits, config.learning_rate, 0.0}),
      out_of_cores_ring_(config.assess_window, false),
      features_(config.feature_bits)
{
    epoch_usage_.reserve(600);
}

HarvestSample
HarvestModel::CollectData()
{
    HarvestSample sample;
    sample.usage_cores = node_.SampleCpuUsage(vm_);
    sample.granted_cores = node_.GrantedCores(vm_);
    sample.allocated_cores = node_.AllocatedCores(vm_);

    // Saturation tracking must see every sample, including ones later
    // discarded by validation: running out of idle cores while harvesting
    // is exactly the signal AssessModel monitors.
    ++epoch_samples_total_;
    const bool harvesting = sample.granted_cores < sample.allocated_cores;
    if (harvesting &&
        sample.usage_cores >=
            static_cast<double>(sample.granted_cores) - 1e-9) {
        ++epoch_samples_saturated_;
    }
    return sample;
}

bool
HarvestModel::ValidateData(const HarvestSample& data)
{
    // Range checks: usage must lie within [0, granted].
    if (!(data.usage_cores >= 0.0 &&
          data.usage_cores <=
              static_cast<double>(data.granted_cores) + 1e-9)) {
        return false;
    }
    // Censoring check (paper 5.2): when the primary uses all its granted
    // cores we cannot tell how many more it needed, so learning from the
    // sample would bias the model toward underprediction.
    if (data.usage_cores >=
        static_cast<double>(data.granted_cores) - 1e-9) {
        return false;
    }
    return true;
}

void
HarvestModel::CommitData(sim::TimePoint /*time*/, const HarvestSample& data)
{
    epoch_usage_.push_back(data.usage_cores);
}

void
HarvestModel::UpdateModel()
{
    const int allocated = node_.AllocatedCores(vm_);

    // Label: the peak core demand observed this epoch. If any sample was
    // saturated, the demand was at least the grant — use the grant as a
    // (censored) lower bound.
    double peak = 0.0;
    for (const double u : epoch_usage_) {
        peak = std::max(peak, u);
    }
    if (epoch_samples_saturated_ > 0) {
        peak = std::max(peak,
                        static_cast<double>(node_.GrantedCores(vm_)));
    }
    const int label = std::clamp(
        static_cast<int>(std::ceil(peak - 1e-9)), 0, allocated);

    // Train on the previous epoch's features against this epoch's label.
    if (prev_features_.has_value()) {
        classifier_.Update(*prev_features_,
                           ml::AsymmetricCosts(
                               static_cast<std::size_t>(allocated) + 1,
                               static_cast<std::size_t>(label),
                               config_.under_penalty,
                               config_.over_penalty));
    }

    // Out-of-cores history for the model assessment.
    out_of_cores_ring_[ring_pos_] = epoch_samples_saturated_ > 0;
    ring_pos_ = (ring_pos_ + 1) % out_of_cores_ring_.size();
    ring_count_ = std::min(ring_count_ + 1, out_of_cores_ring_.size());

    // Features for the next prediction.
    BuildFeatures(features_);
    features_valid_ = true;
    prev_features_ = features_;
    prev_label_ = label;

    epoch_usage_.clear();
    epoch_samples_total_ = 0;
    epoch_samples_saturated_ = 0;
}

void
HarvestModel::BuildFeatures(ml::FeatureVector& out) const
{
    out.Clear();
    out.AddBias();
    if (epoch_usage_.empty()) {
        out.Add("empty", 1.0);
        out.Add("prev_label", static_cast<double>(prev_label_));
        return;
    }
    std::vector<double> sorted(epoch_usage_);
    std::sort(sorted.begin(), sorted.end());
    const auto n = sorted.size();
    const double mean =
        std::accumulate(sorted.begin(), sorted.end(), 0.0) /
        static_cast<double>(n);
    double var = 0.0;
    for (const double u : sorted) {
        var += (u - mean) * (u - mean);
    }
    var /= static_cast<double>(n);
    auto quantile = [&](double q) {
        const auto rank = static_cast<std::size_t>(
            q * static_cast<double>(n - 1) + 0.5);
        return sorted[rank];
    };
    out.Add("mean", mean);
    out.Add("std", std::sqrt(var));
    out.Add("min", sorted.front());
    out.Add("max", sorted.back());
    out.Add("p50", quantile(0.5));
    out.Add("p90", quantile(0.9));
    out.Add("last", epoch_usage_.back());
    out.Add("prev_label", static_cast<double>(prev_label_));
}

core::Prediction<int>
HarvestModel::ModelPredict()
{
    const int allocated = node_.AllocatedCores(vm_);
    int predicted;
    if (broken_) {
        // Fault injection: severe, consistent underestimation.
        predicted = 1;
    } else if (features_valid_) {
        predicted = static_cast<int>(classifier_.Predict(features_));
    } else {
        predicted = allocated;
    }
    predicted = std::clamp(predicted, 0, allocated);
    return core::MakePrediction(predicted, clock_.Now(),
                                config_.prediction_ttl);
}

core::Prediction<int>
HarvestModel::DefaultPredict()
{
    // Conservative: assume the primary needs everything (no harvesting).
    return core::MakeDefaultPrediction(node_.AllocatedCores(vm_),
                                       clock_.Now(),
                                       config_.prediction_ttl);
}

bool
HarvestModel::AssessModel()
{
    if (ring_count_ < out_of_cores_ring_.size()) {
        return true;  // Not enough history yet.
    }
    return OutOfCoresFraction() <= config_.assess_threshold;
}

double
HarvestModel::OutOfCoresFraction() const
{
    if (ring_count_ == 0) {
        return 0.0;
    }
    std::size_t bad = 0;
    for (std::size_t i = 0; i < ring_count_; ++i) {
        if (out_of_cores_ring_[i]) {
            ++bad;
        }
    }
    return static_cast<double>(bad) / static_cast<double>(ring_count_);
}

// ---------------------------------------------------------------------------
// HarvestActuator
// ---------------------------------------------------------------------------

HarvestActuator::HarvestActuator(node::Node& node, node::VmId primary_vm,
                                 node::VmId elastic_vm,
                                 const sim::Clock& clock,
                                 const SmartHarvestConfig& config)
    : node_(node),
      primary_(primary_vm),
      elastic_(elastic_vm),
      clock_(clock),
      config_(config),
      wait_p99_(config.safeguard_window)
{
}

void
HarvestActuator::TakeAction(std::optional<core::Prediction<int>> pred)
{
    const int allocated = node_.AllocatedCores(primary_);
    int grant;
    if (pred.has_value()) {
        grant = std::clamp(pred->value, 0, allocated);
    } else {
        // Conservative: no fresh prediction means no harvesting.
        grant = allocated;
    }
    if (grant < allocated &&
        !core::AdmitActuation(governor_, kSmartHarvestName,
                              core::ActuationDomain::kCpuCores,
                              core::ActuationIntent::kExpand,
                              allocated - grant)) {
        // Denied: another agent holds a coupled resource; do not take
        // cores away from the primary this round.
        grant = allocated;
    }
    if (grant == allocated) {
        core::AdmitActuation(governor_, kSmartHarvestName,
                             core::ActuationDomain::kCpuCores,
                             core::ActuationIntent::kRestore, 0.0);
    }
    node_.GrantCores(primary_, grant);
    node_.GrantCores(elastic_, allocated - grant);
}

bool
HarvestActuator::AssessPerformance()
{
    const sim::TimePoint now = clock_.Now();
    const sim::Duration wait = node_.VcpuWaitTime(primary_);
    if (have_baseline_) {
        const sim::Duration interval = now - last_check_;
        if (interval > sim::Duration::zero()) {
            // Average number of cores left waiting over the interval.
            const double waiting_cores =
                sim::ToSeconds(wait - last_wait_) /
                sim::ToSeconds(interval);
            wait_p99_.Add(now, waiting_cores);
        }
    }
    last_wait_ = wait;
    last_check_ = now;
    have_baseline_ = true;

    if (wait_p99_.Count(now) < 10) {
        return true;
    }
    const double p99 = wait_p99_.Quantile(now, 0.99);
    safeguard_active_ = p99 > config_.safeguard_wait_threshold;
    return !safeguard_active_;
}

void
HarvestActuator::Mitigate()
{
    // Give every core back to the primary VM.
    core::AdmitActuation(governor_, kSmartHarvestName,
                         core::ActuationDomain::kCpuCores,
                         core::ActuationIntent::kRestore, 0.0);
    const int allocated = node_.AllocatedCores(primary_);
    node_.GrantCores(primary_, allocated);
    node_.GrantCores(elastic_, 0);
}

void
HarvestActuator::CleanUp()
{
    core::AdmitActuation(governor_, kSmartHarvestName,
                         core::ActuationDomain::kCpuCores,
                         core::ActuationIntent::kRestore, 0.0);
    const int allocated = node_.AllocatedCores(primary_);
    node_.GrantCores(primary_, allocated);
    node_.GrantCores(elastic_, 0);
}

}  // namespace sol::agents
