/**
 * @file
 * SmartHarvest: the paper's CPU harvesting agent (section 5.2, after
 * Wang et al., EuroSys 2021), re-implemented in SOL with the full
 * safeguard set.
 *
 * The agent samples the primary VM's CPU usage at 50 us granularity,
 * computes distributional features over each 25 ms learning epoch, and
 * uses a cost-sensitive one-against-all classifier (the VowpalWabbit
 * model family) to predict the maximum number of cores the primary VM
 * will need in the next 25 ms. Idle cores are loaned to an ElasticVM and
 * returned the moment the primary needs them.
 *
 * Safeguards:
 *  - ValidateData range-checks usage samples and discards samples taken
 *    while the primary uses all its granted cores (censored observations
 *    that would bias the model toward underprediction).
 *  - AssessModel measures the fraction of recent epochs in which the
 *    model's prediction left the primary out of idle cores; when high,
 *    predictions are intercepted and the conservative default (return
 *    all cores) is used while the model relearns.
 *  - The Actuator waits at most 100 ms (4 epochs) for a prediction and
 *    otherwise returns all cores to the primary VM.
 *  - The Actuator safeguard monitors the P99 of vCPU wait over a
 *    trailing window and disables harvesting while waits are high.
 */
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/actuation.h"
#include "core/actuator.h"
#include "core/model.h"
#include "core/schedule.h"
#include "ml/cost_sensitive.h"
#include "node/node.h"
#include "telemetry/window_percentile.h"

namespace sol::agents {

/** Canonical registry name of the SmartHarvest agent. */
inline constexpr const char* kSmartHarvestName = "smart-harvest";

/** One 50 us hypervisor usage sample. */
struct HarvestSample {
    double usage_cores = 0.0;  ///< Cores the primary VM is using now.
    int granted_cores = 0;     ///< Cores currently granted to it.
    int allocated_cores = 0;   ///< Cores it owns.
};

/** Tunables for SmartHarvest. */
struct SmartHarvestConfig {
    /** Cost of under-predicting demand by one core (QoS harm). */
    double under_penalty = 4.0;
    /** Cost of over-predicting by one core (missed harvest). */
    double over_penalty = 1.0;
    unsigned feature_bits = 16;
    double learning_rate = 0.1;
    sim::Duration prediction_ttl = sim::Millis(60);
    /** Epochs in the out-of-cores assessment window (40 = 1 s). */
    std::size_t assess_window = 40;
    /** AssessModel fails when more than this fraction of recent epochs
     *  ran the primary out of idle cores. */
    double assess_threshold = 0.10;
    /** Actuator safeguard: trailing window for the wait percentile. */
    sim::Duration safeguard_window = sim::Seconds(5);
    /** Trigger when P99 of per-interval core-wait exceeds this many
     *  average waiting cores. */
    double safeguard_wait_threshold = 1.0;
    std::uint64_t seed = 2;
};

/** Cost-sensitive classifier predicting next-epoch peak core demand. */
class HarvestModel : public core::Model<HarvestSample, int>
{
  public:
    HarvestModel(node::Node& node, node::VmId primary_vm,
                 const sim::Clock& clock,
                 const SmartHarvestConfig& config = {});

    HarvestSample CollectData() override;
    bool ValidateData(const HarvestSample& data) override;
    void CommitData(sim::TimePoint time, const HarvestSample& data) override;
    void UpdateModel() override;
    core::Prediction<int> ModelPredict() override;
    core::Prediction<int> DefaultPredict() override;
    bool AssessModel() override;

    const ml::CostSensitiveClassifier& classifier() const
    {
        return classifier_;
    }

    /**
     * Fault injection (Fig 6 middle): the broken model severely and
     * consistently underestimates primary demand.
     */
    void BreakModel(bool broken) { broken_ = broken; }

    /** Fraction of recent epochs that ran out of idle cores. */
    double OutOfCoresFraction() const;

  private:
    void BuildFeatures(ml::FeatureVector& out) const;

    node::Node& node_;
    node::VmId vm_;
    const sim::Clock& clock_;
    SmartHarvestConfig config_;
    ml::CostSensitiveClassifier classifier_;

    // Epoch accumulation (committed, validated samples only).
    std::vector<double> epoch_usage_;

    // Saturation tracking over *all* samples (including discarded ones).
    std::uint64_t epoch_samples_total_ = 0;
    std::uint64_t epoch_samples_saturated_ = 0;

    // Out-of-cores history ring for AssessModel.
    std::vector<bool> out_of_cores_ring_;
    std::size_t ring_pos_ = 0;
    std::size_t ring_count_ = 0;

    // Supervised pair bookkeeping.
    std::optional<ml::FeatureVector> prev_features_;
    int prev_label_ = 0;
    bool features_valid_ = false;
    ml::FeatureVector features_;

    bool broken_ = false;
};

/** Actuator applying grants with the vCPU-wait safeguard. */
class HarvestActuator : public core::Actuator<int>
{
  public:
    HarvestActuator(node::Node& node, node::VmId primary_vm,
                    node::VmId elastic_vm, const sim::Clock& clock,
                    const SmartHarvestConfig& config = {});

    void TakeAction(std::optional<core::Prediction<int>> pred) override;
    bool AssessPerformance() override;
    void Mitigate() override;
    void CleanUp() override;

    bool safeguard_active() const { return safeguard_active_; }

    /** Installs the shared-node governor; nullptr acts ungoverned. */
    void SetGovernor(core::ActuationGovernor* governor)
    {
        governor_ = governor;
    }

  private:
    node::Node& node_;
    node::VmId primary_;
    node::VmId elastic_;
    const sim::Clock& clock_;
    SmartHarvestConfig config_;
    core::ActuationGovernor* governor_ = nullptr;
    telemetry::WindowPercentile wait_p99_;
    sim::Duration last_wait_{0};
    sim::TimePoint last_check_{0};
    bool have_baseline_ = false;
    bool safeguard_active_ = false;
};

/** Paper schedule: 25 ms epochs of 500 x 50 us samples, 100 ms actuation
 *  timeout, 100 ms safeguard checks. */
core::Schedule SmartHarvestSchedule();

}  // namespace sol::agents
