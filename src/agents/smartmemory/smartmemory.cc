#include "agents/smartmemory/smartmemory.h"

#include <algorithm>
#include <cmath>

namespace sol::agents {

namespace {

/** Base scan period: one slot. */
constexpr double kSlotSeconds = 0.3;

/** Slots per learning epoch (128 * 300 ms = 38.4 s, 4x the slowest
 *  scan period as in the paper). */
constexpr int kSlotsPerEpoch = 128;

/** Slots per downsampling window (9.6 s, the slowest period). */
constexpr int kSlotsPerWindow = 32;

}  // namespace

core::Schedule
SmartMemorySchedule()
{
    core::Schedule schedule;
    schedule.data_per_epoch = kSlotsPerEpoch;
    schedule.data_collect_interval = sim::Millis(300);
    // 38.4 s nominal epochs with headroom for a few discarded rounds.
    schedule.max_epoch_time = sim::Millis(40200);
    schedule.assess_model_every_epochs = 1;
    schedule.max_actuation_delay = sim::Seconds(45);
    schedule.assess_actuator_interval = sim::Seconds(2);
    return schedule;
}

// ---------------------------------------------------------------------------
// MemoryModel
// ---------------------------------------------------------------------------

MemoryModel::MemoryModel(node::TieredMemory& memory,
                         const sim::Clock& clock,
                         const SmartMemoryConfig& config)
    : memory_(memory), clock_(clock), config_(config), rng_(config.seed)
{
    batches_.reserve(memory_.num_batches());
    for (std::size_t b = 0; b < memory_.num_batches(); ++b) {
        batches_.emplace_back(
            ml::ThompsonSampler(config_.arm_period_slots.size()));
        batches_.back().window_hit.assign(
            static_cast<std::size_t>(kSlotsPerEpoch / kSlotsPerWindow),
            false);
    }
    SelectArms();
}

void
MemoryModel::SelectArms()
{
    const std::size_t slowest = config_.arm_period_slots.size() - 1;
    for (auto& state : batches_) {
        state.probe = false;
        if (config_.fixed_arm >= 0) {
            state.arm = static_cast<std::size_t>(config_.fixed_arm);
        } else if (state.cold) {
            // Cold batches are scanned at the slowest rate only, so a
            // reactivated batch is still noticed.
            state.arm = slowest;
        } else {
            state.arm = state.sampler.SelectArm(rng_);
            // Ground-truth probes for the model assessment.
            state.probe = rng_.NextBool(config_.probe_fraction);
        }
    }
}

ScanRound
MemoryModel::CollectData()
{
    staging_.clear();
    ScanRound round;
    const std::uint64_t s = slot_++;
    ++slots_this_epoch_;
    for (std::size_t b = 0; b < batches_.size(); ++b) {
        BatchState& state = batches_[b];
        const int period = config_.arm_period_slots[state.arm];
        const bool arm_due = (s % static_cast<std::uint64_t>(period)) == 0;
        const bool do_scan = state.probe || arm_due;
        if (!do_scan) {
            continue;
        }
        bool error = false;
        const bool bit = memory_.ScanAndReset(b, &error);
        ++round.scanned;
        if (error) {
            ++round.errors;
            continue;
        }
        staging_.push_back(Observation{b, bit, state.probe, arm_due});
    }
    return round;
}

bool
MemoryModel::ValidateData(const ScanRound& data)
{
    // The scanning driver reported failures: discard the whole round.
    return data.errors == 0;
}

void
MemoryModel::CommitData(sim::TimePoint time, const ScanRound& /*data*/)
{
    const std::size_t window = std::min<std::size_t>(
        static_cast<std::size_t>((slots_this_epoch_ - 1) /
                                 kSlotsPerWindow),
        batches_.empty() ? 0 : batches_[0].window_hit.size() - 1);
    for (const Observation& obs : staging_) {
        BatchState& state = batches_[obs.batch];
        if (obs.is_probe_scan) {
            ++state.probe_scans;
            if (obs.bit) {
                ++state.probe_hits;
            }
            state.interval_or = state.interval_or || obs.bit;
            if (obs.arm_due) {
                // Close the reconstructed arm-period interval: this is
                // what a scan at the arm's rate would have observed.
                ++state.scans;
                if (state.interval_or) {
                    ++state.hits;
                }
                state.interval_or = false;
            }
        } else {
            ++state.scans;
            if (obs.bit) {
                ++state.hits;
            }
        }
        if (obs.bit) {
            state.last_set = time;
            state.window_hit[window] = true;
        }
    }
    staging_.clear();
}

double
MemoryModel::IntensityFromRatio(double ratio, double period_secs) const
{
    ratio = std::clamp(ratio, 0.0, 0.98);
    if (period_secs <= 0.0) {
        return 0.0;
    }
    // Poisson inversion: P(>=1 access in T) = 1 - exp(-lambda T).
    return -std::log(1.0 - ratio) / period_secs;
}

void
MemoryModel::UpdateModel()
{
    const sim::TimePoint now = clock_.Now();
    const std::size_t fastest = 0;
    const std::size_t slowest = config_.arm_period_slots.size() - 1;

    double probe_true_sum = 0.0;
    double probe_est_sum = 0.0;

    for (auto& state : batches_) {
        const double period_secs =
            kSlotSeconds *
            static_cast<double>(config_.arm_period_slots[state.arm]);
        const double ratio =
            state.scans > 0
                ? static_cast<double>(state.hits) /
                      static_cast<double>(state.scans)
                : 0.0;
        state.intensity = IntensityFromRatio(ratio, period_secs);

        if (state.probe && state.probe_scans > 0) {
            const double true_ratio =
                static_cast<double>(state.probe_hits) /
                static_cast<double>(state.probe_scans);
            probe_true_sum += IntensityFromRatio(true_ratio, kSlotSeconds);
            probe_est_sum += state.intensity;
        }

        // Bandit reward: the arm sampled well if it neither oversampled
        // (almost never saw the bit set, and could slow down) nor
        // undersampled (saw it always set — saturated — and could speed
        // up).
        if (!state.cold && config_.fixed_arm < 0 && state.scans > 0) {
            const bool oversampled =
                ratio < config_.oversample_ratio && state.arm != slowest;
            const bool undersampled =
                ratio >= config_.undersample_ratio && state.arm != fastest;
            state.sampler.Observe(state.arm,
                                  !(oversampled || undersampled));
        }

        // Cold detection (paper: untouched for more than 3 minutes).
        if (state.hits > 0 || state.probe_hits > 0) {
            state.cold = false;
        } else if (now - state.last_set > config_.cold_threshold) {
            state.cold = true;
        }

        // Preserve the downsampled (9.6 s granularity) counts for
        // DefaultPredict, then reset per-epoch accounting.
        int down = 0;
        for (const bool w : state.window_hit) {
            down += w ? 1 : 0;
        }
        state.down_hits = down;
        state.scans = 0;
        state.hits = 0;
        state.probe_scans = 0;
        state.probe_hits = 0;
        state.interval_or = false;
        std::fill(state.window_hit.begin(), state.window_hit.end(), false);
    }

    last_missed_fraction_ =
        probe_true_sum > 0.0
            ? std::max(0.0, 1.0 - probe_est_sum / probe_true_sum)
            : 0.0;

    slots_this_epoch_ = 0;
    SelectArms();
}

core::Prediction<MemoryPlan>
MemoryModel::ModelPredict()
{
    // Rank non-cold batches by estimated intensity.
    std::vector<node::BatchId> ranked;
    ranked.reserve(batches_.size());
    double total = 0.0;
    for (std::size_t b = 0; b < batches_.size(); ++b) {
        if (!batches_[b].cold) {
            ranked.push_back(b);
            total += batches_[b].intensity;
        }
    }
    std::sort(ranked.begin(), ranked.end(),
              [this](node::BatchId a, node::BatchId b) {
                  return batches_[a].intensity > batches_[b].intensity;
              });

    MemoryPlan plan;
    if (total > 0.0) {
        double covered = 0.0;
        std::size_t cut = 0;
        while (cut < ranked.size() &&
               covered < config_.hot_coverage * total) {
            covered += batches_[ranked[cut]].intensity;
            ++cut;
        }
        plan.fast.assign(ranked.begin(),
                         ranked.begin() + static_cast<std::ptrdiff_t>(cut));
        // Warm batches, coldest first.
        plan.slow.assign(ranked.rbegin(),
                         ranked.rend() - static_cast<std::ptrdiff_t>(cut));
    }
    // Cold batches always belong in the slow tier.
    for (std::size_t b = 0; b < batches_.size(); ++b) {
        if (batches_[b].cold) {
            plan.slow.push_back(b);
        }
    }
    return core::MakePrediction(std::move(plan), clock_.Now(),
                                config_.prediction_ttl);
}

core::Prediction<MemoryPlan>
MemoryModel::DefaultPredict()
{
    // Downsample every batch to the slowest frequency so hit counts are
    // directly comparable, then keep the hottest 95% local and demote
    // only the coldest 5% (paper 5.3).
    std::vector<node::BatchId> ranked(batches_.size());
    for (std::size_t b = 0; b < batches_.size(); ++b) {
        ranked[b] = b;
    }
    std::sort(ranked.begin(), ranked.end(),
              [this](node::BatchId a, node::BatchId b) {
                  if (batches_[a].down_hits != batches_[b].down_hits) {
                      return batches_[a].down_hits > batches_[b].down_hits;
                  }
                  return batches_[a].intensity > batches_[b].intensity;
              });
    const auto keep = static_cast<std::size_t>(
        config_.default_local_fraction *
        static_cast<double>(ranked.size()));
    MemoryPlan plan;
    plan.fast.assign(ranked.begin(),
                     ranked.begin() + static_cast<std::ptrdiff_t>(keep));
    plan.slow.assign(ranked.rbegin(),
                     ranked.rend() - static_cast<std::ptrdiff_t>(keep));
    return core::MakeDefaultPrediction(std::move(plan), clock_.Now(),
                                       config_.prediction_ttl);
}

bool
MemoryModel::AssessModel()
{
    if (config_.fixed_arm >= 0) {
        return true;  // Static baselines have no probes to judge with.
    }
    assessment_ok_ =
        last_missed_fraction_ <= config_.missed_access_threshold;
    return assessment_ok_;
}

double
MemoryModel::EstimatedIntensity(node::BatchId batch) const
{
    return batches_.at(batch).intensity;
}

bool
MemoryModel::IsCold(node::BatchId batch) const
{
    return batches_.at(batch).cold;
}

// ---------------------------------------------------------------------------
// MemoryActuator
// ---------------------------------------------------------------------------

MemoryActuator::MemoryActuator(node::TieredMemory& memory,
                               const sim::Clock& clock,
                               const SmartMemoryConfig& config)
    : memory_(memory), clock_(clock), config_(config)
{
}

void
MemoryActuator::TakeAction(
    std::optional<core::Prediction<MemoryPlan>> pred)
{
    if (!pred.has_value()) {
        // Delayed/stale prediction: pages simply stay where they are.
        return;
    }
    const MemoryPlan& plan = pred->value;
    // Demoting working memory to the slow tier spends the node's shared
    // QoS headroom; promotions only restore locality and always run.
    bool demote = !plan.slow.empty();
    if (demote) {
        demote = core::AdmitActuation(
            governor_, kSmartMemoryName,
            core::ActuationDomain::kMemoryPlacement,
            core::ActuationIntent::kExpand,
            static_cast<double>(plan.slow.size()));
    } else {
        core::AdmitActuation(governor_, kSmartMemoryName,
                             core::ActuationDomain::kMemoryPlacement,
                             core::ActuationIntent::kRestore, 0.0);
    }
    // Demote first to free first-tier room, then promote hottest-first.
    if (demote) {
        for (const node::BatchId b : plan.slow) {
            memory_.Migrate(b, node::Tier::kSlow);
        }
    }
    for (const node::BatchId b : plan.fast) {
        if (memory_.TierOf(b) == node::Tier::kFast) {
            continue;
        }
        if (!memory_.FastTierHasRoom()) {
            break;
        }
        memory_.Migrate(b, node::Tier::kFast);
    }
}

bool
MemoryActuator::AssessPerformance()
{
    const node::MemoryAccessStats& stats = memory_.stats();
    const std::uint64_t dl = stats.local_accesses - last_local_;
    const std::uint64_t dr = stats.remote_accesses - last_remote_;
    last_local_ = stats.local_accesses;
    last_remote_ = stats.remote_accesses;
    const std::uint64_t total = dl + dr;
    last_remote_fraction_ =
        total > 0 ? static_cast<double>(dr) / static_cast<double>(total)
                  : 0.0;
    return last_remote_fraction_ <= config_.remote_slo;
}

void
MemoryActuator::Mitigate()
{
    core::AdmitActuation(governor_, kSmartMemoryName,
                         core::ActuationDomain::kMemoryPlacement,
                         core::ActuationIntent::kRestore, 0.0);
    // Immediately migrate the hottest second-tier batches back to DRAM,
    // hottest (most recently accessed) first, as many as fit.
    std::vector<node::BatchId> slow_batches;
    for (std::size_t b = 0; b < memory_.num_batches(); ++b) {
        if (memory_.TierOf(b) == node::Tier::kSlow) {
            slow_batches.push_back(b);
        }
    }
    std::sort(slow_batches.begin(), slow_batches.end(),
              [this](node::BatchId a, node::BatchId b) {
                  return memory_.LastAccess(a) > memory_.LastAccess(b);
              });
    std::size_t moved = 0;
    for (const node::BatchId b : slow_batches) {
        if (moved >= config_.mitigation_batches ||
            !memory_.FastTierHasRoom()) {
            break;
        }
        memory_.Migrate(b, node::Tier::kFast);
        ++moved;
    }
}

void
MemoryActuator::CleanUp()
{
    core::AdmitActuation(governor_, kSmartMemoryName,
                         core::ActuationDomain::kMemoryPlacement,
                         core::ActuationIntent::kRestore, 0.0);
    // Restore second-tier batches to DRAM until all are back or the
    // first tier is full, most recently used first.
    std::vector<node::BatchId> slow_batches;
    for (std::size_t b = 0; b < memory_.num_batches(); ++b) {
        if (memory_.TierOf(b) == node::Tier::kSlow) {
            slow_batches.push_back(b);
        }
    }
    std::sort(slow_batches.begin(), slow_batches.end(),
              [this](node::BatchId a, node::BatchId b) {
                  return memory_.LastAccess(a) > memory_.LastAccess(b);
              });
    for (const node::BatchId b : slow_batches) {
        if (!memory_.FastTierHasRoom()) {
            break;
        }
        memory_.Migrate(b, node::Tier::kFast);
    }
}

}  // namespace sol::agents
