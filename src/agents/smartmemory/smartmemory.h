/**
 * @file
 * SmartMemory: the paper's page classification agent for two-tiered
 * memory systems (section 5.3).
 *
 * The agent learns, per 2 MB batch of pages, the lowest access-bit scan
 * frequency that still observes the batch's activity (Thompson Sampling
 * with Beta priors over the candidate periods 300 ms .. 9.6 s). At the
 * end of each 38.4 s epoch it estimates per-batch access intensity from
 * the variable-rate scans, classifies the minimal set of batches covering
 * 80% of accesses as hot (kept in first-tier DRAM), the rest as warm
 * (candidates for the slow tier), and batches untouched for over 3
 * minutes as cold.
 *
 * Safeguards:
 *  - ValidateData fails a scan round when the scanning driver reports an
 *    error, discarding the round's observations.
 *  - AssessModel probes a random 10% of batches at the maximum frequency
 *    as ground truth; if the model-recommended rates miss more than 25%
 *    of accesses the model is deemed to be undersampling. The default
 *    prediction then downsamples all scans to the lowest frequency (so
 *    counts are comparable) and keeps the 95% hottest batches local.
 *  - Delayed predictions need no immediate action: pages stay put.
 *  - The Actuator safeguard triggers when the remote-access fraction of
 *    the last window exceeds the 20% SLO, immediately migrating the
 *    hottest second-tier batches back to DRAM.
 */
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "core/actuation.h"
#include "core/actuator.h"
#include "core/model.h"
#include "core/schedule.h"
#include "ml/thompson.h"
#include "node/tiered_memory.h"
#include "sim/rng.h"

namespace sol::agents {

/** Canonical registry name of the SmartMemory agent. */
inline constexpr const char* kSmartMemoryName = "smart-memory";

/** Result of one 300 ms scan round. */
struct ScanRound {
    int scanned = 0;  ///< Batches scanned this round.
    int errors = 0;   ///< Driver errors reported this round.
};

/** Placement plan: the prediction payload. */
struct MemoryPlan {
    /** Batches to keep (or bring) in first-tier DRAM, hottest first. */
    std::vector<node::BatchId> fast;
    /** Batches to demote to the slow tier, coldest first. */
    std::vector<node::BatchId> slow;
};

/** Tunables for SmartMemory. */
struct SmartMemoryConfig {
    /** Candidate scan periods, multiples of the 300 ms base period. */
    std::vector<int> arm_period_slots = {1, 2, 4, 8, 16, 32};
    /** Fraction of total access intensity the hot set must cover. */
    double hot_coverage = 0.80;
    /** Default prediction keeps this fraction of batches local. */
    double default_local_fraction = 0.95;
    /** Batches idle longer than this are cold (excluded from analysis). */
    sim::Duration cold_threshold = sim::Seconds(180);
    /** Fraction of batches probed at max frequency for ground truth. */
    double probe_fraction = 0.10;
    /** AssessModel fails above this missed-access fraction. */
    double missed_access_threshold = 0.25;
    /** Hit ratio below which an arm oversamples (should slow down). */
    double oversample_ratio = 0.25;
    /** Hit ratio above which an arm undersamples (should speed up). */
    double undersample_ratio = 0.98;
    /** Remote-access SLO for the actuator safeguard. */
    double remote_slo = 0.20;
    /** Batches migrated back per mitigation. */
    std::size_t mitigation_batches = 100;
    sim::Duration prediction_ttl = sim::Seconds(60);
    /** Fixed arm override: disables learning and scans every batch at
     *  this arm (the Fig 7 static baselines). Negative = learn. */
    int fixed_arm = -1;
    std::uint64_t seed = 3;
};

/** Per-batch Thompson-sampling scan scheduler and hot/warm classifier. */
class MemoryModel : public core::Model<ScanRound, MemoryPlan>
{
  public:
    MemoryModel(node::TieredMemory& memory, const sim::Clock& clock,
                const SmartMemoryConfig& config = {});

    ScanRound CollectData() override;
    bool ValidateData(const ScanRound& data) override;
    void CommitData(sim::TimePoint time, const ScanRound& data) override;
    void UpdateModel() override;
    core::Prediction<MemoryPlan> ModelPredict() override;
    core::Prediction<MemoryPlan> DefaultPredict() override;
    bool AssessModel() override;

    /** Estimated access intensity of a batch (accesses/s), last epoch. */
    double EstimatedIntensity(node::BatchId batch) const;

    /** Missed-access fraction measured by the last assessment. */
    double last_missed_fraction() const { return last_missed_fraction_; }

    bool IsCold(node::BatchId batch) const;

  private:
    struct BatchState {
        explicit BatchState(ml::ThompsonSampler s) : sampler(std::move(s))
        {}

        ml::ThompsonSampler sampler;
        std::size_t arm = 0;
        bool probe = false;       ///< Ground-truth probe this epoch.
        int scans = 0;            ///< Arm-rate scans this epoch.
        int hits = 0;             ///< Arm-rate scans that saw the bit set.
        int probe_scans = 0;      ///< Max-rate scans (probes only).
        int probe_hits = 0;
        bool interval_or = false; ///< Pending OR for arm reconstruction.
        std::vector<bool> window_hit;  ///< Per-9.6 s window activity.
        double intensity = 0.0;   ///< Accesses/s estimate, last epoch.
        int down_hits = 0;        ///< Downsampled hit count, last epoch.
        sim::TimePoint last_set{0};
        bool cold = false;
    };

    void SelectArms();
    double IntensityFromRatio(double ratio, double period_secs) const;

    node::TieredMemory& memory_;
    const sim::Clock& clock_;
    SmartMemoryConfig config_;
    sim::Rng rng_;
    std::vector<BatchState> batches_;
    std::uint64_t slot_ = 0;  ///< 300 ms slots since start.
    int slots_this_epoch_ = 0;

    /** Observations staged by CollectData, applied on CommitData. */
    struct Observation {
        node::BatchId batch;
        bool bit;
        bool is_probe_scan;
        bool arm_due;  ///< This slot is an arm-period boundary.
    };
    std::vector<Observation> staging_;

    double last_missed_fraction_ = 0.0;
    bool assessment_ok_ = true;
};

/** Actuator applying migrations with the remote-access SLO safeguard. */
class MemoryActuator : public core::Actuator<MemoryPlan>
{
  public:
    MemoryActuator(node::TieredMemory& memory, const sim::Clock& clock,
                   const SmartMemoryConfig& config = {});

    void TakeAction(std::optional<core::Prediction<MemoryPlan>> pred)
        override;
    bool AssessPerformance() override;
    void Mitigate() override;
    void CleanUp() override;

    /** Remote fraction over the last safeguard interval. */
    double last_remote_fraction() const { return last_remote_fraction_; }

    /** Installs the shared-node governor; nullptr acts ungoverned. */
    void SetGovernor(core::ActuationGovernor* governor)
    {
        governor_ = governor;
    }

  private:
    node::TieredMemory& memory_;
    const sim::Clock& clock_;
    SmartMemoryConfig config_;
    core::ActuationGovernor* governor_ = nullptr;
    std::uint64_t last_local_ = 0;
    std::uint64_t last_remote_ = 0;
    double last_remote_fraction_ = 0.0;
};

/** Paper schedule: 38.4 s epochs of 128 x 300 ms scan rounds. */
core::Schedule SmartMemorySchedule();

}  // namespace sol::agents
