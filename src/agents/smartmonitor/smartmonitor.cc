#include "agents/smartmonitor/smartmonitor.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <unordered_set>

namespace sol::agents {

core::Schedule
SmartMonitorSchedule()
{
    core::Schedule schedule;
    schedule.data_per_epoch = 10;
    schedule.data_collect_interval = sim::Millis(100);
    schedule.max_epoch_time = sim::Millis(1500);
    schedule.assess_model_every_epochs = 1;
    schedule.max_actuation_delay = sim::Seconds(5);
    schedule.assess_actuator_interval = sim::Seconds(1);
    return schedule;
}

// ---------------------------------------------------------------------------
// SamplingPolicy
// ---------------------------------------------------------------------------

SamplingPolicy::SamplingPolicy(std::size_t num_channels,
                               std::size_t visit_history)
    : cdf_(num_channels), visit_capacity_(visit_history)
{
    if (num_channels == 0) {
        throw std::invalid_argument("need at least one channel");
    }
    Reset();
}

void
SamplingPolicy::SetWeights(const std::vector<double>& weights)
{
    if (weights.size() != cdf_.size()) {
        throw std::invalid_argument("weight count != channel count");
    }
    double total = 0.0;
    for (const double w : weights) {
        if (w < 0.0) {
            throw std::invalid_argument("weights must be non-negative");
        }
        total += w;
    }
    if (total <= 0.0) {
        throw std::invalid_argument("weights must not all be zero");
    }
    double cumulative = 0.0;
    for (std::size_t c = 0; c < cdf_.size(); ++c) {
        cumulative += weights[c] / total;
        cdf_[c] = cumulative;
    }
    cdf_.back() = 1.0;
    uniform_ = false;
}

void
SamplingPolicy::Reset()
{
    const double step = 1.0 / static_cast<double>(cdf_.size());
    double cumulative = 0.0;
    for (auto& c : cdf_) {
        cumulative += step;
        c = cumulative;
    }
    cdf_.back() = 1.0;
    uniform_ = true;
}

node::ChannelId
SamplingPolicy::Pick(sim::Rng& rng)
{
    const double u = rng.NextDouble();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    const auto channel =
        static_cast<node::ChannelId>(it - cdf_.begin());
    RecordVisit(channel);
    return channel;
}

void
SamplingPolicy::RecordVisit(node::ChannelId channel)
{
    visits_.push_back(channel);
    while (visits_.size() > visit_capacity_) {
        visits_.pop_front();
    }
}

double
SamplingPolicy::StarvedFraction() const
{
    if (visits_.empty()) {
        return 0.0;  // Nothing sampled yet: nothing to judge.
    }
    std::unordered_set<node::ChannelId> seen(visits_.begin(),
                                             visits_.end());
    return 1.0 - static_cast<double>(seen.size()) /
                     static_cast<double>(cdf_.size());
}

// ---------------------------------------------------------------------------
// MonitorModel
// ---------------------------------------------------------------------------

MonitorModel::MonitorModel(node::ChannelArray& channels,
                           SamplingPolicy& policy, const sim::Clock& clock,
                           const SmartMonitorConfig& config)
    : channels_(channels),
      policy_(policy),
      clock_(clock),
      config_(config),
      rng_(config.seed),
      alpha_(channels.num_channels(), 1.0),
      beta_(channels.num_channels(), 1.0)
{
    if (config_.budget_per_round < 2) {
        throw std::invalid_argument(
            "budget must cover the control slot plus >= 1 sample");
    }
}

MonitorRound
MonitorModel::CollectData()
{
    staging_.clear();
    MonitorRound round;

    // One control slot: uniform round-robin, the assessment baseline.
    {
        bool error = false;
        const node::ChannelId channel = next_control_;
        next_control_ = (next_control_ + 1) % channels_.num_channels();
        const int found = channels_.Sample(channel, clock_.Now(), &error);
        policy_.RecordVisit(channel);
        ++round.samples;
        if (error) {
            ++round.errors;
        } else {
            round.detections += found;
            staging_.push_back(Observation{channel, found > 0, true});
        }
    }

    // Remaining budget: the learned (or default) allocation.
    for (int slot = 1; slot < config_.budget_per_round; ++slot) {
        bool error = false;
        const node::ChannelId channel = policy_.Pick(rng_);
        const int found = channels_.Sample(channel, clock_.Now(), &error);
        ++round.samples;
        if (error) {
            ++round.errors;
            continue;
        }
        round.detections += found;
        staging_.push_back(Observation{channel, found > 0, false});
    }
    return round;
}

bool
MonitorModel::ValidateData(const MonitorRound& data)
{
    return data.errors == 0;
}

void
MonitorModel::CommitData(sim::TimePoint /*time*/,
                         const MonitorRound& /*data*/)
{
    for (const Observation& obs : staging_) {
        if (obs.detected) {
            alpha_[obs.channel] += 1.0;
        } else {
            beta_[obs.channel] += 1.0;
        }
        if (obs.control) {
            ++epoch_counts_[2];
            epoch_counts_[3] += obs.detected ? 1 : 0;
        } else {
            ++epoch_counts_[0];
            epoch_counts_[1] += obs.detected ? 1 : 0;
        }
    }
    staging_.clear();
}

void
MonitorModel::UpdateModel()
{
    // Decay posteriors toward the prior so the model tracks shifting
    // incident rates.
    for (std::size_t c = 0; c < alpha_.size(); ++c) {
        alpha_[c] = 1.0 + (alpha_[c] - 1.0) * config_.posterior_decay;
        beta_[c] = 1.0 + (beta_[c] - 1.0) * config_.posterior_decay;
    }
    window_.push_back(epoch_counts_);
    epoch_counts_ = {};
    while (window_.size() > config_.assess_window_epochs) {
        window_.pop_front();
    }
}

core::Prediction<std::vector<double>>
MonitorModel::ModelPredict()
{
    // Thompson-style weights: sample each channel's posterior and mix
    // with a uniform floor so no channel is fully starved.
    std::vector<double> weights(alpha_.size());
    const double floor =
        config_.uniform_floor / static_cast<double>(alpha_.size());
    double total = 0.0;
    for (std::size_t c = 0; c < alpha_.size(); ++c) {
        weights[c] = rng_.NextBeta(alpha_[c], beta_[c]);
        total += weights[c];
    }
    for (auto& w : weights) {
        w = (1.0 - config_.uniform_floor) * (w / total) + floor;
    }
    return core::MakePrediction(std::move(weights), clock_.Now(),
                                config_.prediction_ttl);
}

core::Prediction<std::vector<double>>
MonitorModel::DefaultPredict()
{
    // Uniform allocation: today's production behavior, always safe.
    return core::MakeDefaultPrediction(
        std::vector<double>(alpha_.size(),
                            1.0 / static_cast<double>(alpha_.size())),
        clock_.Now(), config_.prediction_ttl);
}

bool
MonitorModel::AssessModel()
{
    if (window_.size() < config_.assess_window_epochs) {
        return assessment_ok_;
    }
    // The learned allocation must out-detect the uniform control.
    const double allocated = AllocatedYield();
    const double control = ControlYield();
    assessment_ok_ = allocated >= control;
    return assessment_ok_;
}

double
MonitorModel::AllocatedYield() const
{
    std::uint64_t samples = 0;
    std::uint64_t detections = 0;
    for (const auto& epoch : window_) {
        samples += epoch[0];
        detections += epoch[1];
    }
    return samples > 0 ? static_cast<double>(detections) /
                             static_cast<double>(samples)
                       : 0.0;
}

double
MonitorModel::ControlYield() const
{
    std::uint64_t samples = 0;
    std::uint64_t detections = 0;
    for (const auto& epoch : window_) {
        samples += epoch[2];
        detections += epoch[3];
    }
    return samples > 0 ? static_cast<double>(detections) /
                             static_cast<double>(samples)
                       : 0.0;
}

double
MonitorModel::Propensity(node::ChannelId channel) const
{
    return alpha_.at(channel) / (alpha_.at(channel) + beta_.at(channel));
}

// ---------------------------------------------------------------------------
// MonitorActuator
// ---------------------------------------------------------------------------

MonitorActuator::MonitorActuator(SamplingPolicy& policy,
                                 const SmartMonitorConfig& config)
    : policy_(policy), config_(config)
{
}

void
MonitorActuator::TakeAction(
    std::optional<core::Prediction<std::vector<double>>> pred)
{
    if (pred.has_value() &&
        core::AdmitActuation(governor_, kSmartMonitorName,
                             core::ActuationDomain::kTelemetryBudget,
                             core::ActuationIntent::kExpand,
                             static_cast<double>(pred->value.size()))) {
        policy_.SetWeights(pred->value);
    } else {
        // Stale, missing, or denied prediction: uniform is always safe.
        core::AdmitActuation(governor_, kSmartMonitorName,
                             core::ActuationDomain::kTelemetryBudget,
                             core::ActuationIntent::kRestore, 0.0);
        policy_.Reset();
    }
}

bool
MonitorActuator::AssessPerformance()
{
    last_starved_ = policy_.StarvedFraction();
    return last_starved_ <= config_.starvation_threshold;
}

void
MonitorActuator::Mitigate()
{
    core::AdmitActuation(governor_, kSmartMonitorName,
                         core::ActuationDomain::kTelemetryBudget,
                         core::ActuationIntent::kRestore, 0.0);
    policy_.Reset();
}

void
MonitorActuator::CleanUp()
{
    core::AdmitActuation(governor_, kSmartMonitorName,
                         core::ActuationDomain::kTelemetryBudget,
                         core::ActuationIntent::kRestore, 0.0);
    policy_.Reset();
}

}  // namespace sol::agents
