/**
 * @file
 * SmartMonitor: the monitoring/logging agent class the paper motivates
 * (sections 2-3) but does not build — implemented here as an extension
 * in SOL.
 *
 * The agent has a fixed telemetry collection budget (samples per 100 ms
 * round) to spread over many channels. Today's production monitors
 * sample uniformly, oversampling quiet channels and undersampling the
 * ones where incidents actually appear. SmartMonitor learns per-channel
 * incident propensity with Beta-Bernoulli posteriors and allocates the
 * budget by Thompson-style weights, raising incident detection coverage
 * and cutting detection latency at the same cost.
 *
 * Safeguards (the mandatory SOL set):
 *  - ValidateData discards rounds whose readings are corrupted
 *    (negative counts from a failing driver).
 *  - AssessModel reserves one control slot per round that always
 *    samples uniformly (round-robin); if the learned allocation detects
 *    fewer incidents per sample than the uniform control, predictions
 *    are intercepted and the uniform default is used while the model
 *    relearns.
 *  - The Actuator falls back to uniform sampling when predictions are
 *    stale or absent.
 *  - The Actuator safeguard monitors channel starvation — the fraction
 *    of channels the allocation has not visited within the trailing
 *    window — and reverts to uniform sampling when coverage collapses.
 *  - CleanUp restores uniform sampling (idempotent).
 */
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "core/actuation.h"
#include "core/actuator.h"
#include "core/model.h"
#include "core/schedule.h"
#include "node/channel_array.h"
#include "sim/rng.h"

namespace sol::agents {

/** Canonical registry name of the SmartMonitor agent. */
inline constexpr const char* kSmartMonitorName = "smart-monitor";

/**
 * Shared sampling policy: the knob the Actuator sets and the Model's
 * collection loop executes (the node-side sampler configuration). Also
 * keeps the recent-visit ring the starvation safeguard reads — in
 * production this is the sampler's per-channel visit counter.
 */
class SamplingPolicy
{
  public:
    /**
     * @param num_channels Channels on the node.
     * @param visit_history Ring capacity for starvation accounting.
     */
    explicit SamplingPolicy(std::size_t num_channels,
                            std::size_t visit_history = 512);

    /** Installs per-channel weights (any non-negative, not all zero). */
    void SetWeights(const std::vector<double>& weights);

    /** Restores uniform sampling. */
    void Reset();

    /** Draws a channel per the current weights and records the visit. */
    node::ChannelId Pick(sim::Rng& rng);

    /** Records a visit made outside Pick (e.g. the control slot). */
    void RecordVisit(node::ChannelId channel);

    /** Fraction of channels absent from the recent-visit ring. */
    double StarvedFraction() const;

    std::size_t num_channels() const { return cdf_.size(); }
    bool is_uniform() const { return uniform_; }

  private:
    std::vector<double> cdf_;  ///< Cumulative weight distribution.
    bool uniform_ = true;
    std::deque<node::ChannelId> visits_;
    std::size_t visit_capacity_;
};

/** One 100 ms sampling round. */
struct MonitorRound {
    int samples = 0;
    int errors = 0;      ///< Corrupted readings (discard round).
    int detections = 0;  ///< Incidents found this round.
};

/** Tunables for SmartMonitor. */
struct SmartMonitorConfig {
    /** Budgeted samples per 100 ms round (includes the control slot). */
    int budget_per_round = 3;
    /** Uniform floor mixed into the learned weights, for coverage. */
    double uniform_floor = 0.15;
    /** Posterior decay per epoch (adapts to shifting incident rates). */
    double posterior_decay = 0.98;
    sim::Duration prediction_ttl = sim::Seconds(5);
    /** Assessment window length in epochs. */
    std::size_t assess_window_epochs = 30;
    /** Trigger when more than this fraction of channels went unvisited
     *  within the policy's recent-visit ring. */
    double starvation_threshold = 0.5;
    std::uint64_t seed = 4;
};

/** Per-channel Beta posteriors allocating the sampling budget. */
class MonitorModel : public core::Model<MonitorRound, std::vector<double>>
{
  public:
    MonitorModel(node::ChannelArray& channels, SamplingPolicy& policy,
                 const sim::Clock& clock,
                 const SmartMonitorConfig& config = {});

    MonitorRound CollectData() override;
    bool ValidateData(const MonitorRound& data) override;
    void CommitData(sim::TimePoint time, const MonitorRound& data) override;
    void UpdateModel() override;
    core::Prediction<std::vector<double>> ModelPredict() override;
    core::Prediction<std::vector<double>> DefaultPredict() override;
    bool AssessModel() override;

    /** Posterior mean incident propensity of a channel. */
    double Propensity(node::ChannelId channel) const;

    /** Detections per allocated sample over the assessment window. */
    double AllocatedYield() const;
    /** Detections per control (uniform) sample over the window. */
    double ControlYield() const;

  private:
    struct Observation {
        node::ChannelId channel;
        bool detected;
        bool control;
    };

    node::ChannelArray& channels_;
    SamplingPolicy& policy_;
    const sim::Clock& clock_;
    SmartMonitorConfig config_;
    sim::Rng rng_;

    std::vector<double> alpha_;
    std::vector<double> beta_;
    node::ChannelId next_control_ = 0;  ///< Round-robin control slot.

    std::vector<Observation> staging_;

    /** Per-epoch [allocated_samples, allocated_detections,
     *  control_samples, control_detections], windowed. */
    std::deque<std::array<std::uint64_t, 4>> window_;
    std::array<std::uint64_t, 4> epoch_counts_{};

    bool assessment_ok_ = true;
};

/** Actuator applying allocations with the starvation safeguard. */
class MonitorActuator : public core::Actuator<std::vector<double>>
{
  public:
    MonitorActuator(SamplingPolicy& policy,
                    const SmartMonitorConfig& config = {});

    void
    TakeAction(std::optional<core::Prediction<std::vector<double>>> pred)
        override;
    bool AssessPerformance() override;
    void Mitigate() override;
    void CleanUp() override;

    double last_starved_fraction() const { return last_starved_; }

    /** Installs the shared-node governor; nullptr acts ungoverned. */
    void SetGovernor(core::ActuationGovernor* governor)
    {
        governor_ = governor;
    }

  private:
    SamplingPolicy& policy_;
    SmartMonitorConfig config_;
    core::ActuationGovernor* governor_ = nullptr;
    double last_starved_ = 0.0;
};

/** Schedule: 1 s epochs of 10 x 100 ms sampling rounds. */
core::Schedule SmartMonitorSchedule();

}  // namespace sol::agents
