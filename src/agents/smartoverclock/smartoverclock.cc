#include "agents/smartoverclock/smartoverclock.h"

#include <algorithm>
#include <cmath>

namespace sol::agents {

namespace {

ml::QLearnerConfig
MakeLearnerConfig(const SmartOverclockConfig& config,
                  std::size_t num_freqs)
{
    ml::QLearnerConfig lc;
    lc.num_states = static_cast<std::size_t>(config.ips_buckets) * num_freqs;
    lc.num_actions = num_freqs;
    lc.learning_rate = config.learning_rate;
    lc.discount = config.discount;
    lc.exploration = config.exploration;
    lc.initial_q = config.initial_q;
    return lc;
}

}  // namespace

core::Schedule
SmartOverclockSchedule()
{
    core::Schedule schedule;
    schedule.data_per_epoch = 10;
    schedule.data_collect_interval = sim::Millis(100);
    // 1 s nominal epochs; the 1.5 s deadline gives a transiently noisy
    // counter a few retries before the epoch is short-circuited.
    schedule.max_epoch_time = sim::Millis(1500);
    schedule.assess_model_every_epochs = 1;
    schedule.max_actuation_delay = sim::Seconds(5);
    schedule.assess_actuator_interval = sim::Seconds(1);
    return schedule;
}

// ---------------------------------------------------------------------------
// OverclockModel
// ---------------------------------------------------------------------------

OverclockModel::OverclockModel(node::Node& node, node::VmId vm,
                               const sim::Clock& clock,
                               const SmartOverclockConfig& config)
    : node_(node),
      vm_(vm),
      clock_(clock),
      config_(config),
      learner_(MakeLearnerConfig(config,
                                 node.AllowedFrequencies().size())),
      gips_buckets_(0.0, config.max_gips_per_core,
                    static_cast<std::size_t>(config.ips_buckets)),
      rng_(config.seed),
      delta_r_window_(config.assess_window),
      overclocked_window_(config.assess_window)
{
}

OverclockSample
OverclockModel::CollectData()
{
    const node::CpuCounterSnapshot snap = node_.ReadCounters(vm_);
    OverclockSample sample;
    sample.freq_ghz = node_.VmFrequency(vm_);
    if (have_snapshot_) {
        const node::CpuCounterDelta delta =
            node::Diff(last_snapshot_, snap);
        sample.ips = delta.Ips();
        sample.alpha = delta.Alpha();
    }
    last_snapshot_ = snap;
    have_snapshot_ = true;
    return sample;
}

bool
OverclockModel::ValidateData(const OverclockSample& data)
{
    // Range checks from the paper: IPS within 0..max_freq * max_IPC for
    // the VM's cores, alpha within [0, 1], frequency in the DVFS set.
    const double cores =
        static_cast<double>(node_.GrantedCores(vm_));
    const double max_freq_hz =
        *std::max_element(node_.AllowedFrequencies().begin(),
                          node_.AllowedFrequencies().end()) *
        1e9;
    const double max_ips = cores * max_freq_hz * config_.max_ipc;
    if (!(data.ips >= 0.0 && data.ips <= max_ips)) {
        return false;
    }
    if (!(data.alpha >= 0.0 && data.alpha <= 1.0)) {
        return false;
    }
    if (!(data.freq_ghz > 0.0 && data.freq_ghz <= 10.0)) {
        return false;
    }
    return true;
}

void
OverclockModel::CommitData(sim::TimePoint /*time*/,
                           const OverclockSample& data)
{
    epoch_ips_.Add(data.ips);
    epoch_alpha_.Add(data.alpha);
    epoch_freq_.Add(data.freq_ghz);
}

void
OverclockModel::UpdateModel()
{
    if (epoch_ips_.count() == 0) {
        return;
    }
    const double nominal = node_.NominalFrequency();
    const double cores =
        std::max(1.0, static_cast<double>(node_.GrantedCores(vm_)));
    const double freq = epoch_freq_.mean();
    const double gips_per_core = epoch_ips_.mean() / cores / 1e9;

    // Reward: normalized instruction throughput minus the extra power
    // cost of running above nominal (cubic in frequency).
    const double ips_norm = gips_per_core / nominal;
    const double freq_ratio = freq / nominal;
    const double power_penalty =
        config_.power_coeff * (freq_ratio * freq_ratio * freq_ratio - 1.0);
    const double reward = ips_norm - power_penalty;

    // Credit the action that actually ran this epoch: when the runtime
    // intercepts the model's prediction (or the actuator times out), the
    // executed frequency differs from the one ModelPredict emitted.
    const std::size_t executed_action = FreqIndex(freq);
    const std::size_t state = StateFor(gips_per_core, freq);
    if (prev_state_) {
        learner_.Update(*prev_state_, executed_action, reward, state);
    }

    // delta_r: observed reward when overclocked minus the estimated
    // reward of having stayed at nominal (IPS rescaled to nominal under
    // the frequency-sensitivity assumption). Epochs that ran at nominal
    // contribute 0, so the average over the last 10 epochs measures the
    // net benefit of the overclocking the policy actually performed.
    if (freq > nominal * 1.01) {
        const double nominal_reward_est = ips_norm / freq_ratio;
        delta_r_window_.Add(reward - nominal_reward_est);
        overclocked_window_.Add(1.0);
    } else {
        delta_r_window_.Add(0.0);
        overclocked_window_.Add(0.0);
    }

    last_gips_ = gips_per_core;
    last_gips_valid_ = true;

    epoch_ips_.Reset();
    epoch_alpha_.Reset();
    epoch_freq_.Reset();
}

core::Prediction<double>
OverclockModel::ModelPredict()
{
    const double freq = node_.VmFrequency(vm_);
    const double cores =
        std::max(1.0, static_cast<double>(node_.GrantedCores(vm_)));
    // State comes from the last full epoch's aggregate; before any epoch
    // completes, fall back to an instantaneous usage estimate.
    const double gips = last_gips_valid_
                            ? last_gips_
                            : node_.SampleCpuUsage(vm_) * freq / cores;
    const std::size_t state = StateFor(gips, freq);

    std::size_t action;
    bool explored = false;
    if (broken_) {
        // Fault injection: a buggy policy that always overclocks to max.
        action = node_.AllowedFrequencies().size() - 1;
    } else {
        action = learner_.SelectAction(state, rng_, &explored);
    }
    prev_state_ = state;
    prev_emitted_explored_ = explored;

    const double chosen = node_.AllowedFrequencies()[action];
    return core::MakePrediction(chosen, clock_.Now(),
                                config_.prediction_ttl);
}

core::Prediction<double>
OverclockModel::DefaultPredict()
{
    // While the model assessment is failing the agent keeps exploring
    // randomly but pins the policy-selected action to nominal (paper
    // section 5.1). On data-starved epochs the default is plain nominal.
    double freq = node_.NominalFrequency();
    if (!assessment_ok_ && rng_.NextBool(config_.exploration)) {
        // Keep exploring while intercepted — this produces the
        // overclocked epochs whose delta_r lets the model prove it has
        // recovered. Exploring nominal would carry no evidence, so the
        // random choice is over the overclocked frequencies only.
        const auto& freqs = node_.AllowedFrequencies();
        std::vector<double> overclocked;
        for (const double f : freqs) {
            if (f > freq * 1.01) {
                overclocked.push_back(f);
            }
        }
        if (!overclocked.empty()) {
            freq = overclocked[rng_.NextBelow(overclocked.size())];
            prev_emitted_explored_ = true;
        }
    }
    return core::MakeDefaultPrediction(freq, clock_.Now(),
                                       config_.prediction_ttl);
}

bool
OverclockModel::AssessModel()
{
    if (!delta_r_window_.full()) {
        return assessment_ok_;  // Not enough history to judge yet.
    }
    const double mean = delta_r_window_.Mean();
    const bool any_overclocked = overclocked_window_.Mean() > 0.0;
    if (assessment_ok_) {
        assessment_ok_ = mean >= config_.assess_fail_threshold;
    } else if (any_overclocked) {
        // Hysteresis: recovery requires demonstrated benefit from actual
        // overclocked epochs (exploration feeds delta_r while
        // predictions are intercepted, giving the model a path back).
        // A window with no overclocking carries no evidence either way,
        // so the failing verdict persists.
        assessment_ok_ = mean >= config_.assess_recover_threshold;
    }
    return assessment_ok_;
}

std::size_t
OverclockModel::StateFor(double gips_per_core, double freq_ghz) const
{
    const std::size_t bucket = gips_buckets_.Bucket(gips_per_core);
    return bucket * node_.AllowedFrequencies().size() +
           FreqIndex(freq_ghz);
}

std::size_t
OverclockModel::FreqIndex(double freq_ghz) const
{
    const auto& freqs = node_.AllowedFrequencies();
    std::size_t best = 0;
    double best_err = std::abs(freqs[0] - freq_ghz);
    for (std::size_t i = 1; i < freqs.size(); ++i) {
        const double err = std::abs(freqs[i] - freq_ghz);
        if (err < best_err) {
            best_err = err;
            best = i;
        }
    }
    return best;
}

// ---------------------------------------------------------------------------
// OverclockActuator
// ---------------------------------------------------------------------------

OverclockActuator::OverclockActuator(node::Node& node, node::VmId vm,
                                     const sim::Clock& clock,
                                     const SmartOverclockConfig& config)
    : node_(node),
      vm_(vm),
      clock_(clock),
      config_(config),
      alpha_p90_(config.safeguard_window)
{
}

void
OverclockActuator::TakeAction(std::optional<core::Prediction<double>> pred)
{
    const double nominal = node_.NominalFrequency();
    if (pred.has_value() && pred->value > nominal) {
        // Boosting above nominal spends the node's shared power/QoS
        // headroom and must be admitted on a multi-agent node.
        if (core::AdmitActuation(governor_, kSmartOverclockName,
                                 core::ActuationDomain::kCpuFrequency,
                                 core::ActuationIntent::kExpand,
                                 pred->value)) {
            node_.SetVmFrequency(vm_, pred->value);
            return;
        }
        // Denied: another agent holds a coupled resource. Fall through
        // to the same conservative action a missing prediction takes.
        pred.reset();
    }
    core::AdmitActuation(governor_, kSmartOverclockName,
                         core::ActuationDomain::kCpuFrequency,
                         core::ActuationIntent::kRestore, nominal);
    if (pred.has_value()) {
        node_.SetVmFrequency(vm_, pred->value);
    } else {
        // Conservative action: no fresh prediction, stop overclocking.
        node_.ResetVmFrequency(vm_);
    }
}

bool
OverclockActuator::AssessPerformance()
{
    // Sample alpha over the interval since the last assessment.
    const node::CpuCounterSnapshot snap = node_.ReadCounters(vm_);
    if (have_snapshot_) {
        const node::CpuCounterDelta delta =
            node::Diff(last_snapshot_, snap);
        last_alpha_ = delta.Alpha();
        alpha_p90_.Add(clock_.Now(), last_alpha_);
    }
    last_snapshot_ = snap;
    have_snapshot_ = true;

    if (safeguard_active_) {
        // Exit quickly once activity returns.
        if (last_alpha_ > config_.safeguard_exit_alpha) {
            safeguard_active_ = false;
        }
    } else {
        // Enter only on sustained low activity: P90 over the window.
        const std::size_t min_samples = 10;
        if (alpha_p90_.Count(clock_.Now()) >= min_samples &&
            alpha_p90_.Quantile(clock_.Now(), 0.9) <
                config_.safeguard_p90_threshold) {
            safeguard_active_ = true;
        }
    }
    return !safeguard_active_;
}

void
OverclockActuator::Mitigate()
{
    // Overclocking would waste power in this low-activity phase.
    core::AdmitActuation(governor_, kSmartOverclockName,
                         core::ActuationDomain::kCpuFrequency,
                         core::ActuationIntent::kRestore,
                         node_.NominalFrequency());
    node_.ResetVmFrequency(vm_);
}

void
OverclockActuator::CleanUp()
{
    // Idempotent: restore the node to its clean state.
    core::AdmitActuation(governor_, kSmartOverclockName,
                         core::ActuationDomain::kCpuFrequency,
                         core::ActuationIntent::kRestore,
                         node_.NominalFrequency());
    node_.ResetVmFrequency(vm_);
}

}  // namespace sol::agents
