/**
 * @file
 * SmartOverclock: the paper's CPU overclocking agent (section 5.1).
 *
 * Uses tabular Q-learning over (IPS bucket, current frequency) states to
 * decide, once per 1-second learning epoch, which of the allowed CPU
 * frequencies to run a VM at. The reward trades the observed instruction
 * throughput against the cubic power cost of frequency, so the policy
 * learns to overclock only workloads (and phases) that actually speed up.
 *
 * Safeguards, as specified in the paper:
 *  - ValidateData range-checks every counter sample (IPS within
 *    0..max_freq*max_IPC, alpha within 0..1) and discards violations.
 *  - AssessModel tracks delta_r — observed reward when overclocked minus
 *    the estimated reward at nominal frequency — over the last 10 epochs;
 *    if the average falls below a threshold the model is considered bad.
 *    While failing, the agent keeps exploring randomly but its default
 *    prediction pins the RL-selected action to the nominal frequency.
 *  - The Actuator takes the safe default action (nominal frequency) when
 *    no fresh prediction arrives within max_actuation_delay (5 s).
 *  - The Actuator safeguard monitors the P90 of the activity factor
 *    alpha = (unhalted - stalled) / total cycles over the past 100 s and
 *    disables overclocking during sustained low-activity phases,
 *    re-enabling quickly when activity returns.
 */
#pragma once

#include <cstdint>
#include <optional>

#include "core/actuation.h"
#include "core/actuator.h"
#include "core/model.h"
#include "core/schedule.h"
#include "ml/qlearning.h"
#include "node/node.h"
#include "sim/rng.h"
#include "telemetry/online_stats.h"
#include "telemetry/window_percentile.h"

namespace sol::agents {

/** Canonical registry name of the SmartOverclock agent. */
inline constexpr const char* kSmartOverclockName = "smart-overclock";

/** One telemetry sample: counter deltas over a 100 ms window. */
struct OverclockSample {
    double ips = 0.0;       ///< Instructions per second over the window.
    double alpha = 0.0;     ///< Activity factor over the window.
    double freq_ghz = 0.0;  ///< Frequency the VM ran at.
};

/** Tunables for SmartOverclock (paper defaults). */
struct SmartOverclockConfig {
    /** Trade-off weight of the cubic power penalty in the RL reward. */
    double power_coeff = 0.08;
    /** Epsilon for epsilon-greedy exploration. */
    double exploration = 0.1;
    /** Buckets used to discretize per-core GIPS into RL states. */
    int ips_buckets = 8;
    /** Upper bound of the per-core GIPS bucketizer range. */
    double max_gips_per_core = 10.0;
    /** Max plausible IPC, used by the data validation range check. */
    double max_ipc = 4.0;
    /** Predictions expire this long after they are made. */
    sim::Duration prediction_ttl = sim::Millis(1500);
    /** delta_r window length (epochs) for AssessModel. Epochs that ran
     *  at nominal frequency contribute 0 (no overclocking, no regret). */
    std::size_t assess_window = 10;
    /** AssessModel fails when mean delta_r drops below this. */
    double assess_fail_threshold = -0.05;
    /** A failing assessment recovers only at or above this, and only
     *  when the window actually contains overclocked epochs (hysteresis:
     *  the model must demonstrate — via exploration — that overclocking
     *  is genuinely paying off again). */
    double assess_recover_threshold = 0.0;
    /** Actuator safeguard: trailing window for the alpha percentile. */
    sim::Duration safeguard_window = sim::Seconds(100);
    /** Trigger when P90(alpha) over the window is below this. */
    double safeguard_p90_threshold = 0.05;
    /** Exit the safeguard when instantaneous alpha rises above this. */
    double safeguard_exit_alpha = 0.3;
    double learning_rate = 0.3;
    double discount = 0.3;
    /** Optimistic initialization drives systematic early exploration. */
    double initial_q = 3.0;
    std::uint64_t seed = 1;
};

/** Q-learning model choosing the next epoch's frequency. */
class OverclockModel : public core::Model<OverclockSample, double>
{
  public:
    /**
     * @param node Simulated node (provides counters and the clock source).
     * @param vm VM whose cores the agent manages.
     * @param clock Time source for prediction expiry stamps.
     */
    OverclockModel(node::Node& node, node::VmId vm, const sim::Clock& clock,
                   const SmartOverclockConfig& config = {});

    OverclockSample CollectData() override;
    bool ValidateData(const OverclockSample& data) override;
    void CommitData(sim::TimePoint time,
                    const OverclockSample& data) override;
    void UpdateModel() override;
    core::Prediction<double> ModelPredict() override;
    core::Prediction<double> DefaultPredict() override;
    bool AssessModel() override;

    const ml::QLearner& learner() const { return learner_; }

    /**
     * Fault injection (Fig 3): forces ModelPredict to always choose the
     * highest frequency, modeling a policy corrupted by a software bug.
     */
    void BreakModel(bool broken) { broken_ = broken; }

  private:
    std::size_t StateFor(double gips_per_core, double freq_ghz) const;
    std::size_t FreqIndex(double freq_ghz) const;

    node::Node& node_;
    node::VmId vm_;
    const sim::Clock& clock_;
    SmartOverclockConfig config_;
    ml::QLearner learner_;
    ml::UniformBucketizer gips_buckets_;
    sim::Rng rng_;

    node::CpuCounterSnapshot last_snapshot_;
    bool have_snapshot_ = false;

    // Epoch accumulation.
    telemetry::OnlineStats epoch_ips_;
    telemetry::OnlineStats epoch_alpha_;
    telemetry::OnlineStats epoch_freq_;

    // RL bookkeeping.
    std::optional<std::size_t> prev_state_;
    bool prev_emitted_explored_ = false;
    double last_gips_ = 0.0;  ///< Per-core GIPS of the last full epoch.
    bool last_gips_valid_ = false;

    // Model assessment (delta_r over overclocked epochs).
    telemetry::SlidingWindow delta_r_window_;
    telemetry::SlidingWindow overclocked_window_;  ///< 1 if epoch OC'd.
    bool assessment_ok_ = true;
    bool broken_ = false;
};

/** Actuator applying frequency decisions with the alpha safeguard. */
class OverclockActuator : public core::Actuator<double>
{
  public:
    OverclockActuator(node::Node& node, node::VmId vm,
                      const sim::Clock& clock,
                      const SmartOverclockConfig& config = {});

    void TakeAction(std::optional<core::Prediction<double>> pred) override;
    bool AssessPerformance() override;
    void Mitigate() override;
    void CleanUp() override;

    /** True while the alpha safeguard has overclocking disabled. */
    bool safeguard_active() const { return safeguard_active_; }

    /** Last alpha sample observed by the safeguard. */
    double last_alpha() const { return last_alpha_; }

    /** Installs the shared-node governor; nullptr acts ungoverned. */
    void SetGovernor(core::ActuationGovernor* governor)
    {
        governor_ = governor;
    }

  private:
    node::Node& node_;
    node::VmId vm_;
    const sim::Clock& clock_;
    SmartOverclockConfig config_;
    core::ActuationGovernor* governor_ = nullptr;
    telemetry::WindowPercentile alpha_p90_;
    node::CpuCounterSnapshot last_snapshot_;
    bool have_snapshot_ = false;
    bool safeguard_active_ = false;
    double last_alpha_ = 0.0;
};

/** Paper schedule for SmartOverclock: 1 s epochs of 10 x 100 ms samples,
 *  5 s actuation timeout, 1 s safeguard checks. */
core::Schedule SmartOverclockSchedule();

}  // namespace sol::agents
