#include "characterization/taxonomy.h"

namespace sol::characterization {

std::string
ToString(AgentClass cls)
{
    switch (cls) {
      case AgentClass::kConfiguration:
        return "Configuration";
      case AgentClass::kServices:
        return "Services";
      case AgentClass::kMonitoring:
        return "Monitoring/logging";
      case AgentClass::kWatchdogs:
        return "Watchdogs";
      case AgentClass::kResourceControl:
        return "Resource control";
      case AgentClass::kAccess:
        return "Access";
    }
    return "Unknown";
}

const std::vector<AgentClassInfo>&
Taxonomy()
{
    static const std::vector<AgentClassInfo> kTable1 = {
        {AgentClass::kConfiguration, 25,
         "Configure node HW, SW, or data",
         "Credentials, firewalls, OS updates", false},
        {AgentClass::kServices, 23, "Long-running node services",
         "VM creation, live migration", false},
        {AgentClass::kMonitoring, 18, "Monitoring and logging node's state",
         "CPU and OS counters, network telemetry", true},
        {AgentClass::kWatchdogs, 7,
         "Watch for problems to alert/automitigate",
         "Disk space, intrusions, HW errors", true},
        {AgentClass::kResourceControl, 2, "Manage resource assignments",
         "Power capping, memory management", true},
        {AgentClass::kAccess, 2, "Allow operators access to nodes",
         "Filesystem access", false},
    };
    return kTable1;
}

std::size_t
TotalAgents()
{
    std::size_t total = 0;
    for (const auto& row : Taxonomy()) {
        total += row.count;
    }
    return total;
}

std::size_t
AgentsBenefiting()
{
    std::size_t total = 0;
    for (const auto& row : Taxonomy()) {
        if (row.benefits_from_ml) {
            total += row.count;
        }
    }
    return total;
}

double
BenefitFraction()
{
    return static_cast<double>(AgentsBenefiting()) /
           static_cast<double>(TotalAgents());
}

const std::vector<LearningAgentInfo>&
LearningAgents()
{
    static const std::vector<LearningAgentInfo> kTable2 = {
        {"SmartHarvest", "Harvest idle cores", "Core assignment",
         sim::Millis(25), "CPU usage", "Cost-sensitive classification"},
        {"Hipster", "Reduce power draw", "Core assignment & frequency",
         sim::Seconds(1), "App QoS and load", "Reinforcement learning"},
        {"LinnOS", "Improve IO perf", "IO request routing/rejection",
         sim::Duration(0), "Latencies, queue sizes",
         "Binary classification"},
        {"ESP", "Reduce interference", "App scheduling", sim::Duration(0),
         "App run time, perf counters", "Regularized regression"},
        {"Overclocking", "Improve VM perf", "CPU overclocking",
         sim::Seconds(1), "Instructions per second",
         "Reinforcement learning"},
        {"Disaggregation", "Migrate pages", "Warm/cold page ID",
         sim::Millis(100), "Page table scans", "Multi-armed bandits"},
    };
    return kTable2;
}

}  // namespace sol::characterization
