/**
 * @file
 * Characterization of production on-node agents (paper section 2).
 *
 * Encodes Table 1 — the taxonomy of the 77 node agents running in Azure
 * across 6 classes — and Table 2 — published examples of on-node
 * learning resource-control agents — as queryable registries. The
 * corresponding bench binaries regenerate the tables and the headline
 * "35% of agents can benefit from on-node learning" statistic.
 */
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sim/time.h"

namespace sol::characterization {

/** The six agent classes of Table 1. */
enum class AgentClass {
    kConfiguration,
    kServices,
    kMonitoring,
    kWatchdogs,
    kResourceControl,
    kAccess,
};

/** Human-readable class name. */
std::string ToString(AgentClass cls);

/** One row of Table 1. */
struct AgentClassInfo {
    AgentClass cls;
    std::size_t count;          ///< Agents of this class on each node.
    std::string description;
    std::string examples;
    bool benefits_from_ml;      ///< The paper's rightmost column.
};

/** The full Table 1 taxonomy. */
const std::vector<AgentClassInfo>& Taxonomy();

/** Total number of node agents (77 in the paper). */
std::size_t TotalAgents();

/** Number of agents in classes that can benefit from on-node ML. */
std::size_t AgentsBenefiting();

/** Fraction of agents that can benefit (0.35 in the paper). */
double BenefitFraction();

/** One row of Table 2. */
struct LearningAgentInfo {
    std::string name;
    std::string goal;
    std::string action;
    sim::Duration frequency;   ///< Decision cadence.
    std::string inputs;
    std::string model;
};

/** The Table 2 registry of on-node learning agents. */
const std::vector<LearningAgentInfo>& LearningAgents();

}  // namespace sol::characterization
