#include "cluster/cluster_driver.h"

#include <string>

#include "sim/rng.h"

namespace sol::cluster {

std::uint64_t
ClusterDriver::DeriveNodeSeed(std::uint64_t base_seed,
                              std::size_t node_index)
{
    return sim::DeriveStreamSeed(base_seed, node_index);
}

ClusterDriver::ClusterDriver(const ClusterConfig& config)
    : config_(config)
{
    queue_.SetPendingLimit(config_.queue_pending_limit);
    nodes_.reserve(config_.num_nodes);
    for (std::size_t i = 0; i < config_.num_nodes; ++i) {
        MultiAgentNodeConfig node_config = config_.node;
        node_config.name = "node" + std::to_string(i);
        node_config.seed = DeriveNodeSeed(config_.base_seed, i);
        nodes_.push_back(
            std::make_unique<MultiAgentNode>(queue_, node_config));
    }
}

void
ClusterDriver::Run(sim::Duration span)
{
    if (!started_) {
        started_ = true;
        for (std::size_t i = 0; i < nodes_.size(); ++i) {
            MultiAgentNode* node = nodes_[i].get();
            const sim::Duration offset = config_.start_stagger * i;
            if (offset <= sim::Duration::zero()) {
                node->Start();
            } else {
                queue_.ScheduleAfter(offset, [node] { node->Start(); });
            }
        }
    }
    queue_.RunFor(span);
}

void
ClusterDriver::Stop()
{
    for (auto& node : nodes_) {
        node->Stop();
    }
}

void
ClusterDriver::CleanUpAll()
{
    for (auto& node : nodes_) {
        node->CleanUpAll();
    }
}

FleetStats
ClusterDriver::Stats() const
{
    FleetStats fleet;
    for (const auto& node : nodes_) {
        const core::RuntimeStats stats = node->AggregateStats();
        fleet.total_agents += node->num_agents();
        fleet.total_epochs += stats.epochs;
        fleet.total_actions += stats.actions_taken;
        fleet.safeguard_triggers += stats.safeguard_triggers;
        fleet.arbiter_requests += node->arbiter().requests();
        fleet.conflicts_observed += node->arbiter().conflicts_observed();
        fleet.conflicts_resolved += node->arbiter().conflicts_resolved();
    }
    return fleet;
}

void
ClusterDriver::CollectFleetMetrics(telemetry::MetricRegistry& out)
{
    for (auto& node : nodes_) {
        node->CollectMetrics();
        out.MergeFrom(node->metrics(), node->name());
    }
    const FleetStats fleet = Stats();
    telemetry::MetricScope scope(out, "fleet");
    scope.SetGauge("num_nodes", static_cast<double>(nodes_.size()));
    scope.SetGauge("total_agents",
                   static_cast<double>(fleet.total_agents));
    scope.SetGauge("total_epochs",
                   static_cast<double>(fleet.total_epochs));
    scope.SetGauge("total_actions",
                   static_cast<double>(fleet.total_actions));
    scope.SetGauge("safeguard_triggers",
                   static_cast<double>(fleet.safeguard_triggers));
    scope.SetGauge("arbiter_requests",
                   static_cast<double>(fleet.arbiter_requests));
    scope.SetGauge("conflicts_observed",
                   static_cast<double>(fleet.conflicts_observed));
    scope.SetGauge("conflicts_resolved",
                   static_cast<double>(fleet.conflicts_resolved));

    // Shared-queue health: the whole fleet multiplexes one EventQueue,
    // so its arena footprint and drop counters are fleet-level signals.
    const sim::EventQueueStats queue = queue_.stats();
    telemetry::MetricScope queue_scope = scope.Sub("queue");
    queue_scope.SetGauge("executed",
                         static_cast<double>(queue.executed));
    queue_scope.SetGauge("scheduled",
                         static_cast<double>(queue.scheduled));
    queue_scope.SetGauge("cancelled",
                         static_cast<double>(queue.cancelled));
    queue_scope.SetGauge("dropped", static_cast<double>(queue.dropped));
    queue_scope.SetGauge("pending", static_cast<double>(queue.pending));
    queue_scope.SetGauge("peak_pending",
                         static_cast<double>(queue.peak_pending));
    queue_scope.SetGauge("arena_capacity",
                         static_cast<double>(queue.arena_capacity));
}

}  // namespace sol::cluster
