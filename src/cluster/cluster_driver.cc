#include "cluster/cluster_driver.h"

#include "sim/rng.h"

namespace sol::cluster {

std::uint64_t
ClusterDriver::DeriveNodeSeed(std::uint64_t base_seed,
                              std::size_t node_index)
{
    return sim::DeriveStreamSeed(base_seed, node_index);
}

NodeShardConfig
ClusterDriver::MakeShardConfig(const ClusterConfig& config)
{
    NodeShardConfig shard;
    shard.first_node_index = 0;
    shard.num_nodes = config.num_nodes;
    shard.base_seed = config.base_seed;
    shard.start_stagger = config.start_stagger;
    shard.queue_pending_limit = config.queue_pending_limit;
    shard.node = config.node;
    return shard;
}

ClusterDriver::ClusterDriver(const ClusterConfig& config)
    : shard_(MakeShardConfig(config))
{
}

void
ClusterDriver::CollectFleetMetrics(telemetry::MetricRegistry& out)
{
    shard_.CollectNodeMetrics(out);
    WriteFleetScope(out, shard_.Stats(), shard_.num_nodes(),
                    shard_.queue().stats());
}

void
WriteFleetScope(telemetry::MetricRegistry& out, const FleetStats& fleet,
                std::size_t num_nodes,
                const sim::EventQueueStats& queue)
{
    telemetry::MetricScope scope(out, "fleet");
    scope.SetGauge("num_nodes", static_cast<double>(num_nodes));
    scope.SetGauge("total_agents",
                   static_cast<double>(fleet.total_agents));
    scope.SetGauge("total_epochs",
                   static_cast<double>(fleet.total_epochs));
    scope.SetGauge("total_actions",
                   static_cast<double>(fleet.total_actions));
    scope.SetGauge("safeguard_triggers",
                   static_cast<double>(fleet.safeguard_triggers));
    scope.SetGauge("arbiter_requests",
                   static_cast<double>(fleet.arbiter_requests));
    scope.SetGauge("conflicts_observed",
                   static_cast<double>(fleet.conflicts_observed));
    scope.SetGauge("conflicts_resolved",
                   static_cast<double>(fleet.conflicts_resolved));

    // Queue health: arena footprint and drop counters are fleet-level
    // signals whether the fleet runs on one queue or one per shard.
    WriteQueueGauges(scope.Sub("queue"), queue);
}

void
WriteQueueGauges(telemetry::MetricScope scope,
                 const sim::EventQueueStats& queue)
{
    scope.SetGauge("executed", static_cast<double>(queue.executed));
    scope.SetGauge("scheduled", static_cast<double>(queue.scheduled));
    scope.SetGauge("cancelled", static_cast<double>(queue.cancelled));
    scope.SetGauge("dropped", static_cast<double>(queue.dropped));
    scope.SetGauge("pending", static_cast<double>(queue.pending));
    scope.SetGauge("peak_pending",
                   static_cast<double>(queue.peak_pending));
    scope.SetGauge("arena_capacity",
                   static_cast<double>(queue.arena_capacity));
}

}  // namespace sol::cluster
