/**
 * @file
 * Fleet driver: N multi-agent nodes on one shared event queue.
 *
 * The paper's results come from a production fleet; this driver is the
 * repo's scaled-down analogue. Every node gets its own RNG stream
 * (derived from the base seed and the node index) so nodes are
 * statistically independent but the whole fleet is reproducible from
 * one seed. Node agent runtimes are started with a small per-node
 * stagger so the fleet's learning epochs do not beat in lockstep — the
 * same desynchronization real deployments get for free.
 *
 * Since the sharded-fleet work, the per-node stepping lives in
 * cluster::NodeShard; ClusterDriver is the serial, single-shard fleet —
 * one virtual clock, every node interleaved on it, exactly the PR 2
 * semantics. For fleets too large to step on one thread, see
 * fleet::ShardedFleetRunner, which holds many shards and steps them on
 * worker threads between virtual-time barriers.
 *
 * Aggregated fleet statistics land in one MetricRegistry: per-node
 * metrics namespaced by node name ("node3.smart-harvest.epochs") plus
 * fleet totals ("fleet.total_epochs", "fleet.conflicts_resolved").
 */
#pragma once

#include <cstdint>

#include "cluster/multi_agent_node.h"
#include "cluster/node_shard.h"
#include "sim/event_queue.h"
#include "telemetry/metric_registry.h"

namespace sol::cluster {

/** Configuration of a simulated fleet. */
struct ClusterConfig {
    std::size_t num_nodes = 4;

    /** Fleet seed; node i runs stream DeriveNodeSeed(base_seed, i). */
    std::uint64_t base_seed = 1;

    /** Offset between consecutive nodes' agent start times. */
    sim::Duration start_stagger = sim::Millis(1);

    /**
     * Backpressure bound on the shared event queue (0 = unlimited).
     * Million-event fleet runs set this as a guard rail: an event storm
     * shows up as `fleet.queue.dropped` instead of a silent OOM. Drops
     * are lossy (an agent whose control event is shed may stall for the
     * rest of the run — see sim::EventQueue::SetPendingLimit), so set
     * it far above the expected peak and treat any non-zero
     * `fleet.queue.dropped` as an invalid run.
     */
    std::size_t queue_pending_limit = 0;

    /** Template applied to every node (name/seed overridden per node). */
    MultiAgentNodeConfig node;
};

/** Steps N MultiAgentNodes over one shared virtual clock. */
class ClusterDriver
{
  public:
    explicit ClusterDriver(const ClusterConfig& config);

    /**
     * Advances the fleet by `span` of virtual time. The first call
     * schedules every node's staggered start.
     */
    void Run(sim::Duration span) { shard_.Run(span); }

    /** Stops every node's agent runtimes. */
    void Stop() { shard_.Stop(); }

    /** SRE fleet-wide incident response: cleans up every agent. */
    void CleanUpAll() { shard_.CleanUpAll(); }

    /** Roll-up counters across all nodes. */
    FleetStats Stats() const { return shard_.Stats(); }

    /**
     * Aggregates per-node metrics (namespaced by node name) and fleet
     * totals into `out`.
     */
    void CollectFleetMetrics(telemetry::MetricRegistry& out);

    std::size_t num_nodes() const { return shard_.num_nodes(); }
    MultiAgentNode& node(std::size_t i) { return shard_.node(i); }
    sim::EventQueue& queue() { return shard_.queue(); }

    /** The per-node seed derivation (exposed for tests). */
    static std::uint64_t DeriveNodeSeed(std::uint64_t base_seed,
                                        std::size_t node_index);

  private:
    static NodeShardConfig MakeShardConfig(const ClusterConfig& config);

    NodeShard shard_;
};

/**
 * Writes fleet roll-up counters plus one queue's health gauges into a
 * "fleet"-scoped section of `out`. Shared by ClusterDriver (its single
 * queue) and fleet::ShardedFleetRunner (per-shard queue stats summed
 * before the call).
 */
void WriteFleetScope(telemetry::MetricRegistry& out,
                     const FleetStats& fleet, std::size_t num_nodes,
                     const sim::EventQueueStats& queue);

/**
 * Writes one queue's health gauges (executed/scheduled/cancelled/
 * dropped/pending/peak_pending/arena_capacity) under `scope`. The one
 * place these gauge names are spelled — the fleet scope and the
 * per-shard window metrics both go through it.
 */
void WriteQueueGauges(telemetry::MetricScope scope,
                      const sim::EventQueueStats& queue);

}  // namespace sol::cluster
