/**
 * @file
 * Fleet driver: N multi-agent nodes on one shared event queue.
 *
 * The paper's results come from a production fleet; this driver is the
 * repo's scaled-down analogue. Every node gets its own RNG stream
 * (derived from the base seed and the node index) so nodes are
 * statistically independent but the whole fleet is reproducible from
 * one seed. Node agent runtimes are started with a small per-node
 * stagger so the fleet's learning epochs do not beat in lockstep — the
 * same desynchronization real deployments get for free.
 *
 * Aggregated fleet statistics land in one MetricRegistry: per-node
 * metrics namespaced by node name ("node3.smart-harvest.epochs") plus
 * fleet totals ("fleet.total_epochs", "fleet.conflicts_resolved").
 */
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cluster/multi_agent_node.h"
#include "sim/event_queue.h"
#include "telemetry/metric_registry.h"

namespace sol::cluster {

/** Configuration of a simulated fleet. */
struct ClusterConfig {
    std::size_t num_nodes = 4;

    /** Fleet seed; node i runs stream DeriveNodeSeed(base_seed, i). */
    std::uint64_t base_seed = 1;

    /** Offset between consecutive nodes' agent start times. */
    sim::Duration start_stagger = sim::Millis(1);

    /**
     * Backpressure bound on the shared event queue (0 = unlimited).
     * Million-event fleet runs set this as a guard rail: an event storm
     * shows up as `fleet.queue.dropped` instead of a silent OOM. Drops
     * are lossy (an agent whose control event is shed may stall for the
     * rest of the run — see sim::EventQueue::SetPendingLimit), so set
     * it far above the expected peak and treat any non-zero
     * `fleet.queue.dropped` as an invalid run.
     */
    std::size_t queue_pending_limit = 0;

    /** Template applied to every node (name/seed overridden per node). */
    MultiAgentNodeConfig node;
};

/** Roll-up counters across every node in the fleet. */
struct FleetStats {
    std::uint64_t total_agents = 0;  ///< Real + synthetic, all nodes.
    std::uint64_t total_epochs = 0;
    std::uint64_t total_actions = 0;
    std::uint64_t safeguard_triggers = 0;
    std::uint64_t arbiter_requests = 0;
    std::uint64_t conflicts_observed = 0;
    std::uint64_t conflicts_resolved = 0;
};

/** Steps N MultiAgentNodes over one shared virtual clock. */
class ClusterDriver
{
  public:
    explicit ClusterDriver(const ClusterConfig& config);

    /**
     * Advances the fleet by `span` of virtual time. The first call
     * schedules every node's staggered start.
     */
    void Run(sim::Duration span);

    /** Stops every node's agent runtimes. */
    void Stop();

    /** SRE fleet-wide incident response: cleans up every agent. */
    void CleanUpAll();

    /** Roll-up counters across all nodes. */
    FleetStats Stats() const;

    /**
     * Aggregates per-node metrics (namespaced by node name) and fleet
     * totals into `out`.
     */
    void CollectFleetMetrics(telemetry::MetricRegistry& out);

    std::size_t num_nodes() const { return nodes_.size(); }
    MultiAgentNode& node(std::size_t i) { return *nodes_[i]; }
    sim::EventQueue& queue() { return queue_; }

    /** The per-node seed derivation (exposed for tests). */
    static std::uint64_t DeriveNodeSeed(std::uint64_t base_seed,
                                        std::size_t node_index);

  private:
    ClusterConfig config_;
    sim::EventQueue queue_;
    std::vector<std::unique_ptr<MultiAgentNode>> nodes_;
    bool started_ = false;
};

}  // namespace sol::cluster
