// determinism-lint: allow-file(wall-clock) -- contention timing is
// observe-only and gated behind config.track_contention (off in every
// deterministic run); it feeds the lock_wait/admit histograms, never an
// admission decision.
#include "cluster/interference_arbiter.h"

#include <algorithm>
#include <chrono>

#include "telemetry/trace.h"

namespace sol::cluster {

namespace {

std::size_t
DomainIndex(core::ActuationDomain domain)
{
    return static_cast<std::size_t>(domain);
}

std::uint64_t
ElapsedNs(std::chrono::steady_clock::time_point start)
{
    const auto elapsed = std::chrono::steady_clock::now() - start;
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count());
}

}  // namespace

InterferenceArbiter::InterferenceArbiter(InterferenceArbiterConfig config,
                                         telemetry::MetricScope scope)
    : config_(std::move(config)), scope_(std::move(scope))
{
    // Precompute each domain's lock closure: itself plus every domain
    // reachable through the coupling relation. Couplings are pairs, not
    // chains — {A,B} and {B,C} makes B's closure {A,B,C} but leaves A
    // and C uncoupled, matching the original pairwise Coupled() check.
    for (std::size_t d = 0; d < core::kNumActuationDomains; ++d) {
        closure_[d].push_back(d);
        for (const auto& [x, y] : config_.couplings) {
            if (DomainIndex(x) == d) {
                closure_[d].push_back(DomainIndex(y));
            } else if (DomainIndex(y) == d) {
                closure_[d].push_back(DomainIndex(x));
            }
        }
        std::sort(closure_[d].begin(), closure_[d].end());
        closure_[d].erase(
            std::unique(closure_[d].begin(), closure_[d].end()),
            closure_[d].end());
    }
}

std::size_t
InterferenceArbiter::PriorityRank(const std::string& agent) const
{
    for (std::size_t i = 0; i < config_.priority.size(); ++i) {
        if (config_.priority[i] == agent) {
            return i;
        }
    }
    return config_.priority.size();  // Unlisted ranks last.
}

const InterferenceArbiter::Hold*
InterferenceArbiter::BlockingHoldLocked(
    const core::ActuationRequest& request) const
{
    for (const std::size_t d : closure_[DomainIndex(request.domain)]) {
        const auto& hold = domains_[d].hold;
        if (!hold.has_value() || hold->agent == request.agent) {
            continue;
        }
        if (config_.policy == ArbitrationPolicy::kStaticPriority &&
            PriorityRank(request.agent) < PriorityRank(hold->agent)) {
            // The requester outranks this holder; the holder's own next
            // expand will be the one denied.
            continue;
        }
        return &*hold;
    }
    return nullptr;
}

InterferenceArbiter::AgentAccount&
InterferenceArbiter::AccountFor(const std::string& agent)
{
    {
        core::ReaderLock read(accounts_mutex_);
        const auto it = accounts_.find(agent);
        if (it != accounts_.end()) {
            return *it->second;
        }
    }
    core::WriterLock write(accounts_mutex_);
    auto& slot = accounts_[agent];
    if (!slot) {
        slot = std::make_unique<AgentAccount>();
    }
    return *slot;
}

core::ActuationDecision
InterferenceArbiter::Admit(const core::ActuationRequest& request)
{
    // Spans land on the calling thread's bound track (null = untraced),
    // so 77 concurrent callers never share a ring.
    telemetry::trace::TraceRecorder* recorder =
        telemetry::trace::CurrentThreadRecorder();
    const bool is_restore =
        request.intent == core::ActuationIntent::kRestore;
    telemetry::trace::TraceSpan span(
        recorder, is_restore ? "restore" : "expand", "arbiter");
    span.AddArg("domain", static_cast<std::int64_t>(
                              DomainIndex(request.domain)));
    span.SetString("agent", request.agent);

    std::chrono::steady_clock::time_point admit_start;
    if (config_.track_contention) {
        admit_start = std::chrono::steady_clock::now();
    }

    requests_.fetch_add(1, std::memory_order_relaxed);
    AgentAccount& account = AccountFor(request.agent);
    account.requests.fetch_add(1, std::memory_order_relaxed);

    if (is_restore) {
        {
            DomainSlot& slot = domains_[DomainIndex(request.domain)];
            core::MutexLock lock(slot.mutex);
            if (slot.hold.has_value() &&
                slot.hold->agent == request.agent) {
                slot.hold.reset();
            }
        }
        account.restores.fetch_add(1, std::memory_order_relaxed);
        account.admitted.fetch_add(1, std::memory_order_relaxed);
        span.AddArg("admitted", 1);
        if (config_.track_contention) {
            admit_hist_.Record(ElapsedNs(admit_start));
        }
        return {true, ""};
    }

    const core::ActuationDecision decision =
        ExpandUnderClosure(request, account);

    span.AddArg("admitted", decision.admitted ? 1 : 0);
    if (!decision.admitted && recorder != nullptr) {
        recorder->Instant("deny", "arbiter",
                          {{"domain", static_cast<std::int64_t>(
                                          DomainIndex(request.domain))}},
                          "holder", decision.conflicting_agent);
    }
    if (config_.track_contention) {
        admit_hist_.Record(ElapsedNs(admit_start));
    }
    return decision;
}

core::ActuationDecision
InterferenceArbiter::ExpandUnderClosure(const core::ActuationRequest& request,
                                        AgentAccount& account)
{
    // Lock the whole coupling closure in ascending index order, so
    // overlapping closures serialize instead of deadlocking. Holding
    // every coupled slot makes "scan for a blocking hold, then grant"
    // one atomic step: no racing expand can slip a hold into a coupled
    // domain between the check and the grant.
    const auto& closure = closure_[DomainIndex(request.domain)];
    std::chrono::steady_clock::time_point wait_start;
    if (config_.track_contention) {
        wait_start = std::chrono::steady_clock::now();
    }
    for (const std::size_t d : closure) {
        domains_[d].mutex.lock();
    }
    if (config_.track_contention) {
        const std::uint64_t waited_ns = ElapsedNs(wait_start);
        lock_wait_ns_.fetch_add(waited_ns, std::memory_order_relaxed);
        lock_wait_hist_.Record(waited_ns);
    }

    core::ActuationDecision decision{true, ""};
    const Hold* blocking = BlockingHoldLocked(request);
    if (blocking != nullptr) {
        conflicts_observed_.fetch_add(1, std::memory_order_relaxed);
        {
            core::MutexLock lock(account.denial_mutex);
            ++account.denied_by[blocking->agent];
        }
        if (config_.enabled) {
            conflicts_resolved_.fetch_add(1, std::memory_order_relaxed);
            account.denied.fetch_add(1, std::memory_order_relaxed);
            decision = {false, blocking->agent};
        }
        // Disabled (ungoverned baseline): observe but admit.
    }

    if (decision.admitted) {
        auto& hold = domains_[DomainIndex(request.domain)].hold;
        if (!hold.has_value() || hold->agent != request.agent) {
            hold = Hold{request.agent, request.magnitude, 0};
        }
        hold->magnitude = request.magnitude;
        ++hold->admissions;
        account.admitted.fetch_add(1, std::memory_order_relaxed);
    }

    for (auto it = closure.rbegin(); it != closure.rend(); ++it) {
        domains_[*it].mutex.unlock();
    }
    return decision;
}

std::optional<std::string>
InterferenceArbiter::HolderOf(core::ActuationDomain domain) const
{
    const DomainSlot& slot = domains_[DomainIndex(domain)];
    core::MutexLock lock(slot.mutex);
    if (!slot.hold.has_value()) {
        return std::nullopt;
    }
    return slot.hold->agent;
}

void
InterferenceArbiter::WriteMetrics()
{
    core::ReaderLock read(accounts_mutex_);
    std::uint64_t conflicts = 0;
    for (auto& [agent, account] : accounts_) {
        scope_.SetCounter(
            agent + ".requests",
            account->requests.load(std::memory_order_relaxed));
        scope_.SetCounter(
            agent + ".admitted",
            account->admitted.load(std::memory_order_relaxed));
        scope_.SetCounter(
            agent + ".denied",
            account->denied.load(std::memory_order_relaxed));
        scope_.SetCounter(
            agent + ".restores",
            account->restores.load(std::memory_order_relaxed));
        core::MutexLock lock(account->denial_mutex);
        for (const auto& [holder, count] : account->denied_by) {
            scope_.SetCounter("denial." + agent + ".by." + holder,
                              count);
            conflicts += count;
        }
    }
    scope_.SetCounter("conflicts", conflicts);

    if (config_.track_contention) {
        // SetHistogram snapshots are idempotent like the counter
        // flushes above.
        const telemetry::LatencyHistogram lock_wait =
            lock_wait_hist_.Histogram();
        if (!lock_wait.empty()) {
            scope_.SetHistogram("lock_wait_ns", lock_wait);
        }
        const telemetry::LatencyHistogram admit = admit_hist_.Histogram();
        if (!admit.empty()) {
            scope_.SetHistogram("admit_ns", admit);
        }
    }
}

}  // namespace sol::cluster
