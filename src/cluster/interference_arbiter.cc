#include "cluster/interference_arbiter.h"

namespace sol::cluster {

namespace {

std::size_t
DomainIndex(core::ActuationDomain domain)
{
    return static_cast<std::size_t>(domain);
}

}  // namespace

InterferenceArbiter::InterferenceArbiter(InterferenceArbiterConfig config,
                                         telemetry::MetricScope scope)
    : config_(std::move(config)), scope_(std::move(scope))
{
}

bool
InterferenceArbiter::Coupled(core::ActuationDomain a,
                             core::ActuationDomain b) const
{
    if (a == b) {
        return true;
    }
    for (const auto& [x, y] : config_.couplings) {
        if ((x == a && y == b) || (x == b && y == a)) {
            return true;
        }
    }
    return false;
}

std::size_t
InterferenceArbiter::PriorityRank(const std::string& agent) const
{
    for (std::size_t i = 0; i < config_.priority.size(); ++i) {
        if (config_.priority[i] == agent) {
            return i;
        }
    }
    return config_.priority.size();  // Unlisted ranks last.
}

const InterferenceArbiter::Hold*
InterferenceArbiter::BlockingHold(
    const core::ActuationRequest& request) const
{
    for (std::size_t d = 0; d < holds_.size(); ++d) {
        const auto& hold = holds_[d];
        if (!hold.has_value() || hold->agent == request.agent) {
            continue;
        }
        if (!Coupled(static_cast<core::ActuationDomain>(d),
                     request.domain)) {
            continue;
        }
        if (config_.policy == ArbitrationPolicy::kStaticPriority &&
            PriorityRank(request.agent) < PriorityRank(hold->agent)) {
            // The requester outranks this holder; the holder's own next
            // expand will be the one denied.
            continue;
        }
        return &*hold;
    }
    return nullptr;
}

core::ActuationDecision
InterferenceArbiter::Admit(const core::ActuationRequest& request)
{
    ++requests_;
    scope_.Increment(request.agent + ".requests");

    if (request.intent == core::ActuationIntent::kRestore) {
        auto& hold = holds_[DomainIndex(request.domain)];
        if (hold.has_value() && hold->agent == request.agent) {
            hold.reset();
        }
        scope_.Increment(request.agent + ".restores");
        scope_.Increment(request.agent + ".admitted");
        return {true, ""};
    }

    const Hold* blocking = BlockingHold(request);
    if (blocking != nullptr) {
        ++conflicts_observed_;
        scope_.Increment("conflicts");
        scope_.Increment("denial." + request.agent + ".by." +
                         blocking->agent);
        if (config_.enabled) {
            ++conflicts_resolved_;
            scope_.Increment(request.agent + ".denied");
            return {false, blocking->agent};
        }
        // Disabled (ungoverned baseline): observe but admit.
    }

    auto& hold = holds_[DomainIndex(request.domain)];
    if (!hold.has_value() || hold->agent != request.agent) {
        hold = Hold{request.agent, request.magnitude, 0};
    }
    hold->magnitude = request.magnitude;
    ++hold->admissions;
    scope_.Increment(request.agent + ".admitted");
    return {true, ""};
}

std::optional<std::string>
InterferenceArbiter::HolderOf(core::ActuationDomain domain) const
{
    const auto& hold = holds_[DomainIndex(domain)];
    if (!hold.has_value()) {
        return std::nullopt;
    }
    return hold->agent;
}

}  // namespace sol::cluster
