/**
 * @file
 * Admission control for conflicting actuations on a shared node.
 *
 * When several learning agents run on one node, their actuators contend
 * for the same physical envelope even when they write different knobs:
 * SmartOverclock boosting a VM's frequency while SmartHarvest loans that
 * VM's cores away stacks two efficiency bets on one power/QoS budget,
 * and two agents writing one knob oscillate it. The paper (section 5)
 * studies exactly this deployment risk; the arbiter is the mechanism
 * that makes it safe.
 *
 * Model: an admitted kExpand request takes a *hold* on its resource
 * domain. A later kExpand from a different agent on the same or a
 * coupled domain is a conflict, resolved deterministically by policy —
 * the denied actuator falls back to its conservative action (the same
 * path it takes for a missing prediction), so denial is always safe.
 * A kRestore releases the agent's hold and is never blocked. All
 * decisions depend only on the sequence of prior requests, so a fixed
 * seed reproduces a multi-agent run exactly; under concurrent callers
 * the decision sequence is whatever admission order the lock table
 * serializes, and it stays internally consistent (no double grants, no
 * lost holds).
 *
 * Concurrency: agents on a ThreadedMultiAgentNode announce intents from
 * their own actuator threads, so Admit must survive true expand/restore
 * races. The hold map is a per-domain lock table: an expand locks the
 * requested domain plus every coupled domain (ascending index order, so
 * overlapping closures serialize instead of deadlocking), checks for a
 * blocking hold, and takes its own hold — all under those locks, which
 * makes "check coupled holds, then grant" atomic. A restore locks only
 * its own domain. Uncoupled domains never share a lock, so agents on
 * disjoint envelopes admit in parallel.
 *
 * Accounting is contention-safe and lock-free on the admit path:
 * per-agent atomic counter blocks (created once per agent name under a
 * shared_mutex) instead of direct writes into the single-threaded
 * MetricRegistry. WriteMetrics() publishes the counters into the
 * arbiter's MetricScope, namespaced per agent exactly as before:
 *   <prefix>.<agent>.requests / .admitted / .denied / .restores
 *   <prefix>.conflicts, <prefix>.denial.<agent>.by.<holder>
 *
 * Observability: with track_contention on, every admit also lands in
 * two latency histograms — lock_wait_ns (time acquiring the domain
 * lock closure) and admit_ns (whole-decision latency) — published by
 * WriteMetrics() as <prefix>.lock_wait_ns / <prefix>.admit_ns. When a
 * flight recorder is bound to the calling thread
 * (telemetry::trace::ScopedThreadRecorder, done by ThreadedRuntime's
 * loops and the shard runner), Admit emits an "expand"/"restore" span
 * with agent + domain args and a "deny" instant naming the blocking
 * holder — so arbiter decisions appear on the track of the agent that
 * made them, keeping every trace ring single-producer.
 */
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/actuation.h"
#include "core/sync.h"
#include "core/thread_annotations.h"
#include "telemetry/metric_registry.h"

namespace sol::cluster {

/** How a conflicting expand request is resolved. */
enum class ArbitrationPolicy {
    /** The agent already holding the resource keeps it; later
     *  conflicting expands are denied until the holder restores. */
    kFirstHolderWins,
    /** A static priority order (config.priority, most important first)
     *  decides: an expand is denied only when a holder of a coupled
     *  domain has equal or higher priority. Lower-priority holders keep
     *  their hold but their next refresh is denied, which drives them
     *  back to the safe baseline. */
    kStaticPriority,
};

/** Tunables for the InterferenceArbiter. */
struct InterferenceArbiterConfig {
    /** When false, every request is admitted (the ungoverned baseline
     *  the interference figure compares against). Accounting still
     *  runs, so conflicts can be counted without being resolved. */
    bool enabled = true;

    ArbitrationPolicy policy = ArbitrationPolicy::kFirstHolderWins;

    /** Priority order for kStaticPriority, most important first.
     *  Agents not listed rank below all listed ones. */
    std::vector<std::string> priority;

    /**
     * Domain pairs that contend for one shared envelope. The default
     * couples CPU frequency and core grants: boosting frequency while
     * cores are harvested away both stresses the node power budget and
     * overclocks capacity the primary does not own anymore.
     */
    std::vector<std::pair<core::ActuationDomain, core::ActuationDomain>>
        couplings = {{core::ActuationDomain::kCpuFrequency,
                      core::ActuationDomain::kCpuCores}};

    /**
     * Accumulate the wall time expand requests spend waiting for the
     * domain lock closure (lock_wait_ns()) and feed the lock-wait and
     * admit-latency histograms. Off by default: the extra clock reads
     * cost more than the locks on uncontended nodes, and deterministic
     * runs never read it.
     */
    bool track_contention = false;
};

/** Detects and resolves conflicting actuations on one node. */
class InterferenceArbiter : public core::ActuationGovernor
{
  public:
    /**
     * @param config Policy and coupling matrix.
     * @param scope Metric namespace WriteMetrics() publishes into.
     */
    InterferenceArbiter(InterferenceArbiterConfig config,
                        telemetry::MetricScope scope);

    /** Thread-safe: callable from any agent thread concurrently. */
    core::ActuationDecision
    Admit(const core::ActuationRequest& request) override;

    /** Agent currently holding a domain, if any (thread-safe). */
    std::optional<std::string> HolderOf(core::ActuationDomain domain) const;

    /** Conflicting expands denied so far (0 when disabled). */
    std::uint64_t conflicts_resolved() const
    {
        return conflicts_resolved_.load(std::memory_order_relaxed);
    }

    /** Conflicting expands observed (counted even when disabled). */
    std::uint64_t conflicts_observed() const
    {
        return conflicts_observed_.load(std::memory_order_relaxed);
    }

    std::uint64_t requests() const
    {
        return requests_.load(std::memory_order_relaxed);
    }

    /** Wall nanoseconds expands spent acquiring the lock closure; 0
     *  unless config.track_contention. */
    std::uint64_t lock_wait_ns() const
    {
        return lock_wait_ns_.load(std::memory_order_relaxed);
    }

    /** Distribution of per-expand lock-closure wait (wall ns); empty
     *  unless config.track_contention. Thread-safe copy. */
    telemetry::LatencyHistogram lock_wait_histogram() const
    {
        return lock_wait_hist_.Histogram();
    }

    /** Distribution of whole-Admit latency (wall ns, expands and
     *  restores); empty unless config.track_contention. Thread-safe
     *  copy. */
    telemetry::LatencyHistogram admit_histogram() const
    {
        return admit_hist_.Histogram();
    }

    /**
     * Publishes the per-agent accounting into the MetricScope given at
     * construction (absolute values, so repeated calls are idempotent).
     * Safe to call while agents keep admitting — counters are
     * snapshots — but the underlying MetricRegistry is single-threaded,
     * so only one thread may be writing metrics at a time.
     */
    void WriteMetrics();

    const InterferenceArbiterConfig& config() const { return config_; }

  private:
    struct Hold {
        std::string agent;
        double magnitude = 0.0;
        std::uint64_t admissions = 0;  ///< Times taken or refreshed.
    };

    /** One entry of the per-domain lock table. */
    struct DomainSlot {
        mutable core::Mutex mutex;
        std::optional<Hold> hold SOL_GUARDED_BY(mutex);
    };

    /** Lock-free per-agent accounting block. */
    struct AgentAccount {
        std::atomic<std::uint64_t> requests{0};
        std::atomic<std::uint64_t> admitted{0};
        std::atomic<std::uint64_t> denied{0};
        std::atomic<std::uint64_t> restores{0};
        /** Denial attribution is rare; a plain guarded map suffices. */
        core::Mutex denial_mutex;
        std::map<std::string, std::uint64_t> denied_by
            SOL_GUARDED_BY(denial_mutex);
    };

    /** Rank in the priority list; lower is more important. */
    std::size_t PriorityRank(const std::string& agent) const;

    /**
     * The holder blocking `request`. Caller holds every lock in the
     * request domain's closure — a *runtime-computed* set of
     * DomainSlot mutexes, which is exactly the shape Clang's analysis
     * cannot express (capabilities must be named statically), so this
     * and ExpandUnderClosure are the arbiter's two documented escape
     * hatches; tests/arbiter_race_test.cc covers them dynamically.
     */
    const Hold* BlockingHoldLocked(const core::ActuationRequest& request)
        const SOL_NO_THREAD_SAFETY_ANALYSIS;

    /**
     * The expand critical section: locks the request domain's coupling
     * closure in ascending index order, scans for a blocking hold,
     * grants/refreshes the hold on admission, and unlocks in reverse.
     * See BlockingHoldLocked for why the analysis is disabled here.
     */
    core::ActuationDecision
    ExpandUnderClosure(const core::ActuationRequest& request,
                       AgentAccount& account)
        SOL_NO_THREAD_SAFETY_ANALYSIS;

    /** The agent's accounting block, created on first use. */
    AgentAccount& AccountFor(const std::string& agent);

    InterferenceArbiterConfig config_;
    telemetry::MetricScope scope_;

    /** closure_[d] = sorted domain indices coupled to d, including d
     *  itself — the lock set of an expand on d. Immutable after
     *  construction. */
    std::array<std::vector<std::size_t>, core::kNumActuationDomains>
        closure_;
    std::array<DomainSlot, core::kNumActuationDomains> domains_;

    /** Guards the accounts map only; the AgentAccount blocks are
     *  atomic and stable once created, so the hot path reads them
     *  after dropping the shared lock. */
    mutable core::SharedMutex accounts_mutex_;
    std::map<std::string, std::unique_ptr<AgentAccount>> accounts_
        SOL_GUARDED_BY(accounts_mutex_);

    std::atomic<std::uint64_t> requests_{0};
    std::atomic<std::uint64_t> conflicts_observed_{0};
    std::atomic<std::uint64_t> conflicts_resolved_{0};
    std::atomic<std::uint64_t> lock_wait_ns_{0};

    // Populated only under config.track_contention.
    telemetry::SharedLatencyHistogram lock_wait_hist_;
    telemetry::SharedLatencyHistogram admit_hist_;
};

}  // namespace sol::cluster
