/**
 * @file
 * Admission control for conflicting actuations on a shared node.
 *
 * When several learning agents run on one node, their actuators contend
 * for the same physical envelope even when they write different knobs:
 * SmartOverclock boosting a VM's frequency while SmartHarvest loans that
 * VM's cores away stacks two efficiency bets on one power/QoS budget,
 * and two agents writing one knob oscillate it. The paper (section 5)
 * studies exactly this deployment risk; the arbiter is the mechanism
 * that makes it safe.
 *
 * Model: an admitted kExpand request takes a *hold* on its resource
 * domain. A later kExpand from a different agent on the same or a
 * coupled domain is a conflict, resolved deterministically by policy —
 * the denied actuator falls back to its conservative action (the same
 * path it takes for a missing prediction), so denial is always safe.
 * A kRestore releases the agent's hold and is never blocked. All
 * decisions depend only on the sequence of prior requests, so a fixed
 * seed reproduces a multi-agent run exactly.
 *
 * Accounting lands in a telemetry::MetricScope, namespaced per agent:
 *   <prefix>.<agent>.requests / .admitted / .denied / .restores
 *   <prefix>.conflicts, <prefix>.denial.<agent>.by.<holder>
 */
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/actuation.h"
#include "telemetry/metric_registry.h"

namespace sol::cluster {

/** How a conflicting expand request is resolved. */
enum class ArbitrationPolicy {
    /** The agent already holding the resource keeps it; later
     *  conflicting expands are denied until the holder restores. */
    kFirstHolderWins,
    /** A static priority order (config.priority, most important first)
     *  decides: an expand is denied only when a holder of a coupled
     *  domain has equal or higher priority. Lower-priority holders keep
     *  their hold but their next refresh is denied, which drives them
     *  back to the safe baseline. */
    kStaticPriority,
};

/** Tunables for the InterferenceArbiter. */
struct InterferenceArbiterConfig {
    /** When false, every request is admitted (the ungoverned baseline
     *  the interference figure compares against). Accounting still
     *  runs, so conflicts can be counted without being resolved. */
    bool enabled = true;

    ArbitrationPolicy policy = ArbitrationPolicy::kFirstHolderWins;

    /** Priority order for kStaticPriority, most important first.
     *  Agents not listed rank below all listed ones. */
    std::vector<std::string> priority;

    /**
     * Domain pairs that contend for one shared envelope. The default
     * couples CPU frequency and core grants: boosting frequency while
     * cores are harvested away both stresses the node power budget and
     * overclocks capacity the primary does not own anymore.
     */
    std::vector<std::pair<core::ActuationDomain, core::ActuationDomain>>
        couplings = {{core::ActuationDomain::kCpuFrequency,
                      core::ActuationDomain::kCpuCores}};
};

/** Detects and resolves conflicting actuations on one node. */
class InterferenceArbiter : public core::ActuationGovernor
{
  public:
    /**
     * @param config Policy and coupling matrix.
     * @param scope Metric namespace the arbiter accounts into.
     */
    InterferenceArbiter(InterferenceArbiterConfig config,
                        telemetry::MetricScope scope);

    core::ActuationDecision
    Admit(const core::ActuationRequest& request) override;

    /** Agent currently holding a domain, if any. */
    std::optional<std::string> HolderOf(core::ActuationDomain domain) const;

    /** Conflicting expands denied so far (0 when disabled). */
    std::uint64_t conflicts_resolved() const { return conflicts_resolved_; }

    /** Conflicting expands observed (counted even when disabled). */
    std::uint64_t conflicts_observed() const { return conflicts_observed_; }

    std::uint64_t requests() const { return requests_; }

    const InterferenceArbiterConfig& config() const { return config_; }

  private:
    struct Hold {
        std::string agent;
        double magnitude = 0.0;
        std::uint64_t admissions = 0;  ///< Times taken or refreshed.
    };

    bool Coupled(core::ActuationDomain a, core::ActuationDomain b) const;

    /** Rank in the priority list; lower is more important. */
    std::size_t PriorityRank(const std::string& agent) const;

    /** The holder blocking `request`, if any. */
    const Hold* BlockingHold(const core::ActuationRequest& request) const;

    InterferenceArbiterConfig config_;
    telemetry::MetricScope scope_;
    std::array<std::optional<Hold>, core::kNumActuationDomains> holds_;
    std::uint64_t requests_ = 0;
    std::uint64_t conflicts_observed_ = 0;
    std::uint64_t conflicts_resolved_ = 0;
};

}  // namespace sol::cluster
