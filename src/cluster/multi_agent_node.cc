#include "cluster/multi_agent_node.h"

#include <stdexcept>
#include <utility>

namespace sol::cluster {

namespace {

using sim::DeriveStreamSeed;

node::NodeConfig
MakeNodeConfig(const MultiAgentNodeConfig& config)
{
    node::NodeConfig node_config;
    node_config.total_cores = config.total_cores;
    return node_config;
}

}  // namespace

void
WriteAgentRuntimeStats(telemetry::MetricScope scope,
                       const core::RuntimeStats& stats)
{
    scope.SetGauge("epochs", static_cast<double>(stats.epochs));
    scope.SetGauge("samples_collected",
                   static_cast<double>(stats.samples_collected));
    scope.SetGauge("invalid_samples",
                   static_cast<double>(stats.invalid_samples));
    scope.SetGauge("model_updates",
                   static_cast<double>(stats.model_updates));
    scope.SetGauge("short_circuit_epochs",
                   static_cast<double>(stats.short_circuit_epochs));
    scope.SetGauge("model_assessments",
                   static_cast<double>(stats.model_assessments));
    scope.SetGauge("failed_assessments",
                   static_cast<double>(stats.failed_assessments));
    scope.SetGauge("intercepted_predictions",
                   static_cast<double>(stats.intercepted_predictions));
    scope.SetGauge("predictions_delivered",
                   static_cast<double>(stats.predictions_delivered));
    scope.SetGauge("default_predictions",
                   static_cast<double>(stats.default_predictions));
    scope.SetGauge("expired_predictions",
                   static_cast<double>(stats.expired_predictions));
    scope.SetGauge("dropped_while_halted",
                   static_cast<double>(stats.dropped_while_halted));
    scope.SetGauge("peak_queued_predictions",
                   static_cast<double>(stats.peak_queued_predictions));
    scope.SetGauge("actions_taken",
                   static_cast<double>(stats.actions_taken));
    scope.SetGauge("actions_with_prediction",
                   static_cast<double>(stats.actions_with_prediction));
    scope.SetGauge("actuator_timeouts",
                   static_cast<double>(stats.actuator_timeouts));
    scope.SetGauge("actuator_assessments",
                   static_cast<double>(stats.actuator_assessments));
    scope.SetGauge("safeguard_triggers",
                   static_cast<double>(stats.safeguard_triggers));
    scope.SetGauge("mitigations", static_cast<double>(stats.mitigations));
    scope.SetGauge("halted_seconds", sim::ToSeconds(stats.halted_time));
}

void
AppendNodeHealthSample(telemetry::SharedTimeSeriesStore& health,
                       const std::string& prefix,
                       const core::RuntimeStats& stats,
                       const InterferenceArbiter& arbiter,
                       const telemetry::LatencyHistogram& epochs,
                       std::size_t num_agents, sim::TimePoint at)
{
    const std::string p = prefix.empty() ? "" : prefix + ".";
    const auto append = [&health, &p, at](const char* name,
                                          std::uint64_t value) {
        health.Append(p + name, at, static_cast<std::int64_t>(value));
    };
    append("safeguard.trips", stats.safeguard_triggers);
    append("safeguard.mitigations", stats.mitigations);
    append("model.failures", stats.failed_assessments);
    append("model.intercepted", stats.intercepted_predictions);
    append("data.harvested", stats.samples_collected);
    append("data.invalid", stats.invalid_samples);
    append("epochs", stats.epochs);
    append("actions", stats.actions_taken);
    append("arbiter.requests", arbiter.requests());
    append("arbiter.denied", arbiter.conflicts_resolved());
    append("agent.halted_ns",
           static_cast<std::uint64_t>(stats.halted_time.count()));
    append("agent.active_ns",
           num_agents * static_cast<std::uint64_t>(at.count()));
    const telemetry::LatencySnapshot s = epochs.Snapshot();
    append("epoch_latency.count", s.count);
    append("epoch_latency.p50_ns", s.p50_ns);
    append("epoch_latency.p90_ns", s.p90_ns);
    append("epoch_latency.p99_ns", s.p99_ns);
    append("epoch_latency.p999_ns", s.p999_ns);
}

MultiAgentNode::MultiAgentNode(sim::EventQueue& queue,
                               MultiAgentNodeConfig config)
    : queue_(queue),
      config_(std::move(config)),
      rng_(DeriveStreamSeed(config_.seed, 0)),
      node_(MakeNodeConfig(config_)),
      memory_(config_.memory_batches, config_.fast_tier_batches),
      channels_(config_.num_channels, config_.channel_visibility),
      policy_(config_.num_channels),
      arbiter_(config_.arbiter,
               telemetry::MetricScope(metrics_, "arbiter")),
      incident_rng_(DeriveStreamSeed(config_.seed, 1))
{
    // --- Shared CPU substrate: one primary VM, one elastic VM. --------
    workloads::TailBenchConfig primary_config =
        workloads::ImageDnnConfig(DeriveStreamSeed(config_.seed, 2));
    primary_workload_ =
        std::make_shared<workloads::TailBench>(primary_config);
    elastic_workload_ = std::make_shared<workloads::BestEffort>();
    primary_ = node_.AddVm(
        node::VmConfig{"primary", primary_config.vcpus},
        primary_workload_);
    elastic_ = node_.AddVm(
        node::VmConfig{"elastic", primary_config.vcpus},
        elastic_workload_);
    node_.GrantCores(elastic_, 0);  // Nothing harvested yet.

    // --- Memory substrate. --------------------------------------------
    workloads::ZipfMemoryConfig pattern_config =
        workloads::ObjectStoreMemConfig(DeriveStreamSeed(config_.seed, 3));
    pattern_config.num_batches = config_.memory_batches;
    memory_pattern_ =
        std::make_unique<workloads::ZipfMemoryPattern>(pattern_config);

    // --- Telemetry-channel substrate: a few hot channels. -------------
    for (node::ChannelId c = 0; c < channels_.num_channels(); ++c) {
        channels_.SetIncidentRate(c, config_.cold_rate_per_sec);
    }
    for (std::size_t picked = 0; picked < config_.hot_channels;) {
        const auto c = static_cast<node::ChannelId>(
            rng_.NextBelow(config_.num_channels));
        if (channels_.IncidentRate(c) < config_.hot_rate_per_sec) {
            channels_.SetIncidentRate(c, config_.hot_rate_per_sec);
            ++picked;
        }
    }

    // --- Agents: concurrent registration on the shared node. ----------
    if (config_.run_overclock) {
        agents::SmartOverclockConfig cfg = config_.overclock;
        cfg.seed = DeriveStreamSeed(config_.seed, 4);
        overclock_model_ = std::make_unique<agents::OverclockModel>(
            node_, primary_, queue_, cfg);
        overclock_actuator_ = std::make_unique<agents::OverclockActuator>(
            node_, primary_, queue_, cfg);
        overclock_actuator_->SetGovernor(&arbiter_);
        overclock_runtime_ = std::make_unique<OverclockRuntime>(
            queue_, *overclock_model_, *overclock_actuator_,
            agents::SmartOverclockSchedule(), config_.runtime);
        overclock_runtime_->SetTraceRecorder(config_.trace);
        AddAgentSlot(agents::kSmartOverclockName, overclock_runtime_.get(),
                     overclock_actuator_.get());
    }
    if (config_.run_harvest) {
        agents::SmartHarvestConfig cfg = config_.harvest;
        cfg.seed = DeriveStreamSeed(config_.seed, 5);
        harvest_model_ = std::make_unique<agents::HarvestModel>(
            node_, primary_, queue_, cfg);
        harvest_actuator_ = std::make_unique<agents::HarvestActuator>(
            node_, primary_, elastic_, queue_, cfg);
        harvest_actuator_->SetGovernor(&arbiter_);
        harvest_runtime_ = std::make_unique<HarvestRuntime>(
            queue_, *harvest_model_, *harvest_actuator_,
            agents::SmartHarvestSchedule(), config_.runtime);
        harvest_runtime_->SetTraceRecorder(config_.trace);
        AddAgentSlot(agents::kSmartHarvestName, harvest_runtime_.get(),
                     harvest_actuator_.get());
    }
    if (config_.run_memory) {
        agents::SmartMemoryConfig cfg = config_.memory;
        cfg.seed = DeriveStreamSeed(config_.seed, 6);
        memory_model_ = std::make_unique<agents::MemoryModel>(
            memory_, queue_, cfg);
        memory_actuator_ = std::make_unique<agents::MemoryActuator>(
            memory_, queue_, cfg);
        memory_actuator_->SetGovernor(&arbiter_);
        memory_runtime_ = std::make_unique<MemoryRuntime>(
            queue_, *memory_model_, *memory_actuator_,
            agents::SmartMemorySchedule(), config_.runtime);
        memory_runtime_->SetTraceRecorder(config_.trace);
        AddAgentSlot(agents::kSmartMemoryName, memory_runtime_.get(),
                     memory_actuator_.get());
    }
    if (config_.run_monitor) {
        agents::SmartMonitorConfig cfg = config_.monitor;
        cfg.seed = DeriveStreamSeed(config_.seed, 7);
        monitor_model_ = std::make_unique<agents::MonitorModel>(
            channels_, policy_, queue_, cfg);
        monitor_actuator_ = std::make_unique<agents::MonitorActuator>(
            policy_, cfg);
        monitor_actuator_->SetGovernor(&arbiter_);
        monitor_runtime_ = std::make_unique<MonitorRuntime>(
            queue_, *monitor_model_, *monitor_actuator_,
            agents::SmartMonitorSchedule(), config_.runtime);
        monitor_runtime_->SetTraceRecorder(config_.trace);
        AddAgentSlot(agents::kSmartMonitorName, monitor_runtime_.get(),
                     monitor_actuator_.get());
    }

    // --- Synthetic filler agents up to fleet-realistic counts. --------
    // Stream seeds 8.. follow the real agents' 4..7; domains alternate
    // between the two that are uncoupled from the CPU conflict surface.
    synthetics_.reserve(config_.synthetic_agents);
    for (std::size_t i = 0; i < config_.synthetic_agents; ++i) {
        SyntheticAgentConfig cfg = config_.synthetic;
        cfg.name = "synthetic" + std::to_string(i);
        cfg.seed = DeriveStreamSeed(config_.seed, 8 + i);
        cfg.domain = i % 2 == 0
                         ? core::ActuationDomain::kTelemetryBudget
                         : core::ActuationDomain::kMemoryPlacement;
        cfg.trace_driver = config_.trace_driver;
        cfg.tenant = config_.node_index * config_.synthetic_agents + i;
        if (config_.customize_synthetic) {
            config_.customize_synthetic(i, cfg);
        }
        synthetics_.push_back(std::make_unique<SyntheticAgent>(
            queue_, cfg, &arbiter_, config_.runtime));
        SyntheticAgent* agent = synthetics_.back().get();
        agent->runtime().SetTraceRecorder(config_.trace);
        AddAgentSlot(agent->name(), &agent->runtime(),
                     &agent->actuator());
    }
}

MultiAgentNode::~MultiAgentNode() = default;

void
MultiAgentNode::Start()
{
    if (started_) {
        return;
    }
    started_ = true;

    if (config_.health != nullptr &&
        config_.health_period <= sim::Duration::zero()) {
        throw std::invalid_argument(
            "MultiAgentNodeConfig::health_period must be positive");
    }
    const sim::Duration node_tick = config_.node_tick;
    next_health_sample_ = queue_.Now() + config_.health_period;
    node_driver_ = std::make_unique<sim::PeriodicTask>(
        queue_, node_tick, [this, node_tick] {
            node_.Advance(queue_.Now(), node_tick);
            // Health sampling piggybacks on the driver tick that is
            // already scheduled: observe-only, so the event trace is
            // byte-identical with sampling on or off.
            if (config_.health != nullptr &&
                queue_.Now() >= next_health_sample_) {
                SampleNodeHealth(queue_.Now());
                do {
                    next_health_sample_ += config_.health_period;
                } while (next_health_sample_ <= queue_.Now());
            }
        });
    const sim::Duration memory_tick = config_.memory_tick;
    memory_driver_ = std::make_unique<sim::PeriodicTask>(
        queue_, memory_tick, [this, memory_tick] {
            memory_pattern_->GenerateAccesses(queue_.Now() - memory_tick,
                                              memory_tick, memory_);
        });
    const sim::Duration channel_tick = config_.channel_tick;
    channel_driver_ = std::make_unique<sim::PeriodicTask>(
        queue_, channel_tick, [this, channel_tick] {
            channels_.Advance(queue_.Now() - channel_tick, channel_tick,
                              incident_rng_);
        });

    for (const AgentSlot& slot : slots_) {
        slot.start();
    }
}

void
MultiAgentNode::Stop()
{
    for (const AgentSlot& slot : slots_) {
        slot.stop();
    }
}

void
MultiAgentNode::StopAgent(const std::string& name)
{
    for (const AgentSlot& slot : slots_) {
        if (slot.name == name) {
            slot.stop();
        }
    }
}

void
MultiAgentNode::StartAgent(const std::string& name)
{
    for (const AgentSlot& slot : slots_) {
        if (slot.name == name) {
            slot.start();
        }
    }
}

void
MultiAgentNode::CleanUpAll()
{
    registry_.CleanUpAll();
}

void
MultiAgentNode::SampleNodeHealth(sim::TimePoint at)
{
    AppendNodeHealthSample(*config_.health, config_.name,
                           AggregateStats(), arbiter_,
                           EpochLatencyHistogram(), num_agents(), at);
}

std::uint64_t
MultiAgentNode::TotalEpochs() const
{
    std::uint64_t epochs = 0;
    for (const AgentSlot& slot : slots_) {
        epochs += slot.stats().epochs;
    }
    return epochs;
}

core::RuntimeStats
MultiAgentNode::AggregateStats() const
{
    core::RuntimeStats total;
    for (const AgentSlot& slot : slots_) {
        total.Accumulate(slot.stats());
    }
    return total;
}

telemetry::LatencyHistogram
MultiAgentNode::EpochLatencyHistogram() const
{
    telemetry::LatencyHistogram merged;
    for (const AgentSlot& slot : slots_) {
        merged.Merge(slot.epoch_latency());
    }
    return merged;
}

core::RuntimeStats
MultiAgentNode::StatsFor(const std::string& name) const
{
    for (const AgentSlot& slot : slots_) {
        if (slot.name == name) {
            return slot.stats();
        }
    }
    return core::RuntimeStats{};
}

core::RuntimeStats
MultiAgentNode::OverclockStats() const
{
    return StatsFor(agents::kSmartOverclockName);
}

core::RuntimeStats
MultiAgentNode::HarvestStats() const
{
    return StatsFor(agents::kSmartHarvestName);
}

core::RuntimeStats
MultiAgentNode::MemoryStats() const
{
    return StatsFor(agents::kSmartMemoryName);
}

core::RuntimeStats
MultiAgentNode::MonitorStats() const
{
    return StatsFor(agents::kSmartMonitorName);
}

void
MultiAgentNode::CollectMetrics()
{
    for (const AgentSlot& slot : slots_) {
        WriteAgentRuntimeStats(
            telemetry::MetricScope(metrics_, slot.name), slot.stats());
    }
    arbiter_.WriteMetrics();

    telemetry::MetricScope node_scope(metrics_, "node");
    node_scope.SetGauge("primary_p99_ms",
                        primary_workload_->PerformanceValue());
    node_scope.SetGauge(
        "primary_completed_requests",
        static_cast<double>(primary_workload_->completed_requests()));
    node_scope.SetGauge("harvested_core_seconds",
                        elastic_workload_->core_seconds());
    node_scope.SetGauge("energy_joules", node_.EnergyJoules());
    node_scope.SetGauge("primary_freq_ghz", node_.VmFrequency(primary_));
    node_scope.SetGauge("memory_remote_fraction",
                        memory_.stats().RemoteFraction());
    node_scope.SetGauge("incident_coverage",
                        channels_.stats().Coverage());
    node_scope.SetGauge("total_epochs",
                        static_cast<double>(TotalEpochs()));
    const telemetry::LatencyHistogram epoch_hist = EpochLatencyHistogram();
    if (!epoch_hist.empty()) {
        // Snapshot-overwrite, so repeated collections stay idempotent.
        node_scope.SetHistogram("epoch_ns", epoch_hist);
    }
}

}  // namespace sol::cluster
