/**
 * @file
 * One simulated node running the paper's full agent complement.
 *
 * Production nodes run tens of learning agents concurrently behind
 * shared safeguards (~77 in the paper's fleet); every experiment
 * elsewhere in this repo instantiates exactly one. MultiAgentNode is
 * the deployment-shaped harness: SmartOverclock, SmartHarvest,
 * SmartMemory, and SmartMonitor all run on one node, each in its own
 * SimRuntime on the shared event queue, with
 *   - every actuation routed through an InterferenceArbiter that
 *     detects and resolves conflicting actuations (e.g. SmartOverclock
 *     raising frequency while SmartHarvest reclaims cores),
 *   - every agent registered in a node-local core::AgentRegistry, so
 *     an SRE (or a test) can terminate and clean up any or all agents
 *     without knowing their implementation, and
 *   - per-agent accounting namespaced into one telemetry registry
 *     ("smart-harvest.epochs", "arbiter.conflicts", ...).
 *
 * The node substrate is shared the way a real node shares it: the
 * overclocking and harvesting agents manage the same primary VM (the
 * direct conflict surface), the memory agent manages the node's tiered
 * memory, and the monitoring agent spreads a sampling budget over the
 * node's telemetry channels.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "agents/smartharvest/smartharvest.h"
#include "agents/smartmemory/smartmemory.h"
#include "agents/smartmonitor/smartmonitor.h"
#include "agents/smartoverclock/smartoverclock.h"
#include "cluster/interference_arbiter.h"
#include "cluster/synthetic_agent.h"
#include "core/agent_registry.h"
#include "core/sim_runtime.h"
#include "node/channel_array.h"
#include "node/node.h"
#include "node/tiered_memory.h"
#include "sim/event_queue.h"
#include "sim/rng.h"
#include "telemetry/metric_registry.h"
#include "telemetry/timeseries.h"
#include "telemetry/trace.h"
#include "workloads/best_effort.h"
#include "workloads/memory_patterns.h"
#include "workloads/tailbench.h"

namespace sol::cluster {

/** Snapshots one agent's runtime counters into its metric namespace
 *  (shared by both node variants, so a gauge-by-gauge diff of their
 *  registries is meaningful). */
void WriteAgentRuntimeStats(telemetry::MetricScope scope,
                            const core::RuntimeStats& stats);

/**
 * Appends one node-health timeline sample under `prefix + "."`:
 * safeguard/model/data/arbiter counters, halted-vs-active agent time,
 * and the merged epoch-latency percentiles, all at virtual time `at`.
 * Shared by both node variants so their timelines are name-compatible
 * (the node parity suite can diff them series-by-series).
 */
void AppendNodeHealthSample(telemetry::SharedTimeSeriesStore& health,
                            const std::string& prefix,
                            const core::RuntimeStats& stats,
                            const InterferenceArbiter& arbiter,
                            const telemetry::LatencyHistogram& epochs,
                            std::size_t num_agents, sim::TimePoint at);

/** Configuration of one multi-agent node. */
struct MultiAgentNodeConfig {
    /** Metric namespace and display name ("node0", "node1", ...). */
    std::string name = "node0";

    /** Per-node RNG stream seed; drives workloads and agent seeds. */
    std::uint64_t seed = 1;

    /**
     * Global fleet index of this node (NodeShard sets it from the
     * node's global position). Only used to derive fleet-global tenant
     * indices for the trace driver, so single-node deployments can
     * leave it 0.
     */
    std::size_t node_index = 0;

    /**
     * Trace-driven demand oracle applied to every synthetic agent on
     * the node (workloads/trace_driver.h); null (the default) keeps
     * the flat synthetic-periodic load every prior PR hashed. Not
     * owned; must outlive the node. Synthetic i consults it as tenant
     * `node_index * synthetic_agents + i`.
     */
    const workloads::TraceDriver* trace_driver = nullptr;

    /** Which agents run; disabled agents leave their substrate idle. */
    bool run_overclock = true;
    bool run_harvest = true;
    bool run_memory = true;
    bool run_monitor = true;

    /**
     * Cheap synthetic agents co-located beside the real four, closing
     * the gap to the paper's ~77 agents per node (73 synthetics + the
     * 4 real agents). Each runs a full SimRuntime with O(1) logic and
     * contends through the shared arbiter; 0 (the default) keeps the
     * node exactly as the single-purpose experiments expect it.
     */
    std::size_t synthetic_agents = 0;

    /** Template for every synthetic agent (name/seed/domain are set
     *  per instance; domains alternate telemetry/memory placement so
     *  synthetics pressure the arbiter without monopolizing the
     *  CPU-frequency/cores conflict surface the real agents study). */
    SyntheticAgentConfig synthetic;

    /**
     * Per-instance override applied after the defaults above (index,
     * config already carrying its derived name/seed/domain). Node
     * parity scenarios use this to give each synthetic its own cadence
     * or conflict role; both node variants apply it identically, so a
     * scenario scripted here runs the same on the simulated and the
     * threaded node.
     */
    std::function<void(std::size_t, SyntheticAgentConfig&)>
        customize_synthetic;

    // --- Substrate sizing -------------------------------------------------
    int total_cores = 16;
    std::size_t memory_batches = 256;
    /** First-tier capacity. Matches memory_batches (the fig 7/8
     *  setting): everything fits locally, and demoting to the slow
     *  tier to save DRAM is entirely the agent's choice. */
    std::size_t fast_tier_batches = 256;
    std::size_t num_channels = 32;
    std::size_t hot_channels = 2;
    double hot_rate_per_sec = 0.5;
    double cold_rate_per_sec = 0.004;
    sim::Duration channel_visibility = sim::Seconds(2);

    // --- Driver cadence ---------------------------------------------------
    /** Hypervisor tick advancing VMs/counters (50 us = paper sampling). */
    sim::Duration node_tick = sim::Micros(50);
    sim::Duration memory_tick = sim::Millis(100);
    sim::Duration channel_tick = sim::Millis(20);

    /** Shared runtime ablation/fault switches (applied to all agents). */
    core::RuntimeOptions runtime;

    /**
     * Flight-recorder track every agent runtime on this node records
     * into (spans + safeguard instants; see telemetry/trace.h). The
     * node's event queue serializes all agents on one thread, so one
     * SPSC recorder safely serves them all. The caller owns the
     * recorder; null (the default) disables tracing. The threaded node
     * variant ignores this and uses trace_session instead — its agents
     * need one recorder per thread.
     */
    telemetry::trace::TraceRecorder* trace = nullptr;

    /**
     * Trace session the *threaded* node variant creates per-agent
     * model/actuator recorders in (two tracks per agent plus driver
     * and control tracks). Ignored by the simulated node; null (the
     * default) disables tracing.
     */
    telemetry::trace::TraceSession* trace_session = nullptr;

    /**
     * Node-local health timeline (null disables). Both node variants
     * sample the same "<name>.*" series via AppendNodeHealthSample at
     * `health_period` cadence, piggybacked on the node driver tick —
     * no new events are scheduled, so enabling it never perturbs event
     * traces. On the simulated node timestamps are virtual queue time;
     * on the threaded node they are the driver's substrate clock. The
     * caller owns the store (shared so a live scrape thread can read
     * while the driver samples). The threaded variant samples from its
     * driver thread, which only runs when a real agent is enabled.
     */
    telemetry::SharedTimeSeriesStore* health = nullptr;

    /** Cadence of node-health samples (must be positive). */
    sim::Duration health_period = sim::Millis(100);

    InterferenceArbiterConfig arbiter;

    agents::SmartOverclockConfig overclock;
    agents::SmartHarvestConfig harvest;
    agents::SmartMemoryConfig memory;
    agents::SmartMonitorConfig monitor;
};

/** All four paper agents co-located on one simulated node. */
class MultiAgentNode
{
  public:
    /**
     * @param queue Shared event queue (owned by the caller/driver).
     * @param config Node configuration.
     */
    MultiAgentNode(sim::EventQueue& queue, MultiAgentNodeConfig config);
    ~MultiAgentNode();

    MultiAgentNode(const MultiAgentNode&) = delete;
    MultiAgentNode& operator=(const MultiAgentNode&) = delete;

    /** Starts the node drivers and every enabled agent runtime. */
    void Start();

    /** Stops all runtimes (drivers keep the substrate advancing). */
    void Stop();

    /** Stops/starts one agent's runtime by name (no-op on unknown
     *  names). Models an SRE restarting a single agent while its peers
     *  keep running — the restart scenarios of the node parity suite. */
    void StopAgent(const std::string& name);
    void StartAgent(const std::string& name);

    /**
     * SRE incident response: runs every registered agent's CleanUp
     * through the node-local registry, restoring the node to its clean
     * state (nominal frequency, all cores returned, uniform sampling).
     */
    void CleanUpAll();

    /** Refreshes per-agent and substrate metrics in metrics(). */
    void CollectMetrics();

    /** Sum of learning epochs completed across enabled agents. */
    std::uint64_t TotalEpochs() const;

    /** Field-wise sum of every agent runtime's counters (real and
     *  synthetic) — the node-level roll-up fleet stats build on. */
    core::RuntimeStats AggregateStats() const;

    /** Merged epoch-duration histogram across every agent on the node
     *  (virtual ns; always on). */
    telemetry::LatencyHistogram EpochLatencyHistogram() const;

    // --- Introspection ---------------------------------------------------
    const std::string& name() const { return config_.name; }
    core::AgentRegistry& registry() { return registry_; }
    InterferenceArbiter& arbiter() { return arbiter_; }
    telemetry::MetricRegistry& metrics() { return metrics_; }
    node::Node& node() { return node_; }
    node::TieredMemory& memory() { return memory_; }
    node::ChannelArray& channels() { return channels_; }
    agents::SamplingPolicy& policy() { return policy_; }
    node::VmId primary_vm() const { return primary_; }
    node::VmId elastic_vm() const { return elastic_; }
    const workloads::TailBench& primary_workload() const
    {
        return *primary_workload_;
    }
    bool started() const { return started_; }

    core::RuntimeStats OverclockStats() const;
    core::RuntimeStats HarvestStats() const;
    core::RuntimeStats MemoryStats() const;
    core::RuntimeStats MonitorStats() const;

    agents::OverclockActuator* overclock_actuator()
    {
        return overclock_actuator_.get();
    }
    agents::HarvestActuator* harvest_actuator()
    {
        return harvest_actuator_.get();
    }

    std::size_t num_synthetic_agents() const { return synthetics_.size(); }
    SyntheticAgent& synthetic_agent(std::size_t i)
    {
        return *synthetics_[i];
    }

    /** Total agents on the node (real + synthetic). */
    std::size_t num_agents() const { return slots_.size(); }

  private:
    using OverclockRuntime =
        core::SimRuntime<agents::OverclockSample, double>;
    using HarvestRuntime = core::SimRuntime<agents::HarvestSample, int>;
    using MemoryRuntime =
        core::SimRuntime<agents::ScanRound, agents::MemoryPlan>;
    using MonitorRuntime =
        core::SimRuntime<agents::MonitorRound, std::vector<double>>;

    /**
     * Type-erased handle on one enabled agent. The four runtimes have
     * heterogeneous template types; erasing them once at construction
     * lets Start/Stop/TotalEpochs/CollectMetrics (and any future
     * fleet-wide sweep) iterate agents instead of repeating a
     * per-agent block that must be kept in sync by hand.
     */
    struct AgentSlot {
        std::string name;
        std::function<void()> start;
        std::function<void()> stop;
        std::function<core::RuntimeStats()> stats;
        std::function<telemetry::LatencyHistogram()> epoch_latency;
    };

    /** Registers an agent's runtime in slots_ and the registry. */
    template <typename Runtime, typename Actuator>
    void
    AddAgentSlot(std::string name, Runtime* runtime, Actuator* actuator)
    {
        slots_.push_back({name, [runtime] { runtime->Start(); },
                          [runtime] { runtime->Stop(); },
                          [runtime] { return runtime->stats(); },
                          [runtime] {
                              return runtime->EpochLatencyHistogram();
                          }});
        registrations_.emplace_back(registry_, name,
                                    [runtime, actuator] {
                                        runtime->Stop();
                                        actuator->CleanUp();
                                    });
    }

    /** Stats of an enabled agent by name; zeros when disabled. */
    core::RuntimeStats StatsFor(const std::string& name) const;

    sim::EventQueue& queue_;
    MultiAgentNodeConfig config_;
    sim::Rng rng_;

    // Substrate (construction order matters: agents reference these).
    node::Node node_;
    node::TieredMemory memory_;
    node::ChannelArray channels_;
    agents::SamplingPolicy policy_;
    std::shared_ptr<workloads::TailBench> primary_workload_;
    std::shared_ptr<workloads::BestEffort> elastic_workload_;
    std::unique_ptr<workloads::ZipfMemoryPattern> memory_pattern_;
    node::VmId primary_ = 0;
    node::VmId elastic_ = 0;

    telemetry::MetricRegistry metrics_;
    InterferenceArbiter arbiter_;

    // Agents (models + actuators) and their runtimes.
    std::unique_ptr<agents::OverclockModel> overclock_model_;
    std::unique_ptr<agents::OverclockActuator> overclock_actuator_;
    std::unique_ptr<OverclockRuntime> overclock_runtime_;
    std::unique_ptr<agents::HarvestModel> harvest_model_;
    std::unique_ptr<agents::HarvestActuator> harvest_actuator_;
    std::unique_ptr<HarvestRuntime> harvest_runtime_;
    std::unique_ptr<agents::MemoryModel> memory_model_;
    std::unique_ptr<agents::MemoryActuator> memory_actuator_;
    std::unique_ptr<MemoryRuntime> memory_runtime_;
    std::unique_ptr<agents::MonitorModel> monitor_model_;
    std::unique_ptr<agents::MonitorActuator> monitor_actuator_;
    std::unique_ptr<MonitorRuntime> monitor_runtime_;
    std::vector<std::unique_ptr<SyntheticAgent>> synthetics_;

    /** Appends one health sample at `at` (driver-tick piggyback). */
    void SampleNodeHealth(sim::TimePoint at);

    // Substrate drivers (armed by Start()).
    sim::Rng incident_rng_;
    sim::TimePoint next_health_sample_{0};
    std::unique_ptr<sim::PeriodicTask> node_driver_;
    std::unique_ptr<sim::PeriodicTask> memory_driver_;
    std::unique_ptr<sim::PeriodicTask> channel_driver_;

    // Registry last among agent state: its registrations' cleanups run
    // first on destruction, while runtimes and actuators still exist.
    std::vector<AgentSlot> slots_;
    core::AgentRegistry registry_;
    std::vector<core::ScopedRegistration> registrations_;
    bool started_ = false;
};

}  // namespace sol::cluster
