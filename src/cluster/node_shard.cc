#include "cluster/node_shard.h"

#include <string>

#include "sim/rng.h"

namespace sol::cluster {

void
FleetStats::Accumulate(const FleetStats& other)
{
    total_agents += other.total_agents;
    total_epochs += other.total_epochs;
    total_actions += other.total_actions;
    safeguard_triggers += other.safeguard_triggers;
    arbiter_requests += other.arbiter_requests;
    conflicts_observed += other.conflicts_observed;
    conflicts_resolved += other.conflicts_resolved;
}

NodeShard::NodeShard(const NodeShardConfig& config)
    : config_(config)
{
    queue_.SetPendingLimit(config_.queue_pending_limit);
    if (config_.trace_session != nullptr) {
        // The queue is the shard's virtual clock, so every event on
        // this track carries a deterministic timestamp.
        const std::string track =
            config_.trace_track.empty()
                ? "shard" + std::to_string(config_.first_node_index)
                : config_.trace_track;
        trace_ = config_.trace_session->NewRecorder(
            track, &queue_, config_.trace_capacity);
    }
    nodes_.reserve(config_.num_nodes);
    for (std::size_t i = 0; i < config_.num_nodes; ++i) {
        const std::size_t global = config_.first_node_index + i;
        MultiAgentNodeConfig node_config = config_.node;
        node_config.name = "node" + std::to_string(global);
        node_config.seed =
            sim::DeriveStreamSeed(config_.base_seed, global);
        node_config.node_index = global;
        node_config.trace = trace_;
        nodes_.push_back(
            std::make_unique<MultiAgentNode>(queue_, node_config));
    }
}

void
NodeShard::RunUntil(sim::TimePoint horizon)
{
    // Bind the shard track for the duration of the step: arbiter spans
    // emitted from inside node events land on it, whichever worker
    // thread is stepping this shard.
    telemetry::trace::ScopedThreadRecorder bind(trace_);
    if (!started_) {
        started_ = true;
        for (std::size_t i = 0; i < nodes_.size(); ++i) {
            MultiAgentNode* node = nodes_[i].get();
            const std::size_t global = config_.first_node_index + i;
            const sim::Duration offset = config_.start_stagger * global;
            if (offset <= sim::Duration::zero()) {
                node->Start();
            } else {
                queue_.ScheduleAfter(offset, [node] { node->Start(); });
            }
        }
    }
    queue_.RunUntil(horizon);
}

void
NodeShard::Stop()
{
    for (auto& node : nodes_) {
        node->Stop();
    }
}

void
NodeShard::CleanUpAll()
{
    for (auto& node : nodes_) {
        node->CleanUpAll();
    }
}

FleetStats
NodeShard::Stats() const
{
    FleetStats stats;
    for (const auto& node : nodes_) {
        const core::RuntimeStats runtime = node->AggregateStats();
        stats.total_agents += node->num_agents();
        stats.total_epochs += runtime.epochs;
        stats.total_actions += runtime.actions_taken;
        stats.safeguard_triggers += runtime.safeguard_triggers;
        stats.arbiter_requests += node->arbiter().requests();
        stats.conflicts_observed += node->arbiter().conflicts_observed();
        stats.conflicts_resolved += node->arbiter().conflicts_resolved();
    }
    return stats;
}

void
NodeShard::CollectNodeMetrics(telemetry::MetricRegistry& out)
{
    for (auto& node : nodes_) {
        node->CollectMetrics();
        out.MergeFrom(node->metrics(), node->name());
    }
}

}  // namespace sol::cluster
