/**
 * @file
 * Shard-steppable core of the fleet drivers: a group of MultiAgentNodes
 * on one private event queue.
 *
 * PR 2's ClusterDriver stepped every node of the fleet serially on one
 * shared EventQueue — correct, but a hard scaling wall: one virtual
 * clock means one thread, no matter how many cores the host has. The
 * shard is the extraction of that loop into a self-contained unit:
 * it owns its queue (arena, virtual clock, trace hash), its contiguous
 * slice of the fleet's nodes, and the staggered-start scheduling, so a
 * driver can hold one shard (ClusterDriver — the serial case, exactly
 * as before) or many (fleet::ShardedFleetRunner — one per worker-thread
 * work item, stepped in parallel between barriers).
 *
 * Nodes never exchange events across shards — fleet nodes are
 * statistically independent by construction (per-node RNG streams) —
 * so a shard's trace depends only on the fleet seed and on *which*
 * global node indices it owns, never on which thread steps it or how
 * many sibling shards exist. That is the whole determinism argument of
 * the sharded runner (docs/FLEET.md).
 */
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cluster/multi_agent_node.h"
#include "sim/event_queue.h"
#include "telemetry/metric_registry.h"
#include "telemetry/trace.h"

namespace sol::cluster {

/** Roll-up counters across a group of nodes (shard or whole fleet). */
struct FleetStats {
    std::uint64_t total_agents = 0;  ///< Real + synthetic, all nodes.
    std::uint64_t total_epochs = 0;
    std::uint64_t total_actions = 0;
    std::uint64_t safeguard_triggers = 0;
    std::uint64_t arbiter_requests = 0;
    std::uint64_t conflicts_observed = 0;
    std::uint64_t conflicts_resolved = 0;

    /** Field-wise sum, for rolling shard stats up to fleet totals. */
    void Accumulate(const FleetStats& other);
};

/** Configuration of one shard: a contiguous slice of the fleet. */
struct NodeShardConfig {
    /** Global index of the shard's first node; node k of the shard is
     *  global node `first_node_index + k` ("node17"), and both its RNG
     *  stream and its start stagger derive from that global index, so
     *  a node behaves identically no matter how the fleet is sliced
     *  into shards. */
    std::size_t first_node_index = 0;
    std::size_t num_nodes = 0;

    /** Fleet seed; global node i runs stream DeriveStreamSeed(seed, i). */
    std::uint64_t base_seed = 1;

    /** Offset between consecutive *global* node start times. */
    sim::Duration start_stagger = sim::Millis(1);

    /** Backpressure bound on this shard's queue (0 = unlimited); see
     *  ClusterConfig::queue_pending_limit for the drop semantics. */
    std::size_t queue_pending_limit = 0;

    /**
     * Flight-recorder session the shard creates its track in (null
     * disables tracing). The shard owns one SPSC ring for everything it
     * steps: its queue serializes every node's agents on whichever
     * worker thread runs the shard, so one recorder — timestamped
     * against the shard's virtual clock, hence byte-deterministic — is
     * safe. It is also injected as every node's `trace` config, and
     * RunUntil binds it as the thread-current recorder so arbiter spans
     * land on the shard track too.
     */
    telemetry::trace::TraceSession* trace_session = nullptr;

    /** Track name for the shard's recorder; empty derives
     *  "shard<first_node_index>". */
    std::string trace_track;

    /** Ring capacity for the shard's recorder (0 = session default). */
    std::size_t trace_capacity = 0;

    /** Template applied to every node (name/seed overridden per node). */
    MultiAgentNodeConfig node;
};

/** A group of MultiAgentNodes stepped together on one virtual clock. */
class NodeShard
{
  public:
    explicit NodeShard(const NodeShardConfig& config);

    /**
     * Advances the shard to an absolute virtual time. The first call
     * schedules every node's staggered start. Horizons must be
     * non-decreasing across calls (the queue never runs backwards).
     */
    void RunUntil(sim::TimePoint horizon);

    /** Advances the shard by a relative span of virtual time. */
    void Run(sim::Duration span) { RunUntil(queue_.Now() + span); }

    /** Stops every node's agent runtimes. */
    void Stop();

    /** SRE incident response: cleans up every agent on every node. */
    void CleanUpAll();

    /** Roll-up counters across the shard's nodes. */
    FleetStats Stats() const;

    /** Merges per-node metrics (namespaced by node name) into `out`. */
    void CollectNodeMetrics(telemetry::MetricRegistry& out);

    std::size_t num_nodes() const { return nodes_.size(); }
    std::size_t first_node_index() const
    {
        return config_.first_node_index;
    }
    MultiAgentNode& node(std::size_t i) { return *nodes_[i]; }
    sim::EventQueue& queue() { return queue_; }
    const sim::EventQueue& queue() const { return queue_; }

    /** The shard's trace recorder (null when tracing is disabled). */
    telemetry::trace::TraceRecorder* trace() { return trace_; }

  private:
    NodeShardConfig config_;
    sim::EventQueue queue_;
    /** Owned by config_.trace_session; created before the nodes so it
     *  can be injected into their configs. */
    telemetry::trace::TraceRecorder* trace_ = nullptr;
    std::vector<std::unique_ptr<MultiAgentNode>> nodes_;
    bool started_ = false;
};

}  // namespace sol::cluster
