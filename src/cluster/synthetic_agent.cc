#include "cluster/synthetic_agent.h"

#include <cmath>

namespace sol::cluster {

namespace {

/** Telemetry readings are plausible within this band; injected faults
 *  land far outside it so ValidateData rejects them. */
constexpr double kValidRange = 100.0;
constexpr double kFaultValue = 1e9;

}  // namespace

SyntheticModel::SyntheticModel(const SyntheticAgentConfig& config,
                               const sim::Clock& clock)
    : config_(config),
      clock_(clock),
      rng_(sim::DeriveStreamSeed(config.seed, 0))
{
}

double
SyntheticModel::CollectData()
{
    // Mean-reverting random walk, bounded well inside the valid band.
    signal_ = 0.95 * signal_ + rng_.NextGaussian();
    if (rng_.NextBool(config_.invalid_fraction)) {
        return kFaultValue;  // Out-of-range reading (driver glitch).
    }
    return signal_;
}

bool
SyntheticModel::ValidateData(const double& data)
{
    return std::abs(data) < kValidRange;
}

void
SyntheticModel::CommitData(sim::TimePoint /*time*/, const double& data)
{
    epoch_sum_ += data;
    ++epoch_count_;
}

void
SyntheticModel::UpdateModel()
{
    if (epoch_count_ > 0) {
        model_value_ = epoch_sum_ / static_cast<double>(epoch_count_);
    }
    epoch_sum_ = 0.0;
    epoch_count_ = 0;
}

core::Prediction<double>
SyntheticModel::ModelPredict()
{
    return core::MakePrediction(model_value_, clock_.Now(),
                                config_.prediction_ttl);
}

core::Prediction<double>
SyntheticModel::DefaultPredict()
{
    return core::MakeDefaultPrediction(0.0, clock_.Now(),
                                       config_.prediction_ttl);
}

SyntheticActuator::SyntheticActuator(const SyntheticAgentConfig& config)
    : config_(config), rng_(sim::DeriveStreamSeed(config.seed, 1))
{
}

void
SyntheticActuator::TakeAction(std::optional<core::Prediction<double>> pred)
{
    const bool model_driven = pred.has_value() && !pred->is_default;
    if (model_driven && rng_.NextBool(config_.expand_fraction)) {
        if (core::AdmitActuation(governor_, config_.name, config_.domain,
                                 core::ActuationIntent::kExpand,
                                 std::abs(pred->value))) {
            holding_ = true;
            ++expands_admitted_;
            return;
        }
        ++expands_denied_;  // Denied: fall through to the safe path.
    }
    Restore();
}

void
SyntheticActuator::Restore()
{
    // Restores are always admitted; announcing one releases any hold.
    core::AdmitActuation(governor_, config_.name, config_.domain,
                         core::ActuationIntent::kRestore);
    holding_ = false;
}

core::Schedule
SyntheticAgent::MakeSchedule(const SyntheticAgentConfig& config)
{
    core::Schedule schedule;
    schedule.data_per_epoch = config.data_per_epoch;
    schedule.data_collect_interval = config.data_collect_interval;
    schedule.max_epoch_time = config.max_epoch_time;
    schedule.max_actuation_delay = config.max_actuation_delay;
    schedule.assess_actuator_interval = config.assess_actuator_interval;
    return schedule;
}

SyntheticAgent::SyntheticAgent(sim::EventQueue& queue,
                               const SyntheticAgentConfig& config,
                               core::ActuationGovernor* governor,
                               const core::RuntimeOptions& options)
    : config_(config),
      model_(config_, queue),
      actuator_(config_),
      runtime_(queue, model_, actuator_, MakeSchedule(config_), options)
{
    actuator_.SetGovernor(governor);
}

}  // namespace sol::cluster
