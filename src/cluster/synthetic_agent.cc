#include "cluster/synthetic_agent.h"

#include <algorithm>
#include <cmath>

#include "workloads/trace_driver.h"

namespace sol::cluster {

namespace {

/** Telemetry readings are plausible within this band; injected faults
 *  land far outside it so ValidateData rejects them. */
constexpr double kValidRange = 100.0;
constexpr double kFaultValue = 1e9;

/** Ceiling on SyntheticAgentConfig::period_jitter: keeps the scale
 *  factor in [0.1, 1.9] so jittered periods stay the same order of
 *  magnitude as the configured ones. */
constexpr double kMaxPeriodJitter = 0.9;

}  // namespace

SyntheticModel::SyntheticModel(const SyntheticAgentConfig& config,
                               const sim::Clock& clock)
    : config_(config),
      clock_(clock),
      rng_(sim::DeriveStreamSeed(config.seed, 0))
{
}

double
SyntheticModel::CollectData()
{
    // Mean-reverting random walk, bounded well inside the valid band.
    signal_ = 0.95 * signal_ + rng_.NextGaussian();
    double invalid_fraction = config_.invalid_fraction;
    if (config_.trace_driver != nullptr) {
        // Correlated invalid-data storms: the rate is a pure function
        // of (tenant, virtual time), so the RNG stream stays in sync
        // across runs, thread counts, and node backends.
        invalid_fraction = config_.trace_driver->InvalidRateAt(
            config_.tenant, clock_.Now(), invalid_fraction);
    }
    if (rng_.NextBool(invalid_fraction)) {
        return kFaultValue;  // Out-of-range reading (driver glitch).
    }
    return signal_;
}

bool
SyntheticModel::ValidateData(const double& data)
{
    return std::abs(data) < kValidRange;
}

void
SyntheticModel::CommitData(sim::TimePoint /*time*/, const double& data)
{
    epoch_sum_ += data;
    ++epoch_count_;
    ++epoch_commits_;
}

void
SyntheticModel::UpdateModel()
{
    if (epoch_count_ > 0) {
        model_value_ = epoch_sum_ / static_cast<double>(epoch_count_);
    }
    epoch_sum_ = 0.0;
    epoch_count_ = 0;
    epoch_commits_ = 0;
}

core::Prediction<double>
SyntheticModel::ModelPredict()
{
    return core::MakePrediction(model_value_, clock_.Now(),
                                config_.prediction_ttl);
}

core::Prediction<double>
SyntheticModel::DefaultPredict()
{
    epoch_commits_ = 0;  // Epoch exit (see header); harmless double
                         // reset on the interception path.
    return core::MakeDefaultPrediction(0.0, clock_.Now(),
                                       config_.prediction_ttl);
}

bool
SyntheticModel::AssessModel()
{
    // Mid-run model degradation: scripted by storm window, recovered
    // the moment the window closes (the engine keeps the model
    // learning and re-assesses every epoch).
    return config_.trace_driver == nullptr ||
           !config_.trace_driver->ModelDegradedAt(config_.tenant,
                                                  clock_.Now());
}

bool
SyntheticModel::ShortCircuitEpoch()
{
    if (config_.trace_driver == nullptr) {
        return false;
    }
    const int target = config_.trace_driver->EpochTargetAt(
        config_.tenant, clock_.Now(), config_.data_per_epoch);
    if (target >= config_.data_per_epoch) {
        // Full demand: let the engine's own completeness check end the
        // epoch (the engine tests ShortCircuitEpoch *before* it, so
        // returning true here would turn every epoch into a
        // short-circuit and suppress model-driven actuation entirely).
        return false;
    }
    return epoch_commits_ >= static_cast<std::uint64_t>(target);
}

SyntheticActuator::SyntheticActuator(const SyntheticAgentConfig& config)
    : config_(config), rng_(sim::DeriveStreamSeed(config.seed, 1))
{
}

void
SyntheticActuator::TakeAction(std::optional<core::Prediction<double>> pred)
{
    const bool model_driven = pred.has_value() && !pred->is_default;
    double expand_fraction = config_.expand_fraction;
    if (config_.trace_driver != nullptr && clock_ != nullptr) {
        // Actuation pressure follows demand: flash crowds raise the
        // expand probability (arbiter conflicts/denials spike), quiet
        // periods lower it.
        expand_fraction = config_.trace_driver->ExpandFractionAt(
            config_.tenant, clock_->Now(), expand_fraction);
    }
    if (model_driven && rng_.NextBool(expand_fraction)) {
        if (core::AdmitActuation(governor_, config_.name, config_.domain,
                                 core::ActuationIntent::kExpand,
                                 std::abs(pred->value))) {
            holding_.store(true, std::memory_order_relaxed);
            expands_admitted_.fetch_add(1, std::memory_order_relaxed);
            return;
        }
        // Denied: fall through to the safe path.
        expands_denied_.fetch_add(1, std::memory_order_relaxed);
    }
    Restore();
}

bool
SyntheticActuator::AssessPerformance()
{
    // Scripted failure window: assessments are 1-indexed, so a config
    // of {from=3, count=2} fails exactly the 3rd and 4th assessment.
    ++assessments_seen_;
    const bool scripted_ok =
        config_.fail_assessments_from == 0 ||
        assessments_seen_ < config_.fail_assessments_from ||
        assessments_seen_ >= config_.fail_assessments_from +
                                 config_.fail_assessments_count;
    // Storm-scripted failures (cascading safeguard trips): fail while
    // a fail_actuator window covers this tenant, recover after it.
    const bool storm_failing =
        config_.trace_driver != nullptr && clock_ != nullptr &&
        config_.trace_driver->ActuatorFailingAt(config_.tenant,
                                                clock_->Now());
    return scripted_ok && !storm_failing;
}

void
SyntheticActuator::Restore()
{
    // Restores are always admitted; announcing one releases any hold.
    core::AdmitActuation(governor_, config_.name, config_.domain,
                         core::ActuationIntent::kRestore);
    holding_.store(false, std::memory_order_relaxed);
}

core::Schedule
MakeSyntheticSchedule(const SyntheticAgentConfig& config)
{
    core::Schedule schedule;
    schedule.data_per_epoch = config.data_per_epoch;
    schedule.data_collect_interval = config.data_collect_interval;
    schedule.max_epoch_time = config.max_epoch_time;
    schedule.max_actuation_delay = config.max_actuation_delay;
    schedule.assess_actuator_interval = config.assess_actuator_interval;

    // Heterogeneous schedules: both draws come from a dedicated seed
    // stream, so enabling them changes nothing about the telemetry or
    // actuation streams, and leaving both off skips the RNG entirely
    // (prior PRs' trace hashes depend on that).
    if (config.period_jitter > 0.0 || config.burst_fraction > 0.0) {
        sim::Rng rng(sim::DeriveStreamSeed(config.seed, 2));
        if (config.period_jitter > 0.0) {
            // Clamp so a misread knob (e.g. 1.0 as "full jitter")
            // cannot scale a period to ~zero and storm the queue.
            const double jitter =
                std::min(config.period_jitter, kMaxPeriodJitter);
            const double factor =
                1.0 + jitter * (2.0 * rng.NextDouble() - 1.0);
            const auto scale = [factor](sim::Duration d) {
                const auto scaled = static_cast<std::int64_t>(
                    static_cast<double>(d.count()) * factor);
                return std::max<sim::Duration>(sim::Nanos(scaled),
                                               sim::Nanos(1));
            };
            schedule.data_collect_interval =
                scale(schedule.data_collect_interval);
            schedule.max_epoch_time = scale(schedule.max_epoch_time);
            schedule.max_actuation_delay =
                scale(schedule.max_actuation_delay);
            schedule.assess_actuator_interval =
                scale(schedule.assess_actuator_interval);
        }
        if (config.burst_fraction > 0.0 && config.burst_factor > 1.0 &&
            rng.NextBool(config.burst_fraction)) {
            schedule.data_per_epoch = std::max(
                1, static_cast<int>(static_cast<double>(
                       schedule.data_per_epoch) *
                   config.burst_factor));
            const auto dense = static_cast<std::int64_t>(
                static_cast<double>(
                    schedule.data_collect_interval.count()) /
                config.burst_factor);
            schedule.data_collect_interval =
                std::max<sim::Duration>(sim::Nanos(dense),
                                        sim::Nanos(1));
        }
    }

    // Zipfian tenant popularity: cold tenants collect up to
    // cadence_stretch x slower than hot ones. A pure construction-time
    // scale (no RNG draw), identical in both node backends.
    if (config.trace_driver != nullptr) {
        const double scale =
            config.trace_driver->CadenceScale(config.tenant);
        if (scale > 1.0) {
            const auto stretched = static_cast<std::int64_t>(
                static_cast<double>(
                    schedule.data_collect_interval.count()) *
                scale);
            schedule.data_collect_interval =
                std::max<sim::Duration>(sim::Nanos(stretched),
                                        sim::Nanos(1));
        }
    }
    return schedule;
}

SyntheticAgent::SyntheticAgent(sim::EventQueue& queue,
                               const SyntheticAgentConfig& config,
                               core::ActuationGovernor* governor,
                               const core::RuntimeOptions& options)
    : config_(config),
      model_(config_, queue),
      actuator_(config_),
      runtime_(queue, model_, actuator_, MakeSyntheticSchedule(config_),
               options)
{
    actuator_.SetGovernor(governor);
    actuator_.SetClock(&queue);
}

}  // namespace sol::cluster
