/**
 * @file
 * Cheap synthetic agents for fleet-realistic node pressure.
 *
 * The paper's production nodes run ~77 agents concurrently; this repo's
 * four real agents (SmartOverclock/Harvest/Memory/Monitor) exercise the
 * paper's *learning* logic, but four registrations cannot reproduce the
 * registry, arbiter, and event-queue pressure of a production node. A
 * SyntheticAgent is the filler: a complete Model + Actuator + Schedule
 * triple with trivial O(1) logic — a random-walk telemetry stream, a
 * running-mean "model", and an actuator that occasionally spends shared
 * headroom through the node's ActuationGovernor — so 70+ of them run in
 * their own SimRuntimes at realistic cadences for the cost of a few
 * arithmetic ops per event.
 *
 * Everything is seeded: two derived RNG streams (telemetry and actuation
 * coin flips) make a fleet of synthetic agents bit-reproducible from the
 * node seed, which the million-event determinism checks in
 * bench/micro_fleet and tests/cluster_test.cc rely on.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "core/actuation.h"
#include "core/actuator.h"
#include "core/model.h"
#include "core/prediction.h"
#include "core/runtime_options.h"
#include "core/schedule.h"
#include "core/sim_runtime.h"
#include "sim/event_queue.h"
#include "sim/rng.h"

namespace sol::workloads {
class TraceDriver;
}  // namespace sol::workloads

namespace sol::cluster {

/** Tunables for one synthetic agent. */
struct SyntheticAgentConfig {
    /** Registry/metric name ("synthetic12"). */
    std::string name = "synthetic";

    /** Seed for the agent's derived RNG streams. */
    std::uint64_t seed = 1;

    // --- Cadence (cheap but deployment-shaped) -------------------------
    sim::Duration data_collect_interval = sim::Millis(10);
    int data_per_epoch = 5;
    sim::Duration max_epoch_time = sim::Millis(200);
    sim::Duration max_actuation_delay = sim::Millis(250);
    sim::Duration assess_actuator_interval = sim::Seconds(1);
    sim::Duration prediction_ttl = sim::Millis(200);

    // --- Heterogeneity (defaults off: uniform fleet cadence, so
    // --- existing seeded trace hashes stay byte-stable) ----------------
    /**
     * ± fractional jitter applied to this agent's schedule periods,
     * drawn once at construction from a derived RNG stream (seed
     * stream 2). 0.15 lands each agent's cadence uniformly in
     * [0.85, 1.15]× the configured periods, so a fleet of synthetics
     * stops beating in lockstep and shards see non-uniform load.
     * 0 (default) keeps the exact schedule previous PRs hashed;
     * values above 0.9 are clamped to 0.9 so a period can never be
     * scaled toward zero (event storm).
     */
    double period_jitter = 0.0;

    /**
     * Probability (same derived stream) that this agent runs a burst
     * profile: each epoch collects `burst_factor`× more samples at a
     * `burst_factor`× shorter interval — the same epoch length, but
     * the event traffic arrives in dense bursts with quiet actuation
     * gaps between them. 0 (default) disables burst phases.
     */
    double burst_fraction = 0.0;
    double burst_factor = 4.0;

    // --- Behavior ------------------------------------------------------
    /** Fraction of collected samples injected out-of-range, so the
     *  data-validation safeguard sees steady rejection traffic. */
    double invalid_fraction = 0.02;

    /** Probability a model-driven action announces a kExpand on
     *  `domain` (arbiter pressure); otherwise the agent restores. */
    double expand_fraction = 0.25;

    /** Shared-resource domain this agent contends on. */
    core::ActuationDomain domain = core::ActuationDomain::kTelemetryBudget;

    // --- Demand modulation (defaults off) ------------------------------
    /**
     * Trace-driven demand oracle (workloads/trace_driver.h); null (the
     * default) keeps the flat behavior above, bit-for-bit. When set,
     * the agent evaluates its invalid-read probability, expand
     * probability, per-epoch sample target, and model/actuator health
     * as pure functions of virtual time — so a modulated fleet stays
     * exactly as deterministic as an unmodulated one. Not owned; must
     * outlive the agent.
     */
    const workloads::TraceDriver* trace_driver = nullptr;

    /** Fleet-global tenant index the driver keys popularity and storm
     *  ranges on (node_index * synthetics_per_node + agent index). */
    std::size_t tenant = 0;

    // --- Scripted faults (defaults off) --------------------------------
    /**
     * 1-based index of the first actuator assessment that fails (0 =
     * never fail). With fail_assessments_count, scripts a deterministic
     * safeguard trip at a known point in the run — the parity suite
     * uses it to trip the safeguard while the agent holds a domain.
     */
    std::uint64_t fail_assessments_from = 0;
    std::uint64_t fail_assessments_count = 1;
};

/** Builds the (possibly jittered/bursty) schedule a synthetic agent
 *  runs on. Exposed so ThreadedMultiAgentNode hosts the same agent
 *  logic on a ThreadedRuntime with an identical cadence. */
core::Schedule MakeSyntheticSchedule(const SyntheticAgentConfig& config);

/** Random-walk telemetry + running-mean model; O(1) per call. */
class SyntheticModel : public core::Model<double, double>
{
  public:
    SyntheticModel(const SyntheticAgentConfig& config,
                   const sim::Clock& clock);

    double CollectData() override;
    bool ValidateData(const double& data) override;
    void CommitData(sim::TimePoint time, const double& data) override;
    void UpdateModel() override;
    core::Prediction<double> ModelPredict() override;
    core::Prediction<double> DefaultPredict() override;
    bool AssessModel() override;
    bool ShortCircuitEpoch() override;

  private:
    const SyntheticAgentConfig& config_;
    const sim::Clock& clock_;
    sim::Rng rng_;
    double signal_ = 0.0;        ///< Random-walk telemetry level.
    double epoch_sum_ = 0.0;
    std::uint64_t epoch_count_ = 0;
    double model_value_ = 0.0;   ///< Snapshot taken by UpdateModel.
    /** Valid samples committed this epoch. Unlike epoch_count_ (which
     *  deliberately carries over deadline-truncated epochs so the mean
     *  keeps converging), this resets on *every* epoch exit — both
     *  UpdateModel and DefaultPredict, which together cover all of
     *  EpochEngine::FinishEpoch's paths — because the demand-driven
     *  ShortCircuitEpoch target is a per-epoch quota. */
    std::uint64_t epoch_commits_ = 0;
};

/**
 * Actuator that turns predictions into governor traffic: model-driven
 * actions flip a seeded coin to spend headroom (kExpand on the
 * configured domain) and otherwise return to baseline (kRestore).
 * Denials take the conservative restore path, like the real actuators.
 */
class SyntheticActuator : public core::Actuator<double>
{
  public:
    explicit SyntheticActuator(const SyntheticAgentConfig& config);

    /** Installs the node's admission control (may be nullptr). */
    void SetGovernor(core::ActuationGovernor* governor)
    {
        governor_ = governor;
    }

    /** Installs the agent's time source (may be nullptr). Only needed
     *  when config.trace_driver is set: the actuator evaluates its
     *  demand-scaled expand probability and storm-scripted assessment
     *  failures at clock->Now(). */
    void SetClock(const sim::Clock* clock) { clock_ = clock; }

    void TakeAction(std::optional<core::Prediction<double>> pred) override;
    bool AssessPerformance() override;
    void Mitigate() override { Restore(); }
    void CleanUp() override { Restore(); }

    // Counters are atomic so a parity harness (or the node's metric
    // sweep) can read them while the agent's actuator thread runs.
    bool holding() const
    {
        return holding_.load(std::memory_order_relaxed);
    }
    std::uint64_t expands_admitted() const
    {
        return expands_admitted_.load(std::memory_order_relaxed);
    }
    std::uint64_t expands_denied() const
    {
        return expands_denied_.load(std::memory_order_relaxed);
    }

  private:
    void Restore();

    const SyntheticAgentConfig& config_;
    sim::Rng rng_;
    core::ActuationGovernor* governor_ = nullptr;
    const sim::Clock* clock_ = nullptr;
    std::atomic<bool> holding_{false};
    std::atomic<std::uint64_t> expands_admitted_{0};
    std::atomic<std::uint64_t> expands_denied_{0};
    std::uint64_t assessments_seen_ = 0;  ///< Actuator-thread only.
};

/** One synthetic agent: model + actuator + SimRuntime, ready to Start. */
class SyntheticAgent
{
  public:
    using Runtime = core::SimRuntime<double, double>;

    /**
     * @param queue Shared event queue (owned by the node/driver).
     * @param config Agent tunables; `config.name` must be unique per
     *   node (it keys the registry and metric namespace).
     * @param governor Node admission control; nullptr runs ungoverned.
     * @param options Shared runtime ablation/fault switches.
     */
    SyntheticAgent(sim::EventQueue& queue,
                   const SyntheticAgentConfig& config,
                   core::ActuationGovernor* governor,
                   const core::RuntimeOptions& options);

    const std::string& name() const { return config_.name; }
    Runtime& runtime() { return runtime_; }
    SyntheticActuator& actuator() { return actuator_; }

  private:
    SyntheticAgentConfig config_;
    SyntheticModel model_;
    SyntheticActuator actuator_;
    Runtime runtime_;
};

}  // namespace sol::cluster
