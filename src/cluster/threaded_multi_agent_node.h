/**
 * @file
 * One node running the paper's full agent complement on real threads.
 *
 * MultiAgentNode (multi_agent_node.h) hosts every agent as a SimRuntime
 * continuation on one event queue: intra-node concurrency is simulated,
 * never exercised. ThreadedMultiAgentNode is the credibility leg behind
 * those numbers: the same agents — the four real paper agents plus
 * synthetic fillers up to the paper's ~77 per node — each hosted on its
 * own core::ThreadedRuntime, so 2×77 OS threads announce actuation
 * intents into the shared InterferenceArbiter genuinely concurrently.
 *
 * What maps across the two node variants, by construction:
 *   - Agent logic is shared, not reimplemented: the identical Model and
 *     Actuator objects run under both runtimes (core::EpochEngine owns
 *     the epoch semantics in both, see epoch_engine.h), and synthetics
 *     draw from the same per-agent seed streams, so a scripted scenario
 *     is the same scenario on either node.
 *   - The arbiter is the same object with the same policy; it is
 *     hardened for concurrent admission (interference_arbiter.h), and
 *     its decisions depend only on admission order.
 *   - Time is a ClockPolicy template parameter. Deployments use the
 *     default SteadyClockPolicy; the node parity suite
 *     (tests/node_parity_test.cc) instantiates the node over
 *     core::ManualClock and serializes every agent's tick grants into
 *     one global virtual timeline, which pins the admission order to
 *     the event queue's and makes aggregated RuntimeStats and arbiter
 *     counters comparable field-for-field.
 *
 * The real four agents share mutable node substrate (VMs, tiered
 * memory, telemetry channels) that is single-threaded by design;
 * LockedModel/LockedActuator decorators serialize every substrate
 * touch on one node-level mutex, and a driver thread advances the
 * substrate at node_tick cadence under the same mutex. Synthetic agents
 * touch no substrate and run entirely unlocked — they contend only
 * inside the arbiter, which is the contention the paper studies.
 *
 * Observability: with config.trace_session set, the node creates one
 * flight-recorder track per thread — "<node>.driver", "<node>.control",
 * and "<node>.<agent>.model" / "<node>.<agent>.actuator" per agent —
 * keeping every SPSC ring single-producer across 2×77 agent threads.
 * Agent tracks read the agent's own PolicyClock, so under ManualClock
 * the trace timestamps are virtual and deterministic. Lifecycle events
 * (node/agent start/stop, CleanUpAll) land on the control track, which
 * assumes a single controlling thread — the same assumption
 * Start/Stop/StopAgent already make.
 */
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "agents/smartharvest/smartharvest.h"
#include "agents/smartmemory/smartmemory.h"
#include "agents/smartmonitor/smartmonitor.h"
#include "agents/smartoverclock/smartoverclock.h"
#include "cluster/interference_arbiter.h"
#include "cluster/multi_agent_node.h"
#include "cluster/synthetic_agent.h"
#include "core/agent_registry.h"
#include "core/sync.h"
#include "core/thread_annotations.h"
#include "core/threaded_runtime.h"
#include "node/channel_array.h"
#include "node/node.h"
#include "node/tiered_memory.h"
#include "sim/rng.h"
#include "sim/time.h"
#include "telemetry/metric_registry.h"
#include "telemetry/trace.h"
#include "workloads/best_effort.h"
#include "workloads/memory_patterns.h"
#include "workloads/tailbench.h"

namespace sol::cluster {

/**
 * sim::Clock view of a ThreadedRuntime's ClockPolicy.
 *
 * Models and actuators take `const sim::Clock&` at construction, but a
 * runtime's ClockPolicy only exists once the runtime does — and the
 * runtime needs the model first. The adapter breaks the cycle: build
 * the agent against an unbound PolicyClock, build the runtime, then
 * Bind. Reads before Bind return time zero (nothing reads the clock
 * before Start).
 */
template <typename ClockPolicy>
class PolicyClock : public sim::Clock
{
  public:
    void Bind(const ClockPolicy* policy) { policy_ = policy; }

    sim::TimePoint
    Now() const override
    {
        return policy_ != nullptr ? policy_->Now() : sim::TimePoint{};
    }

  private:
    const ClockPolicy* policy_ = nullptr;
};

/** Model decorator serializing every call on a shared mutex (the four
 *  real agents' substrate objects are single-threaded). */
template <typename D, typename P>
class LockedModel : public core::Model<D, P>
{
  public:
    LockedModel(core::Model<D, P>& inner, core::Mutex& mutex)
        : inner_(inner), mutex_(mutex)
    {
    }

    D
    CollectData() override
    {
        core::MutexLock lock(mutex_);
        return inner_.CollectData();
    }

    bool
    ValidateData(const D& data) override
    {
        core::MutexLock lock(mutex_);
        return inner_.ValidateData(data);
    }

    void
    CommitData(sim::TimePoint time, const D& data) override
    {
        core::MutexLock lock(mutex_);
        inner_.CommitData(time, data);
    }

    void
    UpdateModel() override
    {
        core::MutexLock lock(mutex_);
        inner_.UpdateModel();
    }

    core::Prediction<P>
    ModelPredict() override
    {
        core::MutexLock lock(mutex_);
        return inner_.ModelPredict();
    }

    core::Prediction<P>
    DefaultPredict() override
    {
        core::MutexLock lock(mutex_);
        return inner_.DefaultPredict();
    }

    bool
    AssessModel() override
    {
        core::MutexLock lock(mutex_);
        return inner_.AssessModel();
    }

    bool
    ShortCircuitEpoch() override
    {
        core::MutexLock lock(mutex_);
        return inner_.ShortCircuitEpoch();
    }

  private:
    core::Model<D, P>& inner_;
    core::Mutex& mutex_;
};

/** Actuator decorator, same discipline as LockedModel. The governor is
 *  called while the lock is held; the arbiter is thread-safe and never
 *  calls back out, so the lock order is always node → arbiter. */
template <typename P>
class LockedActuator : public core::Actuator<P>
{
  public:
    LockedActuator(core::Actuator<P>& inner, core::Mutex& mutex)
        : inner_(inner), mutex_(mutex)
    {
    }

    void
    TakeAction(std::optional<core::Prediction<P>> pred) override
    {
        core::MutexLock lock(mutex_);
        inner_.TakeAction(std::move(pred));
    }

    bool
    AssessPerformance() override
    {
        core::MutexLock lock(mutex_);
        return inner_.AssessPerformance();
    }

    void
    Mitigate() override
    {
        core::MutexLock lock(mutex_);
        inner_.Mitigate();
    }

    void
    CleanUp() override
    {
        core::MutexLock lock(mutex_);
        inner_.CleanUp();
    }

  private:
    core::Actuator<P>& inner_;
    core::Mutex& mutex_;
};

/** One synthetic agent hosted on a ThreadedRuntime: the same
 *  SyntheticModel/SyntheticActuator logic (and seed streams) as the
 *  SimRuntime-hosted SyntheticAgent, on real threads. */
template <typename ClockPolicy>
class ThreadedSyntheticAgent
{
  public:
    using Runtime = core::ThreadedRuntime<double, double, ClockPolicy>;

    ThreadedSyntheticAgent(const SyntheticAgentConfig& config,
                           core::ActuationGovernor* governor,
                           const core::RuntimeOptions& options)
        : config_(config),
          model_(config_, clock_),
          actuator_(config_),
          runtime_(model_, actuator_, MakeSyntheticSchedule(config_),
                   options)
    {
        clock_.Bind(&runtime_.clock());
        actuator_.SetGovernor(governor);
        actuator_.SetClock(&clock_);
    }

    const std::string& name() const { return config_.name; }
    Runtime& runtime() { return runtime_; }
    SyntheticActuator& actuator() { return actuator_; }

    /** The agent's PolicyClock — trace tracks timestamp against it so
     *  ManualClock runs get virtual, deterministic timestamps. */
    const sim::Clock& clock() const { return clock_; }

  private:
    SyntheticAgentConfig config_;
    PolicyClock<ClockPolicy> clock_;  // Before model_: it captures it.
    SyntheticModel model_;
    SyntheticActuator actuator_;
    Runtime runtime_;
};

/**
 * All agents of one node, each on its own ThreadedRuntime.
 *
 * Reuses MultiAgentNodeConfig wholesale — same substrate sizing, agent
 * selection, synthetic fleet, arbiter policy, and seed derivation — so
 * one config describes the same node under either execution backend.
 *
 * @tparam ClockPolicy Per-agent time source (every runtime gets its
 *   own instance; tests reach them via agent_clock()).
 */
template <typename ClockPolicy = core::SteadyClockPolicy>
class ThreadedMultiAgentNode
{
  public:
    explicit ThreadedMultiAgentNode(MultiAgentNodeConfig config)
        : config_(std::move(config)),
          rng_(sim::DeriveStreamSeed(config_.seed, 0)),
          node_(MakeNodeConfig()),
          memory_(config_.memory_batches, config_.fast_tier_batches),
          channels_(config_.num_channels, config_.channel_visibility),
          policy_(config_.num_channels),
          arbiter_(config_.arbiter,
                   telemetry::MetricScope(metrics_, "arbiter")),
          incident_rng_(sim::DeriveStreamSeed(config_.seed, 1))
    {
        // Driver/control tracks first, then agent tracks in build
        // order: creation order fixes the tid order in the trace.
        if (config_.trace_session != nullptr) {
            driver_trace_ = config_.trace_session->NewRecorder(
                config_.name + ".driver", &trace_clock_);
            control_trace_ = config_.trace_session->NewRecorder(
                config_.name + ".control", &trace_clock_);
        }
        BuildSubstrate();
        BuildRealAgents();
        BuildSynthetics();
    }

    ~ThreadedMultiAgentNode()
    {
        Stop();
        StopDriver();
        // registrations_ destruct first (cleanups run against live
        // runtimes/actuators), mirroring MultiAgentNode's member order.
    }

    ThreadedMultiAgentNode(const ThreadedMultiAgentNode&) = delete;
    ThreadedMultiAgentNode& operator=(const ThreadedMultiAgentNode&) =
        delete;

    /** Starts the substrate driver (if any real agent is enabled) and
     *  every agent's runtime threads. */
    void
    Start()
    {
        if (started_) {
            return;
        }
        started_ = true;
        if (control_trace_ != nullptr) {
            control_trace_->Instant("node_start", "node");
        }
        if (has_real_agents_ && !driver_running_.exchange(true)) {
            driver_thread_ = std::thread([this] { DriverLoop(); });
        }
        for (const AgentSlot& slot : slots_) {
            slot.start();
        }
    }

    /** Stops every agent runtime (the driver keeps the substrate
     *  advancing, as on the simulated node). */
    void
    Stop()
    {
        for (const AgentSlot& slot : slots_) {
            slot.stop();
        }
        if (started_ && control_trace_ != nullptr) {
            control_trace_->Instant("node_stop", "node");
        }
        started_ = false;
    }

    /** Stops/starts one agent's runtime by name (no-op on unknown
     *  names) — an SRE restarting a single agent while its 76 peers
     *  keep running. */
    void
    StopAgent(const std::string& name)
    {
        for (const AgentSlot& slot : slots_) {
            if (slot.name == name) {
                slot.stop();
                if (control_trace_ != nullptr) {
                    control_trace_->Instant("agent_stop", "node", {},
                                            "agent", name);
                }
            }
        }
    }

    void
    StartAgent(const std::string& name)
    {
        for (const AgentSlot& slot : slots_) {
            if (slot.name == name) {
                slot.start();
                if (control_trace_ != nullptr) {
                    control_trace_->Instant("agent_start", "node", {},
                                            "agent", name);
                }
            }
        }
    }

    /** SRE incident response via the node-local registry. */
    void
    CleanUpAll()
    {
        if (control_trace_ != nullptr) {
            control_trace_->Instant("cleanup_all", "node");
        }
        registry_.CleanUpAll();
    }

    /** Refreshes per-agent runtime gauges, the arbiter's counters, and
     *  (when real agents run) the substrate gauges in metrics(). */
    void
    CollectMetrics()
    {
        for (const AgentSlot& slot : slots_) {
            WriteAgentRuntimeStats(
                telemetry::MetricScope(metrics_, slot.name),
                slot.stats());
        }
        arbiter_.WriteMetrics();

        telemetry::MetricScope node_scope(metrics_, "node");
        if (has_real_agents_) {
            core::MutexLock lock(substrate_mutex_);
            node_scope.SetGauge("primary_p99_ms",
                                primary_workload_->PerformanceValue());
            node_scope.SetGauge(
                "primary_completed_requests",
                static_cast<double>(
                    primary_workload_->completed_requests()));
            node_scope.SetGauge("harvested_core_seconds",
                                elastic_workload_->core_seconds());
            node_scope.SetGauge("energy_joules", node_.EnergyJoules());
            node_scope.SetGauge("primary_freq_ghz",
                                node_.VmFrequency(primary_));
            node_scope.SetGauge("memory_remote_fraction",
                                memory_.stats().RemoteFraction());
            node_scope.SetGauge("incident_coverage",
                                channels_.stats().Coverage());
        }
        node_scope.SetGauge("total_epochs",
                            static_cast<double>(TotalEpochs()));
        const telemetry::LatencyHistogram epoch_hist =
            EpochLatencyHistogram();
        if (!epoch_hist.empty()) {
            // Snapshot-overwrite, so repeated collections stay
            // idempotent (same rule as the arbiter's histograms).
            node_scope.SetHistogram("epoch_ns", epoch_hist);
        }
    }

    /** Merged epoch-duration histogram across every agent on the node
     *  (ns in the agents' ClockPolicy timebase; always on). */
    telemetry::LatencyHistogram
    EpochLatencyHistogram() const
    {
        telemetry::LatencyHistogram merged;
        for (const AgentSlot& slot : slots_) {
            merged.Merge(slot.epoch_latency());
        }
        return merged;
    }

    std::uint64_t
    TotalEpochs() const
    {
        std::uint64_t epochs = 0;
        for (const AgentSlot& slot : slots_) {
            epochs += slot.stats().epochs;
        }
        return epochs;
    }

    /** Field-wise sum of every agent runtime's counters — the roll-up
     *  the node parity suite compares against MultiAgentNode's. */
    core::RuntimeStats
    AggregateStats() const
    {
        core::RuntimeStats total;
        for (const AgentSlot& slot : slots_) {
            total.Accumulate(slot.stats());
        }
        return total;
    }

    /** One agent's stats by name (zeros for unknown names). */
    core::RuntimeStats
    AgentStats(const std::string& name) const
    {
        for (const AgentSlot& slot : slots_) {
            if (slot.name == name) {
                return slot.stats();
            }
        }
        return core::RuntimeStats{};
    }

    // --- Introspection ---------------------------------------------------
    const std::string& name() const { return config_.name; }
    core::AgentRegistry& registry() { return registry_; }
    InterferenceArbiter& arbiter() { return arbiter_; }
    telemetry::MetricRegistry& metrics() { return metrics_; }
    bool started() const { return started_; }

    /** Total agents on the node (real + synthetic). */
    std::size_t num_agents() const { return slots_.size(); }
    std::size_t num_synthetic_agents() const { return synthetics_.size(); }
    ThreadedSyntheticAgent<ClockPolicy>&
    synthetic_agent(std::size_t i)
    {
        return *synthetics_[i];
    }

    /** Agent names in slot order (real agents first, then synthetics —
     *  the same order as MultiAgentNode builds). */
    std::vector<std::string>
    agent_names() const
    {
        std::vector<std::string> names;
        names.reserve(slots_.size());
        for (const AgentSlot& slot : slots_) {
            names.push_back(slot.name);
        }
        return names;
    }

    /** Agent i's time source — the parity harness drives each agent's
     *  ManualClock through this. */
    ClockPolicy& agent_clock(std::size_t i) { return *slots_[i].clock; }

  private:
    using OverclockRuntime =
        core::ThreadedRuntime<agents::OverclockSample, double,
                              ClockPolicy>;
    using HarvestRuntime =
        core::ThreadedRuntime<agents::HarvestSample, int, ClockPolicy>;
    using MemoryRuntime =
        core::ThreadedRuntime<agents::ScanRound, agents::MemoryPlan,
                              ClockPolicy>;
    using MonitorRuntime =
        core::ThreadedRuntime<agents::MonitorRound, std::vector<double>,
                              ClockPolicy>;

    /** Type-erased handle on one agent (see MultiAgentNode::AgentSlot);
     *  additionally exposes the runtime's clock for lockstep tests. */
    struct AgentSlot {
        std::string name;
        std::function<void()> start;
        std::function<void()> stop;
        std::function<core::RuntimeStats()> stats;
        std::function<telemetry::LatencyHistogram()> epoch_latency;
        ClockPolicy* clock = nullptr;
    };

    node::NodeConfig
    MakeNodeConfig() const
    {
        node::NodeConfig node_config;
        node_config.total_cores = config_.total_cores;
        return node_config;
    }

    void
    BuildSubstrate()
    {
        workloads::TailBenchConfig primary_config =
            workloads::ImageDnnConfig(
                sim::DeriveStreamSeed(config_.seed, 2));
        primary_workload_ =
            std::make_shared<workloads::TailBench>(primary_config);
        elastic_workload_ = std::make_shared<workloads::BestEffort>();
        primary_ = node_.AddVm(
            node::VmConfig{"primary", primary_config.vcpus},
            primary_workload_);
        elastic_ = node_.AddVm(
            node::VmConfig{"elastic", primary_config.vcpus},
            elastic_workload_);
        node_.GrantCores(elastic_, 0);  // Nothing harvested yet.

        workloads::ZipfMemoryConfig pattern_config =
            workloads::ObjectStoreMemConfig(
                sim::DeriveStreamSeed(config_.seed, 3));
        pattern_config.num_batches = config_.memory_batches;
        memory_pattern_ = std::make_unique<workloads::ZipfMemoryPattern>(
            pattern_config);

        for (node::ChannelId c = 0; c < channels_.num_channels(); ++c) {
            channels_.SetIncidentRate(c, config_.cold_rate_per_sec);
        }
        for (std::size_t picked = 0; picked < config_.hot_channels;) {
            const auto c = static_cast<node::ChannelId>(
                rng_.NextBelow(config_.num_channels));
            if (channels_.IncidentRate(c) < config_.hot_rate_per_sec) {
                channels_.SetIncidentRate(c, config_.hot_rate_per_sec);
                ++picked;
            }
        }
    }

    /** Registers an agent's runtime in slots_ and the registry. */
    template <typename Runtime, typename Actuator>
    void
    AddAgentSlot(std::string name, Runtime* runtime, Actuator* actuator)
    {
        slots_.push_back({name, [runtime] { runtime->Start(); },
                          [runtime] { runtime->Stop(); },
                          [runtime] { return runtime->stats(); },
                          [runtime] {
                              return runtime->EpochLatencyHistogram();
                          },
                          &runtime->clock()});
        registrations_.emplace_back(registry_, name,
                                    [runtime, actuator] {
                                        runtime->Stop();
                                        actuator->CleanUp();
                                    });
    }

    /**
     * Creates the agent's two SPSC tracks — "<node>.<agent>.model" and
     * "<node>.<agent>.actuator" — timestamped against the agent's own
     * clock, and attaches them to its runtime. No-op without a trace
     * session.
     */
    template <typename Runtime>
    void
    AttachAgentTrace(const std::string& agent_name, Runtime* runtime,
                     const sim::Clock* clock)
    {
        if (config_.trace_session == nullptr) {
            return;
        }
        const std::string base = config_.name + "." + agent_name;
        runtime->SetTraceRecorders(
            config_.trace_session->NewRecorder(base + ".model", clock),
            config_.trace_session->NewRecorder(base + ".actuator",
                                               clock));
    }

    void
    BuildRealAgents()
    {
        using sim::DeriveStreamSeed;
        if (config_.run_overclock) {
            agents::SmartOverclockConfig cfg = config_.overclock;
            cfg.seed = DeriveStreamSeed(config_.seed, 4);
            overclock_clock_ =
                std::make_unique<PolicyClock<ClockPolicy>>();
            overclock_model_ = std::make_unique<agents::OverclockModel>(
                node_, primary_, *overclock_clock_, cfg);
            overclock_actuator_ =
                std::make_unique<agents::OverclockActuator>(
                    node_, primary_, *overclock_clock_, cfg);
            overclock_actuator_->SetGovernor(&arbiter_);
            overclock_locked_model_ = std::make_unique<
                LockedModel<agents::OverclockSample, double>>(
                *overclock_model_, substrate_mutex_);
            overclock_locked_actuator_ =
                std::make_unique<LockedActuator<double>>(
                    *overclock_actuator_, substrate_mutex_);
            overclock_runtime_ = std::make_unique<OverclockRuntime>(
                *overclock_locked_model_, *overclock_locked_actuator_,
                agents::SmartOverclockSchedule(), config_.runtime);
            overclock_clock_->Bind(&overclock_runtime_->clock());
            AttachAgentTrace(agents::kSmartOverclockName,
                             overclock_runtime_.get(),
                             overclock_clock_.get());
            AddAgentSlot(agents::kSmartOverclockName,
                         overclock_runtime_.get(),
                         overclock_locked_actuator_.get());
        }
        if (config_.run_harvest) {
            agents::SmartHarvestConfig cfg = config_.harvest;
            cfg.seed = DeriveStreamSeed(config_.seed, 5);
            harvest_clock_ = std::make_unique<PolicyClock<ClockPolicy>>();
            harvest_model_ = std::make_unique<agents::HarvestModel>(
                node_, primary_, *harvest_clock_, cfg);
            harvest_actuator_ = std::make_unique<agents::HarvestActuator>(
                node_, primary_, elastic_, *harvest_clock_, cfg);
            harvest_actuator_->SetGovernor(&arbiter_);
            harvest_locked_model_ = std::make_unique<
                LockedModel<agents::HarvestSample, int>>(
                *harvest_model_, substrate_mutex_);
            harvest_locked_actuator_ =
                std::make_unique<LockedActuator<int>>(*harvest_actuator_,
                                                      substrate_mutex_);
            harvest_runtime_ = std::make_unique<HarvestRuntime>(
                *harvest_locked_model_, *harvest_locked_actuator_,
                agents::SmartHarvestSchedule(), config_.runtime);
            harvest_clock_->Bind(&harvest_runtime_->clock());
            AttachAgentTrace(agents::kSmartHarvestName,
                             harvest_runtime_.get(),
                             harvest_clock_.get());
            AddAgentSlot(agents::kSmartHarvestName,
                         harvest_runtime_.get(),
                         harvest_locked_actuator_.get());
        }
        if (config_.run_memory) {
            agents::SmartMemoryConfig cfg = config_.memory;
            cfg.seed = DeriveStreamSeed(config_.seed, 6);
            memory_clock_ = std::make_unique<PolicyClock<ClockPolicy>>();
            memory_model_ = std::make_unique<agents::MemoryModel>(
                memory_, *memory_clock_, cfg);
            memory_actuator_ = std::make_unique<agents::MemoryActuator>(
                memory_, *memory_clock_, cfg);
            memory_actuator_->SetGovernor(&arbiter_);
            memory_locked_model_ = std::make_unique<
                LockedModel<agents::ScanRound, agents::MemoryPlan>>(
                *memory_model_, substrate_mutex_);
            memory_locked_actuator_ =
                std::make_unique<LockedActuator<agents::MemoryPlan>>(
                    *memory_actuator_, substrate_mutex_);
            memory_runtime_ = std::make_unique<MemoryRuntime>(
                *memory_locked_model_, *memory_locked_actuator_,
                agents::SmartMemorySchedule(), config_.runtime);
            memory_clock_->Bind(&memory_runtime_->clock());
            AttachAgentTrace(agents::kSmartMemoryName,
                             memory_runtime_.get(), memory_clock_.get());
            AddAgentSlot(agents::kSmartMemoryName, memory_runtime_.get(),
                         memory_locked_actuator_.get());
        }
        if (config_.run_monitor) {
            agents::SmartMonitorConfig cfg = config_.monitor;
            cfg.seed = DeriveStreamSeed(config_.seed, 7);
            monitor_clock_ = std::make_unique<PolicyClock<ClockPolicy>>();
            monitor_model_ = std::make_unique<agents::MonitorModel>(
                channels_, policy_, *monitor_clock_, cfg);
            monitor_actuator_ =
                std::make_unique<agents::MonitorActuator>(policy_, cfg);
            monitor_actuator_->SetGovernor(&arbiter_);
            monitor_locked_model_ = std::make_unique<
                LockedModel<agents::MonitorRound, std::vector<double>>>(
                *monitor_model_, substrate_mutex_);
            monitor_locked_actuator_ = std::make_unique<
                LockedActuator<std::vector<double>>>(*monitor_actuator_,
                                                     substrate_mutex_);
            monitor_runtime_ = std::make_unique<MonitorRuntime>(
                *monitor_locked_model_, *monitor_locked_actuator_,
                agents::SmartMonitorSchedule(), config_.runtime);
            monitor_clock_->Bind(&monitor_runtime_->clock());
            AttachAgentTrace(agents::kSmartMonitorName,
                             monitor_runtime_.get(),
                             monitor_clock_.get());
            AddAgentSlot(agents::kSmartMonitorName,
                         monitor_runtime_.get(),
                         monitor_locked_actuator_.get());
        }
        has_real_agents_ = config_.run_overclock || config_.run_harvest ||
                           config_.run_memory || config_.run_monitor;
    }

    void
    BuildSynthetics()
    {
        // Same seed streams (8..) and per-instance defaulting as
        // MultiAgentNode, so agent i is bit-identical on both nodes.
        synthetics_.reserve(config_.synthetic_agents);
        for (std::size_t i = 0; i < config_.synthetic_agents; ++i) {
            SyntheticAgentConfig cfg = config_.synthetic;
            cfg.name = "synthetic" + std::to_string(i);
            cfg.seed = sim::DeriveStreamSeed(config_.seed, 8 + i);
            cfg.domain = i % 2 == 0
                             ? core::ActuationDomain::kTelemetryBudget
                             : core::ActuationDomain::kMemoryPlacement;
            cfg.trace_driver = config_.trace_driver;
            cfg.tenant =
                config_.node_index * config_.synthetic_agents + i;
            if (config_.customize_synthetic) {
                config_.customize_synthetic(i, cfg);
            }
            synthetics_.push_back(
                std::make_unique<ThreadedSyntheticAgent<ClockPolicy>>(
                    cfg, &arbiter_, config_.runtime));
            auto* agent = synthetics_.back().get();
            AttachAgentTrace(agent->name(), &agent->runtime(),
                             &agent->clock());
            AddAgentSlot(agent->name(), &agent->runtime(),
                         &agent->actuator());
        }
    }

    /** Advances the shared substrate at node_tick cadence (wall time),
     *  batching the slower memory/channel drivers exactly like the
     *  simulated node's PeriodicTasks. */
    void
    DriverLoop()
    {
        telemetry::trace::ScopedThreadRecorder bind(driver_trace_);
        // determinism-lint: allow(wall-clock) -- driver pacing only.
        auto last = std::chrono::steady_clock::now();
        sim::Duration memory_accum{0};
        sim::Duration channel_accum{0};
        sim::Duration health_accum{0};
        while (driver_running_.load()) {
            std::this_thread::sleep_for(
                std::chrono::nanoseconds(config_.node_tick));
            // determinism-lint: allow(wall-clock) -- driver pacing only.
            const auto wall = std::chrono::steady_clock::now();
            const auto elapsed =
                std::chrono::duration_cast<sim::Duration>(wall - last);
            last = wall;
            telemetry::trace::TraceSpan tick_span(driver_trace_,
                                                  "node_tick", "node");
            core::MutexLock lock(substrate_mutex_);
            const sim::TimePoint start = substrate_now_;
            substrate_now_ += elapsed;
            node_.Advance(substrate_now_, elapsed);
            memory_accum += elapsed;
            if (memory_accum >= config_.memory_tick) {
                memory_pattern_->GenerateAccesses(start, memory_accum,
                                                  memory_);
                memory_accum = sim::Duration{0};
            }
            channel_accum += elapsed;
            if (channel_accum >= config_.channel_tick) {
                channels_.Advance(start, channel_accum, incident_rng_);
                channel_accum = sim::Duration{0};
            }
            if (config_.health != nullptr) {
                // Same driver-tick piggyback as the simulated node
                // (AppendNodeHealthSample keeps the series names
                // identical); agent stats and arbiter counters are
                // atomics, epoch histograms shared-snapshot copies, so
                // reading them from the driver thread is safe.
                health_accum += elapsed;
                if (health_accum >= config_.health_period) {
                    AppendNodeHealthSample(
                        *config_.health, config_.name, AggregateStats(),
                        arbiter_, EpochLatencyHistogram(), slots_.size(),
                        substrate_now_);
                    health_accum = sim::Duration{0};
                }
            }
        }
    }

    void
    StopDriver()
    {
        if (driver_running_.exchange(false) && driver_thread_.joinable()) {
            driver_thread_.join();
        }
    }

    MultiAgentNodeConfig config_;
    sim::Rng rng_;

    /** Wall timebase for the driver/control tracks (agent tracks use
     *  their agent's PolicyClock instead). */
    telemetry::trace::SteadyClock trace_clock_;
    telemetry::trace::TraceRecorder* driver_trace_ = nullptr;
    telemetry::trace::TraceRecorder* control_trace_ = nullptr;

    /** Serializes all real-agent and driver substrate access. */
    core::Mutex substrate_mutex_;

    // Substrate (construction order matters: agents reference these).
    node::Node node_;
    node::TieredMemory memory_;
    node::ChannelArray channels_;
    agents::SamplingPolicy policy_;
    std::shared_ptr<workloads::TailBench> primary_workload_;
    std::shared_ptr<workloads::BestEffort> elastic_workload_;
    std::unique_ptr<workloads::ZipfMemoryPattern> memory_pattern_;
    node::VmId primary_ = 0;
    node::VmId elastic_ = 0;

    telemetry::MetricRegistry metrics_;
    InterferenceArbiter arbiter_;

    // Real agents: raw model/actuator, locked decorators, runtime.
    std::unique_ptr<PolicyClock<ClockPolicy>> overclock_clock_;
    std::unique_ptr<agents::OverclockModel> overclock_model_;
    std::unique_ptr<agents::OverclockActuator> overclock_actuator_;
    std::unique_ptr<LockedModel<agents::OverclockSample, double>>
        overclock_locked_model_;
    std::unique_ptr<LockedActuator<double>> overclock_locked_actuator_;
    std::unique_ptr<OverclockRuntime> overclock_runtime_;
    std::unique_ptr<PolicyClock<ClockPolicy>> harvest_clock_;
    std::unique_ptr<agents::HarvestModel> harvest_model_;
    std::unique_ptr<agents::HarvestActuator> harvest_actuator_;
    std::unique_ptr<LockedModel<agents::HarvestSample, int>>
        harvest_locked_model_;
    std::unique_ptr<LockedActuator<int>> harvest_locked_actuator_;
    std::unique_ptr<HarvestRuntime> harvest_runtime_;
    std::unique_ptr<PolicyClock<ClockPolicy>> memory_clock_;
    std::unique_ptr<agents::MemoryModel> memory_model_;
    std::unique_ptr<agents::MemoryActuator> memory_actuator_;
    std::unique_ptr<LockedModel<agents::ScanRound, agents::MemoryPlan>>
        memory_locked_model_;
    std::unique_ptr<LockedActuator<agents::MemoryPlan>>
        memory_locked_actuator_;
    std::unique_ptr<MemoryRuntime> memory_runtime_;
    std::unique_ptr<PolicyClock<ClockPolicy>> monitor_clock_;
    std::unique_ptr<agents::MonitorModel> monitor_model_;
    std::unique_ptr<agents::MonitorActuator> monitor_actuator_;
    std::unique_ptr<LockedModel<agents::MonitorRound,
                                std::vector<double>>>
        monitor_locked_model_;
    std::unique_ptr<LockedActuator<std::vector<double>>>
        monitor_locked_actuator_;
    std::unique_ptr<MonitorRuntime> monitor_runtime_;
    std::vector<std::unique_ptr<ThreadedSyntheticAgent<ClockPolicy>>>
        synthetics_;

    // Substrate driver thread (armed by Start()).
    sim::Rng incident_rng_;
    sim::TimePoint substrate_now_{0};
    std::atomic<bool> driver_running_{false};
    std::thread driver_thread_;
    bool has_real_agents_ = false;

    // Registry last among agent state: its registrations' cleanups run
    // first on destruction, while runtimes and actuators still exist.
    std::vector<AgentSlot> slots_;
    core::AgentRegistry registry_;
    std::vector<core::ScopedRegistration> registrations_;
    bool started_ = false;
};

}  // namespace sol::cluster
