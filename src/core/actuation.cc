#include "core/actuation.h"

namespace sol::core {

const char*
ToString(ActuationDomain domain)
{
    switch (domain) {
      case ActuationDomain::kCpuFrequency:
        return "cpu-frequency";
      case ActuationDomain::kCpuCores:
        return "cpu-cores";
      case ActuationDomain::kMemoryPlacement:
        return "memory-placement";
      case ActuationDomain::kTelemetryBudget:
        return "telemetry-budget";
    }
    return "unknown";
}

}  // namespace sol::core
