/**
 * @file
 * Shared-node actuation interface: how co-located agents' actuators
 * declare their intent on the node's shared resources.
 *
 * The paper's production setting runs ~77 learning agents per node. Each
 * agent's Actuator was designed as if it owned its knob, but on a shared
 * node the knobs are physically coupled: raising a VM's frequency while a
 * harvesting agent has loaned its cores away stacks two efficiency bets
 * on the same power/QoS envelope, and two agents writing one knob fight
 * each other outright. This header defines the vocabulary an actuator
 * uses to announce an actuation before applying it — the resource domain
 * it touches and whether the action spends shared headroom (kExpand) or
 * returns toward the safe baseline (kRestore) — plus the Governor
 * interface that admits or denies the request.
 *
 * Single-agent deployments pass no governor and behave exactly as
 * before. Multi-agent nodes install a cluster::InterferenceArbiter,
 * which detects conflicting actuations across agents and resolves them
 * deterministically. Restoring actions (mitigations, cleanups, falling
 * back to defaults) are never blocked: a safeguard must always be able
 * to return the node to a clean state.
 */
#pragma once

#include <string>

namespace sol::core {

/** Shared node resource a single actuation touches. */
enum class ActuationDomain {
    kCpuFrequency = 0,   ///< DVFS setting of a VM's cores.
    kCpuCores,           ///< Physical-core grants (harvesting).
    kMemoryPlacement,    ///< Tier placement of memory batches.
    kTelemetryBudget,    ///< Allocation of the sampling budget.
};

/** Number of ActuationDomain values (for dense per-domain tables). */
inline constexpr int kNumActuationDomains = 4;

/** Human-readable domain name ("cpu-frequency", ...). */
const char* ToString(ActuationDomain domain);

/** Direction of an actuation relative to the safe baseline. */
enum class ActuationIntent {
    /** Spends shared headroom: overclock above nominal, harvest cores
     *  away from the primary, demote batches, skew the sampling budget.
     *  Subject to arbitration. */
    kExpand,
    /** Moves toward the safe baseline: nominal frequency, all cores
     *  returned, pages promoted home, uniform sampling. Always admitted,
     *  and releases any hold the agent had on the domain. */
    kRestore,
};

/** One announced actuation. */
struct ActuationRequest {
    /** Registry name of the requesting agent. */
    std::string agent;
    ActuationDomain domain = ActuationDomain::kCpuFrequency;
    ActuationIntent intent = ActuationIntent::kRestore;
    /** Domain-specific size of the request: target GHz, cores taken,
     *  batches demoted, ... Used for accounting, not admission. */
    double magnitude = 0.0;
};

/** Outcome of admission. */
struct ActuationDecision {
    bool admitted = true;
    /** For denials: the agent whose active hold caused the conflict. */
    std::string conflicting_agent;
};

/**
 * Admission control over shared-node actuations.
 *
 * Actuators call Admit immediately before applying an action. A denied
 * expand means another agent holds a coupled resource; the caller must
 * take its conservative action instead (the same path it takes for a
 * missing prediction). Implementations must be deterministic: admission
 * may depend only on previously admitted requests, never on wall time
 * or randomness, so a fixed seed reproduces a multi-agent run exactly.
 */
class ActuationGovernor
{
  public:
    virtual ~ActuationGovernor() = default;

    /** Admits or denies a request; records holds and accounting. */
    virtual ActuationDecision Admit(const ActuationRequest& request) = 0;
};

/**
 * Announces a request to an optional governor.
 *
 * @return true when there is no governor (single-agent deployments) or
 *   the governor admits the request.
 */
inline bool
AdmitActuation(ActuationGovernor* governor, const std::string& agent,
               ActuationDomain domain, ActuationIntent intent,
               double magnitude = 0.0)
{
    if (governor == nullptr) {
        return true;
    }
    return governor->Admit({agent, domain, intent, magnitude}).admitted;
}

}  // namespace sol::core
