/**
 * @file
 * The SOL Actuator interface (paper Listing 2).
 *
 * The Actuator makes control decisions at regular intervals using model
 * predictions when available. By design it closely resembles a
 * non-learning agent: a control function plus an end-to-end safeguard and
 * an idempotent cleanup. It runs in its own loop so it can keep taking
 * safe actions when the Model is throttled or underperforming.
 */
#pragma once

#include <optional>

#include "core/prediction.h"

namespace sol::core {

/**
 * Agent-provided control logic.
 *
 * @tparam P Type of the prediction payload.
 */
template <typename P>
class Actuator
{
  public:
    virtual ~Actuator() = default;

    /**
     * Takes one control action.
     *
     * Called when a fresh prediction arrives, or after the schedule's
     * max_actuation_delay elapses without one — in which case `pred` is
     * empty and the implementation must take a conservative, safe action
     * (paper section 4.1). Predictions that expired in the queue are also
     * delivered as empty.
     */
    virtual void TakeAction(std::optional<Prediction<P>> pred) = 0;

    /**
     * End-to-end behavioral safeguard, independent of model internals.
     * Measures proxies for the agent's safety metric (e.g. vCPU wait
     * time, remote-access fraction).
     *
     * @return true when the agent's end-to-end behavior is acceptable.
     */
    virtual bool AssessPerformance() = 0;

    /**
     * Mitigating action invoked by the runtime while AssessPerformance
     * fails (e.g. return all harvested cores, restore nominal frequency).
     * The actuator loop is halted until the assessment passes again.
     */
    virtual void Mitigate() = 0;

    /**
     * Idempotent, stateless teardown: stops the agent's effects and
     * restores the node to a clean state. Safe to call at any time, from
     * any party (e.g. SREs via the AgentRegistry), whether the agent is
     * running normally, has crashed, or is hanging.
     */
    virtual void CleanUp() = 0;
};

}  // namespace sol::core
