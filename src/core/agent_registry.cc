#include "core/agent_registry.h"

namespace sol::core {

void
AgentRegistry::Register(const std::string& name,
                        std::function<void()> cleanup)
{
    MutexLock lock(mutex_);
    agents_[name] = std::move(cleanup);
}

void
AgentRegistry::Unregister(const std::string& name)
{
    MutexLock lock(mutex_);
    agents_.erase(name);
}

bool
AgentRegistry::CleanUp(const std::string& name)
{
    std::function<void()> fn;
    {
        MutexLock lock(mutex_);
        const auto it = agents_.find(name);
        if (it == agents_.end()) {
            return false;
        }
        fn = it->second;
    }
    fn();
    return true;
}

void
AgentRegistry::CleanUpAll()
{
    std::vector<std::function<void()>> fns;
    {
        MutexLock lock(mutex_);
        fns.reserve(agents_.size());
        for (const auto& [name, fn] : agents_) {
            fns.push_back(fn);
        }
    }
    for (const auto& fn : fns) {
        fn();
    }
}

std::vector<std::string>
AgentRegistry::Names() const
{
    MutexLock lock(mutex_);
    std::vector<std::string> names;
    names.reserve(agents_.size());
    for (const auto& [name, fn] : agents_) {
        names.push_back(name);
    }
    return names;
}

bool
AgentRegistry::Contains(const std::string& name) const
{
    MutexLock lock(mutex_);
    return agents_.count(name) > 0;
}

std::size_t
AgentRegistry::size() const
{
    MutexLock lock(mutex_);
    return agents_.size();
}

AgentRegistry&
AgentRegistry::Global()
{
    static AgentRegistry instance;
    return instance;
}

}  // namespace sol::core
