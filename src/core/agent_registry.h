/**
 * @file
 * Node-wide agent registry: the SRE-facing termination path.
 *
 * The paper requires every agent to expose an idempotent, stateless
 * CleanUp that operators can invoke without knowing anything about the
 * agent's implementation. The registry maps agent names to those cleanup
 * callbacks so a node SRE (or a node-health watchdog) can terminate and
 * clean up after any — or all — agents uniformly.
 */
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/sync.h"
#include "core/thread_annotations.h"

namespace sol::core {

/** Registry of running agents and their CleanUp callbacks. */
class AgentRegistry
{
  public:
    AgentRegistry() = default;

    /**
     * Registers an agent. The callback must be safe to invoke at any
     * time and any number of times. Re-registering a name replaces the
     * previous entry.
     */
    void Register(const std::string& name, std::function<void()> cleanup);

    /** Removes an agent without running its cleanup. */
    void Unregister(const std::string& name);

    /**
     * Runs an agent's cleanup. The callback runs *outside* the
     * registry lock (SOL_EXCLUDES documents the other direction: a
     * cleanup callback may re-enter the registry, so no caller may
     * hold the lock across this call).
     *
     * @return false if no such agent is registered.
     */
    bool CleanUp(const std::string& name) SOL_EXCLUDES(mutex_);

    /** Runs every registered agent's cleanup (incident response). */
    void CleanUpAll() SOL_EXCLUDES(mutex_);

    /** Names of all registered agents. */
    std::vector<std::string> Names() const;

    bool Contains(const std::string& name) const;
    std::size_t size() const;

    /** Process-wide instance used by examples and deployments. */
    static AgentRegistry& Global();

  private:
    mutable Mutex mutex_;
    std::map<std::string, std::function<void()>> agents_
        SOL_GUARDED_BY(mutex_);
};

/**
 * RAII registration: registers an agent on construction, runs its
 * cleanup and unregisters it on destruction. Multi-agent harnesses use
 * this so that tearing down a node always leaves it in a clean state,
 * whatever order the agents die in.
 */
class ScopedRegistration
{
  public:
    ScopedRegistration() = default;

    ScopedRegistration(AgentRegistry& registry, std::string name,
                       std::function<void()> cleanup)
        : registry_(&registry), name_(std::move(name))
    {
        registry_->Register(name_, std::move(cleanup));
    }

    ~ScopedRegistration() { Release(); }

    ScopedRegistration(const ScopedRegistration&) = delete;
    ScopedRegistration& operator=(const ScopedRegistration&) = delete;

    ScopedRegistration(ScopedRegistration&& other) noexcept
        : registry_(other.registry_), name_(std::move(other.name_))
    {
        other.registry_ = nullptr;
    }

    ScopedRegistration&
    operator=(ScopedRegistration&& other) noexcept
    {
        if (this != &other) {
            Release();
            registry_ = other.registry_;
            name_ = std::move(other.name_);
            other.registry_ = nullptr;
        }
        return *this;
    }

    /** Runs the cleanup (if still registered) and unregisters. */
    void
    Release()
    {
        if (registry_ != nullptr) {
            registry_->CleanUp(name_);
            registry_->Unregister(name_);
            registry_ = nullptr;
        }
    }

    const std::string& name() const { return name_; }

  private:
    AgentRegistry* registry_ = nullptr;
    std::string name_;
};

}  // namespace sol::core
