/**
 * @file
 * The single implementation of the paper's section 4.2 epoch/safeguard
 * state machine, shared by both SOL runtimes.
 *
 * SimRuntime (virtual time, event-queue continuations) and
 * ThreadedRuntime (wall clock, blocking loops) used to implement these
 * semantics twice, and the copies drifted: ThreadedRuntime lost the
 * SetDataFault hook and forgot a failed model assessment across a
 * Stop/Start cycle. EpochEngine owns every piece of per-epoch state —
 * data collection/validation/fault injection, the three epoch exits
 * (ShortCircuitEpoch / data_per_epoch / max_epoch_time), the every-K-
 * epochs model assessment with default-prediction interception, the
 * bounded prediction queue, and the actuator safeguard — so the two
 * runtimes cannot diverge again: they are scheduling adapters that
 * decide *when* the engine's step functions run, never *what* they do.
 *
 * The runtimes differ only in their policy:
 *
 *   - SimEnginePolicy: plain counters, no locking, plain bools. The
 *     event queue serializes everything on one thread.
 *   - ThreadedEnginePolicy: AtomicRuntimeStats (relaxed counters), a
 *     real mutex around the prediction queue + halt flag, and atomic
 *     flags so accessors are safe from any thread.
 *
 * Unified accounting rules (these resolve the historical drift; the
 * parity suite in tests/runtime_parity_test.cc pins them):
 *
 *   - A prediction delivered while actuation is halted is dropped at
 *     delivery (dropped_while_halted) and never queued.
 *   - A safeguard trigger flushes the queue, counting every flushed
 *     prediction as dropped_while_halted — every delivered prediction
 *     is accounted exactly once (acted on, expired, or dropped).
 *   - actuator_timeouts counts every conservative TakeAction(empty),
 *     whether the prediction was missing or arrived stale, preserving
 *     actions_taken == actions_with_prediction + actuator_timeouts.
 *   - model_ok and the halted flag are engine state: both survive a
 *     Stop/Start cycle (a restart must not forget a failing model or a
 *     tripped safeguard); halted_time accrues only while running.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <stdexcept>
#include <utility>

#include "core/actuator.h"
#include "core/model.h"
#include "core/prediction.h"
#include "core/runtime_options.h"
#include "core/runtime_stats.h"
#include "core/schedule.h"
#include "core/sync.h"
#include "core/thread_annotations.h"
#include "sim/time.h"
#include "telemetry/latency_histogram.h"
#include "telemetry/trace.h"

namespace sol::core {

/** Counter operations over plain RuntimeStats (single-threaded). */
struct PlainStatsOps {
    using Stats = RuntimeStats;

    static void Inc(std::uint64_t& counter) { ++counter; }

    /** Increments and returns the new value (epoch numbering). */
    static std::uint64_t IncGet(std::uint64_t& counter)
    {
        return ++counter;
    }

    static void
    RaisePeak(std::uint64_t& peak, std::uint64_t value)
    {
        if (value > peak) {
            peak = value;
        }
    }

    static void
    AddHaltedTime(Stats& stats, sim::Duration d)
    {
        stats.halted_time += d;
    }
};

/** Counter operations over AtomicRuntimeStats (relaxed atomics). */
struct AtomicStatsOps {
    using Stats = AtomicRuntimeStats;

    static void
    Inc(std::atomic<std::uint64_t>& counter)
    {
        counter.fetch_add(1, std::memory_order_relaxed);
    }

    static std::uint64_t
    IncGet(std::atomic<std::uint64_t>& counter)
    {
        return counter.fetch_add(1, std::memory_order_relaxed) + 1;
    }

    static void
    RaisePeak(std::atomic<std::uint64_t>& peak, std::uint64_t value)
    {
        AtomicRuntimeStats::RaisePeak(peak, value);
    }

    static void
    AddHaltedTime(Stats& stats, sim::Duration d)
    {
        stats.halted_time_ns.fetch_add(d.count(),
                                       std::memory_order_relaxed);
    }
};

/** Policy for the event-queue backend: everything single-threaded. */
struct SimEnginePolicy {
    using StatsOps = PlainStatsOps;
    using Mutex = NullMutex;
    using Flag = bool;
    static bool Get(const Flag& flag) { return flag; }
    static void Set(Flag& flag, bool value) { flag = value; }
};

/** Policy for the real-thread backend: relaxed-atomic stats, a real
 *  queue mutex, and atomic flags for cross-thread accessors. */
struct ThreadedEnginePolicy {
    using StatsOps = AtomicStatsOps;
    using Mutex = core::Mutex;
    using Flag = std::atomic<bool>;

    static bool
    Get(const Flag& flag)
    {
        return flag.load(std::memory_order_relaxed);
    }

    static void
    Set(Flag& flag, bool value)
    {
        flag.store(value, std::memory_order_relaxed);
    }
};

/**
 * The policy-parameterized epoch/safeguard state machine.
 *
 * The owning runtime drives it through step functions:
 *
 *   Model loop:    BeginEpoch -> CollectOnce* -> FinishEpoch -> Deliver
 *   Actuator loop: ActuatorWake (per wake), AssessActuator (per
 *                  assess_actuator_interval, before the wake at the
 *                  same instant)
 *   Lifecycle:     OnStart / OnStop bracket every running span.
 *
 * Threading contract (threaded policy): the model-side functions are
 * called from the model thread only, the actuator-side functions from
 * the actuator thread only; Deliver/ActuatorWake/AssessActuator touch
 * the shared queue + halt flag under the policy mutex internally.
 *
 * Observability: the engine always records every epoch's duration into
 * a LatencyHistogram (EpochLatencyHistogram()), and — when trace
 * recorders are attached via SetTraceRecorders — emits phase spans
 * (collect / model_update / model_assess / actuate / assess_actuator,
 * plus a per-epoch "epoch" span) and safeguard instants
 * (safeguard_trigger / mitigate / safeguard_resume /
 * model_assessment_failed / prediction_dropped). Two recorders keep
 * the rings SPSC: model-side steps record into the first, actuator-
 * side steps into the second (the sim backend passes the same one
 * twice). With no recorders attached the cost is a null test per step.
 *
 * @tparam D Telemetry datum type.
 * @tparam P Prediction payload type.
 * @tparam Policy SimEnginePolicy or ThreadedEnginePolicy.
 */
template <typename D, typename P, typename Policy>
class EpochEngine
{
  public:
    using StatsOps = typename Policy::StatsOps;
    using Stats = typename StatsOps::Stats;

    /** What CollectOnce decided about the epoch in progress. */
    enum class CollectOutcome {
        kEpochContinues,     ///< Schedule another collect tick.
        kEpochComplete,      ///< data_per_epoch valid samples committed.
        kEpochShortCircuit,  ///< Deadline hit or model short-circuited.
    };

    /** What ActuatorWake did. */
    enum class WakeOutcome {
        kNothingToDo,  ///< Non-timeout wake with nothing to consume.
        kActed,        ///< TakeAction ran (with or without prediction).
        kHalted,       ///< Actuation is halted; nothing ran.
    };

    EpochEngine(Model<D, P>& model, Actuator<P>& actuator,
                const Schedule& schedule, const RuntimeOptions& options)
        : model_(model),
          actuator_(actuator),
          schedule_(schedule),
          options_(options)
    {
        const auto problems = schedule_.Validate();
        if (!problems.empty()) {
            throw std::invalid_argument("invalid schedule: " + problems[0]);
        }
    }

    EpochEngine(const EpochEngine&) = delete;
    EpochEngine& operator=(const EpochEngine&) = delete;

    // ---- Lifecycle -------------------------------------------------------

    /**
     * Marks the start of a running span. Epoch progress restarts (the
     * caller invokes BeginEpoch next) but model_ok, the halt flag, and
     * all counters persist: a restart must not forget a failing model
     * or a tripped safeguard. If the safeguard is still tripped,
     * halted-time accrual resumes from `now`.
     */
    void
    OnStart(sim::TimePoint now)
    {
        ScopedLock<typename Policy::Mutex> lock(mutex_);
        if (Policy::Get(halted_)) {
            halt_start_ = now;
        }
    }

    /** Closes the running span: folds an in-progress halt into
     *  halted_time so stats are accurate while stopped. */
    void
    OnStop(sim::TimePoint now)
    {
        ScopedLock<typename Policy::Mutex> lock(mutex_);
        if (Policy::Get(halted_)) {
            StatsOps::AddHaltedTime(stats_, now - halt_start_);
            halt_start_ = now;
        }
    }

    // ---- Model loop ------------------------------------------------------

    /** Opens a learning epoch at `now`. */
    void
    BeginEpoch(sim::TimePoint now)
    {
        epoch_start_ = now;
        valid_samples_ = 0;
    }

    /**
     * One collect tick: CollectData -> fault hook -> ValidateData ->
     * CommitData (valid) or discard (invalid), then the three epoch
     * exits in fixed order: model short-circuit, enough data, epoch
     * deadline.
     */
    CollectOutcome
    CollectOnce(sim::TimePoint now)
    {
        telemetry::trace::TraceSpan span(model_trace_, "collect",
                                         "engine");
        D data = model_.CollectData();
        StatsOps::Inc(stats_.samples_collected);
        if (data_fault_) {
            data_fault_(data);
        }
        const bool valid =
            options_.disable_data_validation || model_.ValidateData(data);
        if (valid) {
            model_.CommitData(now, data);
            ++valid_samples_;
        } else {
            StatsOps::Inc(stats_.invalid_samples);
        }
        span.AddArg("valid", valid ? 1 : 0);

        if (model_.ShortCircuitEpoch()) {
            return CollectOutcome::kEpochShortCircuit;
        }
        if (valid_samples_ >= schedule_.data_per_epoch) {
            return CollectOutcome::kEpochComplete;
        }
        if (now - epoch_start_ >= schedule_.max_epoch_time) {
            return CollectOutcome::kEpochShortCircuit;
        }
        return CollectOutcome::kEpochContinues;
    }

    /**
     * Closes the epoch at `now` and produces the prediction to
     * deliver. With enough data the model updates and predicts,
     * assessed every assess_model_every_epochs; while the assessment
     * fails the prediction is intercepted and DefaultPredict delivered
     * instead (the model keeps learning so it can recover). Without
     * enough data the epoch counts as short-circuited and the default
     * is delivered directly. The epoch's duration (now - BeginEpoch's
     * instant) lands in the always-on epoch latency histogram and, if
     * tracing, as an "epoch" span.
     */
    Prediction<P>
    FinishEpoch(sim::TimePoint now, bool enough_data)
    {
        const std::uint64_t epoch_number = StatsOps::IncGet(stats_.epochs);
        Prediction<P> pred;
        if (enough_data) {
            {
                telemetry::trace::TraceSpan span(model_trace_,
                                                 "model_update", "engine");
                model_.UpdateModel();
                StatsOps::Inc(stats_.model_updates);
                pred = model_.ModelPredict();
            }

            if (!options_.disable_model_assessment &&
                epoch_number % static_cast<std::uint64_t>(
                                   schedule_.assess_model_every_epochs) ==
                    0) {
                telemetry::trace::TraceSpan span(model_trace_,
                                                 "model_assess", "engine");
                StatsOps::Inc(stats_.model_assessments);
                const bool ok = model_.AssessModel();
                Policy::Set(model_ok_, ok);
                span.AddArg("ok", ok ? 1 : 0);
                if (!ok) {
                    StatsOps::Inc(stats_.failed_assessments);
                    if (model_trace_ != nullptr) {
                        model_trace_->Instant("model_assessment_failed",
                                              "safeguard");
                    }
                }
            }
            if (!Policy::Get(model_ok_)) {
                // Interception: the Actuator only ever sees predictions
                // from a model that passes assessment.
                pred = model_.DefaultPredict();
                StatsOps::Inc(stats_.intercepted_predictions);
            }
        } else {
            StatsOps::Inc(stats_.short_circuit_epochs);
            pred = model_.DefaultPredict();
        }

        const sim::Duration epoch_duration = now - epoch_start_;
        const auto duration_ns = static_cast<std::uint64_t>(
            epoch_duration.count() < 0 ? 0 : epoch_duration.count());
        if (model_trace_ != nullptr) {
            model_trace_->Complete(
                "epoch", "engine", epoch_start_, epoch_duration,
                {{"epoch", static_cast<std::int64_t>(epoch_number)},
                 {"short_circuit", enough_data ? 0 : 1}});
        }
        {
            ScopedLock<typename Policy::Mutex> lock(mutex_);
            epoch_hist_.Record(duration_ns);
        }
        return pred;
    }

    /**
     * Queues the finished epoch's prediction for the actuator, or
     * drops it (dropped_while_halted) while actuation is halted. The
     * oldest queued prediction is evicted (expired_predictions) beyond
     * options.max_queued_predictions.
     *
     * @return true when the prediction was queued; false when dropped.
     *         Backends should wake the actuator either way — a wake
     *         while halted is how the blocking backend reaches its
     *         safeguard re-assessment.
     */
    bool
    Deliver(Prediction<P> pred)
    {
        StatsOps::Inc(stats_.predictions_delivered);
        if (pred.is_default) {
            StatsOps::Inc(stats_.default_predictions);
        }
        ScopedLock<typename Policy::Mutex> lock(mutex_);
        ++delivery_seq_;
        if (Policy::Get(halted_)) {
            StatsOps::Inc(stats_.dropped_while_halted);
            if (model_trace_ != nullptr) {
                model_trace_->Instant("prediction_dropped", "safeguard");
            }
            return false;
        }
        pending_.push_back(std::move(pred));
        StatsOps::RaisePeak(stats_.peak_queued_predictions,
                            pending_.size());
        while (pending_.size() > options_.max_queued_predictions) {
            pending_.pop_front();
            StatsOps::Inc(stats_.expired_predictions);
        }
        return true;
    }

    // ---- Actuator loop ---------------------------------------------------

    /**
     * One actuator wake. Consumes the oldest queued prediction if any;
     * a stale one (non-blocking mode) is dropped as expired and the
     * conservative empty action runs in its place. `from_timeout`
     * distinguishes a max_actuation_delay timeout (which must act even
     * with nothing queued) from a delivery wake (which does nothing if
     * an earlier wake already consumed the prediction).
     */
    WakeOutcome
    ActuatorWake(sim::TimePoint now, bool from_timeout)
    {
        telemetry::trace::TraceSpan span(actuator_trace_, "actuate",
                                         "engine");
        span.AddArg("from_timeout", from_timeout ? 1 : 0);
        std::optional<Prediction<P>> pred;
        {
            ScopedLock<typename Policy::Mutex> lock(mutex_);
            if (Policy::Get(halted_)) {
                // Deliveries while halted never queue and the trigger
                // flushed the queue, so there is nothing to consume.
                DropPendingLocked();
                return WakeOutcome::kHalted;
            }
            if (!pending_.empty()) {
                pred = std::move(pending_.front());
                pending_.pop_front();
            }
        }
        if (!from_timeout && !pred.has_value()) {
            // Wake for a prediction consumed by an earlier wake at the
            // same instant (or a while-halted kick); nothing to do.
            return WakeOutcome::kNothingToDo;
        }
        if (pred.has_value() && !options_.blocking_actuator &&
            !pred->FreshAt(now)) {
            // Stale prediction: the conservative path takes over.
            pred.reset();
            StatsOps::Inc(stats_.expired_predictions);
        }
        span.AddArg("with_prediction", pred.has_value() ? 1 : 0);
        actuator_.TakeAction(pred);
        StatsOps::Inc(stats_.actions_taken);
        if (pred.has_value()) {
            StatsOps::Inc(stats_.actions_with_prediction);
        } else {
            StatsOps::Inc(stats_.actuator_timeouts);
        }
        return WakeOutcome::kActed;
    }

    /**
     * One actuator-safeguard assessment. A failing assessment halts
     * actuation (flushing the prediction queue on the healthy->failing
     * edge) and mitigates on every failing check; a passing one clears
     * the halt and folds the halted span into halted_time.
     *
     * @return true when this assessment resumed actuation (so the
     *         event-queue backend re-arms its actuation timeout).
     */
    bool
    AssessActuator(sim::TimePoint now)
    {
        telemetry::trace::TraceSpan span(actuator_trace_,
                                         "assess_actuator", "engine");
        StatsOps::Inc(stats_.actuator_assessments);
        const bool ok = actuator_.AssessPerformance();
        span.AddArg("ok", ok ? 1 : 0);
        if (!ok) {
            bool newly_halted = false;
            {
                ScopedLock<typename Policy::Mutex> lock(mutex_);
                if (!Policy::Get(halted_)) {
                    Policy::Set(halted_, true);
                    halt_start_ = now;
                    newly_halted = true;
                    DropPendingLocked();
                }
            }
            if (newly_halted) {
                StatsOps::Inc(stats_.safeguard_triggers);
                if (actuator_trace_ != nullptr) {
                    actuator_trace_->Instant("safeguard_trigger",
                                             "safeguard");
                }
            }
            actuator_.Mitigate();
            StatsOps::Inc(stats_.mitigations);
            if (actuator_trace_ != nullptr) {
                actuator_trace_->Instant("mitigate", "safeguard");
            }
            return false;
        }
        ScopedLock<typename Policy::Mutex> lock(mutex_);
        if (Policy::Get(halted_)) {
            Policy::Set(halted_, false);
            StatsOps::AddHaltedTime(stats_, now - halt_start_);
            if (actuator_trace_ != nullptr) {
                actuator_trace_->Instant("safeguard_resume", "safeguard");
            }
            return true;
        }
        return false;
    }

    // ---- Fault injection -------------------------------------------------

    /**
     * Installs a hook applied to every collected datum before
     * validation (fault injection: corrupted counters, driver bugs).
     * With the threaded policy, install before Start(): the hook is
     * read by the model thread without synchronization.
     */
    void
    SetDataFault(std::function<void(D&)> fault)
    {
        data_fault_ = std::move(fault);
    }

    // ---- Observability ---------------------------------------------------

    /**
     * Attaches flight-recorder tracks. `model_side` receives the
     * model-loop spans (collect / model_update / model_assess / epoch),
     * `actuator_side` the actuator-loop spans (actuate /
     * assess_actuator) and safeguard instants. Each recorder is SPSC,
     * so the two sides must be distinct recorders when the loops run
     * on distinct threads; a single-threaded backend passes the same
     * recorder twice. Either may be null (that side untraced). Attach
     * before the owning runtime starts: the pointers are read by the
     * loop threads without synchronization.
     */
    void
    SetTraceRecorders(telemetry::trace::TraceRecorder* model_side,
                      telemetry::trace::TraceRecorder* actuator_side)
    {
        model_trace_ = model_side;
        actuator_trace_ = actuator_side;
    }

    telemetry::trace::TraceRecorder* model_trace() const
    {
        return model_trace_;
    }
    telemetry::trace::TraceRecorder* actuator_trace() const
    {
        return actuator_trace_;
    }

    /** Copies out the always-on epoch-duration histogram (ns; safe
     *  from any thread under the threaded policy). */
    telemetry::LatencyHistogram
    EpochLatencyHistogram() const
    {
        ScopedLock<typename Policy::Mutex> lock(mutex_);
        return epoch_hist_;
    }

    // ---- Introspection ---------------------------------------------------

    const Stats& stats() const { return stats_; }
    const Schedule& schedule() const { return schedule_; }
    const RuntimeOptions& options() const { return options_; }
    bool actuator_halted() const { return Policy::Get(halted_); }
    bool model_assessment_failing() const
    {
        return !Policy::Get(model_ok_);
    }

    std::size_t
    queued_predictions() const
    {
        ScopedLock<typename Policy::Mutex> lock(mutex_);
        return pending_.size();
    }

    /** The queue guard, exposed so the blocking backend can run its
     *  condition-variable wait against the same mutex. */
    typename Policy::Mutex& queue_mutex() const
        SOL_RETURN_CAPABILITY(mutex_)
    {
        return mutex_;
    }

    /** Must hold queue_mutex(): whether a prediction is queued. */
    bool has_queued_locked() const SOL_REQUIRES(mutex_)
    {
        return !pending_.empty();
    }

    /** Must hold queue_mutex(): bumped on every delivery, including
     *  ones dropped while halted — the blocking backend's wait
     *  predicate compares it so a while-halted delivery still wakes
     *  the actuator to re-assess the safeguard. */
    std::uint64_t delivery_seq_locked() const SOL_REQUIRES(mutex_)
    {
        return delivery_seq_;
    }

  private:
    /** Must hold mutex_: flushes the queue, counting each prediction
     *  as dropped while halted. */
    void
    DropPendingLocked() SOL_REQUIRES(mutex_)
    {
        while (!pending_.empty()) {
            pending_.pop_front();
            StatsOps::Inc(stats_.dropped_while_halted);
        }
    }

    Model<D, P>& model_;
    Actuator<P>& actuator_;
    Schedule schedule_;
    RuntimeOptions options_;

    std::function<void(D&)> data_fault_;

    // Model-loop state (owning loop's thread only).
    sim::TimePoint epoch_start_{0};
    int valid_samples_ = 0;
    typename Policy::Flag model_ok_{true};

    // Trace recorders (set before start; loop threads read them
    // without synchronization; null = untraced).
    telemetry::trace::TraceRecorder* model_trace_ = nullptr;
    telemetry::trace::TraceRecorder* actuator_trace_ = nullptr;

    // Prediction queue + halt state + epoch histogram (guarded by
    // mutex_; the histogram rides the existing guard because it is
    // written by the model thread and copied out by any thread).
    // halted_ is Policy::Flag — an atomic under the threaded policy —
    // because actuator_halted() reads it lock-free; the mutex still
    // orders every *write* against the queue state it gates.
    mutable typename Policy::Mutex mutex_;
    std::deque<Prediction<P>> pending_ SOL_GUARDED_BY(mutex_);
    std::uint64_t delivery_seq_ SOL_GUARDED_BY(mutex_) = 0;
    typename Policy::Flag halted_{false};
    sim::TimePoint halt_start_ SOL_GUARDED_BY(mutex_){0};
    telemetry::LatencyHistogram epoch_hist_ SOL_GUARDED_BY(mutex_);

    Stats stats_;
};

}  // namespace sol::core
