/**
 * @file
 * Manually advanced ClockPolicy: deterministic time for ThreadedRuntime.
 *
 * ThreadedRuntime's time source is a policy (see threaded_runtime.h);
 * this is the test-side implementation. Virtual time advances only when
 * the harness has granted an unconsumed tick AND the optional drain
 * gate reports the runtime caught up with all outstanding work, so the
 * clock is frozen whenever the actuator thread reads it — action,
 * assessment, and halt timestamps become exact virtual instants, which
 * is what lets real threads be compared field-for-field against the
 * event-queue backend (tests/runtime_parity_test.cc for one runtime,
 * tests/node_parity_test.cc for a whole ThreadedMultiAgentNode, where
 * each of 77 agents runs on its own ManualClock and the harness
 * serializes their grants into one global virtual timeline).
 *
 * Protocol:
 *   clock.SetGate(...);      // optional: "runtime drained" predicate
 *   runtime.Start();
 *   clock.GrantTicks(n);     // model loop consumes one per SleepFor
 *   ... wait for Parked() + runtime-specific quiesce conditions ...
 *   runtime.Stop();          // Interrupt() aborts a blocked SleepFor
 */
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <utility>

#include "core/sync.h"
#include "core/thread_annotations.h"
#include "sim/time.h"

namespace sol::core {

/**
 * ClockPolicy whose SleepFor consumes explicitly granted ticks (one
 * tick = one sleep, advancing time by exactly the requested duration)
 * and only proceeds once the drain gate (if set) is open.
 */
class ManualClock
{
  public:
    void
    OnStart()
    {
        MutexLock lock(m_);
        aborted_ = false;
    }

    void
    Interrupt()
    {
        {
            MutexLock lock(m_);
            aborted_ = true;
        }
        cv_.notify_all();
    }

    sim::TimePoint
    Now() const
    {
        return sim::TimePoint(
            sim::Duration(now_ns_.load(std::memory_order_acquire)));
    }

    void
    SleepFor(sim::Duration d)
    {
        MutexLock lock(m_);
        ++sleepers_;
        // Polling wait: the gate flips when the actuator thread bumps
        // counters, which does not notify this cv.
        while (!aborted_ &&
               !(ticks_remaining_ > 0 && (!gate_ || gate_()))) {
            cv_.wait_for(lock, std::chrono::microseconds(200));
        }
        --sleepers_;
        if (aborted_) {
            return;
        }
        --ticks_remaining_;
        now_ns_.fetch_add(d.count(), std::memory_order_release);
    }

    /** Blocking wait until `ready` (the blocking-actuator ablation).
     *  `lock` is the runtime's held ScopedLock over its queue mutex —
     *  a different capability than m_, so no annotation applies. */
    template <typename Lock, typename Ready>
    void
    Wait(ConditionVariable& cv, Lock& lock, Ready ready)
    {
        cv.wait(lock, ready);
    }

    /**
     * Wait until `ready` or the timeout.
     *
     * @return false when the wait timed out with `ready` still false.
     */
    template <typename Lock, typename Ready>
    bool
    WaitFor(ConditionVariable& cv, Lock& lock, sim::Duration timeout,
            Ready ready)
    {
        return cv.wait_for(lock, std::chrono::nanoseconds(timeout),
                           ready);
    }

    /** Allows the model loop to run `n` more collect sleeps. */
    void
    GrantTicks(std::size_t n)
    {
        {
            MutexLock lock(m_);
            ticks_remaining_ += n;
        }
        cv_.notify_all();
    }

    /** Installs the "runtime drained" predicate a granted tick also
     *  waits on. Install before Start(): SleepFor polls it unlocked
     *  relative to the harness. */
    void
    SetGate(std::function<bool()> gate)
    {
        MutexLock lock(m_);
        gate_ = std::move(gate);
    }

    /** True while the model loop is blocked with no ticks left. */
    bool
    Parked() const
    {
        MutexLock lock(m_);
        return sleepers_ > 0 && ticks_remaining_ == 0;
    }

  private:
    mutable Mutex m_;
    ConditionVariable cv_;
    std::atomic<std::int64_t> now_ns_{0};
    std::size_t ticks_remaining_ SOL_GUARDED_BY(m_) = 0;
    int sleepers_ SOL_GUARDED_BY(m_) = 0;
    bool aborted_ SOL_GUARDED_BY(m_) = false;
    std::function<bool()> gate_ SOL_GUARDED_BY(m_);
};

}  // namespace sol::core
