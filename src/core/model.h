/**
 * @file
 * The SOL Model interface (paper Listing 1).
 *
 * The Model is responsible for providing fresh and accurate predictions
 * on a best-effort basis. Developers implement the three common learning
 * operations (collect, update, predict) plus the mandatory safeguards
 * (per-sample validation, periodic self-assessment, and a safe default
 * prediction). The runtime — not the developer — sequences these calls
 * into learning epochs and enforces the safeguard semantics.
 */
#pragma once

#include "core/prediction.h"
#include "sim/time.h"

namespace sol::core {

/**
 * Agent-provided model logic.
 *
 * @tparam D Type of one collected telemetry datum.
 * @tparam P Type of the prediction payload.
 */
template <typename D, typename P>
class Model
{
  public:
    virtual ~Model() = default;

    // --- The three common learning operations --------------------------

    /** Reads one telemetry datum from the node. */
    virtual D CollectData() = 0;

    /** Updates the model with all data committed this epoch. */
    virtual void UpdateModel() = 0;

    /** Produces a prediction from the current model. */
    virtual Prediction<P> ModelPredict() = 0;

    // --- Mandatory safeguards -------------------------------------------

    /**
     * Checks a freshly collected datum against the model's data
     * assumptions (range checks, distributional checks). Invalid data is
     * discarded by the runtime and never reaches CommitData.
     */
    virtual bool ValidateData(const D& data) = 0;

    /** Accepts a validated datum into the model's learning buffer. */
    virtual void CommitData(sim::TimePoint time, const D& data) = 0;

    /**
     * Safe fallback prediction used when the model cannot produce an
     * accurate one (insufficient data, failed assessment). Must minimally
     * impact the agent's safety metric, possibly at lower efficiency.
     */
    virtual Prediction<P> DefaultPredict() = 0;

    /**
     * Periodic self-assessment of model accuracy. While this returns
     * false the runtime intercepts ModelPredict outputs and delivers
     * DefaultPredict instead — the model keeps learning so it can
     * recover, but the Actuator never sees its predictions.
     *
     * @return true when the model's accuracy is acceptable.
     */
    virtual bool AssessModel() = 0;

    // --- Optional hooks ---------------------------------------------------

    /**
     * Allows the model to short-circuit the current epoch (e.g. when it
     * detects low confidence early). The runtime then ends the epoch
     * immediately and delivers DefaultPredict.
     */
    virtual bool ShortCircuitEpoch() { return false; }
};

}  // namespace sol::core
