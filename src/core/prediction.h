/**
 * @file
 * The Prediction type exchanged between a SOL Model and Actuator.
 *
 * Every prediction — including safe *default* predictions — carries an
 * explicit expiration time (paper section 4.1): predictions are built from
 * fresh telemetry and become unsafe to act on once that telemetry is
 * stale. The runtime drops expired predictions before the Actuator sees
 * them.
 */
#pragma once

#include "sim/time.h"

namespace sol::core {

/** A model output with an explicit expiration time. */
template <typename P>
struct Prediction {
    P value{};

    /** Instant after which the prediction must not be acted on. */
    sim::TimePoint expiry{0};

    /**
     * True when this is a safe fallback from DefaultPredict() rather than
     * a model inference. Actuators may use this to log or to bias toward
     * conservative actions.
     */
    bool is_default = false;

    /** True if the prediction is still fresh at the given time. */
    bool FreshAt(sim::TimePoint now) const { return now <= expiry; }
};

/** Builds a model prediction valid for `ttl` past `now`. */
template <typename P>
Prediction<P>
MakePrediction(P value, sim::TimePoint now, sim::Duration ttl)
{
    return Prediction<P>{std::move(value), now + ttl, false};
}

/** Builds a default (fallback) prediction valid for `ttl` past `now`. */
template <typename P>
Prediction<P>
MakeDefaultPrediction(P value, sim::TimePoint now, sim::Duration ttl)
{
    return Prediction<P>{std::move(value), now + ttl, true};
}

}  // namespace sol::core
