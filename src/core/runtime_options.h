/**
 * @file
 * Ablation and fault switches shared by both SOL runtimes.
 *
 * SimRuntime (deterministic experiments) and ThreadedRuntime (real
 * threads) honor the same options so a configuration studied in
 * simulation carries over to deployment unchanged.
 */
#pragma once

#include <cstddef>

namespace sol::core {

/** Ablation and fault switches for a SOL runtime. */
struct RuntimeOptions {
    /**
     * Blocking-actuator ablation (Figs 4, 6-right): the actuator has no
     * timeout and acts only when a prediction arrives, even if stale.
     */
    bool blocking_actuator = false;

    /** Skip ValidateData (the "without data validation" baseline). */
    bool disable_data_validation = false;

    /** Skip AssessModel interception (the "without model safeguard"). */
    bool disable_model_assessment = false;

    /** Skip AssessPerformance/Mitigate (no actuator safeguard). */
    bool disable_actuator_safeguard = false;

    /** Bound on queued predictions; oldest are evicted beyond this. */
    std::size_t max_queued_predictions = 8;
};

}  // namespace sol::core
