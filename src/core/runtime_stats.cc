#include "core/runtime_stats.h"

namespace sol::core {

std::ostream&
operator<<(std::ostream& os, const RuntimeStats& stats)
{
    os << "samples_collected = " << stats.samples_collected << "\n"
       << "invalid_samples = " << stats.invalid_samples << "\n"
       << "epochs = " << stats.epochs << "\n"
       << "model_updates = " << stats.model_updates << "\n"
       << "short_circuit_epochs = " << stats.short_circuit_epochs << "\n"
       << "model_assessments = " << stats.model_assessments << "\n"
       << "failed_assessments = " << stats.failed_assessments << "\n"
       << "intercepted_predictions = " << stats.intercepted_predictions
       << "\n"
       << "predictions_delivered = " << stats.predictions_delivered << "\n"
       << "default_predictions = " << stats.default_predictions << "\n"
       << "expired_predictions = " << stats.expired_predictions << "\n"
       << "dropped_while_halted = " << stats.dropped_while_halted << "\n"
       << "actions_taken = " << stats.actions_taken << "\n"
       << "actions_with_prediction = " << stats.actions_with_prediction
       << "\n"
       << "actuator_timeouts = " << stats.actuator_timeouts << "\n"
       << "actuator_assessments = " << stats.actuator_assessments << "\n"
       << "safeguard_triggers = " << stats.safeguard_triggers << "\n"
       << "mitigations = " << stats.mitigations << "\n"
       << "halted_time_s = " << sim::ToSeconds(stats.halted_time) << "\n";
    return os;
}

}  // namespace sol::core
