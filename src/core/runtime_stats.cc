#include "core/runtime_stats.h"

#include <algorithm>

namespace sol::core {

void
RuntimeStats::Accumulate(const RuntimeStats& other)
{
    samples_collected += other.samples_collected;
    invalid_samples += other.invalid_samples;
    epochs += other.epochs;
    model_updates += other.model_updates;
    short_circuit_epochs += other.short_circuit_epochs;
    model_assessments += other.model_assessments;
    failed_assessments += other.failed_assessments;
    intercepted_predictions += other.intercepted_predictions;
    predictions_delivered += other.predictions_delivered;
    default_predictions += other.default_predictions;
    expired_predictions += other.expired_predictions;
    dropped_while_halted += other.dropped_while_halted;
    peak_queued_predictions =
        std::max(peak_queued_predictions, other.peak_queued_predictions);
    actions_taken += other.actions_taken;
    actions_with_prediction += other.actions_with_prediction;
    actuator_timeouts += other.actuator_timeouts;
    actuator_assessments += other.actuator_assessments;
    safeguard_triggers += other.safeguard_triggers;
    mitigations += other.mitigations;
    halted_time += other.halted_time;
}

std::ostream&
operator<<(std::ostream& os, const RuntimeStats& stats)
{
    os << "samples_collected = " << stats.samples_collected << "\n"
       << "invalid_samples = " << stats.invalid_samples << "\n"
       << "epochs = " << stats.epochs << "\n"
       << "model_updates = " << stats.model_updates << "\n"
       << "short_circuit_epochs = " << stats.short_circuit_epochs << "\n"
       << "model_assessments = " << stats.model_assessments << "\n"
       << "failed_assessments = " << stats.failed_assessments << "\n"
       << "intercepted_predictions = " << stats.intercepted_predictions
       << "\n"
       << "predictions_delivered = " << stats.predictions_delivered << "\n"
       << "default_predictions = " << stats.default_predictions << "\n"
       << "expired_predictions = " << stats.expired_predictions << "\n"
       << "dropped_while_halted = " << stats.dropped_while_halted << "\n"
       << "peak_queued_predictions = " << stats.peak_queued_predictions
       << "\n"
       << "actions_taken = " << stats.actions_taken << "\n"
       << "actions_with_prediction = " << stats.actions_with_prediction
       << "\n"
       << "actuator_timeouts = " << stats.actuator_timeouts << "\n"
       << "actuator_assessments = " << stats.actuator_assessments << "\n"
       << "safeguard_triggers = " << stats.safeguard_triggers << "\n"
       << "mitigations = " << stats.mitigations << "\n"
       << "halted_time_s = " << sim::ToSeconds(stats.halted_time) << "\n";
    return os;
}

RuntimeStats
AtomicRuntimeStats::Snapshot() const
{
    RuntimeStats out;
    const auto load = [](const std::atomic<std::uint64_t>& v) {
        return v.load(std::memory_order_relaxed);
    };
    out.samples_collected = load(samples_collected);
    out.invalid_samples = load(invalid_samples);
    out.epochs = load(epochs);
    out.model_updates = load(model_updates);
    out.short_circuit_epochs = load(short_circuit_epochs);
    out.model_assessments = load(model_assessments);
    out.failed_assessments = load(failed_assessments);
    out.intercepted_predictions = load(intercepted_predictions);
    out.predictions_delivered = load(predictions_delivered);
    out.default_predictions = load(default_predictions);
    out.expired_predictions = load(expired_predictions);
    out.dropped_while_halted = load(dropped_while_halted);
    out.peak_queued_predictions = load(peak_queued_predictions);
    out.actions_taken = load(actions_taken);
    out.actions_with_prediction = load(actions_with_prediction);
    out.actuator_timeouts = load(actuator_timeouts);
    out.actuator_assessments = load(actuator_assessments);
    out.safeguard_triggers = load(safeguard_triggers);
    out.mitigations = load(mitigations);
    out.halted_time =
        sim::Duration(halted_time_ns.load(std::memory_order_relaxed));
    return out;
}

}  // namespace sol::core
