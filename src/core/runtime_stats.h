/**
 * @file
 * Introspection counters exported by the SOL runtimes.
 *
 * These back both the experiment reports (how often safeguards fired,
 * how many predictions expired) and the operational monitoring a
 * production deployment would alert on. Both runtimes maintain them
 * through the shared core::EpochEngine, so the counters obey the same
 * identities everywhere (tests/runtime_parity_test.cc asserts
 * field-for-field equality between the runtimes):
 *
 *   epochs        = model_updates + short_circuit_epochs
 *   predictions_delivered = epochs
 *                 = actions_with_prediction + expired_predictions
 *                   + dropped_while_halted + still-queued
 *   actions_taken = actions_with_prediction + actuator_timeouts
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <ostream>

#include "sim/time.h"

namespace sol::core {

/** Counters maintained by the runtime while an agent executes. */
struct RuntimeStats {
    // Model loop.
    std::uint64_t samples_collected = 0;
    std::uint64_t invalid_samples = 0;   ///< Rejected by ValidateData.
    std::uint64_t epochs = 0;
    std::uint64_t model_updates = 0;
    std::uint64_t short_circuit_epochs = 0;  ///< Ended without enough data.
    std::uint64_t model_assessments = 0;
    std::uint64_t failed_assessments = 0;
    std::uint64_t intercepted_predictions = 0;  ///< Replaced by defaults.

    // Prediction flow.
    std::uint64_t predictions_delivered = 0;
    std::uint64_t default_predictions = 0;
    /** Evicted by the queue bound, or stale when dequeued. */
    std::uint64_t expired_predictions = 0;
    /** Dropped at delivery while actuation was halted, or flushed from
     *  the queue by a safeguard trigger. */
    std::uint64_t dropped_while_halted = 0;
    /** High-water mark of the bounded prediction queue. Compared against
     *  RuntimeOptions::max_queued_predictions it shows how close the
     *  agent runs to eviction (the queue-bound overflow path). */
    std::uint64_t peak_queued_predictions = 0;

    // Actuator loop.
    std::uint64_t actions_taken = 0;
    std::uint64_t actions_with_prediction = 0;
    /** Conservative TakeAction(empty) fallbacks: the actuation timeout
     *  fired without a prediction, or the queued one arrived stale. */
    std::uint64_t actuator_timeouts = 0;
    std::uint64_t actuator_assessments = 0;
    std::uint64_t safeguard_triggers = 0;  ///< Healthy -> failing edges.
    std::uint64_t mitigations = 0;         ///< Mitigate() invocations.
    sim::Duration halted_time{0};          ///< Total time actuation halted.

    /**
     * Folds another agent's counters into this one (multi-agent
     * roll-ups): counters add, peaks take the maximum. New fields must
     * be added here alongside operator<< and AtomicRuntimeStats.
     */
    void Accumulate(const RuntimeStats& other);
};

/** Writes the stats as "name = value" lines. */
std::ostream& operator<<(std::ostream& os, const RuntimeStats& stats);

/**
 * Lock-free twin of RuntimeStats for the threaded runtime.
 *
 * The model and actuator threads update disjoint-or-commutative
 * counters many times per epoch; routing those through a mutex put a
 * lock acquisition on every sample of the 50 us collection loops.
 * Relaxed atomics are exact for monotonic counters, and Snapshot() is
 * a per-field load — fields may be skewed by in-flight increments,
 * which is the same guarantee the mutex gave a caller reading between
 * two updates of one epoch.
 */
struct AtomicRuntimeStats {
    std::atomic<std::uint64_t> samples_collected{0};
    std::atomic<std::uint64_t> invalid_samples{0};
    std::atomic<std::uint64_t> epochs{0};
    std::atomic<std::uint64_t> model_updates{0};
    std::atomic<std::uint64_t> short_circuit_epochs{0};
    std::atomic<std::uint64_t> model_assessments{0};
    std::atomic<std::uint64_t> failed_assessments{0};
    std::atomic<std::uint64_t> intercepted_predictions{0};

    std::atomic<std::uint64_t> predictions_delivered{0};
    std::atomic<std::uint64_t> default_predictions{0};
    std::atomic<std::uint64_t> expired_predictions{0};
    std::atomic<std::uint64_t> dropped_while_halted{0};
    std::atomic<std::uint64_t> peak_queued_predictions{0};

    /** Raises a peak gauge to at least `value` (relaxed CAS loop). */
    static void
    RaisePeak(std::atomic<std::uint64_t>& peak, std::uint64_t value)
    {
        std::uint64_t seen = peak.load(std::memory_order_relaxed);
        while (seen < value &&
               !peak.compare_exchange_weak(seen, value,
                                           std::memory_order_relaxed)) {
        }
    }

    std::atomic<std::uint64_t> actions_taken{0};
    std::atomic<std::uint64_t> actions_with_prediction{0};
    std::atomic<std::uint64_t> actuator_timeouts{0};
    std::atomic<std::uint64_t> actuator_assessments{0};
    std::atomic<std::uint64_t> safeguard_triggers{0};
    std::atomic<std::uint64_t> mitigations{0};
    std::atomic<std::int64_t> halted_time_ns{0};

    /** Copies every field into the plain struct (relaxed loads). */
    RuntimeStats Snapshot() const;
};

}  // namespace sol::core
