#include "core/schedule.h"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <stdexcept>

namespace sol::core {

std::vector<std::string>
Schedule::Validate() const
{
    std::vector<std::string> problems;
    if (data_per_epoch < 1) {
        problems.push_back("data_per_epoch must be >= 1");
    }
    if (data_collect_interval <= sim::Duration::zero()) {
        problems.push_back("data_collect_interval must be positive");
    }
    if (max_epoch_time <= sim::Duration::zero()) {
        problems.push_back("max_epoch_time must be positive");
    }
    if (data_collect_interval > sim::Duration::zero() &&
        max_epoch_time < data_collect_interval) {
        problems.push_back(
            "max_epoch_time must be >= data_collect_interval");
    }
    if (assess_model_every_epochs < 1) {
        problems.push_back("assess_model_every_epochs must be >= 1");
    }
    if (max_actuation_delay <= sim::Duration::zero()) {
        problems.push_back("max_actuation_delay must be positive");
    }
    if (assess_actuator_interval <= sim::Duration::zero()) {
        problems.push_back("assess_actuator_interval must be positive");
    }
    return problems;
}

sim::Duration
ParseDuration(const std::string& text)
{
    std::size_t pos = 0;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '.')) {
        ++pos;
    }
    if (pos == 0) {
        throw std::invalid_argument("duration has no number: " + text);
    }
    const double value = std::stod(text.substr(0, pos));
    const std::string unit = text.substr(pos);
    if (unit == "ns") {
        return sim::Duration(static_cast<std::int64_t>(value));
    }
    if (unit == "us") {
        return sim::Duration(static_cast<std::int64_t>(value * 1e3));
    }
    if (unit == "ms") {
        return sim::Duration(static_cast<std::int64_t>(value * 1e6));
    }
    if (unit == "s") {
        return sim::Duration(static_cast<std::int64_t>(value * 1e9));
    }
    throw std::invalid_argument("unknown duration unit: " + text);
}

namespace {

std::string
Trim(const std::string& s)
{
    const auto begin = s.find_first_not_of(" \t\r\n");
    if (begin == std::string::npos) {
        return "";
    }
    const auto end = s.find_last_not_of(" \t\r\n");
    return s.substr(begin, end - begin + 1);
}

}  // namespace

Schedule
ParseSchedule(std::istream& in)
{
    Schedule schedule;
    std::string line;
    while (std::getline(in, line)) {
        const auto comment = line.find('#');
        if (comment != std::string::npos) {
            line = line.substr(0, comment);
        }
        line = Trim(line);
        if (line.empty()) {
            continue;
        }
        const auto eq = line.find('=');
        if (eq == std::string::npos) {
            throw std::invalid_argument("malformed schedule line: " + line);
        }
        const std::string key = Trim(line.substr(0, eq));
        const std::string value = Trim(line.substr(eq + 1));
        if (key == "data_per_epoch") {
            schedule.data_per_epoch = std::stoi(value);
        } else if (key == "data_collect_interval") {
            schedule.data_collect_interval = ParseDuration(value);
        } else if (key == "max_epoch_time") {
            schedule.max_epoch_time = ParseDuration(value);
        } else if (key == "assess_model_every_epochs") {
            schedule.assess_model_every_epochs = std::stoi(value);
        } else if (key == "max_actuation_delay") {
            schedule.max_actuation_delay = ParseDuration(value);
        } else if (key == "assess_actuator_interval") {
            schedule.assess_actuator_interval = ParseDuration(value);
        } else {
            throw std::invalid_argument("unknown schedule key: " + key);
        }
    }
    return schedule;
}

}  // namespace sol::core
