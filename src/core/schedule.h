/**
 * @file
 * The SOL Schedule (paper Listing 3): developer-provided parameters for
 * how often the Model and Actuator functions run.
 */
#pragma once

#include <istream>
#include <string>
#include <vector>

#include "sim/time.h"

namespace sol::core {

/** Scheduling parameters for one agent. */
struct Schedule {
    // --- Model loop -----------------------------------------------------

    /** Validated datapoints needed before the model updates/predicts. */
    int data_per_epoch = 1;

    /** Interval between CollectData calls. */
    sim::Duration data_collect_interval = sim::Millis(100);

    /**
     * Deadline for a learning epoch. If too few valid datapoints arrive
     * in time, the epoch is short-circuited with a default prediction.
     */
    sim::Duration max_epoch_time = sim::Seconds(2);

    /** AssessModel runs every this many epochs. */
    int assess_model_every_epochs = 1;

    // --- Actuator loop -----------------------------------------------------

    /**
     * Upper bound on the time between control actions: if no prediction
     * arrives within this delay, TakeAction runs with an empty prediction.
     */
    sim::Duration max_actuation_delay = sim::Seconds(5);

    /** Interval between AssessPerformance safeguard checks. */
    sim::Duration assess_actuator_interval = sim::Seconds(1);

    /**
     * Checks internal consistency.
     *
     * @return Human-readable problems; empty when the schedule is valid.
     */
    std::vector<std::string> Validate() const;

    /** True when Validate() reports no problems. */
    bool IsValid() const { return Validate().empty(); }
};

/**
 * Parses a schedule from "key = value" lines (the config_file in paper
 * Listing 3). Durations accept ns/us/ms/s suffixes, e.g.
 *
 *     data_per_epoch = 10
 *     data_collect_interval = 100ms
 *     max_epoch_time = 1s
 *
 * Unknown keys and malformed lines throw std::invalid_argument. Missing
 * keys keep their defaults.
 */
Schedule ParseSchedule(std::istream& in);

/** Parses a duration literal like "250ms", "50us", "1s", "38400ms". */
sim::Duration ParseDuration(const std::string& text);

}  // namespace sol::core
