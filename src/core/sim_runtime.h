/**
 * @file
 * Deterministic SOL runtime on the discrete-event simulator.
 *
 * This is the event-queue adapter around core::EpochEngine, which owns
 * the paper's section 4.2 epoch/assessment/safeguard semantics (see
 * epoch_engine.h for the state machine itself — both runtimes share
 * that single implementation). SimRuntime contributes only scheduling
 * policy on virtual time:
 *
 *   - collect ticks are event-queue continuations at
 *     data_collect_interval (deferred through model stalls),
 *   - each delivered prediction schedules a zero-delay actuator wake,
 *   - the max_actuation_delay timeout is an armed/cancelled event
 *     relative to the last action,
 *   - actuator assessments are a periodic event chain.
 *
 * Fault-injection hooks reproduce the paper's failure experiments:
 * per-sample data corruption (Fig 2/6-left, SetDataFault), model-loop
 * stalls (Fig 4/6-right, StallModelFor), and the RuntimeOptions
 * ablation switches that regenerate the "without SOL" baselines.
 */
#pragma once

#include <functional>
#include <memory>
#include <utility>

#include "core/actuator.h"
#include "core/epoch_engine.h"
#include "core/model.h"
#include "core/runtime_options.h"
#include "core/runtime_stats.h"
#include "core/schedule.h"
#include "sim/event_queue.h"
#include "sim/time.h"

namespace sol::core {

/**
 * Runs one agent (Model + Actuator + Schedule) on an EventQueue.
 *
 * @tparam D Telemetry datum type.
 * @tparam P Prediction payload type.
 */
template <typename D, typename P>
class SimRuntime
{
  public:
    /**
     * @param queue Event queue that owns virtual time.
     * @param model Developer-provided model logic (not owned).
     * @param actuator Developer-provided control logic (not owned).
     * @param schedule Validated schedule; throws if invalid.
     * @param options Fault/ablation switches.
     */
    SimRuntime(sim::EventQueue& queue, Model<D, P>& model,
               Actuator<P>& actuator, const Schedule& schedule,
               RuntimeOptions options = {})
        : queue_(queue),
          engine_(model, actuator, schedule, options),
          alive_(std::make_shared<bool>(false))
    {
    }

    ~SimRuntime() { Stop(); }

    SimRuntime(const SimRuntime&) = delete;
    SimRuntime& operator=(const SimRuntime&) = delete;

    /**
     * Starts both control loops. Start after Stop resumes with a fresh
     * epoch; engine state (counters, a failing model assessment, a
     * tripped safeguard) persists across the restart.
     */
    void
    Start()
    {
        if (*alive_) {
            return;
        }
        *alive_ = true;
        engine_.OnStart(queue_.Now());
        engine_.BeginEpoch(queue_.Now());
        ScheduleCollect();
        last_action_time_ = queue_.Now();
        if (!engine_.options().blocking_actuator) {
            ArmActuatorTimeout();
        }
        if (!engine_.options().disable_actuator_safeguard) {
            ScheduleActuatorAssessment();
        }
    }

    /** Stops both loops; pending events become no-ops. */
    void
    Stop()
    {
        if (!*alive_) {
            return;
        }
        engine_.OnStop(queue_.Now());
        *alive_ = false;
        // Strand every pending continuation on the dead token so a
        // later Start() cannot resurrect the old event chains.
        alive_ = std::make_shared<bool>(false);
    }

    bool running() const { return *alive_; }

    /**
     * Stalls the Model loop for the given duration starting now. Collect
     * ticks scheduled inside the window are deferred to its end, so the
     * samples they would have taken are missed — exactly the effect of
     * the agent being starved by higher-priority work.
     */
    void
    StallModelFor(sim::Duration duration)
    {
        const sim::TimePoint until = queue_.Now() + duration;
        if (until > model_resume_time_) {
            model_resume_time_ = until;
        }
    }

    /**
     * Installs a hook applied to every collected datum before validation
     * (fault injection: corrupted counters, driver bugs).
     */
    void
    SetDataFault(std::function<void(D&)> fault)
    {
        engine_.SetDataFault(std::move(fault));
    }

    /**
     * Attaches a flight-recorder track for this runtime's spans and
     * instants. One recorder serves both engine sides — the event
     * queue serializes everything on one thread, so SPSC holds. Call
     * before Start(); null detaches.
     */
    void
    SetTraceRecorder(telemetry::trace::TraceRecorder* recorder)
    {
        engine_.SetTraceRecorders(recorder, recorder);
    }

    /** Copy of the always-on epoch-duration histogram (virtual ns). */
    telemetry::LatencyHistogram
    EpochLatencyHistogram() const
    {
        return engine_.EpochLatencyHistogram();
    }

    const RuntimeStats& stats() const { return engine_.stats(); }
    bool actuator_halted() const { return engine_.actuator_halted(); }
    bool model_assessment_failing() const
    {
        return engine_.model_assessment_failing();
    }
    std::size_t queued_predictions() const
    {
        return engine_.queued_predictions();
    }

  private:
    using Engine = EpochEngine<D, P, SimEnginePolicy>;
    using CollectOutcome = typename Engine::CollectOutcome;
    using WakeOutcome = typename Engine::WakeOutcome;

    // ---- Model loop -----------------------------------------------------

    void
    ScheduleCollect()
    {
        auto alive = alive_;
        queue_.ScheduleAfter(engine_.schedule().data_collect_interval,
                             [this, alive] {
                                 if (*alive) {
                                     OnCollectTick();
                                 }
                             });
    }

    void
    OnCollectTick()
    {
        const sim::TimePoint now = queue_.Now();
        if (now < model_resume_time_) {
            // The model loop is stalled: defer to the end of the stall.
            auto alive = alive_;
            queue_.ScheduleAt(model_resume_time_, [this, alive] {
                if (*alive) {
                    OnCollectTick();
                }
            });
            return;
        }

        const CollectOutcome outcome = engine_.CollectOnce(now);
        if (outcome == CollectOutcome::kEpochContinues) {
            ScheduleCollect();
            return;
        }
        engine_.Deliver(engine_.FinishEpoch(
            now, outcome == CollectOutcome::kEpochComplete));
        // Wake the actuator for the new prediction (or, while halted,
        // for nothing — the wake is a harmless no-op then).
        auto alive = alive_;
        queue_.ScheduleAfter(sim::Duration::zero(), [this, alive] {
            if (*alive) {
                OnActuatorWake(/*from_timeout=*/false);
            }
        });
        engine_.BeginEpoch(now);
        ScheduleCollect();
    }

    // ---- Actuator loop -----------------------------------------------------

    void
    ArmActuatorTimeout()
    {
        timeout_handle_.Cancel();
        auto alive = alive_;
        timeout_handle_ = queue_.ScheduleAt(
            last_action_time_ + engine_.schedule().max_actuation_delay,
            [this, alive] {
                if (*alive) {
                    OnActuatorWake(/*from_timeout=*/true);
                }
            });
    }

    void
    OnActuatorWake(bool from_timeout)
    {
        const sim::TimePoint now = queue_.Now();
        const WakeOutcome outcome = engine_.ActuatorWake(now, from_timeout);
        if (outcome == WakeOutcome::kNothingToDo) {
            return;
        }
        // Acted, or woke while halted: either way re-arm relative to
        // now (while halted no actions run, so an arm based on a stale
        // last action time would fire immediately forever).
        last_action_time_ = now;
        if (!engine_.options().blocking_actuator) {
            ArmActuatorTimeout();
        }
    }

    void
    ScheduleActuatorAssessment()
    {
        auto alive = alive_;
        queue_.ScheduleAfter(engine_.schedule().assess_actuator_interval,
                             [this, alive] {
                                 if (*alive) {
                                     OnActuatorAssessment();
                                 }
                             });
    }

    void
    OnActuatorAssessment()
    {
        const sim::TimePoint now = queue_.Now();
        if (engine_.AssessActuator(now)) {
            // Resumed: restart the action cadence from now.
            last_action_time_ = now;
            if (!engine_.options().blocking_actuator) {
                ArmActuatorTimeout();
            }
        }
        ScheduleActuatorAssessment();
    }

    sim::EventQueue& queue_;
    Engine engine_;

    std::shared_ptr<bool> alive_;
    sim::TimePoint model_resume_time_{0};
    sim::TimePoint last_action_time_{0};
    sim::EventHandle timeout_handle_;
};

}  // namespace sol::core
