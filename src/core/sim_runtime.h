/**
 * @file
 * Deterministic SOL runtime on the discrete-event simulator.
 *
 * Implements the paper's section 4.2 semantics on virtual time:
 *
 *   - The Model loop collects data at data_collect_interval until either
 *     data_per_epoch valid samples were committed or max_epoch_time
 *     elapsed. With enough data it updates the model and predicts;
 *     otherwise it short-circuits the epoch with a default prediction.
 *   - AssessModel runs every K epochs; while it fails, ModelPredict
 *     outputs are intercepted and DefaultPredict is delivered instead —
 *     the model keeps learning so it can recover, but the Actuator never
 *     acts on its predictions.
 *   - The Actuator loop consumes predictions from a queue when available
 *     and is woken after max_actuation_delay without one, taking the
 *     conservative action. Expired predictions are dropped.
 *   - AssessPerformance runs every assess_actuator_interval; while it
 *     fails the runtime calls Mitigate and halts actuation.
 *
 * Fault-injection hooks reproduce the paper's failure experiments:
 * per-sample data corruption (Fig 2/6-left), model-loop stalls
 * (Fig 4/6-right), and ablation switches that disable individual
 * safeguards to regenerate the "without SOL" baselines.
 */
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/actuator.h"
#include "core/model.h"
#include "core/runtime_options.h"
#include "core/runtime_stats.h"
#include "core/schedule.h"
#include "sim/event_queue.h"
#include "sim/time.h"

namespace sol::core {

/**
 * Runs one agent (Model + Actuator + Schedule) on an EventQueue.
 *
 * @tparam D Telemetry datum type.
 * @tparam P Prediction payload type.
 */
template <typename D, typename P>
class SimRuntime
{
  public:
    /**
     * @param queue Event queue that owns virtual time.
     * @param model Developer-provided model logic (not owned).
     * @param actuator Developer-provided control logic (not owned).
     * @param schedule Validated schedule; throws if invalid.
     * @param options Fault/ablation switches.
     */
    SimRuntime(sim::EventQueue& queue, Model<D, P>& model,
               Actuator<P>& actuator, const Schedule& schedule,
               RuntimeOptions options = {})
        : queue_(queue),
          model_(model),
          actuator_(actuator),
          schedule_(schedule),
          options_(options),
          alive_(std::make_shared<bool>(false))
    {
        const auto problems = schedule_.Validate();
        if (!problems.empty()) {
            throw std::invalid_argument("invalid schedule: " + problems[0]);
        }
    }

    ~SimRuntime() { Stop(); }

    SimRuntime(const SimRuntime&) = delete;
    SimRuntime& operator=(const SimRuntime&) = delete;

    /** Starts both control loops. Must be called at most once. */
    void
    Start()
    {
        if (*alive_) {
            return;
        }
        *alive_ = true;
        BeginEpoch();
        last_action_time_ = queue_.Now();
        if (!options_.blocking_actuator) {
            ArmActuatorTimeout();
        }
        if (!options_.disable_actuator_safeguard) {
            ScheduleActuatorAssessment();
        }
    }

    /** Stops both loops; pending events become no-ops. */
    void
    Stop()
    {
        if (*alive_ && halted_) {
            // Close out the in-progress halt so halted_time is accurate.
            stats_.halted_time += queue_.Now() - halt_start_;
            halted_ = false;
        }
        *alive_ = false;
    }

    bool running() const { return *alive_; }

    /**
     * Stalls the Model loop for the given duration starting now. Collect
     * ticks scheduled inside the window are deferred to its end, so the
     * samples they would have taken are missed — exactly the effect of
     * the agent being starved by higher-priority work.
     */
    void
    StallModelFor(sim::Duration duration)
    {
        const sim::TimePoint until = queue_.Now() + duration;
        if (until > model_resume_time_) {
            model_resume_time_ = until;
        }
    }

    /**
     * Installs a hook applied to every collected datum before validation
     * (fault injection: corrupted counters, driver bugs).
     */
    void
    SetDataFault(std::function<void(D&)> fault)
    {
        data_fault_ = std::move(fault);
    }

    const RuntimeStats& stats() const { return stats_; }
    bool actuator_halted() const { return halted_; }
    bool model_assessment_failing() const { return !model_ok_; }
    std::size_t queued_predictions() const { return pending_.size(); }

  private:
    // ---- Model loop -----------------------------------------------------

    void
    BeginEpoch()
    {
        epoch_start_ = queue_.Now();
        valid_samples_ = 0;
        ScheduleCollect();
    }

    void
    ScheduleCollect()
    {
        auto alive = alive_;
        queue_.ScheduleAfter(schedule_.data_collect_interval,
                             [this, alive] {
                                 if (*alive) {
                                     OnCollectTick();
                                 }
                             });
    }

    void
    OnCollectTick()
    {
        const sim::TimePoint now = queue_.Now();
        if (now < model_resume_time_) {
            // The model loop is stalled: defer to the end of the stall.
            auto alive = alive_;
            queue_.ScheduleAt(model_resume_time_, [this, alive] {
                if (*alive) {
                    OnCollectTick();
                }
            });
            return;
        }

        D data = model_.CollectData();
        ++stats_.samples_collected;
        if (data_fault_) {
            data_fault_(data);
        }
        const bool valid =
            options_.disable_data_validation || model_.ValidateData(data);
        if (valid) {
            model_.CommitData(now, data);
            ++valid_samples_;
        } else {
            ++stats_.invalid_samples;
        }

        if (model_.ShortCircuitEpoch()) {
            FinishEpoch(/*enough_data=*/false);
            return;
        }
        if (valid_samples_ >= schedule_.data_per_epoch) {
            FinishEpoch(/*enough_data=*/true);
            return;
        }
        if (now - epoch_start_ >= schedule_.max_epoch_time) {
            FinishEpoch(/*enough_data=*/false);
            return;
        }
        ScheduleCollect();
    }

    void
    FinishEpoch(bool enough_data)
    {
        ++stats_.epochs;
        Prediction<P> pred;
        if (enough_data) {
            model_.UpdateModel();
            ++stats_.model_updates;
            pred = model_.ModelPredict();

            if (!options_.disable_model_assessment &&
                stats_.epochs % static_cast<std::uint64_t>(
                                    schedule_.assess_model_every_epochs) ==
                    0) {
                ++stats_.model_assessments;
                model_ok_ = model_.AssessModel();
                if (!model_ok_) {
                    ++stats_.failed_assessments;
                }
            }
            if (!model_ok_) {
                // Interception: the Actuator only ever sees predictions
                // from a model that passes assessment.
                pred = model_.DefaultPredict();
                ++stats_.intercepted_predictions;
            }
        } else {
            ++stats_.short_circuit_epochs;
            pred = model_.DefaultPredict();
        }
        DeliverPrediction(pred);
        BeginEpoch();
    }

    // ---- Prediction flow ---------------------------------------------------

    void
    DeliverPrediction(Prediction<P> pred)
    {
        ++stats_.predictions_delivered;
        if (pred.is_default) {
            ++stats_.default_predictions;
        }
        if (halted_) {
            ++stats_.dropped_while_halted;
            return;
        }
        pending_.push_back(std::move(pred));
        if (pending_.size() > stats_.peak_queued_predictions) {
            stats_.peak_queued_predictions = pending_.size();
        }
        while (pending_.size() > options_.max_queued_predictions) {
            pending_.pop_front();
            ++stats_.expired_predictions;
        }
        // Wake the actuator for the new prediction.
        auto alive = alive_;
        queue_.ScheduleAfter(sim::Duration::zero(), [this, alive] {
            if (*alive) {
                OnActuatorWake(/*from_timeout=*/false);
            }
        });
    }

    // ---- Actuator loop -----------------------------------------------------

    void
    ArmActuatorTimeout()
    {
        timeout_handle_.Cancel();
        auto alive = alive_;
        timeout_handle_ = queue_.ScheduleAt(
            last_action_time_ + schedule_.max_actuation_delay,
            [this, alive] {
                if (*alive) {
                    OnActuatorWake(/*from_timeout=*/true);
                }
            });
    }

    void
    OnActuatorWake(bool from_timeout)
    {
        if (halted_) {
            pending_.clear();
            if (!options_.blocking_actuator) {
                // Re-arm relative to now: while halted no actions run, so
                // an arm based on the stale last_action_time_ would fire
                // immediately forever.
                last_action_time_ = queue_.Now();
                ArmActuatorTimeout();
            }
            return;
        }
        const sim::TimePoint now = queue_.Now();
        std::optional<Prediction<P>> pred;
        if (!pending_.empty()) {
            pred = std::move(pending_.front());
            pending_.pop_front();
        }
        if (from_timeout && !pred.has_value()) {
            ++stats_.actuator_timeouts;
        }
        if (!from_timeout && !pred.has_value()) {
            // Wake for a prediction consumed by an earlier event at the
            // same instant; nothing to do.
            return;
        }
        if (pred.has_value() && !options_.blocking_actuator &&
            !pred->FreshAt(now)) {
            // Stale prediction: the conservative path takes over.
            pred.reset();
            ++stats_.expired_predictions;
        }
        actuator_.TakeAction(pred);
        ++stats_.actions_taken;
        if (pred.has_value()) {
            ++stats_.actions_with_prediction;
        }
        last_action_time_ = now;
        if (!options_.blocking_actuator) {
            ArmActuatorTimeout();
        }
    }

    void
    ScheduleActuatorAssessment()
    {
        auto alive = alive_;
        queue_.ScheduleAfter(schedule_.assess_actuator_interval,
                             [this, alive] {
                                 if (*alive) {
                                     OnActuatorAssessment();
                                 }
                             });
    }

    void
    OnActuatorAssessment()
    {
        ++stats_.actuator_assessments;
        const bool ok = actuator_.AssessPerformance();
        if (!ok) {
            if (!halted_) {
                ++stats_.safeguard_triggers;
                halt_start_ = queue_.Now();
            }
            halted_ = true;
            actuator_.Mitigate();
            ++stats_.mitigations;
        } else if (halted_) {
            halted_ = false;
            stats_.halted_time += queue_.Now() - halt_start_;
            // Resume regular actions.
            last_action_time_ = queue_.Now();
            if (!options_.blocking_actuator) {
                ArmActuatorTimeout();
            }
        }
        ScheduleActuatorAssessment();
    }

    sim::EventQueue& queue_;
    Model<D, P>& model_;
    Actuator<P>& actuator_;
    Schedule schedule_;
    RuntimeOptions options_;

    std::shared_ptr<bool> alive_;
    std::function<void(D&)> data_fault_;

    // Model loop state.
    sim::TimePoint epoch_start_{0};
    int valid_samples_ = 0;
    bool model_ok_ = true;
    sim::TimePoint model_resume_time_{0};

    // Actuator loop state.
    std::deque<Prediction<P>> pending_;
    sim::TimePoint last_action_time_{0};
    sim::EventHandle timeout_handle_;
    bool halted_ = false;
    sim::TimePoint halt_start_{0};

    RuntimeStats stats_;
};

}  // namespace sol::core
