/**
 * @file
 * Annotated synchronization primitives: std::mutex and friends wrapped
 * so Clang Thread Safety Analysis can track them.
 *
 * libstdc++'s std::mutex / std::lock_guard carry no capability
 * attributes, so `-Wthread-safety` cannot see an acquisition through
 * them: every SOL_GUARDED_BY member would warn even in correct code.
 * These wrappers are zero-cost shims (one inlined forwarding call per
 * operation, no extra state) that carry the attributes:
 *
 *   - Mutex / SharedMutex: SOL_CAPABILITY-annotated lockables.
 *   - ScopedLock<M> / SharedScopedLock<M>: the std::lock_guard /
 *     std::shared_lock replacements, declared SOL_SCOPED_CAPABILITY.
 *   - NullMutex: the simulation backend's no-op lockable (moved here
 *     from epoch_engine.h), annotated like a real one so EpochEngine's
 *     discipline is checked identically under both policies.
 *   - ConditionVariable: std::condition_variable_any, which (unlike
 *     std::condition_variable) waits on any BasicLockable — here a
 *     ScopedLock, so the guarded state a wait predicate reads stays
 *     inside the analyzed lock scope.
 *
 * Condition-variable waits release and reacquire the lock internally;
 * the analysis does not model that (the wait happens inside a system
 * header, where diagnostics are suppressed) and sees only the truth
 * that matters statically: the lock is held before and after the wait.
 * Wait *predicates* run with the lock held but are separate closures
 * the analysis walks into without that context — annotate them with
 * SOL_NO_THREAD_SAFETY_ANALYSIS (see ThreadedRuntime::ActuatorLoop).
 */
#pragma once

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "core/thread_annotations.h"

namespace sol::core {

/** Annotated std::mutex. Prefer ScopedLock over manual lock/unlock. */
class SOL_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex&) = delete;
    Mutex& operator=(const Mutex&) = delete;

    void lock() SOL_ACQUIRE() { m_.lock(); }
    void unlock() SOL_RELEASE() { m_.unlock(); }
    bool try_lock() SOL_TRY_ACQUIRE(true) { return m_.try_lock(); }

  private:
    std::mutex m_;
};

/** Annotated std::shared_mutex (reader/writer lock). */
class SOL_CAPABILITY("shared_mutex") SharedMutex
{
  public:
    SharedMutex() = default;
    SharedMutex(const SharedMutex&) = delete;
    SharedMutex& operator=(const SharedMutex&) = delete;

    void lock() SOL_ACQUIRE() { m_.lock(); }
    void unlock() SOL_RELEASE() { m_.unlock(); }
    void lock_shared() SOL_ACQUIRE_SHARED() { m_.lock_shared(); }
    void unlock_shared() SOL_RELEASE_SHARED() { m_.unlock_shared(); }

  private:
    std::shared_mutex m_;
};

/**
 * Lockable that does nothing: the simulation backend is single-
 * threaded, so EpochEngine's queue guard compiles away — but it still
 * carries the capability attributes, so the sim policy's locking
 * discipline is analyzed exactly like the threaded policy's.
 */
class SOL_CAPABILITY("mutex") NullMutex
{
  public:
    void lock() SOL_ACQUIRE() {}
    void unlock() SOL_RELEASE() {}
    bool try_lock() SOL_TRY_ACQUIRE(true) { return true; }
};

/**
 * RAII exclusive lock over any annotated lockable (the std::lock_guard
 * replacement). Also BasicLockable itself — lock()/unlock() exist so a
 * ConditionVariable can release/reacquire it during a wait — but user
 * code should never call them directly.
 */
template <typename M>
class SOL_SCOPED_CAPABILITY ScopedLock
{
  public:
    explicit ScopedLock(M& m) SOL_ACQUIRE(m) : m_(m) { m_.lock(); }
    ~ScopedLock() SOL_RELEASE() { m_.unlock(); }

    ScopedLock(const ScopedLock&) = delete;
    ScopedLock& operator=(const ScopedLock&) = delete;

    /** For ConditionVariable only. */
    void lock() SOL_ACQUIRE() { m_.lock(); }
    /** For ConditionVariable only. */
    void unlock() SOL_RELEASE() { m_.unlock(); }

  private:
    M& m_;
};

/** RAII shared (reader) lock over a SharedMutex. */
template <typename M>
class SOL_SCOPED_CAPABILITY SharedScopedLock
{
  public:
    explicit SharedScopedLock(M& m) SOL_ACQUIRE_SHARED(m) : m_(m)
    {
        m_.lock_shared();
    }
    ~SharedScopedLock() SOL_RELEASE() { m_.unlock_shared(); }

    SharedScopedLock(const SharedScopedLock&) = delete;
    SharedScopedLock& operator=(const SharedScopedLock&) = delete;

  private:
    M& m_;
};

using MutexLock = ScopedLock<Mutex>;
using ReaderLock = SharedScopedLock<SharedMutex>;
using WriterLock = ScopedLock<SharedMutex>;

/** Condition variable that waits on a ScopedLock (BasicLockable). */
using ConditionVariable = std::condition_variable_any;

}  // namespace sol::core
