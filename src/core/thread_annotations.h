/**
 * @file
 * Portable Clang Thread Safety Analysis annotations.
 *
 * Layer 1 of the static-analysis pass (docs/STATIC_ANALYSIS.md): every
 * mutex-guarded structure in the tree declares *which* lock guards
 * *which* state, and Clang's -Wthread-safety proves the discipline at
 * compile time — an unguarded read of arbiter accounting or registry
 * state becomes a build error instead of a TSan lottery ticket. Under
 * GCC (the tier-1 toolchain) every macro expands to nothing, so the
 * annotations cost nothing and the tree stays buildable everywhere;
 * the `static-analysis` CI leg builds with Clang and
 * -DSOL_THREAD_SAFETY_ANALYSIS=ON to enforce them.
 *
 * The macro set mirrors the Clang documentation's canonical names
 * (capability/guarded_by/requires_capability/...), prefixed SOL_ to
 * avoid collisions with abseil or system headers. Use them through the
 * annotated primitives in core/sync.h (sol::core::Mutex, ScopedLock)
 * rather than raw std::mutex: libstdc++'s mutexes carry no capability
 * attributes, so the analysis cannot see through std::lock_guard.
 */
#pragma once

#if defined(__clang__) && (!defined(SOL_NO_THREAD_SAFETY_ATTRIBUTES))
#define SOL_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define SOL_THREAD_ANNOTATION_(x)  // no-op off Clang
#endif

/** Declares a type to be a capability (a lock). */
#define SOL_CAPABILITY(x) SOL_THREAD_ANNOTATION_(capability(x))

/** Declares an RAII type that acquires in its constructor and releases
 *  in its destructor. */
#define SOL_SCOPED_CAPABILITY SOL_THREAD_ANNOTATION_(scoped_lockable)

/** Data member readable/writable only while holding `x`. */
#define SOL_GUARDED_BY(x) SOL_THREAD_ANNOTATION_(guarded_by(x))

/** Pointer member whose *pointee* is guarded by `x`. */
#define SOL_PT_GUARDED_BY(x) SOL_THREAD_ANNOTATION_(pt_guarded_by(x))

/** Function callable only while holding the given capabilities
 *  exclusively ("_locked" suffix functions). */
#define SOL_REQUIRES(...) \
    SOL_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/** Function callable while holding the capabilities at least shared. */
#define SOL_REQUIRES_SHARED(...) \
    SOL_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/** Function that acquires the capability and holds it on return. */
#define SOL_ACQUIRE(...) \
    SOL_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

#define SOL_ACQUIRE_SHARED(...) \
    SOL_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

/** Function that releases the capability (generic: releases whatever
 *  mode is held — the documented form for scoped-lock destructors). */
#define SOL_RELEASE(...) \
    SOL_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

#define SOL_RELEASE_SHARED(...) \
    SOL_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

/** Function that acquires the capability iff it returns `b`. */
#define SOL_TRY_ACQUIRE(...) \
    SOL_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/** Function that must NOT be called while holding the capability
 *  (deadlock prevention: e.g. callbacks that re-enter the registry). */
#define SOL_EXCLUDES(...) SOL_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/** Asserts (at runtime boundaries the analysis cannot see across) that
 *  the calling thread already holds the capability. */
#define SOL_ASSERT_CAPABILITY(x) \
    SOL_THREAD_ANNOTATION_(assert_capability(x))

/** Getter returning a reference to the capability itself. */
#define SOL_RETURN_CAPABILITY(x) SOL_THREAD_ANNOTATION_(lock_returned(x))

/**
 * Escape hatch: disables the analysis for one function. Reserved for
 * code whose locking discipline is real but inexpressible — e.g. the
 * arbiter's expand path, which acquires a *runtime-computed set* of
 * per-domain locks in ascending index order. Every use must carry a
 * comment explaining why the discipline is safe and why the analysis
 * cannot follow it (docs/STATIC_ANALYSIS.md, "escape-hatch etiquette").
 */
#define SOL_NO_THREAD_SAFETY_ANALYSIS \
    SOL_THREAD_ANNOTATION_(no_thread_safety_analysis)
