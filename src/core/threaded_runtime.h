/**
 * @file
 * Real-time SOL runtime: two OS threads joined by a condition-variable
 * prediction queue.
 *
 * This is the deployable form of the runtime described in paper section
 * 4.2 — the Model control loop and the Actuator control loop run in
 * separately scheduled threads so a throttled or stalled model can never
 * starve the actuator, which keeps taking safe actions on its
 * max_actuation_delay timeout. Semantics mirror SimRuntime; experiments
 * use SimRuntime for determinism, while examples and deployments use
 * this.
 */
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>

#include "core/actuator.h"
#include "core/model.h"
#include "core/runtime_stats.h"
#include "core/schedule.h"
#include "sim/time.h"

namespace sol::core {

/**
 * Runs one agent on real threads and the steady clock.
 *
 * @tparam D Telemetry datum type.
 * @tparam P Prediction payload type.
 */
template <typename D, typename P>
class ThreadedRuntime
{
  public:
    ThreadedRuntime(Model<D, P>& model, Actuator<P>& actuator,
                    const Schedule& schedule)
        : model_(model), actuator_(actuator), schedule_(schedule)
    {
        const auto problems = schedule_.Validate();
        if (!problems.empty()) {
            throw std::invalid_argument("invalid schedule: " + problems[0]);
        }
    }

    ~ThreadedRuntime() { Stop(); }

    ThreadedRuntime(const ThreadedRuntime&) = delete;
    ThreadedRuntime& operator=(const ThreadedRuntime&) = delete;

    /** Starts both loops. */
    void
    Start()
    {
        if (running_.exchange(true)) {
            return;
        }
        start_ = std::chrono::steady_clock::now();
        model_thread_ = std::thread([this] { ModelLoop(); });
        actuator_thread_ = std::thread([this] { ActuatorLoop(); });
    }

    /** Stops both loops and joins the threads. */
    void
    Stop()
    {
        if (!running_.exchange(false)) {
            return;
        }
        queue_cv_.notify_all();
        if (model_thread_.joinable()) {
            model_thread_.join();
        }
        if (actuator_thread_.joinable()) {
            actuator_thread_.join();
        }
    }

    bool running() const { return running_.load(); }

    /** Snapshot of the runtime counters. */
    RuntimeStats
    stats() const
    {
        std::lock_guard lock(stats_mutex_);
        return stats_;
    }

    bool actuator_halted() const { return halted_.load(); }

  private:
    sim::TimePoint
    Now() const
    {
        return std::chrono::duration_cast<sim::Duration>(
            std::chrono::steady_clock::now() - start_);
    }

    void
    SleepFor(sim::Duration d) const
    {
        std::this_thread::sleep_for(d);
    }

    void
    ModelLoop()
    {
        bool model_ok = true;
        while (running_.load()) {
            // One learning epoch.
            const sim::TimePoint epoch_start = Now();
            int valid_samples = 0;
            bool short_circuit = false;
            while (running_.load()) {
                SleepFor(schedule_.data_collect_interval);
                if (!running_.load()) {
                    return;
                }
                D data = model_.CollectData();
                bool valid = model_.ValidateData(data);
                {
                    std::lock_guard lock(stats_mutex_);
                    ++stats_.samples_collected;
                    if (!valid) {
                        ++stats_.invalid_samples;
                    }
                }
                if (valid) {
                    model_.CommitData(Now(), data);
                    ++valid_samples;
                }
                if (model_.ShortCircuitEpoch()) {
                    short_circuit = true;
                    break;
                }
                if (valid_samples >= schedule_.data_per_epoch) {
                    break;
                }
                if (Now() - epoch_start >= schedule_.max_epoch_time) {
                    short_circuit = true;
                    break;
                }
            }
            if (!running_.load()) {
                return;
            }

            Prediction<P> pred;
            const bool enough = !short_circuit;
            std::uint64_t epoch_number;
            {
                std::lock_guard lock(stats_mutex_);
                epoch_number = ++stats_.epochs;
            }
            if (enough) {
                model_.UpdateModel();
                pred = model_.ModelPredict();
                {
                    std::lock_guard lock(stats_mutex_);
                    ++stats_.model_updates;
                }
                if (epoch_number % static_cast<std::uint64_t>(
                                       schedule_.assess_model_every_epochs) ==
                    0) {
                    model_ok = model_.AssessModel();
                    std::lock_guard lock(stats_mutex_);
                    ++stats_.model_assessments;
                    if (!model_ok) {
                        ++stats_.failed_assessments;
                    }
                }
                if (!model_ok) {
                    pred = model_.DefaultPredict();
                    std::lock_guard lock(stats_mutex_);
                    ++stats_.intercepted_predictions;
                }
            } else {
                pred = model_.DefaultPredict();
                std::lock_guard lock(stats_mutex_);
                ++stats_.short_circuit_epochs;
            }

            {
                std::lock_guard lock(queue_mutex_);
                pending_.push_back(pred);
                while (pending_.size() > 8) {
                    pending_.pop_front();
                }
            }
            {
                std::lock_guard lock(stats_mutex_);
                ++stats_.predictions_delivered;
                if (pred.is_default) {
                    ++stats_.default_predictions;
                }
            }
            queue_cv_.notify_one();
        }
    }

    void
    ActuatorLoop()
    {
        sim::TimePoint last_assessment = Now();
        while (running_.load()) {
            std::optional<Prediction<P>> pred;
            {
                std::unique_lock lock(queue_mutex_);
                queue_cv_.wait_for(
                    lock,
                    std::chrono::nanoseconds(
                        schedule_.max_actuation_delay.count()),
                    [this] {
                        return !pending_.empty() || !running_.load();
                    });
                if (!running_.load()) {
                    return;
                }
                if (!pending_.empty()) {
                    pred = pending_.front();
                    pending_.pop_front();
                }
            }

            const sim::TimePoint now = Now();
            if (halted_.load()) {
                // Actuation halted: only the safeguard check runs.
                pred.reset();
            } else {
                if (pred.has_value() && !pred->FreshAt(now)) {
                    pred.reset();
                    std::lock_guard lock(stats_mutex_);
                    ++stats_.expired_predictions;
                }
                actuator_.TakeAction(pred);
                std::lock_guard lock(stats_mutex_);
                ++stats_.actions_taken;
                if (pred.has_value()) {
                    ++stats_.actions_with_prediction;
                } else {
                    ++stats_.actuator_timeouts;
                }
            }

            if (now - last_assessment >=
                schedule_.assess_actuator_interval) {
                last_assessment = now;
                const bool ok = actuator_.AssessPerformance();
                {
                    std::lock_guard lock(stats_mutex_);
                    ++stats_.actuator_assessments;
                }
                if (!ok) {
                    if (!halted_.exchange(true)) {
                        std::lock_guard lock(stats_mutex_);
                        ++stats_.safeguard_triggers;
                    }
                    actuator_.Mitigate();
                    std::lock_guard lock(stats_mutex_);
                    ++stats_.mitigations;
                } else {
                    halted_.store(false);
                }
            }
        }
    }

    Model<D, P>& model_;
    Actuator<P>& actuator_;
    Schedule schedule_;

    std::atomic<bool> running_{false};
    std::atomic<bool> halted_{false};
    std::chrono::steady_clock::time_point start_;

    std::thread model_thread_;
    std::thread actuator_thread_;

    std::mutex queue_mutex_;
    std::condition_variable queue_cv_;
    std::deque<Prediction<P>> pending_;

    mutable std::mutex stats_mutex_;
    RuntimeStats stats_;
};

}  // namespace sol::core
