/**
 * @file
 * Real-time SOL runtime: two OS threads joined by a condition-variable
 * prediction queue.
 *
 * This is the deployable form of the runtime described in paper section
 * 4.2 — the Model control loop and the Actuator control loop run in
 * separately scheduled threads so a throttled or stalled model can never
 * starve the actuator, which keeps taking safe actions on its
 * max_actuation_delay timeout. Semantics mirror SimRuntime, including
 * the RuntimeOptions ablation/fault switches and the queued-prediction
 * bound; experiments use SimRuntime for determinism, while examples and
 * deployments use this.
 *
 * Stats counters are relaxed atomics (AtomicRuntimeStats): both loops
 * bump counters many times per epoch, and a mutex on that path showed
 * up in deployment-shaped measurements (see ROADMAP "stats
 * granularity"). stats() snapshots without stopping either loop.
 */
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>

#include "core/actuator.h"
#include "core/model.h"
#include "core/runtime_options.h"
#include "core/runtime_stats.h"
#include "core/schedule.h"
#include "sim/time.h"

namespace sol::core {

/**
 * Runs one agent on real threads and the steady clock.
 *
 * @tparam D Telemetry datum type.
 * @tparam P Prediction payload type.
 */
template <typename D, typename P>
class ThreadedRuntime
{
  public:
    ThreadedRuntime(Model<D, P>& model, Actuator<P>& actuator,
                    const Schedule& schedule, RuntimeOptions options = {})
        : model_(model),
          actuator_(actuator),
          schedule_(schedule),
          options_(options)
    {
        const auto problems = schedule_.Validate();
        if (!problems.empty()) {
            throw std::invalid_argument("invalid schedule: " + problems[0]);
        }
    }

    ~ThreadedRuntime() { Stop(); }

    ThreadedRuntime(const ThreadedRuntime&) = delete;
    ThreadedRuntime& operator=(const ThreadedRuntime&) = delete;

    /** Starts both loops. */
    void
    Start()
    {
        if (running_.exchange(true)) {
            return;
        }
        start_ = std::chrono::steady_clock::now();
        model_thread_ = std::thread([this] { ModelLoop(); });
        actuator_thread_ = std::thread([this] { ActuatorLoop(); });
    }

    /** Stops both loops and joins the threads. */
    void
    Stop()
    {
        if (!running_.exchange(false)) {
            return;
        }
        queue_cv_.notify_all();
        if (model_thread_.joinable()) {
            model_thread_.join();
        }
        if (actuator_thread_.joinable()) {
            actuator_thread_.join();
        }
    }

    bool running() const { return running_.load(); }

    /** Snapshot of the runtime counters (lock-free). */
    RuntimeStats
    stats() const
    {
        return stats_.Snapshot();
    }

    bool actuator_halted() const { return halted_.load(); }

    const RuntimeOptions& options() const { return options_; }

  private:
    sim::TimePoint
    Now() const
    {
        return std::chrono::duration_cast<sim::Duration>(
            std::chrono::steady_clock::now() - start_);
    }

    void
    SleepFor(sim::Duration d) const
    {
        std::this_thread::sleep_for(d);
    }

    void
    ModelLoop()
    {
        bool model_ok = true;
        while (running_.load()) {
            // One learning epoch.
            const sim::TimePoint epoch_start = Now();
            int valid_samples = 0;
            bool short_circuit = false;
            while (running_.load()) {
                SleepFor(schedule_.data_collect_interval);
                if (!running_.load()) {
                    return;
                }
                D data = model_.CollectData();
                const bool valid = options_.disable_data_validation ||
                                   model_.ValidateData(data);
                stats_.samples_collected.fetch_add(
                    1, std::memory_order_relaxed);
                if (valid) {
                    model_.CommitData(Now(), data);
                    ++valid_samples;
                } else {
                    stats_.invalid_samples.fetch_add(
                        1, std::memory_order_relaxed);
                }
                if (model_.ShortCircuitEpoch()) {
                    short_circuit = true;
                    break;
                }
                if (valid_samples >= schedule_.data_per_epoch) {
                    break;
                }
                if (Now() - epoch_start >= schedule_.max_epoch_time) {
                    short_circuit = true;
                    break;
                }
            }
            if (!running_.load()) {
                return;
            }

            Prediction<P> pred;
            const bool enough = !short_circuit;
            const std::uint64_t epoch_number =
                stats_.epochs.fetch_add(1, std::memory_order_relaxed) + 1;
            if (enough) {
                model_.UpdateModel();
                pred = model_.ModelPredict();
                stats_.model_updates.fetch_add(1,
                                               std::memory_order_relaxed);
                if (!options_.disable_model_assessment &&
                    epoch_number %
                            static_cast<std::uint64_t>(
                                schedule_.assess_model_every_epochs) ==
                        0) {
                    model_ok = model_.AssessModel();
                    stats_.model_assessments.fetch_add(
                        1, std::memory_order_relaxed);
                    if (!model_ok) {
                        stats_.failed_assessments.fetch_add(
                            1, std::memory_order_relaxed);
                    }
                }
                if (!model_ok) {
                    pred = model_.DefaultPredict();
                    stats_.intercepted_predictions.fetch_add(
                        1, std::memory_order_relaxed);
                }
            } else {
                pred = model_.DefaultPredict();
                stats_.short_circuit_epochs.fetch_add(
                    1, std::memory_order_relaxed);
            }

            {
                std::lock_guard lock(queue_mutex_);
                pending_.push_back(pred);
                AtomicRuntimeStats::RaisePeak(
                    stats_.peak_queued_predictions, pending_.size());
                while (pending_.size() > options_.max_queued_predictions) {
                    pending_.pop_front();
                    stats_.expired_predictions.fetch_add(
                        1, std::memory_order_relaxed);
                }
            }
            stats_.predictions_delivered.fetch_add(
                1, std::memory_order_relaxed);
            if (pred.is_default) {
                stats_.default_predictions.fetch_add(
                    1, std::memory_order_relaxed);
            }
            queue_cv_.notify_one();
        }
    }

    void
    ActuatorLoop()
    {
        sim::TimePoint last_assessment = Now();
        std::optional<sim::TimePoint> halt_start;
        while (running_.load()) {
            std::optional<Prediction<P>> pred;
            {
                std::unique_lock lock(queue_mutex_);
                const auto ready = [this] {
                    return !pending_.empty() || !running_.load();
                };
                if (options_.blocking_actuator) {
                    // Ablation (Figs 4, 6-right): no timeout — the
                    // actuator acts only when a prediction arrives.
                    queue_cv_.wait(lock, ready);
                } else {
                    queue_cv_.wait_for(
                        lock,
                        std::chrono::nanoseconds(
                            schedule_.max_actuation_delay.count()),
                        ready);
                }
                if (!running_.load()) {
                    return;
                }
                if (!pending_.empty()) {
                    pred = pending_.front();
                    pending_.pop_front();
                }
            }

            const sim::TimePoint now = Now();
            if (halted_.load()) {
                // Actuation halted: only the safeguard check runs.
                if (pred.has_value()) {
                    stats_.dropped_while_halted.fetch_add(
                        1, std::memory_order_relaxed);
                }
                pred.reset();
            } else {
                if (pred.has_value() && !options_.blocking_actuator &&
                    !pred->FreshAt(now)) {
                    pred.reset();
                    stats_.expired_predictions.fetch_add(
                        1, std::memory_order_relaxed);
                }
                actuator_.TakeAction(pred);
                stats_.actions_taken.fetch_add(1,
                                               std::memory_order_relaxed);
                if (pred.has_value()) {
                    stats_.actions_with_prediction.fetch_add(
                        1, std::memory_order_relaxed);
                } else {
                    stats_.actuator_timeouts.fetch_add(
                        1, std::memory_order_relaxed);
                }
            }

            if (!options_.disable_actuator_safeguard &&
                now - last_assessment >=
                    schedule_.assess_actuator_interval) {
                last_assessment = now;
                const bool ok = actuator_.AssessPerformance();
                stats_.actuator_assessments.fetch_add(
                    1, std::memory_order_relaxed);
                if (!ok) {
                    if (!halted_.exchange(true)) {
                        stats_.safeguard_triggers.fetch_add(
                            1, std::memory_order_relaxed);
                        halt_start = now;
                    }
                    actuator_.Mitigate();
                    stats_.mitigations.fetch_add(
                        1, std::memory_order_relaxed);
                } else if (halted_.exchange(false)) {
                    if (halt_start.has_value()) {
                        stats_.halted_time_ns.fetch_add(
                            (now - *halt_start).count(),
                            std::memory_order_relaxed);
                        halt_start.reset();
                    }
                }
            }
        }
        if (halt_start.has_value()) {
            stats_.halted_time_ns.fetch_add(
                (Now() - *halt_start).count(),
                std::memory_order_relaxed);
        }
    }

    Model<D, P>& model_;
    Actuator<P>& actuator_;
    Schedule schedule_;
    RuntimeOptions options_;

    std::atomic<bool> running_{false};
    std::atomic<bool> halted_{false};
    std::chrono::steady_clock::time_point start_;

    std::thread model_thread_;
    std::thread actuator_thread_;

    std::mutex queue_mutex_;
    std::condition_variable queue_cv_;
    std::deque<Prediction<P>> pending_;

    AtomicRuntimeStats stats_;
};

}  // namespace sol::core
