/**
 * @file
 * Real-time SOL runtime: two OS threads joined by a condition-variable
 * prediction queue.
 *
 * This is the blocking-loop adapter around core::EpochEngine, which
 * owns the paper's section 4.2 epoch/assessment/safeguard semantics
 * (see epoch_engine.h — both runtimes share that single
 * implementation, so the semantics cannot drift apart). The Model
 * control loop and the Actuator control loop run in separately
 * scheduled threads, so a throttled or stalled model can never starve
 * the actuator, which keeps taking safe actions on its
 * max_actuation_delay timeout. Every RuntimeOptions ablation switch,
 * the queued-prediction bound, and the SetDataFault fault-injection
 * hook behave exactly as in SimRuntime (the parity suite in
 * tests/runtime_parity_test.cc asserts field-for-field identical
 * RuntimeStats); experiments use SimRuntime for determinism, while
 * examples and deployments use this.
 *
 * The time source is a policy (ClockPolicy template parameter):
 * deployments use the default SteadyClockPolicy (wall clock, real
 * sleeps); the parity tests substitute a manually advanced clock to
 * make the threaded runtime deterministic. Stats counters are relaxed
 * atomics (AtomicRuntimeStats) so stats() snapshots without stopping
 * either loop.
 */
#pragma once

#include <atomic>
#include <chrono>
#include <functional>
#include <thread>
#include <utility>

#include "core/actuator.h"
#include "core/epoch_engine.h"
#include "core/sync.h"
#include "core/thread_annotations.h"
#include "core/model.h"
#include "core/runtime_options.h"
#include "core/runtime_stats.h"
#include "core/schedule.h"
#include "sim/time.h"

namespace sol::core {

/**
 * Default time-source policy: the OS steady clock and real sleeps.
 *
 * The origin is fixed at the first Start() so TimePoints stay
 * monotonic across Stop/Start cycles, matching the virtual clock's
 * behavior under SimRuntime restarts.
 */
class SteadyClockPolicy
{
  public:
    /** Called by Start() before the loop threads exist. */
    void
    OnStart()
    {
        if (!started_) {
            origin_ = std::chrono::steady_clock::now();
            started_ = true;
        }
    }

    /** Called by Stop() before joining; wakes custom clocks whose
     *  SleepFor can block indefinitely. Real sleeps are finite. */
    void Interrupt() {}

    sim::TimePoint
    Now() const
    {
        return std::chrono::duration_cast<sim::Duration>(
            std::chrono::steady_clock::now() - origin_);
    }

    void
    SleepFor(sim::Duration d)
    {
        std::this_thread::sleep_for(d);
    }

    /** Blocking wait until `ready` (the blocking-actuator ablation).
     *  `lock` is the caller's held ScopedLock over the queue mutex;
     *  the cv releases/reacquires it internally. */
    template <typename Lock, typename Ready>
    void
    Wait(ConditionVariable& cv, Lock& lock, Ready ready)
    {
        cv.wait(lock, ready);
    }

    /**
     * Wait until `ready` or the timeout.
     *
     * @return false when the wait timed out with `ready` still false.
     */
    template <typename Lock, typename Ready>
    bool
    WaitFor(ConditionVariable& cv, Lock& lock, sim::Duration timeout,
            Ready ready)
    {
        return cv.wait_for(lock, std::chrono::nanoseconds(timeout),
                           ready);
    }

  private:
    std::chrono::steady_clock::time_point origin_{};
    bool started_ = false;
};

/**
 * Runs one agent on real threads.
 *
 * @tparam D Telemetry datum type.
 * @tparam P Prediction payload type.
 * @tparam ClockPolicy Time source + blocking primitives (tests inject
 *         a manual clock; deployments keep the default).
 */
template <typename D, typename P, typename ClockPolicy = SteadyClockPolicy>
class ThreadedRuntime
{
  public:
    ThreadedRuntime(Model<D, P>& model, Actuator<P>& actuator,
                    const Schedule& schedule, RuntimeOptions options = {})
        : engine_(model, actuator, schedule, options)
    {
    }

    ~ThreadedRuntime() { Stop(); }

    ThreadedRuntime(const ThreadedRuntime&) = delete;
    ThreadedRuntime& operator=(const ThreadedRuntime&) = delete;

    /**
     * Starts both loops. Start after Stop resumes with a fresh epoch;
     * engine state (counters, a failing model assessment, a tripped
     * safeguard) persists across the restart.
     */
    void
    Start()
    {
        if (running_.exchange(true)) {
            return;
        }
        clock_.OnStart();
        const sim::TimePoint now = clock_.Now();
        engine_.OnStart(now);
        // Fixed before the threads spawn so the first assessment falls
        // due exactly one interval after start, however late the
        // actuator thread begins running.
        actuator_start_ = now;
        model_thread_ = std::thread([this] { ModelLoop(); });
        actuator_thread_ = std::thread([this] { ActuatorLoop(); });
    }

    /** Stops both loops and joins the threads. */
    void
    Stop()
    {
        if (!running_.exchange(false)) {
            return;
        }
        clock_.Interrupt();
        queue_cv_.notify_all();
        if (model_thread_.joinable()) {
            model_thread_.join();
        }
        if (actuator_thread_.joinable()) {
            actuator_thread_.join();
        }
        engine_.OnStop(clock_.Now());
    }

    bool running() const { return running_.load(); }

    /** Snapshot of the runtime counters (lock-free). */
    RuntimeStats
    stats() const
    {
        return engine_.stats().Snapshot();
    }

    /**
     * Installs the per-sample fault-injection hook (corrupted
     * counters, driver bugs — Fig 2 / Fig 6-left). Install before
     * Start(): the hook is read by the model thread unsynchronized.
     */
    void
    SetDataFault(std::function<void(D&)> fault)
    {
        engine_.SetDataFault(std::move(fault));
    }

    bool actuator_halted() const { return engine_.actuator_halted(); }
    bool model_assessment_failing() const
    {
        return engine_.model_assessment_failing();
    }
    std::size_t queued_predictions() const
    {
        return engine_.queued_predictions();
    }

    const RuntimeOptions& options() const { return engine_.options(); }

    /**
     * Attaches flight-recorder tracks: one for the model thread, one
     * for the actuator thread (distinct recorders — each ring is
     * SPSC). The loops also bind their recorder as the thread-current
     * recorder, so governor/arbiter calls made from inside agent code
     * land on the calling agent's track. Call before Start(); either
     * may be null.
     */
    void
    SetTraceRecorders(telemetry::trace::TraceRecorder* model_side,
                      telemetry::trace::TraceRecorder* actuator_side)
    {
        engine_.SetTraceRecorders(model_side, actuator_side);
    }

    /** Copy of the always-on epoch-duration histogram (wall ns; safe
     *  from any thread). */
    telemetry::LatencyHistogram
    EpochLatencyHistogram() const
    {
        return engine_.EpochLatencyHistogram();
    }

    /** The time-source policy (tests drive their manual clock). */
    ClockPolicy& clock() { return clock_; }

  private:
    using Engine = EpochEngine<D, P, ThreadedEnginePolicy>;
    using CollectOutcome = typename Engine::CollectOutcome;

    void
    ModelLoop()
    {
        telemetry::trace::ScopedThreadRecorder bind(
            engine_.model_trace());
        while (running_.load()) {
            engine_.BeginEpoch(clock_.Now());
            CollectOutcome outcome = CollectOutcome::kEpochContinues;
            sim::TimePoint tick_now{};
            while (running_.load()) {
                clock_.SleepFor(engine_.schedule().data_collect_interval);
                if (!running_.load()) {
                    return;
                }
                tick_now = clock_.Now();
                outcome = engine_.CollectOnce(tick_now);
                if (outcome != CollectOutcome::kEpochContinues) {
                    break;
                }
            }
            if (!running_.load() ||
                outcome == CollectOutcome::kEpochContinues) {
                return;
            }
            engine_.Deliver(engine_.FinishEpoch(
                tick_now, outcome == CollectOutcome::kEpochComplete));
            // Notify even for a delivery dropped while halted: the
            // kick lets a blocking actuator re-run its safeguard
            // assessment and resume.
            queue_cv_.notify_one();
        }
    }

    void
    ActuatorLoop()
    {
        telemetry::trace::ScopedThreadRecorder bind(
            engine_.actuator_trace());
        sim::TimePoint last_assessment = actuator_start_;
        std::uint64_t seen_seq = 0;
        while (running_.load()) {
            bool timed_out = false;
            {
                MutexLock lock(engine_.queue_mutex());
                // The predicate runs with the queue mutex held (the cv
                // reacquires it before every evaluation), but the
                // analysis walks the closure without that context —
                // the one sanctioned escape hatch for wait predicates
                // (see core/sync.h).
                const auto ready = [this, &seen_seq]()
                    SOL_NO_THREAD_SAFETY_ANALYSIS {
                        return !running_.load() ||
                               engine_.has_queued_locked() ||
                               engine_.delivery_seq_locked() != seen_seq;
                    };
                if (engine_.options().blocking_actuator) {
                    // Ablation (Figs 4, 6-right): no timeout — the
                    // actuator acts only when a prediction arrives.
                    clock_.Wait(queue_cv_, lock, ready);
                } else {
                    timed_out = !clock_.WaitFor(
                        queue_cv_, lock,
                        engine_.schedule().max_actuation_delay, ready);
                }
                seen_seq = engine_.delivery_seq_locked();
            }
            if (!running_.load()) {
                return;
            }

            const sim::TimePoint now = clock_.Now();
            // Assessment before the wake, mirroring the event-queue
            // backend's same-instant order (the assessment chain event
            // precedes the delivery's wake event).
            if (!engine_.options().disable_actuator_safeguard &&
                now - last_assessment >=
                    engine_.schedule().assess_actuator_interval) {
                last_assessment = now;
                engine_.AssessActuator(now);
            }
            engine_.ActuatorWake(now, timed_out);
        }
    }

    Engine engine_;
    ClockPolicy clock_;

    std::atomic<bool> running_{false};
    sim::TimePoint actuator_start_{0};

    std::thread model_thread_;
    std::thread actuator_thread_;
    ConditionVariable queue_cv_;
};

}  // namespace sol::core
