#include "experiments/harvest_experiments.h"

#include <memory>

#include "node/node.h"
#include "sim/event_queue.h"
#include "workloads/best_effort.h"
#include "workloads/tailbench.h"

namespace sol::experiments {

namespace {

/** Simulation tick: the hypervisor's 50 us sampling granularity. */
constexpr sim::Duration kTick = sim::Micros(50);

}  // namespace

std::string
ToString(HarvestWorkload wl)
{
    switch (wl) {
      case HarvestWorkload::kImageDnn:
        return "image-dnn";
      case HarvestWorkload::kMoses:
        return "moses";
    }
    return "Unknown";
}

HarvestRunResult
RunHarvest(const HarvestRunConfig& config)
{
    sim::EventQueue queue;
    node::NodeConfig node_config;
    node_config.total_cores = 16;
    node::Node node(node_config);

    const workloads::TailBenchConfig primary_config =
        config.workload == HarvestWorkload::kImageDnn
            ? workloads::ImageDnnConfig(config.seed)
            : workloads::MosesConfig(config.seed);
    auto primary_workload =
        std::make_shared<workloads::TailBench>(primary_config);
    auto elastic_workload = std::make_shared<workloads::BestEffort>();

    const node::VmId primary = node.AddVm(
        node::VmConfig{"primary", primary_config.vcpus}, primary_workload);
    const node::VmId elastic = node.AddVm(
        node::VmConfig{"elastic", primary_config.vcpus}, elastic_workload);
    node.GrantCores(elastic, 0);  // Nothing harvested yet.

    sim::PeriodicTask node_driver(queue, kTick, [&] {
        node.Advance(queue.Now(), kTick);
    });

    agents::SmartHarvestConfig agent_config = config.agent;
    agent_config.seed = config.seed;
    agents::HarvestModel model(node, primary, queue, agent_config);
    agents::HarvestActuator actuator(node, primary, elastic, queue,
                                     agent_config);
    model.BreakModel(config.broken_model);

    std::unique_ptr<core::SimRuntime<agents::HarvestSample, int>> runtime;
    if (config.harvesting) {
        runtime =
            std::make_unique<core::SimRuntime<agents::HarvestSample, int>>(
                queue, model, actuator, agents::SmartHarvestSchedule(),
                config.runtime);
        runtime->Start();
    }

    // Fig 6 right: stall the model when the primary's burst begins —
    // exactly when its CPU utilization ramps up.
    std::unique_ptr<sim::PeriodicTask> stall_watch;
    if (runtime && config.stall_on_burst > sim::Duration::zero()) {
        auto was_burst =
            std::make_shared<bool>(primary_workload->in_burst());
        stall_watch = std::make_unique<sim::PeriodicTask>(
            queue, sim::Millis(1), [&, was_burst] {
                const bool burst = primary_workload->in_burst();
                if (!*was_burst && burst) {
                    runtime->StallModelFor(config.stall_on_burst);
                }
                *was_burst = burst;
            });
    }

    queue.RunFor(config.duration);

    HarvestRunResult result;
    if (runtime) {
        runtime->Stop();
        result.stats = runtime->stats();
    }
    result.workload = primary_workload->name();
    result.p99_latency_ms = primary_workload->PerformanceValue();
    result.completed_requests = primary_workload->completed_requests();
    result.harvested_core_seconds = elastic_workload->core_seconds();
    return result;
}

double
LatencyIncreasePct(const HarvestRunResult& run,
                   const HarvestRunResult& baseline)
{
    if (baseline.p99_latency_ms <= 0.0) {
        return 0.0;
    }
    return 100.0 * (run.p99_latency_ms - baseline.p99_latency_ms) /
           baseline.p99_latency_ms;
}

}  // namespace sol::experiments
