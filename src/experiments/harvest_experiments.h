/**
 * @file
 * Scenario harness for the SmartHarvest experiments (Figure 6).
 *
 * A 16-core node runs a latency-critical primary VM (TailBench image-dnn
 * or moses) and an ElasticVM consuming harvested cores. Runs compare the
 * primary's P99 latency against a no-harvesting baseline under the
 * paper's three failure injections: censored training data (validation
 * safeguard), a broken model that underpredicts demand (model safeguard),
 * and 1-second model stalls at utilization ramps (non-blocking design).
 */
#pragma once

#include <string>

#include "agents/smartharvest/smartharvest.h"
#include "core/runtime_stats.h"
#include "core/sim_runtime.h"

namespace sol::experiments {

/** Primary workload selector. */
enum class HarvestWorkload { kImageDnn, kMoses };

std::string ToString(HarvestWorkload wl);

/** Configuration of one harvest run. */
struct HarvestRunConfig {
    HarvestWorkload workload = HarvestWorkload::kImageDnn;
    sim::Duration duration = sim::Seconds(40);

    /** false = no agent at all (the QoS baseline). */
    bool harvesting = true;

    core::RuntimeOptions runtime;

    /** Fig 6 middle: model consistently underestimates demand. */
    bool broken_model = false;

    /** Fig 6 right: stall the model for this long at each burst start
     *  (zero disables). */
    sim::Duration stall_on_burst{0};

    agents::SmartHarvestConfig agent;
    std::uint64_t seed = 2;
};

/** Results of one harvest run. */
struct HarvestRunResult {
    std::string workload;
    double p99_latency_ms = 0.0;
    double harvested_core_seconds = 0.0;  ///< ElasticVM capacity used.
    std::uint64_t completed_requests = 0;
    core::RuntimeStats stats;
};

/** Executes one run. Deterministic for a fixed config. */
HarvestRunResult RunHarvest(const HarvestRunConfig& config);

/** Percentage latency increase of `run` over `baseline`. */
double LatencyIncreasePct(const HarvestRunResult& run,
                          const HarvestRunResult& baseline);

}  // namespace sol::experiments
