#include "experiments/memory_experiments.h"

#include <memory>

#include "node/tiered_memory.h"
#include "sim/event_queue.h"
#include "workloads/memory_patterns.h"

namespace sol::experiments {

namespace {

/** Workload driver tick (finer than the 300 ms base scan period). */
constexpr sim::Duration kTick = sim::Millis(100);

/** SLO accounting window (matches the actuator safeguard cadence). */
constexpr sim::Duration kSloWindow = sim::Seconds(2);

std::unique_ptr<workloads::MemoryPattern>
MakePattern(const MemoryRunConfig& config)
{
    using workloads::ZipfMemoryPattern;
    switch (config.workload) {
      case MemoryWorkload::kObjectStore: {
        auto cfg = workloads::ObjectStoreMemConfig(config.seed);
        cfg.num_batches = config.num_batches;
        return std::make_unique<ZipfMemoryPattern>(cfg);
      }
      case MemoryWorkload::kSql: {
        auto cfg = workloads::SqlOltpMemConfig(config.seed);
        cfg.num_batches = config.num_batches;
        return std::make_unique<ZipfMemoryPattern>(cfg);
      }
      case MemoryWorkload::kSpecJbb: {
        auto cfg = workloads::SpecJbbMemConfig(config.seed);
        cfg.num_batches = config.num_batches;
        return std::make_unique<ZipfMemoryPattern>(cfg);
      }
      case MemoryWorkload::kOscillating: {
        auto cfg = workloads::SpecJbbMemConfig(config.seed);
        cfg.num_batches = config.num_batches;
        return std::make_unique<workloads::OscillatingPattern>(
            std::make_unique<ZipfMemoryPattern>(cfg), sim::Seconds(150),
            sim::Seconds(80));
      }
    }
    return nullptr;
}

}  // namespace

std::string
ToString(MemoryWorkload wl)
{
    switch (wl) {
      case MemoryWorkload::kObjectStore:
        return "ObjectStore";
      case MemoryWorkload::kSql:
        return "SQL";
      case MemoryWorkload::kSpecJbb:
        return "SpecJBB";
      case MemoryWorkload::kOscillating:
        return "Oscillating(SpecJBB)";
    }
    return "Unknown";
}

MemoryRunResult
RunMemory(const MemoryRunConfig& config)
{
    sim::EventQueue queue;
    node::TieredMemory memory(config.num_batches, config.num_batches);
    auto pattern = MakePattern(config);

    sim::PeriodicTask workload_driver(queue, kTick, [&] {
        pattern->GenerateAccesses(queue.Now() - kTick, kTick, memory);
    });

    agents::SmartMemoryConfig agent_config = config.agent;
    agent_config.seed = config.seed;
    agent_config.fixed_arm = config.fixed_arm;
    agents::MemoryModel model(memory, queue, agent_config);
    agents::MemoryActuator actuator(memory, queue, agent_config);

    core::SimRuntime<agents::ScanRound, agents::MemoryPlan> runtime(
        queue, model, actuator, agents::SmartMemorySchedule(),
        config.runtime);
    runtime.Start();

    // SLO accounting and trace: sample the remote fraction per window.
    MemoryRunResult result;
    std::uint64_t windows = 0;
    std::uint64_t windows_met = 0;
    std::uint64_t last_local = 0;
    std::uint64_t last_remote = 0;
    double local_batch_sum = 0.0;
    std::uint64_t local_batch_samples = 0;
    sim::PeriodicTask slo_probe(queue, kSloWindow, [&] {
        const node::MemoryAccessStats& stats = memory.stats();
        const std::uint64_t dl = stats.local_accesses - last_local;
        const std::uint64_t dr = stats.remote_accesses - last_remote;
        last_local = stats.local_accesses;
        last_remote = stats.remote_accesses;
        const std::uint64_t total = dl + dr;
        const double remote_frac =
            total > 0
                ? static_cast<double>(dr) / static_cast<double>(total)
                : 0.0;
        if (total > 0) {
            ++windows;
            if (remote_frac <= agent_config.remote_slo) {
                ++windows_met;
            }
        }
        local_batch_sum += static_cast<double>(memory.fast_tier_used());
        ++local_batch_samples;
        result.trace.push_back(MemoryTracePoint{
            sim::ToSeconds(queue.Now()), remote_frac,
            memory.fast_tier_used()});
    });

    queue.RunFor(config.duration);
    runtime.Stop();

    result.workload = pattern->name();
    result.scans = memory.scans();
    result.bit_resets = memory.bit_resets();
    result.tlb_flushes = memory.tlb_flushes();
    result.migrations = memory.migrations();
    result.avg_local_batches =
        local_batch_samples > 0
            ? local_batch_sum / static_cast<double>(local_batch_samples)
            : 0.0;
    result.slo_attainment =
        windows > 0 ? static_cast<double>(windows_met) /
                          static_cast<double>(windows)
                    : 1.0;
    result.overall_remote_fraction = memory.stats().RemoteFraction();
    result.stats = runtime.stats();
    return result;
}

}  // namespace sol::experiments
