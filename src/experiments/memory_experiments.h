/**
 * @file
 * Scenario harness for the SmartMemory experiments (Figures 7-8).
 *
 * A two-tier memory of 256 x 2 MB batches is driven by one of the
 * paper's access patterns (ObjectStore, SQL, SpecJBB, or the oscillating
 * Figure 8 workload). Runs compare adaptive Thompson-sampling scanning
 * against the static 300 ms and 9.6 s baselines, and evaluate the Model
 * and Actuator safeguards on the intentionally hard oscillating pattern.
 */
#pragma once

#include <string>
#include <vector>

#include "agents/smartmemory/smartmemory.h"
#include "core/runtime_stats.h"
#include "core/sim_runtime.h"

namespace sol::experiments {

/** Access pattern selector. */
enum class MemoryWorkload { kObjectStore, kSql, kSpecJbb, kOscillating };

std::string ToString(MemoryWorkload wl);

/** Configuration of one memory run. */
struct MemoryRunConfig {
    MemoryWorkload workload = MemoryWorkload::kObjectStore;
    sim::Duration duration = sim::Seconds(900);

    std::size_t num_batches = 256;

    /** Static scanning baseline: arm index to pin (negative = learn). */
    int fixed_arm = -1;

    core::RuntimeOptions runtime;

    agents::SmartMemoryConfig agent;
    std::uint64_t seed = 3;
};

/** Point-in-time record for the Figure 8 style time series. */
struct MemoryTracePoint {
    double time_s;
    double remote_fraction;   ///< Over the last trace interval.
    std::size_t local_batches;
};

/** Results of one memory run. */
struct MemoryRunResult {
    std::string workload;
    std::uint64_t scans = 0;
    std::uint64_t bit_resets = 0;
    std::uint64_t tlb_flushes = 0;
    std::uint64_t migrations = 0;
    double avg_local_batches = 0.0;   ///< Mean first-tier occupancy.
    double slo_attainment = 0.0;      ///< Fraction of windows >=80% local.
    double overall_remote_fraction = 0.0;
    core::RuntimeStats stats;
    std::vector<MemoryTracePoint> trace;
};

/** Executes one run. Deterministic for a fixed config. */
MemoryRunResult RunMemory(const MemoryRunConfig& config);

}  // namespace sol::experiments
