#include "experiments/monitor_experiments.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "sim/event_queue.h"
#include "sim/rng.h"

namespace sol::experiments {

namespace {

/** Incident-generation tick. */
constexpr sim::Duration kTick = sim::Millis(20);

/** Applies a hot set: `hot` channels at the hot rate, rest cold. */
void
ApplyHotSet(node::ChannelArray& channels,
            const std::vector<node::ChannelId>& hot,
            const MonitorRunConfig& config)
{
    for (node::ChannelId c = 0; c < channels.num_channels(); ++c) {
        channels.SetIncidentRate(c, config.cold_rate_per_sec);
    }
    for (const auto c : hot) {
        channels.SetIncidentRate(c, config.hot_rate_per_sec);
    }
}

}  // namespace

MonitorRunResult
RunMonitor(const MonitorRunConfig& config)
{
    sim::EventQueue queue;
    sim::Rng rng(config.seed);
    node::ChannelArray channels(config.num_channels, config.visibility);
    agents::SamplingPolicy policy(config.num_channels);

    // Initial hot set and periodic shifts.
    std::vector<node::ChannelId> hot;
    auto reshuffle_hot = [&] {
        hot.clear();
        while (hot.size() < config.hot_channels) {
            const auto c = static_cast<node::ChannelId>(
                rng.NextBelow(config.num_channels));
            if (std::find(hot.begin(), hot.end(), c) == hot.end()) {
                hot.push_back(c);
            }
        }
        ApplyHotSet(channels, hot, config);
    };
    reshuffle_hot();

    sim::Rng incident_rng = rng.Fork();
    sim::PeriodicTask incident_driver(queue, kTick, [&] {
        channels.Advance(queue.Now() - kTick, kTick, incident_rng);
    });

    std::unique_ptr<sim::PeriodicTask> shifter;
    if (config.shift_interval > sim::Duration::zero()) {
        shifter = std::make_unique<sim::PeriodicTask>(
            queue, config.shift_interval, reshuffle_hot);
    }

    agents::SmartMonitorConfig agent_config = config.agent;
    agent_config.seed = config.seed + 5;
    agents::MonitorModel model(channels, policy, queue, agent_config);
    agents::MonitorActuator actuator(policy, agent_config);

    std::unique_ptr<
        core::SimRuntime<agents::MonitorRound, std::vector<double>>>
        runtime;
    std::unique_ptr<sim::PeriodicTask> uniform_sampler;
    sim::Rng uniform_rng = rng.Fork();
    if (config.uniform_baseline) {
        // Production baseline: same budget, uniform allocation, no
        // learning (one uniform round every 100 ms).
        uniform_sampler = std::make_unique<sim::PeriodicTask>(
            queue, sim::Millis(100), [&] {
                for (int s = 0; s < agent_config.budget_per_round; ++s) {
                    const auto c = static_cast<node::ChannelId>(
                        uniform_rng.NextBelow(config.num_channels));
                    channels.Sample(c, queue.Now());
                }
            });
    } else {
        runtime = std::make_unique<core::SimRuntime<agents::MonitorRound,
                                                    std::vector<double>>>(
            queue, model, actuator, agents::SmartMonitorSchedule(),
            config.runtime);
        runtime->Start();
    }

    queue.RunFor(config.duration);

    MonitorRunResult result;
    if (runtime) {
        runtime->Stop();
        result.stats = runtime->stats();
    }
    result.coverage = channels.stats().Coverage();
    result.incidents =
        channels.stats().detected + channels.stats().missed;
    result.samples = channels.samples_taken();
    const auto& latencies = channels.detection_latencies();
    if (!latencies.empty()) {
        std::vector<double> sorted(latencies);
        std::sort(sorted.begin(), sorted.end());
        double total = 0.0;
        for (const double l : sorted) {
            total += l;
        }
        result.mean_latency_s =
            total / static_cast<double>(sorted.size());
        result.p95_latency_s = sorted[static_cast<std::size_t>(
            0.95 * static_cast<double>(sorted.size() - 1) + 0.5)];
    }
    return result;
}

}  // namespace sol::experiments
