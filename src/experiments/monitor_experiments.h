/**
 * @file
 * Scenario harness for the SmartMonitor extension: adaptive telemetry
 * sampling versus the uniform production baseline, on a node with many
 * quiet channels and a few incident-prone ones whose identity shifts
 * over time.
 */
#pragma once

#include <cstdint>

#include "agents/smartmonitor/smartmonitor.h"
#include "core/runtime_stats.h"
#include "core/sim_runtime.h"

namespace sol::experiments {

/** Configuration of one monitoring run. */
struct MonitorRunConfig {
    sim::Duration duration = sim::Seconds(600);
    std::size_t num_channels = 32;
    /** Channels that are incident-prone at any one time. */
    std::size_t hot_channels = 2;
    double hot_rate_per_sec = 0.5;
    double cold_rate_per_sec = 0.004;
    /** How long incidents stay detectable. */
    sim::Duration visibility = sim::Seconds(2);
    /** Interval between hot-set shifts; zero disables. */
    sim::Duration shift_interval = sim::Seconds(120);

    /** true = plain uniform sampling at the same budget (no agent). */
    bool uniform_baseline = false;

    core::RuntimeOptions runtime;
    agents::SmartMonitorConfig agent;
    std::uint64_t seed = 4;
};

/** Results of one monitoring run. */
struct MonitorRunResult {
    double coverage = 0.0;           ///< Incidents detected / resolved.
    double mean_latency_s = 0.0;     ///< Mean detection latency.
    double p95_latency_s = 0.0;
    std::uint64_t incidents = 0;
    std::uint64_t samples = 0;       ///< Budget actually spent.
    core::RuntimeStats stats;
};

/** Executes one run. Deterministic for a fixed config. */
MonitorRunResult RunMonitor(const MonitorRunConfig& config);

}  // namespace sol::experiments
