#include "experiments/overclock_experiments.h"

#include <memory>

#include "node/node.h"
#include "sim/event_queue.h"
#include "sim/rng.h"
#include "workloads/disk_speed.h"
#include "workloads/object_store.h"

namespace sol::experiments {

namespace {

/** Simulation tick for the CPU workloads (fine enough for ms latency). */
constexpr sim::Duration kTick = sim::Millis(2);

std::shared_ptr<node::CpuWorkload>
MakeWorkload(const OverclockRunConfig& config)
{
    switch (config.workload) {
      case OverclockWorkload::kSynthetic:
        return std::make_shared<workloads::SyntheticBatch>(
            config.synthetic);
      case OverclockWorkload::kObjectStore: {
        workloads::ObjectStoreConfig os;
        os.seed = config.seed + 100;
        return std::make_shared<workloads::ObjectStore>(os);
      }
      case OverclockWorkload::kDiskSpeed:
        return std::make_shared<workloads::DiskSpeed>();
    }
    return nullptr;
}

}  // namespace

std::string
ToString(OverclockWorkload wl)
{
    switch (wl) {
      case OverclockWorkload::kSynthetic:
        return "Synthetic";
      case OverclockWorkload::kObjectStore:
        return "ObjectStore";
      case OverclockWorkload::kDiskSpeed:
        return "DiskSpeed";
    }
    return "Unknown";
}

OverclockRunResult
RunOverclock(const OverclockRunConfig& config)
{
    sim::EventQueue queue;
    node::NodeConfig node_config;
    node_config.total_cores = 8;
    node::Node node(node_config);

    auto workload = MakeWorkload(config);
    const node::VmId vm =
        node.AddVm(node::VmConfig{"customer", 8}, workload);

    sim::PeriodicTask node_driver(queue, kTick, [&] {
        node.Advance(queue.Now(), kTick);
    });

    agents::SmartOverclockConfig agent_config = config.agent;
    agent_config.seed = config.seed;
    agents::OverclockModel model(node, vm, queue, agent_config);
    agents::OverclockActuator actuator(node, vm, queue, agent_config);
    model.BreakModel(config.broken_model);

    std::unique_ptr<core::SimRuntime<agents::OverclockSample, double>>
        runtime;
    if (config.static_freq_ghz.has_value()) {
        node.SetVmFrequency(vm, *config.static_freq_ghz);
    } else {
        runtime = std::make_unique<
            core::SimRuntime<agents::OverclockSample, double>>(
            queue, model, actuator, agents::SmartOverclockSchedule(),
            config.runtime);
        runtime->Start();
    }

    // Fig 2: corrupt a fraction of IPS readings with out-of-range values.
    sim::Rng fault_rng(config.seed + 17);
    if (runtime && config.bad_data_prob > 0.0) {
        const double prob = config.bad_data_prob;
        runtime->SetDataFault(
            [&fault_rng, prob](agents::OverclockSample& sample) {
                if (fault_rng.NextBool(prob)) {
                    sample.ips = 1e17 * (1.0 + fault_rng.NextDouble());
                }
            });
    }

    // Fig 4: stall the model loop when a batch finishes processing
    // (only after the warm-up phase).
    std::unique_ptr<sim::PeriodicTask> stall_watch;
    if (runtime && config.stall_on_batch_end > sim::Duration::zero()) {
        auto* synthetic =
            dynamic_cast<workloads::SyntheticBatch*>(workload.get());
        if (synthetic) {
            auto was_busy = std::make_shared<bool>(synthetic->busy());
            stall_watch = std::make_unique<sim::PeriodicTask>(
                queue, sim::Millis(50), [&, synthetic, was_busy] {
                    const bool busy = synthetic->busy();
                    if (*was_busy && !busy &&
                        queue.Now() >= config.measure_from) {
                        runtime->StallModelFor(config.stall_on_batch_end);
                    }
                    *was_busy = busy;
                });
        }
    }

    // Energy snapshot at the start of the measurement window.
    double energy_at_measure_start = 0.0;
    if (config.measure_from > sim::TimePoint(0)) {
        queue.ScheduleAt(config.measure_from, [&] {
            energy_at_measure_start = node.EnergyJoules();
        });
    }

    // Fig 5: 1 Hz trace of frequency / alpha / safeguard state.
    OverclockRunResult result;
    std::unique_ptr<sim::PeriodicTask> tracer;
    if (config.record_trace) {
        auto* synthetic =
            dynamic_cast<workloads::SyntheticBatch*>(workload.get());
        tracer = std::make_unique<sim::PeriodicTask>(
            queue, sim::Seconds(1), [&, synthetic] {
                OverclockTracePoint point;
                point.time_s = sim::ToSeconds(queue.Now());
                point.freq_ghz = node.VmFrequency(vm);
                point.alpha = actuator.last_alpha();
                point.safeguard_active = actuator.safeguard_active();
                point.workload_busy = synthetic && synthetic->busy();
                result.trace.push_back(point);
            });
    }

    queue.RunFor(config.duration);

    if (runtime) {
        runtime->Stop();
        result.stats = runtime->stats();
    }
    result.workload = workload->name();
    result.perf_value = workload->PerformanceValue();
    result.perf_unit = workload->PerformanceUnit();
    result.perf_higher_is_better = workload->PerformanceHigherIsBetter();
    result.energy_joules = node.EnergyJoules();
    result.avg_power_watts =
        (node.EnergyJoules() - energy_at_measure_start) /
        sim::ToSeconds(config.duration - config.measure_from);
    return result;
}

double
NormalizedPerf(const OverclockRunResult& run,
               const OverclockRunResult& baseline)
{
    if (baseline.perf_value <= 0.0 || run.perf_value <= 0.0) {
        return 0.0;
    }
    if (run.perf_higher_is_better) {
        return run.perf_value / baseline.perf_value;
    }
    return baseline.perf_value / run.perf_value;
}

}  // namespace sol::experiments
