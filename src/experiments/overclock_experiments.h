/**
 * @file
 * Scenario harness for the SmartOverclock experiments (Figures 1-5).
 *
 * Each run wires a simulated node, one of the paper's three workloads,
 * and optionally the SmartOverclock agent (or a static frequency policy)
 * onto a fresh event queue, injects the configured faults, runs for the
 * configured virtual duration, and reports performance, power, and
 * runtime safeguard statistics.
 */
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "agents/smartoverclock/smartoverclock.h"
#include "core/runtime_stats.h"
#include "core/sim_runtime.h"
#include "workloads/synthetic_batch.h"

namespace sol::experiments {

/** Workload selector for overclock runs. */
enum class OverclockWorkload { kSynthetic, kObjectStore, kDiskSpeed };

std::string ToString(OverclockWorkload wl);

/** Point-in-time record for the Figure 5 style time series. */
struct OverclockTracePoint {
    double time_s;
    double freq_ghz;
    double alpha;
    bool safeguard_active;
    bool workload_busy;
};

/** Configuration of one overclock run. */
struct OverclockRunConfig {
    OverclockWorkload workload = OverclockWorkload::kSynthetic;
    sim::Duration duration = sim::Seconds(600);

    /** Static policy: pin this frequency and run no agent. */
    std::optional<double> static_freq_ghz;

    /** SOL ablation/fault switches (agent runs unless static_freq set). */
    core::RuntimeOptions runtime;

    /** Fig 2: probability a collected IPS reading is out-of-range. */
    double bad_data_prob = 0.0;

    /** Fig 3: force the RL policy to always pick the max frequency. */
    bool broken_model = false;

    /** Fig 4: stall the model loop for this long when the Synthetic
     *  workload finishes a batch (zero disables). */
    sim::Duration stall_on_batch_end{0};

    /**
     * Fault injection and power measurement start here. A warm-up phase
     * lets the policy converge first, so fault experiments compare
     * runtime designs rather than learning-quality differences.
     */
    sim::TimePoint measure_from{0};

    /** Fig 5: record a 1 Hz trace of frequency/alpha/safeguard state. */
    bool record_trace = false;

    /** Synthetic workload shape override. */
    workloads::SyntheticBatchConfig synthetic;

    agents::SmartOverclockConfig agent;
    std::uint64_t seed = 1;
};

/** Results of one overclock run. */
struct OverclockRunResult {
    std::string workload;
    double perf_value = 0.0;   ///< Workload-defined metric.
    std::string perf_unit;
    bool perf_higher_is_better = true;
    double avg_power_watts = 0.0;
    double energy_joules = 0.0;
    core::RuntimeStats stats;  ///< Zero for static runs.
    std::vector<OverclockTracePoint> trace;
};

/** Executes one run. Deterministic for a fixed config. */
OverclockRunResult RunOverclock(const OverclockRunConfig& config);

/**
 * Normalized performance of `run` against `baseline`, where 1.0 means
 * equal and larger means better, regardless of the metric's direction.
 */
double NormalizedPerf(const OverclockRunResult& run,
                      const OverclockRunResult& baseline);

}  // namespace sol::experiments
