#include "fleet/fleet_runner.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "sim/rng.h"

namespace sol::fleet {

ShardedFleetRunner::Resolved
ShardedFleetRunner::Resolve(const FleetConfig& config)
{
    const std::size_t num_shards =
        config.num_shards != 0
            ? config.num_shards
            : std::max<std::size_t>(config.num_nodes, 1);
    std::size_t threads = config.num_threads;
    if (threads == 0) {
        const std::size_t hw = std::thread::hardware_concurrency();
        threads = hw == 0 ? 1 : hw;
    }
    // More workers than shards would just idle at the barriers.
    threads = std::clamp<std::size_t>(threads, 1, num_shards);
    return {num_shards, threads};
}

ShardedFleetRunner::ShardedFleetRunner(const FleetConfig& config)
    : ShardedFleetRunner(config, Resolve(config))
{
}

ShardedFleetRunner::ShardedFleetRunner(const FleetConfig& config,
                                       Resolved resolved)
    : config_(config),
      start_barrier_(
          static_cast<std::ptrdiff_t>(resolved.num_threads + 1)),
      done_barrier_(
          static_cast<std::ptrdiff_t>(resolved.num_threads + 1))
{
    if (config_.window <= sim::Duration::zero()) {
        throw std::invalid_argument("FleetConfig::window must be positive");
    }
    const std::size_t num_shards = resolved.num_shards;
    const std::size_t num_threads = resolved.num_threads;

    if (config_.trace != nullptr) {
        // Fleet track before any shard track: fixed creation order
        // keeps the serialized tid order deterministic. No clock —
        // window events carry explicit virtual timestamps.
        fleet_trace_ = config_.trace->NewRecorder("fleet", nullptr);
    }

    // Balanced contiguous partition: the first (num_nodes % num_shards)
    // shards own one extra node. Depends only on (num_nodes,
    // num_shards) — never on the thread count.
    shards_.reserve(num_shards);
    const std::size_t base = config_.num_nodes / num_shards;
    const std::size_t extra = config_.num_nodes % num_shards;
    std::size_t next_node = 0;
    for (std::size_t s = 0; s < num_shards; ++s) {
        cluster::NodeShardConfig shard;
        shard.first_node_index = next_node;
        shard.num_nodes = base + (s < extra ? 1 : 0);
        shard.base_seed = config_.base_seed;
        shard.start_stagger = config_.start_stagger;
        shard.queue_pending_limit = config_.queue_pending_limit;
        shard.trace_session = config_.trace;
        shard.trace_track = "shard" + std::to_string(s);
        shard.trace_capacity = config_.trace_capacity;
        shard.node = config_.node;
        next_node += shard.num_nodes;
        shards_.push_back(std::make_unique<cluster::NodeShard>(shard));
    }

    workers_.reserve(num_threads);
    try {
        for (std::size_t w = 0; w < num_threads; ++w) {
            workers_.emplace_back([this, w] { WorkerMain(w); });
        }
    } catch (...) {
        // Thread spawn failed partway: the barriers were sized for
        // num_threads + 1 participants, so release the workers that
        // did start (they park at the start barrier before touching
        // anything) by dropping the missing participants, then join.
        // Without this, destroying the joinable threads would
        // std::terminate.
        shutdown_ = true;
        for (std::size_t missing = workers_.size();
             missing < num_threads; ++missing) {
            start_barrier_.arrive_and_drop();
        }
        start_barrier_.arrive_and_wait();
        for (std::thread& worker : workers_) {
            worker.join();
        }
        throw;
    }
}

ShardedFleetRunner::~ShardedFleetRunner()
{
    shutdown_ = true;
    start_barrier_.arrive_and_wait();
    for (std::thread& worker : workers_) {
        worker.join();
    }
}

void
ShardedFleetRunner::WorkerMain(std::size_t worker_index)
{
    while (true) {
        start_barrier_.arrive_and_wait();
        if (shutdown_) {
            return;
        }
        // Static round-robin shard ownership: shard s is stepped by
        // worker (s % W) in every window. Assignment affects only
        // wall-clock balance; shard state is thread-confined here and
        // handed back to the main thread by the done barrier.
        try {
            for (std::size_t s = worker_index; s < shards_.size();
                 s += workers_.size()) {
                shards_[s]->RunUntil(horizon_);
                if (merge_this_window_) {
                    MergeShardWindowMetrics(s);
                }
            }
        } catch (...) {
            // Capture for Run() to rethrow at the window boundary —
            // an exception escaping a thread function would terminate
            // the process. First failure wins; the worker still
            // arrives at the done barrier so the window completes.
            core::MutexLock lock(failure_mutex_);
            if (!failure_) {
                failure_ = std::current_exception();
            }
        }
        done_barrier_.arrive_and_wait();
    }
}

void
ShardedFleetRunner::MergeShardWindowMetrics(std::size_t shard_index)
{
    cluster::NodeShard& shard = *shards_[shard_index];
    telemetry::MetricRegistry local;
    cluster::WriteQueueGauges(telemetry::MetricScope(local, "queue"),
                              shard.queue().stats());
    local.SetGauge("num_nodes", static_cast<double>(shard.num_nodes()));
    local.SetGauge("virtual_seconds",
                   sim::ToSeconds(shard.queue().Now()));
    window_metrics_.MergeFrom(local,
                              "shard" + std::to_string(shard_index));
}

void
ShardedFleetRunner::Run(sim::Duration span)
{
    {
        core::MutexLock lock(failure_mutex_);
        if (failed_) {
            // A previous window rethrew a shard exception: the shards
            // are at inconsistent virtual times, so continuing would
            // silently void the determinism guarantee.
            throw std::logic_error(
                "ShardedFleetRunner::Run after a shard failure; destroy "
                "the runner instead");
        }
    }
    const sim::TimePoint end = now_ + span;
    while (now_ < end) {
        const sim::TimePoint horizon =
            std::min(now_ + config_.window, end);
        horizon_ = horizon;
        ++window_index_;
        merge_this_window_ =
            config_.metrics_every_n_windows != 0 &&
            window_index_ % config_.metrics_every_n_windows == 0;
        start_barrier_.arrive_and_wait();
        done_barrier_.arrive_and_wait();
        // Workers are parked at the start barrier again, so the lock
        // is uncontended; the barrier already ordered their writes
        // before our read.
        std::exception_ptr failure;
        {
            core::MutexLock lock(failure_mutex_);
            if (failure_) {
                failure = failure_;
                failure_ = nullptr;
                failed_ = true;
            }
        }
        if (failure) {
            std::rethrow_exception(failure);
        }
        if (fleet_trace_ != nullptr) {
            // One span per barrier-synced window, in virtual time: the
            // same bytes for any thread count.
            fleet_trace_->Complete(
                "window", "fleet", now_, horizon - now_,
                {{"window", static_cast<std::int64_t>(window_index_)},
                 {"merge", merge_this_window_ ? 1 : 0}});
        }
        if (config_.health != nullptr &&
            config_.health_every_n_windows != 0 &&
            window_index_ % config_.health_every_n_windows == 0) {
            SampleFleetHealth(horizon);
        }
        now_ = horizon;
    }
}

void
ShardedFleetRunner::SampleFleetHealth(sim::TimePoint at)
{
    // Workers are parked at the start barrier, so walking every node is
    // race-free; the walk only reads, so it is observe-only. Everything
    // appended is an integer derived from deterministic per-node state
    // at a barrier-synced virtual horizon — identical across repeat
    // runs and thread counts by the same argument as fleet_trace_hash.
    telemetry::TimeSeriesStore& health = *config_.health;

    core::RuntimeStats stats;
    telemetry::LatencyHistogram epoch_hist;
    std::uint64_t arbiter_requests = 0;
    std::uint64_t arbiter_denied = 0;
    std::uint64_t total_agents = 0;
    for (auto& shard : shards_) {
        for (std::size_t n = 0; n < shard->num_nodes(); ++n) {
            cluster::MultiAgentNode& node = shard->node(n);
            stats.Accumulate(node.AggregateStats());
            epoch_hist.Merge(node.EpochLatencyHistogram());
            arbiter_requests += node.arbiter().requests();
            arbiter_denied += node.arbiter().conflicts_resolved();
            total_agents += node.num_agents();
        }
    }
    const sim::EventQueueStats queue = QueueStats();

    const auto append = [&health, at](const char* name,
                                      std::uint64_t value) {
        health.Append(name, at, static_cast<std::int64_t>(value));
    };
    append("fleet.safeguard.trips", stats.safeguard_triggers);
    append("fleet.safeguard.mitigations", stats.mitigations);
    append("fleet.model.failures", stats.failed_assessments);
    append("fleet.model.intercepted", stats.intercepted_predictions);
    append("fleet.data.harvested", stats.samples_collected);
    append("fleet.data.invalid", stats.invalid_samples);
    append("fleet.epochs", stats.epochs);
    append("fleet.actions", stats.actions_taken);
    append("fleet.queue.executed", queue.executed);
    append("fleet.queue.dropped", queue.dropped);
    append("fleet.queue.pending", queue.pending);
    append("fleet.arbiter.requests", arbiter_requests);
    append("fleet.arbiter.denied", arbiter_denied);

    // Error-budget denominators for time-fraction SLOs: cumulative
    // halted agent-time against cumulative scheduled agent-time
    // (agents x elapsed virtual time, exact integer math).
    append("fleet.agent.halted_ns",
           static_cast<std::uint64_t>(stats.halted_time.count()));
    append("fleet.agent.active_ns",
           total_agents * static_cast<std::uint64_t>(at.count()));

    // Fleet-wide epoch-latency percentiles (merged bucket-wise, so
    // exact and layout-independent).
    const telemetry::LatencySnapshot s = epoch_hist.Snapshot();
    append("fleet.node.epoch_latency.count", s.count);
    append("fleet.node.epoch_latency.p50_ns", s.p50_ns);
    append("fleet.node.epoch_latency.p90_ns", s.p90_ns);
    append("fleet.node.epoch_latency.p99_ns", s.p99_ns);
    append("fleet.node.epoch_latency.p999_ns", s.p999_ns);

    if (config_.alerts != nullptr) {
        config_.alerts->Evaluate(health, at, fleet_trace_);
    }
}

void
ShardedFleetRunner::Stop()
{
    for (auto& shard : shards_) {
        shard->Stop();
    }
}

void
ShardedFleetRunner::CleanUpAll()
{
    for (auto& shard : shards_) {
        shard->CleanUpAll();
    }
}

cluster::MultiAgentNode&
ShardedFleetRunner::node(std::size_t global_index)
{
    for (auto& shard : shards_) {
        const std::size_t first = shard->first_node_index();
        if (global_index >= first &&
            global_index < first + shard->num_nodes()) {
            return shard->node(global_index - first);
        }
    }
    throw std::out_of_range("fleet node index " +
                            std::to_string(global_index));
}

void
ShardedFleetRunner::DrainNode(std::size_t global_index)
{
    node(global_index).Stop();
}

cluster::FleetStats
ShardedFleetRunner::Stats() const
{
    cluster::FleetStats fleet;
    for (const auto& shard : shards_) {
        fleet.Accumulate(shard->Stats());
    }
    return fleet;
}

sim::EventQueueStats
ShardedFleetRunner::QueueStats() const
{
    sim::EventQueueStats total;
    for (const auto& shard : shards_) {
        const sim::EventQueueStats stats = shard->queue().stats();
        total.scheduled += stats.scheduled;
        total.executed += stats.executed;
        total.cancelled += stats.cancelled;
        total.dropped += stats.dropped;
        total.pending += stats.pending;
        total.peak_pending += stats.peak_pending;
        total.arena_capacity += stats.arena_capacity;
        total.arena_blocks += stats.arena_blocks;
    }
    return total;
}

std::uint64_t
ShardedFleetRunner::total_executed() const
{
    std::uint64_t executed = 0;
    for (const auto& shard : shards_) {
        executed += shard->queue().executed();
    }
    return executed;
}

std::uint64_t
ShardedFleetRunner::fleet_trace_hash() const
{
    // Wrapping sum of a splitmix64 step over each shard hash: the sum
    // is commutative/associative (order-independent across shards) and
    // the mix keeps structured per-shard hashes from cancelling.
    // DeriveStreamSeed is exactly that step — one copy of the
    // splitmix64 constants in the codebase.
    std::uint64_t hash = 0;
    for (const auto& shard : shards_) {
        hash += sim::DeriveStreamSeed(shard->queue().trace_hash(), 0);
    }
    return hash;
}

void
ShardedFleetRunner::CollectFleetMetrics(telemetry::MetricRegistry& out)
{
    for (auto& shard : shards_) {
        shard->CollectNodeMetrics(out);
    }
    cluster::WriteFleetScope(out, Stats(), config_.num_nodes,
                             QueueStats());
    telemetry::MetricScope scope(out, "fleet");
    scope.SetGauge("num_shards", static_cast<double>(shards_.size()));
    scope.SetGauge("num_threads", static_cast<double>(workers_.size()));

    // Fleet-wide epoch-duration distribution (virtual ns): the merge is
    // bucket-wise addition, so the result is exact and independent of
    // shard/thread layout.
    telemetry::LatencyHistogram epoch_hist;
    for (auto& shard : shards_) {
        for (std::size_t n = 0; n < shard->num_nodes(); ++n) {
            epoch_hist.Merge(shard->node(n).EpochLatencyHistogram());
        }
    }
    if (!epoch_hist.empty()) {
        scope.SetHistogram("epoch_ns", epoch_hist);
    }
}

}  // namespace sol::fleet
