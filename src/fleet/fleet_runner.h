/**
 * @file
 * Sharded parallel fleet executor: hundreds of 77-agent nodes on real
 * threads, bit-deterministic regardless of thread count.
 *
 * The paper's deployment setting is a fleet where every node runs ~77
 * learning agents. cluster::ClusterDriver models that fleet faithfully
 * but steps it serially — one virtual clock, one thread, a hard wall
 * around 8 nodes. ShardedFleetRunner is the scaling layer above it:
 *
 *  - The fleet is sliced into S shards (cluster::NodeShard), each
 *    owning its own arena-backed sim::EventQueue, virtual clock, trace
 *    hash, and a contiguous slice of the fleet's nodes. Every node
 *    keeps the per-global-index splitmix64 RNG stream and start
 *    stagger it would have had in the serial driver.
 *  - W worker threads step the shards between barrier-synced
 *    virtual-time windows: every window, each worker advances its
 *    statically assigned shards to the shared horizon, merges its
 *    shards' health gauges into a telemetry::SharedMetricRegistry,
 *    and meets the others at the barrier before the next window opens.
 *  - Determinism: fleet nodes never exchange events (per-node RNG
 *    streams make them statistically independent), so a shard's event
 *    trace depends only on (base_seed, shard composition, window
 *    horizons) — never on which thread stepped it, in what order, or
 *    how many worker threads exist. Shard composition is fixed by
 *    `num_shards` (a *simulation* parameter), while `num_threads` is
 *    pure execution policy: any thread count replays byte-identical
 *    per-shard traces, verified by combining per-shard trace_hash()
 *    values with a commutative mix (fleet_trace_hash()).
 *
 * bench/fleet_scale drives 64 nodes x 77 agents across 1/2/4/8 threads
 * and fails on any cross-thread-count divergence; docs/FLEET.md has
 * the full sharding model and determinism argument.
 */
#pragma once

#include <barrier>
#include <cstdint>
#include <exception>
#include <memory>
#include <thread>
#include <vector>

#include "cluster/cluster_driver.h"
#include "core/sync.h"
#include "core/thread_annotations.h"
#include "cluster/node_shard.h"
#include "sim/event_queue.h"
#include "sim/time.h"
#include "telemetry/alerting.h"
#include "telemetry/metric_registry.h"
#include "telemetry/timeseries.h"

namespace sol::fleet {

/** Configuration of a sharded fleet run. */
struct FleetConfig {
    std::size_t num_nodes = 8;

    /**
     * Shards the fleet is sliced into (0 = one shard per node, the
     * most parallel slicing). This is a *simulation* parameter: nodes
     * sharing a shard interleave on one queue, so changing num_shards
     * changes per-shard traces (deterministically). Keep it fixed when
     * comparing runs; vary num_threads freely instead.
     */
    std::size_t num_shards = 0;

    /**
     * Worker threads stepping the shards (0 = one per shard, capped at
     * hardware concurrency). Pure execution policy: never affects
     * simulation results, only wall-clock speed.
     */
    std::size_t num_threads = 0;

    /** Fleet seed; global node i runs stream DeriveStreamSeed(seed, i). */
    std::uint64_t base_seed = 1;

    /**
     * Virtual-time window between barriers. All shards advance to the
     * same horizon each window; window boundaries are also where
     * telemetry merges happen. Smaller windows tighten fleet-wide
     * metric freshness; larger ones amortize barrier cost.
     */
    sim::Duration window = sim::Millis(100);

    /** Offset between consecutive global nodes' agent start times. */
    sim::Duration start_stagger = sim::Millis(1);

    /** Per-shard queue backpressure bound (0 = unlimited); see
     *  ClusterConfig::queue_pending_limit for drop semantics. */
    std::size_t queue_pending_limit = 0;

    /**
     * Merge per-shard health gauges ("shard3.queue.executed", ...)
     * into window_metrics() every Nth window boundary (0 = never).
     * This is the concurrent-merge path: all workers aggregate into
     * one SharedMetricRegistry at the same boundary.
     */
    std::size_t metrics_every_n_windows = 1;

    /**
     * Flight-recorder session for the whole run (null disables
     * tracing). The runner creates one "fleet" track for window-barrier
     * events plus one track per shard (see NodeShardConfig); creation
     * order (fleet first, shards by index) is fixed, so the serialized
     * trace is byte-deterministic for a fixed (base_seed, num_shards,
     * window schedule) regardless of thread count. The caller owns the
     * session and serializes it after Run.
     */
    telemetry::trace::TraceSession* trace = nullptr;

    /** Per-shard trace ring capacity (0 = session default). Shards on
     *  long runs fill and drop — the head of the run survives, and the
     *  drop count lands in the trace. */
    std::size_t trace_capacity = 4096;

    /**
     * Health timeline store sampled at window barriers (null disables).
     * Every `health_every_n_windows`-th barrier, the main thread —
     * workers parked, so no races and no dependence on thread count —
     * walks every node and appends the fleet's health counters,
     * error-budget denominators, and the merged epoch-latency
     * percentiles as "fleet.*" series at the window's virtual horizon.
     * Sampling is observe-only: it schedules no events and mutates no
     * sampled state, so enabling it leaves fleet_trace_hash() and every
     * per-shard trace byte-identical. Caller owns the store.
     */
    telemetry::TimeSeriesStore* health = nullptr;

    /**
     * Alert rules evaluated against `health` right after each sample
     * (null disables; ignored without `health`). Firing/resolved
     * transitions land in the engine's event log and, when tracing is
     * on, as instants on the "fleet" track at the sampled horizon.
     * Caller owns the engine (and reads its events/SLO status after
     * the run).
     */
    telemetry::AlertEngine* alerts = nullptr;

    /** Sample health every Nth window boundary (0 = never). */
    std::size_t health_every_n_windows = 1;

    /** Template applied to every node (name/seed overridden per node). */
    cluster::MultiAgentNodeConfig node;
};

/** Steps N MultiAgentNodes across W worker threads in S shards. */
class ShardedFleetRunner
{
  public:
    explicit ShardedFleetRunner(const FleetConfig& config);

    /** Joins the worker pool. Outstanding shard state is destroyed
     *  with the runner; call Stop() first for a clean agent shutdown. */
    ~ShardedFleetRunner();

    ShardedFleetRunner(const ShardedFleetRunner&) = delete;
    ShardedFleetRunner& operator=(const ShardedFleetRunner&) = delete;

    /**
     * Advances every shard by `span` of virtual time, one barrier-
     * synced window at a time. Blocks until all shards reach the final
     * horizon. The first window schedules every node's staggered
     * start. Like every other mutating call, must not be invoked
     * concurrently with itself.
     *
     * An exception thrown inside a shard (agent callback, allocation
     * failure) is captured on the worker and rethrown here at that
     * window's boundary — the same propagation ClusterDriver::Run
     * gives, instead of std::terminate. After such a throw the fleet's
     * shards are at mixed horizons; destroy the runner rather than
     * calling Run again.
     */
    void Run(sim::Duration span);

    /** Stops every node's agent runtimes (call between Run calls). */
    void Stop();

    /** SRE fleet-wide incident response: cleans up every agent. */
    void CleanUpAll();

    /**
     * Drains one node mid-run: stops its agent runtimes so its queued
     * control events become no-ops and its shard's remaining load
     * shrinks. Deterministic as long as it happens at the same virtual
     * time across runs (i.e. between the same Run calls).
     */
    void DrainNode(std::size_t global_index);

    /** Roll-up counters across every node in the fleet. */
    cluster::FleetStats Stats() const;

    /** Field-wise sum of every shard queue's counters. `pending` and
     *  `peak_pending` sum per-shard values (peaks did not necessarily
     *  coincide; the sum is an upper bound on any instant's total). */
    sim::EventQueueStats QueueStats() const;

    /** Total events executed across all shards. Thread-count-
     *  independent at window boundaries (i.e. whenever Run returns). */
    std::uint64_t total_executed() const;

    /**
     * Order-independent fingerprint of the whole fleet's event traces:
     * a commutative combine (wrapping sum of a splitmix64 finalizer)
     * over per-shard EventQueue::trace_hash() values. Identical for
     * identical (base_seed, num_shards, window schedule) no matter how
     * many threads stepped the shards.
     */
    std::uint64_t fleet_trace_hash() const;

    /** Virtual time every shard has reached (valid between Run calls). */
    sim::TimePoint Now() const { return now_; }

    /**
     * Aggregates per-node metrics (namespaced by node name) and fleet
     * totals into `out` (call between Run calls; walks every node).
     */
    void CollectFleetMetrics(telemetry::MetricRegistry& out);

    /** Snapshot of the shard health gauges merged concurrently at
     *  window boundaries (see FleetConfig::metrics_every_n_windows). */
    telemetry::MetricRegistry WindowMetricsSnapshot() const
    {
        return window_metrics_.Snapshot();
    }

    std::size_t num_nodes() const { return config_.num_nodes; }
    std::size_t num_shards() const { return shards_.size(); }
    std::size_t num_threads() const { return workers_.size(); }
    cluster::NodeShard& shard(std::size_t i) { return *shards_[i]; }

    /** Node by global fleet index. */
    cluster::MultiAgentNode& node(std::size_t global_index);

  private:
    /** Config-derived sizing, computed once (barrier participant
     *  counts and the worker pool must never disagree). */
    struct Resolved {
        std::size_t num_shards;
        std::size_t num_threads;
    };
    static Resolved Resolve(const FleetConfig& config);

    ShardedFleetRunner(const FleetConfig& config, Resolved resolved);

    void WorkerMain(std::size_t worker_index);

    /** Merges one shard's health gauges into window_metrics_. */
    void MergeShardWindowMetrics(std::size_t shard_index);

    /** Appends the fleet's "fleet.*" health series at `at` and runs the
     *  alert rules. Main thread only, workers parked. */
    void SampleFleetHealth(sim::TimePoint at);

    FleetConfig config_;
    /** Fleet-level track for window-barrier events; owned by
     *  config_.trace (null when tracing is disabled). Written only by
     *  the main thread between barriers. */
    telemetry::trace::TraceRecorder* fleet_trace_ = nullptr;
    std::vector<std::unique_ptr<cluster::NodeShard>> shards_;

    // Window protocol state. Written by the main thread before the
    // start barrier, read by workers after it; the barriers order all
    // access (no atomics needed beyond shutdown_'s lifetime role).
    sim::TimePoint now_{0};
    sim::TimePoint horizon_{0};
    std::uint64_t window_index_ = 0;
    bool merge_this_window_ = false;
    bool shutdown_ = false;

    telemetry::SharedMetricRegistry window_metrics_;

    // First exception raised inside any shard this window; rethrown by
    // Run() at the window boundary. Once that happens the shards are at
    // mixed horizons and `failed_` poisons every further Run(). The
    // barriers already order the workers' writes before Run()'s reads,
    // but Run() takes the (uncontended) lock anyway so the guarded-by
    // discipline holds everywhere.
    core::Mutex failure_mutex_;
    std::exception_ptr failure_ SOL_GUARDED_BY(failure_mutex_);
    bool failed_ SOL_GUARDED_BY(failure_mutex_) = false;

    std::barrier<> start_barrier_;
    std::barrier<> done_barrier_;
    std::vector<std::thread> workers_;
};

}  // namespace sol::fleet
