#include "ml/cost_sensitive.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace sol::ml {

std::uint32_t
HashFeatureName(const std::string& name)
{
    // FNV-1a 32-bit.
    std::uint32_t h = 2166136261u;
    for (const char c : name) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 16777619u;
    }
    return h;
}

FeatureVector::FeatureVector(unsigned num_bits)
{
    if (num_bits == 0 || num_bits > 28) {
        throw std::invalid_argument("num_bits must be in [1, 28]");
    }
    mask_ = (1u << num_bits) - 1;
}

void
FeatureVector::Add(const std::string& name, double value)
{
    // Index 0 is reserved for the bias term; avoid colliding with it.
    std::uint32_t idx = HashFeatureName(name) & mask_;
    if (idx == 0) {
        idx = 1;
    }
    features_.push_back(Feature{idx, value});
}

void
FeatureVector::AddHashed(std::uint32_t index, double value)
{
    features_.push_back(Feature{index & mask_, value});
}

CostSensitiveClassifier::CostSensitiveClassifier(
    const CostSensitiveConfig& config)
    : config_(config)
{
    if (config_.num_classes == 0) {
        throw std::invalid_argument("num_classes must be positive");
    }
    if (config_.learning_rate <= 0.0) {
        throw std::invalid_argument("learning_rate must be positive");
    }
    table_size_ = std::size_t{1} << config_.num_bits;
    weights_.assign(config_.num_classes * table_size_, 0.0);
}

std::size_t
CostSensitiveClassifier::Predict(const FeatureVector& x) const
{
    std::size_t best = 0;
    double best_cost = Dot(x, 0);
    for (std::size_t c = 1; c < config_.num_classes; ++c) {
        const double cost = Dot(x, c);
        if (cost < best_cost) {
            best_cost = cost;
            best = c;
        }
    }
    return best;
}

double
CostSensitiveClassifier::PredictCost(const FeatureVector& x,
                                     std::size_t cls) const
{
    return Dot(x, cls);
}

void
CostSensitiveClassifier::Update(const FeatureVector& x,
                                const std::vector<double>& costs)
{
    if (costs.size() != config_.num_classes) {
        throw std::invalid_argument("costs size != num_classes");
    }
    for (std::size_t c = 0; c < config_.num_classes; ++c) {
        const double predicted = Dot(x, c);
        const double error = predicted - costs[c];
        double* row = &weights_[c * table_size_];
        for (const auto& f : x.features()) {
            double& w = row[f.index];
            w -= config_.learning_rate *
                 (error * f.value + config_.l2 * w);
        }
    }
    ++updates_;
}

void
CostSensitiveClassifier::Reset()
{
    std::fill(weights_.begin(), weights_.end(), 0.0);
    updates_ = 0;
}

double
CostSensitiveClassifier::Dot(const FeatureVector& x, std::size_t cls) const
{
    assert(cls < config_.num_classes);
    const double* row = &weights_[cls * table_size_];
    double total = 0.0;
    for (const auto& f : x.features()) {
        total += row[f.index] * f.value;
    }
    return total;
}

std::vector<double>
AsymmetricCosts(std::size_t num_classes, std::size_t true_class,
                double under_penalty, double over_penalty)
{
    assert(true_class < num_classes);
    std::vector<double> costs(num_classes);
    for (std::size_t c = 0; c < num_classes; ++c) {
        if (c < true_class) {
            costs[c] = under_penalty *
                       static_cast<double>(true_class - c);
        } else {
            costs[c] = over_penalty * static_cast<double>(c - true_class);
        }
    }
    return costs;
}

}  // namespace sol::ml
