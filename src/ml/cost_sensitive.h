/**
 * @file
 * Online cost-sensitive multiclass classifier.
 *
 * This reproduces the model family SmartHarvest uses from VowpalWabbit
 * (csoaa: cost-sensitive one-against-all). Each class has a linear
 * regressor over hashed features that predicts the *cost* of choosing the
 * class; prediction picks the argmin-cost class; training regresses each
 * class's score toward its observed cost with online gradient descent.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace sol::ml {

/** Sparse feature: hashed index plus value. */
struct Feature {
    std::uint32_t index;
    double value;
};

/** Builder for hashed sparse feature vectors (VW-style namespace.name). */
class FeatureVector
{
  public:
    /** @param num_bits Hash space is 2^num_bits weights per class. */
    explicit FeatureVector(unsigned num_bits = 18);

    /** Adds a named real-valued feature. */
    void Add(const std::string& name, double value);

    /** Adds a precomputed hashed feature. */
    void AddHashed(std::uint32_t index, double value);

    /** Adds a constant bias term. */
    void AddBias() { AddHashed(0, 1.0); }

    void Clear() { features_.clear(); }

    const std::vector<Feature>& features() const { return features_; }
    std::uint32_t mask() const { return mask_; }

  private:
    std::vector<Feature> features_;
    std::uint32_t mask_;
};

/** Configuration for CostSensitiveClassifier. */
struct CostSensitiveConfig {
    std::size_t num_classes = 0;
    unsigned num_bits = 18;       ///< log2 of per-class weight table size.
    double learning_rate = 0.05;  ///< SGD step size.
    double l2 = 0.0;              ///< L2 regularization strength.
};

/** Cost-sensitive one-against-all linear classifier. */
class CostSensitiveClassifier
{
  public:
    explicit CostSensitiveClassifier(const CostSensitiveConfig& config);

    /** Class with the lowest predicted cost. */
    std::size_t Predict(const FeatureVector& x) const;

    /** Predicted cost of one class. */
    double PredictCost(const FeatureVector& x, std::size_t cls) const;

    /**
     * Online update: regress each class's predicted cost toward the given
     * observed costs (one per class).
     */
    void Update(const FeatureVector& x, const std::vector<double>& costs);

    void Reset();

    std::size_t num_classes() const { return config_.num_classes; }
    std::size_t updates() const { return updates_; }

  private:
    double Dot(const FeatureVector& x, std::size_t cls) const;

    CostSensitiveConfig config_;
    std::vector<double> weights_;  ///< num_classes * 2^num_bits, row-major.
    std::size_t table_size_;
    std::size_t updates_ = 0;
};

/**
 * Standard asymmetric cost function for resource under/over-prediction:
 * under-predicting (starving the customer) costs more per unit than
 * over-predicting (missing harvest opportunity).
 */
std::vector<double> AsymmetricCosts(std::size_t num_classes,
                                    std::size_t true_class,
                                    double under_penalty,
                                    double over_penalty);

/** FNV-1a hash of a string, for feature hashing. */
std::uint32_t HashFeatureName(const std::string& name);

}  // namespace sol::ml
