#include "ml/qlearning.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace sol::ml {

QLearner::QLearner(const QLearnerConfig& config) : config_(config)
{
    if (config_.num_states == 0 || config_.num_actions == 0) {
        throw std::invalid_argument("QLearner requires states and actions");
    }
    if (config_.learning_rate <= 0.0 || config_.learning_rate > 1.0) {
        throw std::invalid_argument("learning_rate must be in (0, 1]");
    }
    if (config_.discount < 0.0 || config_.discount >= 1.0) {
        throw std::invalid_argument("discount must be in [0, 1)");
    }
    table_.assign(config_.num_states * config_.num_actions,
                  config_.initial_q);
}

void
QLearner::Update(std::size_t state, std::size_t action, double reward,
                 std::size_t next_state)
{
    const double target = reward + config_.discount * MaxQ(next_state);
    double& q = table_[Index(state, action)];
    q += config_.learning_rate * (target - q);
    ++updates_;
}

std::size_t
QLearner::GreedyAction(std::size_t state) const
{
    std::size_t best = 0;
    double best_q = Q(state, 0);
    for (std::size_t a = 1; a < config_.num_actions; ++a) {
        const double q = Q(state, a);
        if (q > best_q) {
            best_q = q;
            best = a;
        }
    }
    return best;
}

std::size_t
QLearner::SelectAction(std::size_t state, sim::Rng& rng,
                       bool* explored) const
{
    if (rng.NextBool(config_.exploration)) {
        if (explored) {
            *explored = true;
        }
        return rng.NextBelow(config_.num_actions);
    }
    if (explored) {
        *explored = false;
    }
    return GreedyAction(state);
}

double
QLearner::Q(std::size_t state, std::size_t action) const
{
    return table_[Index(state, action)];
}

double
QLearner::MaxQ(std::size_t state) const
{
    double best = Q(state, 0);
    for (std::size_t a = 1; a < config_.num_actions; ++a) {
        best = std::max(best, Q(state, a));
    }
    return best;
}

void
QLearner::Reset()
{
    std::fill(table_.begin(), table_.end(), config_.initial_q);
    updates_ = 0;
}

std::size_t
QLearner::Index(std::size_t state, std::size_t action) const
{
    assert(state < config_.num_states);
    assert(action < config_.num_actions);
    return state * config_.num_actions + action;
}

UniformBucketizer::UniformBucketizer(double lo, double hi,
                                     std::size_t buckets)
    : lo_(lo), hi_(hi), buckets_(buckets)
{
    if (buckets == 0 || hi <= lo) {
        throw std::invalid_argument("bad bucketizer range");
    }
}

std::size_t
UniformBucketizer::Bucket(double value) const
{
    if (value <= lo_) {
        return 0;
    }
    if (value >= hi_) {
        return buckets_ - 1;
    }
    const double t = (value - lo_) / (hi_ - lo_);
    auto b = static_cast<std::size_t>(t * static_cast<double>(buckets_));
    return std::min(b, buckets_ - 1);
}

}  // namespace sol::ml
