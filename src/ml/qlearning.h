/**
 * @file
 * Tabular Q-learning with epsilon-greedy exploration.
 *
 * SmartOverclock uses this model: states are (discretized IPS, current
 * frequency) pairs, actions are the discrete frequency choices, and the
 * reward trades performance gain against power cost (paper section 5.1).
 */
#pragma once

#include <cstddef>
#include <vector>

#include "sim/rng.h"

namespace sol::ml {

/** Configuration for QLearner. */
struct QLearnerConfig {
    std::size_t num_states = 0;
    std::size_t num_actions = 0;
    double learning_rate = 0.2;     ///< Step size alpha.
    double discount = 0.6;          ///< Future-reward discount gamma.
    double exploration = 0.1;       ///< Epsilon for epsilon-greedy.
    double initial_q = 0.0;         ///< Optimistic initialization value.
};

/** Tabular Q-learning agent. */
class QLearner
{
  public:
    explicit QLearner(const QLearnerConfig& config);

    /**
     * Applies the Q-update for a transition.
     *
     * @param state State the action was taken in.
     * @param action Action taken.
     * @param reward Observed reward.
     * @param next_state Resulting state.
     */
    void Update(std::size_t state, std::size_t action, double reward,
                std::size_t next_state);

    /** Greedy action (argmax Q) for a state; ties break to lowest index. */
    std::size_t GreedyAction(std::size_t state) const;

    /**
     * Epsilon-greedy action selection.
     *
     * @param explored Set to true when the action was a random exploration.
     */
    std::size_t SelectAction(std::size_t state, sim::Rng& rng,
                             bool* explored = nullptr) const;

    double Q(std::size_t state, std::size_t action) const;
    double MaxQ(std::size_t state) const;

    /** Resets the table to the initial value (model retraining). */
    void Reset();

    const QLearnerConfig& config() const { return config_; }

    /** Total number of Update() calls. */
    std::size_t updates() const { return updates_; }

  private:
    std::size_t Index(std::size_t state, std::size_t action) const;

    QLearnerConfig config_;
    std::vector<double> table_;
    std::size_t updates_ = 0;
};

/** Uniform discretizer mapping a real value to a bucket in [0, buckets). */
class UniformBucketizer
{
  public:
    UniformBucketizer(double lo, double hi, std::size_t buckets);

    std::size_t Bucket(double value) const;
    std::size_t buckets() const { return buckets_; }

  private:
    double lo_;
    double hi_;
    std::size_t buckets_;
};

}  // namespace sol::ml
