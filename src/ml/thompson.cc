#include "ml/thompson.h"

#include <cassert>
#include <stdexcept>

namespace sol::ml {

ThompsonSampler::ThompsonSampler(std::size_t num_arms, double prior_alpha,
                                 double prior_beta)
    : prior_alpha_(prior_alpha), prior_beta_(prior_beta)
{
    if (num_arms == 0) {
        throw std::invalid_argument("ThompsonSampler needs >= 1 arm");
    }
    if (prior_alpha <= 0.0 || prior_beta <= 0.0) {
        throw std::invalid_argument("Beta prior parameters must be > 0");
    }
    alpha_.assign(num_arms, prior_alpha_);
    beta_.assign(num_arms, prior_beta_);
}

std::size_t
ThompsonSampler::SelectArm(sim::Rng& rng) const
{
    std::size_t best = 0;
    double best_theta = -1.0;
    for (std::size_t arm = 0; arm < alpha_.size(); ++arm) {
        const double theta = rng.NextBeta(alpha_[arm], beta_[arm]);
        if (theta > best_theta) {
            best_theta = theta;
            best = arm;
        }
    }
    return best;
}

void
ThompsonSampler::Observe(std::size_t arm, bool success)
{
    assert(arm < alpha_.size());
    if (success) {
        alpha_[arm] += 1.0;
    } else {
        beta_[arm] += 1.0;
    }
}

double
ThompsonSampler::PosteriorMean(std::size_t arm) const
{
    assert(arm < alpha_.size());
    return alpha_[arm] / (alpha_[arm] + beta_[arm]);
}

void
ThompsonSampler::Decay(double factor)
{
    if (factor <= 0.0 || factor > 1.0) {
        throw std::invalid_argument("decay factor must be in (0, 1]");
    }
    for (std::size_t arm = 0; arm < alpha_.size(); ++arm) {
        alpha_[arm] = prior_alpha_ + (alpha_[arm] - prior_alpha_) * factor;
        beta_[arm] = prior_beta_ + (beta_[arm] - prior_beta_) * factor;
    }
}

void
ThompsonSampler::Reset()
{
    alpha_.assign(alpha_.size(), prior_alpha_);
    beta_.assign(beta_.size(), prior_beta_);
}

}  // namespace sol::ml
