/**
 * @file
 * Thompson Sampling with Beta priors for Bernoulli bandits.
 *
 * SmartMemory runs one of these bandits per 2 MB memory batch: arms are
 * the candidate page-access-bit scan periods, the reward is whether the
 * chosen period sampled the batch "well" (neither over- nor under-sampled)
 * in the last epoch (paper section 5.3).
 */
#pragma once

#include <cstddef>
#include <vector>

#include "sim/rng.h"

namespace sol::ml {

/** Beta-Bernoulli Thompson Sampling over a fixed arm set. */
class ThompsonSampler
{
  public:
    /**
     * @param num_arms Number of arms; must be >= 1.
     * @param prior_alpha Prior successes (> 0).
     * @param prior_beta Prior failures (> 0).
     */
    explicit ThompsonSampler(std::size_t num_arms, double prior_alpha = 1.0,
                             double prior_beta = 1.0);

    /** Samples a theta from each arm's posterior; returns the argmax. */
    std::size_t SelectArm(sim::Rng& rng) const;

    /** Records a Bernoulli outcome for an arm. */
    void Observe(std::size_t arm, bool success);

    /** Posterior mean of an arm. */
    double PosteriorMean(std::size_t arm) const;

    /** Decays all posteriors toward the prior; forgets stale evidence
     *  after workload phase changes. Factor in (0, 1]; 1 is a no-op. */
    void Decay(double factor);

    void Reset();

    std::size_t num_arms() const { return alpha_.size(); }
    double alpha(std::size_t arm) const { return alpha_[arm]; }
    double beta(std::size_t arm) const { return beta_[arm]; }

  private:
    double prior_alpha_;
    double prior_beta_;
    std::vector<double> alpha_;
    std::vector<double> beta_;
};

}  // namespace sol::ml
