#include "node/channel_array.h"

#include <algorithm>
#include <stdexcept>

namespace sol::node {

double
IncidentStats::Coverage() const
{
    const std::uint64_t resolved = detected + missed;
    if (resolved == 0) {
        return 1.0;
    }
    return static_cast<double>(detected) / static_cast<double>(resolved);
}

ChannelArray::ChannelArray(std::size_t num_channels,
                           sim::Duration visibility)
    : channels_(num_channels), visibility_(visibility)
{
    if (num_channels == 0) {
        throw std::invalid_argument("need at least one channel");
    }
    if (visibility <= sim::Duration::zero()) {
        throw std::invalid_argument("visibility must be positive");
    }
}

void
ChannelArray::SetIncidentRate(ChannelId channel, double per_sec)
{
    if (per_sec < 0.0) {
        throw std::invalid_argument("rate must be non-negative");
    }
    Get(channel).rate_per_sec = per_sec;
}

void
ChannelArray::Advance(sim::TimePoint now, sim::Duration dt, sim::Rng& rng)
{
    const double dt_secs = sim::ToSeconds(dt);
    const sim::TimePoint tick_end = now + dt;
    const sim::TimePoint cutoff = tick_end > visibility_
                                      ? tick_end - visibility_
                                      : sim::TimePoint(0);
    for (auto& channel : channels_) {
        // Poisson arrivals approximated per tick (dt << 1/rate).
        const double expected = channel.rate_per_sec * dt_secs;
        if (expected > 0.0 && rng.NextBool(std::min(expected, 1.0))) {
            channel.pending.push_back(tick_end);
            ++stats_.generated;
        }
        // Incidents older than the visibility window are lost.
        while (!channel.pending.empty() &&
               channel.pending.front() < cutoff) {
            channel.pending.pop_front();
            ++stats_.missed;
        }
    }
}

int
ChannelArray::Sample(ChannelId channel, sim::TimePoint now, bool* error)
{
    auto& state = Get(channel);
    ++samples_;
    if (sample_errors_ > 0) {
        --sample_errors_;
        if (error) {
            *error = true;
        }
        return -1;  // Corrupted reading.
    }
    if (error) {
        *error = false;
    }
    int found = 0;
    while (!state.pending.empty()) {
        const sim::TimePoint at = state.pending.front();
        state.pending.pop_front();
        ++stats_.detected;
        latencies_.push_back(sim::ToSeconds(now - at));
        ++found;
    }
    return found;
}

double
ChannelArray::IncidentRate(ChannelId channel) const
{
    return Get(channel).rate_per_sec;
}

ChannelArray::Channel&
ChannelArray::Get(ChannelId channel)
{
    if (channel >= channels_.size()) {
        throw std::out_of_range("no such channel");
    }
    return channels_[channel];
}

const ChannelArray::Channel&
ChannelArray::Get(ChannelId channel) const
{
    if (channel >= channels_.size()) {
        throw std::out_of_range("no such channel");
    }
    return channels_[channel];
}

}  // namespace sol::node
