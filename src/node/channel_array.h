/**
 * @file
 * Telemetry channel substrate for the monitoring-agent extension.
 *
 * The paper's section 2 argues that monitoring/logging agents — 18 of
 * the 77 Azure node agents — can use on-node learning to decide *what*
 * telemetry to sample within a fixed collection budget, instead of
 * treating every sample as equally valuable. This substrate models that
 * setting: an array of telemetry channels (per-device error counters,
 * per-VM health signals, ...) in which incidents appear at
 * channel-dependent, time-varying rates. Sampling a channel detects any
 * not-yet-detected incident on it; an incident that stays undetected
 * longer than its visibility window is missed (the information is
 * rotated out of the hardware/OS buffer).
 */
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "sim/rng.h"
#include "sim/time.h"

namespace sol::node {

/** Identifier of a telemetry channel. */
using ChannelId = std::size_t;

/** Aggregate incident accounting (the evaluation's ground truth). */
struct IncidentStats {
    std::uint64_t generated = 0;
    std::uint64_t detected = 0;
    std::uint64_t missed = 0;  ///< Aged out before any sample saw them.

    /** Fraction of expired-or-detected incidents that were detected. */
    double Coverage() const;
};

/** Array of telemetry channels with incident generation and sampling. */
class ChannelArray
{
  public:
    /**
     * @param num_channels Channels on the node.
     * @param visibility How long an incident stays detectable.
     */
    ChannelArray(std::size_t num_channels, sim::Duration visibility);

    /** Sets a channel's incident rate (incidents per second). */
    void SetIncidentRate(ChannelId channel, double per_sec);

    /** Generates incidents for (now, now + dt] and ages out old ones. */
    void Advance(sim::TimePoint now, sim::Duration dt, sim::Rng& rng);

    /**
     * Samples a channel: detects every currently visible incident on
     * it. Returns the number of incidents detected by this sample.
     *
     * @param error Set to true when the (injectable) sampling failure
     *   fires; the reading must then be discarded by the caller.
     */
    int Sample(ChannelId channel, sim::TimePoint now,
               bool* error = nullptr);

    /** Makes the next `count` samples report an error. */
    void InjectSampleErrors(std::uint64_t count) { sample_errors_ = count; }

    /** Detection latencies (seconds) of all detected incidents. */
    const std::vector<double>& detection_latencies() const
    {
        return latencies_;
    }

    std::size_t num_channels() const { return channels_.size(); }
    const IncidentStats& stats() const { return stats_; }
    std::uint64_t samples_taken() const { return samples_; }

    /** Ground truth incident rate of a channel (for tests). */
    double IncidentRate(ChannelId channel) const;

  private:
    struct Channel {
        double rate_per_sec = 0.0;
        std::deque<sim::TimePoint> pending;  ///< Undetected incidents.
    };

    Channel& Get(ChannelId channel);
    const Channel& Get(ChannelId channel) const;

    std::vector<Channel> channels_;
    sim::Duration visibility_;
    IncidentStats stats_;
    std::vector<double> latencies_;
    std::uint64_t samples_ = 0;
    std::uint64_t sample_errors_ = 0;
};

}  // namespace sol::node
