/**
 * @file
 * Interface between simulated VMs and the workloads running inside them.
 *
 * Agents never see this interface — they are restricted to hypervisor
 * counters, exactly like the paper's agents that manage opaque VMs. The
 * node queries the workload for its activity each tick to synthesize
 * those counters.
 */
#pragma once

#include <string>

#include "sim/time.h"

namespace sol::node {

/** Resources the node grants a VM for the current tick. */
struct CpuResources {
    double freq_ghz = 1.5;  ///< Core frequency applied to the VM's cores.
    int granted_cores = 1;  ///< Physical cores currently granted.
};

/** Instantaneous activity reported by a workload after a tick. */
struct CpuActivity {
    /** Busy fraction of the granted cores, in [0, 1]. */
    double utilization = 0.0;
    /** Cores the workload would use if unconstrained (may exceed grant). */
    double cores_demand = 0.0;
    /** Instructions per cycle while running (workload-dependent). */
    double ipc = 1.0;
    /** Fraction of busy cycles stalled on memory/IO, in [0, 1]. */
    double stall_fraction = 0.0;
};

/** A workload running inside a (opaque-to-agents) VM. */
class CpuWorkload
{
  public:
    virtual ~CpuWorkload() = default;

    /**
     * Advances the workload by dt given the granted resources.
     *
     * Implementations update their internal queues/progress and remember
     * the activity to report from Activity().
     */
    virtual void Advance(sim::TimePoint now, sim::Duration dt,
                         const CpuResources& res) = 0;

    /** Activity over the last Advance() tick. */
    virtual CpuActivity Activity() const = 0;

    /** Workload name for reports. */
    virtual std::string name() const = 0;

    /**
     * Scalar performance of the run so far. Direction depends on the
     * workload (see PerformanceHigherIsBetter); units via
     * PerformanceUnit().
     */
    virtual double PerformanceValue() const = 0;

    /** Unit label for PerformanceValue (e.g. "req/s", "ms"). */
    virtual std::string PerformanceUnit() const = 0;

    /** True when a larger PerformanceValue means better performance. */
    virtual bool PerformanceHigherIsBetter() const = 0;
};

}  // namespace sol::node
