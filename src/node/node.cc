#include "node/node.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sol::node {

double
CpuCounterDelta::Ips() const
{
    const double secs = sim::ToSeconds(span);
    return secs > 0.0 ? instructions / secs : 0.0;
}

double
CpuCounterDelta::Alpha() const
{
    if (total_cycles <= 0.0) {
        return 0.0;
    }
    return std::max(0.0, (unhalted_cycles - stalled_cycles) / total_cycles);
}

CpuCounterDelta
Diff(const CpuCounterSnapshot& a, const CpuCounterSnapshot& b)
{
    CpuCounterDelta d;
    d.instructions = b.instructions - a.instructions;
    d.total_cycles = b.total_cycles - a.total_cycles;
    d.unhalted_cycles = b.unhalted_cycles - a.unhalted_cycles;
    d.stalled_cycles = b.stalled_cycles - a.stalled_cycles;
    d.span = b.at - a.at;
    return d;
}

Node::Node(const NodeConfig& config)
    : config_(config), power_model_(config.power)
{
    if (config_.total_cores <= 0) {
        throw std::invalid_argument("node needs at least one core");
    }
    if (config_.allowed_freqs_ghz.empty()) {
        throw std::invalid_argument("node needs allowed frequencies");
    }
}

VmId
Node::AddVm(const VmConfig& vm_config, std::shared_ptr<CpuWorkload> wl)
{
    if (!wl) {
        throw std::invalid_argument("VM requires a workload");
    }
    if (vm_config.allocated_cores <= 0) {
        throw std::invalid_argument("VM requires at least one core");
    }
    int used = 0;
    for (const auto& vm : vms_) {
        used += vm.config.allocated_cores;
    }
    if (used + vm_config.allocated_cores > config_.total_cores) {
        throw std::invalid_argument("node is out of cores");
    }
    VmState state;
    state.config = vm_config;
    state.workload = std::move(wl);
    state.freq_ghz = config_.nominal_freq_ghz;
    state.granted_cores = vm_config.allocated_cores;
    vms_.push_back(std::move(state));
    return vms_.size() - 1;
}

void
Node::Advance(sim::TimePoint now, sim::Duration dt)
{
    const double dt_secs = sim::ToSeconds(dt);
    double power = power_model_.config().base_watts;
    for (auto& vm : vms_) {
        CpuResources res{vm.freq_ghz, vm.granted_cores};
        vm.workload->Advance(now, dt, res);
        const CpuActivity activity = vm.workload->Activity();
        vm.last_activity = activity;

        const double cores = static_cast<double>(vm.granted_cores);
        const double hz = vm.freq_ghz * 1e9;
        const double total = cores * hz * dt_secs;
        const double unhalted = activity.utilization * total;
        const double stalled = activity.stall_fraction * unhalted;
        vm.counters.total_cycles += total;
        vm.counters.unhalted_cycles += unhalted;
        vm.counters.stalled_cycles += stalled;
        // Instructions retire only on non-stalled busy cycles.
        vm.counters.instructions += activity.ipc * (unhalted - stalled);
        vm.counters.at = now;

        const double unmet =
            std::max(0.0, activity.cores_demand - cores);
        vm.vcpu_wait += sim::Duration(static_cast<std::int64_t>(
            unmet * static_cast<double>(dt.count())));

        power += static_cast<double>(vm.granted_cores) *
                 power_model_.CorePower(vm.freq_ghz, activity.utilization);
    }
    last_power_watts_ = power;
    energy_joules_ += power * dt_secs;
}

void
Node::SetVmFrequency(VmId vm, double freq_ghz)
{
    const auto& allowed = config_.allowed_freqs_ghz;
    const bool ok = std::any_of(
        allowed.begin(), allowed.end(),
        [freq_ghz](double f) { return std::abs(f - freq_ghz) < 1e-9; });
    if (!ok) {
        throw std::invalid_argument("frequency not supported by DVFS");
    }
    Get(vm).freq_ghz = freq_ghz;
}

void
Node::ResetVmFrequency(VmId vm)
{
    Get(vm).freq_ghz = config_.nominal_freq_ghz;
}

void
Node::GrantCores(VmId vm, int cores)
{
    auto& state = Get(vm);
    state.granted_cores =
        std::clamp(cores, 0, state.config.allocated_cores);
}

void
Node::ResetGrants()
{
    for (auto& vm : vms_) {
        vm.granted_cores = vm.config.allocated_cores;
    }
}

CpuCounterSnapshot
Node::ReadCounters(VmId vm) const
{
    return Get(vm).counters;
}

double
Node::SampleCpuUsage(VmId vm) const
{
    const auto& state = Get(vm);
    return state.last_activity.utilization *
           static_cast<double>(state.granted_cores);
}

double
Node::SampleCpuDemand(VmId vm) const
{
    return Get(vm).last_activity.cores_demand;
}

sim::Duration
Node::VcpuWaitTime(VmId vm) const
{
    return Get(vm).vcpu_wait;
}

double
Node::VmFrequency(VmId vm) const
{
    return Get(vm).freq_ghz;
}

int
Node::GrantedCores(VmId vm) const
{
    return Get(vm).granted_cores;
}

int
Node::AllocatedCores(VmId vm) const
{
    return Get(vm).config.allocated_cores;
}

CpuWorkload&
Node::Workload(VmId vm)
{
    return *Get(vm).workload;
}

const Node::VmState&
Node::Get(VmId vm) const
{
    if (vm >= vms_.size()) {
        throw std::out_of_range("no such VM");
    }
    return vms_[vm];
}

Node::VmState&
Node::Get(VmId vm)
{
    if (vm >= vms_.size()) {
        throw std::out_of_range("no such VM");
    }
    return vms_[vm];
}

}  // namespace sol::node
