/**
 * @file
 * Simulated server node: VMs, DVFS, hypervisor counters, core harvesting.
 *
 * This class stands in for the Hyper-V root partition in the paper's
 * testbed. Agents interact with it only through the counter/knob surface a
 * real hypervisor exposes:
 *   - cumulative CPU counters per VM (instructions, total/unhalted/stalled
 *     cycles),
 *   - instantaneous CPU usage samples (cores in use),
 *   - cumulative vCPU wait time (virtual cores runnable but not running),
 *   - frequency control per VM, and
 *   - core grant control (harvesting).
 *
 * The node is advanced by a periodic driver event owned by the experiment
 * harness; each tick it runs every VM's workload, integrates energy, and
 * updates counters.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "node/cpu_workload.h"
#include "node/power_model.h"
#include "sim/time.h"

namespace sol::node {

/** Identifier of a VM on the node. */
using VmId = std::size_t;

/** Cumulative hypervisor CPU counters for one VM. */
struct CpuCounterSnapshot {
    double instructions = 0.0;     ///< Retired instructions.
    double total_cycles = 0.0;     ///< Granted-core cycles (busy or not).
    double unhalted_cycles = 0.0;  ///< Cycles cores were busy.
    double stalled_cycles = 0.0;   ///< Busy cycles stalled on mem/IO.
    sim::TimePoint at{0};          ///< Time the snapshot was taken.
};

/** Difference of two snapshots with derived rates. */
struct CpuCounterDelta {
    double instructions = 0.0;
    double total_cycles = 0.0;
    double unhalted_cycles = 0.0;
    double stalled_cycles = 0.0;
    sim::Duration span{0};

    /** Instructions per second over the delta window. */
    double Ips() const;

    /** Activity factor alpha = (unhalted - stalled) / total (paper 5.1). */
    double Alpha() const;
};

/** Computes b - a. */
CpuCounterDelta Diff(const CpuCounterSnapshot& a,
                     const CpuCounterSnapshot& b);

/** Static configuration of one VM. */
struct VmConfig {
    std::string name;
    int allocated_cores = 1;  ///< Cores the customer paid for.
};

/** Node-wide configuration. */
struct NodeConfig {
    int total_cores = 8;
    double nominal_freq_ghz = 1.5;
    /** Frequencies the DVFS hardware accepts. */
    std::vector<double> allowed_freqs_ghz = {1.5, 1.9, 2.3};
    PowerModelConfig power;
};

/** Simulated server node (the hypervisor surface agents program against). */
class Node
{
  public:
    explicit Node(const NodeConfig& config);

    /** Adds a VM running the given workload; returns its id. */
    VmId AddVm(const VmConfig& config, std::shared_ptr<CpuWorkload> wl);

    /** Advances all VMs by dt and integrates counters and energy. */
    void Advance(sim::TimePoint now, sim::Duration dt);

    // --- Knobs (the actuator surface) ---------------------------------

    /**
     * Sets the frequency of a VM's cores. Throws std::invalid_argument if
     * the frequency is not in the allowed set (DVFS rejects it).
     */
    void SetVmFrequency(VmId vm, double freq_ghz);

    /** Restores a VM's cores to the nominal frequency. */
    void ResetVmFrequency(VmId vm);

    /**
     * Grants a VM a number of physical cores (harvesting takes some away).
     * Clamped to [0, allocated_cores].
     */
    void GrantCores(VmId vm, int cores);

    /** Returns all cores of a VM (stop harvesting). */
    void ResetGrants();

    // --- Counters (the model surface) ----------------------------------

    CpuCounterSnapshot ReadCounters(VmId vm) const;

    /** Cores of the VM busy right now (50 us-style usage sample). */
    double SampleCpuUsage(VmId vm) const;

    /** Instantaneous core demand (runnable vCPUs), may exceed the grant. */
    double SampleCpuDemand(VmId vm) const;

    /** Cumulative time vCPUs were runnable but had no physical core. */
    sim::Duration VcpuWaitTime(VmId vm) const;

    /** Cumulative node energy in joules. */
    double EnergyJoules() const { return energy_joules_; }

    /** Node power over the last tick, watts. */
    double LastPowerWatts() const { return last_power_watts_; }

    // --- Introspection --------------------------------------------------

    double VmFrequency(VmId vm) const;
    int GrantedCores(VmId vm) const;
    int AllocatedCores(VmId vm) const;
    double NominalFrequency() const { return config_.nominal_freq_ghz; }
    const std::vector<double>& AllowedFrequencies() const
    {
        return config_.allowed_freqs_ghz;
    }
    std::size_t NumVms() const { return vms_.size(); }
    CpuWorkload& Workload(VmId vm);
    const NodeConfig& config() const { return config_; }

  private:
    struct VmState {
        VmConfig config;
        std::shared_ptr<CpuWorkload> workload;
        double freq_ghz;
        int granted_cores;
        CpuCounterSnapshot counters;
        sim::Duration vcpu_wait{0};
        CpuActivity last_activity;
    };

    const VmState& Get(VmId vm) const;
    VmState& Get(VmId vm);

    NodeConfig config_;
    PowerModel power_model_;
    std::vector<VmState> vms_;
    double energy_joules_ = 0.0;
    double last_power_watts_ = 0.0;
};

}  // namespace sol::node
