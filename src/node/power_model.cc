#include "node/power_model.h"

#include <algorithm>

namespace sol::node {

double
PowerModel::CorePower(double freq_ghz, double utilization) const
{
    utilization = std::clamp(utilization, 0.0, 1.0);
    const double f3 = freq_ghz * freq_ghz * freq_ghz;
    return config_.core_static_coeff * f3 +
           config_.core_dynamic_coeff * utilization * f3;
}

double
PowerModel::NodePower(double freq_ghz, double utilization, int cores) const
{
    return config_.base_watts +
           static_cast<double>(cores) * CorePower(freq_ghz, utilization);
}

}  // namespace sol::node
