/**
 * @file
 * Node power model.
 *
 * Replaces the paper's RAPL measurements. Per-core power is
 *
 *     P_core(f, u) = k_static * f^3 + k_dynamic * u * f^3
 *
 * i.e. both the voltage-scaled static term and the switching term grow
 * cubically with frequency (overclocking raises voltage with frequency).
 * The cubic static term is what makes overclocking an idle or stalled
 * workload expensive — the property Figures 3-5 exercise.
 */
#pragma once

namespace sol::node {

/** Coefficients for the node power model. */
struct PowerModelConfig {
    double base_watts = 5.0;       ///< Uncore/board power, frequency-free.
    double core_static_coeff = 2.0;   ///< k_static (W per GHz^3).
    double core_dynamic_coeff = 10.0; ///< k_dynamic (W per GHz^3 at u=1).
};

/** Computes node power from per-core frequency and utilization. */
class PowerModel
{
  public:
    explicit PowerModel(const PowerModelConfig& config = {})
        : config_(config)
    {}

    /** Power of one core at the given frequency and utilization. */
    double CorePower(double freq_ghz, double utilization) const;

    /** Aggregate power of `cores` identical cores plus the base. */
    double NodePower(double freq_ghz, double utilization, int cores) const;

    const PowerModelConfig& config() const { return config_; }

  private:
    PowerModelConfig config_;
};

}  // namespace sol::node
