#include "node/tiered_memory.h"

#include <stdexcept>

namespace sol::node {

double
MemoryAccessStats::RemoteFraction() const
{
    const std::uint64_t all = total();
    if (all == 0) {
        return 0.0;
    }
    return static_cast<double>(remote_accesses) / static_cast<double>(all);
}

TieredMemory::TieredMemory(std::size_t num_batches,
                           std::size_t fast_tier_capacity)
    : batches_(num_batches), fast_capacity_(fast_tier_capacity)
{
    if (num_batches == 0) {
        throw std::invalid_argument("need at least one batch");
    }
    if (fast_tier_capacity == 0) {
        throw std::invalid_argument("fast tier needs capacity");
    }
    for (std::size_t i = 0; i < batches_.size(); ++i) {
        if (i < fast_capacity_) {
            batches_[i].tier = Tier::kFast;
            ++fast_used_;
        } else {
            batches_[i].tier = Tier::kSlow;
        }
    }
}

void
TieredMemory::RecordAccess(BatchId batch, sim::TimePoint now,
                           std::uint64_t count)
{
    auto& b = Get(batch);
    b.access_bit = true;
    b.last_access = now;
    b.epoch_accesses += count;
    if (b.tier == Tier::kFast) {
        stats_.local_accesses += count;
    } else {
        stats_.remote_accesses += count;
    }
}

bool
TieredMemory::ScanAndReset(BatchId batch, bool* error)
{
    auto& b = Get(batch);
    ++scans_;
    if (scan_errors_ > 0) {
        --scan_errors_;
        if (error) {
            *error = true;
        }
        return false;
    }
    if (error) {
        *error = false;
    }
    const bool was_set = b.access_bit;
    if (was_set) {
        b.access_bit = false;
        ++bit_resets_;
        tlb_flushes_ += kPagesPerBatch;
    }
    return was_set;
}

void
TieredMemory::Migrate(BatchId batch, Tier tier)
{
    auto& b = Get(batch);
    if (b.tier == tier) {
        return;
    }
    if (tier == Tier::kFast) {
        if (fast_used_ >= fast_capacity_) {
            throw std::runtime_error("fast tier is full");
        }
        ++fast_used_;
    } else {
        --fast_used_;
    }
    b.tier = tier;
    ++migrations_;
}

bool
TieredMemory::FastTierHasRoom() const
{
    return fast_used_ < fast_capacity_;
}

Tier
TieredMemory::TierOf(BatchId batch) const
{
    return Get(batch).tier;
}

sim::TimePoint
TieredMemory::LastAccess(BatchId batch) const
{
    return Get(batch).last_access;
}

bool
TieredMemory::AccessBit(BatchId batch) const
{
    return Get(batch).access_bit;
}

TieredMemory::Batch&
TieredMemory::Get(BatchId batch)
{
    if (batch >= batches_.size()) {
        throw std::out_of_range("no such batch");
    }
    return batches_[batch];
}

const TieredMemory::Batch&
TieredMemory::Get(BatchId batch) const
{
    if (batch >= batches_.size()) {
        throw std::out_of_range("no such batch");
    }
    return batches_[batch];
}

}  // namespace sol::node
