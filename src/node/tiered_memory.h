/**
 * @file
 * Two-tier memory system with page-access-bit scanning.
 *
 * Stands in for the paper's DRAM + slow-tier (persistent/disaggregated)
 * memory managed through hypervisor page-table scans. Memory is divided
 * into 2 MB batches of 512 4 KB pages (the granularity SmartMemory
 * manages). The substrate tracks, per batch:
 *   - which tier it lives in,
 *   - its access bit (set by workload accesses, cleared by scans),
 *   - last-access time (for cold detection), and
 * and globally: local/remote access counts (the SLO signal), scan count,
 * and access-bit resets (each reset flushes the batch's TLB entries — the
 * scanning cost the agent minimizes).
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/time.h"

namespace sol::node {

/** Memory tier identifiers. */
enum class Tier : std::uint8_t {
    kFast = 1,  ///< First-tier DRAM.
    kSlow = 2,  ///< Second-tier (persistent / disaggregated) memory.
};

/** Identifier of a 2 MB batch (512 x 4 KB pages). */
using BatchId = std::size_t;

/** Number of 4 KB pages per managed batch. */
inline constexpr std::size_t kPagesPerBatch = 512;

/** Cumulative access accounting. */
struct MemoryAccessStats {
    std::uint64_t local_accesses = 0;
    std::uint64_t remote_accesses = 0;

    std::uint64_t total() const { return local_accesses + remote_accesses; }

    /** Fraction of accesses served from the slow tier. */
    double RemoteFraction() const;
};

/** Two-tier memory with access-bit scanning. */
class TieredMemory
{
  public:
    /**
     * @param num_batches Managed batches; all start in the fast tier if
     *   they fit, otherwise overflow to the slow tier.
     * @param fast_tier_capacity Max batches resident in the fast tier.
     */
    TieredMemory(std::size_t num_batches, std::size_t fast_tier_capacity);

    // --- Workload side ---------------------------------------------------

    /** Records `count` accesses to a batch at the given time. */
    void RecordAccess(BatchId batch, sim::TimePoint now,
                      std::uint64_t count = 1);

    // --- Scanner side (the agent's data source) ---------------------------

    /**
     * Reads and clears a batch's access bit.
     *
     * Returns true if the bit was set. Clearing a set bit costs one TLB
     * flush per page in the batch; the substrate accounts those flushes.
     *
     * @param error Set to true if the (injectable) scan failure fires;
     *   callers must discard the sample (paper 5.3 ValidateData).
     */
    bool ScanAndReset(BatchId batch, bool* error = nullptr);

    /** Makes the next `count` scans report an error (fault injection). */
    void InjectScanErrors(std::uint64_t count) { scan_errors_ = count; }

    // --- Placement side (the agent's actuator surface) --------------------

    /**
     * Moves a batch to a tier. Throws std::runtime_error if the fast tier
     * is full. Migration of an already-resident batch is a no-op.
     */
    void Migrate(BatchId batch, Tier tier);

    /** True if the fast tier has room for one more batch. */
    bool FastTierHasRoom() const;

    // --- Introspection -----------------------------------------------------

    Tier TierOf(BatchId batch) const;
    sim::TimePoint LastAccess(BatchId batch) const;
    bool AccessBit(BatchId batch) const;

    std::size_t num_batches() const { return batches_.size(); }
    std::size_t fast_tier_capacity() const { return fast_capacity_; }
    std::size_t fast_tier_used() const { return fast_used_; }

    const MemoryAccessStats& stats() const { return stats_; }

    /** Resets only the access accounting (per-epoch windows). */
    void ResetAccessStats() { stats_ = MemoryAccessStats{}; }

    std::uint64_t scans() const { return scans_; }
    std::uint64_t bit_resets() const { return bit_resets_; }
    std::uint64_t tlb_flushes() const { return tlb_flushes_; }
    std::uint64_t migrations() const { return migrations_; }

  private:
    struct Batch {
        Tier tier = Tier::kFast;
        bool access_bit = false;
        sim::TimePoint last_access{0};
        std::uint64_t epoch_accesses = 0;
    };

    Batch& Get(BatchId batch);
    const Batch& Get(BatchId batch) const;

    std::vector<Batch> batches_;
    std::size_t fast_capacity_;
    std::size_t fast_used_ = 0;
    MemoryAccessStats stats_;
    std::uint64_t scans_ = 0;
    std::uint64_t bit_resets_ = 0;
    std::uint64_t tlb_flushes_ = 0;
    std::uint64_t migrations_ = 0;
    std::uint64_t scan_errors_ = 0;
};

}  // namespace sol::node
