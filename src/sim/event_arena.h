/**
 * @file
 * Arena-backed event storage for the discrete-event simulation core.
 *
 * The seed EventQueue paid three per-event heap allocations on its hot
 * path: a std::shared_ptr<bool> cancellation flag, the std::function
 * closure, and std::priority_queue vector churn — and cancelled events
 * stayed buried in the binary heap until their deadline, where they were
 * popped and skipped one by one. At fleet scale (77 agents per node,
 * million-event runs) that allocation traffic and cancelled-event drag
 * dominate the simulation loop.
 *
 * This header provides the replacement storage layer:
 *
 *  - InlineEvent: a move-only callable with a 24-byte inline buffer.
 *    Every closure the runtimes schedule (a captured `this` plus a
 *    shared liveness token) fits inline, so the steady path performs no
 *    closure allocation; larger callables transparently spill to the
 *    heap for correctness.
 *  - EventKey / EventArena: structure-of-arrays event storage addressed
 *    by dense 32-bit indices and recycled through a free list. The
 *    32-byte key records — (time, sequence) plus the intrusive
 *    pairing-heap links — live in their own densely packed array, two
 *    per cache line, so the heap's compare-and-relink traffic runs at
 *    twice the cache density of an array-of-structs layout; the
 *    closure payloads sit in a parallel array and are only touched on
 *    push and fire. Generation counters give O(1) handle invalidation:
 *    freeing a slot bumps its generation, so stale handles can never
 *    touch a recycled event.
 *
 * Cancellation is eager: removing an arbitrary node from the pairing
 * heap is O(log n) amortized, so a cancelled timeout leaves the queue
 * immediately instead of rotting until its deadline. Heap shape depends
 * only on the sequence of operations — never on addresses or wall time —
 * so a fixed seed reproduces a run exactly; and because (time, sequence)
 * is a strict total order, pop order is independent of heap shape
 * entirely.
 */
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/time.h"

namespace sol::sim::detail {

/** Sentinel index: "no node". */
inline constexpr std::uint32_t kNilEvent = 0xffffffffu;

/**
 * Move-only type-erased callable with inline small-buffer storage.
 *
 * Closures up to kInlineBytes that are nothrow-move-constructible live
 * directly in the buffer (no allocation); anything larger is boxed on
 * the heap. Invocation, relocation, and destruction dispatch through a
 * static ops table, so an empty InlineEvent is two words of state.
 */
class alignas(32) InlineEvent
{
  public:
    /**
     * Inline capacity. Sized so the runtimes' hottest closures — a
     * captured `this` plus a `shared_ptr` liveness token (24 bytes) —
     * fit inline while the whole payload record stays 32 bytes (two
     * per cache line in the arena's payload array). Larger callables
     * transparently box on the heap; every steady-path closure in
     * src/ fits.
     */
    static constexpr std::size_t kInlineBytes = 24;

    InlineEvent() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineEvent>>>
    InlineEvent(F&& fn)  // NOLINT(google-explicit-constructor)
    {
        using Fn = std::decay_t<F>;
        static_assert(std::is_invocable_r_v<void, Fn&>,
                      "event callables take no arguments");
        if constexpr (sizeof(Fn) <= kInlineBytes &&
                      alignof(Fn) <= alignof(std::max_align_t) &&
                      std::is_nothrow_move_constructible_v<Fn>) {
            ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(fn));
            ops_ = &kInlineOps<Fn>;
        } else {
            ::new (static_cast<void*>(storage_))
                Fn*(new Fn(std::forward<F>(fn)));
            ops_ = &kHeapOps<Fn>;
        }
    }

    InlineEvent(InlineEvent&& other) noexcept { MoveFrom(other); }

    InlineEvent&
    operator=(InlineEvent&& other) noexcept
    {
        if (this != &other) {
            Reset();
            MoveFrom(other);
        }
        return *this;
    }

    InlineEvent(const InlineEvent&) = delete;
    InlineEvent& operator=(const InlineEvent&) = delete;

    ~InlineEvent() { Reset(); }

    void
    operator()()
    {
        assert(ops_ != nullptr);
        ops_->invoke(storage_);
    }

    /**
     * Runs the callable and destroys it in one dispatch (the arena's
     * fire path — one indirect call instead of invoke-then-destroy).
     * Leaves this event empty.
     */
    void
    InvokeAndDestroy()
    {
        assert(ops_ != nullptr);
        const Ops* ops = ops_;
        ops_ = nullptr;
        ops->invoke_destroy(storage_);
    }

    explicit operator bool() const { return ops_ != nullptr; }

    /** Destroys the held callable (no-op when empty). */
    void
    Reset()
    {
        if (ops_ != nullptr) {
            ops_->destroy(storage_);
            ops_ = nullptr;
        }
    }

  private:
    struct Ops {
        void (*invoke)(void* storage);
        void (*invoke_destroy)(void* storage);  ///< Run, then destroy.
        void (*relocate)(void* dst, void* src);  ///< Move then destroy src.
        void (*destroy)(void* storage);
    };

    template <typename Fn>
    static void
    InlineInvoke(void* storage)
    {
        (*static_cast<Fn*>(storage))();
    }
    template <typename Fn>
    static void
    InlineInvokeDestroy(void* storage)
    {
        Fn* fn = static_cast<Fn*>(storage);
        // RAII so a throwing callback still destroys its captures.
        struct Guard {
            Fn* fn;
            ~Guard() { fn->~Fn(); }
        } guard{fn};
        (*fn)();
    }
    template <typename Fn>
    static void
    InlineRelocate(void* dst, void* src)
    {
        Fn* from = static_cast<Fn*>(src);
        ::new (dst) Fn(std::move(*from));
        from->~Fn();
    }
    template <typename Fn>
    static void
    InlineDestroy(void* storage)
    {
        static_cast<Fn*>(storage)->~Fn();
    }
    template <typename Fn>
    static constexpr Ops kInlineOps = {
        &InlineInvoke<Fn>, &InlineInvokeDestroy<Fn>,
        &InlineRelocate<Fn>, &InlineDestroy<Fn>};

    template <typename Fn>
    static Fn*&
    Boxed(void* storage)
    {
        return *static_cast<Fn**>(storage);
    }
    template <typename Fn>
    static void
    HeapInvoke(void* storage)
    {
        (*Boxed<Fn>(storage))();
    }
    template <typename Fn>
    static void
    HeapInvokeDestroy(void* storage)
    {
        Fn* fn = Boxed<Fn>(storage);
        // RAII so a throwing callback still frees the boxed closure.
        struct Guard {
            Fn* fn;
            ~Guard() { delete fn; }
        } guard{fn};
        (*fn)();
    }
    template <typename Fn>
    static void
    HeapRelocate(void* dst, void* src)
    {
        ::new (dst) Fn*(Boxed<Fn>(src));
    }
    template <typename Fn>
    static void
    HeapDestroy(void* storage)
    {
        delete Boxed<Fn>(storage);
    }
    template <typename Fn>
    static constexpr Ops kHeapOps = {
        &HeapInvoke<Fn>, &HeapInvokeDestroy<Fn>, &HeapRelocate<Fn>,
        &HeapDestroy<Fn>};

    void
    MoveFrom(InlineEvent& other) noexcept
    {
        ops_ = other.ops_;
        if (ops_ != nullptr) {
            ops_->relocate(storage_, other.storage_);
            other.ops_ = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
    const Ops* ops_ = nullptr;
};

/**
 * One scheduled event's heap record: the (time, sequence) ordering key
 * plus intrusive pairing-heap links. Exactly 32 bytes (two records per
 * cache line), packed in their own array so comparisons and link
 * surgery never drag closure payload bytes through the cache.
 *
 * `prev` points at the left sibling, or at the parent when this node is
 * its first child (the node x with node(x.prev).child == x convention),
 * which makes arbitrary removal O(1) link surgery. While the slot sits
 * on the free list, `prev` doubles as the next-free link; `child` and
 * `sibling` are left stale there — Push reinitializes every field, and
 * stale handles are rejected by the generation check before any link
 * is read.
 */
struct alignas(32) EventKey {
    TimePoint when{0};
    std::uint64_t seq = 0;
    std::uint32_t generation = 0;  ///< Bumped on Free; validates handles.
    std::uint32_t child = kNilEvent;
    std::uint32_t sibling = kNilEvent;
    std::uint32_t prev = kNilEvent;
};

static_assert(sizeof(void*) != 8 || sizeof(EventKey) == 32,
              "EventKey must stay half a cache line on 64-bit targets");
static_assert(sizeof(void*) != 8 || sizeof(InlineEvent) == 32,
              "InlineEvent must stay half a cache line on 64-bit "
              "targets");

/**
 * Block-allocated pairing heap of events in structure-of-arrays form.
 *
 * Events are addressed by dense uint32 indices into fixed-size blocks
 * (never reallocated, so references stay stable while the arena grows)
 * and recycled LIFO through a free list. Each block is a pair of
 * parallel arrays — EventKey records and InlineEvent payloads — so the
 * heap walk touches only the dense key array. The heap orders by
 * (when, seq): strict total order, so pop order is identical to the
 * seed binary heap's and same-instant events run in insertion order.
 *
 * The arena is shared-ptr-owned by its EventQueue so that EventHandles
 * may outlive the queue: a Cancel() through a stale handle lands on a
 * live arena and is rejected by the generation check.
 */
class EventArena
{
  public:
    /** Counters over the arena's whole lifetime. */
    struct Stats {
        std::uint64_t scheduled = 0;  ///< Events admitted by Push.
        std::uint64_t cancelled = 0;  ///< Events removed before firing.
        std::size_t peak_pending = 0;
        std::size_t capacity = 0;     ///< Event slots allocated.
        std::size_t blocks = 0;       ///< Fixed-size blocks allocated.
    };

    /**
     * Key of the event surfaced by PopEarliest. The payload stays in
     * the arena (slot detached from the heap but still allocated) and
     * is run in place by InvokePopped; the cached pointer is valid
     * until then because block storage never moves.
     */
    struct Popped {
        TimePoint when{0};
        std::uint64_t seq = 0;
        std::uint32_t index = kNilEvent;
        EventKey* key = nullptr;
        InlineEvent* fn = nullptr;
    };

    EventArena() = default;
    EventArena(const EventArena&) = delete;
    EventArena& operator=(const EventArena&) = delete;

    std::size_t pending() const { return live_; }
    bool empty() const { return root_ == kNilEvent; }

    /** Time of the earliest pending event; kTimeInfinity when empty. */
    TimePoint
    EarliestTime() const
    {
        return root_ == kNilEvent ? kTimeInfinity : key(root_).when;
    }

    Stats
    stats() const
    {
        Stats s = stats_;
        s.capacity = blocks_.size() * kBlockSize;
        s.blocks = blocks_.size();
        return s;
    }

    /** Schedules an event; returns its slot index (see GenerationOf). */
    std::uint32_t
    Push(TimePoint when, std::uint64_t seq, InlineEvent fn)
    {
        const std::uint32_t index = Allocate();
        EventKey& k = key(index);
        k.when = when;
        k.seq = seq;
        k.child = kNilEvent;
        k.sibling = kNilEvent;
        k.prev = kNilEvent;
        payload(index) = std::move(fn);
        root_ = root_ == kNilEvent ? index : Meld(root_, index);
        ++live_;
        ++stats_.scheduled;
        if (live_ > stats_.peak_pending) {
            stats_.peak_pending = live_;
        }
        return index;
    }

    /**
     * Pops the earliest event if it fires at or before `horizon`,
     * unlinking it from the heap but leaving the slot allocated so the
     * closure can run in place. The caller must follow up with
     * InvokePopped(*out), which recycles the slot.
     */
    bool
    PopEarliest(TimePoint horizon, Popped* out)
    {
        if (root_ == kNilEvent) {
            return false;
        }
        const std::uint32_t index = root_;
        EventKey& k = key(index);
        if (k.when > horizon) {
            return false;
        }
        out->when = k.when;
        out->seq = k.seq;
        out->index = index;
        out->key = &k;
        out->fn = &payload(index);
        root_ = MergePairs(k.child);
        k.prev = kNilEvent;  // Detached: stale Cancels see "not in heap".
        // The event leaves the pending count here, not when its slot is
        // recycled: a firing callback that re-arms itself must see the
        // same pending() the pre-SoA queue showed it, or a saturated
        // pending limit would shed the re-arm and stall the loop.
        --live_;
        return true;
    }

    /**
     * Runs a popped event's closure directly from its (detached, still
     * allocated) slot — one fused invoke+destroy dispatch, no payload
     * relocation — then recycles the slot. Block storage is address-
     * stable, so the closure may freely schedule new events (growing
     * the arena) while it runs; a Cancel() racing the firing event
     * through a stale handle is rejected because the slot is no longer
     * root and has no parent link.
     */
    void
    InvokePopped(const Popped& popped)
    {
        // RAII slot recycle: PopEarliest already took the event out of
        // the pending count, so even a throwing callback must not lose
        // the slot (or skip the generation bump that invalidates
        // handles). Runs after the payload's own invoke+destroy.
        struct Recycle {
            EventArena* arena;
            const Popped* popped;
            ~Recycle()
            {
                EventKey& k = *popped->key;
                ++k.generation;
                k.prev = arena->free_head_;
                arena->free_head_ = popped->index;
            }
        } recycle{this, &popped};
        popped.fn->InvokeAndDestroy();
    }

    /**
     * Eagerly removes a pending event (cancellation). O(log n)
     * amortized; a no-op returning false when the handle is stale (the
     * event already fired, was cancelled, or the slot was recycled).
     */
    bool
    Remove(std::uint32_t index, std::uint32_t generation)
    {
        if (!IsLive(index, generation)) {
            return false;
        }
        EventKey& k = key(index);
        if (index == root_) {
            root_ = MergePairs(k.child);
        } else {
            Detach(index);
            const std::uint32_t sub = MergePairs(k.child);
            if (sub != kNilEvent) {
                root_ = Meld(root_, sub);
            }
        }
        ++stats_.cancelled;
        Free(index);
        return true;
    }

    /** True while the (index, generation) pair names a pending event. */
    bool
    IsLive(std::uint32_t index, std::uint32_t generation) const
    {
        return index < blocks_.size() * kBlockSize &&
               key(index).generation == generation && live_ > 0 &&
               InHeap(index);
    }

    std::uint32_t
    GenerationOf(std::uint32_t index) const
    {
        return key(index).generation;
    }

  private:
    static constexpr std::size_t kBlockShift = 7;
    static constexpr std::size_t kBlockSize = std::size_t{1} << kBlockShift;

    /** One block: parallel key/payload arrays of kBlockSize slots. */
    struct Block {
        std::unique_ptr<EventKey[]> keys;
        std::unique_ptr<InlineEvent[]> fns;
    };

    EventKey&
    key(std::uint32_t index)
    {
        return blocks_[index >> kBlockShift]
            .keys[index & (kBlockSize - 1)];
    }
    const EventKey&
    key(std::uint32_t index) const
    {
        return blocks_[index >> kBlockShift]
            .keys[index & (kBlockSize - 1)];
    }
    InlineEvent&
    payload(std::uint32_t index)
    {
        return blocks_[index >> kBlockShift]
            .fns[index & (kBlockSize - 1)];
    }

    /**
     * A generation match already implies the slot is allocated (Free
     * bumps the generation before the slot can be observed again), so
     * this is a structural sanity check only: the root, or any node
     * with a parent/sibling link, is in the heap.
     */
    bool
    InHeap(std::uint32_t index) const
    {
        return index == root_ || key(index).prev != kNilEvent;
    }

    /** Branch-free (when, seq) comparison: merge chains carry near-
     *  random keys, so a short-circuit compare mispredicts constantly
     *  in the hottest loop (MergePairs ~75% of churn CPU). */
    bool
    Less(std::uint32_t a, std::uint32_t b) const
    {
        const EventKey& ka = key(a);
        const EventKey& kb = key(b);
        return static_cast<int>(ka.when < kb.when) |
               (static_cast<int>(ka.when == kb.when) &
                static_cast<int>(ka.seq < kb.seq));
    }

    /** Hints the prefetcher at a key about to be compared/linked. */
    void
    Prefetch(std::uint32_t index) const
    {
#if defined(__GNUC__) || defined(__clang__)
        __builtin_prefetch(&key(index));
#else
        (void)index;
#endif
    }

    /** Melds two detached trees; the loser becomes the winner's first
     *  child. Both inputs must be valid roots (prev/sibling nil). The
     *  winner/loser selection compiles to conditional moves — the
     *  outcome is a coin flip on merge chains, so a branch here would
     *  eat a misprediction per meld. */
    std::uint32_t
    Meld(std::uint32_t a, std::uint32_t b)
    {
        const bool b_wins = Less(b, a);
        const std::uint32_t w = b_wins ? b : a;
        const std::uint32_t l = b_wins ? a : b;
        EventKey& winner = key(w);
        EventKey& loser = key(l);
        loser.sibling = winner.child;
        if (winner.child != kNilEvent) {
            key(winner.child).prev = l;
        }
        loser.prev = w;
        winner.child = l;
        return w;
    }

    /** Unlinks a non-root node from its parent/sibling chain. */
    void
    Detach(std::uint32_t index)
    {
        EventKey& k = key(index);
        EventKey& p = key(k.prev);
        if (p.child == index) {
            p.child = k.sibling;
        } else {
            p.sibling = k.sibling;
        }
        if (k.sibling != kNilEvent) {
            key(k.sibling).prev = k.prev;
        }
        k.sibling = kNilEvent;
        k.prev = kNilEvent;
    }

    /**
     * Two-pass pairing merge of a first-child chain, in place.
     *
     * The textbook second pass walks the paired roots right-to-left,
     * which would mean buffering them in a scratch vector. This
     * version threads the pair winners into a reversed intrusive list
     * through their (root-unused) `sibling` links instead — prepending
     * during the pairing pass reverses the chain for free — so the
     * whole merge runs on the key array's own cache lines with zero
     * side allocations or vector traffic. Heap *shape* may differ from
     * the scratch-vector version's, but pop order cannot: (when, seq)
     * is a strict total order, so the minimum is unique and traces are
     * unchanged.
     */
    std::uint32_t
    MergePairs(std::uint32_t first)
    {
        if (first == kNilEvent) {
            return kNilEvent;
        }
        // Fast paths: in steady churn most popped roots have 0-2
        // children, where the general loop's bookkeeping dominates.
        const std::uint32_t second = key(first).sibling;
        if (second == kNilEvent) {
            key(first).prev = kNilEvent;
            return first;
        }
        if (key(second).sibling == kNilEvent) {
            key(first).sibling = kNilEvent;
            key(first).prev = kNilEvent;
            key(second).prev = kNilEvent;
            return Meld(first, second);
        }

        // Pass 1: meld adjacent pairs left-to-right, prepending each
        // winner onto `paired` (reversed list threaded via `sibling`).
        // We also tried a full multipass variant (repeat this pass
        // until one root remains) for its independent-meld ILP; it
        // measured ~35% slower on steady churn — the heap quality loss
        // outweighs the latency overlap — so two-pass it stays.
        std::uint32_t paired = kNilEvent;
        std::uint32_t cur = first;
        while (cur != kNilEvent) {
            const std::uint32_t a = cur;
            const std::uint32_t b = key(a).sibling;
            if (b == kNilEvent) {
                key(a).prev = kNilEvent;
                key(a).sibling = paired;
                paired = a;
                break;
            }
            const std::uint32_t next = key(b).sibling;
            if (next != kNilEvent) {
                Prefetch(next);
            }
            key(a).sibling = kNilEvent;
            key(a).prev = kNilEvent;
            key(b).sibling = kNilEvent;
            key(b).prev = kNilEvent;
            const std::uint32_t winner = Meld(a, b);
            key(winner).sibling = paired;
            paired = winner;
            cur = next;
        }

        // Pass 2: accumulate along the reversed list — i.e. right-to-
        // left over the original chain, preserving the amortized bound.
        std::uint32_t acc = paired;
        std::uint32_t rest = key(acc).sibling;
        key(acc).sibling = kNilEvent;
        while (rest != kNilEvent) {
            const std::uint32_t n = rest;
            rest = key(n).sibling;
            if (rest != kNilEvent) {
                Prefetch(rest);
            }
            key(n).sibling = kNilEvent;
            acc = Meld(n, acc);
        }
        return acc;
    }

    std::uint32_t
    Allocate()
    {
        if (free_head_ == kNilEvent) {
            Grow();
        }
        const std::uint32_t index = free_head_;
        free_head_ = key(index).prev;
        key(index).prev = kNilEvent;
        return index;
    }

    /** Recycles a slot: bumps its generation (invalidating every handle
     *  to the fired/cancelled event), destroys the payload, and pushes
     *  the slot on the free list. */
    void
    Free(std::uint32_t index)
    {
        EventKey& k = key(index);
        ++k.generation;
        payload(index).Reset();
        k.prev = free_head_;
        free_head_ = index;
        --live_;
    }

    void
    Grow()
    {
        const std::size_t block = blocks_.size();
        assert((block + 1) * kBlockSize < kNilEvent);
        blocks_.push_back(Block{
            std::make_unique<EventKey[]>(kBlockSize),
            std::make_unique<InlineEvent[]>(kBlockSize)});
        // Threaded last-first so the lowest new index pops first.
        for (std::size_t i = kBlockSize; i-- > 0;) {
            const auto index =
                static_cast<std::uint32_t>((block << kBlockShift) | i);
            key(index).prev = free_head_;
            free_head_ = index;
        }
    }

    std::vector<Block> blocks_;
    std::uint32_t free_head_ = kNilEvent;
    std::uint32_t root_ = kNilEvent;
    std::size_t live_ = 0;
    Stats stats_;
};

}  // namespace sol::sim::detail
