/**
 * @file
 * Arena-backed event storage for the discrete-event simulation core.
 *
 * The seed EventQueue paid three per-event heap allocations on its hot
 * path: a std::shared_ptr<bool> cancellation flag, the std::function
 * closure, and std::priority_queue vector churn — and cancelled events
 * stayed buried in the binary heap until their deadline, where they were
 * popped and skipped one by one. At fleet scale (77 agents per node,
 * million-event runs) that allocation traffic and cancelled-event drag
 * dominate the simulation loop.
 *
 * This header provides the replacement storage layer:
 *
 *  - InlineEvent: a move-only callable with a 48-byte inline buffer.
 *    Every closure the runtimes schedule (a captured `this` plus a
 *    shared liveness token) fits inline, so the steady path performs no
 *    closure allocation; larger callables transparently spill to the
 *    heap for correctness.
 *  - EventNode / EventArena: block-allocated event nodes addressed by
 *    dense 32-bit indices, recycled through a free list, linked into an
 *    intrusive pairing heap ordered by (time, sequence). Generation
 *    counters give O(1) handle invalidation: freeing a node bumps its
 *    generation, so stale handles can never touch a recycled slot.
 *
 * Cancellation is eager: removing an arbitrary node from the pairing
 *
 * heap is O(log n) amortized, so a cancelled timeout leaves the queue
 * immediately instead of rotting until its deadline. Heap shape depends
 * only on the sequence of operations — never on addresses or wall time —
 * so a fixed seed reproduces a run exactly.
 */
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/time.h"

namespace sol::sim::detail {

/** Sentinel index: "no node". */
inline constexpr std::uint32_t kNilEvent = 0xffffffffu;

/**
 * Move-only type-erased callable with inline small-buffer storage.
 *
 * Closures up to kInlineBytes that are nothrow-move-constructible live
 * directly in the buffer (no allocation); anything larger is boxed on
 * the heap. Invocation, relocation, and destruction dispatch through a
 * static ops table, so an empty InlineEvent is two words of state.
 */
class InlineEvent
{
  public:
    /** Inline capacity; sized for the runtimes' `[this, alive]`-style
     *  closures with headroom for a couple more captured words. */
    static constexpr std::size_t kInlineBytes = 48;

    InlineEvent() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineEvent>>>
    InlineEvent(F&& fn)  // NOLINT(google-explicit-constructor)
    {
        using Fn = std::decay_t<F>;
        static_assert(std::is_invocable_r_v<void, Fn&>,
                      "event callables take no arguments");
        if constexpr (sizeof(Fn) <= kInlineBytes &&
                      alignof(Fn) <= alignof(std::max_align_t) &&
                      std::is_nothrow_move_constructible_v<Fn>) {
            ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(fn));
            ops_ = &kInlineOps<Fn>;
        } else {
            ::new (static_cast<void*>(storage_))
                Fn*(new Fn(std::forward<F>(fn)));
            ops_ = &kHeapOps<Fn>;
        }
    }

    InlineEvent(InlineEvent&& other) noexcept { MoveFrom(other); }

    InlineEvent&
    operator=(InlineEvent&& other) noexcept
    {
        if (this != &other) {
            Reset();
            MoveFrom(other);
        }
        return *this;
    }

    InlineEvent(const InlineEvent&) = delete;
    InlineEvent& operator=(const InlineEvent&) = delete;

    ~InlineEvent() { Reset(); }

    void
    operator()()
    {
        assert(ops_ != nullptr);
        ops_->invoke(storage_);
    }

    explicit operator bool() const { return ops_ != nullptr; }

    /** Destroys the held callable (no-op when empty). */
    void
    Reset()
    {
        if (ops_ != nullptr) {
            ops_->destroy(storage_);
            ops_ = nullptr;
        }
    }

  private:
    struct Ops {
        void (*invoke)(void* storage);
        void (*relocate)(void* dst, void* src);  ///< Move then destroy src.
        void (*destroy)(void* storage);
    };

    template <typename Fn>
    static void
    InlineInvoke(void* storage)
    {
        (*static_cast<Fn*>(storage))();
    }
    template <typename Fn>
    static void
    InlineRelocate(void* dst, void* src)
    {
        Fn* from = static_cast<Fn*>(src);
        ::new (dst) Fn(std::move(*from));
        from->~Fn();
    }
    template <typename Fn>
    static void
    InlineDestroy(void* storage)
    {
        static_cast<Fn*>(storage)->~Fn();
    }
    template <typename Fn>
    static constexpr Ops kInlineOps = {&InlineInvoke<Fn>,
                                       &InlineRelocate<Fn>,
                                       &InlineDestroy<Fn>};

    template <typename Fn>
    static Fn*&
    Boxed(void* storage)
    {
        return *static_cast<Fn**>(storage);
    }
    template <typename Fn>
    static void
    HeapInvoke(void* storage)
    {
        (*Boxed<Fn>(storage))();
    }
    template <typename Fn>
    static void
    HeapRelocate(void* dst, void* src)
    {
        ::new (dst) Fn*(Boxed<Fn>(src));
    }
    template <typename Fn>
    static void
    HeapDestroy(void* storage)
    {
        delete Boxed<Fn>(storage);
    }
    template <typename Fn>
    static constexpr Ops kHeapOps = {&HeapInvoke<Fn>, &HeapRelocate<Fn>,
                                     &HeapDestroy<Fn>};

    void
    MoveFrom(InlineEvent& other) noexcept
    {
        ops_ = other.ops_;
        if (ops_ != nullptr) {
            ops_->relocate(storage_, other.storage_);
            other.ops_ = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
    const Ops* ops_ = nullptr;
};

/**
 * One scheduled event: payload plus intrusive pairing-heap links.
 *
 * `prev` points at the left sibling, or at the parent when this node is
 * its first child (the node x with node(x.prev).child == x convention),
 * which makes arbitrary removal O(1) link surgery. While the node sits
 * on the free list, `prev` doubles as the next-free link.
 */
struct EventNode {
    TimePoint when{0};
    std::uint64_t seq = 0;
    InlineEvent fn;
    std::uint32_t generation = 0;  ///< Bumped on Free; validates handles.
    std::uint32_t child = kNilEvent;
    std::uint32_t sibling = kNilEvent;
    std::uint32_t prev = kNilEvent;
};

/**
 * Block-allocated pairing heap of EventNodes.
 *
 * Nodes are addressed by dense uint32 indices into fixed-size blocks
 * (never reallocated, so references stay stable while the arena grows)
 * and recycled LIFO through a free list. The heap orders by
 * (when, seq): strict total order, so pop order is identical to the
 * seed binary heap's and same-instant events run in insertion order.
 *
 * The arena is shared-ptr-owned by its EventQueue so that EventHandles
 * may outlive the queue: a Cancel() through a stale handle lands on a
 * live arena and is rejected by the generation check.
 */
class EventArena
{
  public:
    /** Counters over the arena's whole lifetime. */
    struct Stats {
        std::uint64_t scheduled = 0;  ///< Events admitted by Push.
        std::uint64_t cancelled = 0;  ///< Events removed before firing.
        std::size_t peak_pending = 0;
        std::size_t capacity = 0;     ///< Node slots allocated.
        std::size_t blocks = 0;       ///< Fixed-size blocks allocated.
    };

    /** Payload handed back by PopEarliest. */
    struct Popped {
        TimePoint when{0};
        std::uint64_t seq = 0;
        InlineEvent fn;
    };

    EventArena() = default;
    EventArena(const EventArena&) = delete;
    EventArena& operator=(const EventArena&) = delete;

    std::size_t pending() const { return live_; }
    bool empty() const { return root_ == kNilEvent; }

    /** Time of the earliest pending event; kTimeInfinity when empty. */
    TimePoint
    EarliestTime() const
    {
        return root_ == kNilEvent ? kTimeInfinity : node(root_).when;
    }

    Stats
    stats() const
    {
        Stats s = stats_;
        s.capacity = blocks_.size() * kBlockSize;
        s.blocks = blocks_.size();
        return s;
    }

    /** Schedules an event; returns its node index (see GenerationOf). */
    std::uint32_t
    Push(TimePoint when, std::uint64_t seq, InlineEvent fn)
    {
        const std::uint32_t index = Allocate();
        EventNode& n = node(index);
        n.when = when;
        n.seq = seq;
        n.fn = std::move(fn);
        n.child = kNilEvent;
        n.sibling = kNilEvent;
        n.prev = kNilEvent;
        root_ = root_ == kNilEvent ? index : Meld(root_, index);
        ++live_;
        ++stats_.scheduled;
        if (live_ > stats_.peak_pending) {
            stats_.peak_pending = live_;
        }
        return index;
    }

    /**
     * Pops the earliest event if it fires at or before `horizon`.
     * The node is recycled before `out->fn` runs, so the callback may
     * freely schedule (and reuse the slot of) new events.
     */
    bool
    PopEarliest(TimePoint horizon, Popped* out)
    {
        if (root_ == kNilEvent) {
            return false;
        }
        const std::uint32_t index = root_;
        EventNode& m = node(index);
        if (m.when > horizon) {
            return false;
        }
        out->when = m.when;
        out->seq = m.seq;
        out->fn = std::move(m.fn);
        root_ = MergePairs(m.child);
        m.child = kNilEvent;
        Free(index);
        return true;
    }

    /**
     * Eagerly removes a pending event (cancellation). O(log n)
     * amortized; a no-op returning false when the handle is stale (the
     * event already fired, was cancelled, or the slot was recycled).
     */
    bool
    Remove(std::uint32_t index, std::uint32_t generation)
    {
        if (!IsLive(index, generation)) {
            return false;
        }
        EventNode& n = node(index);
        if (index == root_) {
            root_ = MergePairs(n.child);
        } else {
            Detach(index);
            const std::uint32_t sub = MergePairs(n.child);
            if (sub != kNilEvent) {
                root_ = Meld(root_, sub);
            }
        }
        n.child = kNilEvent;
        ++stats_.cancelled;
        Free(index);
        return true;
    }

    /** True while the (index, generation) pair names a pending event. */
    bool
    IsLive(std::uint32_t index, std::uint32_t generation) const
    {
        return index < blocks_.size() * kBlockSize &&
               node(index).generation == generation && live_ > 0 &&
               InHeap(index);
    }

    std::uint32_t
    GenerationOf(std::uint32_t index) const
    {
        return node(index).generation;
    }

  private:
    static constexpr std::size_t kBlockShift = 7;
    static constexpr std::size_t kBlockSize = std::size_t{1} << kBlockShift;

    EventNode&
    node(std::uint32_t index)
    {
        return blocks_[index >> kBlockShift][index & (kBlockSize - 1)];
    }
    const EventNode&
    node(std::uint32_t index) const
    {
        return blocks_[index >> kBlockShift][index & (kBlockSize - 1)];
    }

    /**
     * A generation match already implies the node is allocated (Free
     * bumps the generation before the slot can be observed again), so
     * this is a structural sanity check only: the root, or any node
     * with a parent/sibling link, is in the heap.
     */
    bool
    InHeap(std::uint32_t index) const
    {
        return index == root_ || node(index).prev != kNilEvent;
    }

    bool
    Less(std::uint32_t a, std::uint32_t b) const
    {
        const EventNode& na = node(a);
        const EventNode& nb = node(b);
        if (na.when != nb.when) {
            return na.when < nb.when;
        }
        return na.seq < nb.seq;
    }

    /** Melds two detached trees; the loser becomes the winner's first
     *  child. Both inputs must be valid roots (prev/sibling nil). */
    std::uint32_t
    Meld(std::uint32_t a, std::uint32_t b)
    {
        if (Less(b, a)) {
            std::swap(a, b);
        }
        EventNode& winner = node(a);
        EventNode& loser = node(b);
        loser.sibling = winner.child;
        if (winner.child != kNilEvent) {
            node(winner.child).prev = b;
        }
        loser.prev = a;
        winner.child = b;
        return a;
    }

    /** Unlinks a non-root node from its parent/sibling chain. */
    void
    Detach(std::uint32_t index)
    {
        EventNode& n = node(index);
        EventNode& p = node(n.prev);
        if (p.child == index) {
            p.child = n.sibling;
        } else {
            p.sibling = n.sibling;
        }
        if (n.sibling != kNilEvent) {
            node(n.sibling).prev = n.prev;
        }
        n.sibling = kNilEvent;
        n.prev = kNilEvent;
    }

    /** Two-pass pairing merge of a first-child chain. */
    std::uint32_t
    MergePairs(std::uint32_t first)
    {
        if (first == kNilEvent) {
            return kNilEvent;
        }
        merge_scratch_.clear();
        std::uint32_t cur = first;
        while (cur != kNilEvent) {
            const std::uint32_t a = cur;
            const std::uint32_t b = node(a).sibling;
            const std::uint32_t next =
                b == kNilEvent ? kNilEvent : node(b).sibling;
            node(a).sibling = kNilEvent;
            node(a).prev = kNilEvent;
            if (b != kNilEvent) {
                node(b).sibling = kNilEvent;
                node(b).prev = kNilEvent;
                merge_scratch_.push_back(Meld(a, b));
            } else {
                merge_scratch_.push_back(a);
            }
            cur = next;
        }
        std::uint32_t acc = merge_scratch_.back();
        for (std::size_t i = merge_scratch_.size() - 1; i-- > 0;) {
            acc = Meld(merge_scratch_[i], acc);
        }
        return acc;
    }

    std::uint32_t
    Allocate()
    {
        if (free_head_ == kNilEvent) {
            Grow();
        }
        const std::uint32_t index = free_head_;
        free_head_ = node(index).prev;
        node(index).prev = kNilEvent;
        return index;
    }

    /** Recycles a node: bumps its generation (invalidating every handle
     *  to the fired/cancelled event) and pushes it on the free list. */
    void
    Free(std::uint32_t index)
    {
        EventNode& n = node(index);
        ++n.generation;
        n.fn.Reset();
        n.child = kNilEvent;
        n.sibling = kNilEvent;
        n.prev = free_head_;
        free_head_ = index;
        --live_;
    }

    void
    Grow()
    {
        const std::size_t block = blocks_.size();
        assert((block + 1) * kBlockSize < kNilEvent);
        blocks_.push_back(std::make_unique<EventNode[]>(kBlockSize));
        // Threaded last-first so the lowest new index pops first.
        for (std::size_t i = kBlockSize; i-- > 0;) {
            const auto index =
                static_cast<std::uint32_t>((block << kBlockShift) | i);
            node(index).prev = free_head_;
            free_head_ = index;
        }
    }

    std::vector<std::unique_ptr<EventNode[]>> blocks_;
    std::uint32_t free_head_ = kNilEvent;
    std::uint32_t root_ = kNilEvent;
    std::size_t live_ = 0;
    Stats stats_;
    std::vector<std::uint32_t> merge_scratch_;
};

}  // namespace sol::sim::detail
