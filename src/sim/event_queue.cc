#include "sim/event_queue.h"

#include <cassert>
#include <utility>

namespace sol::sim {

void
EventHandle::Cancel()
{
    if (cancelled_) {
        *cancelled_ = true;
    }
}

bool
EventHandle::cancelled() const
{
    return cancelled_ && *cancelled_;
}

EventHandle
EventQueue::ScheduleAt(TimePoint when, std::function<void()> fn)
{
    if (when < now_) {
        when = now_;
    }
    auto flag = std::make_shared<bool>(false);
    heap_.push(Entry{when, next_seq_++, std::move(fn), flag});
    return EventHandle(flag);
}

EventHandle
EventQueue::ScheduleAfter(Duration delay, std::function<void()> fn)
{
    if (delay < Duration::zero()) {
        delay = Duration::zero();
    }
    return ScheduleAt(now_ + delay, std::move(fn));
}

void
EventQueue::RunUntil(TimePoint horizon)
{
    while (!heap_.empty() && heap_.top().when <= horizon) {
        Entry entry = heap_.top();
        heap_.pop();
        now_ = entry.when;
        if (!*entry.cancelled) {
            ++executed_;
            entry.fn();
        }
    }
    if (horizon > now_ && horizon != kTimeInfinity) {
        now_ = horizon;
    }
}

void
EventQueue::RunUntilIdle(std::uint64_t max_events)
{
    std::uint64_t budget = max_events;
    while (!heap_.empty() && budget-- > 0) {
        Step();
    }
}

bool
EventQueue::Step()
{
    while (!heap_.empty()) {
        Entry entry = heap_.top();
        heap_.pop();
        now_ = entry.when;
        if (*entry.cancelled) {
            continue;
        }
        ++executed_;
        entry.fn();
        return true;
    }
    return false;
}

PeriodicTask::PeriodicTask(EventQueue& queue, Duration period,
                           std::function<void()> fn)
    : queue_(queue),
      period_(period),
      fn_(std::move(fn)),
      alive_(std::make_shared<bool>(true))
{
    assert(period_ > Duration::zero());
    Arm();
}

PeriodicTask::~PeriodicTask()
{
    Stop();
}

void
PeriodicTask::Stop()
{
    *alive_ = false;
}

void
PeriodicTask::Arm()
{
    std::shared_ptr<bool> alive = alive_;
    queue_.ScheduleAfter(period_, [this, alive] {
        if (!*alive) {
            return;
        }
        fn_();
        if (*alive) {
            Arm();
        }
    });
}

}  // namespace sol::sim
