#include "sim/event_queue.h"

#include <cassert>
#include <utility>

namespace sol::sim {

void
EventHandle::Cancel()
{
    if (arena_ && arena_->Remove(index_, generation_)) {
        cancel_took_effect_ = true;
    }
}

bool
EventHandle::pending() const
{
    return arena_ && arena_->IsLive(index_, generation_);
}

EventHandle
EventQueue::ScheduleEvent(TimePoint when, detail::InlineEvent fn)
{
    if (when < now_) {
        when = now_;
    }
    if (pending_limit_ != 0 && arena_->pending() >= pending_limit_) {
        ++dropped_;
        return EventHandle::Dropped();
    }
    const std::uint32_t index =
        arena_->Push(when, next_seq_++, std::move(fn));
    return EventHandle(arena_, index, arena_->GenerationOf(index));
}

void
EventQueue::RunUntil(TimePoint horizon)
{
    // Hoist the shared_ptr deref out of the hot loop; the arena cannot
    // be released while its owning queue is running.
    detail::EventArena* arena = arena_.get();
    detail::EventArena::Popped event;
    while (arena->PopEarliest(horizon, &event)) {
        now_ = event.when;
        ++executed_;
        MixTrace(event.when, event.seq);
        arena->InvokePopped(event);
    }
    if (horizon > now_ && horizon != kTimeInfinity) {
        now_ = horizon;
    }
}

void
EventQueue::RunUntilIdle(std::uint64_t max_events)
{
    std::uint64_t budget = max_events;
    while (budget-- > 0 && Step()) {
    }
}

bool
EventQueue::Step()
{
    detail::EventArena::Popped event;
    if (!arena_->PopEarliest(kTimeInfinity, &event)) {
        return false;
    }
    now_ = event.when;
    ++executed_;
    MixTrace(event.when, event.seq);
    arena_->InvokePopped(event);
    return true;
}

EventQueueStats
EventQueue::stats() const
{
    const detail::EventArena::Stats arena = arena_->stats();
    EventQueueStats stats;
    stats.scheduled = arena.scheduled;
    stats.executed = executed_;
    stats.cancelled = arena.cancelled;
    stats.dropped = dropped_;
    stats.pending = arena_->pending();
    stats.peak_pending = arena.peak_pending;
    stats.arena_capacity = arena.capacity;
    stats.arena_blocks = arena.blocks;
    return stats;
}

PeriodicTask::PeriodicTask(EventQueue& queue, Duration period,
                           std::function<void()> fn)
    : queue_(queue),
      period_(period),
      fn_(std::move(fn)),
      alive_(std::make_shared<bool>(true))
{
    assert(period_ > Duration::zero());
    Arm();
}

PeriodicTask::~PeriodicTask()
{
    Stop();
}

void
PeriodicTask::Stop()
{
    *alive_ = false;
    next_.Cancel();
}

void
PeriodicTask::Arm()
{
    std::shared_ptr<bool> alive = alive_;
    next_ = queue_.ScheduleAfter(period_, [this, alive] {
        if (!*alive) {
            return;
        }
        fn_();
        if (*alive) {
            Arm();
        }
    });
}

}  // namespace sol::sim
