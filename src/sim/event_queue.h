/**
 * @file
 * Discrete-event simulation core.
 *
 * The EventQueue is the heart of the deterministic experiment harness: the
 * node, the workloads, and the SOL SimRuntime all schedule callbacks on it
 * and observe a single shared virtual clock. Events that fire at the same
 * instant execute in insertion order, so a fixed seed reproduces a run
 * exactly.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/time.h"

namespace sol::sim {

/**
 * Handle that allows a scheduled event to be cancelled. Cancellation is
 * lazy: the event stays in the queue but becomes a no-op when it fires.
 */
class EventHandle
{
  public:
    EventHandle() = default;

    /** Prevents the event from running when it is popped. */
    void Cancel();

    /** True if Cancel() was called before the event fired. */
    bool cancelled() const;

  private:
    friend class EventQueue;
    explicit EventHandle(std::shared_ptr<bool> flag)
        : cancelled_(std::move(flag))
    {}

    std::shared_ptr<bool> cancelled_;
};

/** Virtual-time event queue with deterministic same-instant ordering. */
class EventQueue : public Clock
{
  public:
    EventQueue() = default;

    /** Current virtual time. */
    TimePoint Now() const override { return now_; }

    /** Schedules fn at an absolute virtual time (>= Now()). */
    EventHandle ScheduleAt(TimePoint when, std::function<void()> fn);

    /** Schedules fn after a relative delay (clamped to >= 0). */
    EventHandle ScheduleAfter(Duration delay, std::function<void()> fn);

    /** Runs events until the queue is empty or the horizon is reached.
     *
     * The virtual clock is advanced to the horizon even if the last event
     * fires earlier, so periodic drivers stay in lockstep across calls.
     */
    void RunUntil(TimePoint horizon);

    /** Runs events for a relative span of virtual time. */
    void RunFor(Duration span) { RunUntil(now_ + span); }

    /** Runs until the queue drains entirely (caps at max_events). */
    void RunUntilIdle(std::uint64_t max_events = 100'000'000);

    /** Executes the single earliest pending event, if any. */
    bool Step();

    /** Number of events still pending (including cancelled ones). */
    std::size_t pending() const { return heap_.size(); }

    /** Total events executed so far (cancelled events excluded). */
    std::uint64_t executed() const { return executed_; }

  private:
    struct Entry {
        TimePoint when;
        std::uint64_t seq;
        std::function<void()> fn;
        std::shared_ptr<bool> cancelled;
    };

    struct Later {
        bool
        operator()(const Entry& a, const Entry& b) const
        {
            if (a.when != b.when) {
                return a.when > b.when;
            }
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    TimePoint now_{0};
    std::uint64_t next_seq_ = 0;
    std::uint64_t executed_ = 0;
};

/**
 * Convenience wrapper that re-schedules a callback at a fixed period until
 * stopped. Used by node drivers and telemetry samplers.
 */
class PeriodicTask
{
  public:
    /**
     * Starts ticking. The first tick fires at start + period.
     *
     * @param queue Event queue that owns time.
     * @param period Interval between ticks; must be positive.
     * @param fn Callback invoked each tick.
     */
    PeriodicTask(EventQueue& queue, Duration period,
                 std::function<void()> fn);
    ~PeriodicTask();

    PeriodicTask(const PeriodicTask&) = delete;
    PeriodicTask& operator=(const PeriodicTask&) = delete;

    /** Stops future ticks; safe to call multiple times. */
    void Stop();

  private:
    void Arm();

    EventQueue& queue_;
    Duration period_;
    std::function<void()> fn_;
    std::shared_ptr<bool> alive_;
};

}  // namespace sol::sim
