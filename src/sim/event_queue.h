/**
 * @file
 * Discrete-event simulation core.
 *
 * The EventQueue is the heart of the deterministic experiment harness: the
 * node, the workloads, and the SOL SimRuntime all schedule callbacks on it
 * and observe a single shared virtual clock. Events that fire at the same
 * instant execute in insertion order, so a fixed seed reproduces a run
 * exactly.
 *
 * Internals (see sim/event_arena.h): events live in an arena-allocated
 * pairing heap addressed by 32-bit indices, keys and closure payloads
 * in separate parallel arrays. The steady schedule/fire path performs
 * no heap allocation (closures up to 24 bytes are stored inline in the
 * recycled slot and fired in place), cancellation eagerly unlinks the
 * event in O(log n) amortized with O(1) generation-token invalidation
 * of stale handles, and pop order is the same strict (time, sequence)
 * total order the seed binary-heap implementation used — same seeds
 * produce byte-identical traces, which trace_hash() fingerprints.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>

#include "sim/event_arena.h"
#include "sim/time.h"

namespace sol::sim {

/**
 * Handle that allows a scheduled event to be cancelled.
 *
 * Cancellation is eager: the event is unlinked from the queue the
 * moment Cancel() runs, so a cancelled high-frequency timeout costs
 * nothing at its deadline. Cancelling an event that already fired (or
 * was already cancelled) is a harmless no-op — the generation token in
 * the handle can never match a recycled slot. Handles may outlive the
 * queue; every operation on a stale handle is safe and does nothing.
 */
class EventHandle
{
  public:
    EventHandle() = default;

    /** Removes the event from the queue if it has not fired yet. */
    void Cancel();

    /**
     * True if this handle's Cancel() took effect before the event
     * fired, or the event was rejected by the queue's pending limit.
     * Either way the callback is guaranteed never to run.
     */
    bool cancelled() const { return cancel_took_effect_; }

    /** True while the event is still scheduled (not fired/cancelled). */
    bool pending() const;

  private:
    friend class EventQueue;
    EventHandle(std::shared_ptr<detail::EventArena> arena,
                std::uint32_t index, std::uint32_t generation)
        : arena_(std::move(arena)), index_(index), generation_(generation)
    {}

    /** Inert handle for events dropped by the pending limit. */
    static EventHandle
    Dropped()
    {
        EventHandle handle;
        handle.cancel_took_effect_ = true;
        return handle;
    }

    std::shared_ptr<detail::EventArena> arena_;
    std::uint32_t index_ = detail::kNilEvent;
    std::uint32_t generation_ = 0;
    bool cancel_took_effect_ = false;
};

/** Counters describing an EventQueue's lifetime behavior. */
struct EventQueueStats {
    std::uint64_t scheduled = 0;  ///< Events admitted to the queue.
    std::uint64_t executed = 0;   ///< Events that fired.
    std::uint64_t cancelled = 0;  ///< Events removed before firing.
    std::uint64_t dropped = 0;    ///< Events rejected by the limit.
    std::size_t pending = 0;      ///< Events currently scheduled.
    std::size_t peak_pending = 0;
    std::size_t arena_capacity = 0;  ///< Event slots allocated.
    std::size_t arena_blocks = 0;
};

/** Virtual-time event queue with deterministic same-instant ordering. */
class EventQueue : public Clock
{
  public:
    EventQueue() : arena_(std::make_shared<detail::EventArena>()) {}

    EventQueue(const EventQueue&) = delete;
    EventQueue& operator=(const EventQueue&) = delete;

    /** Current virtual time. */
    TimePoint Now() const override { return now_; }

    /** Schedules fn at an absolute virtual time (>= Now()). */
    template <typename Fn>
    EventHandle
    ScheduleAt(TimePoint when, Fn&& fn)
    {
        return ScheduleEvent(when,
                             detail::InlineEvent(std::forward<Fn>(fn)));
    }

    /** Schedules fn after a relative delay (clamped to >= 0). */
    template <typename Fn>
    EventHandle
    ScheduleAfter(Duration delay, Fn&& fn)
    {
        if (delay < Duration::zero()) {
            delay = Duration::zero();
        }
        return ScheduleEvent(now_ + delay,
                             detail::InlineEvent(std::forward<Fn>(fn)));
    }

    /** Runs events until the queue is empty or the horizon is reached.
     *
     * The virtual clock is advanced to the horizon even if the last event
     * fires earlier, so periodic drivers stay in lockstep across calls.
     */
    void RunUntil(TimePoint horizon);

    /** Runs events for a relative span of virtual time. */
    void RunFor(Duration span) { RunUntil(now_ + span); }

    /** Runs until the queue drains entirely (caps at max_events). */
    void RunUntilIdle(std::uint64_t max_events = 100'000'000);

    /** Executes the single earliest pending event, if any. */
    bool Step();

    /**
     * Backpressure bound on pending events (0 = unlimited, the
     * default). Once `limit` events are pending, further schedules are
     * rejected: the callback is discarded, stats().dropped counts it,
     * and the returned handle reports cancelled().
     *
     * This is an OOM guard rail, not flow control: a drop is *lossy*.
     * Self-rescheduling loops (runtime timeouts, periodic drivers)
     * whose re-arm event is dropped stay silently stalled for the rest
     * of the run, so the limit must sit far above the workload's peak
     * (stats().peak_pending) and stats().dropped must be checked —
     * any non-zero value means the run's results are degraded. The
     * fleet drivers surface it as the `fleet.queue.dropped` gauge.
     */
    void SetPendingLimit(std::size_t limit) { pending_limit_ = limit; }

    /** Number of events still pending (cancelled events excluded —
     *  cancellation removes them immediately). */
    std::size_t pending() const { return arena_->pending(); }

    /** Total events executed so far (cancelled events excluded). */
    std::uint64_t executed() const { return executed_; }

    /**
     * Order-sensitive FNV-1a fingerprint of every (time, sequence)
     * pair executed so far. Two runs of the same seeded simulation
     * produce the same hash; any divergence in event order or timing
     * changes it. The determinism regression tests and the fleet bench
     * compare these across runs.
     */
    std::uint64_t trace_hash() const { return trace_hash_; }

    /** Lifetime counters (allocation footprint, drops, peaks). */
    EventQueueStats stats() const;

  private:
    EventHandle ScheduleEvent(TimePoint when, detail::InlineEvent fn);

    /** Folds one executed event into the trace fingerprint. */
    void
    MixTrace(TimePoint when, std::uint64_t seq)
    {
        constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;
        trace_hash_ ^= static_cast<std::uint64_t>(when.count());
        trace_hash_ *= kFnvPrime;
        trace_hash_ ^= seq;
        trace_hash_ *= kFnvPrime;
    }

    std::shared_ptr<detail::EventArena> arena_;
    TimePoint now_{0};
    std::uint64_t next_seq_ = 0;
    std::uint64_t executed_ = 0;
    std::uint64_t dropped_ = 0;
    std::uint64_t trace_hash_ = 0xcbf29ce484222325ull;  // FNV offset basis.
    std::size_t pending_limit_ = 0;
};

/**
 * Convenience wrapper that re-schedules a callback at a fixed period until
 * stopped. Used by node drivers and telemetry samplers.
 */
class PeriodicTask
{
  public:
    /**
     * Starts ticking. The first tick fires at start + period.
     *
     * @param queue Event queue that owns time.
     * @param period Interval between ticks; must be positive.
     * @param fn Callback invoked each tick.
     */
    PeriodicTask(EventQueue& queue, Duration period,
                 std::function<void()> fn);
    ~PeriodicTask();

    PeriodicTask(const PeriodicTask&) = delete;
    PeriodicTask& operator=(const PeriodicTask&) = delete;

    /** Stops future ticks; safe to call multiple times. The pending
     *  tick is cancelled eagerly, leaving nothing in the queue. */
    void Stop();

  private:
    void Arm();

    EventQueue& queue_;
    Duration period_;
    std::function<void()> fn_;
    std::shared_ptr<bool> alive_;
    EventHandle next_;
};

}  // namespace sol::sim
