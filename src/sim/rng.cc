// determinism-lint: allow-file(libm-transcendental) -- the Gaussian /
// exponential / gamma draws use libm by design; runs are bit-identical
// on one platform (fixed seed, fixed evaluation order) but goldens that
// fingerprint these streams are only portable across identical libm
// builds. Documented hazard: docs/STATIC_ANALYSIS.md#libm.
#include "sim/rng.h"

#include <cassert>
#include <cmath>

namespace sol::sim {

namespace {

std::uint64_t
SplitMix64(std::uint64_t& x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
Rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t
DeriveStreamSeed(std::uint64_t seed, std::uint64_t stream)
{
    std::uint64_t x = seed + stream * 0x9e3779b97f4a7c15ULL;
    return SplitMix64(x);
}

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto& lane : state_) {
        lane = SplitMix64(s);
    }
}

std::uint64_t
Rng::NextU64()
{
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
}

double
Rng::NextDouble()
{
    // 53 high bits -> uniform in [0, 1).
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

std::uint64_t
Rng::NextBelow(std::uint64_t bound)
{
    assert(bound > 0);
    // Lemire-style rejection sampling to remove modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        const std::uint64_t r = NextU64();
        if (r >= threshold) {
            return r % bound;
        }
    }
}

std::int64_t
Rng::NextInRange(std::int64_t lo, std::int64_t hi)
{
    assert(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(NextBelow(span));
}

bool
Rng::NextBool(double p)
{
    if (p <= 0.0) {
        return false;
    }
    if (p >= 1.0) {
        return true;
    }
    return NextDouble() < p;
}

double
Rng::NextGaussian()
{
    if (have_cached_gaussian_) {
        have_cached_gaussian_ = false;
        return cached_gaussian_;
    }
    double u1 = NextDouble();
    double u2 = NextDouble();
    while (u1 <= 1e-300) {
        u1 = NextDouble();
    }
    const double mag = std::sqrt(-2.0 * std::log(u1));
    cached_gaussian_ = mag * std::sin(2.0 * M_PI * u2);
    have_cached_gaussian_ = true;
    return mag * std::cos(2.0 * M_PI * u2);
}

double
Rng::NextExponential(double rate)
{
    assert(rate > 0.0);
    double u = NextDouble();
    while (u <= 0.0) {
        u = NextDouble();
    }
    return -std::log(u) / rate;
}

double
Rng::NextGamma(double alpha)
{
    assert(alpha > 0.0);
    if (alpha < 1.0) {
        // Boost: Gamma(a) = Gamma(a + 1) * U^(1/a).
        const double g = NextGamma(alpha + 1.0);
        double u = NextDouble();
        while (u <= 0.0) {
            u = NextDouble();
        }
        return g * std::pow(u, 1.0 / alpha);
    }
    // Marsaglia-Tsang squeeze method.
    const double d = alpha - 1.0 / 3.0;
    const double c = 1.0 / std::sqrt(9.0 * d);
    for (;;) {
        double x = NextGaussian();
        double v = 1.0 + c * x;
        if (v <= 0.0) {
            continue;
        }
        v = v * v * v;
        const double u = NextDouble();
        if (u < 1.0 - 0.0331 * x * x * x * x) {
            return d * v;
        }
        if (u > 0.0 &&
            std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
            return d * v;
        }
    }
}

double
Rng::NextBeta(double a, double b)
{
    const double x = NextGamma(a);
    const double y = NextGamma(b);
    const double sum = x + y;
    if (sum <= 0.0) {
        return 0.5;
    }
    return x / sum;
}

Rng
Rng::Fork()
{
    return Rng(NextU64() ^ 0xd1b54a32d192ed03ULL);
}

}  // namespace sol::sim
