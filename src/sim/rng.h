/**
 * @file
 * Deterministic pseudo-random number generation for reproducible
 * experiments.
 *
 * Every stochastic component (workload generators, exploration policies,
 * fault injectors) takes an explicit Rng so that a single seed fully
 * determines an experiment run. The generator is xoshiro256** seeded via
 * splitmix64, which is fast, has a 256-bit state, and passes BigCrush.
 */
#pragma once

#include <cstdint>

namespace sol::sim {

/**
 * Derives a statistically independent seed for a numbered sub-stream
 * (one splitmix64 step over seed and stream index). Harnesses that run
 * many seeded components — agents on a node, nodes in a fleet — use
 * this so adjacent seeds and adjacent streams never collide.
 */
std::uint64_t DeriveStreamSeed(std::uint64_t seed, std::uint64_t stream);

/** Deterministic 64-bit PRNG (xoshiro256**, splitmix64 seeding). */
class Rng
{
  public:
    /** Seeds the generator; the same seed reproduces the same stream. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t NextU64();

    /** Uniform double in [0, 1). */
    double NextDouble();

    /** Uniform integer in [0, bound) using rejection to avoid bias. */
    std::uint64_t NextBelow(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t NextInRange(std::int64_t lo, std::int64_t hi);

    /** Bernoulli trial with probability p of returning true. */
    bool NextBool(double p);

    /** Standard normal deviate (Box-Muller with caching). */
    double NextGaussian();

    /** Exponential deviate with the given rate (mean 1/rate). */
    double NextExponential(double rate);

    /** Gamma deviate (Marsaglia-Tsang for alpha >= 1, boost for < 1). */
    double NextGamma(double alpha);

    /** Beta(a, b) deviate via two gamma draws. */
    double NextBeta(double a, double b);

    /** Forks a statistically independent generator (for sub-streams). */
    Rng Fork();

  private:
    std::uint64_t state_[4];
    bool have_cached_gaussian_ = false;
    double cached_gaussian_ = 0.0;
};

}  // namespace sol::sim
