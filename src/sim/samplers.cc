// determinism-lint: allow-file(libm-transcendental) -- Zipf CDF
// normalization uses std::pow; same documented libm portability hazard
// as sim/rng.cc (docs/STATIC_ANALYSIS.md#libm).
#include "sim/samplers.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace sol::sim {

ZipfSampler::ZipfSampler(std::size_t n, double s)
{
    assert(n >= 1);
    cdf_.resize(n);
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        total += 1.0 / std::pow(static_cast<double>(i + 1), s);
        cdf_[i] = total;
    }
    for (auto& c : cdf_) {
        c /= total;
    }
    cdf_.back() = 1.0;  // Guard against rounding.
}

std::size_t
ZipfSampler::Sample(Rng& rng) const
{
    const double u = rng.NextDouble();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<std::size_t>(it - cdf_.begin());
}

double
ZipfSampler::Pmf(std::size_t rank) const
{
    assert(rank < cdf_.size());
    if (rank == 0) {
        return cdf_[0];
    }
    return cdf_[rank] - cdf_[rank - 1];
}

RankPermutation::RankPermutation(std::size_t n, Rng& rng) : perm_(n)
{
    std::iota(perm_.begin(), perm_.end(), 0);
    Shuffle(rng);
}

void
RankPermutation::Churn(double fraction, Rng& rng)
{
    if (perm_.size() < 2) {
        return;
    }
    const auto swaps = static_cast<std::size_t>(
        fraction * static_cast<double>(perm_.size()));
    for (std::size_t i = 0; i < swaps; ++i) {
        const auto a = rng.NextBelow(perm_.size());
        const auto b = rng.NextBelow(perm_.size());
        std::swap(perm_[a], perm_[b]);
    }
}

void
RankPermutation::Shuffle(Rng& rng)
{
    // Fisher-Yates with the deterministic Rng.
    for (std::size_t i = perm_.size(); i > 1; --i) {
        const auto j = rng.NextBelow(i);
        std::swap(perm_[i - 1], perm_[j]);
    }
}

}  // namespace sol::sim
