/**
 * @file
 * Distribution samplers used by the workload generators.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/rng.h"

namespace sol::sim {

/**
 * Zipf(s) sampler over ranks [0, n). Rank 0 is the most popular item.
 *
 * Uses the inverse-CDF over precomputed cumulative weights, which is exact
 * and fast enough for the access-pattern generators (n <= a few thousand).
 */
class ZipfSampler
{
  public:
    /**
     * @param n Number of items; must be >= 1.
     * @param s Skew parameter; s = 0 is uniform, larger is more skewed.
     */
    ZipfSampler(std::size_t n, double s);

    /** Draws a rank in [0, n). */
    std::size_t Sample(Rng& rng) const;

    /** Probability mass of a given rank. */
    double Pmf(std::size_t rank) const;

    std::size_t size() const { return cdf_.size(); }

  private:
    std::vector<double> cdf_;
};

/**
 * Random permutation mapping ranks to item ids, with incremental
 * reshuffling to model working-set churn: each Churn() call re-assigns a
 * fraction of the rank->item mapping.
 */
class RankPermutation
{
  public:
    RankPermutation(std::size_t n, Rng& rng);

    /** Item id for a popularity rank. */
    std::size_t ItemFor(std::size_t rank) const { return perm_[rank]; }

    /** Re-assigns roughly `fraction` of ranks to new items. */
    void Churn(double fraction, Rng& rng);

    /** Full reshuffle (phase change). */
    void Shuffle(Rng& rng);

    std::size_t size() const { return perm_.size(); }

  private:
    std::vector<std::size_t> perm_;
};

}  // namespace sol::sim
