/**
 * @file
 * Simulated-time primitives shared by every SOL subsystem.
 *
 * All simulation components express time as nanoseconds since the start of
 * the simulation. Using a single integral representation keeps event
 * ordering exact (no floating-point drift) and makes virtual and real
 * runtimes interchangeable behind the same interfaces.
 */
#pragma once

#include <chrono>
#include <cstdint>

namespace sol::sim {

/** Span of simulated (or real) time. */
using Duration = std::chrono::nanoseconds;

/** Instant, measured as time since simulation start. */
using TimePoint = std::chrono::nanoseconds;

/** Constructs a Duration from whole nanoseconds. */
constexpr Duration Nanos(std::int64_t n) { return Duration(n); }

/** Constructs a Duration from whole microseconds. */
constexpr Duration Micros(std::int64_t us) { return Duration(us * 1000); }

/** Constructs a Duration from whole milliseconds. */
constexpr Duration Millis(std::int64_t ms) { return Duration(ms * 1'000'000); }

/** Constructs a Duration from whole seconds. */
constexpr Duration Seconds(std::int64_t s)
{
    return Duration(s * 1'000'000'000);
}

/** Constructs a Duration from fractional seconds (rounded to ns). */
constexpr Duration SecondsF(double s)
{
    return Duration(static_cast<std::int64_t>(s * 1e9));
}

/** Converts a Duration to fractional seconds. */
constexpr double ToSeconds(Duration d)
{
    return static_cast<double>(d.count()) / 1e9;
}

/** Converts a Duration to fractional milliseconds. */
constexpr double ToMillis(Duration d)
{
    return static_cast<double>(d.count()) / 1e6;
}

/** Sentinel for "no deadline". */
constexpr TimePoint kTimeInfinity = TimePoint(INT64_MAX);

/**
 * Clock abstraction so the SOL runtime can run against either simulated
 * time (deterministic experiments) or the system clock (deployment).
 */
class Clock
{
  public:
    virtual ~Clock() = default;

    /** Current time since the clock's epoch. */
    virtual TimePoint Now() const = 0;
};

}  // namespace sol::sim
