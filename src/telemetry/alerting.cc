#include "telemetry/alerting.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace sol::telemetry {

void
AlertEngine::AddRule(AlertRule rule)
{
    if (rule.name.empty() || rule.series.empty()) {
        throw std::invalid_argument("AlertRule needs a name and a series");
    }
    if (rule.kind == AlertKind::kBurnRate &&
        (rule.total_series.empty() || rule.budget_ppm <= 0)) {
        throw std::invalid_argument(
            "kBurnRate rules need total_series and a positive budget_ppm");
    }
    RuleState state;
    state.rule = std::move(rule);
    rules_.push_back(std::move(state));
}

void
AlertEngine::AddRules(const std::vector<AlertRule>& rules)
{
    for (const AlertRule& rule : rules) {
        AddRule(rule);
    }
}

bool
AlertEngine::Condition(const RuleState& state, const TimeSeriesStore& store,
                       sim::TimePoint now, std::int64_t* value) const
{
    const AlertRule& rule = state.rule;
    switch (rule.kind) {
      case AlertKind::kThreshold: {
        const TimeSeries* series = store.Find(rule.series);
        if (series == nullptr || series->empty()) {
            return false;
        }
        *value = series->Latest().value;
        return rule.fire_above ? *value >= rule.threshold
                               : *value <= rule.threshold;
      }
      case AlertKind::kRateOfChange: {
        const TimeSeries* series = store.Find(rule.series);
        std::int64_t delta = 0;
        if (series == nullptr ||
            !series->DeltaOver(now, rule.lookback, &delta)) {
            return false;  // Partial window: refuse to extrapolate.
        }
        *value = delta;
        return rule.fire_above ? delta >= rule.threshold
                               : delta <= rule.threshold;
      }
      case AlertKind::kBurnRate: {
        const TimeSeries* errors = store.Find(rule.series);
        const TimeSeries* total = store.Find(rule.total_series);
        std::int64_t de = 0;
        std::int64_t dn = 0;
        if (errors == nullptr || total == nullptr ||
            !errors->DeltaOver(now, rule.lookback, &de) ||
            !total->DeltaOver(now, rule.lookback, &dn)) {
            return false;
        }
        if (dn <= 0) {
            *value = 0;
            return false;  // No activity in the window: nothing burned.
        }
        // Windowed ratio in ppm, reported at transitions. The compare
        // itself cross-multiplies in 128-bit so no precision is lost:
        //   de/dn >= (budget_ppm/1e6) * (burn_factor_milli/1e3)
        // <=> de * 1e9 >= budget_ppm * burn_factor_milli * dn.
        *value = static_cast<std::int64_t>(
            (static_cast<__int128>(de) * 1'000'000) / dn);
        const __int128 lhs = static_cast<__int128>(de) * 1'000'000'000;
        const __int128 rhs = static_cast<__int128>(rule.budget_ppm) *
                             rule.burn_factor_milli * dn;
        return lhs >= rhs;
      }
    }
    return false;
}

void
AlertEngine::Evaluate(const TimeSeriesStore& store, sim::TimePoint now,
                      trace::TraceRecorder* trace)
{
    for (RuleState& state : rules_) {
        std::int64_t value = 0;
        const bool condition = Condition(state, store, now, &value);
        bool transition = false;
        if (condition && !state.firing) {
            // Arm (or keep) the hold timer; fire once it has elapsed.
            if (!state.pending) {
                state.pending = true;
                state.pending_since = now;
            }
            if (now - state.pending_since >= state.rule.hold) {
                state.firing = true;
                state.pending = false;
                transition = true;
            }
        } else if (!condition) {
            state.pending = false;
            if (state.firing) {
                state.firing = false;
                transition = true;
            }
        }
        if (!transition) {
            continue;
        }
        AlertEvent event;
        event.at = now;
        event.rule = state.rule.name;
        event.firing = state.firing;
        event.value = value;
        events_.push_back(event);
        if (trace != nullptr) {
            trace->InstantAt(state.firing ? "alert_firing"
                                          : "alert_resolved",
                             "alert", now, {{"value", event.value}},
                             "rule", state.rule.name);
        }
    }
}

bool
AlertEngine::IsFiring(const std::string& rule) const
{
    for (const RuleState& state : rules_) {
        if (state.rule.name == rule) {
            return state.firing;
        }
    }
    return false;
}

std::size_t
AlertEngine::FiringCount() const
{
    std::size_t n = 0;
    for (const RuleState& state : rules_) {
        n += state.firing ? 1 : 0;
    }
    return n;
}

bool
AlertEngine::EverFired(const std::string& rule) const
{
    for (const AlertEvent& event : events_) {
        if (event.firing && event.rule == rule) {
            return true;
        }
    }
    return false;
}

std::vector<SloStatus>
AlertEngine::SloStatuses(const TimeSeriesStore& store) const
{
    std::vector<SloStatus> statuses;
    for (const RuleState& state : rules_) {
        if (state.rule.kind != AlertKind::kBurnRate) {
            continue;
        }
        SloStatus status;
        status.rule = state.rule.name;
        status.budget_ppm = state.rule.budget_ppm;
        const TimeSeries* errors = store.Find(state.rule.series);
        const TimeSeries* total = store.Find(state.rule.total_series);
        if (errors != nullptr && !errors->empty()) {
            status.errors = errors->Latest().value;
        }
        if (total != nullptr && !total->empty()) {
            status.total = total->Latest().value;
        }
        if (status.total > 0) {
            status.consumed_ppm = static_cast<std::int64_t>(
                (static_cast<__int128>(status.errors) * 1'000'000) /
                status.total);
        }
        status.remaining_ppm = status.budget_ppm - status.consumed_ppm;
        statuses.push_back(std::move(status));
    }
    return statuses;
}

std::vector<AlertRule>
DefaultFleetAlertRules()
{
    // Series names below are what ShardedFleetRunner::SampleFleetHealth
    // appends at each window barrier. Rules are ratio/burn shaped where
    // possible so one pack works across smoke and full fleet shapes;
    // thresholds are documented (with their measured steady-state
    // margins) in docs/OBSERVABILITY.md.
    std::vector<AlertRule> rules;

    // Thresholds are calibrated against the measured smoke-shape
    // timelines (docs/OBSERVABILITY.md tabulates per-scenario peaks):
    // steady_state's standing rates — a learning transient that peaks
    // at ~35% windowed invalid samples before decaying, ~10% windowed
    // arbiter denials, 61ms epoch p99, <= 3 trips and <= 60 failed
    // assessments per 500ms — must sit below every bound, while each
    // adversarial scenario's storm blows through its signature rule.

    // Epoch completion p99 above 100ms of virtual time: steady_state
    // holds ~61ms and the safeguard cascade ~71ms; the invalid-data
    // storm (193ms, epochs dying on the max_epoch_time deadline) and
    // the Zipf cold-tenant stretch (973ms) blow past it.
    AlertRule epoch_p99;
    epoch_p99.name = "epoch_p99_high";
    epoch_p99.kind = AlertKind::kThreshold;
    epoch_p99.series = "fleet.node.epoch_latency.p99_ns";
    epoch_p99.threshold = 100'000'000;
    rules.push_back(epoch_p99);

    // Safeguard trips: >= 5 healthy->failing edges within 500ms of
    // virtual time is a cascade, not background churn (steady_state
    // peaks at 3 per window; the actuator-failure storm hits 16).
    AlertRule trip_rate;
    trip_rate.name = "safeguard_trip_rate";
    trip_rate.kind = AlertKind::kRateOfChange;
    trip_rate.series = "fleet.safeguard.trips";
    trip_rate.threshold = 5;
    trip_rate.lookback = sim::Millis(500);
    rules.push_back(trip_rate);

    // Queue drops: the fleet queue shedding any load in a 500ms
    // window is an overload signal (every library scenario runs with
    // headroom, so this stays silent until something regresses).
    AlertRule queue_drops;
    queue_drops.name = "queue_drop_rate";
    queue_drops.kind = AlertKind::kRateOfChange;
    queue_drops.series = "fleet.queue.dropped";
    queue_drops.threshold = 1;
    queue_drops.lookback = sim::Millis(500);
    rules.push_back(queue_drops);

    // Arbiter denials: more than 15% of expand requests denied over a
    // 1s window means agents are starved for headroom (every scenario
    // but the coupled-domain cascade peaks at ~10%; the cascade's
    // contention churn hits ~21%).
    AlertRule denials;
    denials.name = "arbiter_denial_ratio";
    denials.kind = AlertKind::kBurnRate;
    denials.series = "fleet.arbiter.denied";
    denials.total_series = "fleet.arbiter.requests";
    denials.budget_ppm = 150'000;
    denials.lookback = sim::Seconds(1);
    rules.push_back(denials);

    // Invalid-data SLO: validation rejects a large share of harvested
    // reads while models warm up (the windowed ratio peaks at ~35%
    // early in every scenario and ~43% under Zipf skew before decaying
    // toward zero); a trailing 500ms window burning >= 55% invalid is
    // fleet-scale correlated poisoning, not the learning transient.
    // No library scenario reaches it — this is a regression tripwire,
    // like queue_drop_rate.
    AlertRule invalid_burn;
    invalid_burn.name = "invalid_data_burn";
    invalid_burn.kind = AlertKind::kBurnRate;
    invalid_burn.series = "fleet.data.invalid";
    invalid_burn.total_series = "fleet.data.harvested";
    invalid_burn.budget_ppm = 550'000;
    invalid_burn.lookback = sim::Millis(500);
    rules.push_back(invalid_burn);

    // Halted-time SLO: agents may spend at most 5% of scheduled
    // agent-time halted by safeguards over a trailing 1s window (the
    // windowed fraction is 0 outside cascades — halts resolve within
    // a window — while the safeguard cascade sustains ~20%).
    AlertRule halted_burn;
    halted_burn.name = "halted_time_burn";
    halted_burn.kind = AlertKind::kBurnRate;
    halted_burn.series = "fleet.agent.halted_ns";
    halted_burn.total_series = "fleet.agent.active_ns";
    halted_burn.budget_ppm = 50'000;
    halted_burn.lookback = sim::Seconds(1);
    rules.push_back(halted_burn);

    // Model failures: assessments fail as background churn at up to
    // ~60 per 500ms window while models converge; >= 100 means models
    // are actually degrading (the degradation storm runs 160).
    AlertRule model_failures;
    model_failures.name = "model_failure_rate";
    model_failures.kind = AlertKind::kRateOfChange;
    model_failures.series = "fleet.model.failures";
    model_failures.threshold = 100;
    model_failures.lookback = sim::Millis(500);
    rules.push_back(model_failures);

    return rules;
}

namespace {

/** Minimal JSON string escaping (alert/series names are identifiers,
 *  but the schema should survive arbitrary rule names). */
std::string
JsonEscape(const std::string& text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

}  // namespace

void
HealthReportWriter::Write(std::ostream& os, const std::string& name,
                          const TimeSeriesStore& store,
                          const AlertEngine& engine)
{
    os << "{\n\"health\": \"" << JsonEscape(name)
       << "\",\n\"schema_version\": 1,\n";
    os << "\"timeline_hash\": \"0x" << std::hex << store.timeline_hash()
       << std::dec << "\",\n";

    // Timeline summary: per-series sample counts plus first/latest
    // values — enough to diff shape regressions without committing the
    // full (ring-bounded anyway) sample streams.
    os << "\"series\": {";
    bool first = true;
    store.VisitSeries([&](const std::string& series_name,
                          const TimeSeries& series) {
        os << (first ? "" : ",") << "\n  \"" << JsonEscape(series_name)
           << "\": {\"samples\": " << series.total_appended()
           << ", \"first\": " << (series.empty() ? 0 : series.at(0).value)
           << ", \"last\": " << (series.empty() ? 0 : series.Latest().value)
           << "}";
        first = false;
    });
    os << "\n},\n";

    // Full alert transition log, virtual-timestamped.
    os << "\"alerts\": [";
    first = true;
    for (const AlertEvent& event : engine.events()) {
        os << (first ? "" : ",") << "\n  {\"at_ns\": " << event.at.count()
           << ", \"rule\": \"" << JsonEscape(event.rule) << "\", \"state\": \""
           << (event.firing ? "firing" : "resolved")
           << "\", \"value\": " << event.value << "}";
        first = false;
    }
    os << "\n],\n";

    // Per-SLO whole-run budget accounting.
    os << "\"slos\": [";
    first = true;
    for (const SloStatus& slo : engine.SloStatuses(store)) {
        os << (first ? "" : ",") << "\n  {\"rule\": \""
           << JsonEscape(slo.rule) << "\", \"errors\": " << slo.errors
           << ", \"total\": " << slo.total
           << ", \"budget_ppm\": " << slo.budget_ppm
           << ", \"consumed_ppm\": " << slo.consumed_ppm
           << ", \"remaining_ppm\": " << slo.remaining_ppm << "}";
        first = false;
    }
    os << "\n]\n}\n";
}

std::string
HealthReportWriter::ToString(const std::string& name,
                             const TimeSeriesStore& store,
                             const AlertEngine& engine)
{
    std::ostringstream ss;
    Write(ss, name, store, engine);
    return ss.str();
}

bool
HealthReportWriter::WriteFile(const std::string& name,
                              const std::string& serialized)
{
    std::string dir;
    if (const char* env = std::getenv("SOL_BENCH_JSON_DIR")) {
        dir = env;
    }
    if (dir == "-") {
        return true;  // Explicitly disabled.
    }
    const std::string path = (dir.empty() ? std::string() : dir + "/") +
                             "HEALTH_" + name + ".json";
    std::ofstream out(path);
    if (!out) {
        std::cerr << "warning: could not write " << path << "\n";
        return false;
    }
    out << serialized;
    std::cout << "wrote " << path << "\n";
    return true;
}

}  // namespace sol::telemetry
