/**
 * @file
 * Declarative SLO/alert rules over deterministic metric timelines.
 *
 * The paper's safety argument is that safeguards notice misbehavior
 * quickly; a production fleet additionally needs the *watchers* —
 * rules that turn metric timelines into firing/resolved alerts and
 * error-budget accounting. AlertEngine is that layer, built so it
 * composes with the repo's determinism gates instead of fighting them:
 *
 *  - Rules evaluate at each sampling boundary against a
 *    TimeSeriesStore, in declaration order, using integer/fixed-point
 *    arithmetic only (no libm — the PR 8 baseline rule), so the full
 *    firing/resolved event stream is byte-identical across repeat
 *    runs and fleet worker-thread counts.
 *  - Three rule kinds cover the production-alerting canon:
 *      kThreshold    latest value vs an absolute bound (epoch p99),
 *      kRateOfChange delta over a trailing lookback window
 *                    (safeguard-trip rate, queue-drop rate),
 *      kBurnRate     SLO error-budget burn: windowed error/total
 *                    ratio vs a budget expressed in ppm, scaled by a
 *                    burn-rate factor (invalid-data SLO, halted-time
 *                    fraction).
 *  - Transitions are first-class virtual-timestamped AlertEvents,
 *    mirrored onto a flight-recorder track as instants (so an alert
 *    is visible in the Perfetto timeline next to the safeguard spans
 *    that caused it) and rolled up into HEALTH_<name>.json by
 *    HealthReportWriter together with per-SLO budget remaining.
 *
 * DefaultFleetAlertRules() ships the standing fleet pack (epoch p99,
 * safeguard-trip rate, queue-drop rate, arbiter denial rate,
 * invalid-data SLO, halted-time SLO, model-failure rate); the
 * adversarial scenarios must provably fire their signature subset and
 * steady_state must stay silent (bench/scenario_suite gates both).
 */
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/time.h"
#include "telemetry/timeseries.h"
#include "telemetry/trace.h"

namespace sol::telemetry {

/** How a rule turns a timeline into a boolean condition. */
enum class AlertKind : std::uint8_t {
    kThreshold,     ///< Latest value of `series` vs `threshold`.
    kRateOfChange,  ///< Delta of `series` over `lookback` vs `threshold`.
    kBurnRate,      ///< Windowed error/total ratio vs SLO budget.
};

/** One declarative alert rule. All arithmetic is integer/fixed-point. */
struct AlertRule {
    /** Alert name; keep <= 23 chars so trace instants carry it whole. */
    std::string name;
    AlertKind kind = AlertKind::kThreshold;

    /** Watched series (the cumulative *error* series for kBurnRate). */
    std::string series;

    /** Condition direction: fire when the observed quantity is >= (or,
     *  when false, <=) `threshold`. kBurnRate ignores it. */
    bool fire_above = true;

    /** kThreshold: absolute bound. kRateOfChange: bound on the delta
     *  over `lookback`. */
    std::int64_t threshold = 0;

    /** Trailing window for kRateOfChange/kBurnRate. A rule never fires
     *  while the store lacks a sample at the window start — partial
     *  windows refuse to extrapolate. */
    sim::Duration lookback = sim::Millis(500);

    /** Condition must hold continuously this long before the rule
     *  fires (0 = fire on first observation). Resolution is immediate
     *  on the first false observation. */
    sim::Duration hold = sim::Duration::zero();

    // --- kBurnRate only ---------------------------------------------------
    /** Cumulative total (denominator) series the error is a share of. */
    std::string total_series;

    /** SLO error budget as parts-per-million of total (e.g. 50'000 =
     *  5% of samples may be invalid). */
    std::int64_t budget_ppm = 0;

    /** Fires when the windowed error ratio >= burn_factor_milli/1000 x
     *  budget (1000 = burning exactly at budget; 2000 = 2x). */
    std::int64_t burn_factor_milli = 1000;
};

/** One firing/resolved transition (virtual-timestamped, first-class). */
struct AlertEvent {
    sim::TimePoint at{0};
    std::string rule;
    bool firing = false;  ///< true = firing edge, false = resolved edge.

    /** Observed quantity at the transition: the latest value
     *  (kThreshold), the windowed delta (kRateOfChange), or the
     *  windowed error ratio in ppm (kBurnRate). */
    std::int64_t value = 0;

    friend bool
    operator==(const AlertEvent& a, const AlertEvent& b)
    {
        return a.at == b.at && a.rule == b.rule && a.firing == b.firing &&
               a.value == b.value;
    }
};

/** Whole-run error-budget accounting for one kBurnRate rule. */
struct SloStatus {
    std::string rule;
    std::int64_t errors = 0;        ///< Cumulative error series, latest.
    std::int64_t total = 0;         ///< Cumulative total series, latest.
    std::int64_t budget_ppm = 0;
    std::int64_t consumed_ppm = 0;  ///< errors/total in ppm (0 if total 0).
    std::int64_t remaining_ppm = 0; ///< budget - consumed (negative = blown).
};

/** Evaluates a rule set against a store at successive sample times. */
class AlertEngine
{
  public:
    void AddRule(AlertRule rule);
    void AddRules(const std::vector<AlertRule>& rules);

    /**
     * Evaluates every rule at `now` (call once per sampling boundary,
     * with non-decreasing `now`). Firing/resolved transitions append
     * to events() in rule-declaration order and, when `trace` is
     * non-null, mirror onto it as `alert_firing` / `alert_resolved`
     * instants at virtual time `now` with the rule name as the string
     * arg and the observed value as an integer arg.
     */
    void Evaluate(const TimeSeriesStore& store, sim::TimePoint now,
                  trace::TraceRecorder* trace = nullptr);

    /** True while `rule` is in the firing state. */
    bool IsFiring(const std::string& rule) const;

    /** Rules currently firing. */
    std::size_t FiringCount() const;

    /** True when `rule` fired at least once over the run. */
    bool EverFired(const std::string& rule) const;

    /** The full transition log, in evaluation order. */
    const std::vector<AlertEvent>& events() const { return events_; }

    /** Whole-run budget accounting for every kBurnRate rule, in
     *  declaration order, from the latest samples in `store`. */
    std::vector<SloStatus> SloStatuses(const TimeSeriesStore& store) const;

    std::size_t num_rules() const { return rules_.size(); }
    const AlertRule& rule(std::size_t i) const { return rules_[i].rule; }

  private:
    struct RuleState {
        AlertRule rule;
        bool firing = false;
        bool pending = false;           ///< Condition true, hold running.
        sim::TimePoint pending_since{0};
    };

    /** Evaluates one rule's raw condition; fills the observed value
     *  (defined whenever the return value is meaningful). */
    bool Condition(const RuleState& state, const TimeSeriesStore& store,
                   sim::TimePoint now, std::int64_t* value) const;

    std::vector<RuleState> rules_;
    std::vector<AlertEvent> events_;
};

/**
 * The standing fleet SLO/alert pack (docs/OBSERVABILITY.md documents
 * every rule and threshold). Series names match what
 * fleet::ShardedFleetRunner samples at its window barriers.
 */
std::vector<AlertRule> DefaultFleetAlertRules();

/**
 * Serializes a health report — timeline summary, alert transition log,
 * and per-SLO budget remaining — as deterministic integer-only JSON,
 * and writes it as HEALTH_<name>.json next to the BENCH/TRACE outputs
 * ($SOL_BENCH_JSON_DIR override, "-" disables; the BenchJson rules).
 * Byte-identical across repeat runs and fleet thread counts, so CI
 * diffs it against committed goldens (tools/check_health_alerts.py).
 */
class HealthReportWriter
{
  public:
    static void Write(std::ostream& os, const std::string& name,
                      const TimeSeriesStore& store,
                      const AlertEngine& engine);

    static std::string ToString(const std::string& name,
                                const TimeSeriesStore& store,
                                const AlertEngine& engine);

    /** Writes HEALTH_<name>.json; false if the file could not open. */
    static bool WriteFile(const std::string& name,
                          const std::string& serialized);
};

}  // namespace sol::telemetry
