#include "telemetry/exposition.h"

#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "telemetry/metric_registry.h"
#include "telemetry/timeseries.h"

namespace sol::telemetry {

namespace {

/** Formats a gauge value: integral doubles print without a decimal
 *  point, others with enough digits to round-trip-read visually. */
void
WriteGaugeValue(std::ostream& os, double value)
{
    if (std::isfinite(value) && value == std::floor(value) &&
        std::abs(value) < 1e15) {
        os << static_cast<long long>(value);
    } else {
        os << std::setprecision(12) << value;
    }
}

}  // namespace

void
PrometheusWriter::WriteRegistry(std::ostream& os,
                                const MetricRegistry& registry)
{
    registry.VisitCounters(
        [&os](const std::string& name, std::uint64_t value) {
            const std::string sanitized = SanitizeMetricName(name);
            os << "# TYPE " << sanitized << " counter\n"
               << sanitized << " " << value << "\n";
        });
    registry.VisitGauges([&os](const std::string& name, double value) {
        const std::string sanitized = SanitizeMetricName(name);
        os << "# TYPE " << sanitized << " gauge\n" << sanitized << " ";
        WriteGaugeValue(os, value);
        os << "\n";
    });
    registry.VisitHistograms(
        [&os](const std::string& name, const LatencyHistogram& histogram) {
            const LatencySnapshot s = histogram.Snapshot();
            const std::string sanitized = SanitizeMetricName(name);
            os << "# TYPE " << sanitized << "_count counter\n"
               << sanitized << "_count " << s.count << "\n"
               << "# TYPE " << sanitized << "_sum_ns counter\n"
               << sanitized << "_sum_ns " << s.sum_ns << "\n"
               << "# TYPE " << sanitized << "_p50_ns gauge\n"
               << sanitized << "_p50_ns " << s.p50_ns << "\n"
               << "# TYPE " << sanitized << "_p90_ns gauge\n"
               << sanitized << "_p90_ns " << s.p90_ns << "\n"
               << "# TYPE " << sanitized << "_p99_ns gauge\n"
               << sanitized << "_p99_ns " << s.p99_ns << "\n"
               << "# TYPE " << sanitized << "_p999_ns gauge\n"
               << sanitized << "_p999_ns " << s.p999_ns << "\n";
        });
}

void
PrometheusWriter::WriteLatest(std::ostream& os, const TimeSeriesStore& store)
{
    store.VisitSeries(
        [&os](const std::string& name, const TimeSeries& series) {
            if (series.empty()) {
                return;
            }
            const TimeSample latest = series.Latest();
            os << SanitizeMetricName(name) << " " << latest.value << " "
               << latest.at.count() / 1'000'000 << "\n";
        });
}

std::string
PrometheusWriter::RegistryToString(const MetricRegistry& registry)
{
    std::ostringstream ss;
    WriteRegistry(ss, registry);
    return ss.str();
}

std::string
PrometheusWriter::LatestToString(const TimeSeriesStore& store)
{
    std::ostringstream ss;
    WriteLatest(ss, store);
    return ss.str();
}

}  // namespace sol::telemetry
