/**
 * @file
 * Prometheus text exposition of registries and timelines.
 *
 * A real SOL control plane is scraped, not log-tailed: Prometheus pulls
 * `metric_name value [timestamp_ms]` lines off an HTTP endpoint.
 * PrometheusWriter is the serialization half of that endpoint — it
 * renders a MetricRegistry snapshot or the latest sample of every
 * TimeSeriesStore series as text exposition format (version 0.0.4),
 * so live threaded runs can dump scrape-compatible snapshots and tests
 * can diff them byte-for-byte.
 *
 * Caveats, documented rather than hidden (docs/OBSERVABILITY.md):
 *  - Names pass through SanitizeMetricName ("a.b" → "a_b"); the
 *    mapping is stable but not injective, and the dotted registry name
 *    remains the source of truth.
 *  - Registry histograms export as pre-computed quantile gauges
 *    (`<name>_p50_ns` etc.) plus `_count`/`_sum_ns`, not as native
 *    `histogram` bucket series — the log-bucketed rings don't carry
 *    cumulative le-buckets.
 *  - Timestamps are *virtual* nanoseconds rendered as integer
 *    milliseconds (exposition's unit); a scraper that assumes wall
 *    clock will see the simulation epoch, which is exactly the point
 *    for deterministic replay and exactly wrong for a real deployment.
 */
#pragma once

#include <iosfwd>
#include <string>

#include "sim/time.h"

namespace sol::telemetry {

class MetricRegistry;
class TimeSeriesStore;

/** Serializes metrics as Prometheus text exposition format. */
class PrometheusWriter
{
  public:
    /**
     * Writes every counter, gauge, and histogram summary of `registry`
     * (name order; no timestamps — a registry is "now"). Counters
     * export as `# TYPE <name> counter`, gauges as `gauge`, histograms
     * as `_count`/`_sum_ns` plus `_p50_ns/_p90_ns/_p99_ns/_p999_ns`
     * gauges.
     */
    static void WriteRegistry(std::ostream& os,
                              const MetricRegistry& registry);

    /**
     * Writes the latest sample of every series in `store` as an
     * untyped metric with an explicit millisecond timestamp (series
     * already carry their kind in the name: `.milli`, `.p99_ns`, ...).
     */
    static void WriteLatest(std::ostream& os, const TimeSeriesStore& store);

    static std::string RegistryToString(const MetricRegistry& registry);
    static std::string LatestToString(const TimeSeriesStore& store);
};

}  // namespace sol::telemetry
