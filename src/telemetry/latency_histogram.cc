#include "telemetry/latency_histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace sol::telemetry {

std::size_t
LatencyHistogram::BucketIndex(std::uint64_t value_ns)
{
    if (value_ns < kSubBuckets) {
        return static_cast<std::size_t>(value_ns);
    }
    const int log = 63 - std::countl_zero(value_ns);
    const int shift = log - kSubBits;
    const std::size_t sub =
        static_cast<std::size_t>(value_ns >> shift) - kSubBuckets;
    return kSubBuckets + static_cast<std::size_t>(shift) * kSubBuckets +
           sub;
}

std::uint64_t
LatencyHistogram::BucketRepresentative(std::size_t index)
{
    if (index < kSubBuckets) {
        return static_cast<std::uint64_t>(index);
    }
    const std::size_t rest = index - kSubBuckets;
    const std::size_t shift = rest / kSubBuckets;
    const std::size_t sub = rest % kSubBuckets;
    const std::uint64_t lower =
        static_cast<std::uint64_t>(kSubBuckets + sub) << shift;
    const std::uint64_t width = std::uint64_t{1} << shift;
    return lower + (width >> 1);
}

void
LatencyHistogram::Record(std::uint64_t value_ns)
{
    ++buckets_[BucketIndex(value_ns)];
    ++count_;
    sum_ += value_ns;
    min_ = std::min(min_, value_ns);
    max_ = std::max(max_, value_ns);
}

void
LatencyHistogram::Merge(const LatencyHistogram& other)
{
    if (other.count_ == 0) {
        return;
    }
    for (std::size_t i = 0; i < kNumBuckets; ++i) {
        buckets_[i] += other.buckets_[i];
    }
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void
LatencyHistogram::Reset()
{
    buckets_.fill(0);
    count_ = 0;
    sum_ = 0;
    min_ = ~std::uint64_t{0};
    max_ = 0;
}

std::uint64_t
LatencyHistogram::ValueAtPercentile(double p) const
{
    if (count_ == 0) {
        return 0;
    }
    const double clamped = std::clamp(p, 0.0, 100.0);
    auto rank = static_cast<std::uint64_t>(
        std::ceil(clamped / 100.0 * static_cast<double>(count_)));
    rank = std::clamp<std::uint64_t>(rank, 1, count_);

    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < kNumBuckets; ++i) {
        cumulative += buckets_[i];
        if (cumulative >= rank) {
            return std::clamp(BucketRepresentative(i), min_, max_);
        }
    }
    return max_;
}

LatencySnapshot
LatencyHistogram::Snapshot() const
{
    LatencySnapshot snapshot;
    snapshot.count = count_;
    snapshot.sum_ns = sum_;
    snapshot.min_ns = min_ns();
    snapshot.max_ns = max_ns();
    snapshot.p50_ns = ValueAtPercentile(50.0);
    snapshot.p90_ns = ValueAtPercentile(90.0);
    snapshot.p99_ns = ValueAtPercentile(99.0);
    snapshot.p999_ns = ValueAtPercentile(99.9);
    return snapshot;
}

}  // namespace sol::telemetry
