/**
 * @file
 * Log-bucketed latency histogram: real distributions for the runtime's
 * hot-path durations.
 *
 * Until PR 7 the only latency the system reported was a single average
 * (the arbiter's lock_wait_ns() sum); tail behavior — the thing the
 * paper's safeguard story is about — was invisible. LatencyHistogram is
 * the HDR-style fix: values (nanoseconds) land in power-of-two ranges
 * split into 2^kSubBits linear sub-buckets, giving ~12.5% relative
 * bucket width over the full uint64 range in ~4 KB of counters, with
 * O(1) recording (a bit-scan and one increment, no allocation).
 *
 * Design constraints, in order:
 *   - Mergeable: bucket-wise addition, so per-agent histograms roll up
 *     to node and fleet distributions exactly (MetricRegistry::MergeFrom
 *     merges histograms this way; see SharedMetricRegistry's rules).
 *   - Deterministic: percentiles are integer bucket representatives
 *     computed only from the recorded values, so a simulated run's
 *     p99 is bit-reproducible and golden-testable.
 *   - Cheap enough for always-on: EpochEngine records every epoch's
 *     duration whether or not tracing is enabled.
 *
 * SharedLatencyHistogram wraps one histogram in a mutex for genuinely
 * concurrent producers (the arbiter's admit path under
 * track_contention); everything else records into thread-owned
 * histograms and merges at collection points.
 */
#pragma once

#include <array>
#include <cstdint>

#include "core/sync.h"
#include "core/thread_annotations.h"

namespace sol::telemetry {

/** Percentile summary of one histogram (integer nanoseconds). */
struct LatencySnapshot {
    std::uint64_t count = 0;
    std::uint64_t sum_ns = 0;
    std::uint64_t min_ns = 0;
    std::uint64_t max_ns = 0;
    std::uint64_t p50_ns = 0;
    std::uint64_t p90_ns = 0;
    std::uint64_t p99_ns = 0;
    std::uint64_t p999_ns = 0;
};

/** Mergeable log-bucketed histogram of nanosecond durations. */
class LatencyHistogram
{
  public:
    /** Linear sub-buckets per power-of-two range (8 => <=12.5% bucket
     *  width beyond the exact 0..7 range). */
    static constexpr int kSubBits = 3;
    static constexpr std::size_t kSubBuckets = std::size_t{1} << kSubBits;
    static constexpr std::size_t kNumBuckets =
        kSubBuckets + (64 - kSubBits) * kSubBuckets;

    /** Adds one sample (O(1), allocation-free). */
    void Record(std::uint64_t value_ns);

    /** Bucket-wise addition of another histogram (exact: merging then
     *  querying equals querying the concatenated samples). */
    void Merge(const LatencyHistogram& other);

    void Reset();

    std::uint64_t count() const { return count_; }
    std::uint64_t sum_ns() const { return sum_; }
    std::uint64_t min_ns() const { return count_ == 0 ? 0 : min_; }
    std::uint64_t max_ns() const { return max_; }
    bool empty() const { return count_ == 0; }

    /**
     * Value at percentile `p` (0..100): the representative (midpoint)
     * of the bucket containing the ceil(p/100 * count)-th sample,
     * clamped to the observed [min, max]. Deterministic integer
     * arithmetic; 0 when empty.
     */
    std::uint64_t ValueAtPercentile(double p) const;

    /** p50/p90/p99/p999 plus count/sum/min/max in one pass-friendly
     *  struct (the shape MetricRegistry::WriteJson emits). */
    LatencySnapshot Snapshot() const;

  private:
    static std::size_t BucketIndex(std::uint64_t value_ns);
    static std::uint64_t BucketRepresentative(std::size_t index);

    std::array<std::uint64_t, kNumBuckets> buckets_{};
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = ~std::uint64_t{0};
    std::uint64_t max_ = 0;
};

/**
 * Mutex-guarded histogram for concurrent producers.
 *
 * The arbiter's admit path is called from every agent's actuator
 * thread; its latency histograms take this lock per sample. The
 * critical section is a bit-scan and five integer updates, so the lock
 * costs less than the clock reads that produce the sample (and the
 * whole path is gated behind track_contention).
 */
class SharedLatencyHistogram
{
  public:
    void
    Record(std::uint64_t value_ns)
    {
        core::MutexLock lock(mutex_);
        histogram_.Record(value_ns);
    }

    /** Copies the histogram out (thread-safe). */
    LatencyHistogram
    Histogram() const
    {
        core::MutexLock lock(mutex_);
        return histogram_;
    }

    LatencySnapshot
    Snapshot() const
    {
        core::MutexLock lock(mutex_);
        return histogram_.Snapshot();
    }

    void
    Reset()
    {
        core::MutexLock lock(mutex_);
        histogram_.Reset();
    }

  private:
    mutable core::Mutex mutex_;
    LatencyHistogram histogram_ SOL_GUARDED_BY(mutex_);
};

}  // namespace sol::telemetry
