#include "telemetry/metric_registry.h"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace sol::telemetry {

void
MetricRegistry::Increment(const std::string& name, std::uint64_t delta)
{
    counters_[name] += delta;
}

void
MetricRegistry::SetGauge(const std::string& name, double value)
{
    gauges_[name] = value;
}

void
MetricRegistry::AppendSeries(const std::string& name, double x, double y)
{
    series_[name].push_back(SeriesPoint{x, y});
}

std::uint64_t
MetricRegistry::Counter(const std::string& name) const
{
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

double
MetricRegistry::Gauge(const std::string& name) const
{
    const auto it = gauges_.find(name);
    return it == gauges_.end() ? 0.0 : it->second;
}

bool
MetricRegistry::HasGauge(const std::string& name) const
{
    return gauges_.count(name) > 0;
}

const std::vector<SeriesPoint>&
MetricRegistry::Series(const std::string& name) const
{
    static const std::vector<SeriesPoint> kEmpty;
    const auto it = series_.find(name);
    return it == series_.end() ? kEmpty : it->second;
}

void
MetricRegistry::PrintSummary(std::ostream& os) const
{
    for (const auto& [name, value] : counters_) {
        os << "  " << name << " = " << value << "\n";
    }
    os << std::fixed << std::setprecision(4);
    for (const auto& [name, value] : gauges_) {
        os << "  " << name << " = " << value << "\n";
    }
    os.unsetf(std::ios_base::floatfield);
}

void
MetricRegistry::PrintSeriesCsv(std::ostream& os,
                               const std::string& name) const
{
    for (const auto& point : Series(name)) {
        os << point.x << "," << point.y << "\n";
    }
}

void
MetricRegistry::Clear()
{
    counters_.clear();
    gauges_.clear();
    series_.clear();
}

TableWriter::TableWriter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
TableWriter::AddRow(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size()) {
        throw std::invalid_argument("TableWriter row width mismatch");
    }
    rows_.push_back(std::move(cells));
}

void
TableWriter::Print(std::ostream& os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        widths[c] = headers_[c].size();
        for (const auto& row : rows_) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
        os << "| ";
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(widths[c]))
               << row[c] << " | ";
        }
        os << "\n";
    };
    print_row(headers_);
    os << "|";
    for (const auto w : widths) {
        os << std::string(w + 2, '-') << "-|";
    }
    os << "\n";
    for (const auto& row : rows_) {
        print_row(row);
    }
}

std::string
TableWriter::Num(double v, int precision)
{
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(precision) << v;
    return ss.str();
}

}  // namespace sol::telemetry
