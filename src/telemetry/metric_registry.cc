#include "telemetry/metric_registry.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <stdexcept>

namespace sol::telemetry {

namespace {

bool
IsValidMetricChar(char c, bool first)
{
    if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
        c == ':') {
        return true;
    }
    return !first && c >= '0' && c <= '9';
}

}  // namespace

std::string
SanitizeMetricName(const std::string& name)
{
    std::string out;
    out.reserve(name.size() + 1);
    for (const char c : name) {
        if (out.empty() && c >= '0' && c <= '9') {
            out += '_';
        }
        out += IsValidMetricChar(c, false) ? c : '_';
    }
    if (out.empty()) {
        out = "_";
    }
    return out;
}

bool
IsValidMetricName(const std::string& name)
{
    if (name.empty()) {
        return false;
    }
    for (std::size_t i = 0; i < name.size(); ++i) {
        if (!IsValidMetricChar(name[i], i == 0)) {
            return false;
        }
    }
    return true;
}

void
MetricRegistry::Increment(const std::string& name, std::uint64_t delta)
{
    counters_[name] += delta;
}

void
MetricRegistry::SetCounter(const std::string& name, std::uint64_t value)
{
    counters_[name] = value;
}

void
MetricRegistry::SetGauge(const std::string& name, double value)
{
    gauges_[name] = value;
}

void
MetricRegistry::AppendSeries(const std::string& name, double x, double y)
{
    series_[name].push_back(SeriesPoint{x, y});
}

void
MetricRegistry::RecordLatency(const std::string& name,
                              std::uint64_t value_ns)
{
    histograms_[name].Record(value_ns);
}

void
MetricRegistry::SetHistogram(const std::string& name,
                             const LatencyHistogram& histogram)
{
    histograms_[name] = histogram;
}

void
MetricRegistry::MergeHistogram(const std::string& name,
                               const LatencyHistogram& histogram)
{
    histograms_[name].Merge(histogram);
}

std::uint64_t
MetricRegistry::Counter(const std::string& name) const
{
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

double
MetricRegistry::Gauge(const std::string& name) const
{
    const auto it = gauges_.find(name);
    return it == gauges_.end() ? 0.0 : it->second;
}

const LatencyHistogram&
MetricRegistry::Histogram(const std::string& name) const
{
    static const LatencyHistogram kEmpty;
    const auto it = histograms_.find(name);
    return it == histograms_.end() ? kEmpty : it->second;
}

bool
MetricRegistry::HasCounter(const std::string& name) const
{
    return counters_.count(name) > 0;
}

bool
MetricRegistry::HasGauge(const std::string& name) const
{
    return gauges_.count(name) > 0;
}

bool
MetricRegistry::HasSeries(const std::string& name) const
{
    return series_.count(name) > 0;
}

bool
MetricRegistry::HasHistogram(const std::string& name) const
{
    return histograms_.count(name) > 0;
}

const std::vector<SeriesPoint>&
MetricRegistry::Series(const std::string& name) const
{
    static const std::vector<SeriesPoint> kEmpty;
    const auto it = series_.find(name);
    return it == series_.end() ? kEmpty : it->second;
}

void
MetricRegistry::PrintSummary(std::ostream& os) const
{
    for (const auto& [name, value] : counters_) {
        os << "  " << name << " = " << value << "\n";
    }
    os << std::fixed << std::setprecision(4);
    for (const auto& [name, value] : gauges_) {
        os << "  " << name << " = " << value << "\n";
    }
    os.unsetf(std::ios_base::floatfield);
    for (const auto& [name, histogram] : histograms_) {
        const LatencySnapshot snapshot = histogram.Snapshot();
        os << "  " << name << " = n=" << snapshot.count << " p50="
           << snapshot.p50_ns << " p99=" << snapshot.p99_ns
           << " max=" << snapshot.max_ns << " ns\n";
    }
}

void
MetricRegistry::PrintSeriesCsv(std::ostream& os,
                               const std::string& name) const
{
    for (const auto& point : Series(name)) {
        os << point.x << "," << point.y << "\n";
    }
}

namespace {

/** Escapes a string for use inside a JSON string literal. */
std::string
JsonEscape(const std::string& text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Formats a double as JSON (finite numbers only; else null). */
std::string
JsonNumber(double v)
{
    if (!std::isfinite(v)) {
        return "null";
    }
    std::ostringstream ss;
    ss << std::setprecision(12) << v;
    return ss.str();
}

/** True when a table cell parses fully as a finite double. "0x..."
 *  cells are excluded even though strtod accepts C99 hex floats: they
 *  are 64-bit trace-hash fingerprints, and a double would silently
 *  truncate them past 2^53 — they must survive as exact strings. */
bool
LooksNumeric(const std::string& cell, double* value)
{
    if (cell.empty()) {
        return false;
    }
    if (cell.size() > 1 && cell[0] == '0' &&
        (cell[1] == 'x' || cell[1] == 'X')) {
        return false;
    }
    char* end = nullptr;
    const double v = std::strtod(cell.c_str(), &end);
    if (end != cell.c_str() + cell.size() || !std::isfinite(v)) {
        return false;
    }
    *value = v;
    return true;
}

}  // namespace

void
MetricRegistry::WriteJson(std::ostream& os) const
{
    os << "{\n  \"counters\": {";
    bool first = true;
    for (const auto& [name, value] : counters_) {
        os << (first ? "" : ",") << "\n    \"" << JsonEscape(name)
           << "\": " << value;
        first = false;
    }
    os << "\n  },\n  \"gauges\": {";
    first = true;
    for (const auto& [name, value] : gauges_) {
        os << (first ? "" : ",") << "\n    \"" << JsonEscape(name)
           << "\": " << JsonNumber(value);
        first = false;
    }
    os << "\n  },\n  \"series\": {";
    first = true;
    for (const auto& [name, points] : series_) {
        os << (first ? "" : ",") << "\n    \"" << JsonEscape(name)
           << "\": [";
        for (std::size_t i = 0; i < points.size(); ++i) {
            os << (i == 0 ? "" : ",") << "[" << JsonNumber(points[i].x)
               << "," << JsonNumber(points[i].y) << "]";
        }
        os << "]";
        first = false;
    }
    os << "\n  },\n  \"histograms\": {";
    first = true;
    for (const auto& [name, histogram] : histograms_) {
        const LatencySnapshot s = histogram.Snapshot();
        os << (first ? "" : ",") << "\n    \"" << JsonEscape(name)
           << "\": {\"count\": " << s.count << ", \"sum_ns\": "
           << s.sum_ns << ", \"min_ns\": " << s.min_ns
           << ", \"max_ns\": " << s.max_ns << ", \"p50_ns\": "
           << s.p50_ns << ", \"p90_ns\": " << s.p90_ns
           << ", \"p99_ns\": " << s.p99_ns << ", \"p999_ns\": "
           << s.p999_ns << "}";
        first = false;
    }
    os << "\n  }\n}\n";
}

void
MetricRegistry::MergeFrom(const MetricRegistry& other,
                          const std::string& prefix)
{
    const std::string p = prefix.empty() ? "" : prefix + ".";
    for (const auto& [name, value] : other.counters_) {
        counters_[p + name] += value;
    }
    for (const auto& [name, value] : other.gauges_) {
        gauges_[p + name] = value;
    }
    for (const auto& [name, points] : other.series_) {
        auto& dst = series_[p + name];
        dst.insert(dst.end(), points.begin(), points.end());
    }
    for (const auto& [name, histogram] : other.histograms_) {
        histograms_[p + name].Merge(histogram);
    }
}

void
MetricRegistry::Clear()
{
    counters_.clear();
    gauges_.clear();
    series_.clear();
    histograms_.clear();
}

void
MetricRegistry::VisitCounters(
    const std::function<void(const std::string&, std::uint64_t)>& fn) const
{
    for (const auto& [name, value] : counters_) {
        fn(name, value);
    }
}

void
MetricRegistry::VisitGauges(
    const std::function<void(const std::string&, double)>& fn) const
{
    for (const auto& [name, value] : gauges_) {
        fn(name, value);
    }
}

void
MetricRegistry::VisitHistograms(
    const std::function<void(const std::string&, const LatencyHistogram&)>&
        fn) const
{
    for (const auto& [name, histogram] : histograms_) {
        fn(name, histogram);
    }
}

TableWriter::TableWriter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
TableWriter::AddRow(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size()) {
        throw std::invalid_argument("TableWriter row width mismatch");
    }
    rows_.push_back(std::move(cells));
}

void
TableWriter::Print(std::ostream& os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        widths[c] = headers_[c].size();
        for (const auto& row : rows_) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
        os << "| ";
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(widths[c]))
               << row[c] << " | ";
        }
        os << "\n";
    };
    print_row(headers_);
    os << "|";
    for (const auto w : widths) {
        os << std::string(w + 2, '-') << "-|";
    }
    os << "\n";
    for (const auto& row : rows_) {
        print_row(row);
    }
}

std::string
TableWriter::Num(double v, int precision)
{
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(precision) << v;
    return ss.str();
}

BenchJson::BenchJson(std::string bench_name)
    : bench_name_(std::move(bench_name))
{
}

void
BenchJson::AddTable(const std::string& section, const TableWriter& table)
{
    Section s;
    s.name = section;
    s.is_table = true;
    s.headers = table.headers();
    s.rows = table.rows();
    sections_.push_back(std::move(s));
}

void
BenchJson::AddMetrics(const std::string& section,
                      const MetricRegistry& registry)
{
    Section s;
    s.name = section;
    s.metrics = registry;
    sections_.push_back(std::move(s));
}

void
BenchJson::Write(std::ostream& os) const
{
    os << "{\n\"bench\": \"" << JsonEscape(bench_name_)
       << "\",\n\"schema_version\": 1,\n\"sections\": {";
    bool first_section = true;
    for (const auto& section : sections_) {
        os << (first_section ? "" : ",") << "\n\""
           << JsonEscape(section.name) << "\": ";
        first_section = false;
        if (!section.is_table) {
            section.metrics.WriteJson(os);
            continue;
        }
        os << "{\n  \"headers\": [";
        for (std::size_t c = 0; c < section.headers.size(); ++c) {
            os << (c == 0 ? "" : ",") << "\""
               << JsonEscape(section.headers[c]) << "\"";
        }
        os << "],\n  \"rows\": [";
        for (std::size_t r = 0; r < section.rows.size(); ++r) {
            os << (r == 0 ? "" : ",") << "\n    [";
            for (std::size_t c = 0; c < section.rows[r].size(); ++c) {
                const std::string& cell = section.rows[r][c];
                double value = 0.0;
                os << (c == 0 ? "" : ",");
                if (LooksNumeric(cell, &value)) {
                    os << JsonNumber(value);
                } else {
                    os << "\"" << JsonEscape(cell) << "\"";
                }
            }
            os << "]";
        }
        os << "\n  ]\n}";
    }
    os << "\n}\n}\n";
}

bool
BenchJson::WriteFile() const
{
    std::string dir;
    if (const char* env = std::getenv("SOL_BENCH_JSON_DIR")) {
        dir = env;
    }
    if (dir == "-") {
        return true;  // Explicitly disabled.
    }
    const std::string path = (dir.empty() ? std::string() : dir + "/") +
                             "BENCH_" + bench_name_ + ".json";
    std::ofstream out(path);
    if (!out) {
        std::cerr << "warning: could not write " << path << "\n";
        return false;
    }
    Write(out);
    std::cout << "\nwrote " << path << "\n";
    return true;
}

}  // namespace sol::telemetry
