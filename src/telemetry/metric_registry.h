/**
 * @file
 * Named metric collection for experiments and runtime introspection.
 *
 * Benchmarks accumulate counters/gauges/series here and render them as
 * aligned tables (the rows the paper's figures plot) or CSV.
 */
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace sol::telemetry {

/** One (x, y) point in a reported series. */
struct SeriesPoint {
    double x;
    double y;
};

/** Registry of counters, gauges, and series keyed by name. */
class MetricRegistry
{
  public:
    /** Adds delta to a monotonically increasing counter. */
    void Increment(const std::string& name, std::uint64_t delta = 1);

    /** Sets a point-in-time value. */
    void SetGauge(const std::string& name, double value);

    /** Appends a point to a named series. */
    void AppendSeries(const std::string& name, double x, double y);

    std::uint64_t Counter(const std::string& name) const;
    double Gauge(const std::string& name) const;
    const std::vector<SeriesPoint>& Series(const std::string& name) const;
    bool HasGauge(const std::string& name) const;

    /** Writes all counters and gauges as an aligned two-column table. */
    void PrintSummary(std::ostream& os) const;

    /** Writes one series as CSV rows (x,y). */
    void PrintSeriesCsv(std::ostream& os, const std::string& name) const;

    void Clear();

  private:
    std::map<std::string, std::uint64_t> counters_;
    std::map<std::string, double> gauges_;
    std::map<std::string, std::vector<SeriesPoint>> series_;
};

/**
 * Fixed-column table writer for paper-style result rows.
 *
 * Usage:
 *   TableWriter t({"workload", "perf", "power"});
 *   t.AddRow({"Synthetic", "1.00", "0.52"});
 *   t.Print(std::cout);
 */
class TableWriter
{
  public:
    explicit TableWriter(std::vector<std::string> headers);

    void AddRow(std::vector<std::string> cells);
    void Print(std::ostream& os) const;

    /** Formats a double with fixed precision. */
    static std::string Num(double v, int precision = 3);

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace sol::telemetry
