/**
 * @file
 * Named metric collection for experiments and runtime introspection.
 *
 * Benchmarks accumulate counters/gauges/series/latency-histograms here
 * and render them as aligned tables (the rows the paper's figures
 * plot), CSV, or JSON. Multi-agent harnesses namespace their metrics
 * per agent/node with MetricScope, and every bench binary emits a
 * machine-readable BENCH_<name>.json alongside its human tables via
 * BenchJson so figure data stays diffable across PRs.
 *
 * A MetricRegistry is single-threaded by design: every hot-path writer
 * owns its registry exclusively and snapshots flow upward through
 * MergeFrom at collection points (SharedMetricRegistry adds the one
 * lock the sharded fleet needs at window barriers). Lookups of unknown
 * names are non-mutating and well-defined: Counter/Gauge return 0,
 * Series returns an empty vector, Histogram returns an empty
 * histogram; use HasCounter/HasGauge/HasSeries/HasHistogram to
 * distinguish "absent" from "zero".
 */
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "core/sync.h"
#include "core/thread_annotations.h"
#include "telemetry/latency_histogram.h"

namespace sol::telemetry {

/** One (x, y) point in a reported series. */
struct SeriesPoint {
    double x;
    double y;
};

/**
 * Maps an internal metric name onto the Prometheus exposition charset
 * `[a-zA-Z_:][a-zA-Z0-9_:]*`. The mapping is stable and documented
 * (docs/OBSERVABILITY.md): '.' and '-' become '_', any other invalid
 * character becomes '_', and a leading digit gains a '_' prefix —
 * "node0.smart-harvest.epochs" → "node0_smart_harvest_epochs". The
 * mapping is intentionally not injective ("a.b" and "a_b" collide);
 * registry names keep dotted namespacing as the source of truth and
 * sanitization happens only at the exposition boundary.
 */
std::string SanitizeMetricName(const std::string& name);

/** True when `name` is already a valid Prometheus metric name (i.e.
 *  SanitizeMetricName would return it unchanged and it is non-empty). */
bool IsValidMetricName(const std::string& name);

/** Registry of counters, gauges, series, and latency histograms keyed
 *  by name. */
class MetricRegistry
{
  public:
    /** Adds delta to a monotonically increasing counter. */
    void Increment(const std::string& name, std::uint64_t delta = 1);

    /**
     * Sets a counter to an absolute value. For publishers that keep
     * their own authoritative tally (e.g. atomic hot-path counters)
     * and flush snapshots into the registry: unlike Increment, a
     * repeated flush is idempotent.
     */
    void SetCounter(const std::string& name, std::uint64_t value);

    /** Sets a point-in-time value. */
    void SetGauge(const std::string& name, double value);

    /** Appends a point to a named series. */
    void AppendSeries(const std::string& name, double x, double y);

    /** Adds one nanosecond sample to a named latency histogram. */
    void RecordLatency(const std::string& name, std::uint64_t value_ns);

    /** Replaces a histogram with a snapshot (idempotent flush, the
     *  SetCounter idiom for distribution-owning publishers). */
    void SetHistogram(const std::string& name,
                      const LatencyHistogram& histogram);

    /** Bucket-wise adds a histogram into a named one. */
    void MergeHistogram(const std::string& name,
                        const LatencyHistogram& histogram);

    std::uint64_t Counter(const std::string& name) const;
    double Gauge(const std::string& name) const;

    /**
     * Series points for `name`. An unknown name returns a reference to
     * a shared empty vector (never inserts); this is part of the API
     * contract, not an accident — probing a series never mutates the
     * registry.
     */
    const std::vector<SeriesPoint>& Series(const std::string& name) const;

    /** Histogram for `name`; unknown names return a shared empty
     *  histogram (never inserts). */
    const LatencyHistogram& Histogram(const std::string& name) const;

    bool HasCounter(const std::string& name) const;
    bool HasGauge(const std::string& name) const;
    bool HasSeries(const std::string& name) const;
    bool HasHistogram(const std::string& name) const;

    /** Writes all counters, gauges, and histogram summaries as an
     *  aligned two-column table. */
    void PrintSummary(std::ostream& os) const;

    /**
     * Writes one series as CSV rows (x,y). An unknown name writes
     * nothing — no header, no error — matching Series()'s empty-result
     * contract.
     */
    void PrintSeriesCsv(std::ostream& os, const std::string& name) const;

    /** Writes every counter, gauge, series, and histogram snapshot as
     *  one JSON object (histograms as integer-ns count/sum/min/max/
     *  p50/p90/p99/p999). */
    void WriteJson(std::ostream& os) const;

    /**
     * Merges another registry's metrics under `prefix + "."`: counters
     * add, gauges overwrite, series append, histograms bucket-wise add.
     */
    void MergeFrom(const MetricRegistry& other, const std::string& prefix);

    void Clear();

    /** Visits every counter in name order (deterministic). Read-only:
     *  samplers and exposition writers iterate through these hooks
     *  instead of friend access to the underlying maps. */
    void VisitCounters(
        const std::function<void(const std::string&, std::uint64_t)>& fn)
        const;

    /** Visits every gauge in name order (deterministic). */
    void VisitGauges(
        const std::function<void(const std::string&, double)>& fn) const;

    /** Visits every latency histogram in name order (deterministic). */
    void VisitHistograms(
        const std::function<void(const std::string&,
                                 const LatencyHistogram&)>& fn) const;

    const std::map<std::string, std::uint64_t>& counters() const
    {
        return counters_;
    }
    const std::map<std::string, double>& gauges() const { return gauges_; }
    const std::map<std::string, LatencyHistogram>& histograms() const
    {
        return histograms_;
    }

  private:
    std::map<std::string, std::uint64_t> counters_;
    std::map<std::string, double> gauges_;
    std::map<std::string, std::vector<SeriesPoint>> series_;
    std::map<std::string, LatencyHistogram> histograms_;
};

/**
 * Mutex-guarded MetricRegistry aggregation point for concurrent
 * producers.
 *
 * MetricRegistry itself is single-threaded by design (every hot-path
 * writer owns its registry exclusively). A sharded fleet run breaks
 * that assumption exactly once per virtual-time window: W worker
 * threads finish their shards at a barrier and each merges its shards'
 * metrics into one fleet-wide aggregate. SharedMetricRegistry is that
 * aggregation point — writers pay the lock only at window boundaries,
 * never per event, and readers take a consistent snapshot by value.
 *
 * Merge order across threads is not deterministic, so only
 * order-insensitive operations are exposed: counter merges add,
 * gauge/series merges overwrite *namespaced* keys (each producer owns
 * its prefix, so concurrent merges never overwrite each other's keys).
 *
 * Histogram merge rules: histograms merge by bucket-wise addition
 * (count/sum add, min/max extend), which is commutative and
 * associative — so unlike gauges, two producers *may* merge into the
 * same histogram key and the result is exact regardless of merge
 * order. Merging is equivalent to recording the concatenated samples.
 */
class SharedMetricRegistry
{
  public:
    /** Merges `other` under `prefix + "."` (thread-safe). */
    void
    MergeFrom(const MetricRegistry& other, const std::string& prefix)
    {
        core::MutexLock lock(mutex_);
        registry_.MergeFrom(other, prefix);
    }

    /** Adds delta to a counter (thread-safe). */
    void
    Increment(const std::string& name, std::uint64_t delta = 1)
    {
        core::MutexLock lock(mutex_);
        registry_.Increment(name, delta);
    }

    /** Copies the current aggregate out (thread-safe). */
    MetricRegistry
    Snapshot() const
    {
        core::MutexLock lock(mutex_);
        return registry_;
    }

    /** Drops every metric (thread-safe). */
    void
    Clear()
    {
        core::MutexLock lock(mutex_);
        registry_.Clear();
    }

  private:
    mutable core::Mutex mutex_;
    MetricRegistry registry_ SOL_GUARDED_BY(mutex_);
};

/**
 * Prefix-forwarding view of a MetricRegistry.
 *
 * Co-located agents and multi-node fleets share one registry; each
 * writer namespaces its metrics ("node0.smart-harvest.epochs") by going
 * through a scope. Scopes nest: Sub("x").Sub("y") writes "x.y.<name>".
 */
class MetricScope
{
  public:
    MetricScope(MetricRegistry& registry, std::string prefix)
        : registry_(registry), prefix_(std::move(prefix))
    {
    }

    void
    Increment(const std::string& name, std::uint64_t delta = 1)
    {
        registry_.Increment(Key(name), delta);
    }

    void
    SetCounter(const std::string& name, std::uint64_t value)
    {
        registry_.SetCounter(Key(name), value);
    }

    void
    SetGauge(const std::string& name, double value)
    {
        registry_.SetGauge(Key(name), value);
    }

    void
    AppendSeries(const std::string& name, double x, double y)
    {
        registry_.AppendSeries(Key(name), x, y);
    }

    void
    RecordLatency(const std::string& name, std::uint64_t value_ns)
    {
        registry_.RecordLatency(Key(name), value_ns);
    }

    void
    SetHistogram(const std::string& name,
                 const LatencyHistogram& histogram)
    {
        registry_.SetHistogram(Key(name), histogram);
    }

    void
    MergeHistogram(const std::string& name,
                   const LatencyHistogram& histogram)
    {
        registry_.MergeHistogram(Key(name), histogram);
    }

    std::uint64_t
    Counter(const std::string& name) const
    {
        return registry_.Counter(Key(name));
    }

    double
    Gauge(const std::string& name) const
    {
        return registry_.Gauge(Key(name));
    }

    /** Derives a nested scope. */
    MetricScope
    Sub(const std::string& prefix) const
    {
        return MetricScope(registry_, Key(prefix));
    }

    const std::string& prefix() const { return prefix_; }
    MetricRegistry& registry() { return registry_; }

  private:
    std::string
    Key(const std::string& name) const
    {
        return prefix_.empty() ? name : prefix_ + "." + name;
    }

    MetricRegistry& registry_;
    std::string prefix_;
};

/**
 * Fixed-column table writer for paper-style result rows.
 *
 * Usage:
 *   TableWriter t({"workload", "perf", "power"});
 *   t.AddRow({"Synthetic", "1.00", "0.52"});
 *   t.Print(std::cout);
 */
class TableWriter
{
  public:
    explicit TableWriter(std::vector<std::string> headers);

    void AddRow(std::vector<std::string> cells);
    void Print(std::ostream& os) const;

    /** Formats a double with fixed precision. */
    static std::string Num(double v, int precision = 3);

    const std::vector<std::string>& headers() const { return headers_; }
    const std::vector<std::vector<std::string>>& rows() const
    {
        return rows_;
    }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/**
 * Machine-readable companion of a bench binary's human output.
 *
 * Each bench registers the tables it prints (and, optionally, a metric
 * registry) and then writes BENCH_<name>.json next to the binary's
 * working directory, so per-figure data is diffable across commits:
 *
 *   TableWriter table(...);           // printed for humans as before
 *   BenchJson json("fig6_harvest_safeguards");
 *   json.AddTable("results", table);
 *   json.WriteFile();                 // -> BENCH_fig6_harvest_safeguards.json
 *
 * Numeric-looking cells are emitted as JSON numbers so downstream
 * tooling can chart them without re-parsing strings. The output
 * directory can be overridden with the SOL_BENCH_JSON_DIR environment
 * variable; setting it to "-" disables file output.
 */
class BenchJson
{
  public:
    explicit BenchJson(std::string bench_name);

    /** Registers a printed table under a section name. */
    void AddTable(const std::string& section, const TableWriter& table);

    /** Registers a whole metric registry under a section name. */
    void AddMetrics(const std::string& section,
                    const MetricRegistry& registry);

    /** Serializes all registered sections as one JSON document. */
    void Write(std::ostream& os) const;

    /**
     * Writes BENCH_<name>.json and prints a one-line confirmation.
     *
     * @return false if the file could not be opened (the bench's human
     *   output is unaffected).
     */
    bool WriteFile() const;

  private:
    struct Section {
        std::string name;
        bool is_table = false;
        // Copied snapshots, so callers may discard the originals.
        std::vector<std::string> headers;
        std::vector<std::vector<std::string>> rows;
        MetricRegistry metrics;
    };

    std::string bench_name_;
    std::vector<Section> sections_;
};

}  // namespace sol::telemetry
