#include "telemetry/online_stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace sol::telemetry {

void
OnlineStats::Add(double x)
{
    if (count_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

void
OnlineStats::Merge(const OnlineStats& other)
{
    if (other.count_ == 0) {
        return;
    }
    if (count_ == 0) {
        *this = other;
        return;
    }
    const auto na = static_cast<double>(count_);
    const auto nb = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double n = na + nb;
    mean_ += delta * nb / n;
    m2_ += other.m2_ + delta * delta * na * nb / n;
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void
OnlineStats::Reset()
{
    *this = OnlineStats();
}

double
OnlineStats::variance() const
{
    if (count_ < 2) {
        return 0.0;
    }
    return m2_ / static_cast<double>(count_ - 1);
}

double
OnlineStats::stddev() const
{
    return std::sqrt(variance());
}

void
Ewma::Add(double x)
{
    if (!seeded_) {
        value_ = x;
        seeded_ = true;
        return;
    }
    value_ = alpha_ * x + (1.0 - alpha_) * value_;
}

void
Ewma::Reset()
{
    value_ = 0.0;
    seeded_ = false;
}

SlidingWindow::SlidingWindow(std::size_t capacity) : data_(capacity)
{
    assert(capacity > 0);
}

void
SlidingWindow::Add(double x)
{
    data_[head_] = x;
    head_ = (head_ + 1) % data_.size();
    if (count_ < data_.size()) {
        ++count_;
    }
}

void
SlidingWindow::Reset()
{
    head_ = 0;
    count_ = 0;
}

double
SlidingWindow::Mean() const
{
    if (count_ == 0) {
        return 0.0;
    }
    double total = 0.0;
    for (std::size_t i = 0; i < count_; ++i) {
        total += data_[i];
    }
    return total / static_cast<double>(count_);
}

double
SlidingWindow::Quantile(double q) const
{
    if (count_ == 0) {
        return 0.0;
    }
    q = std::clamp(q, 0.0, 1.0);
    std::vector<double> sorted(data_.begin(), data_.begin() + count_);
    std::sort(sorted.begin(), sorted.end());
    const auto rank = static_cast<std::size_t>(
        q * static_cast<double>(count_ - 1) + 0.5);
    return sorted[rank];
}

}  // namespace sol::telemetry
