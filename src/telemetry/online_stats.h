/**
 * @file
 * Streaming statistics used by agent models and safeguards.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sol::telemetry {

/** Welford online mean/variance accumulator. */
class OnlineStats
{
  public:
    /** Adds one observation. */
    void Add(double x);

    /** Combines another accumulator into this one (Chan et al.
     *  parallel-variance combination): the result is statistically
     *  identical to having Add()ed both sample streams into one
     *  accumulator. Lets per-shard stats roll up at collection points
     *  the way histograms already merge. */
    void Merge(const OnlineStats& other);

    /** Removes all state. */
    void Reset();

    std::size_t count() const { return count_; }
    double mean() const { return count_ ? mean_ : 0.0; }

    /** Sample variance (n - 1 denominator); 0 for fewer than 2 samples. */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double sum() const { return sum_; }

  private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/** Exponentially weighted moving average. */
class Ewma
{
  public:
    /** @param alpha Weight of the newest sample, in (0, 1]. */
    explicit Ewma(double alpha) : alpha_(alpha) {}

    void Add(double x);
    void Reset();

    double value() const { return value_; }
    bool empty() const { return !seeded_; }

  private:
    double alpha_;
    double value_ = 0.0;
    bool seeded_ = false;
};

/**
 * Fixed-capacity ring of recent observations with rank queries. Backs the
 * "average over last N epochs" style safeguard checks.
 */
class SlidingWindow
{
  public:
    explicit SlidingWindow(std::size_t capacity);

    void Add(double x);
    void Reset();

    std::size_t count() const { return count_; }
    bool full() const { return count_ == data_.size(); }
    double Mean() const;

    /** Quantile in [0, 1] by nearest-rank over the current contents. */
    double Quantile(double q) const;

  private:
    std::vector<double> data_;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
};

}  // namespace sol::telemetry
