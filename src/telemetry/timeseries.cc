#include "telemetry/timeseries.h"

#include <cmath>
#include <stdexcept>

#include "telemetry/metric_registry.h"

namespace sol::telemetry {

TimeSeries::TimeSeries(std::size_t capacity)
    : ring_(capacity == 0 ? 1 : capacity)
{
}

void
TimeSeries::Append(sim::TimePoint at, std::int64_t value)
{
    if (count_ > 0 && at < Latest().at) {
        throw std::invalid_argument(
            "TimeSeries::Append timestamps must be non-decreasing");
    }
    if (count_ == ring_.size()) {
        // Full: overwrite the oldest slot (keep the tail of the run).
        ring_[head_] = TimeSample{at, value};
        head_ = (head_ + 1) % ring_.size();
    } else {
        ring_[(head_ + count_) % ring_.size()] = TimeSample{at, value};
        ++count_;
    }
    ++appended_;
}

TimeSample
TimeSeries::at(std::size_t i) const
{
    return ring_[(head_ + i) % ring_.size()];
}

TimeSample
TimeSeries::Latest() const
{
    return at(count_ - 1);
}

bool
TimeSeries::ValueAt(sim::TimePoint t, std::int64_t* value) const
{
    // Binary search over the (time-ordered) retained window for the
    // last sample with at <= t.
    if (count_ == 0 || at(0).at > t) {
        return false;
    }
    std::size_t lo = 0;
    std::size_t hi = count_ - 1;
    while (lo < hi) {
        const std::size_t mid = lo + (hi - lo + 1) / 2;
        if (at(mid).at <= t) {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    *value = at(lo).value;
    return true;
}

bool
TimeSeries::DeltaOver(sim::TimePoint t, sim::Duration lookback,
                      std::int64_t* delta) const
{
    std::int64_t now_value = 0;
    std::int64_t then_value = 0;
    if (!ValueAt(t, &now_value) || !ValueAt(t - lookback, &then_value)) {
        return false;
    }
    *delta = now_value - then_value;
    return true;
}

TimeSeriesStore::TimeSeriesStore(std::size_t series_capacity)
    : series_capacity_(series_capacity == 0 ? 1 : series_capacity)
{
}

void
TimeSeriesStore::Append(const std::string& name, sim::TimePoint at,
                        std::int64_t value)
{
    auto it = series_.find(name);
    if (it == series_.end()) {
        it = series_.emplace(name, TimeSeries(series_capacity_)).first;
    }
    it->second.Append(at, value);
}

const TimeSeries*
TimeSeriesStore::Find(const std::string& name) const
{
    const auto it = series_.find(name);
    return it == series_.end() ? nullptr : &it->second;
}

bool
TimeSeriesStore::ValueAt(const std::string& name, sim::TimePoint t,
                         std::int64_t* value) const
{
    const TimeSeries* series = Find(name);
    return series != nullptr && series->ValueAt(t, value);
}

std::uint64_t
TimeSeriesStore::total_appended() const
{
    std::uint64_t total = 0;
    for (const auto& [name, series] : series_) {
        total += series.total_appended();
    }
    return total;
}

void
TimeSeriesStore::VisitSeries(
    const std::function<void(const std::string&, const TimeSeries&)>& fn)
    const
{
    for (const auto& [name, series] : series_) {
        fn(name, series);
    }
}

void
TimeSeriesStore::SampleRegistry(const MetricRegistry& registry,
                                const std::string& prefix,
                                sim::TimePoint at)
{
    const std::string p = prefix.empty() ? "" : prefix + ".";
    registry.VisitCounters(
        [&](const std::string& name, std::uint64_t value) {
            Append(p + name, at, static_cast<std::int64_t>(value));
        });
    registry.VisitGauges([&](const std::string& name, double value) {
        Append(p + name + ".milli", at,
               static_cast<std::int64_t>(
                   std::llround(value * static_cast<double>(kGaugeScale))));
    });
    registry.VisitHistograms(
        [&](const std::string& name, const LatencyHistogram& histogram) {
            const LatencySnapshot s = histogram.Snapshot();
            Append(p + name + ".count", at,
                   static_cast<std::int64_t>(s.count));
            Append(p + name + ".p50_ns", at,
                   static_cast<std::int64_t>(s.p50_ns));
            Append(p + name + ".p90_ns", at,
                   static_cast<std::int64_t>(s.p90_ns));
            Append(p + name + ".p99_ns", at,
                   static_cast<std::int64_t>(s.p99_ns));
            Append(p + name + ".p999_ns", at,
                   static_cast<std::int64_t>(s.p999_ns));
        });
}

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void
FnvMix(std::uint64_t& hash, std::uint64_t value)
{
    for (int i = 0; i < 8; ++i) {
        hash ^= (value >> (i * 8)) & 0xff;
        hash *= kFnvPrime;
    }
}

}  // namespace

std::uint64_t
TimeSeriesStore::timeline_hash() const
{
    std::uint64_t hash = kFnvOffset;
    for (const auto& [name, series] : series_) {
        for (const char c : name) {
            hash ^= static_cast<unsigned char>(c);
            hash *= kFnvPrime;
        }
        FnvMix(hash, series.total_appended());
        for (std::size_t i = 0; i < series.size(); ++i) {
            const TimeSample sample = series.at(i);
            FnvMix(hash, static_cast<std::uint64_t>(sample.at.count()));
            FnvMix(hash, static_cast<std::uint64_t>(sample.value));
        }
    }
    return hash;
}

void
TimeSeriesStore::Clear()
{
    series_.clear();
}

}  // namespace sol::telemetry
