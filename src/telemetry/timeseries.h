/**
 * @file
 * Deterministic metric timelines: fixed-cadence virtual-time sampling
 * of counters, gauges, and histogram percentiles into ring-buffered
 * series.
 *
 * Until PR 9 the fleet exposed two temporal extremes: end-of-run
 * aggregates (BENCH_*.json behavior vectors) and raw per-event traces
 * (the PR 7 flight recorder). Neither answers the production question
 * "when did the invalid-data storm start hurting p99, and how long
 * until safeguards contained it?" — that needs periodic *timelines* of
 * every health metric, the thing a Prometheus scrape loop gives a real
 * control plane. TimeSeriesStore is that layer, built to the repo's
 * standing invariants:
 *
 *  - Deterministic: samples are taken at virtual-time boundaries the
 *    simulation already synchronizes on (fleet window barriers, node
 *    driver ticks), carry virtual timestamps, and store integer
 *    values only (gauges are scaled to fixed-point milli-units at the
 *    sampling boundary). A scenario's full timeline — every series,
 *    every sample — is byte-identical across repeat runs and across
 *    1/2/8 fleet worker threads, fingerprinted by timeline_hash().
 *  - Observe-only: sampling never schedules events and never mutates
 *    the sampled registries, so enabling a timeline leaves event-trace
 *    hashes byte-stable.
 *  - Bounded: each series is a fixed-capacity ring that keeps the
 *    *tail* (most recent samples) with an exact total_appended()
 *    count, so long fleet runs can sample forever in O(1) memory.
 *    (The flight recorder keeps the head of a run; a health timeline
 *    is the opposite — alerts ask about "now minus lookback".)
 *
 * telemetry::AlertEngine (alerting.h) evaluates SLO/alert rules over
 * these series; PrometheusWriter (exposition.h) serializes the latest
 * sample of every series as text exposition format.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/sync.h"
#include "core/thread_annotations.h"
#include "sim/time.h"

namespace sol::telemetry {

class MetricRegistry;

/** One timeline point: a virtual timestamp and an integer value. */
struct TimeSample {
    sim::TimePoint at{0};
    std::int64_t value = 0;

    friend bool
    operator==(const TimeSample& a, const TimeSample& b)
    {
        return a.at == b.at && a.value == b.value;
    }
};

/**
 * Fixed-capacity ring of TimeSamples for one metric.
 *
 * Appends must carry non-decreasing timestamps (samples are taken at
 * monotonic virtual-time boundaries); queries exploit that order.
 * When full, appending evicts the oldest sample — the ring keeps the
 * most recent `capacity` samples and counts every append exactly.
 */
class TimeSeries
{
  public:
    explicit TimeSeries(std::size_t capacity);

    /** Appends one sample (O(1)); `at` must be >= the latest sample's
     *  timestamp. Evicts the oldest sample when full. */
    void Append(sim::TimePoint at, std::int64_t value);

    /** Samples currently retained (<= capacity). */
    std::size_t size() const { return count_; }
    std::size_t capacity() const { return ring_.size(); }
    bool empty() const { return count_ == 0; }

    /** Samples ever appended (retained + evicted). */
    std::uint64_t total_appended() const { return appended_; }

    /** Retained sample by index, 0 = oldest retained. @pre i < size(). */
    TimeSample at(std::size_t i) const;

    /** Most recent sample. @pre !empty(). */
    TimeSample Latest() const;

    /**
     * Value of the latest sample at or before `t`. Returns false when
     * no retained sample is that old (before the first sample, or
     * already evicted).
     */
    bool ValueAt(sim::TimePoint t, std::int64_t* value) const;

    /**
     * Change over the trailing window (t - lookback, t]: value at `t`
     * minus value at `t - lookback` (each resolved as the latest
     * sample at or before the instant). Returns false when either
     * endpoint has no retained sample — rate rules refuse to fire on
     * partial windows rather than extrapolate.
     */
    bool DeltaOver(sim::TimePoint t, sim::Duration lookback,
                   std::int64_t* delta) const;

  private:
    std::vector<TimeSample> ring_;
    std::size_t head_ = 0;  ///< Index of the oldest retained sample.
    std::size_t count_ = 0;
    std::uint64_t appended_ = 0;
};

/**
 * Named collection of TimeSeries sharing one per-series capacity.
 *
 * Single-threaded by design, like MetricRegistry: the sampling
 * boundary that writes it is always a single logical thread (the fleet
 * runner's main thread between barriers, a node's driver). Use
 * SharedTimeSeriesStore when a live thread (a scrape handler) must
 * read while a driver samples.
 */
class TimeSeriesStore
{
  public:
    /** Fixed-point scale applied to double-valued gauges at the
     *  sampling boundary: stored value = round(gauge * kGaugeScale),
     *  and the series is named `<gauge>.milli` so the scaling is
     *  visible in the series name (documented stable mapping). */
    static constexpr std::int64_t kGaugeScale = 1000;

    explicit TimeSeriesStore(std::size_t series_capacity = 1024);

    /** Appends one sample to `name` (creating the series on first
     *  use). Timestamps per series must be non-decreasing. */
    void Append(const std::string& name, sim::TimePoint at,
                std::int64_t value);

    /** Series by name; null when absent (never inserts — probing is
     *  non-mutating, the MetricRegistry contract). */
    const TimeSeries* Find(const std::string& name) const;

    /** Latest value of `name` at or before `t`; false when absent or
     *  not that old. */
    bool ValueAt(const std::string& name, sim::TimePoint t,
                 std::int64_t* value) const;

    std::size_t num_series() const { return series_.size(); }

    /** Total samples appended across every series. */
    std::uint64_t total_appended() const;

    /** Visits every series in name order (deterministic). */
    void VisitSeries(
        const std::function<void(const std::string&, const TimeSeries&)>&
            fn) const;

    /**
     * Samples every metric of a registry at `at` under `prefix + "."`
     * (empty prefix = bare names), via the registry's Visit hooks:
     * counters as-is, gauges as fixed-point `<name>.milli`, histograms
     * as `<name>.p50_ns/.p90_ns/.p99_ns/.p999_ns` plus `<name>.count`.
     * Observe-only: the registry is never mutated.
     */
    void SampleRegistry(const MetricRegistry& registry,
                        const std::string& prefix, sim::TimePoint at);

    /**
     * FNV-1a fingerprint over every series name and every retained
     * sample (name order): two stores with identical timelines hash
     * identically, so determinism gates compare one integer.
     */
    std::uint64_t timeline_hash() const;

    void Clear();

  private:
    std::size_t series_capacity_;
    std::map<std::string, TimeSeries> series_;
};

/**
 * Mutex-guarded TimeSeriesStore for concurrent producer/scraper pairs.
 *
 * The threaded node's driver samples its health timeline on the driver
 * thread while a live scrape (PrometheusWriter over Snapshot()) reads
 * from another; this wrapper is the SharedMetricRegistry idiom applied
 * to timelines — writers pay the lock per *sample* (10 Hz class, not
 * per event), readers take a consistent copy.
 */
class SharedTimeSeriesStore
{
  public:
    explicit SharedTimeSeriesStore(std::size_t series_capacity = 1024)
        : store_(series_capacity)
    {
    }

    void
    Append(const std::string& name, sim::TimePoint at, std::int64_t value)
    {
        core::MutexLock lock(mutex_);
        store_.Append(name, at, value);
    }

    void
    SampleRegistry(const MetricRegistry& registry,
                   const std::string& prefix, sim::TimePoint at)
    {
        core::MutexLock lock(mutex_);
        store_.SampleRegistry(registry, prefix, at);
    }

    /** Copies the current timelines out (thread-safe). */
    TimeSeriesStore
    Snapshot() const
    {
        core::MutexLock lock(mutex_);
        return store_;
    }

    std::uint64_t
    timeline_hash() const
    {
        core::MutexLock lock(mutex_);
        return store_.timeline_hash();
    }

    void
    Clear()
    {
        core::MutexLock lock(mutex_);
        store_.Clear();
    }

  private:
    mutable core::Mutex mutex_;
    TimeSeriesStore store_ SOL_GUARDED_BY(mutex_);
};

}  // namespace sol::telemetry
