#include "telemetry/trace.h"

#include <bit>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace sol::telemetry::trace {

namespace {

thread_local TraceRecorder* g_thread_recorder = nullptr;

std::size_t
RoundCapacity(std::size_t capacity)
{
    return std::bit_ceil(std::max<std::size_t>(capacity, 2));
}

/** Escapes a string for a JSON string literal. */
void
AppendEscaped(std::string& out, std::string_view text)
{
    for (const char c : text) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x",
                                  static_cast<unsigned>(
                                      static_cast<unsigned char>(c)));
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
}

/** Formats nanoseconds as microseconds with exactly three fractional
 *  digits ("12.345") — integer math only, so the bytes are
 *  deterministic across platforms. */
void
AppendMicros(std::string& out, std::int64_t ns)
{
    if (ns < 0) {
        out += '-';
        ns = -ns;
    }
    out += std::to_string(ns / 1000);
    const auto frac = static_cast<unsigned>(ns % 1000);
    char buf[8];
    std::snprintf(buf, sizeof(buf), ".%03u", frac);
    out += buf;
}

void
AppendEventJson(std::string& out, const TraceEvent& event, int tid)
{
    out += R"({"ph":")";
    out += event.kind == TraceEvent::Kind::kComplete ? 'X' : 'i';
    out += R"(","pid":1,"tid":)";
    out += std::to_string(tid);
    out += R"(,"name":")";
    AppendEscaped(out, event.name);
    out += R"(","cat":")";
    AppendEscaped(out, event.category);
    out += R"(","ts":)";
    AppendMicros(out, event.ts_ns);
    if (event.kind == TraceEvent::Kind::kComplete) {
        out += R"(,"dur":)";
        AppendMicros(out, event.dur_ns);
    } else {
        out += R"(,"s":"t")";
    }
    if (event.num_args > 0 || event.string_key != nullptr) {
        out += R"(,"args":{)";
        bool first = true;
        for (std::uint8_t i = 0; i < event.num_args; ++i) {
            if (!first) {
                out += ',';
            }
            first = false;
            out += '"';
            AppendEscaped(out, event.args[i].key);
            out += "\":";
            out += std::to_string(event.args[i].value);
        }
        if (event.string_key != nullptr) {
            if (!first) {
                out += ',';
            }
            out += '"';
            AppendEscaped(out, event.string_key);
            out += "\":\"";
            AppendEscaped(out, event.string_value);
            out += '"';
        }
        out += '}';
    }
    out += '}';
}

/** Resolves the trace output directory; returns false when disabled. */
bool
ResolveTraceDir(std::string& dir)
{
    const char* env = std::getenv("SOL_TRACE_DIR");
    if (env == nullptr) {
        env = std::getenv("SOL_BENCH_JSON_DIR");
    }
    if (env != nullptr) {
        if (std::string_view(env) == "-") {
            return false;
        }
        dir = env;
        if (!dir.empty() && dir.back() != '/') {
            dir += '/';
        }
    }
    return true;
}

}  // namespace

TraceRecorder::TraceRecorder(std::string track, const sim::Clock* clock,
                             std::size_t capacity)
    : track_(std::move(track)),
      clock_(clock),
      slots_(RoundCapacity(capacity)),
      mask_(slots_.size() - 1)
{
}

void
TraceRecorder::FillArgs(TraceEvent& event,
                        std::initializer_list<TraceArg> args,
                        const char* string_key,
                        std::string_view string_value)
{
    event.num_args = 0;
    for (const TraceArg& arg : args) {
        if (event.num_args >= TraceEvent::kMaxArgs) {
            break;
        }
        event.args[event.num_args++] = arg;
    }
    event.string_key = string_key;
    if (string_key != nullptr) {
        const std::size_t n =
            std::min(string_value.size(), TraceEvent::kMaxStringArg);
        std::memcpy(event.string_value, string_value.data(), n);
        event.string_value[n] = '\0';
    } else {
        event.string_value[0] = '\0';
    }
}

void
TraceRecorder::Complete(const char* name, const char* category,
                        sim::TimePoint begin, sim::Duration duration,
                        std::initializer_list<TraceArg> args,
                        const char* string_key,
                        std::string_view string_value)
{
    TraceEvent* slot = Claim();
    if (slot == nullptr) {
        return;
    }
    slot->kind = TraceEvent::Kind::kComplete;
    slot->name = name;
    slot->category = category;
    slot->ts_ns = begin.count();
    slot->dur_ns = duration.count();
    FillArgs(*slot, args, string_key, string_value);
    Publish();
}

void
TraceRecorder::Instant(const char* name, const char* category,
                       std::initializer_list<TraceArg> args,
                       const char* string_key,
                       std::string_view string_value)
{
    TraceEvent* slot = Claim();
    if (slot == nullptr) {
        return;
    }
    slot->kind = TraceEvent::Kind::kInstant;
    slot->name = name;
    slot->category = category;
    slot->ts_ns = Now().count();
    slot->dur_ns = 0;
    FillArgs(*slot, args, string_key, string_value);
    Publish();
}

void
TraceRecorder::InstantAt(const char* name, const char* category,
                         sim::TimePoint at,
                         std::initializer_list<TraceArg> args,
                         const char* string_key,
                         std::string_view string_value)
{
    TraceEvent* slot = Claim();
    if (slot == nullptr) {
        return;
    }
    slot->kind = TraceEvent::Kind::kInstant;
    slot->name = name;
    slot->category = category;
    slot->ts_ns = at.count();
    slot->dur_ns = 0;
    FillArgs(*slot, args, string_key, string_value);
    Publish();
}

TraceRecorder*
CurrentThreadRecorder()
{
    return g_thread_recorder;
}

ScopedThreadRecorder::ScopedThreadRecorder(TraceRecorder* recorder)
    : previous_(g_thread_recorder)
{
    g_thread_recorder = recorder;
}

ScopedThreadRecorder::~ScopedThreadRecorder()
{
    g_thread_recorder = previous_;
}

TraceRecorder*
TraceSession::NewRecorder(std::string track, const sim::Clock* clock,
                          std::size_t capacity)
{
    core::MutexLock lock(mutex_);
    recorders_.push_back(std::make_unique<TraceRecorder>(
        std::move(track), clock,
        capacity == 0 ? default_capacity_ : capacity));
    return recorders_.back().get();
}

std::size_t
TraceSession::size() const
{
    core::MutexLock lock(mutex_);
    return recorders_.size();
}

TraceRecorder&
TraceSession::recorder(std::size_t index)
{
    core::MutexLock lock(mutex_);
    return *recorders_[index];
}

std::uint64_t
TraceSession::total_recorded() const
{
    core::MutexLock lock(mutex_);
    std::uint64_t total = 0;
    for (const auto& recorder : recorders_) {
        total += recorder->recorded();
    }
    return total;
}

std::uint64_t
TraceSession::total_dropped() const
{
    core::MutexLock lock(mutex_);
    std::uint64_t total = 0;
    for (const auto& recorder : recorders_) {
        total += recorder->dropped();
    }
    return total;
}

void
ChromeTraceWriter::Write(TraceSession& session, std::ostream& os)
{
    os << ToString(session);
}

std::string
ChromeTraceWriter::ToString(TraceSession& session)
{
    std::string out;
    out.reserve(1 << 16);
    out += R"({"displayTimeUnit":"ms","traceEvents":[)";
    out += "\n";
    out += R"({"ph":"M","pid":1,"tid":0,"name":"process_name",)"
           R"("args":{"name":"sol"}})";

    const std::size_t tracks = session.size();
    for (std::size_t i = 0; i < tracks; ++i) {
        TraceRecorder& recorder = session.recorder(i);
        const int tid = static_cast<int>(i) + 1;
        out += ",\n";
        out += R"({"ph":"M","pid":1,"tid":)";
        out += std::to_string(tid);
        out += R"(,"name":"thread_name","args":{"name":")";
        AppendEscaped(out, recorder.track());
        out += "\"}}";
        recorder.ConsumeAll([&out, tid](const TraceEvent& event) {
            out += ",\n";
            AppendEventJson(out, event, tid);
        });
        const std::uint64_t dropped = recorder.dropped();
        if (dropped > 0) {
            out += ",\n";
            out += R"({"ph":"C","pid":1,"tid":)";
            out += std::to_string(tid);
            out += R"(,"name":"trace_dropped","ts":0,"args":{"dropped":)";
            out += std::to_string(dropped);
            out += "}}";
        }
    }
    out += "\n]}\n";
    return out;
}

bool
ChromeTraceWriter::WriteFile(TraceSession& session,
                             const std::string& name)
{
    return WriteFile(name, ToString(session));
}

bool
ChromeTraceWriter::WriteFile(const std::string& name,
                             const std::string& serialized)
{
    std::string dir;
    if (!ResolveTraceDir(dir)) {
        return false;
    }
    const std::string path = dir + "TRACE_" + name + ".json";
    std::ofstream file(path, std::ios::trunc);
    if (!file) {
        return false;
    }
    file << serialized;
    return static_cast<bool>(file);
}

}  // namespace sol::telemetry::trace
