/**
 * @file
 * Flight-recorder tracing: per-thread SPSC ring buffers of spans and
 * instants, serialized to Chrome trace_event JSON (Perfetto-loadable).
 *
 * The recorder answers the question aggregate counters can't: when a
 * safeguard trips or the arbiter denies a burst of expand intents,
 * *when* did it happen, in what order, and how long did each phase
 * take. It is designed as an always-available bounded-overhead layer:
 *
 *   - One TraceRecorder per producer thread (SPSC): exactly one thread
 *     records into a ring; the ChromeTraceWriter (or any consumer)
 *     drains it from another thread through an acquire/release
 *     head/tail pair. No locks, no allocation on the hot path.
 *   - Fixed-capacity slots with drop-counted overflow: when the ring
 *     is full new events are dropped (the buffer keeps the *head* of
 *     the run) and counted exactly; the drop count is published into
 *     the serialized trace so truncation is never silent.
 *   - Near-zero cost when disabled: every instrumentation point takes
 *     a `TraceRecorder*` that may be null; TraceSpan's constructor
 *     does a single pointer test and reads no clock when it is.
 *   - Deterministic timestamps under virtual time: a recorder reads
 *     time through `sim::Clock`, so simulated runs produce
 *     byte-identical traces across runs and thread counts, while
 *     threaded runs use a steady-clock-backed sim::Clock
 *     (core::ManualClock in parity tests, SteadyClock otherwise).
 *
 * Event names and categories must be string literals (or otherwise
 * outlive the recorder): slots store `const char*`, never copies. The
 * one exception is a single short string argument per event (agent or
 * holder names), copied into a fixed in-slot buffer.
 *
 * Thread-attribution for shared components (the arbiter is called from
 * 77 actuator threads) goes through CurrentThreadRecorder(): each
 * runtime loop binds its recorder with ScopedThreadRecorder, and the
 * arbiter records into whichever recorder the calling thread bound —
 * preserving SPSC without the arbiter knowing about threads.
 */
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "core/sync.h"
#include "core/thread_annotations.h"
#include "sim/time.h"

namespace sol::telemetry::trace {

/** sim::Clock over std::chrono::steady_clock, origin at construction.
 *  Backs tracks that have no runtime clock of their own (node driver /
 *  control threads, ad-hoc test threads). */
class SteadyClock : public sim::Clock
{
  public:
    SteadyClock() : origin_(std::chrono::steady_clock::now()) {}

    sim::TimePoint
    Now() const override
    {
        return std::chrono::duration_cast<sim::Duration>(
            std::chrono::steady_clock::now() - origin_);
    }

  private:
    std::chrono::steady_clock::time_point origin_;
};

/** One integer key/value pair attached to an event. Keys must be
 *  string literals. */
struct TraceArg {
    const char* key = nullptr;
    std::int64_t value = 0;
};

/** One fixed-size ring slot. POD-copyable; no ownership. */
struct TraceEvent {
    enum class Kind : std::uint8_t {
        kComplete,  ///< Span with begin timestamp + duration (ph "X").
        kInstant,   ///< Point event (ph "i").
    };
    static constexpr std::size_t kMaxArgs = 2;
    static constexpr std::size_t kMaxStringArg = 23;

    Kind kind = Kind::kInstant;
    std::uint8_t num_args = 0;
    const char* name = nullptr;      ///< Literal; never null once recorded.
    const char* category = nullptr;  ///< Literal; never null once recorded.
    std::int64_t ts_ns = 0;
    std::int64_t dur_ns = 0;  ///< kComplete only.
    TraceArg args[kMaxArgs] = {};
    const char* string_key = nullptr;  ///< Literal; null = no string arg.
    char string_value[kMaxStringArg + 1] = {};
};

/**
 * Single-producer single-consumer ring of TraceEvents for one track.
 *
 * Exactly one thread may call the recording methods (Complete /
 * Instant / the TraceSpan destructor); exactly one thread at a time
 * may call ConsumeAll. Producer and consumer may run concurrently.
 * Capacity is rounded up to a power of two. When the ring is full,
 * new events are dropped and counted (`dropped()`), keeping the
 * events from the start of the run — a flight recorder that captures
 * the head of the flight, with exact truncation accounting.
 */
class TraceRecorder
{
  public:
    /**
     * @param track  Display name for this track (Perfetto thread row).
     * @param clock  Timestamp source; may be null (timestamps 0, for
     *               tracks that only use explicit-timestamp Complete).
     *               Must outlive all recording calls.
     * @param capacity  Slot count, rounded up to a power of two
     *                  (minimum 2).
     */
    TraceRecorder(std::string track, const sim::Clock* clock,
                  std::size_t capacity);

    TraceRecorder(const TraceRecorder&) = delete;
    TraceRecorder& operator=(const TraceRecorder&) = delete;

    const std::string& track() const { return track_; }
    std::size_t capacity() const { return slots_.size(); }

    sim::TimePoint
    Now() const
    {
        return clock_ == nullptr ? sim::TimePoint{} : clock_->Now();
    }

    /** Records a span with explicit begin/duration (producer only). */
    void Complete(const char* name, const char* category,
                  sim::TimePoint begin, sim::Duration duration,
                  std::initializer_list<TraceArg> args = {},
                  const char* string_key = nullptr,
                  std::string_view string_value = {});

    /** Records a point event timestamped via the clock (producer
     *  only). */
    void Instant(const char* name, const char* category,
                 std::initializer_list<TraceArg> args = {},
                 const char* string_key = nullptr,
                 std::string_view string_value = {});

    /** Records a point event with an explicit timestamp (producer
     *  only). For producers that already know the virtual time of the
     *  moment they mark — the fleet track's alert instants land at the
     *  sampling boundary even though that track has no clock. */
    void InstantAt(const char* name, const char* category,
                   sim::TimePoint at,
                   std::initializer_list<TraceArg> args = {},
                   const char* string_key = nullptr,
                   std::string_view string_value = {});

    /** Events accepted into the ring so far (relaxed; producer-exact). */
    std::uint64_t
    recorded() const
    {
        return recorded_.load(std::memory_order_relaxed);
    }

    /** Events rejected because the ring was full (relaxed;
     *  producer-exact). */
    std::uint64_t
    dropped() const
    {
        return dropped_.load(std::memory_order_relaxed);
    }

    /**
     * Drains every currently-visible event in record order (consumer
     * only; safe against a concurrently-recording producer).
     */
    template <typename Fn>
    void
    ConsumeAll(Fn&& fn)
    {
        std::uint64_t tail = tail_.load(std::memory_order_relaxed);
        const std::uint64_t head = head_.load(std::memory_order_acquire);
        while (tail != head) {
            fn(slots_[static_cast<std::size_t>(tail) & mask_]);
            ++tail;
        }
        tail_.store(tail, std::memory_order_release);
    }

  private:
    friend class TraceSpan;

    /** Claims the next slot, or null (and counts a drop) if full. */
    TraceEvent*
    Claim()
    {
        const std::uint64_t head = head_.load(std::memory_order_relaxed);
        const std::uint64_t tail = tail_.load(std::memory_order_acquire);
        if (head - tail >= slots_.size()) {
            dropped_.fetch_add(1, std::memory_order_relaxed);
            return nullptr;
        }
        return &slots_[static_cast<std::size_t>(head) & mask_];
    }

    /** Publishes the slot claimed by the last Claim(). */
    void
    Publish()
    {
        const std::uint64_t head = head_.load(std::memory_order_relaxed);
        head_.store(head + 1, std::memory_order_release);
        recorded_.fetch_add(1, std::memory_order_relaxed);
    }

    static void FillArgs(TraceEvent& event,
                         std::initializer_list<TraceArg> args,
                         const char* string_key,
                         std::string_view string_value);

    std::string track_;
    const sim::Clock* clock_;
    std::vector<TraceEvent> slots_;
    std::size_t mask_;
    std::atomic<std::uint64_t> head_{0};  ///< Next write; producer-owned.
    std::atomic<std::uint64_t> tail_{0};  ///< Next read; consumer-owned.
    std::atomic<std::uint64_t> recorded_{0};
    std::atomic<std::uint64_t> dropped_{0};
};

/**
 * RAII span: records one kComplete event covering its own lifetime.
 *
 * With a null recorder every method is a no-op and no clock is read —
 * this is the "near-zero cost when disabled" path, a single branch.
 * Name/category/arg keys must be string literals.
 */
class TraceSpan
{
  public:
    TraceSpan(TraceRecorder* recorder, const char* name,
              const char* category)
        : recorder_(recorder), name_(name), category_(category)
    {
        if (recorder_ != nullptr) {
            begin_ = recorder_->Now();
        }
    }

    TraceSpan(const TraceSpan&) = delete;
    TraceSpan& operator=(const TraceSpan&) = delete;

    /** Attaches an integer arg (at most TraceEvent::kMaxArgs; extras
     *  are ignored). */
    void
    AddArg(const char* key, std::int64_t value)
    {
        if (recorder_ != nullptr && num_args_ < TraceEvent::kMaxArgs) {
            args_[num_args_++] = TraceArg{key, value};
        }
    }

    /** Attaches the single short string arg (truncated to fit the
     *  slot buffer). */
    void
    SetString(const char* key, std::string_view value)
    {
        if (recorder_ == nullptr) {
            return;
        }
        string_key_ = key;
        const std::size_t n =
            std::min(value.size(), TraceEvent::kMaxStringArg);
        std::memcpy(string_value_, value.data(), n);
        string_value_[n] = '\0';
    }

    ~TraceSpan();

  private:
    TraceRecorder* recorder_;
    const char* name_;
    const char* category_;
    sim::TimePoint begin_{};
    std::uint8_t num_args_ = 0;
    TraceArg args_[TraceEvent::kMaxArgs] = {};
    const char* string_key_ = nullptr;
    char string_value_[TraceEvent::kMaxStringArg + 1] = {};
};

/** Recorder bound to the current thread (null if none). Shared
 *  components (the arbiter) record through this so events land on the
 *  calling thread's track and SPSC is preserved. */
TraceRecorder* CurrentThreadRecorder();

/** Binds a recorder to the current thread for a scope; restores the
 *  previous binding on destruction (nestable). */
class ScopedThreadRecorder
{
  public:
    explicit ScopedThreadRecorder(TraceRecorder* recorder);
    ~ScopedThreadRecorder();

    ScopedThreadRecorder(const ScopedThreadRecorder&) = delete;
    ScopedThreadRecorder& operator=(const ScopedThreadRecorder&) = delete;

  private:
    TraceRecorder* previous_;
};

/**
 * Owns a set of recorders (tracks) that serialize into one trace.
 *
 * NewRecorder is thread-safe; creation order defines the track (tid)
 * order in the serialized JSON, so creating recorders in a
 * deterministic order makes the whole trace byte-deterministic in sim
 * mode. Recorders live until the session dies; pointers remain stable.
 */
class TraceSession
{
  public:
    explicit TraceSession(std::size_t default_capacity = 1 << 12)
        : default_capacity_(default_capacity)
    {
    }

    /** Creates a recorder; capacity 0 means the session default. */
    TraceRecorder* NewRecorder(std::string track, const sim::Clock* clock,
                               std::size_t capacity = 0);

    std::size_t size() const;
    /** @pre index < size(). */
    TraceRecorder& recorder(std::size_t index);

    std::uint64_t total_recorded() const;
    std::uint64_t total_dropped() const;

  private:
    mutable core::Mutex mutex_;
    std::size_t default_capacity_;
    /** Pointers are stable and recorders are internally SPSC; the
     *  lock guards only the vector of tracks. */
    std::vector<std::unique_ptr<TraceRecorder>> recorders_
        SOL_GUARDED_BY(mutex_);
};

/**
 * Serializes (and drains) a TraceSession as Chrome trace_event JSON:
 * `{"displayTimeUnit":"ms","traceEvents":[...]}` with one metadata
 * thread_name per track, ph "X" for spans, ph "i" for instants, and a
 * `trace_dropped` counter event per track that overflowed. Load the
 * file in Perfetto (ui.perfetto.dev) or chrome://tracing.
 *
 * Serialization is byte-deterministic given identical recorded events
 * (fixed key order, integer microsecond.nnn timestamps, track order =
 * recorder creation order). Draining consumes the events: serialize
 * once, after producers have stopped or at a quiescent point.
 */
class ChromeTraceWriter
{
  public:
    /** Drains `session` and writes the JSON to `os`. */
    static void Write(TraceSession& session, std::ostream& os);

    /** Drains `session` and returns the JSON (for byte comparisons). */
    static std::string ToString(TraceSession& session);

    /**
     * Drains `session` into `TRACE_<name>.json` in the directory named
     * by $SOL_TRACE_DIR (falling back to $SOL_BENCH_JSON_DIR so CI
     * artifacts co-locate, then to the working directory; "-" disables
     * entirely). Returns true if a file was written.
     */
    static bool WriteFile(TraceSession& session, const std::string& name);

    /** Writes an already-serialized trace (from ToString) to the same
     *  location WriteFile(session, name) would use. */
    static bool WriteFile(const std::string& name,
                          const std::string& serialized);
};

inline TraceSpan::~TraceSpan()
{
    if (recorder_ == nullptr) {
        return;
    }
    const sim::TimePoint end = recorder_->Now();
    TraceEvent* slot = recorder_->Claim();
    if (slot == nullptr) {
        return;  // Claim counted the drop.
    }
    slot->kind = TraceEvent::Kind::kComplete;
    slot->name = name_;
    slot->category = category_;
    slot->ts_ns = begin_.count();
    slot->dur_ns = (end - begin_).count();
    slot->num_args = num_args_;
    for (std::uint8_t i = 0; i < num_args_; ++i) {
        slot->args[i] = args_[i];
    }
    slot->string_key = string_key_;
    if (string_key_ != nullptr) {
        std::memcpy(slot->string_value, string_value_,
                    sizeof(string_value_));
    } else {
        slot->string_value[0] = '\0';
    }
    recorder_->Publish();
}

}  // namespace sol::telemetry::trace
