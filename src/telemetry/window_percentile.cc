#include "telemetry/window_percentile.h"

#include <algorithm>
#include <vector>

namespace sol::telemetry {

void
WindowPercentile::Add(sim::TimePoint now, double value)
{
    Evict(now);
    samples_.push_back(Sample{now, value});
}

double
WindowPercentile::Quantile(sim::TimePoint now, double q)
{
    Evict(now);
    if (samples_.empty()) {
        return 0.0;
    }
    q = std::clamp(q, 0.0, 1.0);
    std::vector<double> values;
    values.reserve(samples_.size());
    for (const auto& s : samples_) {
        values.push_back(s.value);
    }
    std::sort(values.begin(), values.end());
    const auto rank = static_cast<std::size_t>(
        q * static_cast<double>(values.size() - 1) + 0.5);
    return values[rank];
}

std::size_t
WindowPercentile::Count(sim::TimePoint now)
{
    Evict(now);
    return samples_.size();
}

void
WindowPercentile::Evict(sim::TimePoint now)
{
    const sim::TimePoint cutoff =
        now > window_ ? now - window_ : sim::TimePoint(0);
    while (!samples_.empty() && samples_.front().at < cutoff) {
        samples_.pop_front();
    }
}

}  // namespace sol::telemetry
