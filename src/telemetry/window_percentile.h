/**
 * @file
 * Time-window percentile tracking.
 *
 * The SOL actuator safeguards are specified over trailing *time* windows
 * ("P90 of alpha over the past 100 seconds", "P99 vCPU wait"), not sample
 * counts. This tracker retains timestamped samples and answers quantile
 * queries over exactly the samples inside the window.
 */
#pragma once

#include <cstddef>
#include <deque>

#include "sim/time.h"

namespace sol::telemetry {

/** Quantile over the samples observed in a trailing time window. */
class WindowPercentile
{
  public:
    /** @param window Length of the trailing window. */
    explicit WindowPercentile(sim::Duration window) : window_(window) {}

    /** Records a sample observed at the given time. */
    void Add(sim::TimePoint now, double value);

    /**
     * Quantile in [0, 1] over samples in (now - window, now]. Samples
     * older than the window are evicted first.
     */
    double Quantile(sim::TimePoint now, double q);

    /** Number of samples currently inside the window. */
    std::size_t Count(sim::TimePoint now);

    void Reset() { samples_.clear(); }

    sim::Duration window() const { return window_; }

  private:
    void Evict(sim::TimePoint now);

    struct Sample {
        sim::TimePoint at;
        double value;
    };

    sim::Duration window_;
    std::deque<Sample> samples_;
};

}  // namespace sol::telemetry
