#include "workloads/best_effort.h"

namespace sol::workloads {

void
BestEffort::Advance(sim::TimePoint /*now*/, sim::Duration dt,
                    const node::CpuResources& res)
{
    const double cores = static_cast<double>(res.granted_cores);
    const double secs = sim::ToSeconds(dt);
    work_done_gcycles_ += cores * res.freq_ghz * secs;
    core_seconds_ += cores * secs;
    activity_.utilization = res.granted_cores > 0 ? 1.0 : 0.0;
    activity_.cores_demand = 64.0;  // Unbounded appetite.
    activity_.ipc = 1.0;
    activity_.stall_fraction = 0.1;
}

}  // namespace sol::workloads
