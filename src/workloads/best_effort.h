/**
 * @file
 * Best-effort batch workload for the ElasticVM in the SmartHarvest
 * experiments: it consumes every core it is granted, so the useful work
 * it completes measures how much capacity harvesting recovered.
 */
#pragma once

#include "node/cpu_workload.h"

namespace sol::workloads {

/** Always-busy filler workload (the ElasticVM's batch job). */
class BestEffort : public node::CpuWorkload
{
  public:
    BestEffort() = default;

    void Advance(sim::TimePoint now, sim::Duration dt,
                 const node::CpuResources& res) override;
    node::CpuActivity Activity() const override { return activity_; }
    std::string name() const override { return "BestEffort"; }

    /** Giga-cycles of work completed (higher is better). */
    double PerformanceValue() const override { return work_done_gcycles_; }
    std::string PerformanceUnit() const override { return "Gcycles"; }
    bool PerformanceHigherIsBetter() const override { return true; }

    /** Core-seconds of borrowed capacity actually used. */
    double core_seconds() const { return core_seconds_; }

  private:
    double work_done_gcycles_ = 0.0;
    double core_seconds_ = 0.0;
    node::CpuActivity activity_;
};

}  // namespace sol::workloads
