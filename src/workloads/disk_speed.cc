#include "workloads/disk_speed.h"

namespace sol::workloads {

DiskSpeed::DiskSpeed(const DiskSpeedConfig& config) : config_(config)
{
    activity_.utilization = config_.cpu_utilization;
    activity_.ipc = config_.ipc;
    activity_.stall_fraction = config_.stall_fraction;
}

void
DiskSpeed::Advance(sim::TimePoint /*now*/, sim::Duration dt,
                   const node::CpuResources& res)
{
    // Throughput is device-limited: frequency does not enter.
    fractional_ += config_.disk_rate_per_sec * sim::ToSeconds(dt);
    const auto whole = static_cast<std::uint64_t>(fractional_);
    completed_ += whole;
    fractional_ -= static_cast<double>(whole);
    elapsed_ += dt;

    activity_.utilization = config_.cpu_utilization;
    activity_.cores_demand =
        config_.cpu_utilization * static_cast<double>(res.granted_cores);
    activity_.ipc = config_.ipc;
    activity_.stall_fraction = config_.stall_fraction;
}

double
DiskSpeed::PerformanceValue() const
{
    const double secs = sim::ToSeconds(elapsed_);
    if (secs <= 0.0) {
        return 0.0;
    }
    return static_cast<double>(completed_) / secs;
}

}  // namespace sol::workloads
