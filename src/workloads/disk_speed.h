/**
 * @file
 * The paper's "DiskSpeed" workload: a disk-bound server whose throughput
 * is limited by the storage device, not the CPU. Overclocking it only
 * wastes power — the workload SmartOverclock must learn to leave alone.
 */
#pragma once

#include <cstdint>

#include "node/cpu_workload.h"

namespace sol::workloads {

/** Configuration for DiskSpeed. */
struct DiskSpeedConfig {
    double disk_rate_per_sec = 800.0;  ///< Device-limited request rate.
    double cpu_utilization = 0.12;     ///< Small fixed CPU footprint.
    double stall_fraction = 0.85;      ///< Mostly waiting on IO.
    double ipc = 0.4;
};

/** IO-bound workload with frequency-independent throughput. */
class DiskSpeed : public node::CpuWorkload
{
  public:
    explicit DiskSpeed(const DiskSpeedConfig& config = {});

    void Advance(sim::TimePoint now, sim::Duration dt,
                 const node::CpuResources& res) override;
    node::CpuActivity Activity() const override { return activity_; }
    std::string name() const override { return "DiskSpeed"; }

    /** Mean throughput in requests per second (higher is better). */
    double PerformanceValue() const override;
    std::string PerformanceUnit() const override { return "req/s"; }
    bool PerformanceHigherIsBetter() const override { return true; }

    std::uint64_t completed_requests() const { return completed_; }

  private:
    DiskSpeedConfig config_;
    std::uint64_t completed_ = 0;
    double fractional_ = 0.0;
    sim::Duration elapsed_{0};
    node::CpuActivity activity_;
};

}  // namespace sol::workloads
