#include "workloads/memory_patterns.h"

namespace sol::workloads {

ZipfMemoryPattern::ZipfMemoryPattern(const ZipfMemoryConfig& config)
    : config_(config),
      rng_(config.seed),
      zipf_(config.num_batches, config.skew),
      perm_(config.num_batches, rng_),
      next_churn_(config.churn_interval.count() > 0 ? config.churn_interval
                                                    : sim::kTimeInfinity),
      next_shift_(config.shift_interval.count() > 0 ? config.shift_interval
                                                    : sim::kTimeInfinity),
      next_sweep_(config.sweep_interval.count() > 0 ? config.sweep_interval
                                                    : sim::kTimeInfinity)
{
}

void
ZipfMemoryPattern::GenerateAccesses(sim::TimePoint now, sim::Duration dt,
                                    node::TieredMemory& mem)
{
    const sim::TimePoint tick_end = now + dt;

    while (next_churn_ <= tick_end) {
        perm_.Churn(config_.churn_fraction, rng_);
        next_churn_ += config_.churn_interval;
    }
    while (next_shift_ <= tick_end) {
        perm_.Shuffle(rng_);
        next_shift_ += config_.shift_interval;
    }
    while (next_sweep_ <= tick_end) {
        // GC-style sweep: touch every batch once.
        for (std::size_t b = 0; b < config_.num_batches; ++b) {
            mem.RecordAccess(b, next_sweep_, 1);
        }
        next_sweep_ += config_.sweep_interval;
    }

    carry_ += config_.accesses_per_sec * sim::ToSeconds(dt);
    auto count = static_cast<std::uint64_t>(carry_);
    carry_ -= static_cast<double>(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        const std::size_t rank = zipf_.Sample(rng_);
        mem.RecordAccess(perm_.ItemFor(rank), tick_end, 1);
    }
}

ZipfMemoryConfig
ObjectStoreMemConfig(std::uint64_t seed)
{
    ZipfMemoryConfig config;
    config.name = "ObjectStore";
    config.skew = 0.99;
    config.churn_interval = sim::Seconds(60);
    config.churn_fraction = 0.05;
    config.seed = seed;
    return config;
}

ZipfMemoryConfig
SqlOltpMemConfig(std::uint64_t seed)
{
    ZipfMemoryConfig config;
    config.name = "SQL";
    config.skew = 1.15;
    config.churn_interval = sim::Seconds(30);
    config.churn_fraction = 0.02;
    config.shift_interval = sim::Seconds(300);
    config.seed = seed;
    return config;
}

ZipfMemoryConfig
SpecJbbMemConfig(std::uint64_t seed)
{
    ZipfMemoryConfig config;
    config.name = "SpecJBB";
    config.skew = 0.7;
    config.churn_interval = sim::Seconds(45);
    config.churn_fraction = 0.08;
    config.sweep_interval = sim::Seconds(40);
    config.seed = seed;
    return config;
}

OscillatingPattern::OscillatingPattern(
    std::unique_ptr<ZipfMemoryPattern> inner, sim::Duration active,
    sim::Duration idle)
    : inner_(std::move(inner)),
      active_span_(active),
      idle_span_(idle),
      phase_end_(active)
{
}

void
OscillatingPattern::GenerateAccesses(sim::TimePoint now, sim::Duration dt,
                                     node::TieredMemory& mem)
{
    const sim::TimePoint tick_end = now + dt;
    while (phase_end_ <= tick_end) {
        active_now_ = !active_now_;
        phase_end_ += active_now_ ? active_span_ : idle_span_;
        if (active_now_) {
            // Each reactivation starts a new phase with a different hot
            // set, making the access pattern shift frequently and rapidly
            // (the property that makes Figure 8's workload hard).
            inner_->Reshuffle();
        }
    }
    if (active_now_) {
        inner_->GenerateAccesses(now, dt, mem);
    }
    // While sleeping: no accesses at all (the paper's workload sleeps).
}

std::string
OscillatingPattern::name() const
{
    return "Oscillating(" + inner_->name() + ")";
}

}  // namespace sol::workloads
