/**
 * @file
 * Memory access pattern generators for the SmartMemory experiments.
 *
 * Each generator drives a node::TieredMemory with a stream of batch
 * accesses reproducing the published characteristics of the paper's
 * workloads: highly skewed page popularity (ObjectStore), skewed with
 * periodic working-set shifts (SQL OLTP), flatter popularity with
 * GC-style full sweeps (SpecJBB), and an oscillating run/sleep wrapper
 * (the intentionally hard Figure 8 workload).
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "node/tiered_memory.h"
#include "sim/rng.h"
#include "sim/samplers.h"

namespace sol::workloads {

/** Drives a TieredMemory with accesses over simulated time. */
class MemoryPattern
{
  public:
    virtual ~MemoryPattern() = default;

    /** Generates the accesses for the (now, now + dt] interval. */
    virtual void GenerateAccesses(sim::TimePoint now, sim::Duration dt,
                                  node::TieredMemory& mem) = 0;

    virtual std::string name() const = 0;
};

/** Configuration for ZipfMemoryPattern. */
struct ZipfMemoryConfig {
    std::string name = "ObjectStore";
    std::size_t num_batches = 256;
    double skew = 0.99;
    /**
     * Total access intensity. Calibrated so the zipf head saturates the
     * 300 ms access bit while the tail does not — the regime in which
     * variable-rate scanning both saves scans and ranks batches better
     * than saturated max-frequency bits.
     */
    double accesses_per_sec = 2500.0;
    /** Interval between popularity churn events; zero disables churn. */
    sim::Duration churn_interval = sim::Seconds(60);
    /** Fraction of the rank->batch mapping re-assigned per churn. */
    double churn_fraction = 0.05;
    /** Interval between full working-set shifts; zero disables. */
    sim::Duration shift_interval{0};
    /** Interval between full sweeps touching every batch; zero disables. */
    sim::Duration sweep_interval{0};
    std::uint64_t seed = 13;
};

/** Zipf-popularity access generator with churn, shifts, and sweeps. */
class ZipfMemoryPattern : public MemoryPattern
{
  public:
    explicit ZipfMemoryPattern(const ZipfMemoryConfig& config);

    void GenerateAccesses(sim::TimePoint now, sim::Duration dt,
                          node::TieredMemory& mem) override;
    std::string name() const override { return config_.name; }

    /** Batch id currently mapped to a popularity rank (for tests). */
    std::size_t BatchForRank(std::size_t rank) const
    {
        return perm_.ItemFor(rank);
    }

    /** Forces a full popularity reshuffle (phase change). */
    void Reshuffle() { perm_.Shuffle(rng_); }

  private:
    ZipfMemoryConfig config_;
    sim::Rng rng_;
    sim::ZipfSampler zipf_;
    sim::RankPermutation perm_;
    sim::TimePoint next_churn_;
    sim::TimePoint next_shift_;
    sim::TimePoint next_sweep_;
    double carry_ = 0.0;
};

/** The paper's three Figure 7 patterns. */
ZipfMemoryConfig ObjectStoreMemConfig(std::uint64_t seed = 13);
ZipfMemoryConfig SqlOltpMemConfig(std::uint64_t seed = 17);
ZipfMemoryConfig SpecJbbMemConfig(std::uint64_t seed = 19);

/**
 * Figure 8 wrapper: runs the inner pattern for `active` time, then sleeps
 * for `idle` time, reshuffling the inner pattern's popularity at each
 * reactivation so access patterns shift frequently and rapidly.
 */
class OscillatingPattern : public MemoryPattern
{
  public:
    OscillatingPattern(std::unique_ptr<ZipfMemoryPattern> inner,
                       sim::Duration active, sim::Duration idle);

    void GenerateAccesses(sim::TimePoint now, sim::Duration dt,
                          node::TieredMemory& mem) override;
    std::string name() const override;

    bool active() const { return active_now_; }

  private:
    std::unique_ptr<ZipfMemoryPattern> inner_;
    sim::Duration active_span_;
    sim::Duration idle_span_;
    bool active_now_ = true;
    sim::TimePoint phase_end_;
};

}  // namespace sol::workloads
