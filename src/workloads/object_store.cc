#include "workloads/object_store.h"

#include <algorithm>
#include <cmath>

namespace sol::workloads {

ObjectStore::ObjectStore(const ObjectStoreConfig& config)
    : config_(config), rng_(config.seed)
{
    // Stagger the initial requests across one think interval.
    thinking_.reserve(static_cast<std::size_t>(config_.num_clients));
    for (int i = 0; i < config_.num_clients; ++i) {
        thinking_.push_back(sim::SecondsF(
            rng_.NextDouble() * sim::ToSeconds(config_.think_mean)));
    }
    activity_.ipc = config_.ipc;
    activity_.stall_fraction = config_.stall_fraction;
}

void
ObjectStore::Advance(sim::TimePoint now, sim::Duration dt,
                     const node::CpuResources& res)
{
    const sim::TimePoint tick_end = now + dt;
    elapsed_ += dt;

    // Clients whose think time expired issue their next request.
    std::size_t write_pos = 0;
    for (std::size_t i = 0; i < thinking_.size(); ++i) {
        if (thinking_[i] <= tick_end) {
            const double demand = config_.request_gcycles *
                                  (0.5 + rng_.NextExponential(2.0));
            queue_.push_back(Request{thinking_[i], demand});
        } else {
            thinking_[write_pos++] = thinking_[i];
        }
    }
    thinking_.resize(write_pos);

    // Serve the head of the queue, one request per core.
    const auto servers = std::min<std::size_t>(
        queue_.size(),
        static_cast<std::size_t>(std::max(res.granted_cores, 0)));
    const double per_core_capacity =
        res.freq_ghz * sim::ToSeconds(dt);  // Gcycles per core per tick.
    std::size_t completed = 0;
    for (std::size_t i = 0; i < servers; ++i) {
        Request& req = queue_[i];
        req.remaining_gcycles -= per_core_capacity;
        if (req.remaining_gcycles <= 0.0) {
            latencies_.push_back(sim::ToMillis(tick_end - req.arrival));
            // The client thinks, then issues its next request.
            const double think = rng_.NextExponential(
                1.0 / sim::ToSeconds(config_.think_mean));
            thinking_.push_back(tick_end + sim::SecondsF(think));
            ++completed;
        }
    }
    for (std::size_t i = 0; i < completed; ++i) {
        queue_.pop_front();
    }

    const double granted =
        std::max(1.0, static_cast<double>(res.granted_cores));
    activity_.utilization = static_cast<double>(servers) / granted;
    activity_.cores_demand = static_cast<double>(
        std::min<std::size_t>(queue_.size() + completed, 64));
    activity_.ipc = config_.ipc;
    activity_.stall_fraction = config_.stall_fraction;
}

double
ObjectStore::PerformanceValue() const
{
    if (latencies_.empty()) {
        return 0.0;
    }
    std::vector<double> sorted(latencies_);
    std::sort(sorted.begin(), sorted.end());
    const auto rank = static_cast<std::size_t>(
        0.99 * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[rank];
}

double
ObjectStore::ThroughputPerSec() const
{
    const double secs = sim::ToSeconds(elapsed_);
    if (secs <= 0.0) {
        return 0.0;
    }
    return static_cast<double>(latencies_.size()) / secs;
}

}  // namespace sol::workloads
