/**
 * @file
 * The paper's "ObjectStore" workload: a distributed key-value server
 * running at high load that always benefits from overclocking.
 *
 * Modeled as a closed-loop client population (the standard KV-benchmark
 * shape): each client issues a request, waits for the response, thinks,
 * and repeats. At nominal frequency the server saturates, so raising the
 * frequency genuinely increases throughput — and therefore IPS, the
 * signal SmartOverclock learns from — while cutting P99 latency.
 */
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "node/cpu_workload.h"
#include "sim/rng.h"

namespace sol::workloads {

/** Configuration for ObjectStore. */
struct ObjectStoreConfig {
    /** Closed-loop client population. */
    int num_clients = 48;
    /** Mean client think time between requests. */
    sim::Duration think_mean = sim::Millis(30);
    /** Mean per-request service demand in giga-cycles of core time. */
    double request_gcycles = 0.012;
    double ipc = 1.2;
    double stall_fraction = 0.15;
    std::uint64_t seed = 42;
};

/** Closed-loop key-value server. */
class ObjectStore : public node::CpuWorkload
{
  public:
    explicit ObjectStore(const ObjectStoreConfig& config = {});

    void Advance(sim::TimePoint now, sim::Duration dt,
                 const node::CpuResources& res) override;
    node::CpuActivity Activity() const override { return activity_; }
    std::string name() const override { return "ObjectStore"; }

    /** P99 request latency in milliseconds (lower is better). */
    double PerformanceValue() const override;
    std::string PerformanceUnit() const override { return "ms(P99)"; }
    bool PerformanceHigherIsBetter() const override { return false; }

    /** Mean throughput in requests per second. */
    double ThroughputPerSec() const;

    std::uint64_t completed_requests() const { return latencies_.size(); }
    std::size_t queue_length() const { return queue_.size(); }

  private:
    struct Request {
        sim::TimePoint arrival;
        double remaining_gcycles;
    };

    ObjectStoreConfig config_;
    sim::Rng rng_;
    /** Think-phase clients, keyed by when their next request fires. */
    std::vector<sim::TimePoint> thinking_;
    std::deque<Request> queue_;
    std::vector<double> latencies_;  ///< Milliseconds.
    sim::Duration elapsed_{0};
    node::CpuActivity activity_;
};

}  // namespace sol::workloads
