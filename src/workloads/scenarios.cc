// determinism-lint: allow-file(wall-clock) -- the two steady_clock
// reads time the run for the human-facing report only; wall_seconds is
// excluded from the behavior vector that SameBehavior() compares.
#include "workloads/scenarios.h"

#include <algorithm>
#include <chrono>

#include "core/runtime_stats.h"
#include "fleet/fleet_runner.h"
#include "telemetry/latency_histogram.h"

namespace sol::workloads {

namespace {

/** Instant at a fraction of the horizon (storm windows and curve
 *  breakpoints scale with the run length, so smoke and full modes see
 *  the same story at different magnifications). */
sim::TimePoint
Frac(sim::Duration horizon, double fraction)
{
    return sim::TimePoint(static_cast<std::int64_t>(
        static_cast<double>(horizon.count()) * fraction));
}

sim::Duration
FracSpan(sim::Duration horizon, double fraction)
{
    return sim::Duration(Frac(horizon, fraction));
}

std::vector<Scenario>
BuildLibrary()
{
    std::vector<Scenario> library;

    // --- steady_state: the flat-load control. Full demand, uniform
    // popularity, no storms — byte-identical to an unmodulated fleet
    // (tests/scenario_test.cc locks that equivalence), so drift here
    // means the *runtime* changed, not the workload.
    {
        Scenario s;
        s.name = "steady_state";
        s.summary = "flat full demand, uniform tenants, no faults "
                    "(control: equals the unmodulated fleet)";
        s.base_seed = 11;
        s.build_driver = [](const ScenarioShape&,
                            std::size_t num_tenants) {
            TraceDriverConfig d;
            d.seed = 11;
            d.num_tenants = num_tenants;
            d.curve = {DemandCurveKind::kFlat, 1.0, 1.0};
            return d;
        };
        s.expect_silent = true;
        library.push_back(std::move(s));
    }

    // --- zipf_hotspots: skewed tenant popularity. Hot tenants keep
    // the 10 ms cadence, cold ones stretch to 3x — non-uniform epoch
    // rates and arbiter pressure concentrated on the low-index nodes.
    {
        Scenario s;
        s.name = "zipf_hotspots";
        s.summary = "Zipf(1.0) tenant popularity; cold tenants collect "
                    "3x slower, load skews onto the hot shards";
        s.base_seed = 12;
        s.build_driver = [](const ScenarioShape&,
                            std::size_t num_tenants) {
            TraceDriverConfig d;
            d.seed = 12;
            d.num_tenants = num_tenants;
            d.zipf_skew = 1.0;
            d.cadence_stretch = 3.0;
            d.curve = {DemandCurveKind::kFlat, 1.0, 1.0};
            return d;
        };
        s.expected_alerts = {"epoch_p99_high"};
        library.push_back(std::move(s));
    }

    // --- diurnal_cycle: two morning-peak cycles over the horizon.
    // Trough demand short-circuits epochs (sparse data -> default
    // actions); crests refill them and restore model-driven actuation.
    {
        Scenario s;
        s.name = "diurnal_cycle";
        s.summary = "triangle-wave demand 0.3..1.0, two cycles; epochs "
                    "thin out at the trough, refill at the crest";
        s.base_seed = 13;
        s.build_driver = [](const ScenarioShape& shape,
                            std::size_t num_tenants) {
            TraceDriverConfig d;
            d.seed = 13;
            d.num_tenants = num_tenants;
            d.curve.kind = DemandCurveKind::kDiurnal;
            d.curve.base = 0.3;
            d.curve.peak = 1.0;
            d.curve.period = FracSpan(shape.horizon, 0.5);
            return d;
        };
        library.push_back(std::move(s));
    }

    // --- flash_crowd: quiet half-demand fleet, then a burst window at
    // full demand with doubled actuation pressure. Outside the flash
    // every epoch short-circuits (no model-driven expands at all);
    // inside it the expand probability jumps to 0.6 and the arbiter
    // sees the conflict/denial spike.
    {
        Scenario s;
        s.name = "flash_crowd";
        s.summary = "demand 0.5 with a full-demand flash in the 40-60% "
                    "window at 2x actuation pressure";
        s.base_seed = 14;
        s.build_driver = [](const ScenarioShape& shape,
                            std::size_t num_tenants) {
            TraceDriverConfig d;
            d.seed = 14;
            d.num_tenants = num_tenants;
            d.curve.kind = DemandCurveKind::kFlashCrowd;
            d.curve.base = 0.5;
            d.curve.peak = 1.0;
            d.curve.at = Frac(shape.horizon, 0.4);
            d.curve.duration = FracSpan(shape.horizon, 0.2);
            d.pressure_gain = 2.0;
            return d;
        };
        s.customize_node = [](cluster::MultiAgentNodeConfig& node) {
            node.synthetic.expand_fraction = 0.3;
        };
        library.push_back(std::move(s));
    }

    // --- invalid_storm (adversarial): a correlated invalid-data storm
    // across the first half of the fleet's shards. Validation rejects
    // ~95% of their reads, epochs die on the max_epoch_time deadline,
    // and the affected agents fall back to default actions until the
    // storm passes.
    {
        Scenario s;
        s.name = "invalid_storm";
        s.summary = "correlated 95% invalid-data storm over half the "
                    "fleet's shards in the 30-60% window";
        s.adversarial = true;
        s.base_seed = 15;
        s.build_driver = [](const ScenarioShape& shape,
                            std::size_t num_tenants) {
            TraceDriverConfig d;
            d.seed = 15;
            d.num_tenants = num_tenants;
            d.curve = {DemandCurveKind::kFlat, 1.0, 1.0};
            StormWindow storm;
            storm.from = Frac(shape.horizon, 0.3);
            storm.until = Frac(shape.horizon, 0.6);
            storm.tenant_begin = 0;
            storm.tenant_end = num_tenants / 2;
            storm.invalid_rate = 0.95;
            d.storms.push_back(storm);
            return d;
        };
        s.expected_alerts = {"epoch_p99_high"};
        library.push_back(std::move(s));
    }

    // --- cascading_safeguards (adversarial): synthetics contend on
    // the *coupled* CPU domains (frequency <-> cores, the arbiter's
    // default coupling — the surface the real agents study), at a
    // fast assessment cadence; a mid-run actuator-failure storm over
    // half the fleet trips their safeguards, halts actuation, floods
    // mitigations, and churns denials while holds unwind. Recovery
    // after the window exercises the resume path fleet-wide.
    {
        Scenario s;
        s.name = "cascading_safeguards";
        s.summary = "coupled-domain pressure + actuator-failure storm "
                    "over half the fleet: safeguard trips cascade, "
                    "then recover";
        s.adversarial = true;
        s.base_seed = 16;
        s.build_driver = [](const ScenarioShape& shape,
                            std::size_t num_tenants) {
            TraceDriverConfig d;
            d.seed = 16;
            d.num_tenants = num_tenants;
            d.curve = {DemandCurveKind::kFlat, 1.0, 1.0};
            StormWindow storm;
            storm.from = Frac(shape.horizon, 0.4);
            storm.until = Frac(shape.horizon, 0.7);
            storm.tenant_begin = 0;
            storm.tenant_end = num_tenants / 2;
            storm.fail_actuator = true;
            d.storms.push_back(storm);
            return d;
        };
        s.customize_node = [](cluster::MultiAgentNodeConfig& node) {
            node.synthetic.assess_actuator_interval = sim::Millis(200);
            node.synthetic.expand_fraction = 0.35;
            node.customize_synthetic =
                [](std::size_t i, cluster::SyntheticAgentConfig& cfg) {
                    cfg.domain =
                        i % 2 == 0
                            ? core::ActuationDomain::kCpuFrequency
                            : core::ActuationDomain::kCpuCores;
                };
        };
        s.expected_alerts = {"arbiter_denial_ratio", "halted_time_burn",
                             "safeguard_trip_rate"};
        library.push_back(std::move(s));
    }

    // --- model_degradation (adversarial): half the fleet's models go
    // bad mid-run. Assessments fail, the model safeguard intercepts
    // every prediction (defaults delivered, learning continues), and
    // the fleet recovers the moment the window closes.
    {
        Scenario s;
        s.name = "model_degradation";
        s.summary = "mid-run model degradation over half the fleet in "
                    "the 35-75% window: interceptions, then recovery";
        s.adversarial = true;
        s.base_seed = 17;
        s.build_driver = [](const ScenarioShape& shape,
                            std::size_t num_tenants) {
            TraceDriverConfig d;
            d.seed = 17;
            d.num_tenants = num_tenants;
            d.curve = {DemandCurveKind::kFlat, 1.0, 1.0};
            StormWindow storm;
            storm.from = Frac(shape.horizon, 0.35);
            storm.until = Frac(shape.horizon, 0.75);
            storm.tenant_begin = 0;
            storm.tenant_end = num_tenants / 2;
            storm.degrade_model = true;
            d.storms.push_back(storm);
            return d;
        };
        s.expected_alerts = {"model_failure_rate"};
        library.push_back(std::move(s));
    }

    return library;
}

}  // namespace

std::uint64_t
ScenarioResult::Counter(const std::string& key) const
{
    for (const auto& [name, value] : behavior) {
        if (name == key) {
            return value;
        }
    }
    return 0;
}

std::vector<std::string>
ScenarioResult::FiredRules() const
{
    std::vector<std::string> fired;
    for (const telemetry::AlertEvent& event : alerts) {
        if (event.firing) {
            fired.push_back(event.rule);
        }
    }
    std::sort(fired.begin(), fired.end());
    fired.erase(std::unique(fired.begin(), fired.end()), fired.end());
    return fired;
}

const std::vector<Scenario>&
ScenarioLibrary()
{
    static const std::vector<Scenario> library = BuildLibrary();
    return library;
}

const Scenario*
FindScenario(const std::string& name)
{
    for (const Scenario& scenario : ScenarioLibrary()) {
        if (scenario.name == name) {
            return &scenario;
        }
    }
    return nullptr;
}

ScenarioResult
RunScenario(const Scenario& scenario, const ScenarioOptions& options)
{
    const ScenarioShape shape =
        options.smoke ? scenario.smoke : scenario.full;
    const std::size_t num_tenants =
        shape.num_nodes * shape.synthetic_agents;

    TraceDriverConfig driver_config;
    if (scenario.build_driver) {
        driver_config = scenario.build_driver(shape, num_tenants);
    }
    driver_config.num_tenants = num_tenants;
    const TraceDriver driver(driver_config);

    fleet::FleetConfig fleet;
    fleet.num_nodes = shape.num_nodes;
    fleet.num_shards = shape.num_nodes;  // Fixed: one shard per node.
    fleet.num_threads = options.num_threads;
    fleet.base_seed = scenario.base_seed;
    fleet.window = sim::Millis(100);
    fleet.queue_pending_limit = std::size_t{1} << 20;
    fleet.node.synthetic_agents = shape.synthetic_agents;
    fleet.node.trace_driver = &driver;
    if (scenario.customize_node) {
        scenario.customize_node(fleet.node);
    }

    telemetry::TimeSeriesStore health;
    telemetry::AlertEngine engine;
    if (options.health) {
        engine.AddRules(telemetry::DefaultFleetAlertRules());
        fleet.health = &health;
        fleet.alerts = &engine;
    }

    fleet::ShardedFleetRunner runner(fleet);
    const auto start = std::chrono::steady_clock::now();
    runner.Run(shape.horizon);
    const auto end = std::chrono::steady_clock::now();
    runner.Stop();

    // Fleet-wide roll-ups: runtime counters and the epoch-latency
    // distribution summed/merged over every agent of every node, plus
    // the synthetic actuators' arbiter-facing accounting.
    core::RuntimeStats agents;
    telemetry::LatencyHistogram epoch_hist;
    std::uint64_t expands_admitted = 0;
    std::uint64_t expands_denied = 0;
    for (std::size_t i = 0; i < runner.num_nodes(); ++i) {
        cluster::MultiAgentNode& node = runner.node(i);
        agents.Accumulate(node.AggregateStats());
        epoch_hist.Merge(node.EpochLatencyHistogram());
        for (std::size_t j = 0; j < node.num_synthetic_agents(); ++j) {
            const cluster::SyntheticActuator& actuator =
                node.synthetic_agent(j).actuator();
            expands_admitted += actuator.expands_admitted();
            expands_denied += actuator.expands_denied();
        }
    }
    const cluster::FleetStats fleet_stats = runner.Stats();
    const sim::EventQueueStats queue = runner.QueueStats();
    const telemetry::LatencySnapshot latency = epoch_hist.Snapshot();

    ScenarioResult result;
    result.name = scenario.name;
    result.threads = runner.num_threads();
    result.shape = shape;
    result.fleet_trace_hash = runner.fleet_trace_hash();
    result.driver_hash = driver.trace_hash();
    result.total_events = runner.total_executed();
    result.wall_seconds =
        std::chrono::duration<double>(end - start).count();
    result.behavior = {
        {"agents", fleet_stats.total_agents},
        {"epochs", agents.epochs},
        {"model_updates", agents.model_updates},
        {"short_circuit_epochs", agents.short_circuit_epochs},
        {"samples_collected", agents.samples_collected},
        {"invalid_samples", agents.invalid_samples},
        {"model_assessments", agents.model_assessments},
        {"failed_assessments", agents.failed_assessments},
        {"intercepted_predictions", agents.intercepted_predictions},
        {"predictions_delivered", agents.predictions_delivered},
        {"default_predictions", agents.default_predictions},
        {"expired_predictions", agents.expired_predictions},
        {"dropped_while_halted", agents.dropped_while_halted},
        {"actions_taken", agents.actions_taken},
        {"actions_with_prediction", agents.actions_with_prediction},
        {"actuator_timeouts", agents.actuator_timeouts},
        {"actuator_assessments", agents.actuator_assessments},
        {"safeguard_triggers", agents.safeguard_triggers},
        {"mitigations", agents.mitigations},
        {"halted_ns",
         static_cast<std::uint64_t>(
             agents.halted_time.count() < 0 ? 0
                                            : agents.halted_time.count())},
        {"arbiter_requests", fleet_stats.arbiter_requests},
        {"conflicts_observed", fleet_stats.conflicts_observed},
        {"conflicts_resolved", fleet_stats.conflicts_resolved},
        {"expands_admitted", expands_admitted},
        {"expands_denied", expands_denied},
        {"queue_dropped", queue.dropped},
        {"total_events", result.total_events},
        {"epoch_p50_ns", latency.p50_ns},
        {"epoch_p90_ns", latency.p90_ns},
        {"epoch_p99_ns", latency.p99_ns},
        {"epoch_p999_ns", latency.p999_ns},
    };
    if (options.health) {
        result.timeline_hash = health.timeline_hash();
        result.health_samples = health.total_appended();
        result.alerts = engine.events();
        result.slos = engine.SloStatuses(health);
        result.health_json = telemetry::HealthReportWriter::ToString(
            "scenario_" + scenario.name, health, engine);
    }
    return result;
}

bool
SameBehavior(const ScenarioResult& a, const ScenarioResult& b)
{
    return a.name == b.name &&
           a.fleet_trace_hash == b.fleet_trace_hash &&
           a.driver_hash == b.driver_hash &&
           a.total_events == b.total_events && a.behavior == b.behavior;
}

bool
SameHealth(const ScenarioResult& a, const ScenarioResult& b)
{
    return a.timeline_hash == b.timeline_hash &&
           a.health_samples == b.health_samples && a.alerts == b.alerts;
}

}  // namespace sol::workloads
