/**
 * @file
 * Named trace-driven workload scenarios with behavior verdicts.
 *
 * A Scenario binds a fleet shape (nodes x synthetics, horizon) to a
 * TraceDriver demand description and runs it on the sharded fleet
 * executor, harvesting *behavioral* counters — safeguard triggers,
 * arbiter conflicts and denials, prediction drops, short-circuit
 * epochs, epoch-latency percentiles — instead of just throughput. The
 * library below ships the realistic shapes (steady state, Zipfian
 * hotspots, diurnal cycles, flash crowds) and the adversarial ones
 * (correlated invalid-data storms across a shard, cascading safeguard
 * trips under coupled-domain pressure, mid-run model degradation).
 *
 * Every scenario is byte-deterministic: the TraceDriver is a pure
 * function of virtual time and the fleet runner is thread-count
 * invariant, so a scenario's fleet trace hash and its entire behavior
 * counter vector are identical at 1/2/8 worker threads and across
 * repeated runs. bench/scenario_suite.cc turns that into a CI gate:
 * each scenario emits BENCH_scenario_<name>.json whose behavior table
 * is diffed against the committed golden baseline by
 * tools/check_bench_verdicts.py — a change in *behavior*, not just
 * speed, fails the build. docs/SCENARIOS.md catalogs the knobs and the
 * baseline-update procedure.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "cluster/multi_agent_node.h"
#include "sim/time.h"
#include "telemetry/alerting.h"
#include "telemetry/timeseries.h"
#include "workloads/trace_driver.h"

namespace sol::workloads {

/** Fleet sizing one scenario mode runs at. */
struct ScenarioShape {
    std::size_t num_nodes = 4;
    std::size_t synthetic_agents = 8;  ///< Plus the 4 real agents.
    sim::Duration horizon = sim::Seconds(2);
};

/** One named workload scenario. */
struct Scenario {
    std::string name;
    std::string summary;
    bool adversarial = false;

    /** Full-bench sizing. */
    ScenarioShape full{16, 24, sim::Seconds(8)};
    /** CI smoke sizing (committed baselines are recorded in this
     *  mode, so it must stay fixed). */
    ScenarioShape smoke{4, 8, sim::Seconds(2)};

    std::uint64_t base_seed = 1;

    /** Builds the demand description for a shape. num_tenants is
     *  shape.num_nodes * shape.synthetic_agents (node-major). */
    std::function<TraceDriverConfig(const ScenarioShape& shape,
                                    std::size_t num_tenants)>
        build_driver;

    /** Optional extra node-template customization (synthetic cadence,
     *  conflict domains, runtime options) applied after the defaults. */
    std::function<void(cluster::MultiAgentNodeConfig&)> customize_node;

    /**
     * Alert rules from telemetry::DefaultFleetAlertRules() that MUST
     * fire at least once when this scenario runs in smoke mode with
     * health sampling on, and — by omission — the rules that must stay
     * silent. steady_state expects none: the default pack is
     * calibrated so the control scenario never pages.
     */
    std::vector<std::string> expected_alerts;

    /** True when the scenario must produce NO alert transitions at
     *  all (the steady_state control). Stronger than an empty
     *  expected_alerts, which only means "nothing required". */
    bool expect_silent = false;
};

/** Execution options for one scenario run. */
struct ScenarioOptions {
    std::size_t num_threads = 1;
    /** True runs the smoke shape (the committed-baseline mode). */
    bool smoke = false;
    /** Sample fleet health timelines and evaluate the default alert
     *  pack at every window barrier. Observe-only: the fleet trace
     *  hash and behavior vector are identical either way. */
    bool health = true;
};

/** Machine-readable outcome of one scenario run. */
struct ScenarioResult {
    std::string name;
    std::size_t threads = 0;
    ScenarioShape shape;
    std::uint64_t fleet_trace_hash = 0;
    std::uint64_t driver_hash = 0;
    std::uint64_t total_events = 0;
    double wall_seconds = 0.0;

    /**
     * Behavior verdict counters in a fixed order (stable across runs,
     * so vectors compare and serialize deterministically): runtime
     * counters summed over every agent of every node, arbiter and
     * synthetic-actuator accounting, queue health, and the merged
     * epoch-latency percentiles (virtual ns).
     */
    std::vector<std::pair<std::string, std::uint64_t>> behavior;

    /** Value of one behavior counter (0 when absent). */
    std::uint64_t Counter(const std::string& key) const;

    /** FNV-1a hash of every health sample (0 when health was off). */
    std::uint64_t timeline_hash = 0;
    /** Total health samples appended across all series. */
    std::uint64_t health_samples = 0;
    /** Every alert transition, in virtual-time order. */
    std::vector<telemetry::AlertEvent> alerts;
    /** Per-SLO budget accounting at end of run. */
    std::vector<telemetry::SloStatus> slos;
    /** Full HEALTH_<name>.json document (empty when health was off). */
    std::string health_json;

    /** Sorted, deduplicated names of rules that fired at least once. */
    std::vector<std::string> FiredRules() const;
};

/** The scenario library (>= 6 scenarios, >= 3 adversarial). */
const std::vector<Scenario>& ScenarioLibrary();

/** Library scenario by name; nullptr when unknown. */
const Scenario* FindScenario(const std::string& name);

/** Runs one scenario on a ShardedFleetRunner (one shard per node). */
ScenarioResult RunScenario(const Scenario& scenario,
                           const ScenarioOptions& options);

/** True when two runs agree on every determinism-gated field: trace
 *  hashes, event totals, and the full behavior vector. */
bool SameBehavior(const ScenarioResult& a, const ScenarioResult& b);

/** True when two runs agree on the health timeline hash, the sample
 *  count, and the full alert transition log (timestamps included). */
bool SameHealth(const ScenarioResult& a, const ScenarioResult& b);

}  // namespace sol::workloads
