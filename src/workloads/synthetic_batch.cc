#include "workloads/synthetic_batch.h"

#include <algorithm>

namespace sol::workloads {

SyntheticBatch::SyntheticBatch(const SyntheticBatchConfig& config)
    : config_(config), next_arrival_(config.first_arrival)
{
    activity_.ipc = config_.ipc;
    activity_.stall_fraction = config_.stall_fraction;
    activity_.utilization = config_.idle_utilization;
}

void
SyntheticBatch::Advance(sim::TimePoint now, sim::Duration dt,
                        const node::CpuResources& res)
{
    const sim::TimePoint tick_end = now + dt;
    if (pending_work_ <= 0.0 && next_arrival_ <= tick_end) {
        pending_work_ = config_.work_gcycles;
        current_batch_arrival_ = next_arrival_;
        next_arrival_ += config_.period;
    }

    if (pending_work_ > 0.0) {
        const double capacity = res.freq_ghz *
                                static_cast<double>(res.granted_cores) *
                                sim::ToSeconds(dt);
        pending_work_ -= capacity;
        if (pending_work_ <= 0.0) {
            pending_work_ = 0.0;
            completions_.push_back(
                sim::ToSeconds(tick_end - current_batch_arrival_));
        }
        activity_.utilization = 1.0;
        activity_.cores_demand = static_cast<double>(res.granted_cores);
    } else {
        activity_.utilization = config_.idle_utilization;
        activity_.cores_demand = config_.idle_utilization;
    }
    activity_.ipc = config_.ipc;
    activity_.stall_fraction =
        pending_work_ > 0.0 ? config_.stall_fraction : 0.9;
}

double
SyntheticBatch::PerformanceValue() const
{
    if (completions_.empty()) {
        return 0.0;
    }
    double total = 0.0;
    for (const double c : completions_) {
        total += c;
    }
    return total / static_cast<double>(completions_.size());
}

}  // namespace sol::workloads
