/**
 * @file
 * The paper's "Synthetic" workload (section 6.2): a server that
 * periodically receives a batch of compute-intensive requests, processes
 * it as fast as the granted cores and frequency allow, then idles until
 * the next batch. It only benefits from overclocking during the
 * processing phases.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "node/cpu_workload.h"

namespace sol::workloads {

/** Configuration for SyntheticBatch. */
struct SyntheticBatchConfig {
    /** Interval between batch arrivals. */
    sim::Duration period = sim::Seconds(100);
    /**
     * Work per batch in giga-cycles of core time. At nominal frequency
     * f GHz with c cores the batch takes work / (f * c) seconds.
     */
    double work_gcycles = 60.0;
    /** Time of the first batch arrival. */
    sim::Duration first_arrival = sim::Seconds(1);
    double ipc = 2.0;
    double stall_fraction = 0.05;
    /** Background activity while idle (telemetry daemons etc.). */
    double idle_utilization = 0.01;
};

/** Periodic compute-burst workload. */
class SyntheticBatch : public node::CpuWorkload
{
  public:
    explicit SyntheticBatch(const SyntheticBatchConfig& config = {});

    void Advance(sim::TimePoint now, sim::Duration dt,
                 const node::CpuResources& res) override;
    node::CpuActivity Activity() const override { return activity_; }
    std::string name() const override { return "Synthetic"; }

    /** Mean batch completion time (arrival to finish), seconds. */
    double PerformanceValue() const override;
    std::string PerformanceUnit() const override { return "s/batch"; }
    bool PerformanceHigherIsBetter() const override { return false; }

    std::uint64_t batches_completed() const { return completions_.size(); }
    bool busy() const { return pending_work_ > 0.0; }

  private:
    SyntheticBatchConfig config_;
    sim::TimePoint next_arrival_;
    sim::TimePoint current_batch_arrival_{0};
    double pending_work_ = 0.0;
    std::vector<double> completions_;  ///< Completion latencies, seconds.
    node::CpuActivity activity_;
};

}  // namespace sol::workloads
