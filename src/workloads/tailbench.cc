#include "workloads/tailbench.h"

#include <algorithm>
#include <cmath>

namespace sol::workloads {

TailBenchConfig
ImageDnnConfig(std::uint64_t seed)
{
    TailBenchConfig config;
    config.name = "image-dnn";
    config.mean_service_ms = 20.0;
    config.on_rate_per_sec = 150.0;
    config.off_rate_per_sec = 10.0;
    config.mean_on = sim::Millis(2000);
    config.mean_off = sim::Millis(2000);
    config.vcpus = 6;
    config.seed = seed;
    return config;
}

TailBenchConfig
MosesConfig(std::uint64_t seed)
{
    TailBenchConfig config;
    config.name = "moses";
    config.mean_service_ms = 8.0;
    config.on_rate_per_sec = 420.0;
    config.off_rate_per_sec = 30.0;
    config.mean_on = sim::Millis(600);
    config.mean_off = sim::Millis(700);
    config.vcpus = 6;
    config.stall_fraction = 0.3;
    config.seed = seed;
    return config;
}

TailBench::TailBench(const TailBenchConfig& config)
    : config_(config), rng_(config.seed)
{
    phase_end_ = sim::SecondsF(
        rng_.NextExponential(1.0 / sim::ToSeconds(config_.mean_off)));
    next_arrival_ = sim::SecondsF(
        rng_.NextExponential(config_.off_rate_per_sec));
    activity_.ipc = config_.ipc;
    activity_.stall_fraction = config_.stall_fraction;
}

void
TailBench::MaybeTogglePhase(sim::TimePoint tick_end)
{
    while (phase_end_ <= tick_end) {
        in_burst_ = !in_burst_;
        const sim::Duration mean =
            in_burst_ ? config_.mean_on : config_.mean_off;
        phase_end_ += sim::SecondsF(
            rng_.NextExponential(1.0 / sim::ToSeconds(mean)));
    }
}

void
TailBench::Advance(sim::TimePoint now, sim::Duration dt,
                   const node::CpuResources& res)
{
    const sim::TimePoint tick_end = now + dt;
    MaybeTogglePhase(tick_end);

    const double rate =
        in_burst_ ? config_.on_rate_per_sec : config_.off_rate_per_sec;
    while (next_arrival_ <= tick_end) {
        const double service_secs =
            rng_.NextExponential(1000.0 / config_.mean_service_ms);
        queue_.push_back(Request{next_arrival_, service_secs});
        next_arrival_ += sim::SecondsF(rng_.NextExponential(rate));
    }

    const auto servers = std::min<std::size_t>(
        queue_.size(),
        static_cast<std::size_t>(std::max(res.granted_cores, 0)));
    // Service rate scales mildly with frequency relative to nominal.
    const double speed = res.freq_ghz / 1.5;
    const double slice = sim::ToSeconds(dt) * speed;
    std::size_t completed = 0;
    for (std::size_t i = 0; i < servers; ++i) {
        Request& req = queue_[i];
        req.remaining_secs -= slice;
        if (req.remaining_secs <= 0.0) {
            const double latency_ms = sim::ToMillis(tick_end - req.arrival);
            all_latencies_.push_back(latency_ms);
            recent_.emplace_back(tick_end, latency_ms);
            ++completed;
        }
    }
    for (std::size_t i = 0; i < completed; ++i) {
        queue_.pop_front();
    }
    total_completed_ += completed;

    // Trim the windowed history so memory stays bounded.
    const sim::TimePoint keep_after =
        tick_end > sim::Seconds(30) ? tick_end - sim::Seconds(30)
                                    : sim::TimePoint(0);
    while (!recent_.empty() && recent_.front().first < keep_after) {
        recent_.pop_front();
    }

    const double granted =
        std::max(1.0, static_cast<double>(res.granted_cores));
    activity_.utilization = static_cast<double>(servers) / granted;
    activity_.cores_demand = static_cast<double>(
        std::min<std::size_t>(queue_.size() + completed,
                              static_cast<std::size_t>(config_.vcpus)));
    activity_.ipc = config_.ipc;
    activity_.stall_fraction = config_.stall_fraction;
}

double
TailBench::PerformanceValue() const
{
    if (all_latencies_.empty()) {
        return 0.0;
    }
    std::vector<double> sorted(all_latencies_);
    std::sort(sorted.begin(), sorted.end());
    const auto rank = static_cast<std::size_t>(
        0.99 * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[rank];
}

double
TailBench::P99InWindow(sim::TimePoint now, sim::Duration window) const
{
    const sim::TimePoint cutoff =
        now > window ? now - window : sim::TimePoint(0);
    std::vector<double> values;
    for (const auto& [done, ms] : recent_) {
        if (done >= cutoff) {
            values.push_back(ms);
        }
    }
    if (values.empty()) {
        return 0.0;
    }
    std::sort(values.begin(), values.end());
    const auto rank = static_cast<std::size_t>(
        0.99 * static_cast<double>(values.size() - 1) + 0.5);
    return values[rank];
}

}  // namespace sol::workloads
