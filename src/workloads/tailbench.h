/**
 * @file
 * TailBench-style latency-critical workloads (image-dnn, moses).
 *
 * These model the primary-VM workloads in the SmartHarvest experiments
 * (paper section 6.3): bursty ON/OFF request arrivals, each request
 * occupying one core for an exponentially distributed service time. When
 * the harvesting agent grants the VM too few cores, requests queue and
 * P99 latency degrades — the QoS signal the safeguards protect.
 */
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "node/cpu_workload.h"
#include "sim/rng.h"

namespace sol::workloads {

/** Configuration for a TailBench-style workload. */
struct TailBenchConfig {
    std::string name = "image-dnn";
    double mean_service_ms = 20.0;     ///< Per-request core time.
    double on_rate_per_sec = 150.0;    ///< Arrival rate in bursts.
    double off_rate_per_sec = 10.0;    ///< Arrival rate between bursts.
    sim::Duration mean_on = sim::Millis(2000);
    sim::Duration mean_off = sim::Millis(2000);
    int vcpus = 6;                     ///< Virtual cores of the VM.
    double ipc = 1.0;
    double stall_fraction = 0.2;
    std::uint64_t seed = 7;
};

/** Returns the paper's image-dnn profile. */
TailBenchConfig ImageDnnConfig(std::uint64_t seed = 7);

/** Returns the paper's moses profile (shorter, burstier requests). */
TailBenchConfig MosesConfig(std::uint64_t seed = 11);

/** Bursty latency-critical request server. */
class TailBench : public node::CpuWorkload
{
  public:
    explicit TailBench(const TailBenchConfig& config);

    void Advance(sim::TimePoint now, sim::Duration dt,
                 const node::CpuResources& res) override;
    node::CpuActivity Activity() const override { return activity_; }
    std::string name() const override { return config_.name; }

    /** P99 request latency over the whole run, milliseconds. */
    double PerformanceValue() const override;
    std::string PerformanceUnit() const override { return "ms(P99)"; }
    bool PerformanceHigherIsBetter() const override { return false; }

    /** P99 latency over a trailing window ending at `now`. */
    double P99InWindow(sim::TimePoint now, sim::Duration window) const;

    std::uint64_t completed_requests() const { return total_completed_; }
    std::size_t queue_length() const { return queue_.size(); }
    bool in_burst() const { return in_burst_; }

  private:
    struct Request {
        sim::TimePoint arrival;
        double remaining_secs;  ///< Core-seconds of service left.
    };

    void MaybeTogglePhase(sim::TimePoint tick_end);

    TailBenchConfig config_;
    sim::Rng rng_;
    bool in_burst_ = false;
    sim::TimePoint phase_end_{0};
    sim::TimePoint next_arrival_{0};
    std::deque<Request> queue_;
    std::deque<std::pair<sim::TimePoint, double>> recent_;  ///< (done, ms).
    std::vector<double> all_latencies_;
    std::uint64_t total_completed_ = 0;
    node::CpuActivity activity_;
};

}  // namespace sol::workloads
