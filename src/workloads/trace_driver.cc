// determinism-lint: allow-file(libm-transcendental) -- one documented
// std::pow builds the Zipf weight table (see trace_driver.h file
// comment); weights are quantized to kWeightQuantum before they touch
// the config fingerprint, which absorbs last-ulp libm variation.
#include "workloads/trace_driver.h"

#include <algorithm>
#include <cmath>

namespace sol::workloads {

namespace {

/** Weight grid: 1/1024 steps keep Zipf ranks distinguishable out to
 *  ~1000 tenants while absorbing any last-ulp libm variation. */
constexpr double kWeightQuantum = 1024.0;

/** Curve grid: 1/4096 steps (~0.025% of full demand). */
constexpr double kCurveQuantum = 4096.0;

double
Quantize(double value, double quantum)
{
    return static_cast<double>(std::llround(value * quantum)) / quantum;
}

double
Clamp01(double value)
{
    return std::min(1.0, std::max(0.0, value));
}

/** Order-sensitive FNV-1a over 64-bit words. */
void
MixHash(std::uint64_t& hash, std::uint64_t word)
{
    constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;
    hash ^= word;
    hash *= kFnvPrime;
}

std::uint64_t
QuantumBits(double value, double quantum)
{
    return static_cast<std::uint64_t>(std::llround(value * quantum));
}

}  // namespace

TraceDriver::TraceDriver(TraceDriverConfig config)
    : config_(std::move(config))
{
    if (config_.num_tenants == 0) {
        config_.num_tenants = 1;
    }
    config_.min_demand = Clamp01(config_.min_demand);
    if (config_.min_demand <= 0.0) {
        config_.min_demand = 1.0 / kCurveQuantum;
    }
    config_.cadence_stretch = std::max(1.0, config_.cadence_stretch);

    // Popularity ranking: rank == tenant index (tenant 0 hottest), so
    // with node-major tenant numbering the hot tenants land on the
    // low-index nodes — scenarios can reason about "the hot shard".
    weights_.reserve(config_.num_tenants);
    for (std::size_t rank = 0; rank < config_.num_tenants; ++rank) {
        double weight = 1.0;
        if (config_.zipf_skew > 0.0) {
            const double n = static_cast<double>(rank + 1);
            // skew == 1 is an exact IEEE division; the general case is
            // the only std::pow in the driver (documented caveat).
            weight = config_.zipf_skew == 1.0
                         ? 1.0 / n
                         : 1.0 / std::pow(n, config_.zipf_skew);
        }
        weight = Quantize(weight, kWeightQuantum);
        weights_.push_back(std::max(weight, 1.0 / kWeightQuantum));
    }

    // Fingerprint everything behavior depends on, in declaration
    // order, each continuous value as its quantum count.
    std::uint64_t hash = 0xcbf29ce484222325ull;  // FNV offset basis.
    MixHash(hash, config_.seed);
    MixHash(hash, config_.num_tenants);
    MixHash(hash, QuantumBits(config_.zipf_skew, kCurveQuantum));
    MixHash(hash, static_cast<std::uint64_t>(config_.curve.kind));
    MixHash(hash, QuantumBits(config_.curve.base, kCurveQuantum));
    MixHash(hash, QuantumBits(config_.curve.peak, kCurveQuantum));
    MixHash(hash, static_cast<std::uint64_t>(config_.curve.period.count()));
    MixHash(hash, static_cast<std::uint64_t>(config_.curve.at.count()));
    MixHash(hash,
            static_cast<std::uint64_t>(config_.curve.duration.count()));
    MixHash(hash, QuantumBits(config_.min_demand, kCurveQuantum));
    MixHash(hash, QuantumBits(config_.cadence_stretch, kCurveQuantum));
    MixHash(hash, QuantumBits(config_.pressure_gain, kCurveQuantum));
    for (const double weight : weights_) {
        MixHash(hash, QuantumBits(weight, kWeightQuantum));
    }
    for (const StormWindow& storm : config_.storms) {
        MixHash(hash, static_cast<std::uint64_t>(storm.from.count()));
        MixHash(hash, static_cast<std::uint64_t>(storm.until.count()));
        MixHash(hash, storm.tenant_begin);
        MixHash(hash, storm.tenant_end);
        // Sentinel compare only; the hashed value is quantized.
        // determinism-lint: allow(float-fingerprint)
        MixHash(hash, storm.invalid_rate < 0.0
                          ? ~std::uint64_t{0}
                          : QuantumBits(storm.invalid_rate,
                                        kCurveQuantum));
        MixHash(hash, (storm.degrade_model ? 1u : 0u) |
                          (storm.fail_actuator ? 2u : 0u));
    }
    hash_ = hash;
}

double
TraceDriver::TenantWeight(std::size_t tenant) const
{
    return weights_[tenant % weights_.size()];
}

double
TraceDriver::RawDemandAt(sim::TimePoint t) const
{
    const DemandCurve& curve = config_.curve;
    switch (curve.kind) {
        case DemandCurveKind::kFlat:
            return curve.base;
        case DemandCurveKind::kRamp: {
            if (curve.period.count() <= 0) {
                return curve.peak;
            }
            const double progress = Clamp01(
                static_cast<double>(t.count()) /
                static_cast<double>(curve.period.count()));
            return curve.base + (curve.peak - curve.base) * progress;
        }
        case DemandCurveKind::kStep:
            return t >= curve.at ? curve.peak : curve.base;
        case DemandCurveKind::kDiurnal: {
            if (curve.period.count() <= 0) {
                return curve.base;
            }
            // Triangle wave (trough at phase 0, crest at 0.5): the
            // morning-peak cycle without a transcendental call.
            const std::int64_t mod =
                t.count() % curve.period.count();
            const double phase =
                static_cast<double>(mod) /
                static_cast<double>(curve.period.count());
            const double tent =
                phase < 0.5 ? 2.0 * phase : 2.0 * (1.0 - phase);
            return curve.base + (curve.peak - curve.base) * tent;
        }
        case DemandCurveKind::kFlashCrowd:
            return t >= curve.at && t < curve.at + curve.duration
                       ? curve.peak
                       : curve.base;
    }
    return curve.base;
}

double
TraceDriver::DemandAt(sim::TimePoint t) const
{
    const double raw = Clamp01(RawDemandAt(t));
    return Quantize(std::max(raw, config_.min_demand), kCurveQuantum);
}

double
TraceDriver::CadenceScale(std::size_t tenant) const
{
    const double weight = TenantWeight(tenant);
    const double scale =
        1.0 + (config_.cadence_stretch - 1.0) * (1.0 - weight);
    return std::max(1.0, Quantize(scale, kCurveQuantum));
}

const StormWindow*
TraceDriver::ActiveStorm(std::size_t tenant, sim::TimePoint t,
                         bool (*flag)(const StormWindow&)) const
{
    for (const StormWindow& storm : config_.storms) {
        if (t >= storm.from && t < storm.until &&
            tenant >= storm.tenant_begin && tenant < storm.tenant_end &&
            flag(storm)) {
            return &storm;
        }
    }
    return nullptr;
}

double
TraceDriver::InvalidRateAt(std::size_t tenant, sim::TimePoint t,
                           double base) const
{
    const StormWindow* storm = ActiveStorm(
        tenant, t,
        [](const StormWindow& s) { return s.invalid_rate >= 0.0; });
    if (storm == nullptr) {
        return base;
    }
    return Quantize(Clamp01(storm->invalid_rate), kCurveQuantum);
}

double
TraceDriver::ExpandFractionAt(std::size_t tenant, sim::TimePoint t,
                              double base) const
{
    (void)tenant;  // Pressure is fleet-wide; skew acts via cadence.
    const double scaled = base * DemandAt(t) * config_.pressure_gain;
    return Quantize(Clamp01(scaled), kCurveQuantum);
}

int
TraceDriver::EpochTargetAt(std::size_t tenant, sim::TimePoint t,
                           int data_per_epoch) const
{
    (void)tenant;
    if (data_per_epoch <= 1) {
        return data_per_epoch;
    }
    const double demand = DemandAt(t);
    const int target = static_cast<int>(
        std::ceil(demand * static_cast<double>(data_per_epoch)));
    return std::min(data_per_epoch, std::max(1, target));
}

bool
TraceDriver::ModelDegradedAt(std::size_t tenant, sim::TimePoint t) const
{
    return ActiveStorm(tenant, t, [](const StormWindow& s) {
               return s.degrade_model;
           }) != nullptr;
}

bool
TraceDriver::ActuatorFailingAt(std::size_t tenant, sim::TimePoint t) const
{
    return ActiveStorm(tenant, t, [](const StormWindow& s) {
               return s.fail_actuator;
           }) != nullptr;
}

}  // namespace sol::workloads
