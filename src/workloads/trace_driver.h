/**
 * @file
 * Seeded, deterministic demand-curve engine for trace-driven scenarios.
 *
 * Every result before this subsystem was produced under flat
 * synthetic-periodic load: each synthetic agent collected at a fixed
 * cadence with fixed invalid-data and actuation-pressure rates. Real
 * fleets see none of that uniformity — tenant popularity is Zipfian,
 * demand follows diurnal cycles, flash crowds arrive, and faults come
 * correlated (an entire shard's telemetry goes bad at once). The
 * TraceDriver is the workload-generator answer (in the YCSB shape):
 * a compact description of *demand over virtual time* that the
 * synthetic agents consult to modulate
 *
 *   - collection density: low demand shrinks the per-epoch sample
 *     target (via Model::ShortCircuitEpoch), so quiet tenants learn on
 *     sparse data and fall back to conservative default actions, while
 *     peak demand fills full epochs and re-enables model-driven
 *     actuation;
 *   - data validity: storm windows push a tenant range's invalid-read
 *     probability up to adversarial levels (correlated invalid-data
 *     storms across a shard);
 *   - actuation pressure: the expand probability scales with demand
 *     (and a configurable gain), so flash crowds translate into
 *     arbiter conflict/denial spikes;
 *   - fault injection: storm windows can degrade a tenant's model
 *     (AssessModel fails) or its actuator (AssessPerformance fails),
 *     scripting mid-run safeguard trips and recoveries.
 *
 * Determinism is the load-bearing property. Every query is a *pure
 * function of (config, tenant, virtual time)* — the driver holds no
 * mutable state, so a fleet consulting it is exactly as deterministic
 * as one that does not: identical trace hashes and behavior counters at
 * any worker-thread count, and bit-identical behavior between the
 * simulated and threaded node backends (tests/scenario_test.cc and
 * tests/node_parity_test.cc hold both). Curve math deliberately avoids
 * transcendental libm calls whose last-ulp rounding varies across
 * platforms: the diurnal cycle is a triangle wave (add/mul/div only,
 * all correctly rounded under IEEE-754), Zipf weights special-case the
 * classic skew=1 to an exact division, and every continuous output is
 * quantized to a fixed grid so committed golden baselines
 * (bench/baselines/) survive toolchain changes.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.h"

namespace sol::workloads {

/** Shape of the fleet-wide demand level over virtual time. */
enum class DemandCurveKind {
    kFlat,        ///< Constant `base`.
    kRamp,        ///< Linear base -> peak over the first `period`.
    kStep,        ///< `base` before `at`, `peak` from `at` on.
    kDiurnal,     ///< Triangle wave base..peak with cycle `period`.
    kFlashCrowd,  ///< `base`, except `peak` in [at, at + duration).
};

/** One demand curve (levels are fractions of full demand, in (0, 1]). */
struct DemandCurve {
    DemandCurveKind kind = DemandCurveKind::kFlat;
    double base = 1.0;
    double peak = 1.0;
    /** Cycle length (kDiurnal) or ramp length (kRamp). */
    sim::Duration period = sim::Seconds(10);
    /** Transition instant (kStep) or burst start (kFlashCrowd). */
    sim::TimePoint at{0};
    /** Burst length (kFlashCrowd). */
    sim::Duration duration{0};
};

/**
 * A correlated fault window over a contiguous tenant range. Tenants are
 * numbered node-major (tenant = node_index * synthetics_per_node + i),
 * so a range is a set of whole nodes/shards — the "entire shard's data
 * goes bad at once" adversarial shape.
 */
struct StormWindow {
    sim::TimePoint from{0};
    sim::TimePoint until{0};  ///< Exclusive.
    std::size_t tenant_begin = 0;
    std::size_t tenant_end = 0;  ///< Exclusive.
    /** Invalid-read probability inside the window (< 0 keeps the
     *  agent's configured base rate — a pure degrade/fail storm). */
    double invalid_rate = -1.0;
    /** Model assessments fail inside the window (mid-run model
     *  degradation; the safeguard intercepts predictions). */
    bool degrade_model = false;
    /** Actuator assessments fail inside the window (safeguard trips,
     *  halts actuation, mitigates; recovery after the window). */
    bool fail_actuator = false;
};

/** Full description of one demand trace. */
struct TraceDriverConfig {
    /** Identifies the trace; folded into trace_hash(). */
    std::uint64_t seed = 1;

    /** Tenants the Zipf popularity ranking spans (one synthetic agent
     *  per tenant; see MultiAgentNodeConfig::node_index). */
    std::size_t num_tenants = 1;

    /**
     * Zipf popularity skew: tenant rank r gets weight 1/(r+1)^skew,
     * normalized so the hottest tenant has weight 1. 0 = uniform.
     * skew == 1 (the classic distribution) is computed with an exact
     * division; other values go through std::pow (see file comment).
     */
    double zipf_skew = 0.0;

    DemandCurve curve;

    /** Floor on DemandAt so an epoch target never reaches zero. */
    double min_demand = 0.2;

    /**
     * How much slower the coldest tenant collects than the hottest
     * (schedule-construction-time scaling of the collect interval).
     * 1 (default) keeps the fleet cadence uniform.
     */
    double cadence_stretch = 1.0;

    /** Gain on the demand-scaled expand probability: pressure at
     *  demand d is base_expand * d * pressure_gain (clamped to [0,1]). */
    double pressure_gain = 1.0;

    std::vector<StormWindow> storms;
};

/**
 * Immutable demand oracle the synthetic agents consult. Thread-safe by
 * construction (const state only); one instance is shared by every
 * node of a fleet run.
 */
class TraceDriver
{
  public:
    explicit TraceDriver(TraceDriverConfig config);

    /** Popularity weight of a tenant in (0, 1]; hottest tenant = 1.
     *  Quantized to 1/1024 steps. */
    double TenantWeight(std::size_t tenant) const;

    /** Fleet demand level at `t`, in [min_demand, 1], quantized to
     *  1/4096 steps. */
    double DemandAt(sim::TimePoint t) const;

    /** Construction-time factor (>= 1) on a tenant's collect interval:
     *  1 for the hottest tenant, `cadence_stretch` for weight-0. */
    double CadenceScale(std::size_t tenant) const;

    /** Invalid-read probability for (tenant, t): the innermost active
     *  storm's rate, else `base`. */
    double InvalidRateAt(std::size_t tenant, sim::TimePoint t,
                         double base) const;

    /** Demand-scaled expand probability (see pressure_gain). */
    double ExpandFractionAt(std::size_t tenant, sim::TimePoint t,
                            double base) const;

    /**
     * Per-epoch valid-sample target under the demand at `t`:
     * ceil(demand * data_per_epoch), clamped to [1, data_per_epoch].
     * Equal to data_per_epoch at full demand (normal epochs); smaller
     * targets end epochs early via Model::ShortCircuitEpoch, which the
     * engine counts as short-circuit epochs (conservative defaults).
     */
    int EpochTargetAt(std::size_t tenant, sim::TimePoint t,
                      int data_per_epoch) const;

    /** True while a degrade_model storm covers (tenant, t). */
    bool ModelDegradedAt(std::size_t tenant, sim::TimePoint t) const;

    /** True while a fail_actuator storm covers (tenant, t). */
    bool ActuatorFailingAt(std::size_t tenant, sim::TimePoint t) const;

    /** FNV-1a fingerprint of the whole config (quantized weights
     *  included): two drivers with equal hashes produce identical
     *  modulation for every (tenant, t). */
    std::uint64_t trace_hash() const { return hash_; }

    const TraceDriverConfig& config() const { return config_; }

  private:
    /** Demand before the min_demand clamp and quantization. */
    double RawDemandAt(sim::TimePoint t) const;

    const StormWindow* ActiveStorm(std::size_t tenant, sim::TimePoint t,
                                   bool (*flag)(const StormWindow&)) const;

    TraceDriverConfig config_;
    std::vector<double> weights_;  ///< Quantized, index = tenant rank.
    std::uint64_t hash_ = 0;
};

}  // namespace sol::workloads
