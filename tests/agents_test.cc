/**
 * @file
 * Tests for the three SOL agents: per-agent data validation, default
 * predictions, model assessment, actuation, mitigation, and cleanup —
 * exercised directly against the node substrate (no runtime), so each
 * safeguard's logic is verified in isolation.
 */
#include <gtest/gtest.h>

#include <memory>

#include "agents/smartharvest/smartharvest.h"
#include "agents/smartmemory/smartmemory.h"
#include "agents/smartoverclock/smartoverclock.h"
#include "sim/event_queue.h"
#include "workloads/best_effort.h"
#include "workloads/synthetic_batch.h"

namespace sol::agents {
namespace {

using sim::EventQueue;
using sim::Millis;
using sim::Seconds;
using sim::TimePoint;

// ---------------------------------------------------------------------------
// SmartOverclock
// ---------------------------------------------------------------------------

class SmartOverclockTest : public ::testing::Test
{
  protected:
    SmartOverclockTest()
        : node(node::NodeConfig{8, 1.5, {1.5, 1.9, 2.3}, {}}),
          workload(std::make_shared<workloads::BestEffort>()),
          vm(node.AddVm(node::VmConfig{"vm", 8}, workload)),
          model(node, vm, queue),
          actuator(node, vm, queue)
    {
    }

    /** Advances the node and collects one counter sample. */
    OverclockSample
    Sample(sim::Duration dt = Millis(100))
    {
        node.Advance(queue.Now(), dt);
        queue.RunFor(dt);
        return model.CollectData();
    }

    EventQueue queue;
    node::Node node;
    std::shared_ptr<workloads::BestEffort> workload;
    node::VmId vm;
    OverclockModel model;
    OverclockActuator actuator;
};

TEST_F(SmartOverclockTest, ScheduleMatchesPaper)
{
    const core::Schedule schedule = SmartOverclockSchedule();
    EXPECT_EQ(schedule.data_per_epoch, 10);
    EXPECT_EQ(schedule.data_collect_interval, Millis(100));
    EXPECT_EQ(schedule.max_actuation_delay, Seconds(5));
    EXPECT_TRUE(schedule.IsValid());
}

TEST_F(SmartOverclockTest, CollectComputesIpsFromCounters)
{
    Sample();  // Prime the snapshot.
    const OverclockSample sample = Sample();
    // BestEffort: util 1.0, ipc 1.0, stall 0.1 at 1.5 GHz on 8 cores.
    EXPECT_NEAR(sample.ips, 8 * 1.5e9 * 0.9, 1e7);
    EXPECT_NEAR(sample.alpha, 0.9, 1e-6);
    EXPECT_DOUBLE_EQ(sample.freq_ghz, 1.5);
}

TEST_F(SmartOverclockTest, ValidationRangeChecks)
{
    OverclockSample ok{1e9, 0.5, 1.5};
    EXPECT_TRUE(model.ValidateData(ok));

    OverclockSample bad_ips{1e17, 0.5, 1.5};
    EXPECT_FALSE(model.ValidateData(bad_ips));

    OverclockSample negative_ips{-1.0, 0.5, 1.5};
    EXPECT_FALSE(model.ValidateData(negative_ips));

    OverclockSample bad_alpha{1e9, 1.5, 1.5};
    EXPECT_FALSE(model.ValidateData(bad_alpha));

    OverclockSample bad_freq{1e9, 0.5, -2.0};
    EXPECT_FALSE(model.ValidateData(bad_freq));
}

TEST_F(SmartOverclockTest, PredictionsCarryTtl)
{
    const auto pred = model.ModelPredict();
    EXPECT_GT(pred.expiry, queue.Now());
    EXPECT_FALSE(pred.is_default);
    // Prediction must be one of the allowed frequencies.
    bool allowed = false;
    for (const double f : node.AllowedFrequencies()) {
        allowed |= std::abs(pred.value - f) < 1e-9;
    }
    EXPECT_TRUE(allowed);
}

TEST_F(SmartOverclockTest, DefaultPredictionIsNominalWhenHealthy)
{
    const auto pred = model.DefaultPredict();
    EXPECT_TRUE(pred.is_default);
    EXPECT_DOUBLE_EQ(pred.value, 1.5);
}

TEST_F(SmartOverclockTest, BrokenModelAlwaysPicksMax)
{
    model.BreakModel(true);
    for (int i = 0; i < 5; ++i) {
        EXPECT_DOUBLE_EQ(model.ModelPredict().value, 2.3);
    }
}

TEST_F(SmartOverclockTest, AssessmentFailsOnWastedOverclocking)
{
    // Feed epochs where the VM is overclocked but IPS does not justify
    // it (low activity at 2.3 GHz).
    node.SetVmFrequency(vm, 2.3);
    for (int epoch = 0; epoch < 12; ++epoch) {
        for (int i = 0; i < 10; ++i) {
            OverclockSample sample{0.05e9, 0.02, 2.3};
            model.CommitData(queue.Now(), sample);
        }
        model.UpdateModel();
        model.AssessModel();
    }
    EXPECT_FALSE(model.AssessModel());
}

TEST_F(SmartOverclockTest, AssessmentHealthyOnBeneficialOverclocking)
{
    node.SetVmFrequency(vm, 2.3);
    for (int epoch = 0; epoch < 12; ++epoch) {
        for (int i = 0; i < 10; ++i) {
            // High IPS fully explained by the higher frequency.
            OverclockSample sample{8 * 2.3e9 * 1.8, 0.9, 2.3};
            model.CommitData(queue.Now(), sample);
        }
        model.UpdateModel();
        model.AssessModel();
    }
    EXPECT_TRUE(model.AssessModel());
}

TEST_F(SmartOverclockTest, ActuatorAppliesPrediction)
{
    actuator.TakeAction(core::MakePrediction(2.3, queue.Now(), Seconds(1)));
    EXPECT_DOUBLE_EQ(node.VmFrequency(vm), 2.3);
    actuator.TakeAction(std::nullopt);
    EXPECT_DOUBLE_EQ(node.VmFrequency(vm), 1.5);
}

TEST_F(SmartOverclockTest, MitigateAndCleanUpRestoreNominal)
{
    node.SetVmFrequency(vm, 2.3);
    actuator.Mitigate();
    EXPECT_DOUBLE_EQ(node.VmFrequency(vm), 1.5);

    node.SetVmFrequency(vm, 1.9);
    actuator.CleanUp();
    EXPECT_DOUBLE_EQ(node.VmFrequency(vm), 1.5);
    actuator.CleanUp();  // Idempotent.
    EXPECT_DOUBLE_EQ(node.VmFrequency(vm), 1.5);
}

TEST_F(SmartOverclockTest, SafeguardEntersOnSustainedLowAlpha)
{
    SmartOverclockConfig config;
    config.safeguard_window = Seconds(10);
    OverclockActuator guard(node, vm, queue, config);
    // BestEffort has alpha 0.9: healthy.
    for (int i = 0; i < 15; ++i) {
        node.Advance(queue.Now(), Seconds(1));
        queue.RunFor(Seconds(1));
        EXPECT_TRUE(guard.AssessPerformance());
    }
    EXPECT_FALSE(guard.safeguard_active());
}

// ---------------------------------------------------------------------------
// SmartHarvest
// ---------------------------------------------------------------------------

class SmartHarvestTest : public ::testing::Test
{
  protected:
    SmartHarvestTest()
        : node(node::NodeConfig{16, 1.5, {1.5, 1.9, 2.3}, {}}),
          primary_wl(std::make_shared<workloads::BestEffort>()),
          elastic_wl(std::make_shared<workloads::BestEffort>()),
          primary(node.AddVm(node::VmConfig{"primary", 6}, primary_wl)),
          elastic(node.AddVm(node::VmConfig{"elastic", 6}, elastic_wl)),
          model(node, primary, queue),
          actuator(node, primary, elastic, queue)
    {
        node.GrantCores(elastic, 0);
    }

    EventQueue queue;
    node::Node node;
    std::shared_ptr<workloads::BestEffort> primary_wl;
    std::shared_ptr<workloads::BestEffort> elastic_wl;
    node::VmId primary;
    node::VmId elastic;
    HarvestModel model;
    HarvestActuator actuator;
};

TEST_F(SmartHarvestTest, ScheduleMatchesPaper)
{
    const core::Schedule schedule = SmartHarvestSchedule();
    EXPECT_EQ(schedule.data_per_epoch, 500);
    EXPECT_EQ(schedule.data_collect_interval, sim::Micros(50));
    EXPECT_EQ(schedule.max_actuation_delay, Millis(100));
    EXPECT_TRUE(schedule.IsValid());
}

TEST_F(SmartHarvestTest, ValidationDiscardsCensoredSamples)
{
    // Usage below the grant: valid.
    EXPECT_TRUE(model.ValidateData(HarvestSample{3.0, 6, 6}));
    // Usage at the grant: censored, discard.
    EXPECT_FALSE(model.ValidateData(HarvestSample{6.0, 6, 6}));
    EXPECT_FALSE(model.ValidateData(HarvestSample{4.0, 4, 6}));
    // Out-of-range usage: discard.
    EXPECT_FALSE(model.ValidateData(HarvestSample{-1.0, 6, 6}));
    EXPECT_FALSE(model.ValidateData(HarvestSample{9.0, 6, 6}));
}

TEST_F(SmartHarvestTest, DefaultPredictionReturnsAllCores)
{
    const auto pred = model.DefaultPredict();
    EXPECT_TRUE(pred.is_default);
    EXPECT_EQ(pred.value, 6);
}

TEST_F(SmartHarvestTest, BrokenModelUnderpredicts)
{
    model.BreakModel(true);
    // Give it one epoch of data so features exist.
    for (int i = 0; i < 100; ++i) {
        model.CommitData(queue.Now(), HarvestSample{4.0, 6, 6});
    }
    model.UpdateModel();
    EXPECT_EQ(model.ModelPredict().value, 1);
}

TEST_F(SmartHarvestTest, LearnsStableDemand)
{
    // Constant demand of ~3 cores: after training, the model should
    // predict >= 3 (asymmetric costs bias upward).
    for (int epoch = 0; epoch < 200; ++epoch) {
        for (int i = 0; i < 50; ++i) {
            model.CommitData(queue.Now(), HarvestSample{3.0, 6, 6});
        }
        model.UpdateModel();
    }
    const int predicted = model.ModelPredict().value;
    EXPECT_GE(predicted, 3);
    EXPECT_LE(predicted, 4);
}

TEST_F(SmartHarvestTest, AssessmentTriggersOnOutOfCores)
{
    // Simulate harvested epochs in which the primary keeps hitting its
    // reduced grant (out of idle cores).
    node.GrantCores(primary, 2);
    for (int epoch = 0; epoch < 50; ++epoch) {
        for (int i = 0; i < 10; ++i) {
            model.CollectData();  // BestEffort demands everything.
        }
        node.Advance(queue.Now(), Millis(25));
        queue.RunFor(Millis(25));
        model.UpdateModel();
    }
    EXPECT_GT(model.OutOfCoresFraction(), 0.5);
    EXPECT_FALSE(model.AssessModel());
}

TEST_F(SmartHarvestTest, ActuatorSplitsCoresBetweenVms)
{
    actuator.TakeAction(core::MakePrediction(2, queue.Now(), Millis(60)));
    EXPECT_EQ(node.GrantedCores(primary), 2);
    EXPECT_EQ(node.GrantedCores(elastic), 4);

    actuator.TakeAction(std::nullopt);
    EXPECT_EQ(node.GrantedCores(primary), 6);
    EXPECT_EQ(node.GrantedCores(elastic), 0);
}

TEST_F(SmartHarvestTest, ActuatorClampsPrediction)
{
    actuator.TakeAction(core::MakePrediction(99, queue.Now(), Millis(60)));
    EXPECT_EQ(node.GrantedCores(primary), 6);
    EXPECT_EQ(node.GrantedCores(elastic), 0);
}

TEST_F(SmartHarvestTest, MitigateReturnsEverything)
{
    node.GrantCores(primary, 1);
    node.GrantCores(elastic, 5);
    actuator.Mitigate();
    EXPECT_EQ(node.GrantedCores(primary), 6);
    EXPECT_EQ(node.GrantedCores(elastic), 0);
}

TEST_F(SmartHarvestTest, CleanUpIdempotent)
{
    node.GrantCores(primary, 3);
    actuator.CleanUp();
    actuator.CleanUp();
    EXPECT_EQ(node.GrantedCores(primary), 6);
    EXPECT_EQ(node.GrantedCores(elastic), 0);
}

// ---------------------------------------------------------------------------
// SmartMemory
// ---------------------------------------------------------------------------

class SmartMemoryTest : public ::testing::Test
{
  protected:
    SmartMemoryTest()
        : memory(32, 32), model(memory, queue), actuator(memory, queue)
    {
    }

    /** Runs one full epoch of collect/commit rounds with accesses. */
    void
    RunEpoch(const std::vector<node::BatchId>& hot, int rounds = 128)
    {
        for (int r = 0; r < rounds; ++r) {
            for (const auto b : hot) {
                memory.RecordAccess(b, queue.Now(), 10);
            }
            const ScanRound round = model.CollectData();
            if (model.ValidateData(round)) {
                model.CommitData(queue.Now(), round);
            }
            queue.RunFor(Millis(300));
        }
        model.UpdateModel();
    }

    EventQueue queue;
    node::TieredMemory memory;
    MemoryModel model;
    MemoryActuator actuator;
};

TEST_F(SmartMemoryTest, ScheduleMatchesPaper)
{
    const core::Schedule schedule = SmartMemorySchedule();
    EXPECT_EQ(schedule.data_per_epoch, 128);
    EXPECT_EQ(schedule.data_collect_interval, Millis(300));
    // 128 * 300 ms = 38.4 s epochs.
    EXPECT_GE(schedule.max_epoch_time, Millis(38400));
    EXPECT_TRUE(schedule.IsValid());
}

TEST_F(SmartMemoryTest, ValidationFailsOnScanErrors)
{
    EXPECT_TRUE(model.ValidateData(ScanRound{10, 0}));
    EXPECT_FALSE(model.ValidateData(ScanRound{10, 1}));
}

TEST_F(SmartMemoryTest, ScanErrorsPropagateFromDriver)
{
    memory.InjectScanErrors(1000);
    const ScanRound round = model.CollectData();
    EXPECT_GT(round.errors, 0);
}

TEST_F(SmartMemoryTest, HotBatchesClassifiedIntoFastTier)
{
    const std::vector<node::BatchId> hot = {3, 7, 11};
    // Many epochs: Thompson sampling needs repeated rounds to drive the
    // hot batches to fast scan arms where their intensity is resolved.
    for (int epoch = 0; epoch < 15; ++epoch) {
        RunEpoch(hot);
    }
    const auto pred = model.ModelPredict();
    // Every genuinely hot batch must be in the fast list.
    for (const auto b : hot) {
        EXPECT_NE(std::find(pred.value.fast.begin(), pred.value.fast.end(),
                            b),
                  pred.value.fast.end())
            << "batch " << b;
    }
    // Hot batches have much higher estimated intensity.
    EXPECT_GT(model.EstimatedIntensity(3), model.EstimatedIntensity(0));
}

TEST_F(SmartMemoryTest, DefaultPredictionKeepsMostBatchesLocal)
{
    RunEpoch({1, 2});
    const auto pred = model.DefaultPredict();
    EXPECT_TRUE(pred.is_default);
    // 95% of 32 batches -> 30 local, 2 demotion candidates.
    EXPECT_EQ(pred.value.fast.size(), 30u);
    EXPECT_EQ(pred.value.slow.size(), 2u);
}

TEST_F(SmartMemoryTest, ColdDetectionAfterThreshold)
{
    RunEpoch({1});
    EXPECT_FALSE(model.IsCold(1));
    // Advance past the cold threshold with no accesses at all.
    for (int epoch = 0; epoch < 6; ++epoch) {
        RunEpoch({});
    }
    EXPECT_TRUE(model.IsCold(5));
}

TEST_F(SmartMemoryTest, ActuatorAppliesPlan)
{
    MemoryPlan plan;
    plan.slow = {0, 1, 2};
    plan.fast = {};
    actuator.TakeAction(
        core::MakePrediction(plan, queue.Now(), Seconds(60)));
    EXPECT_EQ(memory.TierOf(0), node::Tier::kSlow);
    EXPECT_EQ(memory.TierOf(1), node::Tier::kSlow);
    EXPECT_EQ(memory.TierOf(2), node::Tier::kSlow);
    EXPECT_EQ(memory.fast_tier_used(), 29u);
}

TEST_F(SmartMemoryTest, ActuatorNoActionOnEmptyPrediction)
{
    actuator.TakeAction(std::nullopt);
    EXPECT_EQ(memory.migrations(), 0u);
}

TEST_F(SmartMemoryTest, SafeguardTriggersAboveSlo)
{
    // Demote a batch and hammer it remotely: remote fraction 100%.
    memory.Migrate(5, node::Tier::kSlow);
    actuator.AssessPerformance();  // Baseline.
    memory.RecordAccess(5, queue.Now(), 100);
    EXPECT_FALSE(actuator.AssessPerformance());
    EXPECT_GT(actuator.last_remote_fraction(), 0.2);
}

TEST_F(SmartMemoryTest, SafeguardHealthyWhenLocal)
{
    memory.RecordAccess(1, queue.Now(), 100);
    EXPECT_TRUE(actuator.AssessPerformance());
}

TEST_F(SmartMemoryTest, MitigateBringsHottestBack)
{
    memory.Migrate(5, node::Tier::kSlow);
    memory.Migrate(6, node::Tier::kSlow);
    memory.RecordAccess(5, Seconds(10));
    actuator.Mitigate();
    EXPECT_EQ(memory.TierOf(5), node::Tier::kFast);
    EXPECT_EQ(memory.TierOf(6), node::Tier::kFast);
}

TEST_F(SmartMemoryTest, MitigateRespectsCapacity)
{
    node::TieredMemory small(8, 4);
    MemoryActuator guard(small, queue);
    // All four slow batches can't fit into the remaining... fill fast.
    guard.Mitigate();
    EXPECT_EQ(small.fast_tier_used(), 4u);
}

TEST_F(SmartMemoryTest, CleanUpRestoresEverythingThatFits)
{
    memory.Migrate(3, node::Tier::kSlow);
    memory.Migrate(9, node::Tier::kSlow);
    actuator.CleanUp();
    EXPECT_EQ(memory.fast_tier_used(), 32u);
    actuator.CleanUp();  // Idempotent.
    EXPECT_EQ(memory.fast_tier_used(), 32u);
}

TEST_F(SmartMemoryTest, FixedArmDisablesLearning)
{
    SmartMemoryConfig config;
    config.fixed_arm = 0;
    MemoryModel fixed(memory, queue, config);
    // With a fixed arm the assessment never fails (no probes).
    EXPECT_TRUE(fixed.AssessModel());
}

// Parameterized sweep: the hot/warm split respects the coverage target
// across different hot-set sizes.
class HotCoverageTest : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(HotCoverageTest, HotSetSizeTracksTrueHotSet)
{
    const std::size_t hot_count = GetParam();
    EventQueue queue;
    node::TieredMemory memory(32, 32);
    MemoryModel model(memory, queue);
    std::vector<node::BatchId> hot;
    for (std::size_t i = 0; i < hot_count; ++i) {
        hot.push_back(i);
    }
    // Many epochs so the bandit settles hot batches on fast arms.
    for (int epoch = 0; epoch < 15; ++epoch) {
        for (int r = 0; r < 128; ++r) {
            for (const auto b : hot) {
                memory.RecordAccess(b, queue.Now(), 5);
            }
            const ScanRound round = model.CollectData();
            if (model.ValidateData(round)) {
                model.CommitData(queue.Now(), round);
            }
            queue.RunFor(Millis(300));
        }
        model.UpdateModel();
    }
    const auto pred = model.ModelPredict();
    // With near-equal per-batch intensity, the 80%-coverage rule keeps
    // roughly 0.8 * hot_count batches hot and never (much) more than
    // the true hot set.
    EXPECT_GE(pred.value.fast.size(),
              std::max<std::size_t>(1, (hot_count * 3) / 5));
    EXPECT_LE(pred.value.fast.size(), hot_count + 3);
}

INSTANTIATE_TEST_SUITE_P(HotSetSizes, HotCoverageTest,
                         ::testing::Values(2, 4, 8, 16));

}  // namespace
}  // namespace sol::agents
