/**
 * @file
 * Concurrency stress tests for InterferenceArbiter (run under TSan in
 * CI's sanitize-thread job, repeated 20x). The arbiter's lock-table
 * hardening promises three things to a ThreadedMultiAgentNode:
 *
 *   1. No double grants: while one agent's expand hold is live on a
 *      coupled-domain closure, no other agent's expand is admitted
 *      anywhere in that closure.
 *   2. No lost or phantom holds: every admitted expand is releasable,
 *      every restore releases, and accounting (per-agent atomics and
 *      published counters) exactly matches what the callers did.
 *   3. Deterministic resolution: for one admission order, decisions are
 *      a pure function of the request sequence — replaying a scripted
 *      schedule on real threads yields identical decisions and counters.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "cluster/interference_arbiter.h"
#include "core/actuation.h"
#include "telemetry/metric_registry.h"

namespace sol::cluster {
namespace {

using core::ActuationDomain;
using core::ActuationIntent;
using core::ActuationRequest;

ActuationRequest
Expand(const std::string& agent, ActuationDomain domain)
{
    return {agent, domain, ActuationIntent::kExpand, 1.0};
}

ActuationRequest
Restore(const std::string& agent, ActuationDomain domain)
{
    return {agent, domain, ActuationIntent::kRestore, 0.0};
}

TEST(ArbiterRaceTest, NoDoubleGrantsUnderContention)
{
    telemetry::MetricRegistry metrics;
    InterferenceArbiterConfig config;
    InterferenceArbiter arbiter(
        config, telemetry::MetricScope(metrics, "arbiter"));

    // All threads fight over the default-coupled frequency/cores pair.
    // `owner` mirrors the closure's hold from the caller side: set
    // right after an admitted expand, cleared right before the restore.
    // If the arbiter ever admits a second expand while a hold is live,
    // the second thread's exchange sees a foreign owner.
    constexpr int kThreads = 8;
    constexpr int kIterations = 400;
    std::atomic<int> owner{-1};
    std::atomic<std::uint64_t> double_grants{0};
    std::atomic<std::uint64_t> total_admitted{0};
    std::atomic<std::uint64_t> total_denied{0};

    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            const std::string agent = "racer" + std::to_string(t);
            const ActuationDomain domain =
                t % 2 == 0 ? ActuationDomain::kCpuFrequency
                           : ActuationDomain::kCpuCores;
            for (int i = 0; i < kIterations; ++i) {
                if (arbiter.Admit(Expand(agent, domain)).admitted) {
                    total_admitted.fetch_add(1,
                                             std::memory_order_relaxed);
                    if (owner.exchange(t, std::memory_order_acq_rel) !=
                        -1) {
                        double_grants.fetch_add(
                            1, std::memory_order_relaxed);
                    }
                    if (owner.exchange(-1, std::memory_order_acq_rel) !=
                        t) {
                        double_grants.fetch_add(
                            1, std::memory_order_relaxed);
                    }
                    arbiter.Admit(Restore(agent, domain));
                } else {
                    total_denied.fetch_add(1, std::memory_order_relaxed);
                }
            }
        });
    }
    for (std::thread& thread : threads) {
        thread.join();
    }

    EXPECT_EQ(double_grants.load(), 0u);
    EXPECT_EQ(total_admitted.load() + total_denied.load(),
              static_cast<std::uint64_t>(kThreads) * kIterations);
    // Every admitted expand was paired with a restore.
    EXPECT_EQ(arbiter.HolderOf(ActuationDomain::kCpuFrequency),
              std::nullopt);
    EXPECT_EQ(arbiter.HolderOf(ActuationDomain::kCpuCores), std::nullopt);
    // Global accounting: expands + paired restores.
    EXPECT_EQ(arbiter.requests(),
              static_cast<std::uint64_t>(kThreads) * kIterations +
                  total_admitted.load());
    EXPECT_EQ(arbiter.conflicts_resolved(), total_denied.load());
    EXPECT_EQ(arbiter.conflicts_observed(), total_denied.load());
}

TEST(ArbiterRaceTest, NoLostHoldsAndExactAccounting)
{
    telemetry::MetricRegistry metrics;
    InterferenceArbiterConfig config;
    config.track_contention = true;
    InterferenceArbiter arbiter(
        config, telemetry::MetricScope(metrics, "arbiter"));

    // Mixed workload across coupled AND uncoupled domains, with each
    // thread keeping its own tally; the arbiter's published metrics
    // must agree with the callers' ground truth exactly.
    constexpr int kThreads = 6;
    constexpr int kIterations = 300;
    struct Tally {
        std::uint64_t expands = 0;
        std::uint64_t admitted = 0;
        std::uint64_t denied = 0;
        std::uint64_t restores = 0;
    };
    std::vector<Tally> tallies(kThreads);
    const ActuationDomain domains[] = {
        ActuationDomain::kCpuFrequency,
        ActuationDomain::kCpuCores,
        ActuationDomain::kMemoryPlacement,
    };

    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            const std::string agent = "worker" + std::to_string(t);
            const ActuationDomain domain = domains[t % 3];
            std::mt19937 rng(1000u + static_cast<unsigned>(t));
            Tally& tally = tallies[t];
            for (int i = 0; i < kIterations; ++i) {
                if (rng() % 4 != 0) {
                    ++tally.expands;
                    if (arbiter.Admit(Expand(agent, domain)).admitted) {
                        ++tally.admitted;
                    } else {
                        ++tally.denied;
                    }
                } else {
                    ++tally.restores;
                    ASSERT_TRUE(
                        arbiter.Admit(Restore(agent, domain)).admitted);
                }
            }
            // Leave nothing held.
            ++tally.restores;
            arbiter.Admit(Restore(agent, domain));
        });
    }
    for (std::thread& thread : threads) {
        thread.join();
    }

    for (const ActuationDomain domain : domains) {
        EXPECT_EQ(arbiter.HolderOf(domain), std::nullopt);
    }

    arbiter.WriteMetrics();
    std::uint64_t total_requests = 0;
    std::uint64_t total_denied = 0;
    for (int t = 0; t < kThreads; ++t) {
        const Tally& tally = tallies[t];
        const std::string prefix =
            "arbiter.worker" + std::to_string(t) + ".";
        EXPECT_EQ(metrics.Counter(prefix + "requests"),
                  tally.expands + tally.restores);
        EXPECT_EQ(metrics.Counter(prefix + "admitted"),
                  tally.admitted + tally.restores);
        EXPECT_EQ(metrics.Counter(prefix + "denied"), tally.denied);
        EXPECT_EQ(metrics.Counter(prefix + "restores"), tally.restores);
        total_requests += tally.expands + tally.restores;
        total_denied += tally.denied;
    }
    EXPECT_EQ(arbiter.requests(), total_requests);
    EXPECT_EQ(arbiter.conflicts_resolved(), total_denied);
    EXPECT_EQ(metrics.Counter("arbiter.conflicts"),
              arbiter.conflicts_observed());
    // Memory-placement workers never touch the coupled CPU closure, so
    // they are never denied.
    EXPECT_EQ(tallies[2].denied, 0u);
    EXPECT_EQ(tallies[5].denied, 0u);
}

TEST(ArbiterRaceTest, DeterministicResolutionUnderScriptedSchedule)
{
    // A seeded script of requests is replayed twice on real threads,
    // serialized by a turn counter so the admission order is the
    // script order both times. Decisions and published counters must
    // be bit-identical: admission depends only on the request
    // sequence, never on wall time or thread identity.
    constexpr int kThreads = 4;
    constexpr int kScriptLength = 600;
    struct ScriptEntry {
        int thread;
        ActuationDomain domain;
        ActuationIntent intent;
    };
    std::vector<ScriptEntry> script;
    script.reserve(kScriptLength);
    std::mt19937 rng(20220877u);
    for (int i = 0; i < kScriptLength; ++i) {
        script.push_back(
            {static_cast<int>(rng() % kThreads),
             static_cast<ActuationDomain>(rng() % 4),
             rng() % 3 != 0 ? ActuationIntent::kExpand
                            : ActuationIntent::kRestore});
    }

    const auto run = [&script](telemetry::MetricRegistry& metrics) {
        InterferenceArbiterConfig config;
        config.policy = ArbitrationPolicy::kStaticPriority;
        config.priority = {"scripted0", "scripted1"};
        InterferenceArbiter arbiter(
            config, telemetry::MetricScope(metrics, "arbiter"));
        std::vector<std::string> decisions(script.size());
        std::atomic<std::size_t> turn{0};
        std::vector<std::thread> threads;
        threads.reserve(kThreads);
        for (int t = 0; t < kThreads; ++t) {
            threads.emplace_back([&, t] {
                const std::string agent =
                    "scripted" + std::to_string(t);
                while (true) {
                    const std::size_t i =
                        turn.load(std::memory_order_acquire);
                    if (i >= script.size()) {
                        return;
                    }
                    if (script[i].thread != t) {
                        std::this_thread::yield();
                        continue;
                    }
                    const core::ActuationDecision decision =
                        arbiter.Admit({agent, script[i].domain,
                                       script[i].intent, 1.0});
                    decisions[i] = decision.admitted
                                       ? "admitted"
                                       : "denied-by-" +
                                             decision.conflicting_agent;
                    turn.store(i + 1, std::memory_order_release);
                }
            });
        }
        for (std::thread& thread : threads) {
            thread.join();
        }
        arbiter.WriteMetrics();
        return decisions;
    };

    telemetry::MetricRegistry first_metrics;
    telemetry::MetricRegistry second_metrics;
    const std::vector<std::string> first = run(first_metrics);
    const std::vector<std::string> second = run(second_metrics);

    EXPECT_EQ(first, second);
    EXPECT_EQ(first_metrics.counters(), second_metrics.counters());
    // The script is long enough to exercise both outcomes.
    std::uint64_t denials = 0;
    for (const std::string& decision : first) {
        denials += decision != "admitted" ? 1 : 0;
    }
    EXPECT_GT(denials, 0u);
    EXPECT_LT(denials, static_cast<std::uint64_t>(first.size()));
}

}  // namespace
}  // namespace sol::cluster
