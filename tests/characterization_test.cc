/**
 * @file
 * Tests for the Table 1 / Table 2 characterization registries.
 */
#include <gtest/gtest.h>

#include "characterization/taxonomy.h"

namespace sol::characterization {
namespace {

TEST(TaxonomyTest, SeventySevenAgents)
{
    EXPECT_EQ(TotalAgents(), 77u);
}

TEST(TaxonomyTest, SixClasses)
{
    EXPECT_EQ(Taxonomy().size(), 6u);
}

TEST(TaxonomyTest, BenefitClassesMatchPaper)
{
    // Monitoring/logging, watchdogs, and resource control benefit.
    for (const auto& row : Taxonomy()) {
        const bool expected = row.cls == AgentClass::kMonitoring ||
                              row.cls == AgentClass::kWatchdogs ||
                              row.cls == AgentClass::kResourceControl;
        EXPECT_EQ(row.benefits_from_ml, expected) << ToString(row.cls);
    }
}

TEST(TaxonomyTest, ThirtyFivePercentBenefit)
{
    EXPECT_EQ(AgentsBenefiting(), 27u);  // 18 + 7 + 2.
    EXPECT_NEAR(BenefitFraction(), 0.35, 0.005);
}

TEST(TaxonomyTest, ClassCountsMatchPaper)
{
    for (const auto& row : Taxonomy()) {
        switch (row.cls) {
          case AgentClass::kConfiguration:
            EXPECT_EQ(row.count, 25u);
            break;
          case AgentClass::kServices:
            EXPECT_EQ(row.count, 23u);
            break;
          case AgentClass::kMonitoring:
            EXPECT_EQ(row.count, 18u);
            break;
          case AgentClass::kWatchdogs:
            EXPECT_EQ(row.count, 7u);
            break;
          case AgentClass::kResourceControl:
            EXPECT_EQ(row.count, 2u);
            break;
          case AgentClass::kAccess:
            EXPECT_EQ(row.count, 2u);
            break;
        }
    }
}

TEST(TaxonomyTest, NamesAreDistinct)
{
    EXPECT_NE(ToString(AgentClass::kConfiguration),
              ToString(AgentClass::kServices));
    EXPECT_EQ(ToString(AgentClass::kMonitoring), "Monitoring/logging");
}

TEST(LearningAgentsTest, TableTwoHasSixRows)
{
    EXPECT_EQ(LearningAgents().size(), 6u);
}

TEST(LearningAgentsTest, ImplementedAgentsPresent)
{
    bool harvest = false;
    bool overclock = false;
    bool disaggregation = false;
    for (const auto& row : LearningAgents()) {
        harvest |= row.name == "SmartHarvest";
        overclock |= row.name == "Overclocking";
        disaggregation |= row.name == "Disaggregation";
    }
    EXPECT_TRUE(harvest);
    EXPECT_TRUE(overclock);
    EXPECT_TRUE(disaggregation);
}

TEST(LearningAgentsTest, FrequenciesMatchPaper)
{
    for (const auto& row : LearningAgents()) {
        if (row.name == "SmartHarvest") {
            EXPECT_EQ(row.frequency, sim::Millis(25));
        }
        if (row.name == "Overclocking") {
            EXPECT_EQ(row.frequency, sim::Seconds(1));
        }
        if (row.name == "Disaggregation") {
            EXPECT_EQ(row.frequency, sim::Millis(100));
        }
    }
}

}  // namespace
}  // namespace sol::characterization
