/**
 * @file
 * Tests for the multi-agent node + cluster simulation subsystem:
 * InterferenceArbiter conflict resolution, MultiAgentNode lifecycle and
 * per-agent accounting, and ClusterDriver fleet determinism.
 */
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "cluster/cluster_driver.h"
#include "cluster/interference_arbiter.h"
#include "cluster/multi_agent_node.h"
#include "cluster/threaded_multi_agent_node.h"
#include "core/prediction.h"
#include "sim/event_queue.h"

namespace sol {
namespace {

using cluster::ArbitrationPolicy;
using cluster::ClusterConfig;
using cluster::ClusterDriver;
using cluster::InterferenceArbiter;
using cluster::InterferenceArbiterConfig;
using cluster::MultiAgentNode;
using cluster::MultiAgentNodeConfig;
using cluster::ThreadedMultiAgentNode;
using core::ActuationDomain;
using core::ActuationIntent;
using core::ActuationRequest;

ActuationRequest
Expand(const std::string& agent, ActuationDomain domain,
       double magnitude = 1.0)
{
    return {agent, domain, ActuationIntent::kExpand, magnitude};
}

ActuationRequest
Restore(const std::string& agent, ActuationDomain domain)
{
    return {agent, domain, ActuationIntent::kRestore, 0.0};
}

// ---- InterferenceArbiter ------------------------------------------------

TEST(InterferenceArbiter, ResolvesOverclockVsHarvestDeterministically)
{
    telemetry::MetricRegistry metrics;
    InterferenceArbiter arbiter(
        {}, telemetry::MetricScope(metrics, "arbiter"));

    // Scripted conflict: SmartHarvest reclaims cores, then
    // SmartOverclock tries to raise frequency on the coupled domain.
    EXPECT_TRUE(
        arbiter.Admit(Expand("smart-harvest", ActuationDomain::kCpuCores))
            .admitted);
    const auto denied = arbiter.Admit(
        Expand("smart-overclock", ActuationDomain::kCpuFrequency, 2.3));
    EXPECT_FALSE(denied.admitted);
    EXPECT_EQ(denied.conflicting_agent, "smart-harvest");
    EXPECT_EQ(arbiter.conflicts_resolved(), 1u);

    // The holder restores; the boost is now admitted.
    EXPECT_TRUE(
        arbiter.Admit(Restore("smart-harvest", ActuationDomain::kCpuCores))
            .admitted);
    EXPECT_TRUE(arbiter
                    .Admit(Expand("smart-overclock",
                                  ActuationDomain::kCpuFrequency, 2.3))
                    .admitted);
    EXPECT_EQ(arbiter.conflicts_resolved(), 1u);

    // Per-agent accounting is kept in contention-safe atomics and
    // published into the registry on demand.
    arbiter.WriteMetrics();
    EXPECT_EQ(metrics.Counter("arbiter.smart-overclock.denied"), 1u);
    EXPECT_EQ(metrics.Counter("arbiter.smart-harvest.restores"), 1u);
    EXPECT_EQ(metrics.Counter(
                  "arbiter.denial.smart-overclock.by.smart-harvest"),
              1u);
}

TEST(InterferenceArbiter, SameDomainContentionBetweenAgents)
{
    telemetry::MetricRegistry metrics;
    InterferenceArbiter arbiter(
        {}, telemetry::MetricScope(metrics, "arbiter"));

    EXPECT_TRUE(arbiter.Admit(Expand("a", ActuationDomain::kCpuCores))
                    .admitted);
    // Refreshing one's own hold is never a conflict.
    EXPECT_TRUE(arbiter.Admit(Expand("a", ActuationDomain::kCpuCores))
                    .admitted);
    EXPECT_FALSE(arbiter.Admit(Expand("b", ActuationDomain::kCpuCores))
                     .admitted);
    EXPECT_EQ(arbiter.HolderOf(ActuationDomain::kCpuCores), "a");

    // Uncoupled domains do not conflict.
    EXPECT_TRUE(
        arbiter.Admit(Expand("b", ActuationDomain::kTelemetryBudget))
            .admitted);
}

TEST(InterferenceArbiter, RestoreIsNeverBlocked)
{
    telemetry::MetricRegistry metrics;
    InterferenceArbiter arbiter(
        {}, telemetry::MetricScope(metrics, "arbiter"));

    EXPECT_TRUE(arbiter.Admit(Expand("a", ActuationDomain::kCpuCores))
                    .admitted);
    // A denied agent can still restore (its safeguard path).
    EXPECT_FALSE(
        arbiter.Admit(Expand("b", ActuationDomain::kCpuFrequency))
            .admitted);
    EXPECT_TRUE(
        arbiter.Admit(Restore("b", ActuationDomain::kCpuFrequency))
            .admitted);
}

TEST(InterferenceArbiter, DisabledArbiterObservesButAdmits)
{
    telemetry::MetricRegistry metrics;
    InterferenceArbiterConfig config;
    config.enabled = false;
    InterferenceArbiter arbiter(
        config, telemetry::MetricScope(metrics, "arbiter"));

    EXPECT_TRUE(
        arbiter.Admit(Expand("smart-harvest", ActuationDomain::kCpuCores))
            .admitted);
    EXPECT_TRUE(arbiter
                    .Admit(Expand("smart-overclock",
                                  ActuationDomain::kCpuFrequency))
                    .admitted);
    EXPECT_EQ(arbiter.conflicts_observed(), 1u);
    EXPECT_EQ(arbiter.conflicts_resolved(), 0u);
}

TEST(InterferenceArbiter, StaticPriorityLetsImportantAgentThrough)
{
    telemetry::MetricRegistry metrics;
    InterferenceArbiterConfig config;
    config.policy = ArbitrationPolicy::kStaticPriority;
    config.priority = {"smart-overclock", "smart-harvest"};
    InterferenceArbiter arbiter(
        config, telemetry::MetricScope(metrics, "arbiter"));

    EXPECT_TRUE(
        arbiter.Admit(Expand("smart-harvest", ActuationDomain::kCpuCores))
            .admitted);
    // Overclock outranks the harvest holder and is admitted...
    EXPECT_TRUE(arbiter
                    .Admit(Expand("smart-overclock",
                                  ActuationDomain::kCpuFrequency))
                    .admitted);
    // ...and the lower-priority agent's next expand is the one denied.
    EXPECT_FALSE(
        arbiter.Admit(Expand("smart-harvest", ActuationDomain::kCpuCores))
            .admitted);
}

// ---- Scripted conflict through the real actuators -----------------------

TEST(MultiAgentNode, ArbiterResolvesScriptedActuatorConflict)
{
    sim::EventQueue queue;
    MultiAgentNodeConfig config;
    MultiAgentNode node(queue, config);

    auto* harvest = node.harvest_actuator();
    auto* overclock = node.overclock_actuator();
    ASSERT_NE(harvest, nullptr);
    ASSERT_NE(overclock, nullptr);

    const double nominal = node.node().NominalFrequency();
    const double boost =
        node.node().AllowedFrequencies().back();  // Highest DVFS step.
    const int allocated = node.node().AllocatedCores(node.primary_vm());

    // Script: SmartHarvest acts on a prediction that reclaims cores...
    harvest->TakeAction(core::MakePrediction(allocated - 2, queue.Now(),
                                             sim::Seconds(1)));
    EXPECT_EQ(node.node().GrantedCores(node.elastic_vm()), 2);

    // ...then SmartOverclock tries to boost: the arbiter denies it and
    // the actuator takes its conservative action (nominal frequency).
    overclock->TakeAction(
        core::MakePrediction(boost, queue.Now(), sim::Seconds(1)));
    EXPECT_EQ(node.node().VmFrequency(node.primary_vm()), nominal);
    EXPECT_GE(node.arbiter().conflicts_resolved(), 1u);

    // Once harvesting stops, the same boost goes through.
    harvest->TakeAction(std::nullopt);  // Conservative: return cores.
    overclock->TakeAction(
        core::MakePrediction(boost, queue.Now(), sim::Seconds(1)));
    EXPECT_EQ(node.node().VmFrequency(node.primary_vm()), boost);

    // Determinism: the scripted sequence resolves exactly one conflict.
    EXPECT_EQ(node.arbiter().conflicts_resolved(), 1u);
}

// ---- MultiAgentNode lifecycle -------------------------------------------

TEST(MultiAgentNode, RunsAllFourAgentsConcurrently)
{
    sim::EventQueue queue;
    MultiAgentNodeConfig config;
    MultiAgentNode node(queue, config);

    // All four agents are registered before the node even starts.
    EXPECT_EQ(node.registry().size(), 4u);
    EXPECT_TRUE(node.registry().Contains("smart-overclock"));
    EXPECT_TRUE(node.registry().Contains("smart-harvest"));
    EXPECT_TRUE(node.registry().Contains("smart-memory"));
    EXPECT_TRUE(node.registry().Contains("smart-monitor"));

    node.Start();
    queue.RunFor(sim::Seconds(5));

    // Every agent's model loop made progress on the shared queue.
    EXPECT_GT(node.OverclockStats().epochs, 0u);
    EXPECT_GT(node.HarvestStats().epochs, 0u);
    EXPECT_GT(node.MonitorStats().epochs, 0u);
    // SmartMemory's epoch is 38.4 s; its model loop must at least be
    // collecting scan rounds by now.
    EXPECT_GT(node.MemoryStats().samples_collected, 0u);
    // Harvest dominates the epoch count (25 ms epochs => ~40/s).
    EXPECT_GE(node.TotalEpochs(), 150u);

    node.CollectMetrics();
    EXPECT_GT(node.metrics().Gauge("smart-harvest.epochs"), 0.0);
    EXPECT_GT(node.metrics().Gauge("smart-overclock.actions_taken"), 0.0);
    EXPECT_GT(node.metrics().Gauge("node.total_epochs"), 0.0);
    node.Stop();
}

TEST(MultiAgentNode, DisabledAgentsLeaveRegistryAndQueueIdle)
{
    sim::EventQueue queue;
    MultiAgentNodeConfig config;
    config.run_memory = false;
    config.run_monitor = false;
    MultiAgentNode node(queue, config);

    EXPECT_EQ(node.registry().size(), 2u);
    node.Start();
    queue.RunFor(sim::Seconds(1));
    EXPECT_EQ(node.MemoryStats().epochs, 0u);
    EXPECT_EQ(node.MonitorStats().epochs, 0u);
    EXPECT_GT(node.HarvestStats().epochs, 0u);
    node.Stop();
}

TEST(MultiAgentNode, CleanUpAllRestoresCleanNodeState)
{
    sim::EventQueue queue;
    MultiAgentNodeConfig config;
    MultiAgentNode node(queue, config);
    node.Start();
    queue.RunFor(sim::Seconds(5));

    // The SRE path: terminate every agent by registry alone.
    node.CleanUpAll();
    EXPECT_EQ(node.node().VmFrequency(node.primary_vm()),
              node.node().NominalFrequency());
    EXPECT_EQ(node.node().GrantedCores(node.elastic_vm()), 0);
    EXPECT_EQ(node.node().GrantedCores(node.primary_vm()),
              node.node().AllocatedCores(node.primary_vm()));
    EXPECT_TRUE(node.policy().is_uniform());

    // CleanUp is idempotent.
    node.CleanUpAll();
    EXPECT_EQ(node.node().GrantedCores(node.elastic_vm()), 0);
}

TEST(MultiAgentNode, TeardownWhileIntentsAreInFlight)
{
    // Destroying a running node mid-flight — agents scheduled, holds
    // live in the arbiter, nothing stopped or cleaned up first — must
    // tear down via the registry cleanups alone. The aggressive
    // expand profile keeps coupled-domain holds live at the moment of
    // destruction.
    sim::EventQueue queue;
    MultiAgentNodeConfig config;
    config.synthetic_agents = 8;
    config.synthetic.expand_fraction = 1.0;
    config.customize_synthetic = [](std::size_t i,
                                    cluster::SyntheticAgentConfig& c) {
        c.domain = i % 2 == 0 ? ActuationDomain::kCpuFrequency
                              : ActuationDomain::kCpuCores;
    };
    {
        MultiAgentNode node(queue, config);
        node.Start();
        queue.RunFor(sim::Seconds(1));
        EXPECT_GT(node.arbiter().requests(), 0u);
        bool any_holding = false;
        for (std::size_t i = 0; i < node.num_synthetic_agents(); ++i) {
            any_holding |= node.synthetic_agent(i).actuator().holding();
        }
        EXPECT_TRUE(any_holding);
        // No Stop(), no CleanUpAll(): scope exit does everything.
    }
    // The queue outlives the node; pending agent events were cancelled.
    queue.RunFor(sim::Seconds(1));
}

TEST(MultiAgentNode, RunIsDeterministicForAFixedSeed)
{
    auto run = [](std::uint64_t seed) {
        sim::EventQueue queue;
        MultiAgentNodeConfig config;
        config.seed = seed;
        MultiAgentNode node(queue, config);
        node.Start();
        queue.RunFor(sim::Seconds(3));
        node.CollectMetrics();
        struct Result {
            std::uint64_t epochs;
            std::uint64_t harvest_samples;
            std::uint64_t arbiter_requests;
            double p99;
        } r{node.TotalEpochs(),
            node.HarvestStats().samples_collected,
            node.arbiter().requests(),
            node.primary_workload().PerformanceValue()};
        node.Stop();
        return r;
    };

    const auto a = run(7);
    const auto b = run(7);
    EXPECT_EQ(a.epochs, b.epochs);
    EXPECT_EQ(a.harvest_samples, b.harvest_samples);
    EXPECT_EQ(a.arbiter_requests, b.arbiter_requests);
    EXPECT_EQ(a.p99, b.p99);

    // A different seed drives a different trajectory.
    const auto c = run(8);
    EXPECT_NE(a.p99, c.p99);
}

// ---- Synthetic agents: fleet-realistic node pressure ---------------------

TEST(SyntheticAgents, Reach77AgentsPerNodeWithRealProgress)
{
    sim::EventQueue queue;
    MultiAgentNodeConfig config;
    config.synthetic_agents = 73;  // + the 4 real agents = 77 (paper).
    MultiAgentNode node(queue, config);

    EXPECT_EQ(node.num_agents(), 77u);
    EXPECT_EQ(node.registry().size(), 77u);
    EXPECT_EQ(node.num_synthetic_agents(), 73u);
    EXPECT_TRUE(node.registry().Contains("synthetic0"));
    EXPECT_TRUE(node.registry().Contains("synthetic72"));

    node.Start();
    queue.RunFor(sim::Seconds(2));

    // Every synthetic runtime makes learning progress of its own.
    for (std::size_t i = 0; i < node.num_synthetic_agents(); ++i) {
        EXPECT_GT(node.synthetic_agent(i).runtime().stats().epochs, 0u)
            << "synthetic" << i << " made no progress";
    }
    // The real agents still run underneath the synthetic load.
    EXPECT_GT(node.HarvestStats().epochs, 0u);
    EXPECT_GT(node.OverclockStats().epochs, 0u);

    // 73 extra actuators produce real arbiter pressure: requests and
    // resolved conflicts on the telemetry/memory domains.
    EXPECT_GT(node.arbiter().requests(), 1000u);
    EXPECT_GT(node.arbiter().conflicts_resolved(), 0u);

    // AggregateStats rolls synthetics into the node totals.
    const core::RuntimeStats total = node.AggregateStats();
    EXPECT_GT(total.epochs, node.HarvestStats().epochs);
    EXPECT_GT(total.invalid_samples, 0u);  // Injected bad readings.
    EXPECT_GE(total.peak_queued_predictions, 1u);
    node.Stop();
}

TEST(SyntheticAgents, CleanUpAllReleasesSyntheticHolds)
{
    sim::EventQueue queue;
    MultiAgentNodeConfig config;
    config.synthetic_agents = 16;
    MultiAgentNode node(queue, config);
    node.Start();
    queue.RunFor(sim::Seconds(2));

    node.CleanUpAll();
    for (std::size_t i = 0; i < node.num_synthetic_agents(); ++i) {
        EXPECT_FALSE(node.synthetic_agent(i).actuator().holding())
            << "synthetic" << i << " still holds its domain";
    }
    // The real agents' clean state is preserved too.
    EXPECT_EQ(node.node().VmFrequency(node.primary_vm()),
              node.node().NominalFrequency());
}

TEST(SyntheticAgents, FleetRunsAreDeterministicAtFullPressure)
{
    const auto run = [](std::uint64_t seed) {
        ClusterConfig config;
        config.num_nodes = 2;
        config.base_seed = seed;
        config.node.synthetic_agents = 73;
        ClusterDriver driver(config);
        driver.Run(sim::Seconds(1));
        struct Result {
            std::uint64_t trace_hash;
            std::uint64_t executed;
            std::uint64_t epochs;
            std::uint64_t arbiter;
        } r{driver.queue().trace_hash(), driver.queue().executed(),
            driver.Stats().total_epochs, driver.Stats().arbiter_requests};
        driver.Stop();
        return r;
    };

    const auto a = run(5);
    const auto b = run(5);
    EXPECT_EQ(a.trace_hash, b.trace_hash);
    EXPECT_EQ(a.executed, b.executed);
    EXPECT_EQ(a.epochs, b.epochs);
    EXPECT_EQ(a.arbiter, b.arbiter);
    EXPECT_EQ(run(5).trace_hash, a.trace_hash);
    EXPECT_NE(run(6).trace_hash, a.trace_hash);

    // 154 agents on one queue is real pressure, not idle filler.
    EXPECT_GT(a.executed, 50'000u);
}

TEST(SyntheticAgents, QueuePendingLimitSurfacesInFleetMetrics)
{
    ClusterConfig config;
    config.num_nodes = 1;
    config.node.synthetic_agents = 40;
    config.queue_pending_limit = 32;  // Far below what 44 agents need.
    ClusterDriver driver(config);
    driver.Run(sim::Millis(500));

    telemetry::MetricRegistry out;
    driver.CollectFleetMetrics(out);
    // The storm is loud: drops are counted, never silently absorbed.
    EXPECT_GT(out.Gauge("fleet.queue.dropped"), 0.0);
    EXPECT_LE(out.Gauge("fleet.queue.pending"), 32.0);
    driver.Stop();
}

// ---- ThreadedMultiAgentNode (real threads, real clock) -------------------

template <typename Condition>
bool
WaitUntil(Condition condition)
{
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(20);
    while (std::chrono::steady_clock::now() < deadline) {
        if (condition()) {
            return true;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return condition();
}

TEST(ThreadedMultiAgentNode, RunsSyntheticFleetOnRealThreads)
{
    MultiAgentNodeConfig config;
    config.run_overclock = false;
    config.run_harvest = false;
    config.run_memory = false;
    config.run_monitor = false;
    config.synthetic_agents = 12;
    // Wall-clock cadence fast enough to make real progress in a blink.
    config.synthetic.data_collect_interval = sim::Micros(200);
    config.synthetic.max_epoch_time = sim::Millis(5);
    config.synthetic.max_actuation_delay = sim::Millis(10);
    config.synthetic.assess_actuator_interval = sim::Millis(2);
    config.synthetic.prediction_ttl = sim::Millis(10);

    ThreadedMultiAgentNode<> node(config);
    EXPECT_EQ(node.num_agents(), 12u);
    EXPECT_EQ(node.registry().size(), 12u);
    EXPECT_TRUE(node.registry().Contains("synthetic0"));

    node.Start();
    EXPECT_TRUE(node.started());
    // All 12 agent threads make learning progress and announce intents
    // into the shared arbiter concurrently.
    EXPECT_TRUE(WaitUntil([&] {
        return node.AggregateStats().epochs > 100 &&
               node.arbiter().requests() > 50;
    })) << "threaded synthetic fleet made no progress";
    node.Stop();
    EXPECT_FALSE(node.started());

    const core::RuntimeStats total = node.AggregateStats();
    EXPECT_GT(total.samples_collected, total.epochs);
    EXPECT_GT(total.actions_taken, 0u);
    node.CollectMetrics();
    EXPECT_GT(node.metrics().Gauge("synthetic0.epochs"), 0.0);
    EXPECT_GT(node.metrics().Gauge("node.total_epochs"), 0.0);

    // The whole node restarts cleanly (threads re-spawn).
    node.Start();
    const std::uint64_t before = node.AggregateStats().epochs;
    EXPECT_TRUE(
        WaitUntil([&] { return node.AggregateStats().epochs > before; }));
    node.Stop();
}

TEST(ThreadedMultiAgentNode, RunsRealAgentsOnSharedSubstrate)
{
    MultiAgentNodeConfig config;  // All four real agents, no synthetics.
    ThreadedMultiAgentNode<> node(config);
    EXPECT_EQ(node.registry().size(), 4u);
    EXPECT_TRUE(node.registry().Contains("smart-overclock"));
    EXPECT_TRUE(node.registry().Contains("smart-harvest"));
    EXPECT_TRUE(node.registry().Contains("smart-memory"));
    EXPECT_TRUE(node.registry().Contains("smart-monitor"));

    node.Start();
    // Harvest runs 25 ms epochs on the wall clock; the driver thread
    // advances the shared substrate underneath all four agents.
    EXPECT_TRUE(WaitUntil([&] {
        return node.AgentStats("smart-harvest").epochs > 5 &&
               node.AgentStats("smart-overclock").epochs > 0;
    })) << "real agents made no progress on the threaded node";
    node.Stop();

    node.CollectMetrics();
    EXPECT_GT(node.metrics().Gauge("smart-harvest.epochs"), 0.0);
    EXPECT_GT(node.metrics().Gauge("node.primary_freq_ghz"), 0.0);

    // Incident response drives the substrate back to its clean state.
    node.CleanUpAll();
}

TEST(ThreadedMultiAgentNode, TeardownWhileIntentsAreInFlight)
{
    MultiAgentNodeConfig config;
    config.run_overclock = false;
    config.run_harvest = false;
    config.run_memory = false;
    config.run_monitor = false;
    config.synthetic_agents = 8;
    config.synthetic.data_collect_interval = sim::Micros(200);
    config.synthetic.max_epoch_time = sim::Millis(5);
    config.synthetic.max_actuation_delay = sim::Millis(10);
    config.synthetic.prediction_ttl = sim::Millis(10);
    config.synthetic.expand_fraction = 1.0;
    config.customize_synthetic = [](std::size_t i,
                                    cluster::SyntheticAgentConfig& c) {
        c.domain = i % 2 == 0 ? ActuationDomain::kCpuFrequency
                              : ActuationDomain::kCpuCores;
    };

    ThreadedMultiAgentNode<> node(config);
    node.Start();
    // Destroy the node the moment agents are actively hammering the
    // arbiter: the destructor must stop every runtime thread and run
    // the registry cleanups while holds are still live.
    EXPECT_TRUE(
        WaitUntil([&] { return node.arbiter().requests() > 100; }));
    // Scope exit with 8 threads mid-intent: no Stop(), no CleanUpAll().
}

TEST(ThreadedMultiAgentNode, SingleAgentRestartWhilePeersRun)
{
    MultiAgentNodeConfig config;
    config.run_overclock = false;
    config.run_harvest = false;
    config.run_memory = false;
    config.run_monitor = false;
    config.synthetic_agents = 4;
    config.synthetic.data_collect_interval = sim::Micros(200);
    config.synthetic.max_epoch_time = sim::Millis(5);
    config.synthetic.max_actuation_delay = sim::Millis(10);
    config.synthetic.prediction_ttl = sim::Millis(10);

    ThreadedMultiAgentNode<> node(config);
    node.Start();
    ASSERT_TRUE(WaitUntil(
        [&] { return node.AgentStats("synthetic1").epochs > 10; }));

    node.StopAgent("synthetic1");
    const std::uint64_t stopped_at =
        node.AgentStats("synthetic1").epochs;
    const std::uint64_t peer_at = node.AgentStats("synthetic0").epochs;
    // Peers keep making progress while synthetic1 is down.
    EXPECT_TRUE(WaitUntil([&] {
        return node.AgentStats("synthetic0").epochs > peer_at + 10;
    }));
    EXPECT_EQ(node.AgentStats("synthetic1").epochs, stopped_at);

    // Restart resumes the same agent (stats continue, not reset).
    node.StartAgent("synthetic1");
    EXPECT_TRUE(WaitUntil([&] {
        return node.AgentStats("synthetic1").epochs > stopped_at;
    }));
    node.Stop();
}

// ---- ClusterDriver -------------------------------------------------------

TEST(ClusterDriver, StepsMultipleNodesOnOneSharedClock)
{
    ClusterConfig config;
    config.num_nodes = 3;
    ClusterDriver driver(config);
    driver.Run(sim::Seconds(2));

    const cluster::FleetStats fleet = driver.Stats();
    EXPECT_GT(fleet.total_epochs, 0u);
    EXPECT_GT(fleet.total_actions, 0u);
    for (std::size_t i = 0; i < driver.num_nodes(); ++i) {
        EXPECT_GT(driver.node(i).TotalEpochs(), 0u)
            << "node " << i << " made no progress";
    }

    telemetry::MetricRegistry out;
    driver.CollectFleetMetrics(out);
    EXPECT_EQ(out.Gauge("fleet.num_nodes"), 3.0);
    EXPECT_GT(out.Gauge("fleet.total_epochs"), 0.0);
    EXPECT_GT(out.Gauge("node0.smart-harvest.epochs"), 0.0);
    EXPECT_GT(out.Gauge("node2.smart-harvest.epochs"), 0.0);
    driver.Stop();
}

TEST(ClusterDriver, PerNodeRngStreamsAreIndependentButReproducible)
{
    auto run = [](std::uint64_t base_seed) {
        ClusterConfig config;
        config.num_nodes = 2;
        config.base_seed = base_seed;
        ClusterDriver driver(config);
        driver.Run(sim::Seconds(2));
        std::vector<double> p99;
        for (std::size_t i = 0; i < driver.num_nodes(); ++i) {
            p99.push_back(
                driver.node(i).primary_workload().PerformanceValue());
        }
        driver.Stop();
        return p99;
    };

    const auto a = run(1);
    const auto b = run(1);
    EXPECT_EQ(a, b);  // Same fleet seed => identical fleet trajectory.
    EXPECT_NE(a[0], a[1]);  // Nodes within a fleet diverge.

    // Distinct per-node seeds come out of the derivation.
    EXPECT_NE(ClusterDriver::DeriveNodeSeed(1, 0),
              ClusterDriver::DeriveNodeSeed(1, 1));
    EXPECT_NE(ClusterDriver::DeriveNodeSeed(1, 0),
              ClusterDriver::DeriveNodeSeed(2, 0));
}

TEST(ClusterDriver, CleanUpAllSweepsEveryNode)
{
    ClusterConfig config;
    config.num_nodes = 2;
    ClusterDriver driver(config);
    driver.Run(sim::Seconds(2));
    driver.CleanUpAll();
    for (std::size_t i = 0; i < driver.num_nodes(); ++i) {
        MultiAgentNode& node = driver.node(i);
        EXPECT_EQ(node.node().VmFrequency(node.primary_vm()),
                  node.node().NominalFrequency());
        EXPECT_EQ(node.node().GrantedCores(node.elastic_vm()), 0);
    }
}

}  // namespace
}  // namespace sol
