/**
 * @file
 * Tests for the SOL core: schedule validation/parsing, prediction
 * expiry, the agent registry, and — most importantly — the SimRuntime's
 * learning-epoch and safeguard semantics, using an instrumented fake
 * agent.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/agent_registry.h"
#include "core/prediction.h"
#include "core/schedule.h"
#include "core/sim_runtime.h"
#include "sim/event_queue.h"

namespace sol::core {
namespace {

using sim::EventQueue;
using sim::Millis;
using sim::Seconds;

// ---------------------------------------------------------------------------
// Prediction
// ---------------------------------------------------------------------------

TEST(PredictionTest, FreshUntilExpiry)
{
    const auto pred = MakePrediction(42, Millis(100), Millis(50));
    EXPECT_TRUE(pred.FreshAt(Millis(100)));
    EXPECT_TRUE(pred.FreshAt(Millis(150)));
    EXPECT_FALSE(pred.FreshAt(Millis(151)));
    EXPECT_FALSE(pred.is_default);
}

TEST(PredictionTest, DefaultFlagSet)
{
    const auto pred = MakeDefaultPrediction(7, Millis(0), Millis(10));
    EXPECT_TRUE(pred.is_default);
    EXPECT_EQ(pred.value, 7);
}

// ---------------------------------------------------------------------------
// Schedule
// ---------------------------------------------------------------------------

TEST(ScheduleTest, DefaultIsValid)
{
    EXPECT_TRUE(Schedule{}.IsValid());
}

TEST(ScheduleTest, DetectsEveryInvalidField)
{
    Schedule schedule;
    schedule.data_per_epoch = 0;
    EXPECT_FALSE(schedule.IsValid());

    schedule = Schedule{};
    schedule.data_collect_interval = Millis(0);
    EXPECT_FALSE(schedule.IsValid());

    schedule = Schedule{};
    schedule.max_epoch_time = Millis(0);
    EXPECT_FALSE(schedule.IsValid());

    schedule = Schedule{};
    schedule.max_epoch_time = Millis(10);
    schedule.data_collect_interval = Millis(20);
    EXPECT_FALSE(schedule.IsValid());

    schedule = Schedule{};
    schedule.assess_model_every_epochs = 0;
    EXPECT_FALSE(schedule.IsValid());

    schedule = Schedule{};
    schedule.max_actuation_delay = Millis(0);
    EXPECT_FALSE(schedule.IsValid());

    schedule = Schedule{};
    schedule.assess_actuator_interval = Millis(0);
    EXPECT_FALSE(schedule.IsValid());
}

TEST(ScheduleTest, ValidateListsAllProblems)
{
    Schedule schedule;
    schedule.data_per_epoch = -1;
    schedule.max_actuation_delay = Millis(0);
    EXPECT_EQ(schedule.Validate().size(), 2u);
}

TEST(ParseDurationTest, AllUnits)
{
    EXPECT_EQ(ParseDuration("250ns"), sim::Nanos(250));
    EXPECT_EQ(ParseDuration("50us"), sim::Micros(50));
    EXPECT_EQ(ParseDuration("100ms"), Millis(100));
    EXPECT_EQ(ParseDuration("2s"), Seconds(2));
    EXPECT_EQ(ParseDuration("1.5s"), Millis(1500));
}

TEST(ParseDurationTest, RejectsGarbage)
{
    EXPECT_THROW(ParseDuration("abc"), std::invalid_argument);
    EXPECT_THROW(ParseDuration("10years"), std::invalid_argument);
}

TEST(ParseScheduleTest, ParsesListing3StyleConfig)
{
    std::istringstream in(
        "# SmartOverclock schedule\n"
        "data_per_epoch = 10\n"
        "data_collect_interval = 100ms\n"
        "max_epoch_time = 1500ms\n"
        "assess_model_every_epochs = 1\n"
        "max_actuation_delay = 5s\n"
        "assess_actuator_interval = 1s\n");
    const Schedule schedule = ParseSchedule(in);
    EXPECT_EQ(schedule.data_per_epoch, 10);
    EXPECT_EQ(schedule.data_collect_interval, Millis(100));
    EXPECT_EQ(schedule.max_epoch_time, Millis(1500));
    EXPECT_EQ(schedule.max_actuation_delay, Seconds(5));
    EXPECT_TRUE(schedule.IsValid());
}

TEST(ParseScheduleTest, RejectsUnknownKey)
{
    std::istringstream in("bogus_key = 12\n");
    EXPECT_THROW(ParseSchedule(in), std::invalid_argument);
}

TEST(ParseScheduleTest, RejectsMalformedLine)
{
    std::istringstream in("data_per_epoch 10\n");
    EXPECT_THROW(ParseSchedule(in), std::invalid_argument);
}

TEST(ParseScheduleTest, EmptyInputKeepsDefaults)
{
    std::istringstream in("\n# comment only\n");
    const Schedule schedule = ParseSchedule(in);
    EXPECT_EQ(schedule.data_per_epoch, Schedule{}.data_per_epoch);
}

// ---------------------------------------------------------------------------
// AgentRegistry
// ---------------------------------------------------------------------------

TEST(AgentRegistryTest, CleanUpRunsCallback)
{
    AgentRegistry registry;
    int cleanups = 0;
    registry.Register("agent", [&] { ++cleanups; });
    EXPECT_TRUE(registry.CleanUp("agent"));
    EXPECT_TRUE(registry.CleanUp("agent"));  // Idempotent by contract.
    EXPECT_EQ(cleanups, 2);
}

TEST(AgentRegistryTest, UnknownAgentReturnsFalse)
{
    AgentRegistry registry;
    EXPECT_FALSE(registry.CleanUp("ghost"));
}

TEST(AgentRegistryTest, CleanUpAllRunsEverything)
{
    AgentRegistry registry;
    int total = 0;
    registry.Register("a", [&] { total += 1; });
    registry.Register("b", [&] { total += 10; });
    registry.CleanUpAll();
    EXPECT_EQ(total, 11);
}

TEST(AgentRegistryTest, UnregisterRemoves)
{
    AgentRegistry registry;
    registry.Register("a", [] {});
    EXPECT_TRUE(registry.Contains("a"));
    registry.Unregister("a");
    EXPECT_FALSE(registry.Contains("a"));
    EXPECT_EQ(registry.size(), 0u);
}

TEST(AgentRegistryTest, ReRegisterReplaces)
{
    AgentRegistry registry;
    int which = 0;
    registry.Register("a", [&] { which = 1; });
    registry.Register("a", [&] { which = 2; });
    registry.CleanUp("a");
    EXPECT_EQ(which, 2);
    EXPECT_EQ(registry.size(), 1u);
}

TEST(AgentRegistryTest, NamesSorted)
{
    AgentRegistry registry;
    registry.Register("zeta", [] {});
    registry.Register("alpha", [] {});
    const auto names = registry.Names();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "alpha");
    EXPECT_EQ(names[1], "zeta");
}

TEST(AgentRegistryTest, MultiAgentRegistrationAndLookup)
{
    // The deployment shape: many agents side by side in one registry,
    // each terminable by name without disturbing the others.
    AgentRegistry registry;
    std::vector<int> cleaned(8, 0);
    for (int i = 0; i < 8; ++i) {
        registry.Register("agent-" + std::to_string(i),
                          [&cleaned, i] { ++cleaned[i]; });
    }
    EXPECT_EQ(registry.size(), 8u);
    EXPECT_TRUE(registry.CleanUp("agent-3"));
    EXPECT_EQ(cleaned[3], 1);
    EXPECT_EQ(cleaned[2], 0);
    // CleanUp does not unregister: the callback stays invocable.
    EXPECT_TRUE(registry.Contains("agent-3"));
    registry.CleanUpAll();
    for (int i = 0; i < 8; ++i) {
        EXPECT_GE(cleaned[i], 1) << "agent-" << i;
    }
}

TEST(AgentRegistryTest, ConcurrentRegisterDeregisterAndCleanUp)
{
    // Agents churn (register/unregister) on some threads while an SRE
    // thread repeatedly fires whole-registry cleanup. Nothing may
    // deadlock, crash, or run a callback after a torn registration.
    AgentRegistry registry;
    std::atomic<int> cleanups{0};
    constexpr int kThreads = 4;
    constexpr int kIterations = 500;

    std::vector<std::thread> churners;
    for (int t = 0; t < kThreads; ++t) {
        churners.emplace_back([&registry, &cleanups, t] {
            const std::string name = "churn-" + std::to_string(t);
            for (int i = 0; i < kIterations; ++i) {
                registry.Register(name, [&cleanups] { ++cleanups; });
                registry.CleanUp(name);
                registry.Unregister(name);
            }
        });
    }
    std::thread sre([&registry] {
        for (int i = 0; i < kIterations; ++i) {
            registry.CleanUpAll();
            registry.Names();
            registry.size();
        }
    });
    for (auto& thread : churners) {
        thread.join();
    }
    sre.join();

    // Every churner ran its own cleanup each iteration; the SRE sweep
    // may have added more.
    EXPECT_GE(cleanups.load(), kThreads * kIterations);
    EXPECT_EQ(registry.size(), 0u);
}

TEST(AgentRegistryTest, ScopedRegistrationCleansUpOnDestruction)
{
    AgentRegistry registry;
    int cleaned = 0;
    {
        ScopedRegistration scoped(registry, "scoped-agent",
                                  [&cleaned] { ++cleaned; });
        EXPECT_TRUE(registry.Contains("scoped-agent"));
        EXPECT_EQ(cleaned, 0);
    }
    EXPECT_EQ(cleaned, 1);
    EXPECT_FALSE(registry.Contains("scoped-agent"));
}

TEST(AgentRegistryTest, ScopedRegistrationMoveTransfersOwnership)
{
    AgentRegistry registry;
    int cleaned = 0;
    {
        ScopedRegistration outer;
        {
            ScopedRegistration inner(registry, "moved-agent",
                                     [&cleaned] { ++cleaned; });
            outer = std::move(inner);
        }
        // The moved-from registration released nothing.
        EXPECT_EQ(cleaned, 0);
        EXPECT_TRUE(registry.Contains("moved-agent"));
    }
    EXPECT_EQ(cleaned, 1);
    EXPECT_FALSE(registry.Contains("moved-agent"));
}

// ---------------------------------------------------------------------------
// SimRuntime semantics, via an instrumented fake agent.
// ---------------------------------------------------------------------------

/** Scripted model: integers as data, integers as predictions. */
class FakeModel : public Model<int, int>
{
  public:
    explicit FakeModel(const sim::Clock& clock) : clock_(clock) {}

    int
    CollectData() override
    {
        ++collects;
        return next_data;
    }

    bool
    ValidateData(const int& data) override
    {
        ++validations;
        return data >= 0;  // Negative data is invalid.
    }

    void
    CommitData(sim::TimePoint, const int& data) override
    {
        committed.push_back(data);
    }

    void
    UpdateModel() override
    {
        ++updates;
    }

    Prediction<int>
    ModelPredict() override
    {
        ++predicts;
        return MakePrediction(100 + predicts, clock_.Now(), ttl);
    }

    Prediction<int>
    DefaultPredict() override
    {
        ++defaults;
        return MakeDefaultPrediction(-1, clock_.Now(), ttl);
    }

    bool
    AssessModel() override
    {
        ++assessments;
        return model_healthy;
    }

    bool
    ShortCircuitEpoch() override
    {
        return short_circuit;
    }

    const sim::Clock& clock_;
    sim::Duration ttl = Seconds(10);
    int next_data = 1;
    bool model_healthy = true;
    bool short_circuit = false;
    int collects = 0;
    int validations = 0;
    int updates = 0;
    int predicts = 0;
    int defaults = 0;
    int assessments = 0;
    std::vector<int> committed;
};

/** Recording actuator. */
class FakeActuator : public Actuator<int>
{
  public:
    void
    TakeAction(std::optional<Prediction<int>> pred) override
    {
        actions.push_back(pred);
    }

    bool
    AssessPerformance() override
    {
        ++assessments;
        return performance_ok;
    }

    void
    Mitigate() override
    {
        ++mitigations;
    }

    void
    CleanUp() override
    {
        ++cleanups;
    }

    std::vector<std::optional<Prediction<int>>> actions;
    bool performance_ok = true;
    int assessments = 0;
    int mitigations = 0;
    int cleanups = 0;
};

Schedule
FastSchedule()
{
    Schedule schedule;
    schedule.data_per_epoch = 4;
    schedule.data_collect_interval = Millis(10);
    schedule.max_epoch_time = Millis(100);
    schedule.assess_model_every_epochs = 1;
    schedule.max_actuation_delay = Millis(200);
    schedule.assess_actuator_interval = Millis(50);
    return schedule;
}

class SimRuntimeTest : public ::testing::Test
{
  protected:
    SimRuntimeTest() : model(queue) {}

    void
    Start(RuntimeOptions options = {})
    {
        runtime = std::make_unique<SimRuntime<int, int>>(
            queue, model, actuator, FastSchedule(), options);
        runtime->Start();
    }

    EventQueue queue;
    FakeModel model;
    FakeActuator actuator;
    std::unique_ptr<SimRuntime<int, int>> runtime;
};

TEST_F(SimRuntimeTest, RejectsInvalidSchedule)
{
    Schedule bad;
    bad.data_per_epoch = 0;
    EXPECT_THROW((SimRuntime<int, int>(queue, model, actuator, bad)),
                 std::invalid_argument);
}

TEST_F(SimRuntimeTest, EpochCollectsExactlyDataPerEpoch)
{
    Start();
    // One epoch: 4 collects at 10 ms -> prediction at t=40ms.
    queue.RunUntil(Millis(45));
    EXPECT_EQ(model.collects, 4);
    EXPECT_EQ(model.updates, 1);
    EXPECT_EQ(model.predicts, 1);
    EXPECT_EQ(runtime->stats().epochs, 1u);
}

TEST_F(SimRuntimeTest, PredictionsReachActuatorImmediately)
{
    Start();
    queue.RunUntil(Millis(45));
    ASSERT_EQ(actuator.actions.size(), 1u);
    ASSERT_TRUE(actuator.actions[0].has_value());
    EXPECT_EQ(actuator.actions[0]->value, 101);
}

TEST_F(SimRuntimeTest, EpochsRepeat)
{
    Start();
    queue.RunUntil(Millis(400));
    EXPECT_EQ(runtime->stats().epochs, 10u);
    EXPECT_EQ(model.updates, 10);
}

TEST_F(SimRuntimeTest, InvalidDataDiscardedAndRetried)
{
    Start();
    model.next_data = -1;  // Everything invalid.
    queue.RunUntil(Millis(95));
    EXPECT_TRUE(model.committed.empty());
    EXPECT_GT(runtime->stats().invalid_samples, 0u);
    // Epoch short-circuits at max_epoch_time with a default prediction.
    queue.RunUntil(Millis(160));
    EXPECT_GE(model.defaults, 1);
    EXPECT_GE(runtime->stats().short_circuit_epochs, 1u);
    ASSERT_FALSE(actuator.actions.empty());
    EXPECT_TRUE(actuator.actions[0].has_value());
    EXPECT_TRUE(actuator.actions[0]->is_default);
}

TEST_F(SimRuntimeTest, PartialInvalidDataExtendsEpoch)
{
    Start();
    // First two samples invalid, rest valid: the epoch still completes
    // with 4 valid samples, just later.
    model.next_data = -1;
    queue.RunUntil(Millis(25));
    model.next_data = 5;
    queue.RunUntil(Millis(65));
    // Two invalid samples (t=10,20) then four valid (t=30..60): the
    // epoch completes late but with full data, not short-circuited.
    EXPECT_EQ(runtime->stats().epochs, 1u);
    EXPECT_EQ(model.committed.size(), 4u);
    EXPECT_EQ(runtime->stats().short_circuit_epochs, 0u);
}

TEST_F(SimRuntimeTest, DisableValidationCommitsBadData)
{
    RuntimeOptions options;
    options.disable_data_validation = true;
    Start(options);
    model.next_data = -7;
    queue.RunUntil(Millis(45));
    ASSERT_EQ(model.committed.size(), 4u);
    EXPECT_EQ(model.committed[0], -7);
    EXPECT_EQ(runtime->stats().invalid_samples, 0u);
}

TEST_F(SimRuntimeTest, DataFaultAppliedBeforeValidation)
{
    Start();
    runtime->SetDataFault([](int& data) { data = -99; });
    queue.RunUntil(Millis(45));
    EXPECT_TRUE(model.committed.empty());
    EXPECT_GT(runtime->stats().invalid_samples, 0u);
}

TEST_F(SimRuntimeTest, FailedAssessmentInterceptsPredictions)
{
    Start();
    model.model_healthy = false;
    queue.RunUntil(Millis(45));
    // The model still updates and predicts, but the actuator sees the
    // default.
    EXPECT_EQ(model.updates, 1);
    EXPECT_EQ(model.predicts, 1);
    EXPECT_EQ(model.defaults, 1);
    ASSERT_EQ(actuator.actions.size(), 1u);
    EXPECT_TRUE(actuator.actions[0]->is_default);
    EXPECT_EQ(runtime->stats().intercepted_predictions, 1u);
    EXPECT_TRUE(runtime->model_assessment_failing());
}

TEST_F(SimRuntimeTest, ModelRecoversWhenAssessmentPasses)
{
    Start();
    model.model_healthy = false;
    queue.RunUntil(Millis(45));
    model.model_healthy = true;
    queue.RunUntil(Millis(90));
    ASSERT_EQ(actuator.actions.size(), 2u);
    EXPECT_FALSE(actuator.actions[1]->is_default);
    EXPECT_FALSE(runtime->model_assessment_failing());
}

TEST_F(SimRuntimeTest, DisableModelAssessmentNeverIntercepts)
{
    RuntimeOptions options;
    options.disable_model_assessment = true;
    Start(options);
    model.model_healthy = false;
    queue.RunUntil(Millis(95));
    EXPECT_EQ(model.assessments, 0);
    EXPECT_EQ(runtime->stats().intercepted_predictions, 0u);
}

TEST_F(SimRuntimeTest, AssessmentCadenceEveryKEpochs)
{
    Schedule schedule = FastSchedule();
    schedule.assess_model_every_epochs = 3;
    runtime = std::make_unique<SimRuntime<int, int>>(queue, model,
                                                     actuator, schedule);
    runtime->Start();
    queue.RunUntil(Millis(400));  // 10 epochs.
    EXPECT_EQ(model.assessments, 3);  // Epochs 3, 6, 9.
}

TEST_F(SimRuntimeTest, ShortCircuitEndsEpochWithDefault)
{
    Start();
    model.short_circuit = true;
    queue.RunUntil(Millis(15));
    EXPECT_EQ(runtime->stats().epochs, 1u);
    EXPECT_EQ(model.updates, 0);
    EXPECT_EQ(model.defaults, 1);
}

TEST_F(SimRuntimeTest, ActuatorTimeoutDeliversEmpty)
{
    Start();
    model.short_circuit = false;
    // Stall the model so no predictions arrive at all.
    runtime->StallModelFor(Seconds(10));
    queue.RunUntil(Millis(450));
    // Timeouts every 200 ms: at 200 and 400 ms.
    ASSERT_GE(actuator.actions.size(), 2u);
    for (const auto& action : actuator.actions) {
        EXPECT_FALSE(action.has_value());
    }
    EXPECT_GE(runtime->stats().actuator_timeouts, 2u);
}

TEST_F(SimRuntimeTest, StallDefersCollects)
{
    Start();
    runtime->StallModelFor(Millis(500));
    queue.RunUntil(Millis(490));
    EXPECT_EQ(model.collects, 0);
    queue.RunUntil(Millis(600));
    EXPECT_GT(model.collects, 0);
}

TEST_F(SimRuntimeTest, ExpiredPredictionsDroppedByActuator)
{
    Start();
    // Already-expired predictions (e.g. built from stale telemetry)
    // must never reach TakeAction.
    model.ttl = Millis(-1);
    queue.RunUntil(Millis(250));
    EXPECT_GT(runtime->stats().expired_predictions, 0u);
    for (const auto& action : actuator.actions) {
        EXPECT_FALSE(action.has_value());
    }
}

TEST_F(SimRuntimeTest, BlockingActuatorUsesStalePredictions)
{
    RuntimeOptions options;
    options.blocking_actuator = true;
    Start(options);
    model.ttl = Millis(1);
    queue.RunUntil(Millis(250));
    // The blocking ablation acts on whatever arrives, however stale,
    // and never times out.
    EXPECT_EQ(runtime->stats().actuator_timeouts, 0u);
    ASSERT_FALSE(actuator.actions.empty());
    for (const auto& action : actuator.actions) {
        EXPECT_TRUE(action.has_value());
    }
}

TEST_F(SimRuntimeTest, SafeguardHaltsActuationAndMitigates)
{
    Start();
    actuator.performance_ok = false;
    queue.RunUntil(Millis(500));
    EXPECT_TRUE(runtime->actuator_halted());
    EXPECT_GT(actuator.mitigations, 0);
    EXPECT_EQ(runtime->stats().safeguard_triggers, 1u);
    // Actions stop after the halt (only pre-halt actions recorded).
    const auto actions_at_halt = actuator.actions.size();
    queue.RunUntil(Millis(900));
    EXPECT_EQ(actuator.actions.size(), actions_at_halt);
}

TEST_F(SimRuntimeTest, SafeguardResumesWhenHealthy)
{
    Start();
    actuator.performance_ok = false;
    queue.RunUntil(Millis(300));
    EXPECT_TRUE(runtime->actuator_halted());
    actuator.performance_ok = true;
    queue.RunUntil(Millis(600));
    EXPECT_FALSE(runtime->actuator_halted());
    EXPECT_GT(runtime->stats().halted_time.count(), 0);
    // Actions flow again.
    EXPECT_GT(actuator.actions.size(), 0u);
}

TEST_F(SimRuntimeTest, DisableActuatorSafeguardNeverAssesses)
{
    RuntimeOptions options;
    options.disable_actuator_safeguard = true;
    Start(options);
    actuator.performance_ok = false;
    queue.RunUntil(Millis(500));
    EXPECT_EQ(actuator.assessments, 0);
    EXPECT_FALSE(runtime->actuator_halted());
}

TEST_F(SimRuntimeTest, StopHaltsBothLoops)
{
    Start();
    queue.RunUntil(Millis(45));
    runtime->Stop();
    const int collects = model.collects;
    const auto actions = actuator.actions.size();
    queue.RunUntil(Millis(500));
    EXPECT_EQ(model.collects, collects);
    EXPECT_EQ(actuator.actions.size(), actions);
    EXPECT_FALSE(runtime->running());
}

TEST_F(SimRuntimeTest, QueueBoundEvictsOldest)
{
    RuntimeOptions options;
    options.max_queued_predictions = 2;
    // Halt the actuator... instead: use blocking actuator that never
    // wakes? Simplest: stall nothing; predictions are consumed
    // immediately in sim, so force eviction by halting actuation.
    Start(options);
    actuator.performance_ok = false;
    queue.RunUntil(Millis(500));
    // While halted, deliveries are dropped rather than queued.
    EXPECT_GT(runtime->stats().dropped_while_halted, 0u);
    EXPECT_EQ(runtime->queued_predictions(), 0u);
}

TEST_F(SimRuntimeTest, StatsCountersConsistent)
{
    Start();
    queue.RunUntil(Seconds(2));
    const RuntimeStats& stats = runtime->stats();
    EXPECT_EQ(stats.epochs,
              stats.model_updates + stats.short_circuit_epochs);
    EXPECT_EQ(stats.predictions_delivered, stats.epochs);
    EXPECT_EQ(stats.actions_taken,
              stats.actions_with_prediction + stats.actuator_timeouts);
}

TEST_F(SimRuntimeTest, RuntimeStatsPrintable)
{
    Start();
    queue.RunUntil(Millis(100));
    std::ostringstream out;
    out << runtime->stats();
    EXPECT_NE(out.str().find("epochs = "), std::string::npos);
}

}  // namespace
}  // namespace sol::core
