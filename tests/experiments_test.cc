/**
 * @file
 * Integration tests: full agent + node + workload + runtime scenarios
 * through the experiment harness. These are shortened versions of the
 * paper's experiments asserting the qualitative relationships each
 * figure relies on (who wins, directions of safeguard effects), plus
 * determinism of the whole stack.
 */
#include <gtest/gtest.h>

#include "experiments/harvest_experiments.h"
#include "experiments/memory_experiments.h"
#include "experiments/overclock_experiments.h"

namespace sol::experiments {
namespace {

using sim::Seconds;

// ---------------------------------------------------------------------------
// Overclock scenarios
// ---------------------------------------------------------------------------

TEST(OverclockIntegrationTest, StaticFrequencySpeedsUpSynthetic)
{
    OverclockRunConfig config;
    config.workload = OverclockWorkload::kSynthetic;
    config.duration = Seconds(300);
    config.synthetic.work_gcycles = 240;
    config.static_freq_ghz = 1.5;
    const auto nominal = RunOverclock(config);
    config.static_freq_ghz = 2.3;
    const auto overclocked = RunOverclock(config);
    EXPECT_GT(NormalizedPerf(overclocked, nominal), 1.3);
    EXPECT_GT(overclocked.avg_power_watts, 2.0 * nominal.avg_power_watts);
}

TEST(OverclockIntegrationTest, DiskSpeedGainsNothing)
{
    OverclockRunConfig config;
    config.workload = OverclockWorkload::kDiskSpeed;
    config.duration = Seconds(200);
    config.static_freq_ghz = 1.5;
    const auto nominal = RunOverclock(config);
    config.static_freq_ghz = 2.3;
    const auto overclocked = RunOverclock(config);
    EXPECT_DOUBLE_EQ(nominal.perf_value, overclocked.perf_value);
}

TEST(OverclockIntegrationTest, AgentKeepsDiskSpeedNearNominalPower)
{
    OverclockRunConfig config;
    config.workload = OverclockWorkload::kDiskSpeed;
    config.duration = Seconds(400);
    const auto agent = RunOverclock(config);
    config.static_freq_ghz = 1.5;
    const auto nominal = RunOverclock(config);
    EXPECT_LT(agent.avg_power_watts, 1.1 * nominal.avg_power_watts);
}

TEST(OverclockIntegrationTest, DeterministicForSameSeed)
{
    OverclockRunConfig config;
    config.workload = OverclockWorkload::kSynthetic;
    config.duration = Seconds(200);
    const auto a = RunOverclock(config);
    const auto b = RunOverclock(config);
    EXPECT_DOUBLE_EQ(a.perf_value, b.perf_value);
    EXPECT_DOUBLE_EQ(a.energy_joules, b.energy_joules);
    EXPECT_EQ(a.stats.epochs, b.stats.epochs);
}

TEST(OverclockIntegrationTest, BrokenModelWastesPowerUnguarded)
{
    OverclockRunConfig config;
    config.workload = OverclockWorkload::kDiskSpeed;
    config.duration = Seconds(400);
    config.runtime.disable_actuator_safeguard = true;

    OverclockRunConfig broken_unguarded = config;
    broken_unguarded.broken_model = true;
    broken_unguarded.runtime.disable_model_assessment = true;

    OverclockRunConfig broken_guarded = config;
    broken_guarded.broken_model = true;

    const auto ideal = RunOverclock(config);
    const auto unguarded = RunOverclock(broken_unguarded);
    const auto guarded = RunOverclock(broken_guarded);

    // The unguarded broken model wastes far more power than the guarded.
    EXPECT_GT(unguarded.avg_power_watts, 2.0 * ideal.avg_power_watts);
    EXPECT_LT(guarded.avg_power_watts, 1.3 * ideal.avg_power_watts);
    EXPECT_GT(guarded.stats.intercepted_predictions, 0u);
}

TEST(OverclockIntegrationTest, ValidationProtectsAgainstBadData)
{
    OverclockRunConfig base;
    base.workload = OverclockWorkload::kSynthetic;
    base.duration = Seconds(600);
    base.synthetic.work_gcycles = 240;
    base.bad_data_prob = 0.05;

    const auto guarded = RunOverclock(base);
    OverclockRunConfig unguarded_config = base;
    unguarded_config.runtime.disable_data_validation = true;
    const auto unguarded = RunOverclock(unguarded_config);

    EXPECT_GT(guarded.stats.invalid_samples, 0u);
    EXPECT_EQ(unguarded.stats.invalid_samples, 0u);
}

TEST(OverclockIntegrationTest, TraceRecordsWhenEnabled)
{
    OverclockRunConfig config;
    config.workload = OverclockWorkload::kSynthetic;
    config.duration = Seconds(50);
    config.record_trace = true;
    const auto run = RunOverclock(config);
    EXPECT_NEAR(static_cast<double>(run.trace.size()), 50.0, 2.0);
}

// ---------------------------------------------------------------------------
// Harvest scenarios
// ---------------------------------------------------------------------------

TEST(HarvestIntegrationTest, HarvestingRecoversCores)
{
    HarvestRunConfig config;
    config.duration = Seconds(20);
    const auto run = RunHarvest(config);
    EXPECT_GT(run.harvested_core_seconds, 1.0);
    EXPECT_GT(run.stats.epochs, 100u);
}

TEST(HarvestIntegrationTest, QoSImpactBounded)
{
    HarvestRunConfig config;
    config.duration = Seconds(30);
    HarvestRunConfig baseline_config = config;
    baseline_config.harvesting = false;
    const auto baseline = RunHarvest(baseline_config);
    const auto run = RunHarvest(config);
    // The guarded agent keeps the P99 impact moderate.
    EXPECT_LT(LatencyIncreasePct(run, baseline), 60.0);
}

TEST(HarvestIntegrationTest, BrokenModelCaughtByAssessment)
{
    HarvestRunConfig config;
    config.duration = Seconds(20);
    config.broken_model = true;
    config.runtime.disable_actuator_safeguard = true;
    const auto guarded = RunHarvest(config);
    EXPECT_GT(guarded.stats.intercepted_predictions, 0u);

    HarvestRunConfig unguarded_config = config;
    unguarded_config.runtime.disable_model_assessment = true;
    const auto unguarded = RunHarvest(unguarded_config);
    // Without the safeguard the primary suffers more.
    EXPECT_GT(unguarded.p99_latency_ms, guarded.p99_latency_ms);
}

TEST(HarvestIntegrationTest, DeterministicForSameSeed)
{
    HarvestRunConfig config;
    config.duration = Seconds(10);
    const auto a = RunHarvest(config);
    const auto b = RunHarvest(config);
    EXPECT_DOUBLE_EQ(a.p99_latency_ms, b.p99_latency_ms);
    EXPECT_EQ(a.completed_requests, b.completed_requests);
}

TEST(HarvestIntegrationTest, MosesAndImageDnnBothRun)
{
    for (const auto wl :
         {HarvestWorkload::kImageDnn, HarvestWorkload::kMoses}) {
        HarvestRunConfig config;
        config.workload = wl;
        config.duration = Seconds(10);
        const auto run = RunHarvest(config);
        EXPECT_GT(run.completed_requests, 100u) << ToString(wl);
        EXPECT_GT(run.p99_latency_ms, 0.0) << ToString(wl);
    }
}

// ---------------------------------------------------------------------------
// Memory scenarios
// ---------------------------------------------------------------------------

TEST(MemoryIntegrationTest, SmartMemoryMeetsSloOnStationaryPattern)
{
    MemoryRunConfig config;
    config.workload = MemoryWorkload::kObjectStore;
    config.duration = Seconds(300);
    config.agent.mitigation_batches = 16;
    const auto run = RunMemory(config);
    EXPECT_GT(run.slo_attainment, 0.8);
    EXPECT_GT(run.migrations, 0u);
}

TEST(MemoryIntegrationTest, AdaptiveScanningCheaperThanMax)
{
    MemoryRunConfig config;
    config.workload = MemoryWorkload::kObjectStore;
    config.duration = Seconds(300);
    config.agent.mitigation_batches = 16;
    const auto smart = RunMemory(config);

    MemoryRunConfig max_config = config;
    max_config.fixed_arm = 0;
    max_config.runtime.disable_model_assessment = true;
    max_config.runtime.disable_actuator_safeguard = true;
    const auto max_run = RunMemory(max_config);

    EXPECT_LT(smart.bit_resets, max_run.bit_resets);
}

TEST(MemoryIntegrationTest, MinFrequencyScanningHurtsSlo)
{
    MemoryRunConfig config;
    config.workload = MemoryWorkload::kSpecJbb;
    config.duration = Seconds(400);
    config.fixed_arm = 5;
    config.runtime.disable_model_assessment = true;
    config.runtime.disable_actuator_safeguard = true;
    const auto min_run = RunMemory(config);

    MemoryRunConfig smart_config;
    smart_config.workload = MemoryWorkload::kSpecJbb;
    smart_config.duration = Seconds(400);
    smart_config.agent.mitigation_batches = 16;
    const auto smart = RunMemory(smart_config);

    EXPECT_GT(smart.slo_attainment, min_run.slo_attainment);
}

TEST(MemoryIntegrationTest, SafeguardsImproveOscillatingSlo)
{
    MemoryRunConfig base;
    base.workload = MemoryWorkload::kOscillating;
    base.duration = Seconds(500);
    base.agent.mitigation_batches = 16;

    MemoryRunConfig none = base;
    none.runtime.disable_model_assessment = true;
    none.runtime.disable_actuator_safeguard = true;

    const auto with_safeguards = RunMemory(base);
    const auto without = RunMemory(none);
    EXPECT_GT(with_safeguards.slo_attainment,
              without.slo_attainment + 0.2);
}

TEST(MemoryIntegrationTest, DeterministicForSameSeed)
{
    MemoryRunConfig config;
    config.duration = Seconds(100);
    const auto a = RunMemory(config);
    const auto b = RunMemory(config);
    EXPECT_EQ(a.scans, b.scans);
    EXPECT_EQ(a.bit_resets, b.bit_resets);
    EXPECT_DOUBLE_EQ(a.slo_attainment, b.slo_attainment);
}

TEST(MemoryIntegrationTest, TraceMatchesDuration)
{
    MemoryRunConfig config;
    config.duration = Seconds(100);
    const auto run = RunMemory(config);
    // One trace point per 2 s window.
    EXPECT_NEAR(static_cast<double>(run.trace.size()), 50.0, 2.0);
}

}  // namespace
}  // namespace sol::experiments
