/**
 * @file
 * Tests for the sharded parallel fleet executor: bit-determinism
 * across thread counts, shard-partition edge cases (empty shard,
 * single-node shard), mid-run node drain, heterogeneous synthetic
 * schedules, and the concurrent window-boundary metric merge (this
 * suite runs under TSan in CI — see .github/workflows/ci.yml).
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "cluster/node_shard.h"
#include "cluster/synthetic_agent.h"
#include "fleet/fleet_runner.h"
#include "telemetry/metric_registry.h"

namespace sol {
namespace {

using cluster::NodeShard;
using cluster::NodeShardConfig;
using fleet::FleetConfig;
using fleet::ShardedFleetRunner;

/** Small but real fleet: every node carries synthetic agents so the
 *  shards do meaningful work without making the suite slow. */
FleetConfig
SmallFleet(std::size_t num_nodes, std::size_t num_threads,
           std::uint64_t seed = 1)
{
    FleetConfig config;
    config.num_nodes = num_nodes;
    config.num_threads = num_threads;
    config.base_seed = seed;
    config.window = sim::Millis(50);
    config.node.synthetic_agents = 8;
    return config;
}

struct FleetFingerprint {
    std::uint64_t trace_hash;
    std::uint64_t executed;
    std::uint64_t epochs;
    std::uint64_t arbiter_requests;

    bool
    operator==(const FleetFingerprint& other) const
    {
        return trace_hash == other.trace_hash &&
               executed == other.executed && epochs == other.epochs &&
               arbiter_requests == other.arbiter_requests;
    }
};

FleetFingerprint
Fingerprint(ShardedFleetRunner& runner)
{
    const cluster::FleetStats stats = runner.Stats();
    return {runner.fleet_trace_hash(), runner.total_executed(),
            stats.total_epochs, stats.arbiter_requests};
}

// ---- NodeShard: the extracted shard-steppable core ----------------------

TEST(NodeShard, GlobalIndexingMatchesSerialDriver)
{
    // A shard owning global nodes [2, 4) must name and seed them
    // exactly as the serial driver would ("node2", "node3").
    NodeShardConfig config;
    config.first_node_index = 2;
    config.num_nodes = 2;
    config.base_seed = 7;
    NodeShard shard(config);

    ASSERT_EQ(shard.num_nodes(), 2u);
    EXPECT_EQ(shard.node(0).name(), "node2");
    EXPECT_EQ(shard.node(1).name(), "node3");
    EXPECT_EQ(shard.first_node_index(), 2u);

    shard.Run(sim::Seconds(1));
    EXPECT_GT(shard.Stats().total_epochs, 0u);
    shard.Stop();
}

TEST(NodeShard, EmptyShardAdvancesCleanly)
{
    NodeShardConfig config;
    config.num_nodes = 0;
    NodeShard shard(config);

    shard.Run(sim::Seconds(5));
    EXPECT_EQ(shard.queue().executed(), 0u);
    EXPECT_EQ(shard.queue().Now(), sim::Seconds(5));
    EXPECT_EQ(shard.Stats().total_agents, 0u);
    shard.Stop();  // No-ops, but must be safe.
    shard.CleanUpAll();
}

// ---- Determinism across thread counts -----------------------------------

TEST(ShardedFleetRunner, TraceHashIdenticalAcrossThreadCounts)
{
    auto run = [](std::size_t threads) {
        ShardedFleetRunner runner(SmallFleet(4, threads));
        runner.Run(sim::Seconds(1));
        const FleetFingerprint print = Fingerprint(runner);
        runner.Stop();
        return print;
    };

    const FleetFingerprint one = run(1);
    const FleetFingerprint two = run(2);
    const FleetFingerprint eight = run(8);
    EXPECT_EQ(one, two);
    EXPECT_EQ(one, eight);
    EXPECT_GT(one.executed, 10'000u);
    EXPECT_GT(one.epochs, 0u);

    // A different seed drives a genuinely different fleet.
    ShardedFleetRunner other(SmallFleet(4, 2, /*seed=*/9));
    other.Run(sim::Seconds(1));
    EXPECT_NE(one.trace_hash, other.fleet_trace_hash());
    other.Stop();
}

TEST(ShardedFleetRunner, HeterogeneousSchedulesStayDeterministic)
{
    auto run = [](std::size_t threads) {
        FleetConfig config = SmallFleet(4, threads);
        config.node.synthetic.period_jitter = 0.2;
        config.node.synthetic.burst_fraction = 0.25;
        ShardedFleetRunner runner(config);
        runner.Run(sim::Seconds(1));
        const FleetFingerprint print = Fingerprint(runner);
        runner.Stop();
        return print;
    };

    const FleetFingerprint a = run(1);
    const FleetFingerprint b = run(4);
    EXPECT_EQ(a, b);

    // Heterogeneity changes the trace relative to the uniform fleet.
    ShardedFleetRunner uniform(SmallFleet(4, 2));
    uniform.Run(sim::Seconds(1));
    EXPECT_NE(a.trace_hash, uniform.fleet_trace_hash());
    uniform.Stop();
}

TEST(ShardedFleetRunner, MatchesSerialShardComposition)
{
    // One shard holding the whole fleet is the serial ClusterDriver
    // composition: more threads than shards must neither deadlock nor
    // change the result.
    auto run = [](std::size_t threads) {
        FleetConfig config = SmallFleet(3, threads);
        config.num_shards = 1;
        ShardedFleetRunner runner(config);
        runner.Run(sim::Millis(800));
        const FleetFingerprint print = Fingerprint(runner);
        runner.Stop();
        return print;
    };

    const FleetFingerprint serial = run(1);
    const FleetFingerprint wide = run(4);
    EXPECT_EQ(serial, wide);
}

// ---- Shard-partition edge cases ------------------------------------------

TEST(ShardedFleetRunner, MoreShardsThanNodesLeavesEmptyShards)
{
    FleetConfig config = SmallFleet(2, 2);
    config.num_shards = 5;  // Shards 2..4 own zero nodes.
    ShardedFleetRunner runner(config);
    ASSERT_EQ(runner.num_shards(), 5u);
    EXPECT_EQ(runner.shard(0).num_nodes(), 1u);
    EXPECT_EQ(runner.shard(1).num_nodes(), 1u);
    EXPECT_EQ(runner.shard(4).num_nodes(), 0u);

    runner.Run(sim::Millis(500));
    EXPECT_GT(runner.total_executed(), 0u);
    EXPECT_EQ(runner.shard(4).queue().executed(), 0u);
    EXPECT_EQ(runner.shard(4).queue().Now(), sim::Millis(500));
    EXPECT_EQ(runner.Stats().total_agents, 2u * (4u + 8u));
    runner.Stop();
}

TEST(ShardedFleetRunner, SingleNodeShardsPartitionTheWholeFleet)
{
    FleetConfig config = SmallFleet(3, 2);
    // num_shards = 0 resolves to one shard per node.
    ShardedFleetRunner runner(config);
    ASSERT_EQ(runner.num_shards(), 3u);
    for (std::size_t s = 0; s < runner.num_shards(); ++s) {
        EXPECT_EQ(runner.shard(s).num_nodes(), 1u);
        EXPECT_EQ(runner.shard(s).first_node_index(), s);
    }
    // Global node lookup crosses shard boundaries.
    EXPECT_EQ(runner.node(0).name(), "node0");
    EXPECT_EQ(runner.node(2).name(), "node2");
    EXPECT_THROW(runner.node(3), std::out_of_range);
}

// ---- Mid-run drain -------------------------------------------------------

TEST(ShardedFleetRunner, MidRunNodeDrainIsDeterministic)
{
    auto run = [](std::size_t threads) {
        ShardedFleetRunner runner(SmallFleet(3, threads));
        runner.Run(sim::Millis(500));
        runner.DrainNode(1);
        const std::uint64_t epochs_at_drain =
            runner.node(1).TotalEpochs();
        runner.Run(sim::Millis(500));
        struct Result {
            FleetFingerprint print;
            std::uint64_t drained_epochs_frozen;
            std::uint64_t other_epochs;
        } result{Fingerprint(runner),
                 runner.node(1).TotalEpochs() - epochs_at_drain,
                 runner.node(0).TotalEpochs()};
        runner.Stop();
        return result;
    };

    const auto a = run(1);
    const auto b = run(4);
    // The drained node froze; its neighbors kept learning.
    EXPECT_EQ(a.drained_epochs_frozen, 0u);
    EXPECT_GT(a.other_epochs, 0u);
    // And the drain at a window boundary is thread-count independent.
    EXPECT_EQ(a.print, b.print);
    EXPECT_EQ(b.drained_epochs_frozen, 0u);
}

// ---- Window-boundary metrics ---------------------------------------------

TEST(ShardedFleetRunner, ConcurrentWindowMergePopulatesShardGauges)
{
    FleetConfig config = SmallFleet(4, 4);
    config.metrics_every_n_windows = 1;
    ShardedFleetRunner runner(config);
    runner.Run(sim::Seconds(1));

    const telemetry::MetricRegistry metrics =
        runner.WindowMetricsSnapshot();
    for (std::size_t s = 0; s < runner.num_shards(); ++s) {
        const std::string prefix = "shard" + std::to_string(s);
        EXPECT_GT(metrics.Gauge(prefix + ".queue.executed"), 0.0)
            << prefix;
        EXPECT_EQ(metrics.Gauge(prefix + ".virtual_seconds"), 1.0)
            << prefix;
        EXPECT_EQ(metrics.Gauge(prefix + ".num_nodes"), 1.0) << prefix;
    }
    runner.Stop();
}

TEST(ShardedFleetRunner, CollectFleetMetricsAggregatesAcrossShards)
{
    ShardedFleetRunner runner(SmallFleet(3, 2));
    runner.Run(sim::Seconds(1));

    telemetry::MetricRegistry out;
    runner.CollectFleetMetrics(out);
    EXPECT_EQ(out.Gauge("fleet.num_nodes"), 3.0);
    EXPECT_EQ(out.Gauge("fleet.num_shards"), 3.0);
    EXPECT_EQ(out.Gauge("fleet.num_threads"), 2.0);
    EXPECT_GT(out.Gauge("fleet.total_epochs"), 0.0);
    EXPECT_EQ(out.Gauge("fleet.queue.executed"),
              static_cast<double>(runner.total_executed()));
    // Per-node namespacing survives the shard boundary.
    EXPECT_GT(out.Gauge("node0.smart-harvest.epochs"), 0.0);
    EXPECT_GT(out.Gauge("node2.smart-harvest.epochs"), 0.0);
    runner.Stop();
}

TEST(ShardedFleetRunner, CleanUpAllSweepsEveryShard)
{
    ShardedFleetRunner runner(SmallFleet(4, 2));
    runner.Run(sim::Seconds(1));
    runner.CleanUpAll();
    for (std::size_t i = 0; i < runner.num_nodes(); ++i) {
        cluster::MultiAgentNode& node = runner.node(i);
        EXPECT_EQ(node.node().VmFrequency(node.primary_vm()),
                  node.node().NominalFrequency());
        EXPECT_EQ(node.node().GrantedCores(node.elastic_vm()), 0);
    }
    runner.Stop();
}

// ---- SharedMetricRegistry under real contention --------------------------

TEST(SharedMetricRegistry, ConcurrentMergesFromManyThreadsAddUp)
{
    constexpr int kThreads = 8;
    constexpr int kMergesPerThread = 200;

    telemetry::SharedMetricRegistry shared;
    std::atomic<int> ready{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&shared, &ready, t] {
            ready.fetch_add(1);
            while (ready.load() < kThreads) {
                // Spin so every thread merges concurrently.
            }
            telemetry::MetricRegistry local;
            local.Increment("merges");
            local.SetGauge("last_value", static_cast<double>(t));
            for (int i = 0; i < kMergesPerThread; ++i) {
                // Counters accumulate under a shared key; gauges land
                // in each producer's own namespace.
                shared.MergeFrom(local, "producer" + std::to_string(t));
                shared.Increment("total_merges");
            }
        });
    }
    for (std::thread& thread : threads) {
        thread.join();
    }

    const telemetry::MetricRegistry snapshot = shared.Snapshot();
    EXPECT_EQ(snapshot.Counter("total_merges"),
              static_cast<std::uint64_t>(kThreads * kMergesPerThread));
    for (int t = 0; t < kThreads; ++t) {
        const std::string prefix = "producer" + std::to_string(t);
        EXPECT_EQ(snapshot.Counter(prefix + ".merges"),
                  static_cast<std::uint64_t>(kMergesPerThread));
        EXPECT_EQ(snapshot.Gauge(prefix + ".last_value"),
                  static_cast<double>(t));
    }
}

}  // namespace
}  // namespace sol
