/**
 * @file
 * Deterministic fleet health timelines: TimeSeries ring semantics,
 * AlertEngine rule evaluation, Prometheus exposition, health reports,
 * and the fleet/node sampling integration.
 *
 * The load-bearing properties, in test order:
 *   1. TimeSeries — ring keeps the tail, queries refuse partial
 *      windows instead of extrapolating.
 *   2. TimeSeriesStore — name-ordered visitation, fixed-point gauge
 *      scaling, a timeline fingerprint that equal timelines share.
 *   3. AlertEngine — threshold/rate/burn conditions, hold timers,
 *      firing/resolved edges with observed values, SLO budgets.
 *   4. Exposition — byte-exact Prometheus text with sanitized names.
 *   5. Fleet integration — window-barrier sampling is byte-identical
 *      across repeat runs and 1/2/8 worker threads, and observe-only
 *      (enabling it leaves the fleet trace hash untouched).
 *   6. SharedTimeSeriesStore under concurrent producers/scrapers (the
 *      TSan leg repeats HealthConcurrency tests 20x).
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "cluster/multi_agent_node.h"
#include "fleet/fleet_runner.h"
#include "sim/event_queue.h"
#include "telemetry/alerting.h"
#include "telemetry/exposition.h"
#include "telemetry/metric_registry.h"
#include "telemetry/timeseries.h"

namespace sol::telemetry {
namespace {

sim::TimePoint
Ms(std::int64_t ms)
{
    return sim::TimePoint(sim::Millis(ms));
}

// ---- TimeSeries ring ----------------------------------------------------

TEST(TimeSeries, AppendsInOrderAndReportsLatest)
{
    TimeSeries series(8);
    EXPECT_TRUE(series.empty());
    series.Append(Ms(100), 5);
    series.Append(Ms(200), 7);
    series.Append(Ms(200), 9);  // Equal timestamps are legal.
    ASSERT_EQ(series.size(), 3u);
    EXPECT_EQ(series.at(0).value, 5);
    EXPECT_EQ(series.at(2).value, 9);
    EXPECT_EQ(series.Latest().at, Ms(200));
    EXPECT_EQ(series.Latest().value, 9);
    EXPECT_EQ(series.total_appended(), 3u);
}

TEST(TimeSeries, RingEvictsOldestAndKeepsTail)
{
    TimeSeries series(4);
    for (int i = 0; i < 10; ++i) {
        series.Append(Ms(100 * (i + 1)), i);
    }
    ASSERT_EQ(series.size(), 4u);
    EXPECT_EQ(series.capacity(), 4u);
    EXPECT_EQ(series.total_appended(), 10u);
    // Retained samples are the most recent four, oldest first.
    EXPECT_EQ(series.at(0).value, 6);
    EXPECT_EQ(series.at(3).value, 9);
}

TEST(TimeSeries, ValueAtResolvesLatestSampleAtOrBefore)
{
    TimeSeries series(8);
    series.Append(Ms(100), 1);
    series.Append(Ms(300), 3);
    std::int64_t value = -1;
    EXPECT_FALSE(series.ValueAt(Ms(50), &value));  // Before first.
    EXPECT_TRUE(series.ValueAt(Ms(100), &value));
    EXPECT_EQ(value, 1);
    EXPECT_TRUE(series.ValueAt(Ms(200), &value));  // Holds prior value.
    EXPECT_EQ(value, 1);
    EXPECT_TRUE(series.ValueAt(Ms(999), &value));
    EXPECT_EQ(value, 3);
}

TEST(TimeSeries, DeltaOverRefusesPartialWindows)
{
    TimeSeries series(8);
    series.Append(Ms(100), 10);
    series.Append(Ms(600), 25);
    std::int64_t delta = 0;
    // Window start (t - lookback) predates the first sample: refuse.
    EXPECT_FALSE(series.DeltaOver(Ms(400), sim::Millis(500), &delta));
    EXPECT_TRUE(series.DeltaOver(Ms(600), sim::Millis(500), &delta));
    EXPECT_EQ(delta, 15);
}

TEST(TimeSeries, DeltaOverRefusesEvictedWindowStart)
{
    TimeSeries series(2);
    series.Append(Ms(100), 1);
    series.Append(Ms(200), 2);
    series.Append(Ms(300), 3);  // Evicts the 100ms sample.
    std::int64_t delta = 0;
    EXPECT_FALSE(series.DeltaOver(Ms(300), sim::Millis(200), &delta));
    EXPECT_TRUE(series.DeltaOver(Ms(300), sim::Millis(100), &delta));
    EXPECT_EQ(delta, 1);
}

// ---- TimeSeriesStore ----------------------------------------------------

TEST(TimeSeriesStore, FindNeverInsertsAndVisitIsNameOrdered)
{
    TimeSeriesStore store;
    store.Append("b.two", Ms(100), 2);
    store.Append("a.one", Ms(100), 1);
    EXPECT_EQ(store.Find("missing"), nullptr);
    EXPECT_EQ(store.num_series(), 2u);

    std::vector<std::string> order;
    store.VisitSeries([&](const std::string& name, const TimeSeries&) {
        order.push_back(name);
    });
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], "a.one");
    EXPECT_EQ(order[1], "b.two");
    EXPECT_EQ(store.total_appended(), 2u);
}

TEST(TimeSeriesStore, SampleRegistryCoversEveryMetricKind)
{
    MetricRegistry registry;
    registry.Increment("epochs", 42);
    registry.SetGauge("load", 1.5);
    LatencyHistogram hist;
    hist.Record(1000);
    hist.Record(2000);
    registry.MergeHistogram("epoch_latency", hist);

    TimeSeriesStore store;
    store.SampleRegistry(registry, "node0", Ms(100));

    std::int64_t value = 0;
    ASSERT_TRUE(store.ValueAt("node0.epochs", Ms(100), &value));
    EXPECT_EQ(value, 42);
    // Gauges are fixed-point: value * kGaugeScale under `.milli`.
    ASSERT_TRUE(store.ValueAt("node0.load.milli", Ms(100), &value));
    EXPECT_EQ(value, 1500);
    ASSERT_TRUE(store.ValueAt("node0.epoch_latency.count", Ms(100), &value));
    EXPECT_EQ(value, 2);
    for (const char* q : {"p50_ns", "p90_ns", "p99_ns", "p999_ns"}) {
        ASSERT_TRUE(store.ValueAt("node0.epoch_latency." + std::string(q),
                                  Ms(100), &value))
            << q;
        EXPECT_GT(value, 0) << q;
    }
}

TEST(TimeSeriesStore, TimelineHashFingerprintsContent)
{
    TimeSeriesStore a;
    TimeSeriesStore b;
    a.Append("x", Ms(100), 1);
    b.Append("x", Ms(100), 1);
    EXPECT_EQ(a.timeline_hash(), b.timeline_hash());

    b.Append("x", Ms(200), 2);
    EXPECT_NE(a.timeline_hash(), b.timeline_hash());

    a.Append("x", Ms(200), 3);  // Same shape, different value.
    EXPECT_NE(a.timeline_hash(), b.timeline_hash());

    a.Clear();
    EXPECT_EQ(a.num_series(), 0u);
}

// ---- AlertEngine --------------------------------------------------------

AlertRule
ThresholdRule(const std::string& series, std::int64_t bound)
{
    AlertRule rule;
    rule.name = series + "_high";
    rule.kind = AlertKind::kThreshold;
    rule.series = series;
    rule.threshold = bound;
    return rule;
}

TEST(AlertEngine, ThresholdFiresAndResolvesWithValues)
{
    TimeSeriesStore store;
    AlertEngine engine;
    engine.AddRule(ThresholdRule("p99", 100));

    store.Append("p99", Ms(100), 50);
    engine.Evaluate(store, Ms(100));
    EXPECT_FALSE(engine.IsFiring("p99_high"));

    store.Append("p99", Ms(200), 150);
    engine.Evaluate(store, Ms(200));
    EXPECT_TRUE(engine.IsFiring("p99_high"));
    EXPECT_EQ(engine.FiringCount(), 1u);

    store.Append("p99", Ms(300), 80);
    engine.Evaluate(store, Ms(300));
    EXPECT_FALSE(engine.IsFiring("p99_high"));
    EXPECT_TRUE(engine.EverFired("p99_high"));

    ASSERT_EQ(engine.events().size(), 2u);
    EXPECT_EQ(engine.events()[0].at, Ms(200));
    EXPECT_TRUE(engine.events()[0].firing);
    EXPECT_EQ(engine.events()[0].value, 150);
    EXPECT_EQ(engine.events()[1].at, Ms(300));
    EXPECT_FALSE(engine.events()[1].firing);
    EXPECT_EQ(engine.events()[1].value, 80);
}

TEST(AlertEngine, FireBelowInvertsTheComparison)
{
    TimeSeriesStore store;
    AlertEngine engine;
    AlertRule rule = ThresholdRule("throughput", 10);
    rule.name = "throughput_low";
    rule.fire_above = false;
    engine.AddRule(rule);

    store.Append("throughput", Ms(100), 50);
    engine.Evaluate(store, Ms(100));
    EXPECT_FALSE(engine.IsFiring("throughput_low"));
    store.Append("throughput", Ms(200), 5);
    engine.Evaluate(store, Ms(200));
    EXPECT_TRUE(engine.IsFiring("throughput_low"));
}

TEST(AlertEngine, RateOfChangeRefusesPartialWindows)
{
    TimeSeriesStore store;
    AlertEngine engine;
    AlertRule rule;
    rule.name = "trip_rate";
    rule.kind = AlertKind::kRateOfChange;
    rule.series = "trips";
    rule.threshold = 5;
    rule.lookback = sim::Millis(200);
    engine.AddRule(rule);

    // One sample: the window start has no sample, so a huge absolute
    // value still cannot fire the rule.
    store.Append("trips", Ms(100), 1000);
    engine.Evaluate(store, Ms(100));
    EXPECT_FALSE(engine.IsFiring("trip_rate"));

    store.Append("trips", Ms(300), 1004);
    engine.Evaluate(store, Ms(300));
    EXPECT_FALSE(engine.IsFiring("trip_rate"));  // Delta 4 < 5.

    store.Append("trips", Ms(500), 1010);
    engine.Evaluate(store, Ms(500));
    EXPECT_TRUE(engine.IsFiring("trip_rate"));  // Delta 6 >= 5.
}

TEST(AlertEngine, HoldDelaysFiringUntilSustained)
{
    TimeSeriesStore store;
    AlertEngine engine;
    AlertRule rule = ThresholdRule("p99", 100);
    rule.hold = sim::Millis(250);
    engine.AddRule(rule);

    store.Append("p99", Ms(100), 150);
    engine.Evaluate(store, Ms(100));
    EXPECT_FALSE(engine.IsFiring("p99_high"));  // Hold running.

    store.Append("p99", Ms(200), 150);
    engine.Evaluate(store, Ms(200));
    EXPECT_FALSE(engine.IsFiring("p99_high"));  // 100ms < 250ms held.

    store.Append("p99", Ms(400), 150);
    engine.Evaluate(store, Ms(400));
    EXPECT_TRUE(engine.IsFiring("p99_high"));  // Held 300ms >= 250ms.

    // A single false observation resets the hold timer entirely.
    store.Append("p99", Ms(500), 50);
    engine.Evaluate(store, Ms(500));
    store.Append("p99", Ms(600), 150);
    engine.Evaluate(store, Ms(600));
    EXPECT_FALSE(engine.IsFiring("p99_high"));
}

TEST(AlertEngine, BurnRateComparesWindowedRatioAgainstBudget)
{
    TimeSeriesStore store;
    AlertEngine engine;
    AlertRule rule;
    rule.name = "invalid_burn";
    rule.kind = AlertKind::kBurnRate;
    rule.series = "invalid";
    rule.total_series = "total";
    rule.budget_ppm = 100'000;  // 10%.
    rule.burn_factor_milli = 2'000;  // Fire at >= 2x budget = 20%.
    rule.lookback = sim::Millis(200);
    engine.AddRule(rule);

    store.Append("invalid", Ms(100), 0);
    store.Append("total", Ms(100), 0);
    engine.Evaluate(store, Ms(100));

    // Window [100, 300]: 100 invalid of 1000 = 10% < 20%: silent.
    store.Append("invalid", Ms(300), 100);
    store.Append("total", Ms(300), 1000);
    engine.Evaluate(store, Ms(300));
    EXPECT_FALSE(engine.IsFiring("invalid_burn"));

    // Window [300, 500]: 300 more invalid of 1000 = 30% >= 20%: fire,
    // with the observed windowed ratio in ppm as the event value.
    store.Append("invalid", Ms(500), 400);
    store.Append("total", Ms(500), 2000);
    engine.Evaluate(store, Ms(500));
    EXPECT_TRUE(engine.IsFiring("invalid_burn"));
    ASSERT_FALSE(engine.events().empty());
    EXPECT_EQ(engine.events().back().value, 300'000);
}

TEST(AlertEngine, SloStatusesAccountWholeRunBudgets)
{
    TimeSeriesStore store;
    AlertEngine engine;
    AlertRule rule;
    rule.name = "invalid_burn";
    rule.kind = AlertKind::kBurnRate;
    rule.series = "invalid";
    rule.total_series = "total";
    rule.budget_ppm = 100'000;
    engine.AddRule(rule);
    engine.AddRule(ThresholdRule("p99", 1));  // Non-SLO: not reported.

    store.Append("invalid", Ms(100), 50);
    store.Append("total", Ms(100), 1000);
    const auto slos = engine.SloStatuses(store);
    ASSERT_EQ(slos.size(), 1u);
    EXPECT_EQ(slos[0].rule, "invalid_burn");
    EXPECT_EQ(slos[0].errors, 50);
    EXPECT_EQ(slos[0].total, 1000);
    EXPECT_EQ(slos[0].consumed_ppm, 50'000);
    EXPECT_EQ(slos[0].remaining_ppm, 50'000);
}

TEST(AlertEngine, RejectsMalformedRules)
{
    AlertEngine engine;
    AlertRule nameless;
    nameless.series = "x";
    EXPECT_THROW(engine.AddRule(nameless), std::invalid_argument);

    AlertRule seriesless;
    seriesless.name = "x";
    EXPECT_THROW(engine.AddRule(seriesless), std::invalid_argument);

    AlertRule burn;
    burn.name = "burn";
    burn.kind = AlertKind::kBurnRate;
    burn.series = "err";  // Missing total_series and budget.
    EXPECT_THROW(engine.AddRule(burn), std::invalid_argument);
}

TEST(AlertEngine, DefaultFleetPackIsWellFormed)
{
    const std::vector<AlertRule> pack = DefaultFleetAlertRules();
    EXPECT_GE(pack.size(), 7u);
    std::vector<std::string> names;
    for (const AlertRule& rule : pack) {
        EXPECT_FALSE(rule.name.empty());
        // Trace instants truncate string args beyond 23 bytes; every
        // pack rule name must survive the mirror whole.
        EXPECT_LE(rule.name.size(), 23u) << rule.name;
        EXPECT_FALSE(rule.series.empty()) << rule.name;
        if (rule.kind == AlertKind::kBurnRate) {
            EXPECT_FALSE(rule.total_series.empty()) << rule.name;
            EXPECT_GT(rule.budget_ppm, 0) << rule.name;
        }
        names.push_back(rule.name);
    }
    std::sort(names.begin(), names.end());
    EXPECT_EQ(std::adjacent_find(names.begin(), names.end()), names.end())
        << "duplicate rule names in the default pack";

    AlertEngine engine;
    engine.AddRules(pack);  // Must all pass AddRule validation.
    EXPECT_EQ(engine.num_rules(), pack.size());
}

// ---- Prometheus exposition ----------------------------------------------

TEST(PrometheusWriter, RegistryRendersTypedSanitizedMetrics)
{
    MetricRegistry registry;
    registry.Increment("fleet.epochs", 42);
    registry.SetGauge("fleet.load", 2.0);

    const std::string text = PrometheusWriter::RegistryToString(registry);
    EXPECT_NE(text.find("# TYPE fleet_epochs counter\n"), std::string::npos)
        << text;
    EXPECT_NE(text.find("fleet_epochs 42\n"), std::string::npos);
    EXPECT_NE(text.find("# TYPE fleet_load gauge\n"), std::string::npos);
    EXPECT_NE(text.find("fleet_load 2\n"), std::string::npos);
}

TEST(PrometheusWriter, HistogramsExportQuantileGauges)
{
    MetricRegistry registry;
    LatencyHistogram hist;
    hist.Record(1000);
    registry.MergeHistogram("epoch", hist);

    const std::string text = PrometheusWriter::RegistryToString(registry);
    EXPECT_NE(text.find("epoch_count 1\n"), std::string::npos) << text;
    EXPECT_NE(text.find("epoch_p99_ns"), std::string::npos);
}

TEST(PrometheusWriter, LatestRendersVirtualMillisTimestamps)
{
    TimeSeriesStore store;
    store.Append("fleet.epochs", Ms(1500), 7);
    const std::string text = PrometheusWriter::LatestToString(store);
    // Latest sample, sanitized name, value, virtual-ms timestamp.
    EXPECT_EQ(text, "fleet_epochs 7 1500\n");
}

TEST(PrometheusWriter, EveryExportedNameIsValid)
{
    MetricRegistry registry;
    registry.Increment("fleet.data.invalid");
    registry.Increment("9starts.with-digit");
    const std::string text = PrometheusWriter::RegistryToString(registry);
    std::size_t start = 0;
    while (start < text.size()) {
        std::size_t end = text.find('\n', start);
        const std::string line = text.substr(start, end - start);
        start = end + 1;
        if (line.empty() || line[0] == '#') {
            continue;
        }
        const std::string name = line.substr(0, line.find(' '));
        EXPECT_TRUE(IsValidMetricName(name)) << line;
    }
}

// ---- Health report ------------------------------------------------------

TEST(HealthReportWriter, SerializesTimelineAlertsAndSlos)
{
    TimeSeriesStore store;
    AlertEngine engine;
    engine.AddRule(ThresholdRule("p99", 100));
    store.Append("p99", Ms(100), 150);
    engine.Evaluate(store, Ms(100));

    const std::string json =
        HealthReportWriter::ToString("unit", store, engine);
    EXPECT_NE(json.find("\"health\": \"unit\""), std::string::npos) << json;
    EXPECT_NE(json.find("\"timeline_hash\""), std::string::npos);
    EXPECT_NE(json.find("\"p99\""), std::string::npos);
    EXPECT_NE(json.find("\"rule\": \"p99_high\""), std::string::npos);
    EXPECT_NE(json.find("\"state\": \"firing\""), std::string::npos);

    // Deterministic: an identical store/engine serializes identically.
    TimeSeriesStore store2;
    AlertEngine engine2;
    engine2.AddRule(ThresholdRule("p99", 100));
    store2.Append("p99", Ms(100), 150);
    engine2.Evaluate(store2, Ms(100));
    EXPECT_EQ(json, HealthReportWriter::ToString("unit", store2, engine2));
}

// ---- Fleet integration --------------------------------------------------

fleet::FleetConfig
SmallFleet(TimeSeriesStore* health, AlertEngine* alerts)
{
    fleet::FleetConfig config;
    config.num_nodes = 4;
    config.num_shards = 4;
    config.num_threads = 1;
    config.base_seed = 7;
    config.window = sim::Millis(100);
    config.node.synthetic_agents = 2;
    config.health = health;
    config.alerts = alerts;
    return config;
}

struct FleetHealthRun {
    std::uint64_t trace_hash = 0;
    std::uint64_t executed = 0;
    std::uint64_t timeline_hash = 0;
    std::uint64_t samples = 0;
    std::vector<AlertEvent> alerts;
};

FleetHealthRun
RunSmallFleet(std::size_t threads, bool with_health,
              std::size_t every_n_windows = 1)
{
    TimeSeriesStore health;
    AlertEngine engine;
    engine.AddRules(DefaultFleetAlertRules());
    fleet::FleetConfig config = SmallFleet(
        with_health ? &health : nullptr, with_health ? &engine : nullptr);
    config.num_threads = threads;
    config.health_every_n_windows = every_n_windows;
    fleet::ShardedFleetRunner runner(config);
    runner.Run(sim::Seconds(1));
    runner.Stop();

    FleetHealthRun result;
    result.trace_hash = runner.fleet_trace_hash();
    result.executed = runner.total_executed();
    result.timeline_hash = health.timeline_hash();
    result.samples = health.total_appended();
    result.alerts = engine.events();
    return result;
}

TEST(FleetHealth, TimelineIsIdenticalAcrossRepeatsAndThreads)
{
    const FleetHealthRun base = RunSmallFleet(1, true);
    EXPECT_GT(base.samples, 0u);

    const FleetHealthRun repeat = RunSmallFleet(1, true);
    EXPECT_EQ(base.timeline_hash, repeat.timeline_hash);
    EXPECT_EQ(base.samples, repeat.samples);
    EXPECT_EQ(base.alerts, repeat.alerts);

    for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
        const FleetHealthRun run = RunSmallFleet(threads, true);
        EXPECT_EQ(base.timeline_hash, run.timeline_hash)
            << threads << " threads";
        EXPECT_EQ(base.samples, run.samples) << threads << " threads";
        EXPECT_EQ(base.alerts, run.alerts) << threads << " threads";
    }
}

TEST(FleetHealth, SamplingIsObserveOnly)
{
    const FleetHealthRun with = RunSmallFleet(1, true);
    const FleetHealthRun without = RunSmallFleet(1, false);
    EXPECT_EQ(with.trace_hash, without.trace_hash);
    EXPECT_EQ(with.executed, without.executed);
    EXPECT_EQ(without.samples, 0u);
}

TEST(FleetHealth, SamplingCadenceFollowsEveryNWindows)
{
    const FleetHealthRun every = RunSmallFleet(1, true, 1);
    const FleetHealthRun sparse = RunSmallFleet(1, true, 2);
    const FleetHealthRun never = RunSmallFleet(1, true, 0);
    EXPECT_GT(every.samples, sparse.samples);
    EXPECT_GT(sparse.samples, 0u);
    EXPECT_EQ(never.samples, 0u);
    // Halving the cadence halves the per-series sample count; the
    // series population is unchanged.
    EXPECT_EQ(sparse.samples * 2, every.samples);
}

TEST(FleetHealth, FleetSeriesCarryExpectedNames)
{
    TimeSeriesStore health;
    fleet::FleetConfig config = SmallFleet(&health, nullptr);
    fleet::ShardedFleetRunner runner(config);
    runner.Run(sim::Millis(300));
    runner.Stop();

    for (const char* name :
         {"fleet.epochs", "fleet.data.harvested", "fleet.data.invalid",
          "fleet.safeguard.trips", "fleet.safeguard.mitigations",
          "fleet.model.failures", "fleet.model.intercepted",
          "fleet.actions", "fleet.queue.executed", "fleet.queue.dropped",
          "fleet.queue.pending", "fleet.arbiter.requests",
          "fleet.arbiter.denied", "fleet.agent.halted_ns",
          "fleet.agent.active_ns", "fleet.node.epoch_latency.count",
          "fleet.node.epoch_latency.p50_ns",
          "fleet.node.epoch_latency.p99_ns"}) {
        EXPECT_NE(health.Find(name), nullptr) << name;
    }
    // active_ns is the SLO denominator: agents x elapsed virtual time.
    std::int64_t active = 0;
    ASSERT_TRUE(health.ValueAt("fleet.agent.active_ns", Ms(300), &active));
    const std::int64_t agents = 4 * (2 + 4);  // 4 nodes x (2 syn + 4 real).
    EXPECT_EQ(active, agents * Ms(300).count());
}

// ---- Node-level sampling ------------------------------------------------

TEST(NodeHealth, DriverTickSamplesAtConfiguredPeriod)
{
    sim::EventQueue queue;
    SharedTimeSeriesStore health;
    cluster::MultiAgentNodeConfig config;
    config.name = "node0";
    config.synthetic_agents = 2;
    config.health = &health;
    config.health_period = sim::Millis(100);
    cluster::MultiAgentNode node(queue, config);
    node.Start();
    queue.RunFor(sim::Seconds(1));

    const TimeSeriesStore snapshot = health.Snapshot();
    const TimeSeries* epochs = snapshot.Find("node0.epochs");
    ASSERT_NE(epochs, nullptr);
    // ~10 samples over 1s at 100ms cadence (first at 100ms).
    EXPECT_GE(epochs->size(), 9u);
    EXPECT_LE(epochs->size(), 11u);
    EXPECT_NE(snapshot.Find("node0.epoch_latency.p99_ns"), nullptr);
    EXPECT_NE(snapshot.Find("node0.agent.active_ns"), nullptr);
}

TEST(NodeHealth, RejectsNonPositivePeriod)
{
    sim::EventQueue queue;
    SharedTimeSeriesStore health;
    cluster::MultiAgentNodeConfig config;
    config.health = &health;
    config.health_period = sim::Duration::zero();
    cluster::MultiAgentNode node(queue, config);
    EXPECT_THROW(node.Start(), std::invalid_argument);
}

// ---- Concurrency (TSan leg repeats HealthConcurrency 20x) ---------------

TEST(HealthConcurrency, SharedStoreSurvivesProducersAndScrapers)
{
    SharedTimeSeriesStore store;
    constexpr int kProducers = 4;
    constexpr int kSamples = 500;
    std::atomic<bool> stop{false};

    std::vector<std::thread> producers;
    producers.reserve(kProducers);
    for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&store, p] {
            const std::string name = "series." + std::to_string(p);
            for (int i = 0; i < kSamples; ++i) {
                store.Append(name, Ms(i), i);
            }
        });
    }
    std::thread scraper([&store, &stop] {
        std::uint64_t scrapes = 0;
        while (!stop.load(std::memory_order_relaxed) || scrapes == 0) {
            const TimeSeriesStore snapshot = store.Snapshot();
            (void)PrometheusWriter::LatestToString(snapshot);
            (void)snapshot.timeline_hash();
            ++scrapes;
        }
    });
    for (std::thread& t : producers) {
        t.join();
    }
    stop.store(true, std::memory_order_relaxed);
    scraper.join();

    const TimeSeriesStore final_snapshot = store.Snapshot();
    EXPECT_EQ(final_snapshot.num_series(),
              static_cast<std::size_t>(kProducers));
    EXPECT_EQ(final_snapshot.total_appended(),
              static_cast<std::uint64_t>(kProducers) * kSamples);
}

TEST(HealthConcurrency, ConcurrentRegistrySamplingStaysConsistent)
{
    // One driver samples a shared registry into the store while a
    // scraper snapshots — the threaded node's production arrangement.
    SharedMetricRegistry registry;
    SharedTimeSeriesStore store;
    std::atomic<bool> stop{false};

    std::thread driver([&] {
        for (int i = 1; i <= 200; ++i) {
            registry.Increment("epochs");
            const MetricRegistry snap = registry.Snapshot();
            store.SampleRegistry(snap, "node", Ms(i));
        }
        stop.store(true, std::memory_order_relaxed);
    });
    std::thread scraper([&] {
        while (!stop.load(std::memory_order_relaxed)) {
            (void)store.timeline_hash();
        }
    });
    driver.join();
    scraper.join();

    const TimeSeriesStore snapshot = store.Snapshot();
    const TimeSeries* epochs = snapshot.Find("node.epochs");
    ASSERT_NE(epochs, nullptr);
    EXPECT_EQ(epochs->total_appended(), 200u);
    EXPECT_EQ(epochs->Latest().value, 200);
}

}  // namespace
}  // namespace sol::telemetry
