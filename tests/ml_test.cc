/**
 * @file
 * Tests for the ML substrate: Q-learning, cost-sensitive classification,
 * Thompson sampling, and feature hashing.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "ml/cost_sensitive.h"
#include "ml/qlearning.h"
#include "ml/thompson.h"
#include "sim/rng.h"

namespace sol::ml {
namespace {

// ---------------------------------------------------------------------------
// QLearner
// ---------------------------------------------------------------------------

QLearnerConfig
SmallQConfig()
{
    QLearnerConfig config;
    config.num_states = 4;
    config.num_actions = 3;
    config.learning_rate = 0.5;
    config.discount = 0.5;
    config.exploration = 0.0;
    return config;
}

TEST(QLearnerTest, RejectsBadConfig)
{
    QLearnerConfig config = SmallQConfig();
    config.num_states = 0;
    EXPECT_THROW(QLearner{config}, std::invalid_argument);

    config = SmallQConfig();
    config.learning_rate = 0.0;
    EXPECT_THROW(QLearner{config}, std::invalid_argument);

    config = SmallQConfig();
    config.discount = 1.0;
    EXPECT_THROW(QLearner{config}, std::invalid_argument);
}

TEST(QLearnerTest, InitialQValues)
{
    QLearnerConfig config = SmallQConfig();
    config.initial_q = 2.5;
    QLearner learner(config);
    EXPECT_DOUBLE_EQ(learner.Q(0, 0), 2.5);
    EXPECT_DOUBLE_EQ(learner.MaxQ(3), 2.5);
}

TEST(QLearnerTest, SingleUpdateMovesTowardTarget)
{
    QLearner learner(SmallQConfig());
    learner.Update(0, 1, 10.0, 0);
    // Q = 0 + 0.5 * (10 + 0.5*0 - 0) = 5.
    EXPECT_DOUBLE_EQ(learner.Q(0, 1), 5.0);
    EXPECT_EQ(learner.updates(), 1u);
}

TEST(QLearnerTest, BootstrapsFromNextState)
{
    QLearner learner(SmallQConfig());
    learner.Update(1, 0, 10.0, 1);  // Q(1,0) = 5.
    learner.Update(0, 2, 0.0, 1);
    // Target = 0 + 0.5 * maxQ(1) = 2.5 -> Q(0,2) = 0.5*2.5 = 1.25.
    EXPECT_DOUBLE_EQ(learner.Q(0, 2), 1.25);
}

TEST(QLearnerTest, GreedyPicksBestAction)
{
    QLearner learner(SmallQConfig());
    learner.Update(2, 0, 1.0, 2);
    learner.Update(2, 1, 5.0, 2);
    learner.Update(2, 2, 3.0, 2);
    EXPECT_EQ(learner.GreedyAction(2), 1u);
}

TEST(QLearnerTest, GreedyTieBreaksToLowestIndex)
{
    QLearner learner(SmallQConfig());
    EXPECT_EQ(learner.GreedyAction(0), 0u);
}

TEST(QLearnerTest, ConvergesToBestActionInBandit)
{
    // Stateless bandit: action 2 pays 1.0, others 0.1.
    QLearnerConfig config = SmallQConfig();
    config.num_states = 1;
    config.learning_rate = 0.2;
    config.discount = 0.0;
    QLearner learner(config);
    sim::Rng rng(5);
    for (int i = 0; i < 500; ++i) {
        const auto a = rng.NextBelow(3);
        learner.Update(0, a, a == 2 ? 1.0 : 0.1, 0);
    }
    EXPECT_EQ(learner.GreedyAction(0), 2u);
}

TEST(QLearnerTest, ExplorationRateRespected)
{
    QLearnerConfig config = SmallQConfig();
    config.exploration = 0.5;
    QLearner learner(config);
    learner.Update(0, 0, 10.0, 0);  // Make action 0 clearly greedy.
    sim::Rng rng(7);
    int explored_count = 0;
    for (int i = 0; i < 2000; ++i) {
        bool explored = false;
        learner.SelectAction(0, rng, &explored);
        explored_count += explored ? 1 : 0;
    }
    EXPECT_NEAR(explored_count / 2000.0, 0.5, 0.05);
}

TEST(QLearnerTest, ZeroExplorationIsAlwaysGreedy)
{
    QLearner learner(SmallQConfig());
    learner.Update(0, 2, 5.0, 0);
    sim::Rng rng(9);
    for (int i = 0; i < 100; ++i) {
        bool explored = true;
        EXPECT_EQ(learner.SelectAction(0, rng, &explored), 2u);
        EXPECT_FALSE(explored);
    }
}

TEST(QLearnerTest, ResetRestoresInitialValues)
{
    QLearnerConfig config = SmallQConfig();
    config.initial_q = 1.0;
    QLearner learner(config);
    learner.Update(0, 0, 100.0, 0);
    learner.Reset();
    EXPECT_DOUBLE_EQ(learner.Q(0, 0), 1.0);
    EXPECT_EQ(learner.updates(), 0u);
}

TEST(UniformBucketizerTest, MapsRangeToBuckets)
{
    UniformBucketizer buckets(0.0, 10.0, 5);
    EXPECT_EQ(buckets.Bucket(-1.0), 0u);
    EXPECT_EQ(buckets.Bucket(0.0), 0u);
    EXPECT_EQ(buckets.Bucket(3.0), 1u);
    EXPECT_EQ(buckets.Bucket(9.99), 4u);
    EXPECT_EQ(buckets.Bucket(10.0), 4u);
    EXPECT_EQ(buckets.Bucket(1e9), 4u);
}

TEST(UniformBucketizerTest, RejectsBadRange)
{
    EXPECT_THROW(UniformBucketizer(1.0, 1.0, 4), std::invalid_argument);
    EXPECT_THROW(UniformBucketizer(0.0, 1.0, 0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Feature hashing
// ---------------------------------------------------------------------------

TEST(FeatureVectorTest, HashingIsStable)
{
    FeatureVector a(16);
    FeatureVector b(16);
    a.Add("cpu_mean", 1.0);
    b.Add("cpu_mean", 2.0);
    ASSERT_EQ(a.features().size(), 1u);
    EXPECT_EQ(a.features()[0].index, b.features()[0].index);
}

TEST(FeatureVectorTest, IndexZeroReservedForBias)
{
    FeatureVector v(4);  // Tiny hash space forces collisions with 0.
    for (int i = 0; i < 64; ++i) {
        v.Add("f" + std::to_string(i), 1.0);
    }
    for (const auto& f : v.features()) {
        EXPECT_NE(f.index, 0u);
    }
    v.AddBias();
    EXPECT_EQ(v.features().back().index, 0u);
}

TEST(FeatureVectorTest, RejectsBadBits)
{
    EXPECT_THROW(FeatureVector(0), std::invalid_argument);
    EXPECT_THROW(FeatureVector(29), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// CostSensitiveClassifier
// ---------------------------------------------------------------------------

CostSensitiveConfig
SmallCsConfig()
{
    CostSensitiveConfig config;
    config.num_classes = 4;
    config.num_bits = 10;
    config.learning_rate = 0.1;
    return config;
}

TEST(CostSensitiveTest, RejectsBadConfig)
{
    CostSensitiveConfig config = SmallCsConfig();
    config.num_classes = 0;
    EXPECT_THROW(CostSensitiveClassifier{config}, std::invalid_argument);
}

TEST(CostSensitiveTest, UntrainedPredictsClassZero)
{
    CostSensitiveClassifier clf(SmallCsConfig());
    FeatureVector x(10);
    x.AddBias();
    EXPECT_EQ(clf.Predict(x), 0u);
}

TEST(CostSensitiveTest, UpdateRejectsWrongCostSize)
{
    CostSensitiveClassifier clf(SmallCsConfig());
    FeatureVector x(10);
    x.AddBias();
    EXPECT_THROW(clf.Update(x, {1.0, 2.0}), std::invalid_argument);
}

TEST(CostSensitiveTest, LearnsConstantTarget)
{
    CostSensitiveClassifier clf(SmallCsConfig());
    FeatureVector x(10);
    x.AddBias();
    // Class 2 always has the lowest cost.
    const std::vector<double> costs = {3.0, 2.0, 0.0, 2.0};
    for (int i = 0; i < 200; ++i) {
        clf.Update(x, costs);
    }
    EXPECT_EQ(clf.Predict(x), 2u);
    EXPECT_NEAR(clf.PredictCost(x, 2), 0.0, 0.05);
    EXPECT_NEAR(clf.PredictCost(x, 0), 3.0, 0.1);
}

TEST(CostSensitiveTest, LearnsFeatureDependentRule)
{
    // Label = 0 when feature "load" is low, 3 when high.
    CostSensitiveClassifier clf(SmallCsConfig());
    sim::Rng rng(33);
    for (int i = 0; i < 3000; ++i) {
        const bool high = rng.NextBool(0.5);
        FeatureVector x(10);
        x.AddBias();
        x.Add("load", high ? 1.0 : 0.0);
        clf.Update(x, AsymmetricCosts(4, high ? 3 : 0, 1.0, 1.0));
    }
    FeatureVector lo(10);
    lo.AddBias();
    lo.Add("load", 0.0);
    FeatureVector hi(10);
    hi.AddBias();
    hi.Add("load", 1.0);
    EXPECT_EQ(clf.Predict(lo), 0u);
    EXPECT_EQ(clf.Predict(hi), 3u);
}

TEST(CostSensitiveTest, AsymmetryBiasesUpward)
{
    // With heavy under-prediction penalty and a noisy target of 1 or 2,
    // the classifier should prefer 2 (never under-predict).
    CostSensitiveConfig config = SmallCsConfig();
    CostSensitiveClassifier clf(config);
    FeatureVector x(10);
    x.AddBias();
    sim::Rng rng(35);
    for (int i = 0; i < 2000; ++i) {
        const std::size_t label = rng.NextBool(0.5) ? 1 : 2;
        clf.Update(x, AsymmetricCosts(4, label, 10.0, 1.0));
    }
    EXPECT_EQ(clf.Predict(x), 2u);
}

TEST(CostSensitiveTest, ResetForgets)
{
    CostSensitiveClassifier clf(SmallCsConfig());
    FeatureVector x(10);
    x.AddBias();
    for (int i = 0; i < 100; ++i) {
        clf.Update(x, {5.0, 0.0, 5.0, 5.0});
    }
    EXPECT_EQ(clf.Predict(x), 1u);
    clf.Reset();
    EXPECT_DOUBLE_EQ(clf.PredictCost(x, 1), 0.0);
    EXPECT_EQ(clf.updates(), 0u);
}

TEST(AsymmetricCostsTest, ShapeIsVShaped)
{
    const auto costs = AsymmetricCosts(5, 2, 4.0, 1.0);
    ASSERT_EQ(costs.size(), 5u);
    EXPECT_DOUBLE_EQ(costs[0], 8.0);  // Two units under at 4 each.
    EXPECT_DOUBLE_EQ(costs[1], 4.0);
    EXPECT_DOUBLE_EQ(costs[2], 0.0);
    EXPECT_DOUBLE_EQ(costs[3], 1.0);
    EXPECT_DOUBLE_EQ(costs[4], 2.0);
}

// ---------------------------------------------------------------------------
// ThompsonSampler
// ---------------------------------------------------------------------------

TEST(ThompsonTest, RejectsBadConfig)
{
    EXPECT_THROW(ThompsonSampler(0), std::invalid_argument);
    EXPECT_THROW(ThompsonSampler(3, 0.0, 1.0), std::invalid_argument);
}

TEST(ThompsonTest, PosteriorMeanMovesWithEvidence)
{
    ThompsonSampler ts(2);
    EXPECT_DOUBLE_EQ(ts.PosteriorMean(0), 0.5);
    for (int i = 0; i < 8; ++i) {
        ts.Observe(0, true);
    }
    ts.Observe(0, false);
    // Beta(9, 2) mean = 9/11.
    EXPECT_NEAR(ts.PosteriorMean(0), 9.0 / 11.0, 1e-9);
    EXPECT_DOUBLE_EQ(ts.PosteriorMean(1), 0.5);
}

TEST(ThompsonTest, ConvergesToBestArm)
{
    ThompsonSampler ts(3);
    sim::Rng rng(37);
    const double arm_probs[] = {0.2, 0.8, 0.4};
    std::vector<int> picks(3, 0);
    for (int i = 0; i < 2000; ++i) {
        const auto arm = ts.SelectArm(rng);
        ++picks[arm];
        ts.Observe(arm, rng.NextBool(arm_probs[arm]));
    }
    // The best arm must dominate the later choices.
    EXPECT_GT(picks[1], picks[0] * 2);
    EXPECT_GT(picks[1], picks[2] * 2);
}

TEST(ThompsonTest, DecayForgetsOldEvidence)
{
    ThompsonSampler ts(1);
    for (int i = 0; i < 100; ++i) {
        ts.Observe(0, true);
    }
    EXPECT_GT(ts.PosteriorMean(0), 0.95);
    ts.Decay(0.01);
    EXPECT_NEAR(ts.PosteriorMean(0), 0.5, 0.2);
}

TEST(ThompsonTest, DecayRejectsBadFactor)
{
    ThompsonSampler ts(2);
    EXPECT_THROW(ts.Decay(0.0), std::invalid_argument);
    EXPECT_THROW(ts.Decay(1.5), std::invalid_argument);
}

TEST(ThompsonTest, ResetRestoresPrior)
{
    ThompsonSampler ts(2, 2.0, 3.0);
    ts.Observe(0, true);
    ts.Reset();
    EXPECT_DOUBLE_EQ(ts.alpha(0), 2.0);
    EXPECT_DOUBLE_EQ(ts.beta(0), 3.0);
}

// Property sweep: Thompson sampling finds the best arm across reward gaps.
class ThompsonGapTest : public ::testing::TestWithParam<double>
{
};

TEST_P(ThompsonGapTest, BestArmWinsEventually)
{
    const double gap = GetParam();
    ThompsonSampler ts(2);
    sim::Rng rng(41);
    const double p_best = 0.6 + gap / 2.0;
    const double p_other = 0.6 - gap / 2.0;
    for (int i = 0; i < 3000; ++i) {
        const auto arm = ts.SelectArm(rng);
        ts.Observe(arm, rng.NextBool(arm == 0 ? p_best : p_other));
    }
    EXPECT_GT(ts.PosteriorMean(0), ts.PosteriorMean(1));
}

INSTANTIATE_TEST_SUITE_P(Gaps, ThompsonGapTest,
                         ::testing::Values(0.2, 0.4, 0.6));

}  // namespace
}  // namespace sol::ml
